// Quickstart: run one MaxPool layer through the simulated DaVinci device
// with both the standard and the Im2col-based implementation, verify the
// results against the reference, and print the cycle counts.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "tensor/fractal.h"

using namespace davinci;

int main() {
  // A pooling layer like InceptionV3's third maxpool: 35x35, 288 channels,
  // kernel (3,3), stride (2,2), no padding.
  const std::int64_t channels = 288, h = 35, w_ = 35;
  const Window2d window = Window2d::pool(/*k=*/3, /*s=*/2);

  // 1. Build the input in NCHW fp32 and convert to the NC1HWC0 fractal
  //    layout the hardware consumes (C0 = 16 for Float16).
  TensorF32 image(Shape{1, channels, h, w_});
  image.fill_random(/*seed=*/42);
  const TensorF16 input = nchw_to_nc1hwc0(image);
  std::printf("input  NCHW (1, %lld, %lld, %lld) -> NC1HWC0 %s\n",
              static_cast<long long>(channels), static_cast<long long>(h),
              static_cast<long long>(w_), input.shape().to_string().c_str());

  // 2. A simulated Ascend-910-like device: 32 AI Cores, each with the
  //    scratch-pad buffers, Vector/Cube units and the SCU that executes
  //    the Im2Col / Col2Im instructions.
  Device dev;

  // 3. Run both forward implementations through the unified PoolOp entry
  //    point -- the descriptor names the operator, the window, and the
  //    lowering; the tensors arrive separately.
  kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                     .window = window,
                     .fwd = akg::PoolImpl::kDirect};
  auto direct = kernels::run_pool(dev, op, {.in = &input});
  op.fwd = akg::PoolImpl::kIm2col;
  auto im2col = kernels::run_pool(dev, op, {.in = &input});

  // 4. Verify against the reference implementation.
  const TensorF16 want = ref::maxpool_fwd(input, window);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    if (!(direct.out.flat(i) == want.flat(i)) ||
        !(im2col.out.flat(i) == want.flat(i))) {
      std::fprintf(stderr, "verification FAILED at element %lld\n",
                   static_cast<long long>(i));
      return 1;
    }
  }

  // 5. Report what the paper's Figure 7a reports: cycle counts.
  std::printf("output NC1HWC0 %s (verified bit-exact)\n\n",
              direct.out.shape().to_string().c_str());
  std::printf("standard TVM lowering : %8lld cycles  (lane util %.0f%%)\n",
              static_cast<long long>(direct.cycles()),
              100.0 * direct.run.aggregate.lane_utilization());
  std::printf("Im2col-based lowering : %8lld cycles  (lane util %.0f%%)\n",
              static_cast<long long>(im2col.cycles()),
              100.0 * im2col.run.aggregate.lane_utilization());
  std::printf("speedup               : %.2fx\n",
              static_cast<double>(direct.cycles()) /
                  static_cast<double>(im2col.cycles()));
  std::printf(
      "\nWhy: the Im2Col load rearranges the tile so the (Kh, Kw) reduction\n"
      "axes are outermost; one vmax with a saturated 128-lane mask then\n"
      "reduces a whole kernel-position plane (%lld issues instead of %lld).\n",
      static_cast<long long>(im2col.run.aggregate.vector_instrs),
      static_cast<long long>(direct.run.aggregate.vector_instrs));
  return 0;
}
