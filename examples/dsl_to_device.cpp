// The full Section-IV path in one file: define MaxPool in the TVM-style
// compute DSL (the paper's Listing 1, verbatim structure), let the
// lowering pass pattern-match it, pick the winning implementation for the
// target (the Figure-8 decision), and execute it on the simulated device
// -- then cross-check against the DSL interpreter.
//
//   $ ./examples/dsl_to_device
#include <cstdio>

#include "kernels/lower.h"
#include "tensor/fractal.h"

using namespace davinci;
using akg::dsl::IndexExpr;

int main() {
  const std::int64_t N = 1, C1 = 4, Ih = 35, Iw = 35;
  Device dev;

  for (const std::int64_t stride : {2, 1}) {
    const std::int64_t Kh = 3, Kw = 3, Sh = stride, Sw = stride;
    const std::int64_t Oh = (Ih - Kh) / Sh + 1, Ow = (Iw - Kw) / Sw + 1;

    // Listing 1 of the paper, in this library's DSL:
    //   input  = placeholder((N, C1, Ih, Iw, C0), name="input")
    //   red_h  = reduce_axis((0, Kh), "red_h")
    //   red_w  = reduce_axis((0, Kw), "red_w")
    //   output = compute((N, C1, Oh, Ow, C0),
    //       lambda n, c1, h, w, c0:
    //           max(input[n, c1, h*Sh + red_h, w*Sw + red_w, c0],
    //               axis=[red_h, red_w]))
    const auto input =
        akg::dsl::placeholder(Shape{N, C1, Ih, Iw, kC0}, "input", 0);
    const auto red_h = akg::dsl::reduce_axis(Kh, "red_h");
    const auto red_w = akg::dsl::reduce_axis(Kw, "red_w");
    const akg::dsl::Compute output = akg::dsl::compute(
        Shape{N, C1, Oh, Ow, kC0},
        [&](const std::vector<IndexExpr>& i) {
          return akg::dsl::max(
              input(i[0], i[1], i[2] * Sh + red_h, i[3] * Sw + red_w, i[4]),
              {red_h, red_w});
        });

    TensorF16 data(Shape{N, C1, Ih, Iw, kC0});
    data.fill_random_ints(stride);

    // Lower + run on the device, and interpret the same definition.
    auto lowered = akg::lower_and_run(dev, output, data);
    const TensorF16 interpreted = akg::dsl::evaluate(output, {&data});
    for (std::int64_t i = 0; i < interpreted.size(); ++i) {
      if (!(lowered.out.flat(i) == interpreted.flat(i))) {
        std::fprintf(stderr, "lowering mismatch at %lld\n",
                     static_cast<long long>(i));
        return 1;
      }
    }

    std::printf(
        "stride (%lld,%lld): matched window K(3,3) S(%lld,%lld); the\n"
        "scheduler picked '%s' (%lld device cycles, verified against the\n"
        "DSL interpreter).\n\n",
        static_cast<long long>(stride), static_cast<long long>(stride),
        static_cast<long long>(stride), static_cast<long long>(stride),
        akg::to_string(lowered.impl),
        static_cast<long long>(lowered.run.device_cycles));
  }
  std::printf(
      "Same definition, different schedules: the Im2col-based lowering at\n"
      "stride (2,2), the direct lowering at stride (1,1) -- the paper's\n"
      "Figure 8 conclusion, applied automatically.\n");
  return 0;
}
