// Prints the instruction streams ("lowered CCE-C view") of the standard
// and the Im2col-based MaxPool kernels side by side on a small input --
// making the paper's Listing 1 vs Listing 2 argument literal: the
// standard lowering issues Oh*Ow*Kh sixteen-lane vmax instructions; the
// Im2col lowering issues one Im2Col load and Kh*Kw saturated-mask vmax
// sequences.
//
//   $ ./examples/inspect_lowering
#include <cstdio>

#include "kernels/pooling.h"
#include "sim/trace.h"
#include "tensor/fractal.h"

using namespace davinci;

namespace {

void show(Device& dev, akg::PoolImpl impl, const TensorF16& in,
          const Window2d& w) {
  dev.core(0).trace().clear();
  dev.core(0).trace().enable();
  auto r = kernels::run_pool(
      dev, {.kind = kernels::PoolOpKind::kMaxFwd, .window = w, .fwd = impl},
      {.in = &in});
  std::printf("--- %s lowering: %lld cycles, %lld vector instructions, "
              "lane utilization %.0f%% ---\n",
              akg::to_string(impl), static_cast<long long>(r.cycles()),
              static_cast<long long>(r.run.aggregate.vector_instrs),
              100.0 * r.run.aggregate.lane_utilization());
  std::printf("%s\n", dev.core(0).trace().to_string(28).c_str());
  dev.core(0).trace().disable();
}

}  // namespace

int main() {
  Device dev;
  // Small enough that the whole stream is readable: 9x9, K(3,3), S(2,2)
  // -> 4x4 patches.
  TensorF16 in(Shape{1, 1, 9, 9, kC0});
  in.fill_random_ints(3);
  const Window2d w = Window2d::pool(3, 2);

  std::printf(
      "MaxPool 9x9 -> 4x4, K(3,3) S(2,2): what actually executes.\n\n");
  show(dev, akg::PoolImpl::kDirect, in, w);
  show(dev, akg::PoolImpl::kIm2col, in, w);
  std::printf(
      "Note how the direct stream repeats 'vmax repeat=3 lanes=16' once per\n"
      "output element and kernel row (Listing 1), while the im2col stream\n"
      "is one IM2COL load plus nine full-mask vmax issues (Listing 2).\n");
  return 0;
}
