// Runs every pooling layer of the four CNNs in the paper's Table I
// (InceptionV3, Xception, ResNet50, VGG16) through the simulator with both
// forward implementations, reporting per-layer and per-network cycles --
// what adopting the Im2col-based pooling would save across real networks.
//
//   $ ./examples/inception_pooling
#include <cstdio>
#include <map>

#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"
#include "tensor/fractal.h"

using namespace davinci;

int main() {
  Device dev;
  std::printf("%-12s %-14s %-12s %12s %12s %8s\n", "network", "input (HWC)",
              "kernel/stride", "standard", "im2col", "speedup");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::map<std::string, std::pair<std::int64_t, std::int64_t>> totals;
  for (const auto& layer : nets::table1_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    TensorF16 in(Shape{1, c1, layer.h, layer.w, kC0});
    in.fill_random(7);

    kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                       .window = layer.window,
                       .fwd = akg::PoolImpl::kDirect};
    auto direct = kernels::run_pool(dev, op, {.in = &in});
    op.fwd = akg::PoolImpl::kIm2col;
    auto im2col = kernels::run_pool(dev, op, {.in = &in});
    // Sanity: both agree (max is exact in fp16).
    const TensorF16 want = ref::maxpool_fwd(in, layer.window);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      if (!(im2col.out.flat(i) == want.flat(i))) {
        std::fprintf(stderr, "verification failed: %s input %d\n",
                     layer.network.c_str(), layer.index);
        return 1;
      }
    }
    totals[layer.network].first += direct.cycles();
    totals[layer.network].second += im2col.cycles();

    char shape[32], ks[32];
    std::snprintf(shape, sizeof(shape), "%lldx%lldx%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    std::snprintf(ks, sizeof(ks), "(%lld,%lld)/(%lld,%lld)",
                  static_cast<long long>(layer.window.kh),
                  static_cast<long long>(layer.window.kw),
                  static_cast<long long>(layer.window.sh),
                  static_cast<long long>(layer.window.sw));
    std::printf("%-12s %-14s %-12s %12lld %12lld %7.2fx\n",
                layer.network.c_str(), shape, ks,
                static_cast<long long>(direct.cycles()),
                static_cast<long long>(im2col.cycles()),
                static_cast<double>(direct.cycles()) /
                    static_cast<double>(im2col.cycles()));
  }

  std::printf("\nPer-network pooling totals:\n");
  for (const auto& [net, t] : totals) {
    std::printf("  %-12s %12lld -> %12lld cycles (%.2fx)\n", net.c_str(),
                static_cast<long long>(t.first),
                static_cast<long long>(t.second),
                static_cast<double>(t.first) / static_cast<double>(t.second));
  }
  return 0;
}
