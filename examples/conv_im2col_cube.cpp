// The Im2Col instruction at its original job: mapping convolution onto
// the Cube Unit's matrix multiplier (Figure 1 / Section III of the
// paper). Runs a convolution layer both ways of producing the unrolled
// layout and validates against the reference convolution -- the same
// machinery the pooling kernels borrow for the Vector Unit.
//
//   $ ./examples/conv_im2col_cube
#include <cstdio>

#include "kernels/conv2d.h"
#include "ref/conv_ref.h"
#include "tensor/fractal.h"

using namespace davinci;

int main() {
  const std::int64_t cin = 32, cout = 32, h = 28;
  const Window2d window = Window2d::pool(/*k=*/3, /*s=*/1);

  TensorF32 image(Shape{1, cin, h, h});
  image.fill_random_ints(21, -2, 2);
  TensorF32 weights(Shape{cout, cin, 3, 3});
  weights.fill_random_ints(22, -2, 2);

  Device dev;
  const TensorF16 input = nchw_to_nc1hwc0(image);

  auto with_instr = kernels::conv2d_cube(dev, input, weights, window,
                                         /*use_im2col_instruction=*/true);
  auto with_expansion = kernels::conv2d_cube(dev, input, weights, window,
                                             /*use_im2col_instruction=*/false);

  // Verify against the direct reference convolution.
  const TensorF32 want = ref::conv2d_nchw(image, weights, window);
  const TensorF32 got = nc1hwc0_to_nchw(with_instr.out, cout);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    if (got.flat(i) != Float16(want.flat(i)).to_float()) {
      std::fprintf(stderr, "conv verification FAILED at %lld\n",
                   static_cast<long long>(i));
      return 1;
    }
    if (!(with_instr.out.flat(i) == with_expansion.out.flat(i))) {
      std::fprintf(stderr, "path equivalence FAILED at %lld\n",
                   static_cast<long long>(i));
      return 1;
    }
  }

  std::printf("conv2d %lldx%lldx%lld -> %lld filters, K(3,3) S(1,1)\n\n",
              static_cast<long long>(h), static_cast<long long>(h),
              static_cast<long long>(cin), static_cast<long long>(cout));
  std::printf("Im2Col-load path   : %8lld cycles (%lld fractal MACs)\n",
              static_cast<long long>(with_instr.cycles()),
              static_cast<long long>(
                  with_instr.run.aggregate.cube_fractal_macs));
  std::printf("expansion path     : %8lld cycles\n",
              static_cast<long long>(with_expansion.cycles()));
  std::printf("instruction benefit: %.2fx\n",
              static_cast<double>(with_expansion.cycles()) /
                  static_cast<double>(with_instr.cycles()));
  std::printf(
      "\nThe Im2Col instruction transforms the tile while it is loaded\n"
      "L1 -> L0A, so the duplicated elements of overlapping patches only\n"
      "ever exist in the Cube Unit's input buffer. Output verified against\n"
      "the reference convolution (bit-exact after the fp16 store).\n");
  return 0;
}
