// Training-step walkthrough: forward MaxPool with Argmax mask, a loss
// gradient, and the backward pass -- comparing the standard stack (direct
// forward + vadd merge) with the accelerated stack (Im2Col forward +
// Col2Im merge). The two stacks produce identical numerics; only the
// cycle counts differ. Gradients are validated against the NCHW fp32
// reference pipeline.
//
//   $ ./examples/train_pooling_layer
#include <cstdio>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "tensor/fractal.h"

using namespace davinci;

int main() {
  const std::int64_t channels = 192, h = 71, w_ = 71;
  const Window2d window = Window2d::pool(3, 2);
  const std::int64_t oh = window.out_h(h), ow = window.out_w(w_);

  TensorF32 activations(Shape{1, channels, h, w_});
  activations.fill_random_ints(11);
  // Pretend the loss produced this gradient at the pooling output.
  TensorF32 loss_grad(Shape{1, channels, oh, ow});
  loss_grad.fill_random_ints(12, 0, 5);

  Device dev;
  const TensorF16 input = nchw_to_nc1hwc0(activations);
  const TensorF16 grad = nchw_to_nc1hwc0(loss_grad);

  std::printf("MaxPool training step, input %lldx%lldx%lld, K(3,3) S(2,2)\n\n",
              static_cast<long long>(h), static_cast<long long>(w_),
              static_cast<long long>(channels));

  // --- Standard stack ---
  auto fwd_base = kernels::run_pool(dev,
                                    {.kind = kernels::PoolOpKind::kMaxMaskFwd,
                                     .window = window,
                                     .fwd = akg::PoolImpl::kDirect},
                                    {.in = &input});
  auto bwd_base = kernels::run_pool(
      dev,
      {.kind = kernels::PoolOpKind::kMaxBwd,
       .window = window,
       .merge = kernels::MergeImpl::kVadd},
      {.mask = &fwd_base.mask, .grad = &grad, .ih = h, .iw = w_});

  // --- Accelerated stack (the paper's contribution) ---
  auto fwd_fast = kernels::run_pool(dev,
                                    {.kind = kernels::PoolOpKind::kMaxMaskFwd,
                                     .window = window,
                                     .fwd = akg::PoolImpl::kIm2col},
                                    {.in = &input});
  auto bwd_fast = kernels::run_pool(
      dev,
      {.kind = kernels::PoolOpKind::kMaxBwd,
       .window = window,
       .merge = kernels::MergeImpl::kCol2im},
      {.mask = &fwd_fast.mask, .grad = &grad, .ih = h, .iw = w_});

  // --- Validate against the fp32 NCHW reference ---
  const TensorF32 want_out = ref::maxpool_fwd_nchw(activations, window);
  const TensorF32 want_gin =
      ref::maxpool_bwd_nchw(activations, loss_grad, window);
  const TensorF32 got_out = nc1hwc0_to_nchw(fwd_fast.out, channels);
  const TensorF32 got_gin = nc1hwc0_to_nchw(bwd_fast.grad_in, channels);
  for (std::int64_t i = 0; i < want_out.size(); ++i) {
    if (got_out.flat(i) != want_out.flat(i)) {
      std::fprintf(stderr, "forward verification FAILED\n");
      return 1;
    }
  }
  for (std::int64_t i = 0; i < want_gin.size(); ++i) {
    if (got_gin.flat(i) != want_gin.flat(i)) {
      std::fprintf(stderr, "backward verification FAILED\n");
      return 1;
    }
  }
  for (std::int64_t i = 0; i < bwd_fast.grad_in.size(); ++i) {
    if (!(bwd_fast.grad_in.flat(i) == bwd_base.grad_in.flat(i))) {
      std::fprintf(stderr, "stack equivalence FAILED\n");
      return 1;
    }
  }

  std::printf("%-28s %14s %14s\n", "", "standard", "accelerated");
  std::printf("%-28s %14lld %14lld\n", "forward + mask (cycles)",
              static_cast<long long>(fwd_base.cycles()),
              static_cast<long long>(fwd_fast.cycles()));
  std::printf("%-28s %14lld %14lld\n", "backward (cycles)",
              static_cast<long long>(bwd_base.cycles()),
              static_cast<long long>(bwd_fast.cycles()));
  std::printf("%-28s %14s %13.2fx\n", "forward speedup", "",
              static_cast<double>(fwd_base.cycles()) /
                  static_cast<double>(fwd_fast.cycles()));
  std::printf("%-28s %14s %13.2fx\n", "backward speedup", "",
              static_cast<double>(bwd_base.cycles()) /
                  static_cast<double>(bwd_fast.cycles()));
  std::printf(
      "\nGradients verified against the NCHW fp32 reference; both stacks\n"
      "are bit-identical -- the acceleration changes the schedule, never\n"
      "the numerics.\n");
  return 0;
}
