// Runs an InceptionV3-like stem (conv -> conv -> maxpool -> conv ->
// maxpool -> global average pool) through the simulator twice -- once
// with the standard pooling lowering, once with the Im2col/Col2im-based
// one -- and reports per-layer cycles. Outputs are verified identical and
// checked against the reference chain: adopting the accelerated pooling
// changes schedules, never results.
//
//   $ ./examples/cnn_stem
#include <cstdio>

#include "nets/pipeline.h"
#include "tensor/fractal.h"

using namespace davinci;

namespace {

TensorF32 weights(std::int64_t cout, std::int64_t c, std::int64_t k,
                  std::uint64_t seed) {
  TensorF32 w(Shape{cout, c, k, k});
  w.fill_random_ints(seed, -1, 1);
  return w;
}

}  // namespace

int main() {
  nets::Pipeline stem;
  stem.conv(weights(32, 16, 3, 1), Window2d::pool(3, 2), "conv_3x3/2")
      .conv(weights(32, 32, 3, 2), Window2d::pool(3, 1), "conv_3x3/1")
      .maxpool(Window2d::pool(3, 2), "maxpool_3x3/2")
      .conv(weights(48, 32, 3, 3), Window2d::pool(3, 1), "conv_3x3/1b")
      .maxpool(Window2d::pool(3, 2), "maxpool_3x3/2b")
      .global_avgpool("global_avgpool");

  TensorF32 image(Shape{1, 16, 63, 63});
  image.fill_random_ints(7, -2, 2);

  Device dev;
  const TensorF16 input = nchw_to_nc1hwc0(image);
  auto standard = stem.run(dev, input, nets::PoolingStack::kStandard);
  auto accel = stem.run(dev, input, nets::PoolingStack::kAccelerated);

  // Verify the stacks agree and match the reference chain.
  for (std::int64_t i = 0; i < standard.out.size(); ++i) {
    if (!(standard.out.flat(i) == accel.out.flat(i))) {
      std::fprintf(stderr, "stack mismatch at %lld\n",
                   static_cast<long long>(i));
      return 1;
    }
  }
  const TensorF32 want = stem.reference(image);
  const TensorF32 got = nc1hwc0_to_nchw(accel.out, 48);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    const float d = got.flat(i) - want.flat(i);
    if (d > 1e-2f || d < -1e-2f) {
      std::fprintf(stderr, "reference mismatch at %lld (%f vs %f)\n",
                   static_cast<long long>(i), got.flat(i), want.flat(i));
      return 1;
    }
  }

  std::printf("InceptionV3-like stem, 63x63x16 input (verified)\n\n");
  std::printf("%-18s %-22s %12s %12s\n", "layer", "output", "standard",
              "accelerated");
  std::printf("%s\n", std::string(68, '-').c_str());
  std::int64_t pool_saved = 0;
  for (std::size_t i = 0; i < standard.layers.size(); ++i) {
    const auto& a = standard.layers[i];
    const auto& b = accel.layers[i];
    std::printf("%-18s %-22s %12lld %12lld\n", a.name.c_str(),
                a.out_shape.to_string().c_str(),
                static_cast<long long>(a.cycles),
                static_cast<long long>(b.cycles));
    pool_saved += a.cycles - b.cycles;
  }
  std::printf("%s\n", std::string(68, '-').c_str());
  std::printf("%-18s %-22s %12lld %12lld\n", "total", "",
              static_cast<long long>(standard.total_cycles),
              static_cast<long long>(accel.total_cycles));
  std::printf(
      "\nWhole-network effect: %.1f%% of the stem's cycles disappear just\n"
      "by switching the pooling layers to the Im2col-based schedule\n"
      "(pooling is cheap next to convolution -- the paper's point is that\n"
      "a naive implementation still \"can hinder the overall performance\").\n",
      100.0 * static_cast<double>(pool_saved) /
          static_cast<double>(standard.total_cycles));
  return 0;
}
