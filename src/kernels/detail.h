// Shared helpers for kernel programs (internal to src/kernels).
#pragma once

#include <chrono>
#include <cstdint>

#include "common/check.h"
#include "sim/ai_core.h"
#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/tensor.h"

namespace davinci::kernels::detail {

// Host wall clock for the driver-phase attribution buckets.
inline std::int64_t host_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Folds the driver's validate/plan/alloc phase times into the run result.
// Device::run filled host_execute_ns (== its host_ns); afterwards host_ns
// stays the exact sum of the four buckets -- the invariant metrics schema
// v4 serializes and tests assert.
inline void add_host_overhead(Device::RunResult& run,
                              std::int64_t validate_ns, std::int64_t plan_ns,
                              std::int64_t alloc_ns) {
  run.host_validate_ns += validate_ns;
  run.host_plan_ns += plan_ns;
  run.host_alloc_ns += alloc_ns;
  run.host_ns += validate_ns + plan_ns + alloc_ns;
}

// Output-tensor construction: every kernel overwrites every element of
// the outputs it produces, so storage can start uninitialized (arena
// reuse without the zero-fill) -- except under a resilience policy,
// where a truncated (mte_drop) store can leave part of a block's output
// region unwritten; the zero-filled construction keeps those bytes
// deterministic for the verification layer, bit-identical to the
// pre-arena behavior.
inline TensorF16 make_output(Device& dev, Shape shape) {
  return dev.resilience().has_value() ? TensorF16(shape)
                                      : TensorF16(shape, kUninitialized);
}

// Runs `body` as one pipelined stage on `pipe` when `on`, plain (serial
// timeline, no stage) when not. Returns the stage's completion event --
// 0 in serial mode, so chaining `std::max` over events stays correct and
// a dependency on "nothing" costs nothing. This is how the pooling
// kernels keep ONE code path for both the single-buffer serial schedule
// and the ping-pong overlapped one: the functional calls inside `body`
// are identical either way, only their placement on the pipe timeline
// changes (see sim/pipe_schedule.h).
template <typename Body>
inline PipeScheduler::Event staged(AiCore& core, bool on, Pipe pipe,
                                   PipeScheduler::Event after, Body&& body) {
  if (!on) {
    body();
    return 0;
  }
  core.begin_stage(pipe, after);
  body();
  return core.end_stage();
}

// Global-memory view of a tensor's storage. Input tensors are logically
// read-only; kernels only pass their spans as MTE copy sources.
inline Span<Float16> gm_view(const TensorF16& t) {
  return gm_span(const_cast<Float16*>(t.data()), t.size());
}
inline Span<Float16> gm_view(TensorF16& t) {
  return gm_span(t.data(), t.size());
}

// Issues a 16-lane (C0-masked) binary vector instruction over `count`
// strided element groups, splitting into <= max_repeat chunks with a
// scalar-loop charge per reissue. This is the lowered form of the
// "vectorize on C0 only" code paths the paper's baselines use.
inline void strided16_binary(AiCore& core, VecOp op, Span<Float16> dst,
                             std::int64_t dst_stride, Span<Float16> src0,
                             std::int64_t src0_stride, Span<Float16> src1,
                             std::int64_t src1_stride, std::int64_t count) {
  DV_CHECK_GE(count, 1);
  const int max_rep = core.arch().max_repeat;
  std::int64_t done = 0;
  std::int64_t instrs = 0;
  while (done < count) {
    const int rep = static_cast<int>(
        count - done > max_rep ? max_rep : count - done);
    VecConfig cfg;
    cfg.mask = VecMask::first_n(static_cast<int>(kC0));
    cfg.repeat = rep;
    cfg.dst_rep_stride = dst_stride;
    cfg.src0_rep_stride = src0_stride;
    cfg.src1_rep_stride = src1_stride;
    core.vec().binary(op, dst.drop_front(done * dst_stride),
                      src0.drop_front(done * src0_stride),
                      src1.drop_front(done * src1_stride), cfg);
    done += rep;
    ++instrs;
  }
  if (instrs > 1) core.scalar_loop(instrs - 1);
}

// Same splitting for vadds (the vector-copy idiom of the expansion
// implementation): dst[g] = src[g] + 0 for `count` strided groups.
inline void strided16_copy(AiCore& core, Span<Float16> dst,
                           std::int64_t dst_stride, Span<Float16> src,
                           std::int64_t src_stride, std::int64_t count) {
  DV_CHECK_GE(count, 1);
  const int max_rep = core.arch().max_repeat;
  std::int64_t done = 0;
  std::int64_t instrs = 0;
  while (done < count) {
    const int rep = static_cast<int>(
        count - done > max_rep ? max_rep : count - done);
    VecConfig cfg;
    cfg.mask = VecMask::first_n(static_cast<int>(kC0));
    cfg.repeat = rep;
    cfg.dst_rep_stride = dst_stride;
    cfg.src0_rep_stride = src_stride;
    core.vec().adds(dst.drop_front(done * dst_stride),
                    src.drop_front(done * src_stride), Float16(), cfg);
    done += rep;
    ++instrs;
  }
  if (instrs > 1) core.scalar_loop(instrs - 1);
}

// Row-strided full-mask binary op: applies `op` to `rows` rows of
// `row_elems` contiguous elements, where consecutive rows are
// `*_row_stride` elements apart. Each 128-lane column chunk of the rows is
// one instruction with the repeat parameter walking the rows -- the
// saturated-mask lowering available when Sw == 1 ("combining the mask
// register set with all 128 elements and its repeat parameter to compute
// the max between the (Ow, C0) dimensions", Section VI-B). Issues
// ceil(row_elems / 128) instructions per call (plus reissues when rows
// exceed max_repeat).
inline void row_strided_binary(AiCore& core, VecOp op, Span<Float16> dst,
                               std::int64_t dst_row_stride,
                               Span<Float16> src0,
                               std::int64_t src0_row_stride,
                               Span<Float16> src1,
                               std::int64_t src1_row_stride,
                               std::int64_t rows, std::int64_t row_elems) {
  DV_CHECK_GE(rows, 1);
  const int lanes = core.arch().vector_lanes;
  const int max_rep = core.arch().max_repeat;
  std::int64_t instrs = 0;
  for (std::int64_t off = 0; off < row_elems; off += lanes) {
    const int active = static_cast<int>(
        row_elems - off < lanes ? row_elems - off : lanes);
    std::int64_t done = 0;
    while (done < rows) {
      const int rep =
          static_cast<int>(rows - done > max_rep ? max_rep : rows - done);
      VecConfig cfg;
      cfg.mask = VecMask::first_n(active);
      cfg.repeat = rep;
      cfg.dst_rep_stride = dst_row_stride;
      cfg.src0_rep_stride = src0_row_stride;
      cfg.src1_rep_stride = src1_row_stride;
      core.vec().binary(op, dst.drop_front(off + done * dst_row_stride),
                        src0.drop_front(off + done * src0_row_stride),
                        src1.drop_front(off + done * src1_row_stride), cfg);
      done += rep;
      ++instrs;
    }
  }
  if (instrs > 1) core.scalar_loop(instrs - 1);
}

// Same row-strided lowering for the vadds copy idiom.
inline void row_strided_copy(AiCore& core, Span<Float16> dst,
                             std::int64_t dst_row_stride, Span<Float16> src,
                             std::int64_t src_row_stride, std::int64_t rows,
                             std::int64_t row_elems) {
  DV_CHECK_GE(rows, 1);
  const int lanes = core.arch().vector_lanes;
  const int max_rep = core.arch().max_repeat;
  std::int64_t instrs = 0;
  for (std::int64_t off = 0; off < row_elems; off += lanes) {
    const int active = static_cast<int>(
        row_elems - off < lanes ? row_elems - off : lanes);
    std::int64_t done = 0;
    while (done < rows) {
      const int rep =
          static_cast<int>(rows - done > max_rep ? max_rep : rows - done);
      VecConfig cfg;
      cfg.mask = VecMask::first_n(active);
      cfg.repeat = rep;
      cfg.dst_rep_stride = dst_row_stride;
      cfg.src0_rep_stride = src_row_stride;
      core.vec().adds(dst.drop_front(off + done * dst_row_stride),
                      src.drop_front(off + done * src_row_stride), Float16(),
                      cfg);
      done += rep;
      ++instrs;
    }
  }
  if (instrs > 1) core.scalar_loop(instrs - 1);
}

// Full-mask reduction of `planes` consecutive (plane_elems)-sized planes
// of `cols` into `acc` -- the proposed Listing-2 reduction: one
// instruction sequence per (kh, kw) plane with a saturated mask.
inline void reduce_planes(AiCore& core, VecOp op, Span<Float16> acc,
                          Span<Float16> cols, std::int64_t planes,
                          std::int64_t plane_elems) {
  for (std::int64_t k = 0; k < planes; ++k) {
    core.vbin_flat(op, acc, acc, cols.sub(k * plane_elems, plane_elems),
                   plane_elems);
    core.scalar_loop(1);
  }
}

}  // namespace davinci::kernels::detail
