#include "kernels/lower.h"

#include "common/check.h"
#include "kernels/pool_fwd_driver.h"

namespace davinci::akg {

namespace {

// Checks that `e` is exactly `coeff * axis (+ reduce_axis) + 0` over the
// expected axes and returns the output-axis coefficient.
std::int64_t coefficient_of_output(const dsl::IndexExpr& e, int out_axis,
                                   int other_allowed_axis, const char* what) {
  DV_CHECK_EQ(dsl::index_constant(e), 0)
      << what << ": constant offsets (padding) are not expressible in the "
      << "pooling pattern";
  for (int id : dsl::index_axes(e)) {
    DV_CHECK(id == out_axis || id == other_allowed_axis)
        << what << ": unexpected axis " << id << " in index expression";
  }
  if (other_allowed_axis >= 0) {
    DV_CHECK_EQ(dsl::index_coefficient(e, other_allowed_axis), 1)
        << what << ": reduce axis must appear with coefficient 1";
  }
  return dsl::index_coefficient(e, out_axis);
}

}  // namespace

PoolingPattern match_pooling(const dsl::Compute& c) {
  DV_CHECK_EQ(c.out_shape.rank(), 5)
      << "pooling computes produce (N, C1, Oh, Ow, C0)";
  DV_CHECK(dsl::is_reduce(c.body))
      << "pooling computes are a top-level reduction";
  const auto& axes = dsl::reduce_axes(c.body);
  DV_CHECK_EQ(axes.size(), 2u)
      << "pooling reduces over exactly (red_h, red_w)";
  const dsl::Expr& body = dsl::reduce_body(c.body);
  DV_CHECK(dsl::is_load(body))
      << "the reduction body must be a single placeholder load";
  DV_CHECK_EQ(dsl::load_input_index(body), 0)
      << "pooling reads the first placeholder";
  const auto& idx = dsl::load_indices(body);
  DV_CHECK_EQ(idx.size(), 5u) << "the input must be NC1HWC0";

  // Axes 0, 1, 4 (N, C1, C0) must pass through unchanged.
  for (int pos : {0, 1, 4}) {
    DV_CHECK_EQ(coefficient_of_output(idx[static_cast<std::size_t>(pos)],
                                      pos, -1, "batch/channel index"),
                1)
        << "N/C1/C0 axes must be identity-indexed";
  }

  PoolingPattern p;
  p.reduce = dsl::reduce_kind(c.body);
  p.window.sh =
      coefficient_of_output(idx[2], 2, axes[0].id, "height index");
  p.window.sw =
      coefficient_of_output(idx[3], 3, axes[1].id, "width index");
  p.window.kh = axes[0].extent;
  p.window.kw = axes[1].extent;
  p.window.validate();

  // The geometry must be consistent: Oh/Ow from Equation (1) on the
  // placeholder's spatial dims.
  const Shape& in_shape = dsl::load_shape(body);
  DV_CHECK_EQ(in_shape.rank(), 5);
  DV_CHECK_EQ(c.out_shape.dim(2), p.window.out_h(in_shape.dim(2)))
      << "output height disagrees with Equation (1)";
  DV_CHECK_EQ(c.out_shape.dim(3), p.window.out_w(in_shape.dim(3)))
      << "output width disagrees with Equation (1)";
  DV_CHECK_EQ(c.out_shape.dim(0), in_shape.dim(0));
  DV_CHECK_EQ(c.out_shape.dim(1), in_shape.dim(1));
  DV_CHECK_EQ(c.out_shape.dim(4), kC0);
  return p;
}

LoweredPoolResult lower_and_run(Device& dev, const dsl::Compute& c,
                                const TensorF16& input) {
  const PoolingPattern p = match_pooling(c);
  const PoolImpl impl = select_fwd_impl(p.window);

  VecOp op = VecOp::kMax;
  Float16 init = Float16::lowest();
  switch (p.reduce) {
    case dsl::ReduceKind::kMax:
      break;
    case dsl::ReduceKind::kMin:
      op = VecOp::kMin;
      init = Float16::max_finite();
      break;
    case dsl::ReduceKind::kSum:
      op = VecOp::kAdd;
      init = Float16();
      break;
  }
  auto r = kernels::pooling_forward_impl(dev, input, p.window, impl, op,
                                         init, Float16(1.0f), nullptr);
  return LoweredPoolResult{std::move(r.out), r.run, impl};
}

}  // namespace davinci::akg
