#include "kernels/conv2d_bwd.h"

#include "akg/tiling.h"
#include "common/align.h"
#include "kernels/detail.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {
using detail::gm_view;
}  // namespace

TensorF16 pack_conv_weights_transposed(const TensorF32& weights,
                                       const Window2d& w, std::int64_t c1) {
  DV_CHECK_EQ(weights.shape().rank(), 4) << "(Cout, C, Kh, Kw)";
  const std::int64_t cout = weights.shape()[0];
  const std::int64_t c = weights.shape()[1];
  DV_CHECK_EQ(weights.shape()[2], w.kh);
  DV_CHECK_EQ(weights.shape()[3], w.kw);
  DV_CHECK_EQ(c1_of(c), c1);
  const std::int64_t k16 = c1 * w.kh * w.kw;
  const std::int64_t n16f = ceil_div(cout, kFractalRows);

  TensorF16 packed(Shape{n16f * k16 * kFractalElems});
  for (std::int64_t fb = 0; fb < n16f; ++fb) {
    for (std::int64_t kb = 0; kb < k16; ++kb) {
      const std::int64_t q = kb / (w.kh * w.kw);
      const std::int64_t kh = (kb / w.kw) % w.kh;
      const std::int64_t kw = kb % w.kw;
      const std::int64_t base = (fb * k16 + kb) * kFractalElems;
      for (std::int64_t r = 0; r < kFractalRows; ++r) {   // output channel
        const std::int64_t f = fb * kC0 + r;
        for (std::int64_t j = 0; j < kC0; ++j) {          // input channel
          const std::int64_t ch = q * kC0 + j;
          const float v =
              (f < cout && ch < c) ? weights.at(f, ch, kh, kw) : 0.0f;
          packed.flat(base + r * kC0 + j) = Float16(v);
        }
      }
    }
  }
  return packed;
}

Conv2dBwdResult conv2d_backward_input(Device& dev, const TensorF16& grad_out,
                                      const TensorF32& weights,
                                      const Window2d& w, std::int64_t ih,
                                      std::int64_t iw, MergeImpl merge) {
  DV_CHECK_EQ(grad_out.shape().rank(), 5) << "expected NC1HWC0 gradient";
  DV_CHECK_EQ(grad_out.shape()[0], 1) << "single image";
  w.validate();
  const std::int64_t cout = weights.shape()[0];
  const std::int64_t c = weights.shape()[1];
  const std::int64_t c1 = c1_of(c);
  const std::int64_t n16f = ceil_div(cout, kFractalRows);
  DV_CHECK_EQ(grad_out.shape()[1], n16f) << "gradient channel blocks";
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  DV_CHECK_EQ(grad_out.shape()[2], oh);
  DV_CHECK_EQ(grad_out.shape()[3], ow);
  const std::int64_t khkw = w.kh * w.kw;
  const std::int64_t k16 = c1 * khkw;

  const ArchConfig& arch = dev.arch();
  const std::int64_t frac16 = kFractalElems * 2;   // bytes per fp16 fractal
  const std::int64_t frac32 = kFractalElems * 4;   // bytes per fp32 fractal
  DV_CHECK_LE(n16f * khkw * frac16, arch.l0b_bytes)
      << "per-slice weight set exceeds L0B";

  // Largest patch-row tile fitting L0A (dOut fractals), L0C (dCols
  // accumulators) and UB (dCols fp16 + the input-gradient slice + seam).
  const std::int64_t seam_rows = w.kh > w.sh ? w.kh - w.sh : 0;
  auto fits = [&](std::int64_t oh_tile) {
    const std::int64_t m_frac = ceil_div(oh_tile * ow, kFractalRows);
    const std::int64_t in_rows = (oh_tile - 1) * w.sh + w.kh;
    if (m_frac * n16f * frac16 > arch.l0a_bytes) return false;
    if (m_frac * khkw * frac32 > arch.l0c_bytes) return false;
    const std::int64_t ub =
        round_up(khkw * m_frac * kFractalElems * 2, 32) +   // dCols
        round_up(in_rows * iw * kC0 * 2, 32) +              // grad_in slice
        round_up(seam_rows * iw * kC0 * 2, 32) + 1024;      // seam + slack
    return ub <= arch.ub_bytes;
  };
  DV_CHECK(fits(1)) << "a single output row does not fit the Cube buffers";
  std::int64_t oh_tile = 1;
  while (oh_tile < oh && fits(oh_tile + 1)) ++oh_tile;
  const std::int64_t num_tiles = ceil_div(oh, oh_tile);

  const TensorF16 packed_t = pack_conv_weights_transposed(weights, w, c1);
  TensorF16 grad_in(Shape{1, c1, ih, iw, kC0});

  // One block per input-channel slice ("tiling the computation on C1");
  // patch tiles run sequentially with seam accumulation, like the pooling
  // backward kernels.
  auto run = dev.run(c1, [&](AiCore& core, std::int64_t q) {
    for (std::int64_t t = 0; t < num_tiles; ++t) {
      core.reset_scratch();
      const akg::HTile ht = akg::h_tile(w, ih, oh, oh_tile, t);
      Window2d wt = w;
      wt.pt = ht.pt_eff;
      wt.pb = ht.pb_eff;
      const std::int64_t in_rows = ht.in_rows();
      const std::int64_t tp = ht.out_rows() * ow;
      const std::int64_t m_frac = ceil_div(tp, kFractalRows);
      const std::int64_t pp = m_frac * kFractalRows;
      const std::int64_t plane = pp * kC0;

      // A: dOut fractals (mb, fb) -- rows are patches, columns are the
      // 16 output channels of block fb.
      auto a = core.l0a().alloc<Float16>(m_frac * n16f * kFractalElems);
      auto l1g = core.l1().alloc<Float16>(tp * kC0);
      for (std::int64_t fb = 0; fb < n16f; ++fb) {
        auto gm_plane = gm_view(grad_out)
                            .sub(((fb * oh) + ht.o0) * ow * kC0, tp * kC0);
        core.mte().copy(l1g, gm_plane, tp * kC0);
        const std::int64_t full = tp / kFractalRows;
        if (full > 0) {
          core.mte().copy_2d(a.drop_front(fb * kFractalElems),
                             n16f * kFractalElems, l1g, kFractalElems, full,
                             kFractalElems);
        }
        const std::int64_t rem = tp % kFractalRows;
        if (rem > 0) {
          core.mte().copy(
              a.sub((full * n16f + fb) * kFractalElems, rem * kC0),
              l1g.sub(full * kFractalElems, rem * kC0), rem * kC0);
        }
      }

      // B: the W^T slice for this input-channel block: fractals
      // (fb, kb-local), kb-local over the Kh*Kw kernel positions.
      auto l1b = core.l1().alloc<Float16>(n16f * khkw * kFractalElems);
      core.mte().copy_2d(
          l1b, khkw * kFractalElems,
          gm_view(packed_t)
              .sub(q * khkw * kFractalElems,
                   ((n16f - 1) * k16 + khkw) * kFractalElems),
          k16 * kFractalElems, n16f, khkw * kFractalElems);
      auto b = core.l0b().alloc<Float16>(n16f * khkw * kFractalElems);
      core.mte().copy(b, l1b, n16f * khkw * kFractalElems);

      // dCols(mb, kb) = sum over fb of dOut(mb, fb) x W^T(fb, kb).
      auto cbuf = core.l0c().alloc<float>(m_frac * khkw * kFractalElems);
      core.cube().mmad(cbuf, a, b, m_frac, n16f, khkw, /*accumulate=*/false);
      core.pipe_barrier();

      // Drain to the Unified Buffer in the Col2Im plane-major layout:
      // one strided converting transfer per kernel position.
      auto cols = core.ub().alloc<Float16>(khkw * plane);
      for (std::int64_t kb = 0; kb < khkw; ++kb) {
        core.mte().copy_convert_2d(
            cols.drop_front(kb * plane), kFractalElems,
            cbuf.drop_front(kb * kFractalElems), khkw * kFractalElems,
            m_frac, kFractalElems);
      }
      core.pipe_barrier();

      auto out = core.ub().alloc<Float16>(in_rows * iw * kC0);
      core.vdup_flat(out, Float16(), in_rows * iw * kC0);
      core.pipe_barrier();

      if (merge == MergeImpl::kCol2im) {
        Im2colArgs args;
        args.window = wt;
        args.ih = in_rows;
        args.iw = iw;
        DV_CHECK_EQ(args.patches(), tp);
        core.scu().col2im(out, cols, args);
      } else {
        // Baseline merge: per-patch 16-lane vadd scatter, no repetition.
        for (std::int64_t kh = 0; kh < w.kh; ++kh) {
          for (std::int64_t kw = 0; kw < w.kw; ++kw) {
            const std::int64_t pbase = (kh * w.kw + kw) * plane;
            for (std::int64_t p = 0; p < tp; ++p) {
              const std::int64_t y = (p / ow) * w.sh + kh - wt.pt;
              const std::int64_t x = (p % ow) * w.sw + kw - wt.pl;
              if (y < 0 || y >= in_rows || x < 0 || x >= iw) continue;
              VecConfig cfg;
              cfg.mask = VecMask::first_n(static_cast<int>(kC0));
              auto dst = out.sub((y * iw + x) * kC0, kC0);
              core.vec().binary(VecOp::kAdd, dst, dst,
                                cols.sub(pbase + p * kC0, kC0), cfg);
              core.scalar_loop(1);
            }
          }
        }
      }

      // Seam accumulation with the previous tile, then store.
      auto gm_out_tile = gm_view(grad_in).sub(
          (q * ih + ht.y0) * iw * kC0, in_rows * iw * kC0);
      const std::int64_t seam =
          t > 0 ? (seam_rows < in_rows ? seam_rows : in_rows) : 0;
      if (seam > 0) {
        const std::int64_t n_seam = seam * iw * kC0;
        auto prev = core.ub().alloc<Float16>(n_seam);
        core.mte().copy(prev, gm_out_tile, n_seam);
        core.pipe_barrier();
        core.vbin_flat(VecOp::kAdd, out, out, prev, n_seam);
      }
      core.pipe_barrier();
      core.mte().copy(gm_out_tile, out, in_rows * iw * kC0);
    }
  });

  return Conv2dBwdResult{std::move(grad_in), run};
}

}  // namespace davinci::kernels
