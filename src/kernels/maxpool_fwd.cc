// MaxPool forward kernels (Section V-A, Figures 7a and 8).
//
// Every implementation is written as a sequence of *phases* (load,
// transform, reduce, store) issued through detail::staged. With the
// device's double-buffer policy off the phases execute on the strictly
// serial timeline with the classic pipe_barrier between them; with it on
// (the default) the driver plans akg::PoolPlan::ub_slots tile slots and
// issues consecutive H-tiles in ping-pong mode, so tile t+1's MTE load
// and Im2Col overlap tile t's Vector reduction. Outputs are bit-identical
// either way -- only the placement of the charged cycles on the per-unit
// timeline (sim/pipe_schedule.h) changes.
#include <algorithm>
#include <vector>

#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pool_fwd_driver.h"
#include "kernels/pooling.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {

using akg::HTile;
using akg::PoolImpl;
using detail::gm_view;
using detail::staged;
using Event = PipeScheduler::Event;

struct TileGeom {
  Window2d w;          // per-tile window (with effective paddings)
  std::int64_t in_rows, iw, oh_t, ow;
  std::int64_t tile_patches() const { return oh_t * ow; }
};

// One ping-pong slot: the buffers a tile occupies and the completion
// events after which each may be overwritten (WAR dependencies between
// tile t and tile t+ub_slots, which reuses the slot).
struct FwdSlot {
  Span<Float16> stage_in;  // input tile (L1 for kIm2col, UB otherwise)
  Span<Float16> work;      // cols (kIm2col/kExpansion) / tmp (kXYSplit)
  Span<Float16> out;       // output tile in UB
  Event in_free = 0;       // stage_in fully consumed
  Event work_free = 0;     // work fully consumed
  Event out_free = 0;      // out stored to GM
};

// Standard TVM lowering (Listing 1). Requires no padding. At Sw == 1 the
// lowering vectorizes over whole (Ow, C0) rows with a full mask; otherwise
// the reduction instruction handles one patch row at a time with only the
// C0 lanes active, repeating over Kw -- issued Oh*Ow*Kh times.
void direct_reduce(AiCore& core, VecOp op, Span<Float16> out,
                   Span<Float16> in, const TileGeom& g) {
  if (g.w.sw == 1) {
    // Fast case (Figure 8a): consecutive patches are consecutive in
    // memory, so the lowering saturates the 128-lane mask over (Ow, C0)
    // rows and lets the repeat parameter walk the output rows -- only
    // ceil(Ow*C0/128) instructions per kernel position.
    for (std::int64_t kh = 0; kh < g.w.kh; ++kh) {
      for (std::int64_t kw = 0; kw < g.w.kw; ++kw) {
        detail::row_strided_binary(
            core, op, out, g.ow * kC0, out, g.ow * kC0,
            in.drop_front((kh * g.iw + kw) * kC0), g.w.sh * g.iw * kC0,
            g.oh_t, g.ow * kC0);
        core.scalar_loop(1);
      }
    }
  } else {
    // General case: 16 of 128 mask lanes, repeat over Kw, one instruction
    // per (oh, ow, kh).
    for (std::int64_t oh = 0; oh < g.oh_t; ++oh) {
      for (std::int64_t ow = 0; ow < g.ow; ++ow) {
        auto dst = out.sub((oh * g.ow + ow) * kC0, kC0);
        for (std::int64_t kh = 0; kh < g.w.kh; ++kh) {
          VecConfig cfg;
          cfg.mask = VecMask::first_n(static_cast<int>(kC0));
          cfg.repeat = static_cast<int>(g.w.kw);
          cfg.dst_rep_stride = 0;   // reduction idiom
          cfg.src0_rep_stride = 0;
          cfg.src1_rep_stride = kC0;
          auto src = in.sub(
              ((oh * g.w.sh + kh) * g.iw + ow * g.w.sw) * kC0, g.w.kw * kC0);
          core.vec().binary(op, dst, dst, src, cfg);
          core.scalar_loop(1);
        }
      }
    }
  }
}

void maybe_scale(AiCore& core, Span<Float16> out, Float16 scale,
                 std::int64_t n) {
  if (!(scale == Float16(1.0f))) {
    // AvgPool's element-wise division, applied in UB before the store
    // (Section V-C).
    core.vmuls_flat(out, out, scale, n);
  }
}

void direct_tile(AiCore& core, bool db, FwdSlot& sl, VecOp op, Float16 init,
                 Float16 scale, Span<Float16> gm_in, Span<Float16> gm_out,
                 const TileGeom& g) {
  const std::int64_t n_in = g.in_rows * g.iw * kC0;
  const std::int64_t n_out = g.tile_patches() * kC0;
  auto in = sl.stage_in.sub(0, n_in);
  auto out = sl.out.sub(0, n_out);
  const Event load_done = staged(core, db, Pipe::kMteIn, sl.in_free,
                                 [&] { core.mte().copy(in, gm_in, n_in); });
  const Event init_done = staged(core, db, Pipe::kVector, sl.out_free,
                                 [&] { core.vdup_flat(out, init, n_out); });
  if (!db) core.pipe_barrier();
  const Event compute_done =
      staged(core, db, Pipe::kVector, std::max(load_done, init_done), [&] {
        direct_reduce(core, op, out, in, g);
        maybe_scale(core, out, scale, n_out);
      });
  sl.in_free = compute_done;
  if (!db) core.pipe_barrier();
  const Event store_done =
      staged(core, db, Pipe::kMteOut, compute_done,
             [&] { core.mte().copy(gm_out, out, n_out); });
  sl.out_free = store_done;
  if (db) {
    core.sched().note_tile(load_done, +1);
    core.sched().note_tile(store_done, -1);
  }
}

// Proposed lowering (Listing 2): GM -> L1, Im2Col load L1 -> UB in the
// transposed (Kh, Kw, patches, C0) shape, then a full-mask reduction per
// (kh, kw) plane -- Kh*Kw instruction sequences total.
void im2col_tile(AiCore& core, bool db, FwdSlot& sl, VecOp op, Float16 init,
                 Float16 scale, Span<Float16> gm_in, Span<Float16> gm_out,
                 const TileGeom& g) {
  const std::int64_t n_in = g.in_rows * g.iw * kC0;
  auto l1 = sl.stage_in.sub(0, n_in);
  const Event load_done = staged(core, db, Pipe::kMteIn, sl.in_free,
                                 [&] { core.mte().copy(l1, gm_in, n_in); });

  Im2colArgs args;
  args.window = g.w;
  args.ih = g.in_rows;
  args.iw = g.iw;
  DV_CHECK_EQ(args.patches(), g.tile_patches());

  auto cols = sl.work.sub(0, args.output_elems());
  const Event scu_done =
      staged(core, db, Pipe::kScu, std::max(load_done, sl.work_free),
             [&] { core.scu().im2col_load(cols, l1, args); });
  sl.in_free = scu_done;

  const std::int64_t plane = args.padded_patches() * kC0;
  auto out = sl.out.sub(0, plane);
  const Event init_done = staged(core, db, Pipe::kVector, sl.out_free,
                                 [&] { core.vdup_flat(out, init, plane); });
  if (!db) core.pipe_barrier();
  const Event compute_done =
      staged(core, db, Pipe::kVector, std::max(scu_done, init_done), [&] {
        detail::reduce_planes(core, op, out, cols, g.w.kh * g.w.kw, plane);
        maybe_scale(core, out, scale, plane);
      });
  sl.work_free = compute_done;
  if (!db) core.pipe_barrier();
  const Event store_done =
      staged(core, db, Pipe::kMteOut, compute_done,
             [&] { core.mte().copy(gm_out, out, g.tile_patches() * kC0); });
  sl.out_free = store_done;
  if (db) {
    core.sched().note_tile(load_done, +1);
    core.sched().note_tile(store_done, -1);
  }
}

// "Maxpool with expansion" (Figure 8): the im2col shape is produced in UB
// by regular vector copies -- a separate transformation step after the
// plain load, paying both the extra instructions and the extra UB space.
void expansion_expand(AiCore& core, Span<Float16> cols, Span<Float16> in,
                      Float16 init, const TileGeom& g) {
  const std::int64_t pp = round_up(g.tile_patches(), kFractalRows);
  const std::int64_t plane = pp * kC0;
  for (std::int64_t kh = 0; kh < g.w.kh; ++kh) {
    for (std::int64_t kw = 0; kw < g.w.kw; ++kw) {
      const std::int64_t pbase = (kh * g.w.kw + kw) * plane;
      if (g.w.sw == 1) {
        // Contiguous rows: the same saturated row-strided lowering the
        // direct kernel uses at Sw == 1.
        detail::row_strided_copy(
            core, cols.drop_front(pbase), g.ow * kC0,
            in.drop_front((kh * g.iw + kw) * kC0), g.w.sh * g.iw * kC0,
            g.oh_t, g.ow * kC0);
        core.scalar_loop(1);
      } else {
        for (std::int64_t oh = 0; oh < g.oh_t; ++oh) {
          auto dst = cols.sub(pbase + oh * g.ow * kC0, g.ow * kC0);
          auto src = in.sub(((oh * g.w.sh + kh) * g.iw + kw) * kC0,
                            ((g.ow - 1) * g.w.sw + 1) * kC0);
          detail::strided16_copy(core, dst, kC0, src, g.w.sw * kC0, g.ow);
          core.scalar_loop(1);
        }
      }
      // Tail patch rows of this plane are never stored; initialize them so
      // the reduction reads defined values.
      if (pp > g.tile_patches()) {
        core.vdup_flat(cols.sub(pbase + g.tile_patches() * kC0,
                                (pp - g.tile_patches()) * kC0),
                       init, (pp - g.tile_patches()) * kC0);
      }
    }
  }
}

void expansion_tile(AiCore& core, bool db, FwdSlot& sl, VecOp op,
                    Float16 init, Float16 scale, Span<Float16> gm_in,
                    Span<Float16> gm_out, const TileGeom& g) {
  const std::int64_t n_in = g.in_rows * g.iw * kC0;
  const std::int64_t pp = round_up(g.tile_patches(), kFractalRows);
  const std::int64_t plane = pp * kC0;
  auto in = sl.stage_in.sub(0, n_in);
  auto cols = sl.work.sub(0, g.w.kh * g.w.kw * plane);
  auto out = sl.out.sub(0, plane);

  const Event load_done = staged(core, db, Pipe::kMteIn, sl.in_free,
                                 [&] { core.mte().copy(in, gm_in, n_in); });
  if (!db) core.pipe_barrier();
  const Event expand_done =
      staged(core, db, Pipe::kVector, std::max(load_done, sl.work_free),
             [&] { expansion_expand(core, cols, in, init, g); });
  sl.in_free = expand_done;
  const Event compute_done =
      staged(core, db, Pipe::kVector, std::max(expand_done, sl.out_free),
             [&] {
               core.vdup_flat(out, init, plane);
               detail::reduce_planes(core, op, out, cols, g.w.kh * g.w.kw,
                                     plane);
               maybe_scale(core, out, scale, plane);
             });
  sl.work_free = compute_done;
  if (!db) core.pipe_barrier();
  const Event store_done =
      staged(core, db, Pipe::kMteOut, compute_done,
             [&] { core.mte().copy(gm_out, out, g.tile_patches() * kC0); });
  sl.out_free = store_done;
  if (db) {
    core.sched().note_tile(load_done, +1);
    core.sched().note_tile(store_done, -1);
  }
}

// X-Y split (Lai et al., Figure 8b): reduce along the width into an
// (in_rows, Ow, C0) intermediate, then along the height. Fewer arithmetic
// operations than the direct form, but as a *TVM* lowering both stages are
// reductions: each output group gets one 16-lane instruction with the
// repeat parameter walking the reduction axis -- the X-Y split "does not
// overcome the scattered memory problems of pooling".
void xysplit_reduce(AiCore& core, VecOp op, Span<Float16> tmp,
                    Span<Float16> out, Span<Float16> in, const TileGeom& g) {
  // Stage 1: tmp[h, ow, :] = reduce over kw of in[h, ow*Sw + kw, :];
  // issued In_rows*Ow times, repeat over Kw.
  for (std::int64_t h = 0; h < g.in_rows; ++h) {
    for (std::int64_t ow = 0; ow < g.ow; ++ow) {
      VecConfig cfg;
      cfg.mask = VecMask::first_n(static_cast<int>(kC0));
      cfg.repeat = static_cast<int>(g.w.kw);
      cfg.dst_rep_stride = 0;
      cfg.src0_rep_stride = 0;
      cfg.src1_rep_stride = kC0;
      auto dst = tmp.sub((h * g.ow + ow) * kC0, kC0);
      auto src = in.sub((h * g.iw + ow * g.w.sw) * kC0, g.w.kw * kC0);
      core.vec().binary(op, dst, dst, src, cfg);
      core.scalar_loop(1);
    }
  }
  // Stage 2: out[oh, ow, :] = reduce over kh of tmp[oh*Sh + kh, ow, :];
  // issued Oh*Ow times, repeat over Kh with a row-sized stride.
  for (std::int64_t oh = 0; oh < g.oh_t; ++oh) {
    for (std::int64_t ow = 0; ow < g.ow; ++ow) {
      VecConfig cfg;
      cfg.mask = VecMask::first_n(static_cast<int>(kC0));
      cfg.repeat = static_cast<int>(g.w.kh);
      cfg.dst_rep_stride = 0;
      cfg.src0_rep_stride = 0;
      cfg.src1_rep_stride = g.ow * kC0;
      auto dst = out.sub((oh * g.ow + ow) * kC0, kC0);
      auto src = tmp.sub((oh * g.w.sh * g.ow + ow) * kC0,
                         ((g.w.kh - 1) * g.ow + 1) * kC0);
      core.vec().binary(op, dst, dst, src, cfg);
      core.scalar_loop(1);
    }
  }
}

void xysplit_tile(AiCore& core, bool db, FwdSlot& sl, VecOp op, Float16 init,
                  Float16 scale, Span<Float16> gm_in, Span<Float16> gm_out,
                  const TileGeom& g) {
  const std::int64_t n_in = g.in_rows * g.iw * kC0;
  const std::int64_t n_tmp = g.in_rows * g.ow * kC0;
  const std::int64_t n_out = g.tile_patches() * kC0;
  auto in = sl.stage_in.sub(0, n_in);
  auto tmp = sl.work.sub(0, n_tmp);
  auto out = sl.out.sub(0, n_out);

  const Event load_done = staged(core, db, Pipe::kMteIn, sl.in_free,
                                 [&] { core.mte().copy(in, gm_in, n_in); });
  const Event init_done =
      staged(core, db, Pipe::kVector, std::max(sl.work_free, sl.out_free),
             [&] {
               core.vdup_flat(tmp, init, n_tmp);
               core.vdup_flat(out, init, n_out);
             });
  if (!db) core.pipe_barrier();
  const Event compute_done =
      staged(core, db, Pipe::kVector, std::max(load_done, init_done), [&] {
        xysplit_reduce(core, op, tmp, out, in, g);
        maybe_scale(core, out, scale, n_out);
      });
  sl.in_free = compute_done;
  sl.work_free = compute_done;
  if (!db) core.pipe_barrier();
  const Event store_done =
      staged(core, db, Pipe::kMteOut, compute_done,
             [&] { core.mte().copy(gm_out, out, n_out); });
  sl.out_free = store_done;
  if (db) {
    core.sched().note_tile(load_done, +1);
    core.sched().note_tile(store_done, -1);
  }
}

// Allocates one slot's worst-case buffers for `impl`. `ih_t` / `tp_max` /
// `pp_max` are the interior-tile (largest) dimensions; tail tiles use
// prefixes of the same buffers.
FwdSlot alloc_slot(AiCore& core, PoolImpl impl, const Window2d& w,
                   std::int64_t ih_t, std::int64_t iw, std::int64_t ow,
                   std::int64_t tp_max, std::int64_t pp_max) {
  FwdSlot sl;
  switch (impl) {
    case PoolImpl::kDirect:
      sl.stage_in = core.ub().alloc<Float16>(ih_t * iw * kC0);
      sl.out = core.ub().alloc<Float16>(tp_max * kC0);
      break;
    case PoolImpl::kIm2col:
      sl.stage_in = core.l1().alloc<Float16>(ih_t * iw * kC0);
      sl.work = core.ub().alloc<Float16>(w.kh * w.kw * pp_max * kC0);
      sl.out = core.ub().alloc<Float16>(pp_max * kC0);
      break;
    case PoolImpl::kExpansion:
      sl.stage_in = core.ub().alloc<Float16>(ih_t * iw * kC0);
      sl.work = core.ub().alloc<Float16>(w.kh * w.kw * pp_max * kC0);
      sl.out = core.ub().alloc<Float16>(pp_max * kC0);
      break;
    case PoolImpl::kXYSplit:
      sl.stage_in = core.ub().alloc<Float16>(ih_t * iw * kC0);
      sl.work = core.ub().alloc<Float16>(ih_t * ow * kC0);
      sl.out = core.ub().alloc<Float16>(tp_max * kC0);
      break;
  }
  return sl;
}

}  // namespace

// Shared forward driver for MaxPool and AvgPool-style reductions; `op`
// and `init` select the reduction, `scale` (if not 1) is applied to the
// output tile before the store (AvgPool's 1/(Kh*Kw)).
PoolResult pooling_forward_impl(Device& dev, const TensorF16& in,
                                const Window2d& w, akg::PoolImpl impl,
                                VecOp op, Float16 init, Float16 scale,
                                const akg::PoolPlan* plan_in) {
  // Warm lane: a non-null plan certifies that the descriptor and geometry
  // were validated when the plan was constructed (akg::plan_fwd validates
  // the window; serve::PlanCache keys on the live tensor geometry), so
  // the per-launch checks run only on the cold path.
  const std::int64_t t_v0 = detail::host_now_ns();
  if (plan_in == nullptr) {
    DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
    DV_CHECK_EQ(in.shape()[4], kC0);
    w.validate();
    if (impl != PoolImpl::kIm2col) {
      DV_CHECK(!w.has_padding())
          << to_string(impl)
          << " kernel supports only unpadded windows; use kIm2col";
    }
  }
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  const bool db = dev.double_buffer();
  const std::int64_t t_p0 = detail::host_now_ns();
  const akg::PoolPlan plan =
      plan_in != nullptr
          ? *plan_in
          : akg::plan_fwd(impl, dev.arch(), w, ih, iw, /*with_mask=*/false,
                          db);
  DV_CHECK_GE(plan.oh_tile, 1) << "invalid precomputed plan";

  // Worst-case (interior) tile dimensions; every tile fits in a prefix.
  const std::int64_t ih_t =
      std::min(ih, (plan.oh_tile - 1) * w.sh + w.kh);
  const std::int64_t tp_max = plan.oh_tile * ow;
  const std::int64_t pp_max = round_up(tp_max, kFractalRows);

  const std::int64_t t_a0 = detail::host_now_ns();
  TensorF16 out = detail::make_output(dev, Shape{n, c1, oh, ow, kC0});
  const std::int64_t t_a1 = detail::host_now_ns();

  // One block per (N, C1) slice, matching the paper's parallelization
  // ("the outer loops are parallelized between the AI Cores"); H-tiles of
  // one slice run sequentially on the same core -- serially when the
  // double-buffer policy is off, in ub_slots-deep ping-pong when on.
  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    const std::int64_t q = b % c1;
    const std::int64_t bn = b / c1;
    core.reset_scratch();
    std::vector<FwdSlot> slots;
    slots.reserve(static_cast<std::size_t>(plan.ub_slots));
    for (int s = 0; s < plan.ub_slots; ++s) {
      slots.push_back(alloc_slot(core, impl, w, ih_t, iw, ow, tp_max, pp_max));
    }

    for (std::int64_t t = 0; t < plan.num_h_tiles; ++t) {
      FwdSlot& sl = slots[static_cast<std::size_t>(t) % slots.size()];
      const HTile ht = akg::h_tile(w, ih, oh, plan.oh_tile, t);

      TileGeom g;
      g.w = w;
      g.w.pt = ht.pt_eff;
      g.w.pb = ht.pb_eff;
      g.in_rows = ht.in_rows();
      g.iw = iw;
      g.oh_t = ht.out_rows();
      g.ow = ow;

      auto gm_in = gm_view(in).sub(((bn * c1 + q) * ih + ht.y0) * iw * kC0,
                                   g.in_rows * iw * kC0);
      auto gm_out = gm_view(out).sub(
          ((bn * c1 + q) * oh + ht.o0) * ow * kC0, g.tile_patches() * kC0);

      switch (impl) {
        case PoolImpl::kDirect:
          direct_tile(core, db, sl, op, init, scale, gm_in, gm_out, g);
          break;
        case PoolImpl::kIm2col:
          im2col_tile(core, db, sl, op, init, scale, gm_in, gm_out, g);
          break;
        case PoolImpl::kExpansion:
          expansion_tile(core, db, sl, op, init, scale, gm_in, gm_out, g);
          break;
        case PoolImpl::kXYSplit:
          xysplit_tile(core, db, sl, op, init, scale, gm_in, gm_out, g);
          break;
      }
    }
  });

  detail::add_host_overhead(run, t_p0 - t_v0, t_a0 - t_p0, t_a1 - t_a0);

  PoolResult res;
  res.out = std::move(out);
  res.run = run;
  return res;
}

}  // namespace davinci::kernels
