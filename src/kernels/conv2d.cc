#include "kernels/conv2d.h"

#include "akg/tiling.h"
#include "common/align.h"
#include "kernels/detail.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {
using detail::gm_view;
}  // namespace

TensorF16 pack_conv_weights(const TensorF32& weights, const Window2d& w,
                            std::int64_t c1) {
  DV_CHECK_EQ(weights.shape().rank(), 4) << "(Cout, C, Kh, Kw)";
  const std::int64_t cout = weights.shape()[0];
  const std::int64_t c = weights.shape()[1];
  DV_CHECK_EQ(weights.shape()[2], w.kh);
  DV_CHECK_EQ(weights.shape()[3], w.kw);
  DV_CHECK_EQ(c1_of(c), c1);
  const std::int64_t k16 = c1 * w.kh * w.kw;
  const std::int64_t n16 = ceil_div(cout, kFractalRows);

  TensorF16 packed(Shape{k16 * n16 * kFractalElems});
  for (std::int64_t kb = 0; kb < k16; ++kb) {
    const std::int64_t q = kb / (w.kh * w.kw);
    const std::int64_t kh = (kb / w.kw) % w.kh;
    const std::int64_t kw = kb % w.kw;
    for (std::int64_t nb = 0; nb < n16; ++nb) {
      const std::int64_t base = (kb * n16 + nb) * kFractalElems;
      for (std::int64_t r = 0; r < kFractalRows; ++r) {    // k element
        const std::int64_t ch = q * kC0 + r;
        for (std::int64_t j = 0; j < kC0; ++j) {           // out channel
          const std::int64_t f = nb * kC0 + j;
          const float v = (ch < c && f < cout)
                              ? weights.at(f, ch, kh, kw)
                              : 0.0f;
          packed.flat(base + r * kC0 + j) = Float16(v);
        }
      }
    }
  }
  return packed;
}

Conv2dResult conv2d_cube(Device& dev, const TensorF16& in,
                         const TensorF32& weights, const Window2d& w,
                         bool use_im2col_instruction) {
  DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
  DV_CHECK_EQ(in.shape()[0], 1) << "single image";
  DV_CHECK_EQ(in.shape()[4], kC0);
  w.validate();
  const std::int64_t c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t cout = weights.shape()[0];
  const std::int64_t n16 = ceil_div(cout, kFractalRows);
  const std::int64_t k16 = c1 * w.kh * w.kw;

  const ArchConfig& arch = dev.arch();
  const std::int64_t frac_bytes = kFractalElems * 2;
  DV_CHECK_LE(k16 * n16 * frac_bytes, arch.l0b_bytes)
      << "weight set exceeds L0B; K-tiling is out of scope for this kernel";

  // Choose the largest output-row tile whose L0A / L0C / UB footprints fit.
  const std::int64_t l0a_fracs = arch.l0a_bytes / frac_bytes;
  const std::int64_t l0c_fracs = arch.l0c_bytes / (kFractalElems * 4);
  auto fits = [&](std::int64_t oh_tile) {
    const std::int64_t tp = oh_tile * ow;
    const std::int64_t m_frac = ceil_div(tp, kFractalRows);
    if (k16 * m_frac > l0a_fracs) return false;
    if (m_frac * n16 > l0c_fracs) return false;
    // UB: the drained fp16 result, plus the expansion staging if used.
    std::int64_t ub = m_frac * n16 * kFractalElems * 2;
    if (!use_im2col_instruction) {
      const std::int64_t in_rows = (oh_tile - 1) * w.sh + w.kh;
      ub += in_rows * iw * kC0 * 2;                          // input tile
      ub += w.kh * w.kw * m_frac * kFractalElems * 2;        // per-c1 cols
    }
    return ub <= arch.ub_bytes;
  };
  DV_CHECK(fits(1)) << "a single output row does not fit the Cube buffers";
  std::int64_t oh_tile = 1;
  while (oh_tile < oh && fits(oh_tile + 1)) ++oh_tile;
  const std::int64_t num_tiles = ceil_div(oh, oh_tile);

  const TensorF16 packed = pack_conv_weights(weights, w, c1);
  TensorF16 out(Shape{std::int64_t{1}, n16, oh, ow, kC0});

  auto run = dev.run(num_tiles, [&](AiCore& core, std::int64_t t) {
    const akg::HTile ht = akg::h_tile(w, ih, oh, oh_tile, t);
    Window2d wt = w;
    wt.pt = ht.pt_eff;
    wt.pb = ht.pb_eff;
    const std::int64_t in_rows = ht.in_rows();
    const std::int64_t tp = ht.out_rows() * ow;
    const std::int64_t m_frac = ceil_div(tp, kFractalRows);
    const std::int64_t pp_t = m_frac * kFractalRows;
    const std::int64_t p0 = ht.o0 * ow;
    const std::int64_t plane = pp_t * kC0;

    // Stage the packed weights GM -> L1 -> L0B.
    auto l1b = core.l1().alloc<Float16>(k16 * n16 * kFractalElems);
    core.mte().copy(l1b, gm_view(packed), k16 * n16 * kFractalElems);
    auto b = core.l0b().alloc<Float16>(k16 * n16 * kFractalElems);
    core.mte().copy(b, l1b, k16 * n16 * kFractalElems);

    // Build A (k-major fractals) in L0A, one C1 slice at a time.
    auto a = core.l0a().alloc<Float16>(k16 * m_frac * kFractalElems);
    Im2colArgs args;
    args.window = wt;
    args.ih = in_rows;
    args.iw = iw;
    DV_CHECK_EQ(args.patches(), tp);
    DV_CHECK_EQ(args.padded_patches(), pp_t);

    if (use_im2col_instruction) {
      auto l1t = core.l1().alloc<Float16>(in_rows * iw * kC0);
      for (std::int64_t q = 0; q < c1; ++q) {
        auto gm_in = gm_view(in).sub((q * ih + ht.y0) * iw * kC0,
                                     in_rows * iw * kC0);
        core.mte().copy(l1t, gm_in, in_rows * iw * kC0);
        core.scu().im2col_load(
            a.sub(q * w.kh * w.kw * plane, w.kh * w.kw * plane), l1t, args);
      }
    } else {
      // Expansion path: build the layout with vector copies in UB, then
      // stage UB -> L1 -> L0A.
      auto ubin = core.ub().alloc<Float16>(in_rows * iw * kC0);
      auto ubcols = core.ub().alloc<Float16>(w.kh * w.kw * plane);
      auto l1t = core.l1().alloc<Float16>(w.kh * w.kw * plane);
      for (std::int64_t q = 0; q < c1; ++q) {
        auto gm_in = gm_view(in).sub((q * ih + ht.y0) * iw * kC0,
                                     in_rows * iw * kC0);
        core.mte().copy(ubin, gm_in, in_rows * iw * kC0);
        core.pipe_barrier();
        for (std::int64_t kh = 0; kh < w.kh; ++kh) {
          for (std::int64_t kw = 0; kw < w.kw; ++kw) {
            const std::int64_t pbase = (kh * w.kw + kw) * plane;
            for (std::int64_t i = 0; i < ht.out_rows(); ++i) {
              auto dst = ubcols.sub(pbase + i * ow * kC0, ow * kC0);
              const std::int64_t y = i * w.sh + kh - wt.pt;
              if (y < 0 || y >= in_rows) {  // virtual padding rows
                core.vdup_flat(dst, Float16(), ow * kC0);
                core.scalar_loop(1);
                continue;
              }
              if (w.sw == 1 && !w.pl && !w.pr) {
                auto src = ubin.sub((y * iw + kw) * kC0, ow * kC0);
                core.vadds_flat(dst, src, Float16(), ow * kC0);
              } else {
                DV_CHECK(!w.pl && !w.pr)
                    << "expansion path supports H-padding only";
                auto src = ubin.sub((y * iw + kw) * kC0,
                                    ((ow - 1) * w.sw + 1) * kC0);
                detail::strided16_copy(core, dst, kC0, src, w.sw * kC0, ow);
              }
              core.scalar_loop(1);
            }
            if (pp_t > tp) {
              core.vdup_flat(ubcols.sub(pbase + tp * kC0, (pp_t - tp) * kC0),
                             Float16(), (pp_t - tp) * kC0);
            }
          }
        }
        core.pipe_barrier();
        core.mte().copy(l1t, ubcols, w.kh * w.kw * plane);
        core.mte().copy(a.sub(q * w.kh * w.kw * plane, w.kh * w.kw * plane),
                        l1t, w.kh * w.kw * plane);
      }
    }

    core.pipe_barrier();
    auto cbuf = core.l0c().alloc<float>(m_frac * n16 * kFractalElems);
    core.cube().mmad(cbuf, a, b, m_frac, k16, n16, /*accumulate=*/false,
                     /*a_k_major=*/true);
    core.pipe_barrier();

    auto ubout = core.ub().alloc<Float16>(m_frac * n16 * kFractalElems);
    core.mte().copy_convert(ubout, cbuf, m_frac * n16 * kFractalElems);
    core.pipe_barrier();

    // Store per output-channel block: full fractal rows, then the tail.
    const std::int64_t full = tp / kFractalRows;
    const std::int64_t rem = tp % kFractalRows;
    for (std::int64_t nb = 0; nb < n16; ++nb) {
      auto gm_plane = gm_view(out).sub((nb * oh * ow + p0) * kC0, tp * kC0);
      if (full > 0) {
        core.mte().copy_2d(gm_plane, kFractalElems,
                           ubout.sub(nb * kFractalElems,
                                     ((full - 1) * n16 + 1) * kFractalElems),
                           n16 * kFractalElems, full, kFractalElems);
      }
      if (rem > 0) {
        core.mte().copy(gm_plane.drop_front(full * kFractalElems),
                        ubout.sub((full * n16 + nb) * kFractalElems,
                                  rem * kC0),
                        rem * kC0);
      }
    }
  });

  return Conv2dResult{std::move(out), run};
}

}  // namespace davinci::kernels
