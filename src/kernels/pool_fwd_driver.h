// Internal: shared forward driver (defined in maxpool_fwd.cc) used by both
// the MaxPool and AvgPool entry points.
#pragma once

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "sim/vector_unit.h"

namespace davinci::kernels {

PoolFwdResult pooling_forward_impl(Device& dev, const TensorF16& in,
                                   const Window2d& w, akg::PoolImpl impl,
                                   VecOp op, Float16 init, Float16 scale);

}  // namespace davinci::kernels
