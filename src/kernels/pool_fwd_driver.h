// Internal: the kernel implementation entry points behind run_pool.
// Each takes an optional precomputed tiling plan (`plan`); nullptr means
// "plan here" via akg::plan_fwd / plan_bwd. The serving layer's plan
// cache (src/serve/plan_cache.h) supplies non-null plans so planning runs
// once per descriptor instead of once per launch.
#pragma once

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "sim/vector_unit.h"

namespace davinci::kernels {

// Shared forward driver (maxpool_fwd.cc) used by the MaxPool, MinPool and
// AvgPool forward kinds; `op`/`init` select the reduction, `scale` (if
// not 1) is applied to the output tile before the store.
PoolResult pooling_forward_impl(Device& dev, const TensorF16& in,
                                const Window2d& w, akg::PoolImpl impl,
                                VecOp op, Float16 init, Float16 scale,
                                const akg::PoolPlan* plan);

// MaxPool forward + Argmax mask (maxpool_mask.cc).
PoolResult maxpool_mask_fwd_impl(Device& dev, const TensorF16& in,
                                 const Window2d& w, akg::PoolImpl impl,
                                 const akg::PoolPlan* plan);

// MaxPool backward (maxpool_bwd.cc).
PoolResult maxpool_bwd_impl(Device& dev, const TensorF16& mask,
                            const TensorF16& grad, const Window2d& w,
                            std::int64_t ih, std::int64_t iw, MergeImpl merge,
                            const akg::PoolPlan* plan);

// AvgPool backward (avgpool.cc).
PoolResult avgpool_bwd_impl(Device& dev, const TensorF16& grad,
                            const Window2d& w, std::int64_t ih,
                            std::int64_t iw, MergeImpl merge,
                            const akg::PoolPlan* plan);

// Global average pooling (extra_pooling.cc); tiles rows against UB
// directly, so it takes no akg plan.
PoolResult global_avgpool_impl(Device& dev, const TensorF16& in);

}  // namespace davinci::kernels
