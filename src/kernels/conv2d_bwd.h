// Convolution backward-input on the Cube Unit + Col2Im -- the Col2Im
// instruction at its *original* job (Section II-B of the paper: "Col2im
// is used in the backward propagation pass of convolutional layers
// implemented with Im2col").
//
// Forward conv (im2col form):   out = W x im2col(x)
// Backward input:               dX  = col2im(W^T x dOut)
//
// The kernel computes the unrolled gradient dCols = dOut x W^T on the
// Cube Unit (one fractal-matmul per output-channel reduction) and merges
// it back to the NC1HWC0 input gradient either with the Col2Im
// instruction or with the baseline per-patch vadd scatter -- the same
// merge alternatives Figure 7c compares for pooling, here on the
// instruction's original workload (ablation A7).
//
// grad_out: (1, C1out, Oh, Ow, C0) fp16; weights: (Cout, C, Kh, Kw) fp32
// (packed host-side); result: (1, C1, Ih, Iw, C0) fp16.
//
// Scope: like conv2d_cube, the weight set must fit L0B per C1 slice and
// padding is supported through the window's virtual borders (gradient
// falling into padding is dropped by the merge).
#pragma once

#include "kernels/pooling.h"
#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::kernels {

struct Conv2dBwdResult {
  TensorF16 grad_in;  // (1, C1, Ih, Iw, C0)
  Device::RunResult run;
  std::int64_t cycles() const { return run.device_cycles; }
};

Conv2dBwdResult conv2d_backward_input(Device& dev, const TensorF16& grad_out,
                                      const TensorF32& weights,
                                      const Window2d& w, std::int64_t ih,
                                      std::int64_t iw, MergeImpl merge);

// Host-side transposed weight packing: (Cout, C, Kh, Kw) fp32 -> fractal
// operand of shape (N16f x K16) fractals, fractal (fb, kb) holding
// rows = output channels of block fb, cols = the 16 input channels of
// k-block kb = (c1, kh, kw). Exposed for tests.
TensorF16 pack_conv_weights_transposed(const TensorF32& weights,
                                       const Window2d& w, std::int64_t c1);

}  // namespace davinci::kernels
