// The AKG lowering step for pooling computes: pattern-match a TVM-style
// compute definition (akg/dsl.h) against the windowed-reduction form of
// Listing 1,
//
//   compute((N, C1, Oh, Ow, C0),
//       lambda n, c1, h, w, c0:
//           reduce(input[n, c1, h*Sh + red_h, w*Sw + red_w, c0],
//                  axis=[red_h, red_w]))
//
// extract the window geometry and reduction kind, pick the winning
// implementation (akg::select_fwd_impl -- the Figure 8 decision), and
// dispatch to the simulator kernels. This is the compilation path the
// paper's Section IV describes: operator *definitions* in the DSL,
// *schedules* decided per target, lowered code running on the device.
#pragma once

#include "akg/dsl.h"
#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "sim/device.h"
#include "sim/vector_unit.h"

namespace davinci::akg {

// A recognized windowed-pooling compute.
struct PoolingPattern {
  dsl::ReduceKind reduce;
  Window2d window;  // strides and kernel extracted; no padding (the DSL
                    // cannot express out-of-bounds reads)
};

// Matches the Listing-1 form; throws davinci::Error with a diagnostic if
// the compute is not a recognizable pooling.
PoolingPattern match_pooling(const dsl::Compute& c);

struct LoweredPoolResult {
  TensorF16 out;
  Device::RunResult run;
  PoolImpl impl;  // the implementation the scheduler selected
};

// Matches, schedules and runs the compute on the device. kMax/kMin lower
// to the max/min pooling kernels; kSum lowers to the sum-pooling kernel
// (AvgPool without its final scale -- in TVM the division is a separate
// elementwise compute, see Listing 1 vs Section V-C).
LoweredPoolResult lower_and_run(Device& dev, const dsl::Compute& c,
                                const TensorF16& input);

}  // namespace davinci::akg
