// MaxPool forward with Argmax-mask production (Section V-A / Figure 7b).
//
// Training needs the Argmax mask: the position of the maximum of each
// patch, obtained "by comparing each patch of the input with its maximum
// value". The mask is stored in the Im2Col output shape
// (N, C1, Kh, Kw, PP, C0) because that shape keeps overlapping patches
// separated and feeds the Col2Im-based backward directly.
//
//  * kIm2col variant: the comparison is one full-mask vcmpv_eq per
//    (kh, kw) plane against the already-reduced output tile.
//  * kDirect variant (baseline): the input is in its original layout, so
//    each comparison covers one patch row with only the C0 lanes active --
//    issued Oh*Ow*Kh times like the direct reduction itself.
#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pool_fwd_driver.h"
#include "kernels/pooling.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {

using akg::HTile;
using akg::PoolImpl;
using detail::gm_view;

}  // namespace

PoolResult maxpool_mask_fwd_impl(Device& dev, const TensorF16& in,
                                 const Window2d& w, akg::PoolImpl impl,
                                 const akg::PoolPlan* plan_in) {
  // Warm lane: a non-null plan means the descriptor/geometry was
  // validated at plan construction (see pooling_forward_impl).
  const std::int64_t t_v0 = detail::host_now_ns();
  if (plan_in == nullptr) {
    DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
    DV_CHECK_EQ(in.shape()[4], kC0);
    w.validate();
    DV_CHECK(impl == PoolImpl::kDirect || impl == PoolImpl::kIm2col)
        << "mask-producing forward supports kDirect and kIm2col";
    if (impl == PoolImpl::kDirect) {
      DV_CHECK(!w.has_padding()) << "direct kernel requires no padding";
    }
  }
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t ppg = round_up(oh * ow, kFractalRows);

  const std::int64_t t_p0 = detail::host_now_ns();
  const akg::PoolPlan plan =
      plan_in != nullptr
          ? *plan_in
          : akg::plan_fwd(impl, dev.arch(), w, ih, iw, /*with_mask=*/true);
  DV_CHECK_GE(plan.oh_tile, 1) << "invalid precomputed plan";

  const std::int64_t t_a0 = detail::host_now_ns();
  TensorF16 out = detail::make_output(dev, Shape{n, c1, oh, ow, kC0});
  // The mask keeps zero-filled construction: its fractal padding rows
  // (ppg - oh*ow per plane) are never stored by the kernel, yet they are
  // compared by result-equality checks and read by the backward pass.
  TensorF16 mask(Shape{n, c1, w.kh, w.kw, ppg, kC0});
  const std::int64_t t_a1 = detail::host_now_ns();

  // One block per (N, C1) slice; H-tiles run sequentially on the core.
  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    const std::int64_t q = b % c1;
    const std::int64_t bn = b / c1;
    for (std::int64_t t = 0; t < plan.num_h_tiles; ++t) {
      core.reset_scratch();
      const HTile ht = akg::h_tile(w, ih, oh, plan.oh_tile, t);

      Window2d wt = w;
      wt.pt = ht.pt_eff;
      wt.pb = ht.pb_eff;
      const std::int64_t in_rows = ht.in_rows();
      const std::int64_t oh_t = ht.out_rows();
      const std::int64_t tp = oh_t * ow;          // valid tile patches
      const std::int64_t pp = round_up(tp, kFractalRows);
      const std::int64_t plane = pp * kC0;
      const std::int64_t p0 = ht.o0 * ow;         // first global patch index

      auto gm_in = gm_view(in).sub(((bn * c1 + q) * ih + ht.y0) * iw * kC0,
                                   in_rows * iw * kC0);
      auto gm_out = gm_view(out).sub(((bn * c1 + q) * oh + ht.o0) * ow * kC0,
                                     tp * kC0);
      // Slice of the mask covering all (kh, kw) planes of this (n, c1),
      // positioned at this tile's first patch.
      auto gm_mask = gm_view(mask).sub(
          (bn * c1 + q) * w.kh * w.kw * ppg * kC0 + p0 * kC0,
          ((w.kh * w.kw - 1) * ppg + tp) * kC0);

      const std::int64_t n_in = in_rows * iw * kC0;

      if (impl == PoolImpl::kIm2col) {
        auto l1 = core.l1().alloc<Float16>(n_in);
        core.mte().copy(l1, gm_in, n_in);

        Im2colArgs args;
        args.window = wt;
        args.ih = in_rows;
        args.iw = iw;
        DV_CHECK_EQ(args.patches(), tp);

        auto cols = core.ub().alloc<Float16>(args.output_elems());
        core.scu().im2col_load(cols, l1, args);
        auto acc = core.ub().alloc<Float16>(plane);
        core.vdup_flat(acc, Float16::lowest(), plane);
        core.pipe_barrier();
        detail::reduce_planes(core, VecOp::kMax, acc, cols, w.kh * w.kw, plane);

        // One saturated-mask comparison per (kh, kw) plane.
        auto msk = core.ub().alloc<Float16>(w.kh * w.kw * plane);
        for (std::int64_t k = 0; k < w.kh * w.kw; ++k) {
          core.vcmpv_eq_flat(msk.sub(k * plane, plane),
                             cols.sub(k * plane, plane), acc, plane);
          core.scalar_loop(1);
        }
        core.pipe_barrier();
        core.mte().copy(gm_out, acc, tp * kC0);
        core.mte().copy_2d(gm_mask, ppg * kC0, msk, plane, w.kh * w.kw,
                           tp * kC0);
      } else {
        auto ubin = core.ub().alloc<Float16>(n_in);
        core.mte().copy(ubin, gm_in, n_in);
        auto acc = core.ub().alloc<Float16>(tp * kC0);
        core.vdup_flat(acc, Float16::lowest(), tp * kC0);
        core.pipe_barrier();

        // Direct reduction: Oh*Ow*Kh issues, 16 active lanes, repeat = Kw.
        for (std::int64_t i = 0; i < oh_t; ++i) {
          for (std::int64_t j = 0; j < ow; ++j) {
            auto dst = acc.sub((i * ow + j) * kC0, kC0);
            for (std::int64_t kh = 0; kh < w.kh; ++kh) {
              VecConfig cfg;
              cfg.mask = VecMask::first_n(static_cast<int>(kC0));
              cfg.repeat = static_cast<int>(w.kw);
              cfg.dst_rep_stride = 0;
              cfg.src0_rep_stride = 0;
              cfg.src1_rep_stride = kC0;
              auto src = ubin.sub(((i * w.sh + kh) * iw + j * w.sw) * kC0,
                                  w.kw * kC0);
              core.vec().binary(VecOp::kMax, dst, dst, src, cfg);
              core.scalar_loop(1);
            }
          }
        }
        core.pipe_barrier();

        // Mask production against the original layout: one comparison per
        // (oh, ow, kh) with repeat over Kw; the destinations for the Kw
        // repeats are strided across whole (kh, kw) planes.
        auto msk = core.ub().alloc<Float16>(w.kh * w.kw * plane);
        for (std::int64_t i = 0; i < oh_t; ++i) {
          for (std::int64_t j = 0; j < ow; ++j) {
            const std::int64_t p = i * ow + j;
            auto maxv = acc.sub(p * kC0, kC0);
            for (std::int64_t kh = 0; kh < w.kh; ++kh) {
              VecConfig cfg;
              cfg.mask = VecMask::first_n(static_cast<int>(kC0));
              cfg.repeat = static_cast<int>(w.kw);
              cfg.dst_rep_stride = plane;  // consecutive kw -> next plane
              cfg.src0_rep_stride = kC0;
              cfg.src1_rep_stride = 0;
              auto dst = msk.sub((kh * w.kw * pp + p) * kC0,
                                 ((w.kw - 1) * pp + 1) * kC0);
              auto src = ubin.sub(((i * w.sh + kh) * iw + j * w.sw) * kC0,
                                  w.kw * kC0);
              core.vec().cmpv_eq(dst, src, maxv, cfg);
              core.scalar_loop(1);
            }
          }
        }
        core.pipe_barrier();
        core.mte().copy(gm_out, acc, tp * kC0);
        core.mte().copy_2d(gm_mask, ppg * kC0, msk, plane, w.kh * w.kw,
                           tp * kC0);
      }
    }
  });

  detail::add_host_overhead(run, t_p0 - t_v0, t_a0 - t_p0, t_a1 - t_a0);

  PoolResult res;
  res.out = std::move(out);
  res.mask = std::move(mask);
  res.run = run;
  return res;
}

}  // namespace davinci::kernels
