// MaxPool backward kernels (Section V-B / Figure 7c).
//
// Inputs: the Argmax mask in the Im2Col shape (N, C1, Kh, Kw, PP, C0) and
// the incoming gradients (N, C1, Oh, Ow, C0). Both implementations share
// the multiplication step -- one full-mask vmul per (kh, kw) plane, which
// "works well" per the paper -- and differ only in the merge step, which
// is exactly the Col2im operation:
//
//  * kVadd: per-patch scatter adds into the (Ih, Iw, C0) output, 16 of 128
//    mask lanes, no repetition -- the baseline's "very poor usage of the
//    Vector Unit".
//  * kCol2im: the Col2Im instruction loads, accumulates and stores one
//    16xC0 fractal at a time and repeats over all patch fractals of a
//    (kh, kw) plane, so only Kh*Kw instruction sequences are issued.
//
// Scheduling: one block per (N, C1) slice ("tiling the computation on
// C1"); slices larger than the Unified Buffer are processed in H-tiles
// sequentially on the same core, with the seam rows (Kh - Sh rows shared
// between adjacent tiles when windows overlap) accumulated through a
// read-modify-write of global memory.
#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pooling.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {

using akg::HTile;
using detail::gm_view;

struct BwdTileCtx {
  Window2d wt;  // per-tile window (effective paddings)
  std::int64_t in_rows, iw, oh_t, ow, tp, pp, plane;
};

// Shared prologue: load the gradient tile and the mask planes, multiply.
// Returns the (in-place multiplied) mask-gradient buffer.
Span<Float16> load_and_multiply(AiCore& core, Span<Float16> gm_grad,
                                Span<Float16> gm_mask_slice,
                                std::int64_t ppg, const BwdTileCtx& c) {
  auto grad = core.ub().alloc<Float16>(c.tp * kC0);
  core.mte().copy(grad, gm_grad, c.tp * kC0);
  auto mg = core.ub().alloc<Float16>(c.wt.kh * c.wt.kw * c.plane);
  core.mte().copy_2d(mg, c.plane, gm_mask_slice, ppg * kC0,
                     c.wt.kh * c.wt.kw, c.tp * kC0);
  core.pipe_barrier();
  // vmul: mask plane x gradient tile, full mask (Listing 3's computation).
  for (std::int64_t k = 0; k < c.wt.kh * c.wt.kw; ++k) {
    core.vbin_flat(VecOp::kMul, mg.sub(k * c.plane, c.tp * kC0),
                   mg.sub(k * c.plane, c.tp * kC0), grad, c.tp * kC0);
    core.scalar_loop(1);
  }
  return mg;
}

// Shared epilogue: store the output tile, accumulating the seam rows this
// tile shares with the previous one (read-modify-write through UB; tiles
// of one slice run sequentially on one core, so this is race-free).
void store_with_seam(AiCore& core, Span<Float16> gm_out_tile,
                     Span<Float16> out, const BwdTileCtx& c,
                     std::int64_t seam_rows) {
  if (seam_rows > 0) {
    const std::int64_t n_seam = seam_rows * c.iw * kC0;
    auto prev = core.ub().alloc<Float16>(n_seam);
    core.mte().copy(prev, gm_out_tile, n_seam);
    core.pipe_barrier();
    core.vbin_flat(VecOp::kAdd, out, out, prev, n_seam);
  }
  core.pipe_barrier();
  core.mte().copy(gm_out_tile, out, c.in_rows * c.iw * kC0);
}

}  // namespace

PoolBwdResult maxpool_backward(Device& dev, const TensorF16& mask,
                               const TensorF16& grad, const Window2d& w,
                               std::int64_t ih, std::int64_t iw,
                               MergeImpl merge) {
  w.validate();
  DV_CHECK_EQ(mask.shape().rank(), 6) << "mask is (N,C1,Kh,Kw,PP,C0)";
  DV_CHECK_EQ(grad.shape().rank(), 5) << "grad is (N,C1,Oh,Ow,C0)";
  const std::int64_t n = mask.shape()[0], c1 = mask.shape()[1];
  DV_CHECK_EQ(mask.shape()[2], w.kh);
  DV_CHECK_EQ(mask.shape()[3], w.kw);
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  DV_CHECK_EQ(grad.shape()[2], oh);
  DV_CHECK_EQ(grad.shape()[3], ow);
  const std::int64_t ppg = round_up(oh * ow, kFractalRows);
  DV_CHECK_EQ(mask.shape()[4], ppg);

  const akg::PoolPlan plan = akg::plan_bwd(dev.arch(), w, ih, iw);
  const std::int64_t seam = w.kh > w.sh ? w.kh - w.sh : 0;

  TensorF16 grad_in(Shape{n, c1, ih, iw, kC0});

  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    const std::int64_t q = b % c1;
    const std::int64_t bn = b / c1;

    for (std::int64_t t = 0; t < plan.num_h_tiles; ++t) {
      core.reset_scratch();
      const HTile ht = akg::h_tile(w, ih, oh, plan.oh_tile, t);

      BwdTileCtx c;
      c.wt = w;
      c.wt.pt = ht.pt_eff;
      c.wt.pb = ht.pb_eff;
      c.in_rows = ht.in_rows();
      c.iw = iw;
      c.oh_t = ht.out_rows();
      c.ow = ow;
      c.tp = c.oh_t * ow;
      c.pp = round_up(c.tp, kFractalRows);
      c.plane = c.pp * kC0;
      const std::int64_t p0 = ht.o0 * ow;

      auto gm_grad = gm_view(grad).sub(
          ((bn * c1 + q) * oh + ht.o0) * ow * kC0, c.tp * kC0);
      auto gm_mask_slice = gm_view(mask).sub(
          (bn * c1 + q) * w.kh * w.kw * ppg * kC0 + p0 * kC0,
          ((w.kh * w.kw - 1) * ppg + c.tp) * kC0);
      auto gm_out_tile = gm_view(grad_in).sub(
          ((bn * c1 + q) * ih + ht.y0) * iw * kC0, c.in_rows * iw * kC0);

      auto mg = load_and_multiply(core, gm_grad, gm_mask_slice, ppg, c);

      auto out = core.ub().alloc<Float16>(c.in_rows * iw * kC0);
      core.vdup_flat(out, Float16(), c.in_rows * iw * kC0);
      core.pipe_barrier();

      if (merge == MergeImpl::kCol2im) {
        Im2colArgs args;
        args.window = c.wt;
        args.ih = c.in_rows;
        args.iw = iw;
        DV_CHECK_EQ(args.patches(), c.tp);
        core.scu().col2im(out, mg, args);
      } else {
        // Baseline merge: one 16-lane vadd per (kh, kw, patch), no
        // repetition (Section V-B).
        for (std::int64_t kh = 0; kh < w.kh; ++kh) {
          for (std::int64_t kw = 0; kw < w.kw; ++kw) {
            const std::int64_t pbase = (kh * w.kw + kw) * c.plane;
            for (std::int64_t p = 0; p < c.tp; ++p) {
              const std::int64_t y = (p / ow) * w.sh + kh - c.wt.pt;
              const std::int64_t x = (p % ow) * w.sw + kw - c.wt.pl;
              if (y < 0 || y >= c.in_rows || x < 0 || x >= iw) continue;
              VecConfig cfg;
              cfg.mask = VecMask::first_n(static_cast<int>(kC0));
              auto dst = out.sub((y * iw + x) * kC0, kC0);
              core.vec().binary(VecOp::kAdd, dst, dst,
                                mg.sub(pbase + p * kC0, kC0), cfg);
              core.scalar_loop(1);
            }
          }
        }
      }

      const std::int64_t seam_rows =
          t > 0 ? (seam < c.in_rows ? seam : c.in_rows) : 0;
      store_with_seam(core, gm_out_tile, out, c, seam_rows);
    }
  });

  return PoolBwdResult{std::move(grad_in), run};
}

}  // namespace davinci::kernels
