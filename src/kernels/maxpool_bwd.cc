// MaxPool backward kernels (Section V-B / Figure 7c).
//
// Inputs: the Argmax mask in the Im2Col shape (N, C1, Kh, Kw, PP, C0) and
// the incoming gradients (N, C1, Oh, Ow, C0). Both implementations share
// the multiplication step -- one full-mask vmul per (kh, kw) plane, which
// "works well" per the paper -- and differ only in the merge step, which
// is exactly the Col2im operation:
//
//  * kVadd: per-patch scatter adds into the (Ih, Iw, C0) output, 16 of 128
//    mask lanes, no repetition -- the baseline's "very poor usage of the
//    Vector Unit".
//  * kCol2im: the Col2Im instruction loads, accumulates and stores one
//    16xC0 fractal at a time and repeats over all patch fractals of a
//    (kh, kw) plane, so only Kh*Kw instruction sequences are issued.
//
// Scheduling: one block per (N, C1) slice ("tiling the computation on
// C1"); slices larger than the Unified Buffer are processed in H-tiles
// sequentially on the same core, with the seam rows (Kh - Sh rows shared
// between adjacent tiles when windows overlap) accumulated through a
// read-modify-write of global memory. Phases are issued through
// detail::staged: with the device's double-buffer policy on, tile t+1's
// loads overlap tile t's multiply/merge, and the seam read-modify-write
// carries an explicit cross-tile dependency on the previous tile's store
// (the RAW through global memory that makes the overlap safe).
#include <algorithm>
#include <vector>

#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pool_fwd_driver.h"
#include "kernels/pooling.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {

using akg::HTile;
using detail::gm_view;
using detail::staged;
using Event = PipeScheduler::Event;

struct BwdTileCtx {
  Window2d wt;  // per-tile window (effective paddings)
  std::int64_t in_rows, iw, oh_t, ow, tp, pp, plane;
};

// One ping-pong slot of the backward pipeline (see FwdSlot in
// maxpool_fwd.cc for the event convention).
struct BwdSlot {
  Span<Float16> grad;  // incoming gradient tile
  Span<Float16> mg;    // mask (later mask*grad) planes
  Span<Float16> out;   // (in_rows, Iw, C0) output tile
  Span<Float16> prev;  // seam rows re-read from GM
  Event grad_free = 0;
  Event mg_free = 0;
  Event out_free = 0;
  Event prev_free = 0;
};

}  // namespace

PoolResult maxpool_bwd_impl(Device& dev, const TensorF16& mask,
                            const TensorF16& grad, const Window2d& w,
                            std::int64_t ih, std::int64_t iw, MergeImpl merge,
                            const akg::PoolPlan* plan_in) {
  // Warm lane: a non-null plan means the descriptor/geometry was
  // validated at plan construction (see pooling_forward_impl).
  const std::int64_t t_v0 = detail::host_now_ns();
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t ppg = round_up(oh * ow, kFractalRows);
  if (plan_in == nullptr) {
    w.validate();
    DV_CHECK_EQ(mask.shape().rank(), 6) << "mask is (N,C1,Kh,Kw,PP,C0)";
    DV_CHECK_EQ(grad.shape().rank(), 5) << "grad is (N,C1,Oh,Ow,C0)";
    DV_CHECK_EQ(mask.shape()[2], w.kh);
    DV_CHECK_EQ(mask.shape()[3], w.kw);
    DV_CHECK_EQ(grad.shape()[2], oh);
    DV_CHECK_EQ(grad.shape()[3], ow);
    DV_CHECK_EQ(mask.shape()[4], ppg);
  }
  const std::int64_t n = mask.shape()[0], c1 = mask.shape()[1];

  const bool db = dev.double_buffer();
  const std::int64_t t_p0 = detail::host_now_ns();
  const akg::PoolPlan plan =
      plan_in != nullptr ? *plan_in : akg::plan_bwd(dev.arch(), w, ih, iw, db);
  DV_CHECK_GE(plan.oh_tile, 1) << "invalid precomputed plan";
  const std::int64_t seam = w.kh > w.sh ? w.kh - w.sh : 0;

  // Worst-case (interior) tile dimensions for the slot buffers.
  const std::int64_t in_rows_max =
      std::min(ih, (plan.oh_tile - 1) * w.sh + w.kh);
  const std::int64_t tp_max = plan.oh_tile * ow;
  const std::int64_t pp_max = round_up(tp_max, kFractalRows);

  const std::int64_t t_a0 = detail::host_now_ns();
  // Uninitialized only when the tile stores cover every input row: with
  // Sh > Kh (inter-tile gaps) or a trailing remainder (windows that stop
  // short of Ih), uncovered rows must read as the zero gradient.
  const bool full_cover =
      w.kh >= w.sh && (oh - 1) * w.sh + w.kh - w.pt >= ih;
  TensorF16 grad_in =
      full_cover ? detail::make_output(dev, Shape{n, c1, ih, iw, kC0})
                 : TensorF16(Shape{n, c1, ih, iw, kC0});
  const std::int64_t t_a1 = detail::host_now_ns();

  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    const std::int64_t q = b % c1;
    const std::int64_t bn = b / c1;
    core.reset_scratch();
    std::vector<BwdSlot> slots(static_cast<std::size_t>(plan.ub_slots));
    for (auto& sl : slots) {
      sl.grad = core.ub().alloc<Float16>(tp_max * kC0);
      sl.mg = core.ub().alloc<Float16>(w.kh * w.kw * pp_max * kC0);
      sl.out = core.ub().alloc<Float16>(in_rows_max * iw * kC0);
      if (seam > 0) sl.prev = core.ub().alloc<Float16>(seam * iw * kC0);
    }
    Event last_store = 0;  // previous tile's GM store (seam RAW)

    for (std::int64_t t = 0; t < plan.num_h_tiles; ++t) {
      BwdSlot& sl = slots[static_cast<std::size_t>(t) % slots.size()];
      const HTile ht = akg::h_tile(w, ih, oh, plan.oh_tile, t);

      BwdTileCtx c;
      c.wt = w;
      c.wt.pt = ht.pt_eff;
      c.wt.pb = ht.pb_eff;
      c.in_rows = ht.in_rows();
      c.iw = iw;
      c.oh_t = ht.out_rows();
      c.ow = ow;
      c.tp = c.oh_t * ow;
      c.pp = round_up(c.tp, kFractalRows);
      c.plane = c.pp * kC0;
      const std::int64_t p0 = ht.o0 * ow;

      auto gm_grad = gm_view(grad).sub(
          ((bn * c1 + q) * oh + ht.o0) * ow * kC0, c.tp * kC0);
      auto gm_mask_slice = gm_view(mask).sub(
          (bn * c1 + q) * w.kh * w.kw * ppg * kC0 + p0 * kC0,
          ((w.kh * w.kw - 1) * ppg + c.tp) * kC0);
      auto gm_out_tile = gm_view(grad_in).sub(
          ((bn * c1 + q) * ih + ht.y0) * iw * kC0, c.in_rows * iw * kC0);

      auto grad_t = sl.grad.sub(0, c.tp * kC0);
      auto mg = sl.mg.sub(0, w.kh * w.kw * c.plane);
      auto out = sl.out.sub(0, c.in_rows * iw * kC0);

      // Load the gradient tile and the mask planes.
      const Event load_done =
          staged(core, db, Pipe::kMteIn, std::max(sl.grad_free, sl.mg_free),
                 [&] {
                   core.mte().copy(grad_t, gm_grad, c.tp * kC0);
                   core.mte().copy_2d(mg, c.plane, gm_mask_slice, ppg * kC0,
                                      c.wt.kh * c.wt.kw, c.tp * kC0);
                 });
      if (!db) core.pipe_barrier();
      // vmul: mask plane x gradient tile, full mask (Listing 3's
      // computation), in place in mg.
      const Event mul_done =
          staged(core, db, Pipe::kVector, load_done, [&] {
            for (std::int64_t k = 0; k < c.wt.kh * c.wt.kw; ++k) {
              core.vbin_flat(VecOp::kMul, mg.sub(k * c.plane, c.tp * kC0),
                             mg.sub(k * c.plane, c.tp * kC0), grad_t,
                             c.tp * kC0);
              core.scalar_loop(1);
            }
          });
      sl.grad_free = mul_done;

      const Event init_done =
          staged(core, db, Pipe::kVector, sl.out_free, [&] {
            core.vdup_flat(out, Float16(), c.in_rows * iw * kC0);
          });
      if (!db) core.pipe_barrier();

      Event merge_done;
      if (merge == MergeImpl::kCol2im) {
        Im2colArgs args;
        args.window = c.wt;
        args.ih = c.in_rows;
        args.iw = iw;
        DV_CHECK_EQ(args.patches(), c.tp);
        merge_done =
            staged(core, db, Pipe::kScu, std::max(mul_done, init_done),
                   [&] { core.scu().col2im(out, mg, args); });
      } else {
        // Baseline merge: one 16-lane vadd per (kh, kw, patch), no
        // repetition (Section V-B).
        merge_done = staged(
            core, db, Pipe::kVector, std::max(mul_done, init_done), [&] {
              for (std::int64_t kh = 0; kh < w.kh; ++kh) {
                for (std::int64_t kw = 0; kw < w.kw; ++kw) {
                  const std::int64_t pbase = (kh * w.kw + kw) * c.plane;
                  for (std::int64_t p = 0; p < c.tp; ++p) {
                    const std::int64_t y = (p / ow) * w.sh + kh - c.wt.pt;
                    const std::int64_t x = (p % ow) * w.sw + kw - c.wt.pl;
                    if (y < 0 || y >= c.in_rows || x < 0 || x >= iw) continue;
                    VecConfig cfg;
                    cfg.mask = VecMask::first_n(static_cast<int>(kC0));
                    auto dst = out.sub((y * iw + x) * kC0, kC0);
                    core.vec().binary(VecOp::kAdd, dst, dst,
                                      mg.sub(pbase + p * kC0, kC0), cfg);
                    core.scalar_loop(1);
                  }
                }
              }
            });
      }
      sl.mg_free = merge_done;

      // Seam accumulation: re-read the rows this tile shares with the
      // previous one and add them in -- a RAW through GM, hence the
      // dependency on the previous tile's store.
      const std::int64_t seam_rows =
          t > 0 ? (seam < c.in_rows ? seam : c.in_rows) : 0;
      Event ready_to_store = merge_done;
      if (seam_rows > 0) {
        const std::int64_t n_seam = seam_rows * iw * kC0;
        auto prev = sl.prev.sub(0, n_seam);
        const Event prev_done =
            staged(core, db, Pipe::kMteIn,
                   std::max(sl.prev_free, last_store),
                   [&] { core.mte().copy(prev, gm_out_tile, n_seam); });
        if (!db) core.pipe_barrier();
        const Event add_done =
            staged(core, db, Pipe::kVector,
                   std::max(prev_done, merge_done), [&] {
                     core.vbin_flat(VecOp::kAdd, out, out, prev, n_seam);
                   });
        sl.prev_free = add_done;
        ready_to_store = add_done;
      }
      if (!db) core.pipe_barrier();
      const Event store_done =
          staged(core, db, Pipe::kMteOut, ready_to_store, [&] {
            core.mte().copy(gm_out_tile, out, c.in_rows * iw * kC0);
          });
      sl.out_free = store_done;
      last_store = store_done;
      if (db) {
        core.sched().note_tile(load_done, +1);
        core.sched().note_tile(store_done, -1);
      }
    }
  });

  detail::add_host_overhead(run, t_p0 - t_v0, t_a0 - t_p0, t_a1 - t_a0);

  PoolResult res;
  res.grad_in = std::move(grad_in);
  res.run = run;
  return res;
}

}  // namespace davinci::kernels
