// Fused convolution + average pooling on the Cube Unit -- the future-work
// item the paper names in Section VIII ("consider the fusion techniques
// described by Suita et al. to execute Avgpool together with convolution
// as matrix multiplication in the Cube Unit").
//
// AvgPool is a convolution whose weights are all 1/(Ph*Pw), and the
// composition of two convolutions is a convolution: pooling the output of
// conv(W, stride Sc) with a (Ph, Pw) window of stride Sp equals a single
// convolution with the composite kernel
//
//   W'[f, c, u, v] = (1 / (Ph * Pw)) *
//                    sum over (th, tw) in the pool window of
//                    W[f, c, u - th * Sc_h, v - tw * Sc_w]
//
// of size Kh' = (Ph - 1) * Sc_h + Kh (resp. width) and stride Sc * Sp.
// The fused form runs one Cube pass over the composite kernel instead of
// a Cube pass plus a Vector-Unit pooling pass.
//
// MaxPool cannot be fused this way ("CNNs tend to use Maxpool, which
// cannot be fused in the same way") -- which is exactly why the paper's
// Im2col/Col2im pooling matters; this module exists to quantify the
// alternative for the AvgPool case.
//
// Constraints: no padding in either stage, and the conv output must tile
// the pool grid exactly ((Ih - Kh) divisible by Sc_h, and the conv output
// height minus Ph divisible by Sp_h; same for width).
#pragma once

#include "kernels/conv2d.h"
#include "sim/device.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::kernels {

// Host-side composite-kernel construction (exposed for tests).
// weights: (Cout, C, Kh, Kw); returns (Cout, C, Kh', Kw').
TensorF32 compose_conv_avgpool_weights(const TensorF32& weights,
                                       const Window2d& conv,
                                       const Window2d& pool);

// The composite window (size Kh', stride Sc*Sp) the fused kernel runs.
Window2d fused_window(const Window2d& conv, const Window2d& pool);

// Runs conv + avgpool as ONE Cube-Unit convolution over the composite
// kernel. Output shape equals avgpool_forward(conv2d_cube(...)).
Conv2dResult conv2d_avgpool_fused(Device& dev, const TensorF16& in,
                                  const TensorF32& weights,
                                  const Window2d& conv, const Window2d& pool);

}  // namespace davinci::kernels
