// Pooling operators beyond the paper's MaxPool/AvgPool: global average
// pooling. (MinPool rides the shared forward driver and is dispatched
// directly by run_pool in pooling.cc.)
#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pool_fwd_driver.h"
#include "kernels/pooling.h"

namespace davinci::kernels {

namespace {
using detail::gm_view;
}  // namespace

PoolResult global_avgpool_impl(Device& dev, const TensorF16& in) {
  const std::int64_t t_v0 = detail::host_now_ns();
  DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
  DV_CHECK_EQ(in.shape()[4], kC0);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t lanes = dev.arch().vector_lanes;
  const Float16 inv(1.0f / static_cast<float>(ih * iw));

  // Row tiling against the Unified Buffer (input tile + the 128-lane
  // accumulator).
  const std::int64_t t_p0 = detail::host_now_ns();
  const std::int64_t row_elems = iw * kC0;
  std::int64_t rows_per_tile =
      (dev.arch().ub_bytes - 1024) / (row_elems * 2);
  DV_CHECK_GE(rows_per_tile, 1) << "a single input row does not fit UB";
  if (rows_per_tile > ih) rows_per_tile = ih;
  const std::int64_t num_tiles = ceil_div(ih, rows_per_tile);

  const std::int64_t t_a0 = detail::host_now_ns();
  TensorF16 out = detail::make_output(
      dev, Shape{n, c1, std::int64_t{1}, std::int64_t{1}, kC0});
  const std::int64_t t_a1 = detail::host_now_ns();

  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    // The accumulator lives across tile iterations; the tile buffer is
    // allocated once at its maximum size and reused (the scratch bump
    // allocator cannot free individual regions mid-kernel).
    auto acc = core.ub().alloc<Float16>(lanes);
    core.vdup_flat(acc, Float16(), lanes);
    auto tile_buf = core.ub().alloc<Float16>(rows_per_tile * row_elems);

    for (std::int64_t t = 0; t < num_tiles; ++t) {
      const std::int64_t r0 = t * rows_per_tile;
      const std::int64_t r1 = r0 + rows_per_tile < ih ? r0 + rows_per_tile
                                                      : ih;
      const std::int64_t n_t = (r1 - r0) * row_elems;
      auto tile = tile_buf.sub(0, n_t);
      core.mte().copy(tile,
                      gm_view(in).sub((b * ih + r0) * row_elems, n_t), n_t);
      core.pipe_barrier();

      // Running accumulation: acc[j] += chunk[j] for each 128-element
      // chunk, via the repeat idiom with a zero destination stride.
      const std::int64_t full = n_t / lanes;
      std::int64_t done = 0;
      std::int64_t instrs = 0;
      while (done < full) {
        const int rep = static_cast<int>(
            full - done > dev.arch().max_repeat ? dev.arch().max_repeat
                                                : full - done);
        VecConfig cfg;
        cfg.repeat = rep;
        cfg.dst_rep_stride = 0;
        cfg.src0_rep_stride = 0;
        cfg.src1_rep_stride = lanes;
        core.vec().binary(VecOp::kAdd, acc, acc,
                          tile.drop_front(done * lanes), cfg);
        done += rep;
        ++instrs;
      }
      const int tail = static_cast<int>(n_t % lanes);
      if (tail > 0) {
        VecConfig cfg;
        cfg.mask = VecMask::first_n(tail);
        core.vec().binary(VecOp::kAdd, acc, acc,
                          tile.drop_front(full * lanes), cfg);
        ++instrs;
      }
      if (instrs > 1) core.scalar_loop(instrs - 1);
    }

    // Lane-halving reduction tree: 128 -> 64 -> 32 -> 16 partial sums.
    for (std::int64_t width = lanes / 2; width >= kC0; width /= 2) {
      VecConfig cfg;
      cfg.mask = VecMask::first_n(static_cast<int>(width));
      core.vec().binary(VecOp::kAdd, acc, acc, acc.drop_front(width), cfg);
      core.scalar_loop(1);
    }

    // Mean and store.
    VecConfig cfg;
    cfg.mask = VecMask::first_n(static_cast<int>(kC0));
    core.vec().muls(acc, acc, inv, cfg);
    core.pipe_barrier();
    core.mte().copy(gm_view(out).sub(b * kC0, kC0), acc, kC0);
  });

  detail::add_host_overhead(run, t_p0 - t_v0, t_a0 - t_p0, t_a1 - t_a0);

  PoolResult res;
  res.out = std::move(out);
  res.run = run;
  return res;
}

}  // namespace davinci::kernels
