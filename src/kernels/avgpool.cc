// AvgPool backward kernel (Section V-C).
//
// Forward mirrors MaxPool with vadd instead of vmax plus an element-wise
// multiplication by 1/(Kh*Kw) before the store; it is dispatched straight
// to the shared forward driver by run_pool (pooling.cc), so this file
// holds only the backward pass.
//
// Backward needs no Argmax mask ("the equivalent mask for Avgpool contains
// 1 in all its positions"): the incoming gradients are scaled by
// 1/(Kh*Kw) and merged back with Col2im semantics. The kVadd baseline
// scatters the scaled gradient per patch; the kCol2im version materializes
// the scaled plane per kernel position (vector copies) and issues Col2Im.
#include <algorithm>
#include <vector>

#include "akg/tiling.h"
#include "kernels/detail.h"
#include "kernels/pool_fwd_driver.h"
#include "kernels/pooling.h"
#include "sim/scu.h"

namespace davinci::kernels {

namespace {

using akg::HTile;
using detail::gm_view;
using detail::staged;
using Event = PipeScheduler::Event;

// One ping-pong slot of the backward pipeline (see FwdSlot in
// maxpool_fwd.cc for the event convention).
struct AvgBwdSlot {
  Span<Float16> sg;    // scaled gradient tile
  Span<Float16> cols;  // materialized planes (kCol2im only)
  Span<Float16> out;   // (in_rows, Iw, C0) output tile
  Span<Float16> prev;  // seam rows re-read from GM
  Event sg_free = 0;
  Event cols_free = 0;
  Event out_free = 0;
  Event prev_free = 0;
};

}  // namespace

PoolResult avgpool_bwd_impl(Device& dev, const TensorF16& grad,
                            const Window2d& w, std::int64_t ih,
                            std::int64_t iw, MergeImpl merge,
                            const akg::PoolPlan* plan_in) {
  // Warm lane: a non-null plan means the descriptor/geometry was
  // validated at plan construction (see pooling_forward_impl).
  const std::int64_t t_v0 = detail::host_now_ns();
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  if (plan_in == nullptr) {
    w.validate();
    DV_CHECK_EQ(grad.shape().rank(), 5) << "grad is (N,C1,Oh,Ow,C0)";
    DV_CHECK_EQ(grad.shape()[2], oh);
    DV_CHECK_EQ(grad.shape()[3], ow);
  }
  const std::int64_t n = grad.shape()[0], c1 = grad.shape()[1];
  const Float16 inv(1.0f / static_cast<float>(w.kh * w.kw));

  const bool db = dev.double_buffer();
  const std::int64_t t_p0 = detail::host_now_ns();
  const akg::PoolPlan plan =
      plan_in != nullptr ? *plan_in : akg::plan_bwd(dev.arch(), w, ih, iw, db);
  DV_CHECK_GE(plan.oh_tile, 1) << "invalid precomputed plan";
  const std::int64_t seam = w.kh > w.sh ? w.kh - w.sh : 0;

  // Worst-case (interior) tile dimensions for the slot buffers.
  const std::int64_t in_rows_max =
      std::min(ih, (plan.oh_tile - 1) * w.sh + w.kh);
  const std::int64_t tp_max = plan.oh_tile * ow;
  const std::int64_t pp_max = round_up(tp_max, kFractalRows);

  const std::int64_t t_a0 = detail::host_now_ns();
  // Uninitialized only when the tile stores cover every input row (see
  // maxpool_bwd_impl): with Sh > Kh or a trailing remainder, uncovered
  // rows must read as the zero gradient.
  const bool full_cover =
      w.kh >= w.sh && (oh - 1) * w.sh + w.kh - w.pt >= ih;
  TensorF16 grad_in =
      full_cover ? detail::make_output(dev, Shape{n, c1, ih, iw, kC0})
                 : TensorF16(Shape{n, c1, ih, iw, kC0});
  const std::int64_t t_a1 = detail::host_now_ns();

  auto run = dev.run(n * c1, [&](AiCore& core, std::int64_t b) {
    const std::int64_t q = b % c1;
    const std::int64_t bn = b / c1;
    core.reset_scratch();
    std::vector<AvgBwdSlot> slots(static_cast<std::size_t>(plan.ub_slots));
    for (auto& sl : slots) {
      sl.sg = core.ub().alloc<Float16>(tp_max * kC0);
      if (merge == MergeImpl::kCol2im) {
        sl.cols = core.ub().alloc<Float16>(w.kh * w.kw * pp_max * kC0);
      }
      sl.out = core.ub().alloc<Float16>(in_rows_max * iw * kC0);
      if (seam > 0) sl.prev = core.ub().alloc<Float16>(seam * iw * kC0);
    }
    Event last_store = 0;  // previous tile's GM store (seam RAW)

    for (std::int64_t t = 0; t < plan.num_h_tiles; ++t) {
      AvgBwdSlot& sl = slots[static_cast<std::size_t>(t) % slots.size()];
      const HTile ht = akg::h_tile(w, ih, oh, plan.oh_tile, t);

      Window2d wt = w;
      wt.pt = ht.pt_eff;
      wt.pb = ht.pb_eff;
      const std::int64_t in_rows = ht.in_rows();
      const std::int64_t oh_t = ht.out_rows();
      const std::int64_t tp = oh_t * ow;
      const std::int64_t pp = round_up(tp, kFractalRows);
      const std::int64_t plane = pp * kC0;

      auto gm_grad = gm_view(grad).sub(
          ((bn * c1 + q) * oh + ht.o0) * ow * kC0, tp * kC0);
      auto gm_out_tile = gm_view(grad_in).sub(
          ((bn * c1 + q) * ih + ht.y0) * iw * kC0, in_rows * iw * kC0);

      auto sg = sl.sg.sub(0, tp * kC0);
      auto out = sl.out.sub(0, in_rows * iw * kC0);

      // Scale the gradient tile once: sg = grad * 1/(Kh*Kw).
      const Event load_done =
          staged(core, db, Pipe::kMteIn, sl.sg_free,
                 [&] { core.mte().copy(sg, gm_grad, tp * kC0); });
      if (!db) core.pipe_barrier();
      const Event scale_done =
          staged(core, db, Pipe::kVector, load_done,
                 [&] { core.vmuls_flat(sg, sg, inv, tp * kC0); });
      const Event init_done =
          staged(core, db, Pipe::kVector, sl.out_free, [&] {
            core.vdup_flat(out, Float16(), in_rows * iw * kC0);
          });
      if (!db) core.pipe_barrier();

      Event merge_done;
      if (merge == MergeImpl::kCol2im) {
        // Materialize the scaled plane per kernel position (all-ones mask
        // times gradient), then let Col2Im do the whole merge.
        auto cols = sl.cols.sub(0, w.kh * w.kw * plane);
        const Event mat_done =
            staged(core, db, Pipe::kVector,
                   std::max(scale_done, sl.cols_free), [&] {
                     for (std::int64_t k = 0; k < w.kh * w.kw; ++k) {
                       core.vadds_flat(cols.sub(k * plane, tp * kC0), sg,
                                       Float16(), tp * kC0);
                       core.scalar_loop(1);
                     }
                   });
        sl.sg_free = mat_done;
        if (!db) core.pipe_barrier();
        Im2colArgs args;
        args.window = wt;
        args.ih = in_rows;
        args.iw = iw;
        DV_CHECK_EQ(args.patches(), tp);
        merge_done =
            staged(core, db, Pipe::kScu, std::max(mat_done, init_done),
                   [&] { core.scu().col2im(out, cols, args); });
        sl.cols_free = merge_done;
      } else {
        merge_done = staged(
            core, db, Pipe::kVector, std::max(scale_done, init_done), [&] {
              for (std::int64_t kh = 0; kh < w.kh; ++kh) {
                for (std::int64_t kw = 0; kw < w.kw; ++kw) {
                  for (std::int64_t p = 0; p < tp; ++p) {
                    const std::int64_t y = (p / ow) * w.sh + kh - wt.pt;
                    const std::int64_t x = (p % ow) * w.sw + kw - wt.pl;
                    if (y < 0 || y >= in_rows || x < 0 || x >= iw) continue;
                    VecConfig cfg;
                    cfg.mask = VecMask::first_n(static_cast<int>(kC0));
                    auto dst = out.sub((y * iw + x) * kC0, kC0);
                    core.vec().binary(VecOp::kAdd, dst, dst,
                                      sg.sub(p * kC0, kC0), cfg);
                    core.scalar_loop(1);
                  }
                }
              }
            });
        sl.sg_free = merge_done;
      }

      // Seam accumulation: RAW through GM on the previous tile's store.
      const std::int64_t seam_rows =
          t > 0 ? (seam < in_rows ? seam : in_rows) : 0;
      Event ready_to_store = merge_done;
      if (seam_rows > 0) {
        const std::int64_t n_seam = seam_rows * iw * kC0;
        auto prev = sl.prev.sub(0, n_seam);
        const Event prev_done =
            staged(core, db, Pipe::kMteIn,
                   std::max(sl.prev_free, last_store),
                   [&] { core.mte().copy(prev, gm_out_tile, n_seam); });
        if (!db) core.pipe_barrier();
        const Event add_done =
            staged(core, db, Pipe::kVector,
                   std::max(prev_done, merge_done), [&] {
                     core.vbin_flat(VecOp::kAdd, out, out, prev, n_seam);
                   });
        sl.prev_free = add_done;
        ready_to_store = add_done;
      }
      if (!db) core.pipe_barrier();
      const Event store_done =
          staged(core, db, Pipe::kMteOut, ready_to_store, [&] {
            core.mte().copy(gm_out_tile, out, in_rows * iw * kC0);
          });
      sl.out_free = store_done;
      last_store = store_done;
      if (db) {
        core.sched().note_tile(load_done, +1);
        core.sched().note_tile(store_done, -1);
      }
    }
  });

  detail::add_host_overhead(run, t_p0 - t_v0, t_a0 - t_p0, t_a1 - t_a0);

  PoolResult res;
  res.grad_in = std::move(grad_in);
  res.run = run;
  return res;
}

}  // namespace davinci::kernels
