// The unified PoolOp entry point and the deprecated per-operator shims.
//
// run_pool is the only path into the pooling kernels: it validates the
// descriptor/input combination once, then dispatches to the internal
// implementation drivers (pool_fwd_driver.h). The historical free
// functions are thin shims that build the equivalent PoolOp -- they prove
// by construction that the API redesign changed no numerical or cycle
// behavior (tests/test_pool_op.cc checks bit-identity both ways).
#include "kernels/pooling.h"

#include "common/check.h"
#include "kernels/pool_fwd_driver.h"

namespace davinci::kernels {

const char* to_string(MergeImpl impl) {
  switch (impl) {
    case MergeImpl::kVadd: return "vadd";
    case MergeImpl::kCol2im: return "col2im";
  }
  return "?";
}

const char* to_string(PoolOpKind kind) {
  switch (kind) {
    case PoolOpKind::kMaxFwd: return "maxpool";
    case PoolOpKind::kAvgFwd: return "avgpool";
    case PoolOpKind::kMinFwd: return "minpool";
    case PoolOpKind::kGlobalAvg: return "global_avgpool";
    case PoolOpKind::kMaxMaskFwd: return "maxpool_mask";
    case PoolOpKind::kMaxBwd: return "maxpool_bwd";
    case PoolOpKind::kAvgBwd: return "avgpool_bwd";
  }
  return "?";
}

bool is_forward(PoolOpKind kind) {
  return kind == PoolOpKind::kMaxFwd || kind == PoolOpKind::kAvgFwd ||
         kind == PoolOpKind::kMinFwd || kind == PoolOpKind::kGlobalAvg ||
         kind == PoolOpKind::kMaxMaskFwd;
}

bool is_backward(PoolOpKind kind) {
  return kind == PoolOpKind::kMaxBwd || kind == PoolOpKind::kAvgBwd;
}

std::string PoolOp::to_string() const {
  std::string s = kernels::to_string(kind);
  if (kind == PoolOpKind::kGlobalAvg) return s;
  s += " " + window.to_string();
  if (is_forward(kind)) {
    s += std::string(" impl=") + akg::to_string(fwd);
  } else {
    s += std::string(" merge=") + kernels::to_string(merge);
  }
  return s;
}

namespace {

const akg::PoolPlan* plan_ptr(const PoolOp& op) {
  return op.plan.has_value() ? &*op.plan : nullptr;
}

const TensorF16& need(const TensorF16* t, const PoolOp& op,
                      const char* what) {
  DV_CHECK(t != nullptr) << op.to_string() << ": missing input tensor '"
                         << what << "'";
  return *t;
}

}  // namespace

PoolResult run_pool(Device& dev, const PoolOp& op, const PoolInputs& in) {
  // With an instruction-stream VM attached (serve::Session), stage the
  // launch's identity before dispatch: the display label and the input
  // buffers it reads, which the stream's dependency tracker uses for
  // RAW/WAR hazards. The annotation is free when no stream is attached.
  if (dev.vm_stream() != nullptr) {
    std::vector<vm::BufferId> reads;
    for (const TensorF16* t : {in.in, in.mask, in.grad}) {
      if (t != nullptr) {
        reads.push_back(reinterpret_cast<vm::BufferId>(t->data()));
      }
    }
    dev.annotate_vm_launch(op.to_string(), std::move(reads));
  }
  switch (op.kind) {
    case PoolOpKind::kMaxFwd:
      return pooling_forward_impl(dev, need(in.in, op, "in"), op.window,
                                  op.fwd, VecOp::kMax, Float16::lowest(),
                                  Float16(1.0f), plan_ptr(op));
    case PoolOpKind::kMinFwd:
      // Dual reduction: vmin and a +max-finite initializer. Zero padding
      // participates as 0, mirroring what the Im2Col instruction loads.
      return pooling_forward_impl(dev, need(in.in, op, "in"), op.window,
                                  op.fwd, VecOp::kMin, Float16::max_finite(),
                                  Float16(1.0f), plan_ptr(op));
    case PoolOpKind::kAvgFwd: {
      DV_CHECK(op.fwd == akg::PoolImpl::kDirect ||
               op.fwd == akg::PoolImpl::kIm2col)
          << "AvgPool forward supports kDirect and kIm2col";
      const Float16 inv(1.0f /
                        static_cast<float>(op.window.kh * op.window.kw));
      return pooling_forward_impl(dev, need(in.in, op, "in"), op.window,
                                  op.fwd, VecOp::kAdd, Float16(), inv,
                                  plan_ptr(op));
    }
    case PoolOpKind::kGlobalAvg:
      return global_avgpool_impl(dev, need(in.in, op, "in"));
    case PoolOpKind::kMaxMaskFwd:
      return maxpool_mask_fwd_impl(dev, need(in.in, op, "in"), op.window,
                                   op.fwd, plan_ptr(op));
    case PoolOpKind::kMaxBwd:
      return maxpool_bwd_impl(dev, need(in.mask, op, "mask"),
                              need(in.grad, op, "grad"), op.window, in.ih,
                              in.iw, op.merge, plan_ptr(op));
    case PoolOpKind::kAvgBwd:
      return avgpool_bwd_impl(dev, need(in.grad, op, "grad"), op.window,
                              in.ih, in.iw, op.merge, plan_ptr(op));
  }
  throw Error("run_pool: unknown PoolOpKind");
}

// --- Deprecated shims ---------------------------------------------------

PoolResult maxpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl) {
  PoolOp op;
  op.kind = PoolOpKind::kMaxFwd;
  op.window = w;
  op.fwd = impl;
  PoolInputs inputs;
  inputs.in = &in;
  return run_pool(dev, op, inputs);
}

PoolResult maxpool_forward_with_mask(Device& dev, const TensorF16& in,
                                     const Window2d& w, akg::PoolImpl impl) {
  PoolOp op;
  op.kind = PoolOpKind::kMaxMaskFwd;
  op.window = w;
  op.fwd = impl;
  PoolInputs inputs;
  inputs.in = &in;
  return run_pool(dev, op, inputs);
}

PoolResult maxpool_backward(Device& dev, const TensorF16& mask,
                            const TensorF16& grad, const Window2d& w,
                            std::int64_t ih, std::int64_t iw,
                            MergeImpl merge) {
  PoolOp op;
  op.kind = PoolOpKind::kMaxBwd;
  op.window = w;
  op.merge = merge;
  PoolInputs inputs;
  inputs.mask = &mask;
  inputs.grad = &grad;
  inputs.ih = ih;
  inputs.iw = iw;
  return run_pool(dev, op, inputs);
}

PoolResult avgpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl) {
  PoolOp op;
  op.kind = PoolOpKind::kAvgFwd;
  op.window = w;
  op.fwd = impl;
  PoolInputs inputs;
  inputs.in = &in;
  return run_pool(dev, op, inputs);
}

PoolResult avgpool_backward(Device& dev, const TensorF16& grad,
                            const Window2d& w, std::int64_t ih,
                            std::int64_t iw, MergeImpl merge) {
  PoolOp op;
  op.kind = PoolOpKind::kAvgBwd;
  op.window = w;
  op.merge = merge;
  PoolInputs inputs;
  inputs.grad = &grad;
  inputs.ih = ih;
  inputs.iw = iw;
  return run_pool(dev, op, inputs);
}

PoolResult minpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl) {
  PoolOp op;
  op.kind = PoolOpKind::kMinFwd;
  op.window = w;
  op.fwd = impl;
  PoolInputs inputs;
  inputs.in = &in;
  return run_pool(dev, op, inputs);
}

PoolResult global_avgpool(Device& dev, const TensorF16& in) {
  PoolOp op;
  op.kind = PoolOpKind::kGlobalAvg;
  PoolInputs inputs;
  inputs.in = &in;
  return run_pool(dev, op, inputs);
}

}  // namespace davinci::kernels
