#include "kernels/fused_conv_pool.h"

#include "common/check.h"

namespace davinci::kernels {

Window2d fused_window(const Window2d& conv, const Window2d& pool) {
  conv.validate();
  pool.validate();
  DV_CHECK(!conv.has_padding() && !pool.has_padding())
      << "fusion supports unpadded stages";
  Window2d w;
  w.kh = (pool.kh - 1) * conv.sh + conv.kh;
  w.kw = (pool.kw - 1) * conv.sw + conv.kw;
  w.sh = conv.sh * pool.sh;
  w.sw = conv.sw * pool.sw;
  return w;
}

TensorF32 compose_conv_avgpool_weights(const TensorF32& weights,
                                       const Window2d& conv,
                                       const Window2d& pool) {
  DV_CHECK_EQ(weights.shape().rank(), 4) << "(Cout, C, Kh, Kw)";
  DV_CHECK_EQ(weights.shape()[2], conv.kh);
  DV_CHECK_EQ(weights.shape()[3], conv.kw);
  const std::int64_t cout = weights.shape()[0];
  const std::int64_t c = weights.shape()[1];
  const Window2d fw = fused_window(conv, pool);
  const float inv = 1.0f / static_cast<float>(pool.kh * pool.kw);

  TensorF32 out(Shape{cout, c, fw.kh, fw.kw});
  for (std::int64_t f = 0; f < cout; ++f) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t th = 0; th < pool.kh; ++th) {
        for (std::int64_t tw = 0; tw < pool.kw; ++tw) {
          for (std::int64_t u = 0; u < conv.kh; ++u) {
            for (std::int64_t v = 0; v < conv.kw; ++v) {
              out.at(f, ch, th * conv.sh + u, tw * conv.sw + v) +=
                  inv * weights.at(f, ch, u, v);
            }
          }
        }
      }
    }
  }
  return out;
}

Conv2dResult conv2d_avgpool_fused(Device& dev, const TensorF16& in,
                                  const TensorF32& weights,
                                  const Window2d& conv, const Window2d& pool) {
  DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  // The pool grid must tile the conv output exactly so the fused floor
  // divisions agree with the two-stage pipeline.
  DV_CHECK_EQ((ih - conv.kh) % conv.sh, 0)
      << "conv stride must tile the input height";
  DV_CHECK_EQ((iw - conv.kw) % conv.sw, 0)
      << "conv stride must tile the input width";
  const std::int64_t conv_oh = conv.out_h(ih);
  const std::int64_t conv_ow = conv.out_w(iw);
  DV_CHECK_EQ((conv_oh - pool.kh) % pool.sh, 0)
      << "pool stride must tile the conv output height";
  DV_CHECK_EQ((conv_ow - pool.kw) % pool.sw, 0)
      << "pool stride must tile the conv output width";

  const TensorF32 composite =
      compose_conv_avgpool_weights(weights, conv, pool);
  return conv2d_cube(dev, in, composite, fused_window(conv, pool),
                     /*use_im2col_instruction=*/true);
}

}  // namespace davinci::kernels
