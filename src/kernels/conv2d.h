// Convolution on the Cube Unit via Im2Col (Sections II-A and III) -- the
// substrate the Im2Col/Col2Im instructions were designed for, implemented
// to demonstrate and test their original role. The pooling work of the
// paper reuses exactly this machinery on the Vector Unit instead.
//
// in:      (1, C1, Ih, Iw, C0) fp16 fractal layout.
// weights: (Cout, C, Kh, Kw) fp32 (packed host-side into the (K16, N16)
//          fractal layout the Cube Unit consumes).
// out:     (1, C1out, Oh, Ow, C0) fp16, C1out = ceil(Cout / 16).
//
// `use_im2col_instruction` selects how the unrolled layout is produced:
//  * true  -- the Im2Col load transforms the tile on its way L1 -> L0A
//             (no temporaries outside the target buffer);
//  * false -- "expansion": regular vector copies build the layout inside
//             the Unified Buffer, which is then staged UB -> L1 -> L0A.
// The A3 ablation bench compares the two, isolating the instruction's
// benefit for its original purpose the same way Figure 8 does for pooling.
//
// Scope: the weight set must fit L0B (C1 * Kh * Kw * ceil(Cout/16)
// fractals <= 128) -- the usual single-layer regime; the patch dimension
// is H-tiled against the L0A capacity.
#pragma once

#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::kernels {

struct Conv2dResult {
  TensorF16 out;  // (1, C1out, Oh, Ow, C0)
  Device::RunResult run;
  std::int64_t cycles() const { return run.device_cycles; }
};

Conv2dResult conv2d_cube(Device& dev, const TensorF16& in,
                         const TensorF32& weights, const Window2d& w,
                         bool use_im2col_instruction = true);

// Host-side weight packing: (Cout, C, Kh, Kw) fp32 -> fractal operand
// (K16 * N16 fractals, k-block-major), K16 = C1 * Kh * Kw,
// N16 = ceil(Cout / 16). Exposed for tests.
TensorF16 pack_conv_weights(const TensorF32& weights, const Window2d& w,
                            std::int64_t c1);

}  // namespace davinci::kernels
