// Pooling kernel programs for the simulated DaVinci AI Core -- the
// implementations the paper evaluates (Section V / Figures 7-8), written
// the way their lowered CCE-C code is described:
//
//  forward (MaxPool / AvgPool):
//    * kDirect     -- standard TVM lowering (Listing 1): the reduction
//                     instruction is issued Oh*Ow*Kh times with only the
//                     C0 = 16 lanes of the 128-lane mask active, repeating
//                     over Kw. At stride width 1 the lowering recovers the
//                     full mask over (Ow, C0) rows (Figure 8a's fast case).
//    * kIm2col     -- proposed (Listing 2): the tile is loaded L1 -> UB
//                     with the Im2Col instruction in transposed repeat
//                     mode 1; a full-mask reduction instruction is issued
//                     only Kh*Kw times.
//    * kExpansion  -- the im2col shape is produced *inside* the Unified
//                     Buffer by regular vector copies, then reduced like
//                     kIm2col (Figure 8's "Maxpool with expansion").
//    * kXYSplit    -- reduce along the width, then along the height
//                     (Lai et al., Figure 8b).
//
//  backward (merge step = Col2im):
//    * kVadd       -- baseline: per-patch 16-lane vadd scatter, no repeat
//                     ("the vadd instructions only set 16 elements of the
//                     vector mask ... and repetition is not used").
//    * kCol2im     -- proposed: the Col2Im instruction performs the merge,
//                     one whole fractal per step.
//
// All kernels take NC1HWC0 fp16 tensors in global memory, tile on C1 (and
// on output height when a slice exceeds the Unified Buffer -- the plan
// comes from akg::plan_fwd / akg::plan_bwd) and distribute blocks over the
// device's AI Cores. Direct, expansion and X-Y-split kernels require zero
// padding (the paper evaluates them only without padding); the
// im2col-based kernels support padding, applied during the Im2Col load.
#pragma once

#include <cstdint>

#include "akg/tiling.h"
#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::kernels {

// Merge-step implementation for the backward operators.
enum class MergeImpl : std::uint8_t { kVadd, kCol2im };

const char* to_string(MergeImpl impl);

struct PoolFwdResult {
  TensorF16 out;  // (N, C1, Oh, Ow, C0)
  Device::RunResult run;
  std::int64_t cycles() const { return run.device_cycles; }
};

struct PoolMaskFwdResult {
  TensorF16 out;   // (N, C1, Oh, Ow, C0)
  TensorF16 mask;  // (N, C1, Kh, Kw, PP, C0), PP = Oh*Ow rounded to fractals
  Device::RunResult run;
  std::int64_t cycles() const { return run.device_cycles; }
};

struct PoolBwdResult {
  TensorF16 grad_in;  // (N, C1, Ih, Iw, C0)
  Device::RunResult run;
  std::int64_t cycles() const { return run.device_cycles; }
};

// --- MaxPool ---

PoolFwdResult maxpool_forward(Device& dev, const TensorF16& in,
                              const Window2d& w, akg::PoolImpl impl);

// Forward plus the Argmax mask needed for training (Figure 7b). Supported
// for kDirect (baseline) and kIm2col (proposed).
PoolMaskFwdResult maxpool_forward_with_mask(Device& dev, const TensorF16& in,
                                            const Window2d& w,
                                            akg::PoolImpl impl);

// Backward: mask (N, C1, Kh, Kw, PP, C0) and incoming gradients
// (N, C1, Oh, Ow, C0) -> gradient w.r.t. the input (N, C1, Ih, Iw, C0).
PoolBwdResult maxpool_backward(Device& dev, const TensorF16& mask,
                               const TensorF16& grad, const Window2d& w,
                               std::int64_t ih, std::int64_t iw,
                               MergeImpl merge);

// --- AvgPool (Section V-C) ---

// Supported for kDirect and kIm2col.
PoolFwdResult avgpool_forward(Device& dev, const TensorF16& in,
                              const Window2d& w, akg::PoolImpl impl);

// AvgPool backward needs no mask: every position contributes, scaled by
// 1 / (Kh * Kw).
PoolBwdResult avgpool_backward(Device& dev, const TensorF16& grad,
                               const Window2d& w, std::int64_t ih,
                               std::int64_t iw, MergeImpl merge);

// --- Extensions beyond the paper's operators, on the same machinery ---

// MinPool: identical schedules with vmin and a +max-finite initializer.
// Supported for kDirect and kIm2col (and the other two, which share the
// MaxPool driver).
PoolFwdResult minpool_forward(Device& dev, const TensorF16& in,
                              const Window2d& w, akg::PoolImpl impl);

// Global average pooling: (N, C1, H, W, C0) -> (N, C1, 1, 1, C0), the
// mean over all spatial positions per channel. A different vector
// pattern from windowed pooling: a saturated-mask running accumulation
// over 8-position chunks followed by a 128 -> C0 lane-halving reduction
// tree, then one vmuls by 1/(H*W).
PoolFwdResult global_avgpool(Device& dev, const TensorF16& in);

}  // namespace davinci::kernels
