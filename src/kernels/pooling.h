// Pooling kernel programs for the simulated DaVinci AI Core -- the
// implementations the paper evaluates (Section V / Figures 7-8), written
// the way their lowered CCE-C code is described:
//
//  forward (MaxPool / AvgPool):
//    * kDirect     -- standard TVM lowering (Listing 1): the reduction
//                     instruction is issued Oh*Ow*Kh times with only the
//                     C0 = 16 lanes of the 128-lane mask active, repeating
//                     over Kw. At stride width 1 the lowering recovers the
//                     full mask over (Ow, C0) rows (Figure 8a's fast case).
//    * kIm2col     -- proposed (Listing 2): the tile is loaded L1 -> UB
//                     with the Im2Col instruction in transposed repeat
//                     mode 1; a full-mask reduction instruction is issued
//                     only Kh*Kw times.
//    * kExpansion  -- the im2col shape is produced *inside* the Unified
//                     Buffer by regular vector copies, then reduced like
//                     kIm2col (Figure 8's "Maxpool with expansion").
//    * kXYSplit    -- reduce along the width, then along the height
//                     (Lai et al., Figure 8b).
//
//  backward (merge step = Col2im):
//    * kVadd       -- baseline: per-patch 16-lane vadd scatter, no repeat
//                     ("the vadd instructions only set 16 elements of the
//                     vector mask ... and repetition is not used").
//    * kCol2im     -- proposed: the Col2Im instruction performs the merge,
//                     one whole fractal per step.
//
// All kernels take NC1HWC0 fp16 tensors in global memory, tile on C1 (and
// on output height when a slice exceeds the Unified Buffer -- the plan
// comes from akg::plan_fwd / akg::plan_bwd) and distribute blocks over the
// device's AI Cores. Direct, expansion and X-Y-split kernels require zero
// padding (the paper evaluates them only without padding); the
// im2col-based kernels support padding, applied during the Im2Col load.
//
// --- Entry point ---
//
// Every operator runs through ONE entry point:
//
//   PoolResult r = run_pool(dev, PoolOp{...}, PoolInputs{...});
//
// A PoolOp is a plain descriptor (operator kind, window geometry, lowering
// choices, optional precomputed tiling plan), which makes it hashable /
// comparable -- the serving layer (src/serve/) batches requests by PoolOp
// and caches tiling plans per descriptor. The historical per-operator free
// functions below remain as thin shims over run_pool; new code (and
// everything in-tree outside this module and the tests) should construct
// a PoolOp instead. See docs/API.md for the migration note.
#pragma once

#include <cstdint>
#include <optional>

#include "akg/tiling.h"
#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::kernels {

// Merge-step implementation for the backward operators.
enum class MergeImpl : std::uint8_t { kVadd, kCol2im };

const char* to_string(MergeImpl impl);

// The pooling operators, forward and backward, in one enum -- the "op"
// axis of the unified descriptor.
enum class PoolOpKind : std::uint8_t {
  kMaxFwd,      // MaxPool forward (Figure 7a / 8)
  kAvgFwd,      // AvgPool forward (Section V-C)
  kMinFwd,      // MinPool forward (extension; dual of MaxPool)
  kGlobalAvg,   // global average pooling (extension)
  kMaxMaskFwd,  // MaxPool forward + Argmax mask (Figure 7b)
  kMaxBwd,      // MaxPool backward: mask * grad, Col2im merge (Figure 7c)
  kAvgBwd,      // AvgPool backward: scaled grad, Col2im merge
};

const char* to_string(PoolOpKind kind);

// True for the kinds that consume an input activation tensor and produce
// an output activation (everything except the backward passes).
bool is_forward(PoolOpKind kind);
// True for the kinds that produce a gradient w.r.t. the input.
bool is_backward(PoolOpKind kind);

// The unified operator descriptor. A PoolOp fully determines *how* a
// pooling computation is lowered; the tensors it runs on arrive separately
// in PoolInputs. Two requests with equal PoolOp (ignoring `plan`) and
// equal input geometry can share one device launch and one tiling plan.
struct PoolOp {
  PoolOpKind kind = PoolOpKind::kMaxFwd;
  Window2d window{};  // ignored by kGlobalAvg
  // Forward lowering (forward kinds; kMaxMaskFwd supports kDirect/kIm2col).
  akg::PoolImpl fwd = akg::PoolImpl::kIm2col;
  // Backward merge step (backward kinds).
  MergeImpl merge = MergeImpl::kCol2im;
  // Precomputed tiling plan (forward and backward kinds with a window).
  // When set, the kernel uses it instead of re-running akg::plan_fwd /
  // plan_bwd -- this is how the serving layer's plan cache takes effect.
  // The plan must have been computed for the same (impl, window, input
  // geometry, mask, double-buffer) tuple; see serve::PlanCache.
  std::optional<akg::PoolPlan> plan = std::nullopt;

  std::string to_string() const;
};

// The tensors one pooling invocation runs on. Pointers are non-owning and
// must outlive the run_pool call. Forward kinds read `in`; backward kinds
// read `grad` (and `mask` for kMaxBwd) plus the input spatial size the
// gradient maps back to.
struct PoolInputs {
  const TensorF16* in = nullptr;    // (N, C1, Ih, Iw, C0), forward kinds
  const TensorF16* mask = nullptr;  // (N, C1, Kh, Kw, PP, C0), kMaxBwd
  const TensorF16* grad = nullptr;  // (N, C1, Oh, Ow, C0), backward kinds
  std::int64_t ih = 0, iw = 0;      // input spatial size, backward kinds
};

// The unified result: every operator fills `run` and exactly the tensors
// it produces -- `out` for forward kinds, additionally `mask` for
// kMaxMaskFwd, and `grad_in` for backward kinds. Unproduced tensors stay
// default-constructed (rank 0).
struct PoolResult {
  TensorF16 out;      // (N, C1, Oh, Ow, C0); empty for backward kinds
  TensorF16 mask;     // (N, C1, Kh, Kw, PP, C0); kMaxMaskFwd only
  TensorF16 grad_in;  // (N, C1, Ih, Iw, C0); backward kinds only
  Device::RunResult run;

  // Rank-based: a default-constructed tensor has a rank-0 shape, whose
  // num_elements() is 1 (the empty product), so size() cannot tell
  // "absent" from "scalar".
  bool has_out() const { return out.shape().rank() > 0; }
  bool has_mask() const { return mask.shape().rank() > 0; }
  bool has_grad_in() const { return grad_in.shape().rank() > 0; }
  std::int64_t cycles() const { return run.device_cycles; }
};

// Deprecated aliases from before the result structs were collapsed
// (docs/API.md); all three were layout-compatible prefixes of PoolResult.
using PoolFwdResult = PoolResult;
using PoolMaskFwdResult = PoolResult;
using PoolBwdResult = PoolResult;

// Runs one pooling operator on the device. Throws davinci::Error on
// invalid descriptor/input combinations (unsupported impl for the kind,
// padding on a non-im2col lowering, shape mismatches).
PoolResult run_pool(Device& dev, const PoolOp& op, const PoolInputs& in);

// --- Deprecated per-operator shims (thin wrappers over run_pool) ---
//
// Kept so existing call sites and the shim-equivalence tests keep
// compiling; each builds the corresponding PoolOp and forwards. In-tree
// code outside this module and tests/ must call run_pool instead (CI
// greps for violations).

PoolResult maxpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl);

// Forward plus the Argmax mask needed for training (Figure 7b). Supported
// for kDirect (baseline) and kIm2col (proposed).
PoolResult maxpool_forward_with_mask(Device& dev, const TensorF16& in,
                                     const Window2d& w, akg::PoolImpl impl);

// Backward: mask (N, C1, Kh, Kw, PP, C0) and incoming gradients
// (N, C1, Oh, Ow, C0) -> gradient w.r.t. the input (N, C1, Ih, Iw, C0).
PoolResult maxpool_backward(Device& dev, const TensorF16& mask,
                            const TensorF16& grad, const Window2d& w,
                            std::int64_t ih, std::int64_t iw,
                            MergeImpl merge);

// AvgPool (Section V-C). Supported for kDirect and kIm2col.
PoolResult avgpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl);

// AvgPool backward needs no mask: every position contributes, scaled by
// 1 / (Kh * Kw).
PoolResult avgpool_backward(Device& dev, const TensorF16& grad,
                            const Window2d& w, std::int64_t ih,
                            std::int64_t iw, MergeImpl merge);

// MinPool: identical schedules with vmin and a +max-finite initializer.
PoolResult minpool_forward(Device& dev, const TensorF16& in,
                           const Window2d& w, akg::PoolImpl impl);

// Global average pooling: (N, C1, H, W, C0) -> (N, C1, 1, 1, C0), the
// mean over all spatial positions per channel.
PoolResult global_avgpool(Device& dev, const TensorF16& in);

}  // namespace davinci::kernels
