#include "serve/request_trace.h"

#include <algorithm>
#include <unordered_map>

#include "common/json.h"

namespace davinci::serve {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0, Clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - t0).count();
}

}  // namespace

const char* to_string(ReqEventKind kind) {
  switch (kind) {
    case ReqEventKind::kSubmitted: return "submitted";
    case ReqEventKind::kAdmitted: return "admitted";
    case ReqEventKind::kBatched: return "batched";
    case ReqEventKind::kPlanned: return "planned";
    case ReqEventKind::kLaunched: return "launched";
    case ReqEventKind::kVmScheduled: return "vm_scheduled";
    case ReqEventKind::kCompleted: return "completed";
    case ReqEventKind::kExpired: return "expired";
    case ReqEventKind::kShed: return "shed";
    case ReqEventKind::kRejected: return "rejected";
    case ReqEventKind::kCancelled: return "cancelled";
    case ReqEventKind::kBisected: return "bisected";
    case ReqEventKind::kPoisoned: return "poisoned";
    case ReqEventKind::kFailed: return "failed";
  }
  return "?";
}

RequestTraceRing::RequestTraceRing(std::size_t capacity)
    : capacity_(capacity), epoch_(Clock::now()) {
  stats_.capacity = capacity_;
  ring_.reserve(capacity_);
}

void RequestTraceRing::record(std::int64_t request, ReqEventKind kind,
                              std::int64_t a, std::int64_t b) {
  if (capacity_ == 0) return;
  const Clock::time_point now = Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  ReqEvent e;
  e.request = request;
  e.kind = kind;
  e.t_us = us_since(epoch_, now);
  e.a = a;
  e.b = b;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    // Overwrite the oldest event (bounded memory); the cumulative
    // counters below stay exact, only the retained window shrinks.
    ring_[static_cast<std::size_t>(stats_.recorded) % capacity_] = e;
    stats_.dropped += 1;
  }
  stats_.recorded += 1;
  stats_.by_kind[static_cast<int>(kind)] += 1;
}

RequestTraceRing::Stats RequestTraceRing::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<ReqEvent> RequestTraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ReqEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || capacity_ == 0) {
    out = ring_;
  } else {
    // The ring wrapped: oldest retained event sits at the write cursor.
    const std::size_t head =
        static_cast<std::size_t>(stats_.recorded) % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<long>(head),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<long>(head));
  }
  return out;
}

void RequestTraceRing::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  stats_ = Stats{};
  stats_.capacity = capacity_;
  epoch_ = Clock::now();
}

std::vector<HostSpan> build_request_spans(
    const std::vector<ReqEvent>& events) {
  // Per-request fold of the (time-ordered) snapshot.
  struct Req {
    std::int64_t id = 0;
    double submitted = -1.0, admitted = -1.0, launched = -1.0;
    double terminal = -1.0;  // completion or failure timestamp
    std::int64_t batch = -1, batch_size = 0;
    std::int64_t plan_hit = -1;
    std::int64_t vm_start = -1, vm_end = -1;
    ReqEventKind outcome = ReqEventKind::kSubmitted;
    bool done = false;
  };
  std::vector<Req> reqs;
  std::unordered_map<std::int64_t, std::size_t> index;
  auto find = [&](std::int64_t id) -> Req& {
    auto [it, inserted] = index.try_emplace(id, reqs.size());
    if (inserted) {
      reqs.push_back(Req{});
      reqs.back().id = id;
    }
    return reqs[it->second];
  };
  for (const ReqEvent& e : events) {
    Req& r = find(e.request);
    switch (e.kind) {
      case ReqEventKind::kSubmitted: r.submitted = e.t_us; break;
      case ReqEventKind::kAdmitted: r.admitted = e.t_us; break;
      case ReqEventKind::kPlanned: r.plan_hit = e.a; break;
      case ReqEventKind::kBatched:
        r.batch = e.a;
        r.batch_size = e.b;
        break;
      case ReqEventKind::kLaunched: r.launched = e.t_us; break;
      case ReqEventKind::kVmScheduled:
        r.vm_start = e.a;
        r.vm_end = e.b;
        break;
      case ReqEventKind::kCompleted:
      case ReqEventKind::kExpired:
      case ReqEventKind::kShed:
      case ReqEventKind::kRejected:
      case ReqEventKind::kCancelled:
      case ReqEventKind::kPoisoned:
      case ReqEventKind::kFailed:
        r.terminal = e.t_us;
        r.outcome = e.kind;
        r.done = true;
        break;
      case ReqEventKind::kBisected: break;
    }
  }

  // Affine host-us -> stream-cycle map, anchored on (launched, vm_start)
  // pairs: the launch event is the host-side moment the VM placed the
  // launch, so anchoring there lines the queued/batching phases up with
  // the device tracks they precede. One anchor fixes the offset with a
  // 1 cycle/us scale; two or more fix the scale from the extreme
  // anchors. No anchor (VM off or nothing launched): identity, the
  // trace is host-only but still self-consistent.
  double a0_us = 0.0, a0_cy = 0.0, scale = 1.0;
  {
    const Req* lo = nullptr;
    const Req* hi = nullptr;
    for (const Req& r : reqs) {
      if (r.launched < 0.0 || r.vm_start < 0) continue;
      if (lo == nullptr || r.launched < lo->launched) lo = &r;
      if (hi == nullptr || r.launched > hi->launched) hi = &r;
    }
    if (lo != nullptr) {
      a0_us = lo->launched;
      a0_cy = static_cast<double>(lo->vm_start);
      if (hi != lo && hi->launched > lo->launched + 1e-9) {
        const double s = static_cast<double>(hi->vm_start - lo->vm_start) /
                         (hi->launched - lo->launched);
        if (s > 0.0) scale = s;
      }
    }
  }
  auto to_cycles = [&](double t_us) {
    const double c = a0_cy + (t_us - a0_us) * scale;
    return c > 0.0 ? static_cast<std::int64_t>(c) : 0;
  };

  std::sort(reqs.begin(), reqs.end(),
            [](const Req& a, const Req& b) { return a.id < b.id; });

  std::vector<HostSpan> spans;
  for (const Req& r : reqs) {
    if (r.submitted < 0.0) continue;  // admission fell out of the ring
    HostSpan base;
    base.row = static_cast<int>(r.id);
    base.row_name = "req " + std::to_string(r.id);

    const bool launched = r.launched >= 0.0;
    const bool placed = launched && r.vm_start >= 0;
    // Queued: submit -> admission (or the terminal event for requests
    // that never reached the worker).
    const double queue_end_us = r.admitted >= 0.0
                                    ? r.admitted
                                    : (r.terminal >= 0.0 ? r.terminal
                                                         : r.submitted);
    HostSpan queued = base;
    queued.name = "queued";
    queued.start = to_cycles(r.submitted);
    queued.end = std::max(queued.start, to_cycles(queue_end_us));
    queued.args_json = "{\"request\":" + json::number(r.id) + "}";
    spans.push_back(queued);

    if (launched) {
      // Batching/planning: admission -> launch. Clamp the end to the
      // launch's VM placement so the phases tile exactly against the
      // device span.
      HostSpan form = base;
      form.name = "batching";
      form.start = queued.end;
      form.end = placed ? r.vm_start
                        : std::max(form.start, to_cycles(r.launched));
      if (form.end < form.start) form.end = form.start;
      form.args_json = "{\"batch\":" + json::number(r.batch) +
                       ",\"batch_size\":" + json::number(r.batch_size) +
                       ",\"plan_cache_hit\":" +
                       (r.plan_hit > 0 ? "true" : "false") + "}";
      spans.push_back(form);

      HostSpan exec = base;
      exec.name = "execute";
      if (placed) {
        // Device-aligned by construction: the launch's scheduled span
        // on the VM stream timeline.
        exec.start = r.vm_start;
        exec.end = std::max(r.vm_start, r.vm_end);
      } else {
        exec.start = form.end;
        exec.end = std::max(exec.start,
                            to_cycles(r.terminal >= 0.0 ? r.terminal
                                                        : r.launched));
      }
      exec.args_json = "{\"batch\":" + json::number(r.batch) +
                       ",\"launch\":" + json::number(r.batch) + "}";
      spans.push_back(exec);
    }

    if (r.done && r.outcome != ReqEventKind::kCompleted) {
      HostSpan term = base;
      term.instant = true;
      term.name = to_string(r.outcome);
      term.start = term.end =
          std::max(to_cycles(r.terminal), launched ? spans.back().end
                                                   : queued.end);
      spans.push_back(term);
    }
  }
  return spans;
}

std::string request_trace_json(const RequestTraceRing::Stats& stats) {
  std::string j = "{\"capacity\":" +
                  json::number(static_cast<std::int64_t>(stats.capacity)) +
                  ",\"recorded\":" + json::number(stats.recorded) +
                  ",\"dropped\":" + json::number(stats.dropped) +
                  ",\"by_kind\":{";
  bool first = true;
  for (int k = 0; k < kNumReqEventKinds; ++k) {
    if (stats.by_kind[k] == 0) continue;
    if (!first) j += ",";
    first = false;
    j += "\"" + std::string(to_string(static_cast<ReqEventKind>(k))) +
         "\":" + json::number(stats.by_kind[k]);
  }
  j += "}}";
  return j;
}

}  // namespace davinci::serve
