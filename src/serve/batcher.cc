#include "serve/batcher.h"

#include <cstring>
#include <unordered_map>

#include "common/check.h"

namespace davinci::serve {

namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;
using kernels::PoolResult;

const TensorF16& primary_tensor(const PoolOp& op, const PoolInputs& in) {
  const TensorF16* t = kernels::is_backward(op.kind) ? in.grad : in.in;
  DV_CHECK(t != nullptr) << op.to_string() << ": missing input tensor";
  return *t;
}

// Copies member tensor slices (contiguous along the outermost N axis)
// into consecutive slices of `dst`.
void stack(TensorF16* dst, const Shape& per_image,
           const std::vector<const TensorF16*>& srcs) {
  std::int64_t total_n = 0;
  for (const TensorF16* s : srcs) total_n += s->shape()[0];
  Shape stacked = per_image;
  stacked.set_dim(0, total_n);
  // Every element is memcpy'd below, so the staging tensor can skip the
  // zero-fill (arena reuse without a memset).
  *dst = TensorF16(stacked, kUninitialized);
  const std::int64_t stride = per_image.stride(0);
  std::int64_t off = 0;
  for (const TensorF16* s : srcs) {
    DV_CHECK_EQ(s->size(), s->shape()[0] * stride) << "slice stride mismatch";
    std::memcpy(dst->data() + off, s->data(),
                static_cast<std::size_t>(s->size()) * sizeof(Float16));
    off += s->size();
  }
}

// Copies N-slices [n0, n0+n) of `src` into a fresh tensor with the same
// trailing dims.
TensorF16 slice_n(const TensorF16& src, std::int64_t n0, std::int64_t n) {
  Shape dims = src.shape();
  dims.set_dim(0, n);
  const std::int64_t stride = src.shape().stride(0);
  TensorF16 out{dims, kUninitialized};  // fully overwritten just below
  std::memcpy(out.data(), src.data() + n0 * stride,
              static_cast<std::size_t>(n * stride) * sizeof(Float16));
  return out;
}

}  // namespace

RequestGeometry request_geometry(const PoolOp& op, const PoolInputs& in) {
  const TensorF16& t = primary_tensor(op, in);
  DV_CHECK_EQ(t.shape().rank(), 5) << op.to_string()
                                   << ": expected an NC1HWC0 tensor";
  RequestGeometry g;
  g.n = t.shape()[0];
  g.c1 = t.shape()[1];
  if (kernels::is_backward(op.kind)) {
    g.ih = in.ih;
    g.iw = in.iw;
  } else {
    g.ih = t.shape()[2];
    g.iw = t.shape()[3];
  }
  return g;
}

BatchKey batch_key(const PoolOp& op, const PoolInputs& in) {
  const RequestGeometry g = request_geometry(op, in);
  BatchKey key;
  key.kind = op.kind;
  key.c1 = g.c1;
  key.ih = g.ih;
  key.iw = g.iw;
  if (op.kind != PoolOpKind::kGlobalAvg) key.window = op.window;
  if (kernels::is_forward(op.kind) && op.kind != PoolOpKind::kGlobalAvg) {
    key.fwd = op.fwd;
  }
  if (kernels::is_backward(op.kind)) key.merge = op.merge;
  return key;
}

std::vector<Batch> form_batches(const std::vector<RequestView>& reqs,
                                std::size_t max_requests,
                                std::int64_t max_blocks) {
  DV_CHECK_GE(max_requests, 1u);
  DV_CHECK_GE(max_blocks, 1);
  std::vector<Batch> batches;
  // Key -> index of the still-open batch in `batches`.
  struct KeyHash {
    std::size_t operator()(const BatchKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.kind) * 1315423911u;
      for (std::int64_t f :
           {k.window.kh, k.window.kw, k.window.sh, k.window.sw, k.window.pt,
            k.window.pb, k.window.pl, k.window.pr, k.c1, k.ih, k.iw,
            static_cast<std::int64_t>(k.fwd),
            static_cast<std::int64_t>(k.merge)}) {
        h = h * 1099511628211ull + static_cast<std::size_t>(f + 1);
      }
      return h;
    }
  };
  std::unordered_map<BatchKey, std::size_t, KeyHash> open;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const BatchKey key = batch_key(*reqs[i].op, *reqs[i].in);
    const RequestGeometry g = request_geometry(*reqs[i].op, *reqs[i].in);
    const std::int64_t blocks = g.n * g.c1;
    auto it = open.find(key);
    if (it != open.end()) {
      Batch& b = batches[it->second];
      if (b.members.size() < max_requests &&
          b.blocks + blocks <= max_blocks) {
        b.members.push_back(i);
        b.blocks += blocks;
        continue;
      }
      open.erase(it);  // full: close it, a new one opens below
    }
    batches.push_back(Batch{key, {i}, blocks});
    open.emplace(key, batches.size() - 1);
  }
  return batches;
}

kernels::PoolInputs CoalescedInputs::inputs() const {
  // Rank-based presence checks: a default-constructed tensor reports
  // size() == 1 (rank-0 empty product).
  PoolInputs pi;
  if (in.shape().rank() > 0) pi.in = &in;
  if (mask.shape().rank() > 0) pi.mask = &mask;
  if (grad.shape().rank() > 0) pi.grad = &grad;
  pi.ih = ih;
  pi.iw = iw;
  return pi;
}

CoalescedInputs coalesce(const std::vector<RequestView>& reqs,
                         const Batch& b) {
  DV_CHECK_GE(b.members.size(), 1u);
  CoalescedInputs c;
  std::vector<const TensorF16*> in_srcs, mask_srcs, grad_srcs;
  for (std::size_t m : b.members) {
    const PoolInputs& pi = *reqs[m].in;
    const RequestGeometry g = request_geometry(*reqs[m].op, pi);
    c.n_of.push_back(g.n);
    if (pi.in != nullptr) in_srcs.push_back(pi.in);
    if (pi.mask != nullptr) mask_srcs.push_back(pi.mask);
    if (pi.grad != nullptr) grad_srcs.push_back(pi.grad);
  }
  const PoolInputs& first = *reqs[b.members.front()].in;
  if (!in_srcs.empty()) {
    DV_CHECK_EQ(in_srcs.size(), b.members.size())
        << "batch mixes requests with and without an input tensor";
    stack(&c.in, in_srcs.front()->shape(), in_srcs);
  }
  if (!mask_srcs.empty()) {
    DV_CHECK_EQ(mask_srcs.size(), b.members.size())
        << "batch mixes requests with and without a mask tensor";
    stack(&c.mask, mask_srcs.front()->shape(), mask_srcs);
  }
  if (!grad_srcs.empty()) {
    DV_CHECK_EQ(grad_srcs.size(), b.members.size())
        << "batch mixes requests with and without a gradient tensor";
    stack(&c.grad, grad_srcs.front()->shape(), grad_srcs);
  }
  c.ih = first.ih;
  c.iw = first.iw;
  return c;
}

std::vector<PoolResult> split_result(const Batch& b,
                                     const CoalescedInputs& c,
                                     const PoolResult& batched) {
  std::vector<PoolResult> out;
  out.reserve(b.members.size());
  std::int64_t n0 = 0;
  for (std::size_t m = 0; m < b.members.size(); ++m) {
    const std::int64_t n = c.n_of[m];
    PoolResult r;
    if (batched.has_out()) r.out = slice_n(batched.out, n0, n);
    if (batched.has_mask()) r.mask = slice_n(batched.mask, n0, n);
    if (batched.has_grad_in()) r.grad_in = slice_n(batched.grad_in, n0, n);
    r.run = batched.run;
    out.push_back(std::move(r));
    n0 += n;
  }
  return out;
}

}  // namespace davinci::serve
