// Request-scoped lifecycle tracing for the serving session
// (docs/OBSERVABILITY.md § "Unified host/device timeline").
//
// Every request a Session admits gets a monotonically increasing trace
// id, and every lifecycle transition -- submit, admission, batching,
// plan resolution, launch, VM placement, completion or any of the
// failure exits -- is recorded as one fixed-size event in a bounded
// ring. The ring makes the serving layer's "black box between submit()
// and the future resolving" observable without unbounded growth: when
// it fills, the oldest events are overwritten and counted in
// Stats::dropped instead of the ring growing; the cumulative per-kind
// counters stay exact either way.
//
// Timestamps are host-monotonic microseconds since the ring's epoch
// (construction or the last reset()), so a warmed-up replay's events
// start near zero. Events carry no strings -- two int64 payload slots
// (`a`, `b`) hold the kind-specific detail (batch id, plan-cache hit,
// VM span), which keeps recording allocation-free on the hot path.
//
// build_request_spans() folds a ring snapshot into Chrome-trace host
// spans (sim/trace_export.h HostSpan) on the device-cycle timeline:
// each request's execute span is placed at exactly its launch's VM
// placement [vm_start, vm_end), and the queued/batching phases before
// it are mapped from host microseconds to cycles with an affine fit
// anchored on the launch events -- so one trace file shows a request
// waiting in queue, its batch forming, and its launch overlapping the
// previous batch's tail.
//
// Thread safety: the ring has its own leaf mutex; record() may be
// called with or without the session lock held.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/trace_export.h"

namespace davinci::serve {

// One lifecycle transition. Payload slots by kind:
//   kSubmitted    a = prio,           b = deadline_us (0 = none)
//   kAdmitted     a = queue wait, us (rounded)
//   kPlanned      a = 1 plan-cache hit / 0 miss
//   kBatched      a = batch id,       b = batch size (requests)
//   kLaunched     a = batch id,       b = batch size
//   kVmScheduled  a = vm_start,       b = vm_end (stream cycles)
//   kCompleted    a = latency, us (rounded), b = batch id
//   kBisected     a = size of the failed launch being split
//   kExpired      a = time in queue, us (rounded)
//   kShed / kRejected / kCancelled / kPoisoned / kFailed: no payload
enum class ReqEventKind : std::uint8_t {
  kSubmitted = 0,
  kAdmitted,
  kBatched,
  kPlanned,
  kLaunched,
  kVmScheduled,
  kCompleted,
  kExpired,
  kShed,
  kRejected,
  kCancelled,
  kBisected,
  kPoisoned,
  kFailed,
};
constexpr int kNumReqEventKinds = static_cast<int>(ReqEventKind::kFailed) + 1;

const char* to_string(ReqEventKind kind);

struct ReqEvent {
  std::int64_t request = 0;  // session-assigned trace id
  ReqEventKind kind = ReqEventKind::kSubmitted;
  double t_us = 0.0;  // monotonic microseconds since the ring epoch
  std::int64_t a = 0, b = 0;
};

class RequestTraceRing {
 public:
  struct Stats {
    std::size_t capacity = 0;
    std::int64_t recorded = 0;  // cumulative, including overwritten
    std::int64_t dropped = 0;   // overwritten by ring wrap-around
    std::int64_t by_kind[kNumReqEventKinds] = {};
  };

  // capacity 0 disables recording entirely (record() is a cheap no-op).
  explicit RequestTraceRing(std::size_t capacity);

  bool enabled() const { return capacity_ > 0; }

  void record(std::int64_t request, ReqEventKind kind, std::int64_t a = 0,
              std::int64_t b = 0);

  Stats stats() const;

  // The retained events, oldest first.
  std::vector<ReqEvent> snapshot() const;

  // Forgets every event and counter and restarts the timestamp epoch
  // (the reset_stats() path -- warmup events never leak into the
  // measured replay's timeline).
  void reset();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<ReqEvent> ring_;  // ring_[i % capacity_], i < recorded_
  Stats stats_;
};

// Folds ring events into host-side Chrome-trace spans on the device
// cycle timeline (see the file comment for the mapping). Requests with
// a VM placement render their execute span at exactly [vm_start,
// vm_end); terminal failures render as instant events. Deterministic
// for a given snapshot.
std::vector<HostSpan> build_request_spans(
    const std::vector<ReqEvent>& events);

// The schema-v6 "request_trace" JSON object (capacity / recorded /
// dropped / per-kind counters).
std::string request_trace_json(const RequestTraceRing::Stats& stats);

}  // namespace davinci::serve
