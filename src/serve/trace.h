// Request-trace files for the serving tools (docs/SERVING.md).
//
// A trace is a line-oriented text file; each line is one request
// template as whitespace-separated key=value tokens, '#' starts a
// comment:
//
//   # op       n/c1/ih/iw        window        lowering     repeat
//   op=maxpool n=1 c1=4 ih=147 iw=147 k=3 s=2  impl=im2col  x=8
//   op=avgpool n=1 c1=12 ih=71 iw=71 k=3 s=2   impl=auto
//   op=maxpool_bwd n=1 c1=18 ih=35 iw=35 k=3 s=2 merge=col2im
//   op=global_avgpool n=1 c1=64 ih=8 iw=8 deadline_us=5000 prio=1
//
// Keys: `op` (a PoolOpKind name, required), `n`/`c1`/`ih`/`iw` (tensor
// geometry; ih/iw required except their defaults never validate), `k`
// or `kh`/`kw` (kernel), `s` or `sh`/`sw` (stride), `p` or
// `pt`/`pb`/`pl`/`pr` (padding), `impl` (forward lowering, or `auto`
// for akg::select_fwd_impl), `merge` (backward merge step), `x`
// (how many identical requests this line expands to, default 1),
// `deadline_us` (per-request completion budget, 0 = none -- feeds
// serve::SubmitOptions::deadline_us), `prio` (shed priority, feeds
// SubmitOptions::prio) and `shard` (device pin, feeds
// SubmitOptions::shard; absent = route automatically). Unknown keys and
// a key repeated on one line are errors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/pooling.h"
#include "tensor/tensor.h"

namespace davinci::serve {

// One parsed trace line (before `x=` expansion).
struct TraceEntry {
  kernels::PoolOp op;
  std::int64_t n = 1, c1 = 1, ih = 0, iw = 0;
  int repeat = 1;
  std::int64_t deadline_us = 0;  // 0 = no deadline
  int prio = 0;                  // shed priority (higher sheds later)
  int shard = -1;                // device pin; -1 = auto placement
};

// Parses trace text; throws davinci::Error with a line number on
// malformed input.
std::vector<TraceEntry> parse_trace(const std::string& text);

// Serializes one entry back to a trace line (no trailing newline).
// Geometry and window are always explicit (kh/kw/sh/sw, padding when
// non-zero); forward kinds carry impl=, backward kinds merge=; x /
// deadline_us / prio appear when non-default. Round-trips:
// parse_trace(to_line(e)) yields an entry equal to `e` field by field.
std::string to_line(const TraceEntry& e);

// Reads and parses a trace file.
std::vector<TraceEntry> load_trace(const std::string& path);

// The input tensors one trace entry needs, deterministically filled from
// `seed`: forward kinds get an activation tensor; backward kinds get a
// gradient (and, for maxpool_bwd, a 0/1 mask in the Im2col shape).
struct MaterializedRequest {
  TensorF16 in, mask, grad;
  std::int64_t ih = 0, iw = 0;  // backward kinds' target spatial size
  // The PoolInputs aliasing this object's tensors. Computed on demand so
  // the struct stays safely movable.
  kernels::PoolInputs inputs() const;
};

MaterializedRequest materialize(const TraceEntry& e, std::uint64_t seed);

}  // namespace davinci::serve
