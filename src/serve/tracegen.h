// Synthetic serving-trace generator (docs/SERVING.md, docs/CLUSTER.md).
//
// Produces a seeded, reproducible request stream with the statistical
// shape of production pooling traffic:
//
//   * hot-shape skew -- a small hot set of geometries receives most of
//     the requests (hot_fraction), the remaining mass spreads over a
//     cold tail, so plan caches and batch coalescing see realistic
//     repetition;
//   * bursts -- each emitted line's `x=` repeat count is 1 + a
//     Poisson-distributed burst length (Knuth's product method), the
//     trace-file analogue of Poisson arrivals: the line grammar carries
//     no timestamps, so the arrival process shows up as geometrically
//     interleaved burst runs rather than inter-arrival gaps;
//   * a backward fraction -- maxpool_bwd/avgpool_bwd (col2im merges)
//     mixed into the forward stream;
//   * optional deadlines on a fraction of requests.
//
// Every draw comes from one Xoshiro256 stream, so a (options, seed)
// pair yields the identical trace on every platform -- the CI cluster
// gate replays the same generated trace at several device counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/trace.h"

namespace davinci::serve {

struct TracegenOptions {
  // Total requests after `x=` expansion; the last burst is trimmed to
  // land exactly on this count.
  int requests = 256;
  std::uint64_t seed = 1;
  // Probability a burst draws its geometry from the hot set (the first
  // `hot_shapes` of a seeded shuffle of the shape pool) instead of the
  // cold tail.
  double hot_fraction = 0.8;
  int hot_shapes = 3;
  // Mean burst length: each line expands to 1 + Poisson(burst_mean)
  // requests.
  double burst_mean = 3.0;
  // Fraction of bursts that are backward ops (col2im merge path).
  double backward_fraction = 0.2;
  // Deadline assignment: `deadline_fraction` of bursts carry
  // deadline_us = `deadline_us` (0 disables).
  std::int64_t deadline_us = 0;
  double deadline_fraction = 0.0;
  // Batch-axis size per request, uniform in [1, max_n].
  std::int64_t max_n = 4;
};

// Generates the trace as parsed entries (repeat counts encode bursts).
std::vector<TraceEntry> generate_trace(const TracegenOptions& opts);

// Serializes entries to trace-file text (one to_line per entry);
// parse_trace(trace_text(g)) round-trips exactly.
std::string trace_text(const std::vector<TraceEntry>& entries);

}  // namespace davinci::serve
