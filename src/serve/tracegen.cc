#include "serve/tracegen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/prng.h"

namespace davinci::serve {

namespace {

using kernels::MergeImpl;
using kernels::PoolOpKind;

// One entry of the geometry pool: NC1HWC0 sizes plus the pooling window.
// The pool is drawn from the known-good serving smoke geometries (CNN
// backbone stages from 147x147 stem planes down to an 8x8 global-pool
// head), so every generated line replays on the simulator as-is.
struct ShapeTemplate {
  std::int64_t c1, ih, iw, k, s;
  bool global = false;  // global_avgpool head: no window
};

constexpr ShapeTemplate kShapePool[] = {
    {4, 147, 147, 3, 2}, {12, 71, 71, 3, 2}, {18, 35, 35, 3, 2},
    {4, 56, 56, 2, 2},   {4, 56, 56, 3, 2},  {8, 28, 28, 3, 2},
    {16, 14, 14, 3, 1},  {64, 8, 8, 0, 0, /*global=*/true},
};
constexpr int kShapePoolSize =
    static_cast<int>(sizeof(kShapePool) / sizeof(kShapePool[0]));

// Knuth's product method; exact for the small means used here.
int poisson(Xoshiro256& rng, double mean) {
  const double limit = std::exp(-mean);
  int k = 0;
  double p = 1.0;
  do {
    k += 1;
    p *= rng.next_double();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::vector<TraceEntry> generate_trace(const TracegenOptions& opts) {
  DV_CHECK_GE(opts.requests, 1);
  DV_CHECK(opts.hot_fraction >= 0.0 && opts.hot_fraction <= 1.0)
      << "hot_fraction must be in [0, 1]";
  DV_CHECK_GE(opts.hot_shapes, 1);
  DV_CHECK_GE(opts.burst_mean, 0.0);
  DV_CHECK(opts.backward_fraction >= 0.0 && opts.backward_fraction <= 1.0)
      << "backward_fraction must be in [0, 1]";
  DV_CHECK(opts.deadline_fraction >= 0.0 && opts.deadline_fraction <= 1.0)
      << "deadline_fraction must be in [0, 1]";
  DV_CHECK_GE(opts.deadline_us, 0);
  DV_CHECK_GE(opts.max_n, 1);

  Xoshiro256 rng(opts.seed);

  // Seeded shuffle of the pool; the first hot_shapes entries become the
  // hot set, the rest the cold tail.
  std::vector<ShapeTemplate> pool(kShapePool, kShapePool + kShapePoolSize);
  for (std::size_t i = pool.size() - 1; i > 0; --i) {
    std::swap(pool[i], pool[rng.next_below(i + 1)]);
  }
  const int hot =
      std::min(opts.hot_shapes, static_cast<int>(pool.size()) - 1);

  std::vector<TraceEntry> entries;
  std::int64_t emitted = 0;
  while (emitted < opts.requests) {
    const bool from_hot = rng.next_double() < opts.hot_fraction;
    const ShapeTemplate& t =
        from_hot
            ? pool[rng.next_below(static_cast<std::uint64_t>(hot))]
            : pool[hot + static_cast<std::int64_t>(rng.next_below(
                             static_cast<std::uint64_t>(pool.size()) -
                             static_cast<std::uint64_t>(hot)))];

    TraceEntry e;
    e.n = 1 + static_cast<std::int64_t>(
                  rng.next_below(static_cast<std::uint64_t>(opts.max_n)));
    e.c1 = t.c1;
    e.ih = t.ih;
    e.iw = t.iw;
    if (t.global) {
      // The global head has no window (and no backward kernel in tree);
      // the kind draw below is skipped.
      e.op.kind = PoolOpKind::kGlobalAvg;
    } else {
      e.op.window = Window2d::pool(t.k, t.s);
      if (rng.next_double() < opts.backward_fraction) {
        e.op.kind = rng.next_below(2) == 0 ? PoolOpKind::kMaxBwd
                                           : PoolOpKind::kAvgBwd;
        // Lean on the paper's col2im merge, with a vadd minority so
        // both merge paths stay exercised.
        e.op.merge =
            rng.next_below(3) < 2 ? MergeImpl::kCol2im : MergeImpl::kVadd;
      } else {
        switch (rng.next_below(4)) {
          case 0:
            e.op.kind = PoolOpKind::kMaxFwd;
            break;
          case 1:
            e.op.kind = PoolOpKind::kAvgFwd;
            break;
          case 2:
            e.op.kind = PoolOpKind::kMinFwd;
            break;
          default:
            e.op.kind = PoolOpKind::kMaxMaskFwd;
            break;
        }
        e.op.fwd = akg::select_fwd_impl(e.op.window);
      }
    }
    if (opts.deadline_us > 0 &&
        rng.next_double() < opts.deadline_fraction) {
      e.deadline_us = opts.deadline_us;
    }

    // Burst length rides the repeat count; the final burst is trimmed
    // so the expanded request total lands exactly on opts.requests.
    std::int64_t burst = 1 + poisson(rng, opts.burst_mean);
    burst = std::min<std::int64_t>(burst, opts.requests - emitted);
    e.repeat = static_cast<int>(burst);
    emitted += burst;
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string trace_text(const std::vector<TraceEntry>& entries) {
  std::string out;
  for (const TraceEntry& e : entries) {
    out += to_line(e);
    out += '\n';
  }
  return out;
}

}  // namespace davinci::serve
