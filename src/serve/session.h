// The serving session: a device cluster serving concurrent pooling
// requests (docs/SERVING.md, docs/CLUSTER.md).
//
// A Session owns a serve::Cluster (one or more simulated devices behind
// a placement router) and a worker thread. Callers submit PoolOp
// descriptors plus input tensors and get a future back; the worker
// drains the admission queue, coalesces same-geometry requests into
// multi-N launches (serve/batcher.h), resolves each launch's tiling
// plan through an LRU cache (serve/plan_cache.h), routes the launch
// through the cluster -- sharded over N (data placement) or C1 (model
// placement) with explicitly-costed redistribution -- and completes the
// futures with per-request slices of the batched result.
//
//   serve::Session session(serve::Cluster(), opts);   // one device
//   auto f = session.submit(op, inputs);   // blocks when the queue is full
//   PoolResult r = f.get();                // bit-identical to run_pool
//
// Guarantees:
//  * every future resolves -- with a value, or with an exception from
//    the Error hierarchy (DeadlineExceeded, Overloaded, Cancelled,
//    RetryExhausted, or the kernel error). This holds under injected
//    faults, overload, and destruction with queued or in-flight work;
//  * results are bit-identical to running each request alone through
//    run_pool (each device block computes only its own (N, C1) slice);
//  * the admission queue is bounded (SessionOptions::queue_depth) and
//    governed by SessionOptions::overload: block (submit() waits --
//    backpressure), reject-new (the new request's future fails with
//    Overloaded), or shed-oldest (the oldest lowest-priority queued
//    request is failed to make room). try_submit() always just refuses;
//  * a request with a deadline that expires while queued fails with
//    DeadlineExceeded *without* a device launch and never delays or
//    fails its batchmates;
//  * under a resilience policy (SessionOptions::resilience) batches run
//    through Device::run_resilient; a launch that still fails after
//    retry/quarantine is bisected so a poisoned request fails alone
//    instead of failing its batchmates, and observed core quarantine
//    shrinks the cores x ub_waves batch cap;
//  * input tensors are borrowed: they must stay alive and unmodified
//    until the request's future resolves.
//
// Destruction is a graceful shutdown: still-queued requests are
// cancelled (their futures fail with Cancelled), in-flight work
// completes, then the worker and watchdog threads join. Use drain() /
// drain(timeout) first if queued work must finish.
//
// Thread safety: submit/try_submit/drain/stats may be called from any
// number of threads; the device itself is driven only by the worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/percentile.h"
#include "kernels/pooling.h"
#include "serve/batcher.h"
#include "serve/cluster.h"
#include "serve/plan_cache.h"
#include "serve/request_trace.h"
#include "sim/device.h"
#include "sim/fault.h"
#include "sim/metrics_registry.h"
#include "sim/vm/stream.h"

namespace davinci::serve {

// A request's deadline expired before its launch. The device never ran
// the request (in-queue expiry is checked before coalescing).
class DeadlineExceeded : public Error {
 public:
  using Error::Error;
};

// The session refused or shed the request under its overload policy.
class Overloaded : public Error {
 public:
  using Error::Error;
};

// The session was destroyed with the request still queued.
class Cancelled : public Error {
 public:
  using Error::Error;
};

// What submit() does when the admission queue is full.
enum class OverloadPolicy : std::uint8_t {
  kBlock,       // wait for space (backpressure); the pre-deadline default
  kRejectNew,   // fail the new request's future with Overloaded
  kShedOldest,  // fail the oldest lowest-priority queued request instead
};

const char* to_string(OverloadPolicy policy);

struct SessionOptions {
  // Admission-queue bound: once this many requests are waiting the
  // overload policy applies to submit() and try_submit() refuses
  // (in-flight work does not count).
  std::size_t queue_depth = 64;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  // Launch caps: at most this many requests per coalesced launch, and at
  // most healthy_cores x ub_waves (N, C1) blocks -- each resident block
  // pins its plan's ub_slots UB tile slots, so ub_waves bounds how many
  // waves of blocks a launch may queue per core before it is split.
  // healthy_cores starts at the device core count and shrinks as the
  // resilient launch path observes quarantined cores.
  std::size_t max_batch = 16;
  int ub_waves = 4;
  // When false the batcher is bypassed: every request launches alone, in
  // submission order (the sequential baseline in bench_serve).
  bool batching = true;
  std::size_t plan_cache_capacity = 64;
  // Device double-buffer policy (feeds the plan-cache key).
  bool double_buffer = true;
  // When set, every launch routes through Device::run_resilient with
  // these options (fault plan, retry budget, store-path verification).
  // Launches that still fail are bisected; see the class comment.
  std::optional<ResilienceOptions> resilience;
  // Hung-launch watchdog: a launch exceeding this wall-clock budget is
  // counted in stats().watchdog_alarms (once per launch). The simulator
  // cannot preempt a launch, so the watchdog observes and reports -- the
  // signal an operator (or a test) alarms on. 0 disables the watchdog.
  std::int64_t watchdog_timeout_us = 0;
  // Async instruction-stream VM (sim/vm/, docs/ASYNC_VM.md): on (the
  // default), every launch's captured pipe timeline is enqueued on the
  // session's VmStream, which pipelines launches across batch boundaries
  // under a bounded in-flight window; stats().vm.makespan then models
  // the whole trace's device time. Off, launches are modeled strictly
  // back to back (the pre-VM serial behavior). Outputs, launch order and
  // device_cycles_total are identical either way -- the VM only re-times.
  bool vm = true;
  int vm_in_flight = 2;
  // Retain per-launch placed intervals for the Chrome trace exporter
  // (write_vm_chrome_trace); bounded, off by default.
  bool vm_capture = false;
  // Request lifecycle tracing (serve/request_trace.h): every request
  // gets a trace id and its transitions land in a bounded event ring of
  // this capacity; when the ring fills, the oldest events are
  // overwritten and counted (never unbounded growth). 0 disables
  // recording (ids are still assigned).
  std::size_t request_trace_capacity = 16384;
  // Exact-sample retention cap for latency / queue-wait cross-checks:
  // the first this-many samples are kept verbatim next to the bounded
  // histograms, so tests and the CI gate can compare histogram
  // percentiles against exact ones. Past the cap only the histograms
  // keep counting (constant memory for million-request replays).
  std::size_t latency_sample_cap = 8192;
};

// Per-request submission options.
struct SubmitOptions {
  // Completion budget in microseconds from submission; 0 = no deadline.
  // A request still queued when the budget lapses fails with
  // DeadlineExceeded and never reaches the device.
  std::int64_t deadline_us = 0;
  // Shed priority: under OverloadPolicy::kShedOldest the oldest request
  // of the *lowest* priority present is shed first.
  int prio = 0;
  // When non-null, receives the request's session-assigned trace id
  // (monotonic, never reused) before submit/try_submit returns -- the
  // key for correlating the future with ring events and the unified
  // Chrome trace's request rows.
  std::int64_t* trace_id = nullptr;
  // Placement hint: -1 (the default) lets the cluster router shard the
  // launch over the placement axis; 0 <= shard < devices pins the whole
  // launch to that device (requests sharing a take coalesce only with
  // same-hint requests). A hint >= the device count fails the future
  // with Error before any launch.
  int shard = -1;
};

// Host-side latency distribution in microseconds (the shared summary
// shape from common/percentile.h -- one percentile implementation for
// every reporting surface).
using LatencySummary = stats::Summary;

struct SessionStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;     // validation / launch failures
  std::int64_t expired = 0;    // deadline lapsed while queued
  std::int64_t shed = 0;       // dropped by kShedOldest
  std::int64_t rejected = 0;   // refused by kRejectNew
  std::int64_t cancelled = 0;  // still queued at destruction
  std::int64_t launches = 0;             // device launches issued
  std::int64_t batches = 0;              // launches with >= 2 members
  std::int64_t coalesced_requests = 0;   // requests sharing a launch
  std::size_t max_batch = 0;             // largest launch, in requests
  double avg_batch = 0.0;                // requests per launch
  std::int64_t peak_queue_depth = 0;
  std::int64_t backpressure_waits = 0;   // submit() calls that blocked
  std::int64_t device_cycles_total = 0;  // sum of per-launch makespans
  // Cross-launch VM schedule (all-zero with SessionOptions::vm off). On
  // one device, vm.makespan is the overlapped device time of everything
  // served so far, vm.serial_sum equals device_cycles_total, and the
  // per-pipe streams carry busy/wait/flag/idle with
  // busy+wait+flag+idle == makespan * tracks exactly (docs/ASYNC_VM.md).
  // On a multi-device cluster the session runs one stream per device
  // and this aggregates them: makespan is the max over devices, sums
  // are summed, and the per-device bucket invariant holds per stream
  // (not for the aggregate, whose makespans differ).
  vm::VmStream::Stats vm;
  // Multi-device cluster surface (schema v7, docs/CLUSTER.md). For a
  // one-device session: devices == 1, cluster counters show one device
  // and no links, and cluster_makespan == vm.makespan.
  int devices = 1;
  Placement placement = Placement::kData;
  Cluster::Stats cluster;
  std::vector<std::int64_t> vm_makespan_per_device;
  // The cluster roofline: max(busiest device's VM makespan, busiest
  // link's cumulative busy cycles) -- the QPS denominator under
  // sharding. Equals vm.makespan on one device.
  std::int64_t cluster_makespan = 0;
  // Robustness counters (resilient launch path + watchdog).
  std::int64_t degraded_launches = 0;   // completed with faults absorbed
  std::int64_t bisections = 0;          // failed launches split in two
  std::int64_t poisoned_requests = 0;   // failed alone after bisection
  std::int64_t launch_failures = 0;     // launches that threw
  std::int64_t watchdog_alarms = 0;     // launches past the watchdog budget
  int quarantined_cores = 0;            // max cores lost in one launch
  FaultStats faults;                    // summed over completed launches
  // Latency distributions come from the bounded log-linear histograms
  // (common/histogram.h): count / mean / max are exact, percentiles are
  // bucket-quantized within ~3.1%. The *_exact twins summarize the
  // first SessionOptions::latency_sample_cap samples verbatim -- when
  // their count matches, the histogram percentiles can be cross-checked
  // against the exact ones (the CI 5%-tolerance gate).
  LatencySummary latency;     // submit -> future completed
  LatencySummary queue_wait;  // submit -> dequeued by the worker
  LatencySummary latency_exact;
  LatencySummary queue_wait_exact;
  std::int64_t queue_depth = 0;  // requests waiting right now
  // The request lifecycle ring's counters (capacity / recorded /
  // dropped / per-kind totals).
  RequestTraceRing::Stats request_trace;
  PlanCache::Stats plan_cache;
  std::size_t plan_cache_size = 0;
  std::size_t plan_cache_capacity = 0;
};

class Session {
 public:
  // The session API: hand the session its device cluster. A
  // default-constructed Cluster is one Ascend-910 device, so the
  // single-device session reads
  //
  //   serve::Session session(serve::Cluster(), opts);
  //
  // and a sharded one builds ClusterOptions first (devices, placement,
  // link model). The session applies its own double-buffer/resilience/VM
  // options to every device; per-device state installed on the cluster
  // beforehand (e.g. fault plans on one device) is preserved unless the
  // corresponding SessionOptions field overrides it.
  explicit Session(Cluster cluster, SessionOptions opts = {});

  // Deprecated shims (docs/API.md): the pre-cluster constructors, kept
  // for out-of-tree callers. Equivalent to Session(Cluster(...), opts);
  // in-tree use is lint-guarded in CI like the PR-5 run_pool migration.
  explicit Session(SessionOptions opts = {});
  Session(ArchConfig arch, SessionOptions opts);

  // Graceful shutdown: cancels still-queued requests (futures fail with
  // Cancelled), completes in-flight work, joins the threads.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Enqueues one request. When the queue is full the overload policy
  // decides: kBlock waits, kRejectNew fails the returned future with
  // Overloaded, kShedOldest drops a queued request to make room. The
  // tensors behind `in` are borrowed until the future resolves. Kernel
  // errors (invalid descriptor, shape out of schedule scope) surface
  // through the future.
  std::future<kernels::PoolResult> submit(kernels::PoolOp op,
                                          kernels::PoolInputs in,
                                          SubmitOptions sub = {});

  // Non-blocking submit: returns false (and leaves `out` untouched)
  // when the queue is full, whatever the overload policy.
  bool try_submit(kernels::PoolOp op, kernels::PoolInputs in,
                  std::future<kernels::PoolResult>* out,
                  SubmitOptions sub = {});

  // Blocks until everything dequeued so far has completed and the queue
  // is empty (or the session is paused -- a paused queue is left as is).
  void drain();
  // Bounded drain: returns false if the session was not idle within
  // `timeout` (queued or in-flight work remains -- e.g. a hung launch).
  bool drain(std::chrono::microseconds timeout);

  // Batching-window control: while paused the worker dequeues nothing,
  // so requests accumulate (deterministic coalescing and backpressure in
  // tests). resume() releases the accumulated queue at once. Deadlines
  // keep ticking while paused.
  void pause();
  void resume();

  // The ingress device (device 0) -- where requests arrive and where
  // unsharded launches run. Kept for the wide pre-cluster caller base.
  Device& device() { return cluster_.device(0); }
  // The device cluster behind the session.
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  const SessionOptions& options() const { return opts_; }
  // Device 0's instruction-stream VM (valid for the session's lifetime;
  // a no-op empty stream when SessionOptions::vm is off). Per-device
  // streams back a multi-device session; this accessor -- and the
  // Chrome trace built on it -- shows the ingress device's stream.
  const vm::VmStream& vm_stream() const { return *vm_streams_.front(); }
  const vm::VmStream& vm_stream(int device) const {
    return *vm_streams_.at(static_cast<std::size_t>(device));
  }

  SessionStats stats() const;
  // Forgets everything measured so far -- counters, latency histograms,
  // plan-cache hit/miss stats, the request-trace ring and the VM stream
  // timeline -- while keeping cached plans and the warmed tensor arena.
  // The warmup path (davinci_serve --warmup) replays a prefix, drains,
  // then resets so cold-start costs never skew the timed replay. Call
  // only while idle (after drain()); resetting mid-launch would tear
  // the accounting.
  void reset_stats();
  // The schema-v7 "serve" JSON object for MetricsRegistry::set_serve.
  std::string serve_json() const;
  // Attaches serve_json() to `reg` (top-level "serve", schema v7).
  void add_metrics(MetricsRegistry& reg) const;

  // The request lifecycle ring (serve/request_trace.h).
  const RequestTraceRing& request_trace() const { return req_trace_; }
  // Ring snapshot, oldest first.
  std::vector<ReqEvent> request_events() const {
    return req_trace_.snapshot();
  }
  // The unified host+device Chrome trace: the VM stream's per-launch
  // device tracks plus one row per traced request showing queued /
  // batching / execute phases on the same cycle timeline
  // (docs/OBSERVABILITY.md). Device tracks require
  // SessionOptions::vm_capture; without it the trace is host-only.
  std::string unified_chrome_trace() const;
  void write_unified_chrome_trace(const std::string& path) const;

 private:
  struct Pending {
    kernels::PoolOp op;
    kernels::PoolInputs in;
    std::promise<kernels::PoolResult> promise;
    std::chrono::steady_clock::time_point submitted;
    // Absolute expiry (submitted + deadline_us); nullopt = no deadline.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    int prio = 0;
    int shard = -1;       // placement hint (SubmitOptions::shard)
    std::int64_t id = 0;  // session-assigned trace id
  };

  void worker_loop();
  void watchdog_loop();
  void process(std::vector<Pending> taken);
  // Launches `members` (indices into `views`; views[j] belongs to
  // taken[taken_of[j]]) as one batch with placement hint `shard`,
  // bisecting on resilient-launch failure. Expired members are failed
  // before the launch.
  void execute_members(std::vector<Pending>& taken,
                       const std::vector<RequestView>& views,
                       const std::vector<std::size_t>& taken_of,
                       std::vector<std::size_t> members, int shard);
  // One cluster launch for `members`; completes their futures on
  // success, throws on failure.
  void launch_members(std::vector<Pending>& taken,
                      const std::vector<RequestView>& views,
                      const std::vector<std::size_t>& taken_of,
                      const std::vector<std::size_t>& members, int shard);
  void enqueue_locked(Pending p, std::unique_lock<std::mutex>& lock);
  // The block cap for form_batches given the quarantines observed so far.
  std::int64_t max_blocks_locked() const;

  SessionOptions opts_;
  Cluster cluster_;
  PlanCache plans_;
  // One cross-launch VM stream per device; attached when opts_.vm. Each
  // stream has its own mutex (enqueues come from the worker inside
  // launches, which run outside mu_). unique_ptr keeps the streams'
  // addresses stable across vector growth -- devices hold raw pointers.
  std::vector<std::unique_ptr<vm::VmStream>> vm_streams_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // queue non-empty / stop
  std::condition_variable cv_space_;  // queue has room
  std::condition_variable cv_idle_;   // queue empty and nothing in flight
  std::condition_variable cv_watchdog_;  // watchdog wakeup / stop
  std::deque<Pending> queue_;
  std::int64_t in_flight_ = 0;
  bool paused_ = false;
  bool stop_ = false;

  // Watchdog bookkeeping, guarded by mu_: the worker stamps each launch;
  // the watchdog alarms once per launch sequence number.
  bool launch_active_ = false;
  std::int64_t launch_seq_ = 0;
  std::int64_t alarmed_seq_ = 0;
  std::chrono::steady_clock::time_point launch_start_{};

  // Stats, guarded by mu_. The latency distributions live in bounded
  // log-linear histograms (constant memory however long the session
  // runs); the *_exact vectors retain the first latency_sample_cap
  // samples verbatim for percentile cross-checks and are mutable
  // because stats() (const) summarizes them with an in-place sort --
  // order is irrelevant to their only other use (appending).
  SessionStats stats_;
  stats::Histogram latency_hist_;
  stats::Histogram queue_wait_hist_;
  mutable std::vector<double> latency_exact_;
  mutable std::vector<double> queue_wait_exact_;
  std::int64_t batch_members_total_ = 0;
  std::int64_t next_trace_id_ = 0;  // guarded by mu_

  // The request lifecycle ring; has its own leaf mutex, so events can
  // be recorded with or without mu_ held.
  RequestTraceRing req_trace_;

  std::thread worker_;
  std::thread watchdog_;
};

}  // namespace davinci::serve
