// The serving session: one Device serving concurrent pooling requests
// (docs/SERVING.md).
//
// A Session owns the simulated device and a worker thread. Callers
// submit PoolOp descriptors plus input tensors and get a future back;
// the worker drains the admission queue, coalesces same-geometry
// requests into multi-N launches (serve/batcher.h), resolves each
// launch's tiling plan through an LRU cache (serve/plan_cache.h) and
// completes the futures with per-request slices of the batched result.
//
//   serve::Session session(opts);
//   auto f = session.submit(op, inputs);   // blocks when the queue is full
//   PoolResult r = f.get();                // bit-identical to run_pool
//
// Guarantees:
//  * results are bit-identical to running each request alone through
//    run_pool (each device block computes only its own (N, C1) slice);
//  * the admission queue is bounded (SessionOptions::queue_depth):
//    submit() blocks -- backpressure -- and try_submit() refuses;
//  * input tensors are borrowed: they must stay alive and unmodified
//    until the request's future resolves.
//
// Thread safety: submit/try_submit/drain/stats may be called from any
// number of threads; the device itself is driven only by the worker.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kernels/pooling.h"
#include "serve/batcher.h"
#include "serve/plan_cache.h"
#include "sim/device.h"
#include "sim/metrics_registry.h"

namespace davinci::serve {

struct SessionOptions {
  // Admission-queue bound: submit() blocks and try_submit() refuses once
  // this many requests are waiting (in-flight work does not count).
  std::size_t queue_depth = 64;
  // Launch caps: at most this many requests per coalesced launch, and at
  // most cores x ub_waves (N, C1) blocks -- each resident block pins its
  // plan's ub_slots UB tile slots, so ub_waves bounds how many waves of
  // blocks a launch may queue per core before it is split.
  std::size_t max_batch = 16;
  int ub_waves = 4;
  // When false the batcher is bypassed: every request launches alone, in
  // submission order (the sequential baseline in bench_serve).
  bool batching = true;
  std::size_t plan_cache_capacity = 64;
  // Device double-buffer policy (feeds the plan-cache key).
  bool double_buffer = true;
};

// Host-side latency distribution in microseconds.
struct LatencySummary {
  std::int64_t count = 0;
  double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
};

struct SessionStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t launches = 0;             // device launches issued
  std::int64_t batches = 0;              // launches with >= 2 members
  std::int64_t coalesced_requests = 0;   // requests sharing a launch
  std::size_t max_batch = 0;             // largest launch, in requests
  double avg_batch = 0.0;                // requests per launch
  std::int64_t peak_queue_depth = 0;
  std::int64_t backpressure_waits = 0;   // submit() calls that blocked
  std::int64_t device_cycles_total = 0;  // sum over launches
  LatencySummary latency;     // submit -> future completed
  LatencySummary queue_wait;  // submit -> dequeued by the worker
  PlanCache::Stats plan_cache;
  std::size_t plan_cache_size = 0;
  std::size_t plan_cache_capacity = 0;
};

class Session {
 public:
  explicit Session(SessionOptions opts = {});
  Session(ArchConfig arch, SessionOptions opts);
  ~Session();  // drains the queue, then stops the worker

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Enqueues one request. Blocks while the queue is full. The tensors
  // behind `in` are borrowed until the future resolves. Kernel errors
  // (invalid descriptor, shape out of schedule scope) surface through
  // the future.
  std::future<kernels::PoolResult> submit(kernels::PoolOp op,
                                          kernels::PoolInputs in);

  // Non-blocking submit: returns false (and leaves `out` untouched)
  // when the queue is full.
  bool try_submit(kernels::PoolOp op, kernels::PoolInputs in,
                  std::future<kernels::PoolResult>* out);

  // Blocks until everything dequeued so far has completed and the queue
  // is empty (or the session is paused -- a paused queue is left as is).
  void drain();

  // Batching-window control: while paused the worker dequeues nothing,
  // so requests accumulate (deterministic coalescing and backpressure in
  // tests). resume() releases the accumulated queue at once.
  void pause();
  void resume();

  Device& device() { return device_; }
  const SessionOptions& options() const { return opts_; }

  SessionStats stats() const;
  // The schema-v2 "serve" JSON object for MetricsRegistry::set_serve.
  std::string serve_json() const;
  // Attaches serve_json() to `reg` (top-level "serve", schema v2).
  void add_metrics(MetricsRegistry& reg) const;

 private:
  struct Pending {
    kernels::PoolOp op;
    kernels::PoolInputs in;
    std::promise<kernels::PoolResult> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();
  void process(std::vector<Pending> taken);
  void enqueue_locked(Pending p, std::unique_lock<std::mutex>& lock);

  SessionOptions opts_;
  Device device_;
  PlanCache plans_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // queue non-empty / stop
  std::condition_variable cv_space_;  // queue has room
  std::condition_variable cv_idle_;   // queue empty and nothing in flight
  std::deque<Pending> queue_;
  std::int64_t in_flight_ = 0;
  bool paused_ = false;
  bool stop_ = false;

  // Stats, guarded by mu_.
  SessionStats stats_;
  std::vector<double> latency_us_;
  std::vector<double> queue_wait_us_;
  std::int64_t batch_members_total_ = 0;

  std::thread worker_;
};

}  // namespace davinci::serve
