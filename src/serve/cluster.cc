#include "serve/cluster.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace davinci::serve {

namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolResult;

std::int64_t tensor_bytes(const TensorF16& t) {
  return t.shape().rank() > 0
             ? t.size() * static_cast<std::int64_t>(sizeof(Float16))
             : 0;
}

// Copies [begin, begin + len) of `src` along `axis` (0 = N, 1 = C1) into
// a fresh tensor. Axis 0 slices are contiguous (N is outermost in
// NC1HWC0); axis 1 slices are one contiguous chunk per image.
TensorF16 slice_axis(const TensorF16& src, int axis, std::int64_t begin,
                     std::int64_t len) {
  Shape dims = src.shape();
  dims.set_dim(axis, len);
  TensorF16 out{dims, kUninitialized};  // fully overwritten just below
  const std::int64_t stride = src.shape().stride(axis);
  if (axis == 0) {
    std::memcpy(out.data(), src.data() + begin * stride,
                static_cast<std::size_t>(len * stride) * sizeof(Float16));
    return out;
  }
  const std::int64_t n = src.shape()[0];
  const std::int64_t src_row = src.shape().stride(0);
  const std::int64_t dst_row = out.shape().stride(0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(out.data() + i * dst_row,
                src.data() + i * src_row + begin * stride,
                static_cast<std::size_t>(len * stride) * sizeof(Float16));
  }
  return out;
}

// The inverse of slice_axis: pastes `part` into `dst` at `begin` along
// `axis`.
void paste_axis(TensorF16* dst, const TensorF16& part, int axis,
                std::int64_t begin) {
  const std::int64_t stride = dst->shape().stride(axis);
  const std::int64_t len = part.shape()[axis];
  if (axis == 0) {
    std::memcpy(dst->data() + begin * stride, part.data(),
                static_cast<std::size_t>(len * stride) * sizeof(Float16));
    return;
  }
  const std::int64_t n = dst->shape()[0];
  const std::int64_t dst_row = dst->shape().stride(0);
  const std::int64_t src_row = part.shape().stride(0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::memcpy(dst->data() + i * dst_row + begin * stride,
                part.data() + i * src_row,
                static_cast<std::size_t>(len * stride) * sizeof(Float16));
  }
}

// One shard's sliced input tensors (empty when the shard borrows the
// caller's tensors whole).
struct ShardInputs {
  TensorF16 in, mask, grad;
  PoolInputs view;
  std::int64_t bytes = 0;  // bytes the shard's device reads
};

ShardInputs make_shard_inputs(const PoolInputs& in, int axis,
                              std::int64_t begin, std::int64_t len,
                              bool whole) {
  ShardInputs s;
  s.view = in;  // carries ih/iw and any tensors left unsliced
  if (whole) {
    if (in.in != nullptr) s.bytes += tensor_bytes(*in.in);
    if (in.mask != nullptr) s.bytes += tensor_bytes(*in.mask);
    if (in.grad != nullptr) s.bytes += tensor_bytes(*in.grad);
    return s;
  }
  if (in.in != nullptr) {
    s.in = slice_axis(*in.in, axis, begin, len);
    s.view.in = &s.in;
    s.bytes += tensor_bytes(s.in);
  }
  if (in.mask != nullptr) {
    s.mask = slice_axis(*in.mask, axis, begin, len);
    s.view.mask = &s.mask;
    s.bytes += tensor_bytes(s.mask);
  }
  if (in.grad != nullptr) {
    s.grad = slice_axis(*in.grad, axis, begin, len);
    s.view.grad = &s.grad;
    s.bytes += tensor_bytes(s.grad);
  }
  return s;
}

}  // namespace

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kData:
      return "data";
    case Placement::kModel:
      return "model";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions opts) : opts_(opts), link_cost_(opts.cost) {
  DV_CHECK_GE(opts_.devices, 1);
  DV_CHECK_GE(opts_.link_bytes_per_cycle, 1);
  DV_CHECK_GE(opts_.link_latency_cycles, 0);
  for (int d = 0; d < opts_.devices; ++d) {
    devices_.push_back(std::make_unique<Device>(opts_.arch, opts_.cost));
  }
  link_cost_.mte_bytes_per_cycle = opts_.link_bytes_per_cycle;
  link_cost_.mte_startup_cycles = opts_.link_latency_cycles;
  stats_.devices.resize(static_cast<std::size_t>(opts_.devices));
  stats_.links.resize(
      static_cast<std::size_t>(opts_.devices) *
      static_cast<std::size_t>(opts_.devices));
}

Cluster::Cluster(Cluster&& other) noexcept
    : opts_(std::move(other.opts_)),
      devices_(std::move(other.devices_)),
      link_cost_(other.link_cost_),
      stats_(std::move(other.stats_)) {}

Cluster& Cluster::operator=(Cluster&& other) noexcept {
  opts_ = std::move(other.opts_);
  devices_ = std::move(other.devices_);
  link_cost_ = other.link_cost_;
  stats_ = std::move(other.stats_);
  return *this;
}

int Cluster::total_cores() const {
  return num_devices() * devices_.front()->num_cores();
}

void Cluster::set_double_buffer(bool on) {
  for (auto& d : devices_) d->set_double_buffer(on);
}

void Cluster::set_resilience(const ResilienceOptions& opts) {
  for (auto& d : devices_) d->set_resilience(opts);
}

void Cluster::set_vm_stream(int device, vm::VmStream* stream) {
  devices_.at(static_cast<std::size_t>(device))->set_vm_stream(stream);
}

std::int64_t Cluster::link_cycles(std::int64_t bytes) const {
  return link_cost_.mte_copy(bytes);
}

std::vector<Cluster::Shard> Cluster::plan_shards(std::int64_t axis_len,
                                                 int pin) const {
  std::vector<Shard> shards;
  if (pin >= 0) {
    shards.push_back(Shard{pin, 0, axis_len});
    return shards;
  }
  const std::int64_t devices = num_devices();
  const std::int64_t base = axis_len / devices;
  const std::int64_t rem = axis_len % devices;
  std::int64_t begin = 0;
  for (std::int64_t d = 0; d < devices; ++d) {
    const std::int64_t len = base + (d < rem ? 1 : 0);
    if (len == 0) continue;
    shards.push_back(Shard{static_cast<int>(d), begin, len});
    begin += len;
  }
  return shards;
}

Cluster::Launch Cluster::run_pool(const PoolOp& op, const PoolInputs& in,
                                  int pin) {
  if (pin >= num_devices()) {
    throw Error("cluster: shard " + std::to_string(pin) +
                " out of range [0, " + std::to_string(num_devices()) + ")");
  }
  const int axis = opts_.placement == Placement::kData ? 0 : 1;
  const TensorF16* primary = kernels::is_backward(op.kind) ? in.grad : in.in;
  DV_CHECK(primary != nullptr) << op.to_string() << ": missing input tensor";
  DV_CHECK_GE(primary->shape().rank(), 2);
  const std::int64_t axis_len = primary->shape()[axis];
  const std::int64_t n_total = primary->shape()[0];
  const std::int64_t c1_total = primary->shape()[1];
  const std::vector<Shard> shards = plan_shards(axis_len, pin);
  DV_CHECK_GE(shards.size(), 1u);

  Launch launch;
  launch.shards = static_cast<int>(shards.size());

  struct ShardRun {
    Shard shard;
    PoolResult res;
    std::int64_t in_bytes = 0;
    std::int64_t out_bytes = 0;
  };
  std::vector<ShardRun> runs;
  runs.reserve(shards.size());

  for (const Shard& shard : shards) {
    const bool whole = shard.length == axis_len;
    const ShardInputs si =
        make_shard_inputs(in, axis, shard.begin, shard.length, whole);
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.devices[static_cast<std::size_t>(shard.device)]
          .inflight_shards += 1;
    }
    struct InflightScope {
      Cluster* c;
      int device;
      ~InflightScope() {
        std::lock_guard<std::mutex> lock(c->mu_);
        c->stats_.devices[static_cast<std::size_t>(device)].inflight_shards -=
            1;
      }
    } scope{this, shard.device};
    ShardRun r;
    r.shard = shard;
    r.res = kernels::run_pool(device(shard.device), op, si.view);
    if (shard.device != 0) {
      r.in_bytes = si.bytes;
      r.out_bytes = tensor_bytes(r.res.out) + tensor_bytes(r.res.mask) +
                    tensor_bytes(r.res.grad_in);
    }
    runs.push_back(std::move(r));
  }

  // Redistribution accounting: scatter transfers (0 -> d) ride distinct
  // links concurrently, as do the gathers (d -> 0), so each leg costs
  // the slowest single transfer while every link's busy time accrues its
  // own transfers serially.
  std::int64_t scatter_leg = 0, gather_leg = 0;
  std::int64_t redist_transfers = 0;
  for (const ShardRun& r : runs) {
    if (r.shard.device == 0) continue;
    if (r.in_bytes > 0) {
      scatter_leg = std::max(scatter_leg, link_cycles(r.in_bytes));
      redist_transfers += 1;
    }
    if (r.out_bytes > 0) {
      gather_leg = std::max(gather_leg, link_cycles(r.out_bytes));
      redist_transfers += 1;
    }
    launch.redistribution_bytes += r.in_bytes + r.out_bytes;
  }
  launch.redistribution_cycles = scatter_leg + gather_leg;

  // The slowest shard bounds the compute leg; its run carries the
  // launch's attribution/profile while summable counters aggregate over
  // all shards.
  std::size_t critical = 0;
  std::int64_t compute_max = 0, serial_max = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Device::RunResult& rr = runs[i].res.run;
    if (rr.device_cycles > compute_max) {
      compute_max = rr.device_cycles;
      critical = i;
    }
    serial_max = std::max(serial_max, rr.device_cycles_serial);
  }
  launch.cycles = launch.redistribution_cycles + compute_max;

  if (runs.size() == 1) {
    launch.result = std::move(runs[0].res);
    launch.result.run.device_cycles = launch.cycles;
    launch.result.run.device_cycles_serial =
        launch.redistribution_cycles + serial_max;
  } else {
    PoolResult full;
    const PoolResult& first = runs[0].res;
    auto assemble = [&](TensorF16 PoolResult::*field) {
      if (((first).*field).shape().rank() == 0) return;
      Shape dims = (first.*field).shape();
      dims.set_dim(axis, axis == 0 ? n_total : c1_total);
      (full.*field) = TensorF16(dims, kUninitialized);
      for (const ShardRun& r : runs) {
        paste_axis(&(full.*field), r.res.*field, axis, r.shard.begin);
      }
    };
    assemble(&PoolResult::out);
    assemble(&PoolResult::mask);
    assemble(&PoolResult::grad_in);
    Device::RunResult agg = runs[critical].res.run;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i == critical) continue;
      const Device::RunResult& rr = runs[i].res.run;
      agg.aggregate += rr.aggregate;
      agg.profile += rr.profile;
      agg.faults += rr.faults;
      agg.host_ns += rr.host_ns;
      agg.host_alloc_ns += rr.host_alloc_ns;
      agg.host_plan_ns += rr.host_plan_ns;
      agg.host_validate_ns += rr.host_validate_ns;
      agg.host_execute_ns += rr.host_execute_ns;
      agg.cores_used += rr.cores_used;
      agg.busiest_unit_cycles =
          std::max(agg.busiest_unit_cycles, rr.busiest_unit_cycles);
      if (rr.vm_end > 0) {
        agg.vm_start = agg.vm_end > 0 ? std::min(agg.vm_start, rr.vm_start)
                                      : rr.vm_start;
        agg.vm_end = std::max(agg.vm_end, rr.vm_end);
      }
    }
    agg.device_cycles = launch.cycles;
    agg.device_cycles_serial = launch.redistribution_cycles + serial_max;
    full.run = agg;
    launch.result = std::move(full);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.launches += 1;
    if (runs.size() >= 2) stats_.sharded_launches += 1;
    stats_.redistribution_transfers += redist_transfers;
    stats_.redistribution_bytes += launch.redistribution_bytes;
    stats_.redistribution_cycles += launch.redistribution_cycles;
    const std::size_t d_count = static_cast<std::size_t>(num_devices());
    for (const ShardRun& r : runs) {
      DeviceStats& ds = stats_.devices[static_cast<std::size_t>(
          r.shard.device)];
      ds.launches += 1;
      ds.blocks += axis == 0 ? r.shard.length * c1_total
                             : n_total * r.shard.length;
      ds.cycles += r.res.run.device_cycles;
      if (r.shard.device != 0) {
        if (r.in_bytes > 0) {
          LinkStats& fwd =
              stats_.links[0 * d_count +
                           static_cast<std::size_t>(r.shard.device)];
          fwd.transfers += 1;
          fwd.bytes += r.in_bytes;
          fwd.cycles += link_cycles(r.in_bytes);
        }
        if (r.out_bytes > 0) {
          LinkStats& back =
              stats_.links[static_cast<std::size_t>(r.shard.device) *
                               d_count +
                           0];
          back.transfers += 1;
          back.bytes += r.out_bytes;
          back.cycles += link_cycles(r.out_bytes);
        }
      }
    }
  }
  return launch;
}

Cluster::Stats Cluster::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  for (const LinkStats& l : s.links) {
    s.link_busy_cycles = std::max(s.link_busy_cycles, l.cycles);
  }
  return s;
}

void Cluster::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t devices = stats_.devices.size();
  const std::size_t links = stats_.links.size();
  stats_ = {};
  stats_.devices.resize(devices);
  stats_.links.resize(links);
}

}  // namespace davinci::serve
