#include "serve/plan_cache.h"

#include "common/check.h"

namespace davinci::serve {

namespace {

void hash_mix(std::size_t& h, std::uint64_t v) {
  // splitmix64-style mixing keeps the window fields from cancelling.
  v += 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
  h ^= static_cast<std::size_t>(v ^ (v >> 31));
}

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const {
  std::size_t h = 0;
  hash_mix(h, static_cast<std::uint64_t>(k.backward));
  hash_mix(h, static_cast<std::uint64_t>(k.impl));
  const Window2d& w = k.window;
  for (std::int64_t f : {w.kh, w.kw, w.sh, w.sw, w.pt, w.pb, w.pl, w.pr,
                         k.ih, k.iw}) {
    hash_mix(h, static_cast<std::uint64_t>(f));
  }
  hash_mix(h, (k.with_mask ? 2u : 0u) | (k.double_buffer ? 1u : 0u));
  return h;
}

std::optional<PlanKey> plan_key_for(const kernels::PoolOp& op,
                                    std::int64_t ih, std::int64_t iw,
                                    bool double_buffer) {
  using kernels::PoolOpKind;
  if (op.kind == PoolOpKind::kGlobalAvg) return std::nullopt;
  PlanKey key;
  key.window = op.window;
  key.ih = ih;
  key.iw = iw;
  key.double_buffer = double_buffer;
  if (kernels::is_backward(op.kind)) {
    key.backward = true;
  } else {
    key.impl = op.fwd;
    key.with_mask = op.kind == PoolOpKind::kMaxMaskFwd;
    // The mask-producing forward always plans single-buffered
    // (maxpool_mask.cc runs its tiles serially).
    if (key.with_mask) key.double_buffer = false;
  }
  return key;
}

PlanCache::PlanCache(std::size_t capacity) : capacity_(capacity) {
  DV_CHECK_GE(capacity_, 1u) << "plan cache needs at least one slot";
}

akg::PoolPlan PlanCache::get(const ArchConfig& arch, const PlanKey& key) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    stats_.hits += 1;
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }
  stats_.misses += 1;
  const akg::PoolPlan plan =
      key.backward
          ? akg::plan_bwd(arch, key.window, key.ih, key.iw,
                          key.double_buffer)
          : akg::plan_fwd(key.impl, arch, key.window, key.ih, key.iw,
                          key.with_mask, key.double_buffer);
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    stats_.evictions += 1;
  }
  lru_.push_front(Node{key, plan});
  map_.emplace(key, lru_.begin());
  return plan;
}

const akg::PoolPlan* PlanCache::peek(const PlanKey& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second->plan;
}

void PlanCache::clear() {
  map_.clear();
  lru_.clear();
}

}  // namespace davinci::serve
