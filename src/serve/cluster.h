// Multi-device cluster: N simulated devices behind a placement router
// (docs/CLUSTER.md).
//
// A Cluster owns N identical Devices and routes each pooling launch
// across them, sharding over one axis of the NC1HWC0 layout:
//
//   Placement::kData   shards the batch axis N (each device computes a
//                      contiguous run of whole images);
//   Placement::kModel  shards the channel-block axis C1 (each device
//                      computes a contiguous run of channel groups of
//                      every image).
//
// Both placements are bit-identical to a single-device run because every
// pooling kernel computes one block per (N, C1) slice from that slice's
// input data alone -- splitting either axis only changes which device a
// block lands on, never its value (the OneFlow "boxing" observation).
//
// Requests ingress on device 0, so a shard that runs on device d != 0
// pays an explicit redistribution step: its input slice crosses the
// 0 -> d link before compute and its output slice crosses d -> 0 after.
// Transfer cycles are charged through the existing MTE cost model --
// CostModel::mte_copy with the link's bandwidth/latency substituted for
// the core-local MTE path -- and every transfer lands in per-link
// byte/cycle counters (surfaced in the schema-v7 "cluster" metrics
// object). Scatter transfers ride different links concurrently, so a
// launch's modeled time is
//
//   max over links(scatter) + max over shards(compute) + max(gather)
//
// while the trace-level bound is roofline-style: compute makespan on the
// busiest device vs. cumulative busy time of the busiest link (the
// serving session takes the max; docs/CLUSTER.md).
//
// A one-device Cluster is the identity: no slicing, no copies, no link
// charges -- launch results are bit- and cycle-identical to calling
// kernels::run_pool on a bare Device. This is what keeps the CI serving
// baselines gated at zero cycle tolerance across the Session API change.
//
// Thread safety: run_pool must be driven by one thread at a time (the
// serving worker); stats()/cluster_json() may be called concurrently
// from any thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "kernels/pooling.h"
#include "sim/device.h"

namespace davinci::serve {

// Which NC1HWC0 axis the router shards a launch over.
enum class Placement : std::uint8_t {
  kData,   // batch axis N: whole images per device
  kModel,  // channel-block axis C1: channel groups per device
};

const char* to_string(Placement p);

struct ClusterOptions {
  int devices = 1;
  Placement placement = Placement::kData;
  // Every device is built from the same architecture and cost model.
  ArchConfig arch = ArchConfig::ascend910();
  CostModel cost = CostModel::calibrated();
  // Inter-device link model, charged through CostModel::mte_copy with
  // these parameters in place of the core-local MTE path: one transfer
  // of B bytes costs link_latency_cycles + ceil(B / link_bytes_per_cycle)
  // + 1 cycles. The default models an HCCS-like interconnect at 8x a
  // single core's 128 B/cycle GM path.
  std::int64_t link_bytes_per_cycle = 1024;
  std::int64_t link_latency_cycles = 512;
};

class Cluster {
 public:
  // One directed inter-device link's cumulative transfer counters.
  struct LinkStats {
    std::int64_t transfers = 0;
    std::int64_t bytes = 0;
    std::int64_t cycles = 0;  // serial busy time of this link
  };

  // Per-device share of the cluster's work.
  struct DeviceStats {
    std::int64_t launches = 0;  // shard launches run on this device
    std::int64_t blocks = 0;    // (N, C1) blocks computed
    std::int64_t cycles = 0;    // sum of shard device_cycles
    std::int64_t inflight_shards = 0;  // dispatched, not yet completed
  };

  struct Stats {
    std::vector<DeviceStats> devices;
    std::vector<LinkStats> links;  // row-major [src * devices + dst]
    std::int64_t launches = 0;          // cluster-level launches
    std::int64_t sharded_launches = 0;  // split over >= 2 devices
    std::int64_t redistribution_transfers = 0;
    std::int64_t redistribution_bytes = 0;
    std::int64_t redistribution_cycles = 0;
    // Cumulative busy time of the busiest link -- the communication leg
    // of the cluster roofline (compute leg: the busiest device's VM
    // makespan, tracked by the session).
    std::int64_t link_busy_cycles = 0;
  };

  // One routed launch. `result.run` aggregates the shard runs: cycle
  // fields model redistribution + the slowest shard, host/fault/traffic
  // counters are summed, attribution comes from the slowest shard, and
  // vm_start/vm_end span the shards' per-device stream placements.
  struct Launch {
    kernels::PoolResult result;
    std::int64_t cycles = 0;  // redistribution + max shard compute
    std::int64_t redistribution_bytes = 0;
    std::int64_t redistribution_cycles = 0;
    int shards = 1;
  };

  explicit Cluster(ClusterOptions opts = {});

  // Movable (the session takes its cluster by value); the stats mutex
  // is per-object, so moving is only safe while no other thread touches
  // the source -- the construction-time handoff into Session.
  Cluster(Cluster&& other) noexcept;
  Cluster& operator=(Cluster&& other) noexcept;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  Device& device(int i) { return *devices_.at(static_cast<std::size_t>(i)); }
  const Device& device(int i) const {
    return *devices_.at(static_cast<std::size_t>(i));
  }
  const ClusterOptions& options() const { return opts_; }
  Placement placement() const { return opts_.placement; }
  // Total AI cores across the cluster (devices are identical).
  int total_cores() const;

  // Cluster-wide device policy (the session applies its options here).
  void set_double_buffer(bool on);
  void set_resilience(const ResilienceOptions& opts);
  // Attaches a per-device VM stream (one stream per device; the session
  // owns them).
  void set_vm_stream(int device, vm::VmStream* stream);

  // Routes one launch. pin < 0 shards `in` over the placement axis
  // across all devices (a shard covering the whole axis -- one device,
  // or an axis shorter than the device count resolving to one chunk --
  // runs on the owning device with zero copies). pin >= 0 runs the
  // whole launch on that device; pin >= num_devices() throws Error.
  // Shard failures (CoreFailed, RetryExhausted, kernel errors)
  // propagate; a launch only lands in the stats when every shard
  // completed.
  Launch run_pool(const kernels::PoolOp& op, const kernels::PoolInputs& in,
                  int pin = -1);

  Stats stats() const;
  void reset_stats();

 private:
  struct Shard {
    int device = 0;
    std::int64_t begin = 0;  // first index on the placement axis
    std::int64_t length = 0;
  };

  std::vector<Shard> plan_shards(std::int64_t axis_len, int pin) const;
  std::int64_t link_cycles(std::int64_t bytes) const;

  ClusterOptions opts_;
  std::vector<std::unique_ptr<Device>> devices_;
  // The link's MTE-shaped cost model: opts_.cost with the interconnect
  // bandwidth/latency substituted in.
  CostModel link_cost_;

  // Stats have their own leaf mutex: run_pool is single-threaded (the
  // serving worker) but stats() scrapes from telemetry threads.
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace davinci::serve
