// LRU cache for AKG tiling plans (docs/SERVING.md).
//
// akg::plan_fwd / plan_bwd walk the UB-budget search space on every call;
// a serving session sees the same few shapes over and over, so the
// session computes each plan once and replays it through PoolOp::plan.
// The cache key is everything the planners read: direction, lowering,
// window geometry, input spatial size, mask production and the device's
// double-buffer policy. Plans are tiny (three integers), so the capacity
// bound exists to keep lookups O(1)-ish and eviction observable, not to
// save memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "akg/tiling.h"
#include "arch/arch_config.h"
#include "kernels/pooling.h"
#include "tensor/pool_geometry.h"

namespace davinci::serve {

// Everything akg::plan_fwd / plan_bwd depend on. Two PoolOps with equal
// PlanKey can share one PoolPlan.
struct PlanKey {
  bool backward = false;
  akg::PoolImpl impl = akg::PoolImpl::kIm2col;  // forward keys only
  Window2d window;
  std::int64_t ih = 0, iw = 0;
  bool with_mask = false;      // forward keys only
  bool double_buffer = false;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

struct PlanKeyHash {
  std::size_t operator()(const PlanKey& k) const;
};

// The PlanKey a descriptor resolves to, or nullopt for kinds that do not
// plan (kGlobalAvg). `ih`/`iw` is the input spatial size the operator
// maps over (for backward kinds: the gradient's target size).
std::optional<PlanKey> plan_key_for(const kernels::PoolOp& op,
                                    std::int64_t ih, std::int64_t iw,
                                    bool double_buffer);

class PlanCache {
 public:
  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;

    double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) /
                             static_cast<double>(total)
                       : 0.0;
    }
  };

  explicit PlanCache(std::size_t capacity = 64);

  // Returns the cached plan for `key`, running the AKG planner on a miss
  // and evicting the least-recently-used entry when full. Planner errors
  // (shape out of schedule scope) propagate and cache nothing.
  akg::PoolPlan get(const ArchConfig& arch, const PlanKey& key);

  // Lookup without planning; does not touch recency or stats.
  const akg::PoolPlan* peek(const PlanKey& key) const;

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }
  void clear();
  // Zeroes the hit/miss/eviction counters but keeps the cached plans --
  // the warmup path wants a warm cache with cold counters.
  void reset_stats() { stats_ = {}; }

 private:
  struct Node {
    PlanKey key;
    akg::PoolPlan plan;
  };

  std::size_t capacity_;
  std::list<Node> lru_;  // front = most recently used
  std::unordered_map<PlanKey, std::list<Node>::iterator, PlanKeyHash> map_;
  Stats stats_;
};

}  // namespace davinci::serve
