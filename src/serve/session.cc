#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.h"

namespace davinci::serve {

namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolResult;

double us_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LatencySummary summarize(std::vector<double> samples) {
  LatencySummary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  s.max = samples.back();
  return s;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string num(std::int64_t v) { return std::to_string(v); }

std::string latency_json(const LatencySummary& l) {
  return "{\"count\":" + num(l.count) + ",\"mean\":" + num(l.mean) +
         ",\"p50\":" + num(l.p50) + ",\"p90\":" + num(l.p90) +
         ",\"p99\":" + num(l.p99) + ",\"max\":" + num(l.max) + "}";
}

}  // namespace

Session::Session(SessionOptions opts)
    : Session(ArchConfig::ascend910(), opts) {}

Session::Session(ArchConfig arch, SessionOptions opts)
    : opts_(opts), device_(arch), plans_(opts.plan_cache_capacity) {
  DV_CHECK_GE(opts_.queue_depth, 1u);
  DV_CHECK_GE(opts_.max_batch, 1u);
  DV_CHECK_GE(opts_.ub_waves, 1);
  device_.set_double_buffer(opts_.double_buffer);
  worker_ = std::thread([this] { worker_loop(); });
}

Session::~Session() {
  resume();  // a paused session still completes its queue before dying
  drain();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  worker_.join();
}

void Session::enqueue_locked(Pending p, std::unique_lock<std::mutex>& lock) {
  (void)lock;
  queue_.push_back(std::move(p));
  stats_.submitted += 1;
  stats_.peak_queue_depth = std::max(
      stats_.peak_queue_depth, static_cast<std::int64_t>(queue_.size()));
}

std::future<PoolResult> Session::submit(PoolOp op, PoolInputs in) {
  Pending p;
  p.op = std::move(op);
  p.in = in;
  p.submitted = std::chrono::steady_clock::now();
  std::future<PoolResult> f = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.queue_depth) {
      stats_.backpressure_waits += 1;
      cv_space_.wait(lock,
                     [this] { return queue_.size() < opts_.queue_depth; });
    }
    enqueue_locked(std::move(p), lock);
  }
  cv_work_.notify_one();
  return f;
}

bool Session::try_submit(PoolOp op, PoolInputs in,
                         std::future<PoolResult>* out) {
  Pending p;
  p.op = std::move(op);
  p.in = in;
  p.submitted = std::chrono::steady_clock::now();
  std::future<PoolResult> f = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.queue_depth) return false;
    enqueue_locked(std::move(p), lock);
  }
  cv_work_.notify_one();
  *out = std::move(f);
  return true;
}

void Session::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] {
    return (queue_.empty() || paused_) && in_flight_ == 0;
  });
  DV_CHECK(queue_.empty() || paused_);
}

void Session::pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
}

void Session::resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

void Session::worker_loop() {
  for (;;) {
    std::vector<Pending> taken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_ && (queue_.empty() || paused_)) return;
      while (!queue_.empty()) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += static_cast<std::int64_t>(taken.size());
      for (Pending& p : taken) {
        queue_wait_us_.push_back(us_since(p.submitted));
      }
    }
    cv_space_.notify_all();
    process(std::move(taken));
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_ == 0 && (queue_.empty() || paused_)) {
        cv_idle_.notify_all();
      }
    }
  }
}

void Session::process(std::vector<Pending> taken) {
  std::vector<RequestView> views;
  views.reserve(taken.size());
  for (const Pending& p : taken) views.push_back(RequestView{&p.op, &p.in});

  const std::int64_t max_blocks =
      static_cast<std::int64_t>(device_.num_cores()) * opts_.ub_waves;
  const std::size_t max_requests = opts_.batching ? opts_.max_batch : 1u;
  std::vector<Batch> batches;
  try {
    batches = form_batches(views, max_requests, max_blocks);
  } catch (...) {
    // A malformed request (wrong rank, missing tensor) fails the whole
    // take; letting it escape would std::terminate the worker thread.
    const std::exception_ptr err = std::current_exception();
    for (Pending& p : taken) p.promise.set_exception(err);
    std::unique_lock<std::mutex> lock(mu_);
    stats_.failed += static_cast<std::int64_t>(taken.size());
    in_flight_ -= static_cast<std::int64_t>(taken.size());
    return;
  }

  for (const Batch& b : batches) {
    // Resolve the launch descriptor: the first member's op with the
    // cached tiling plan attached (all members share the PlanKey by
    // construction of the BatchKey).
    PoolOp op = taken[b.members.front()].op;
    const PoolInputs& first_in = taken[b.members.front()].in;
    std::int64_t launch_cycles = 0;
    try {
      const RequestGeometry g = request_geometry(op, first_in);
      const std::optional<PlanKey> key =
          plan_key_for(op, g.ih, g.iw, device_.double_buffer());
      if (key.has_value() && !op.plan.has_value()) {
        std::unique_lock<std::mutex> lock(mu_);
        op.plan = plans_.get(device_.arch(), *key);
      }
      if (b.members.size() == 1) {
        // Singleton fast path: run on the caller's tensors directly.
        PoolResult r = kernels::run_pool(device_, op, first_in);
        launch_cycles = r.cycles();
        taken[b.members.front()].promise.set_value(std::move(r));
      } else {
        const CoalescedInputs c = coalesce(views, b);
        const PoolResult batched =
            kernels::run_pool(device_, op, c.inputs());
        launch_cycles = batched.cycles();
        std::vector<PoolResult> parts = split_result(b, c, batched);
        for (std::size_t m = 0; m < b.members.size(); ++m) {
          taken[b.members[m]].promise.set_value(std::move(parts[m]));
        }
      }
      std::unique_lock<std::mutex> lock(mu_);
      stats_.completed += static_cast<std::int64_t>(b.members.size());
      stats_.launches += 1;
      stats_.device_cycles_total += launch_cycles;
      batch_members_total_ += static_cast<std::int64_t>(b.members.size());
      stats_.max_batch = std::max(stats_.max_batch, b.members.size());
      if (b.members.size() >= 2) {
        stats_.batches += 1;
        stats_.coalesced_requests +=
            static_cast<std::int64_t>(b.members.size());
      }
      for (std::size_t m : b.members) {
        latency_us_.push_back(us_since(taken[m].submitted));
      }
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      for (std::size_t m : b.members) {
        taken[m].promise.set_exception(err);
      }
      std::unique_lock<std::mutex> lock(mu_);
      stats_.failed += static_cast<std::int64_t>(b.members.size());
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    in_flight_ -= static_cast<std::int64_t>(taken.size());
  }
}

SessionStats Session::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  SessionStats s = stats_;
  s.latency = summarize(latency_us_);
  s.queue_wait = summarize(queue_wait_us_);
  s.avg_batch = s.launches > 0
                    ? static_cast<double>(batch_members_total_) /
                          static_cast<double>(s.launches)
                    : 0.0;
  s.plan_cache = plans_.stats();
  s.plan_cache_size = plans_.size();
  s.plan_cache_capacity = plans_.capacity();
  return s;
}

std::string Session::serve_json() const {
  const SessionStats s = stats();
  std::string j = "{";
  j += "\"requests\":" + num(s.submitted);
  j += ",\"completed\":" + num(s.completed);
  j += ",\"failed\":" + num(s.failed);
  j += ",\"launches\":" + num(s.launches);
  j += ",\"batches\":" + num(s.batches);
  j += ",\"coalesced_requests\":" + num(s.coalesced_requests);
  j += ",\"max_batch\":" + num(static_cast<std::int64_t>(s.max_batch));
  j += ",\"avg_batch\":" + num(s.avg_batch);
  j += ",\"device_cycles_total\":" + num(s.device_cycles_total);
  j += ",\"queue\":{\"capacity\":" +
       num(static_cast<std::int64_t>(opts_.queue_depth)) +
       ",\"peak_depth\":" + num(s.peak_queue_depth) +
       ",\"backpressure_waits\":" + num(s.backpressure_waits) + "}";
  j += ",\"plan_cache\":{\"hits\":" + num(s.plan_cache.hits) +
       ",\"misses\":" + num(s.plan_cache.misses) +
       ",\"evictions\":" + num(s.plan_cache.evictions) +
       ",\"size\":" + num(static_cast<std::int64_t>(s.plan_cache_size)) +
       ",\"capacity\":" +
       num(static_cast<std::int64_t>(s.plan_cache_capacity)) +
       ",\"hit_rate\":" + num(s.plan_cache.hit_rate()) + "}";
  j += ",\"host_latency_us\":" + latency_json(s.latency);
  j += ",\"host_queue_wait_us\":" + latency_json(s.queue_wait);
  j += "}";
  return j;
}

void Session::add_metrics(MetricsRegistry& reg) const {
  reg.set_serve(serve_json());
}

}  // namespace davinci::serve
