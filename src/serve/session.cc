#include "serve/session.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "common/percentile.h"
#include "tensor/arena.h"

namespace davinci::serve {

namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolResult;

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

std::string num(double v) { return json::number(v); }

std::string num(std::int64_t v) { return json::number(v); }

// The open-ended summary fields; callers append histogram / exact
// sub-objects before closing the brace.
std::string latency_json_fields(const LatencySummary& l) {
  return "\"count\":" + num(l.count) + ",\"mean\":" + num(l.mean) +
         ",\"p50\":" + num(l.p50) + ",\"p90\":" + num(l.p90) +
         ",\"p99\":" + num(l.p99) + ",\"p999\":" + num(l.p999) +
         ",\"max\":" + num(l.max);
}

std::int64_t round_us(double v) {
  return static_cast<std::int64_t>(v + 0.5);
}

// A completed resilient launch absorbed faults when any of these moved.
bool degraded(const FaultStats& f) {
  return f.faults_detected > 0 || f.retries > 0 ||
         f.blocks_redispatched > 0 || f.cores_quarantined > 0 ||
         f.faults_absorbed > 0;
}

}  // namespace

const char* to_string(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kRejectNew:
      return "reject-new";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "?";
}

Session::Session(SessionOptions opts) : Session(Cluster(), opts) {}

Session::Session(ArchConfig arch, SessionOptions opts)
    : Session(Cluster(ClusterOptions{.arch = arch}), opts) {}

Session::Session(Cluster cluster, SessionOptions opts)
    : opts_(opts),
      cluster_(std::move(cluster)),
      plans_(opts.plan_cache_capacity),
      req_trace_(opts.request_trace_capacity) {
  DV_CHECK_GE(opts_.queue_depth, 1u);
  DV_CHECK_GE(opts_.max_batch, 1u);
  DV_CHECK_GE(opts_.ub_waves, 1);
  DV_CHECK_GE(opts_.watchdog_timeout_us, 0);
  DV_CHECK_GE(opts_.vm_in_flight, 1);
  cluster_.set_double_buffer(opts_.double_buffer);
  if (opts_.resilience.has_value()) {
    cluster_.set_resilience(*opts_.resilience);
  }
  for (int d = 0; d < cluster_.num_devices(); ++d) {
    vm_streams_.push_back(std::make_unique<vm::VmStream>(
        vm::VmStreamOptions{opts_.vm_in_flight, opts_.vm_capture}));
    if (opts_.vm) cluster_.set_vm_stream(d, vm_streams_.back().get());
  }
  worker_ = std::thread([this] { worker_loop(); });
  if (opts_.watchdog_timeout_us > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

Session::~Session() {
  // Graceful shutdown: whatever is still queued is cancelled -- never
  // silently dropped -- so every future resolves. In-flight work
  // completes inside the worker before it observes stop_ and exits.
  std::vector<Pending> dropped;
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
    while (!queue_.empty()) {
      dropped.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    stats_.cancelled += static_cast<std::int64_t>(dropped.size());
  }
  cv_work_.notify_all();
  cv_space_.notify_all();
  cv_watchdog_.notify_all();
  for (Pending& p : dropped) {
    req_trace_.record(p.id, ReqEventKind::kCancelled);
    p.promise.set_exception(std::make_exception_ptr(
        Cancelled("session destroyed with the request still queued")));
  }
  worker_.join();
  if (watchdog_.joinable()) watchdog_.join();
}

void Session::enqueue_locked(Pending p, std::unique_lock<std::mutex>& lock) {
  (void)lock;
  queue_.push_back(std::move(p));
  stats_.submitted += 1;
  stats_.peak_queue_depth = std::max(
      stats_.peak_queue_depth, static_cast<std::int64_t>(queue_.size()));
}

std::future<PoolResult> Session::submit(PoolOp op, PoolInputs in,
                                        SubmitOptions sub) {
  DV_CHECK_GE(sub.deadline_us, 0);
  DV_CHECK_GE(sub.shard, -1);
  Pending p;
  p.op = std::move(op);
  p.in = in;
  p.submitted = Clock::now();
  if (sub.deadline_us > 0) {
    p.deadline = p.submitted + std::chrono::microseconds(sub.deadline_us);
  }
  p.prio = sub.prio;
  p.shard = sub.shard;
  std::future<PoolResult> f = p.promise.get_future();
  std::optional<Pending> shed;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Trace ids are assigned in admission order, before the overload
    // policy runs, so a blocked submit keeps the id it arrived with.
    p.id = next_trace_id_++;
    if (sub.trace_id != nullptr) *sub.trace_id = p.id;
    const std::int64_t id = p.id;
    if (queue_.size() >= opts_.queue_depth && !stop_) {
      switch (opts_.overload) {
        case OverloadPolicy::kBlock:
          stats_.backpressure_waits += 1;
          cv_space_.wait(lock, [this] {
            return stop_ || queue_.size() < opts_.queue_depth;
          });
          break;
        case OverloadPolicy::kRejectNew: {
          stats_.submitted += 1;
          stats_.rejected += 1;
          req_trace_.record(id, ReqEventKind::kSubmitted, sub.prio,
                            sub.deadline_us);
          req_trace_.record(id, ReqEventKind::kRejected);
          p.promise.set_exception(std::make_exception_ptr(Overloaded(
              "admission queue full (" + std::to_string(opts_.queue_depth) +
              " requests) and overload policy is reject-new")));
          return f;
        }
        case OverloadPolicy::kShedOldest: {
          // Shed the oldest request of the lowest priority present; the
          // queue is in submission order, so the first match is oldest.
          auto victim = queue_.begin();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if (it->prio < victim->prio) victim = it;
          }
          shed.emplace(std::move(*victim));
          queue_.erase(victim);
          stats_.shed += 1;
          req_trace_.record(shed->id, ReqEventKind::kShed);
          break;
        }
      }
    }
    if (stop_) {
      stats_.cancelled += 1;
      req_trace_.record(id, ReqEventKind::kSubmitted, sub.prio,
                        sub.deadline_us);
      req_trace_.record(id, ReqEventKind::kCancelled);
      p.promise.set_exception(std::make_exception_ptr(
          Cancelled("session shutting down")));
      return f;
    }
    enqueue_locked(std::move(p), lock);
    req_trace_.record(id, ReqEventKind::kSubmitted, sub.prio,
                      sub.deadline_us);
  }
  if (shed.has_value()) {
    shed->promise.set_exception(std::make_exception_ptr(Overloaded(
        "shed by a newer request (queue full, overload policy "
        "shed-oldest)")));
  }
  cv_work_.notify_one();
  return f;
}

bool Session::try_submit(PoolOp op, PoolInputs in,
                         std::future<PoolResult>* out, SubmitOptions sub) {
  DV_CHECK_GE(sub.deadline_us, 0);
  DV_CHECK_GE(sub.shard, -1);
  Pending p;
  p.op = std::move(op);
  p.in = in;
  p.submitted = Clock::now();
  if (sub.deadline_us > 0) {
    p.deadline = p.submitted + std::chrono::microseconds(sub.deadline_us);
  }
  p.prio = sub.prio;
  p.shard = sub.shard;
  std::future<PoolResult> f = p.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= opts_.queue_depth) return false;
    // Refused probes never consume a trace id.
    p.id = next_trace_id_++;
    if (sub.trace_id != nullptr) *sub.trace_id = p.id;
    const std::int64_t id = p.id;
    enqueue_locked(std::move(p), lock);
    req_trace_.record(id, ReqEventKind::kSubmitted, sub.prio,
                      sub.deadline_us);
  }
  cv_work_.notify_one();
  *out = std::move(f);
  return true;
}

void Session::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] {
    return (queue_.empty() || paused_) && in_flight_ == 0;
  });
  DV_CHECK(queue_.empty() || paused_);
}

bool Session::drain(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_idle_.wait_for(lock, timeout, [this] {
    return (queue_.empty() || paused_) && in_flight_ == 0;
  });
}

void Session::pause() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
}

void Session::resume() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_work_.notify_all();
}

std::int64_t Session::max_blocks_locked() const {
  // The block cap scales with the whole cluster: a coalesced launch is
  // sharded across the devices, so each device still sees at most
  // healthy-cores x ub_waves blocks. Quarantine observed on any shard
  // shrinks the cap cluster-wide (conservative -- a suspect core caps
  // every device's wave budget equally).
  const int healthy =
      std::max(1, cluster_.total_cores() - stats_.quarantined_cores);
  return static_cast<std::int64_t>(healthy) * opts_.ub_waves;
}

void Session::worker_loop() {
  for (;;) {
    std::vector<Pending> taken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (stop_ && (queue_.empty() || paused_)) return;
      while (!queue_.empty()) {
        taken.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += static_cast<std::int64_t>(taken.size());
      for (Pending& p : taken) {
        const double w = us_since(p.submitted);
        queue_wait_hist_.record(w);
        if (queue_wait_exact_.size() < opts_.latency_sample_cap) {
          queue_wait_exact_.push_back(w);
        }
        req_trace_.record(p.id, ReqEventKind::kAdmitted, round_us(w));
      }
    }
    cv_space_.notify_all();
    process(std::move(taken));
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_ == 0 && (queue_.empty() || paused_)) {
        cv_idle_.notify_all();
      }
    }
  }
}

void Session::watchdog_loop() {
  const auto timeout = std::chrono::microseconds(opts_.watchdog_timeout_us);
  // Sample at least twice per budget, but never spin faster than 50us.
  const auto period = std::max(std::chrono::microseconds(50), timeout / 2);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_watchdog_.wait_for(lock, period);
    if (stop_) return;
    if (launch_active_ && alarmed_seq_ != launch_seq_ &&
        Clock::now() - launch_start_ > timeout) {
      alarmed_seq_ = launch_seq_;
      stats_.watchdog_alarms += 1;
    }
  }
}

void Session::process(std::vector<Pending> taken) {
  // Screen each request alone so a malformed one (wrong rank, missing
  // tensor, out-of-range placement hint) fails only its own future --
  // its takemates keep going.
  std::vector<std::size_t> screened;  // taken indices that passed
  for (std::size_t i = 0; i < taken.size(); ++i) {
    try {
      (void)batch_key(taken[i].op, taken[i].in);
      if (taken[i].shard >= cluster_.num_devices()) {
        throw Error("shard " + std::to_string(taken[i].shard) +
                    " out of range [0, " +
                    std::to_string(cluster_.num_devices()) + ")");
      }
    } catch (...) {
      taken[i].promise.set_exception(std::current_exception());
      req_trace_.record(taken[i].id, ReqEventKind::kFailed);
      std::unique_lock<std::mutex> lock(mu_);
      stats_.failed += 1;
      continue;
    }
    screened.push_back(i);
  }

  // Partition the take by placement hint: auto (-1) requests shard
  // through the router; pinned ones launch on their device, so a pinned
  // request never coalesces with a differently-pinned one. Hint groups
  // launch in ascending hint order (auto first); within a group the
  // pre-cluster behavior is unchanged -- an all-auto take is one group,
  // identical to the single-partition path this generalizes.
  std::map<int, std::vector<std::size_t>> groups;  // hint -> taken indices
  for (std::size_t i : screened) groups[taken[i].shard].push_back(i);

  for (auto& [shard, group] : groups) {
    std::vector<std::size_t> taken_of;  // view index -> taken index
    std::vector<RequestView> views;
    taken_of.reserve(group.size());
    views.reserve(group.size());
    for (std::size_t i : group) {
      taken_of.push_back(i);
      views.push_back(RequestView{&taken[i].op, &taken[i].in});
    }

    std::int64_t max_blocks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      max_blocks = max_blocks_locked();
    }
    const std::size_t max_requests = opts_.batching ? opts_.max_batch : 1u;
    std::vector<Batch> batches = form_batches(views, max_requests, max_blocks);

    // Deadline-aware launch order: batches with the most urgent member
    // go first (earliest-deadline-first across the group; submission
    // order within a batch and among deadline-free batches).
    auto urgency = [&](const Batch& b) {
      Clock::time_point earliest = Clock::time_point::max();
      for (std::size_t m : b.members) {
        const Pending& p = taken[taken_of[m]];
        if (p.deadline.has_value() && *p.deadline < earliest) {
          earliest = *p.deadline;
        }
      }
      return earliest;
    };
    std::stable_sort(batches.begin(), batches.end(),
                     [&](const Batch& a, const Batch& b) {
                       return urgency(a) < urgency(b);
                     });

    for (const Batch& b : batches) {
      execute_members(taken, views, taken_of, b.members, shard);
    }
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    in_flight_ -= static_cast<std::int64_t>(taken.size());
  }
}

void Session::execute_members(std::vector<Pending>& taken,
                              const std::vector<RequestView>& views,
                              const std::vector<std::size_t>& taken_of,
                              std::vector<std::size_t> members, int shard) {
  // In-queue expiry: a lapsed deadline fails the request here, before
  // any coalescing or launch, and drops it from the batch -- batchmates
  // launch without it.
  const Clock::time_point now = Clock::now();
  std::vector<std::size_t> live;
  live.reserve(members.size());
  std::int64_t expired = 0;
  for (std::size_t m : members) {
    Pending& p = taken[taken_of[m]];
    if (p.deadline.has_value() && *p.deadline < now) {
      p.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
          "deadline exceeded after " + std::to_string(us_since(p.submitted)) +
          "us in queue (request never launched)")));
      req_trace_.record(p.id, ReqEventKind::kExpired,
                        round_us(us_since(p.submitted)));
      expired += 1;
    } else {
      live.push_back(m);
    }
  }
  if (expired > 0) {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.expired += expired;
  }
  if (live.empty()) return;

  std::exception_ptr err;
  bool bisectable = false;
  try {
    launch_members(taken, views, taken_of, live, shard);
    return;
  } catch (const CoreFailed&) {
    err = std::current_exception();
    bisectable = true;
  } catch (const RetryExhausted&) {
    err = std::current_exception();
    bisectable = true;
  } catch (...) {
    err = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.launch_failures += 1;
  }

  if (bisectable && live.size() >= 2) {
    // The resilient path gave up on the coalesced launch: bisect so the
    // poisoned member(s) fail alone. Each half re-checks deadlines and
    // may bisect further; cost is O(log batch) extra launches.
    {
      std::unique_lock<std::mutex> lock(mu_);
      stats_.bisections += 1;
    }
    for (std::size_t m : live) {
      req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kBisected,
                        static_cast<std::int64_t>(live.size()));
    }
    const std::size_t mid = live.size() / 2;
    std::vector<std::size_t> lo(live.begin(),
                                live.begin() + static_cast<long>(mid));
    std::vector<std::size_t> hi(live.begin() + static_cast<long>(mid),
                                live.end());
    execute_members(taken, views, taken_of, std::move(lo), shard);
    execute_members(taken, views, taken_of, std::move(hi), shard);
    return;
  }

  for (std::size_t m : live) {
    taken[taken_of[m]].promise.set_exception(err);
    req_trace_.record(taken[taken_of[m]].id,
                      bisectable ? ReqEventKind::kPoisoned
                                 : ReqEventKind::kFailed);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    stats_.failed += static_cast<std::int64_t>(live.size());
    if (bisectable) {
      stats_.poisoned_requests += static_cast<std::int64_t>(live.size());
    }
  }
}

void Session::launch_members(std::vector<Pending>& taken,
                             const std::vector<RequestView>& views,
                             const std::vector<std::size_t>& taken_of,
                             const std::vector<std::size_t>& members,
                             int shard) {
  // Resolve the launch descriptor: the first member's op with the cached
  // tiling plan attached (all members share the PlanKey by construction
  // of the BatchKey). Plans are keyed on per-block geometry, never N or
  // C1, so one cached plan serves every shard of the launch.
  PoolOp op = taken[taken_of[members.front()]].op;
  const PoolInputs& first_in = taken[taken_of[members.front()]].in;
  const RequestGeometry g = request_geometry(op, first_in);
  const std::optional<PlanKey> key =
      plan_key_for(op, g.ih, g.iw, cluster_.device(0).double_buffer());
  std::int64_t plan_hit = -1;  // -1: no plan lookup for this launch
  if (key.has_value() && !op.plan.has_value()) {
    std::unique_lock<std::mutex> lock(mu_);
    const std::int64_t hits_before = plans_.stats().hits;
    op.plan = plans_.get(cluster_.device(0).arch(), *key);
    plan_hit = plans_.stats().hits > hits_before ? 1 : 0;
  }
  if (plan_hit >= 0) {
    for (std::size_t m : members) {
      req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kPlanned,
                        plan_hit);
    }
  }

  // Stamp the launch for the watchdog; cleared on every exit path. The
  // 0-based sequence number doubles as the batch id in the request
  // trace -- after reset_stats it re-aligns with the VM stream's launch
  // sequence, so trace consumers can join host and device spans.
  std::int64_t batch_id = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    batch_id = launch_seq_;
    launch_seq_ += 1;
    launch_start_ = Clock::now();
    launch_active_ = true;
  }
  const std::int64_t batch_n = static_cast<std::int64_t>(members.size());
  for (std::size_t m : members) {
    req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kBatched,
                      batch_id, batch_n);
    req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kLaunched,
                      batch_id, batch_n);
  }
  struct LaunchScope {
    Session* s;
    ~LaunchScope() {
      std::unique_lock<std::mutex> lock(s->mu_);
      s->launch_active_ = false;
    }
  } scope{this};

  std::int64_t launch_cycles = 0;
  FaultStats launch_faults;
  int cores_lost = 0;
  std::int64_t vm_start = 0, vm_end = 0;
  if (members.size() == 1) {
    // Singleton fast path: run on the caller's tensors directly, routed
    // through the cluster (identity on one device or a pinned shard).
    Cluster::Launch lr = cluster_.run_pool(op, first_in, shard);
    launch_cycles = lr.cycles;
    launch_faults = lr.result.run.faults;
    cores_lost = static_cast<int>(lr.result.run.faults.cores_quarantined);
    vm_start = lr.result.run.vm_start;
    vm_end = lr.result.run.vm_end;
    taken[taken_of[members.front()]].promise.set_value(std::move(lr.result));
  } else {
    Batch b;
    b.key = batch_key(op, first_in);
    b.members = members;
    const CoalescedInputs c = coalesce(views, b);
    Cluster::Launch lr = cluster_.run_pool(op, c.inputs(), shard);
    launch_cycles = lr.cycles;
    launch_faults = lr.result.run.faults;
    cores_lost = static_cast<int>(lr.result.run.faults.cores_quarantined);
    vm_start = lr.result.run.vm_start;
    vm_end = lr.result.run.vm_end;
    std::vector<PoolResult> parts = split_result(b, c, lr.result);
    for (std::size_t m = 0; m < members.size(); ++m) {
      taken[taken_of[members[m]]].promise.set_value(std::move(parts[m]));
    }
  }
  if (vm_end > 0) {
    // The launch's scheduled span on the cross-launch stream timeline --
    // the anchor that aligns request rows with device tracks in the
    // unified Chrome trace.
    for (std::size_t m : members) {
      req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kVmScheduled,
                        vm_start, vm_end);
    }
  }

  std::unique_lock<std::mutex> lock(mu_);
  stats_.completed += static_cast<std::int64_t>(members.size());
  stats_.launches += 1;
  stats_.device_cycles_total += launch_cycles;
  stats_.faults += launch_faults;
  if (degraded(launch_faults)) stats_.degraded_launches += 1;
  // A quarantined core stays suspect for the session: shrink the block
  // cap so later coalesced launches fit the healthy cores' UB waves.
  stats_.quarantined_cores = std::max(stats_.quarantined_cores, cores_lost);
  batch_members_total_ += static_cast<std::int64_t>(members.size());
  stats_.max_batch = std::max(stats_.max_batch, members.size());
  if (members.size() >= 2) {
    stats_.batches += 1;
    stats_.coalesced_requests += static_cast<std::int64_t>(members.size());
  }
  for (std::size_t m : members) {
    const double lat = us_since(taken[taken_of[m]].submitted);
    latency_hist_.record(lat);
    if (latency_exact_.size() < opts_.latency_sample_cap) {
      latency_exact_.push_back(lat);
    }
    req_trace_.record(taken[taken_of[m]].id, ReqEventKind::kCompleted,
                      round_us(lat), batch_id);
  }
}

SessionStats Session::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  SessionStats s = stats_;
  s.latency = latency_hist_.summary();
  s.queue_wait = queue_wait_hist_.summary();
  s.latency_exact = stats::summarize(latency_exact_);
  s.queue_wait_exact = stats::summarize(queue_wait_exact_);
  s.queue_depth = static_cast<std::int64_t>(queue_.size());
  s.request_trace = req_trace_.stats();
  s.devices = cluster_.num_devices();
  s.placement = cluster_.placement();
  s.cluster = cluster_.stats();
  // One device reports its stream verbatim (bit-for-bit the pre-cluster
  // numbers). Multiple devices aggregate: makespan is the busiest
  // device's (the compute leg of the roofline), additive counters and
  // per-pipe buckets sum, and overlap is recomputed against the
  // aggregate makespan. The busy+wait+flag+idle == makespan * tracks
  // invariant holds per device, not for the aggregate.
  s.vm = vm_streams_.front()->stats();
  s.vm_makespan_per_device.reserve(vm_streams_.size());
  s.vm_makespan_per_device.push_back(s.vm.makespan);
  for (std::size_t d = 1; d < vm_streams_.size(); ++d) {
    const vm::VmStream::Stats ds = vm_streams_[d]->stats();
    s.vm_makespan_per_device.push_back(ds.makespan);
    s.vm.launches += ds.launches;
    s.vm.serial_sum += ds.serial_sum;
    s.vm.window_stalls += ds.window_stalls;
    s.vm.hazard_stalls += ds.hazard_stalls;
    s.vm.makespan = std::max(s.vm.makespan, ds.makespan);
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      vm::VmStream::PipeStream& agg = s.vm.streams[pi];
      const vm::VmStream::PipeStream& ps = ds.streams[pi];
      agg.tracks += ps.tracks;
      agg.busy += ps.busy;
      agg.wait += ps.wait;
      agg.flag += ps.flag;
      agg.idle += ps.idle;
    }
  }
  if (vm_streams_.size() > 1) {
    s.vm.overlap_cycles = s.vm.serial_sum - s.vm.makespan;
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      vm::VmStream::PipeStream& agg = s.vm.streams[pi];
      const std::int64_t total = agg.busy + agg.wait + agg.flag + agg.idle;
      agg.occupancy =
          total > 0 ? static_cast<double>(agg.busy) / static_cast<double>(total)
                    : 0.0;
    }
  }
  // Cluster roofline: the stream is bounded below by its busiest
  // device's compute and its busiest link's cumulative transfer time.
  // Identical to vm.makespan on one device (no links).
  s.cluster_makespan = std::max(s.vm.makespan, s.cluster.link_busy_cycles);
  s.avg_batch = s.launches > 0
                    ? static_cast<double>(batch_members_total_) /
                          static_cast<double>(s.launches)
                    : 0.0;
  s.plan_cache = plans_.stats();
  s.plan_cache_size = plans_.size();
  s.plan_cache_capacity = plans_.capacity();
  return s;
}

void Session::reset_stats() {
  std::unique_lock<std::mutex> lock(mu_);
  DV_CHECK(in_flight_ == 0 && queue_.empty())
      << "reset_stats on a non-idle session";
  stats_ = {};
  latency_hist_.reset();
  queue_wait_hist_.reset();
  latency_exact_.clear();
  queue_wait_exact_.clear();
  batch_members_total_ = 0;
  // Re-align the batch-id sequence with the (reset) VM stream's launch
  // sequence so post-warmup trace events join cleanly.
  launch_seq_ = 0;
  alarmed_seq_ = 0;
  req_trace_.reset();
  plans_.reset_stats();
  for (const std::unique_ptr<vm::VmStream>& s : vm_streams_) s->reset();
  cluster_.reset_stats();
}

std::string Session::serve_json() const {
  const SessionStats s = stats();
  // The histogram serializations are grabbed under a second short lock;
  // between stats() and here new samples may land, so the buckets can be
  // marginally newer than the summary -- fine for reporting.
  std::string lat_buckets, qw_buckets;
  std::int64_t lat_dropped = 0, qw_dropped = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    lat_buckets = latency_hist_.buckets_json();
    lat_dropped = latency_hist_.dropped();
    qw_buckets = queue_wait_hist_.buckets_json();
    qw_dropped = queue_wait_hist_.dropped();
  }
  auto latency_obj = [](const LatencySummary& l, const LatencySummary& ex,
                        const std::string& buckets, std::int64_t dropped) {
    // "complete" marks an exact set that saw every sample (count within
    // the retention cap), i.e. the histogram percentiles can be
    // cross-checked against exact ones at full fidelity.
    return "{" + latency_json_fields(l) + ",\"hist\":{\"buckets\":" +
           buckets + ",\"dropped\":" + num(dropped) +
           "},\"exact\":{\"count\":" + num(ex.count) +
           ",\"p50\":" + num(ex.p50) + ",\"p99\":" + num(ex.p99) +
           ",\"p999\":" + num(ex.p999) + ",\"complete\":" +
           (ex.count == l.count ? "true" : "false") + "}}";
  };
  std::string j = "{";
  j += "\"requests\":" + num(s.submitted);
  j += ",\"completed\":" + num(s.completed);
  j += ",\"failed\":" + num(s.failed);
  j += ",\"expired\":" + num(s.expired);
  j += ",\"shed\":" + num(s.shed);
  j += ",\"rejected\":" + num(s.rejected);
  j += ",\"cancelled\":" + num(s.cancelled);
  j += ",\"launches\":" + num(s.launches);
  j += ",\"batches\":" + num(s.batches);
  j += ",\"coalesced_requests\":" + num(s.coalesced_requests);
  j += ",\"max_batch\":" + num(static_cast<std::int64_t>(s.max_batch));
  j += ",\"avg_batch\":" + num(s.avg_batch);
  j += ",\"device_cycles_total\":" + num(s.device_cycles_total);
  // Schema v5 (kept in v6): the cross-launch VM schedule. "makespan" is
  // the overlapped device time of the whole request stream (a gated
  // metric in davinci_prof --diff); each per-pipe stream holds the PR-4
  // bucket invariant busy + wait + flag + idle == makespan * tracks.
  j += ",\"vm\":{\"enabled\":" +
       std::string(opts_.vm ? "true" : "false") +
       ",\"in_flight\":" + num(static_cast<std::int64_t>(s.vm.in_flight)) +
       ",\"launches\":" + num(s.vm.launches) +
       ",\"makespan\":" + num(s.vm.makespan) +
       ",\"serial_sum\":" + num(s.vm.serial_sum) +
       ",\"overlap_cycles\":" + num(s.vm.overlap_cycles) +
       ",\"window_stalls\":" + num(s.vm.window_stalls) +
       ",\"hazard_stalls\":" + num(s.vm.hazard_stalls) + ",\"streams\":{";
  {
    bool first = true;
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      const vm::VmStream::PipeStream& ps = s.vm.streams[pi];
      if (ps.tracks == 0) continue;
      if (!first) j += ",";
      first = false;
      j += "\"" + std::string(to_string(static_cast<Pipe>(pi))) +
           "\":{\"tracks\":" + num(ps.tracks) + ",\"busy\":" + num(ps.busy) +
           ",\"wait\":" + num(ps.wait) + ",\"flag\":" + num(ps.flag) +
           ",\"idle\":" + num(ps.idle) +
           ",\"occupancy\":" + num(ps.occupancy) + "}";
    }
  }
  j += "}}";
  // Schema v7: the placement router's view of the stream. "makespan" is
  // the cluster roofline (max of the busiest device's VM makespan and
  // the busiest link's busy time; equals vm.makespan on one device).
  // per_device rows carry each device's share plus its own VM makespan;
  // links lists only directed links that carried traffic.
  j += ",\"cluster\":{\"devices\":" +
       num(static_cast<std::int64_t>(s.devices)) + ",\"placement\":\"" +
       std::string(to_string(s.placement)) +
       "\",\"link_bytes_per_cycle\":" +
       num(cluster_.options().link_bytes_per_cycle) +
       ",\"link_latency_cycles\":" +
       num(cluster_.options().link_latency_cycles) +
       ",\"launches\":" + num(s.cluster.launches) +
       ",\"sharded_launches\":" + num(s.cluster.sharded_launches) +
       ",\"redistribution\":{\"transfers\":" +
       num(s.cluster.redistribution_transfers) +
       ",\"bytes\":" + num(s.cluster.redistribution_bytes) +
       ",\"cycles\":" + num(s.cluster.redistribution_cycles) + "}" +
       ",\"link_busy_cycles\":" + num(s.cluster.link_busy_cycles) +
       ",\"makespan\":" + num(s.cluster_makespan) + ",\"per_device\":[";
  for (std::size_t d = 0; d < s.cluster.devices.size(); ++d) {
    const Cluster::DeviceStats& ds = s.cluster.devices[d];
    if (d > 0) j += ",";
    j += "{\"device\":" + num(static_cast<std::int64_t>(d)) +
         ",\"launches\":" + num(ds.launches) +
         ",\"blocks\":" + num(ds.blocks) + ",\"cycles\":" + num(ds.cycles) +
         ",\"inflight_shards\":" + num(ds.inflight_shards) +
         ",\"vm_makespan\":" +
         num(d < s.vm_makespan_per_device.size()
                 ? s.vm_makespan_per_device[d]
                 : 0) +
         "}";
  }
  j += "],\"links\":[";
  {
    bool first = true;
    const int d_count = s.devices;
    for (int src = 0; src < d_count; ++src) {
      for (int dst = 0; dst < d_count; ++dst) {
        const Cluster::LinkStats& ls =
            s.cluster.links[static_cast<std::size_t>(src * d_count + dst)];
        if (ls.transfers == 0) continue;
        if (!first) j += ",";
        first = false;
        j += "{\"src\":" + num(static_cast<std::int64_t>(src)) +
             ",\"dst\":" + num(static_cast<std::int64_t>(dst)) +
             ",\"transfers\":" + num(ls.transfers) +
             ",\"bytes\":" + num(ls.bytes) + ",\"cycles\":" + num(ls.cycles) +
             "}";
      }
    }
  }
  j += "]}";
  j += ",\"overload_policy\":\"" + std::string(to_string(opts_.overload)) +
       "\"";
  j += ",\"watchdog_alarms\":" + num(s.watchdog_alarms);
  j += ",\"queue\":{\"capacity\":" +
       num(static_cast<std::int64_t>(opts_.queue_depth)) +
       ",\"peak_depth\":" + num(s.peak_queue_depth) +
       ",\"backpressure_waits\":" + num(s.backpressure_waits) + "}";
  j += ",\"resilience\":{\"enabled\":" +
       std::string(opts_.resilience.has_value() ? "true" : "false") +
       ",\"degraded_launches\":" + num(s.degraded_launches) +
       ",\"bisections\":" + num(s.bisections) +
       ",\"poisoned_requests\":" + num(s.poisoned_requests) +
       ",\"launch_failures\":" + num(s.launch_failures) +
       ",\"quarantined_cores\":" +
       num(static_cast<std::int64_t>(s.quarantined_cores)) +
       ",\"faults_injected\":" + num(s.faults.faults_injected) +
       ",\"faults_detected\":" + num(s.faults.faults_detected) +
       ",\"retries\":" + num(s.faults.retries) +
       ",\"blocks_redispatched\":" + num(s.faults.blocks_redispatched) +
       ",\"cores_quarantined_total\":" + num(s.faults.cores_quarantined) +
       "}";
  j += ",\"plan_cache\":{\"hits\":" + num(s.plan_cache.hits) +
       ",\"misses\":" + num(s.plan_cache.misses) +
       ",\"evictions\":" + num(s.plan_cache.evictions) +
       ",\"size\":" + num(static_cast<std::int64_t>(s.plan_cache_size)) +
       ",\"capacity\":" +
       num(static_cast<std::int64_t>(s.plan_cache_capacity)) +
       ",\"hit_rate\":" + num(s.plan_cache.hit_rate()) + "}";
  // Schema v6: p999 joins the summary fields, each latency object gains
  // a "hist" (sparse log-linear buckets, offline-mergeable) and an
  // "exact" cross-check sub-object, and "request_trace" reports the
  // lifecycle ring's counters.
  j += ",\"host_latency_us\":" +
       latency_obj(s.latency, s.latency_exact, lat_buckets, lat_dropped);
  j += ",\"host_queue_wait_us\":" +
       latency_obj(s.queue_wait, s.queue_wait_exact, qw_buckets,
                   qw_dropped);
  j += ",\"queue_depth\":" + num(s.queue_depth);
  j += ",\"request_trace\":" + request_trace_json(s.request_trace);
  j += "}";
  return j;
}

std::string Session::unified_chrome_trace() const {
  // The unified trace exports device 0's stream timeline (the ingress
  // device); on a multi-device cluster the other devices' schedules are
  // summarized in serve_json()'s "cluster" object instead.
  return unified_chrome_trace_json(*vm_streams_.front(),
                                   build_request_spans(req_trace_.snapshot()));
}

void Session::write_unified_chrome_trace(const std::string& path) const {
  davinci::write_unified_chrome_trace(
      path, *vm_streams_.front(), build_request_spans(req_trace_.snapshot()));
}

void Session::add_metrics(MetricsRegistry& reg) const {
  reg.set_serve(serve_json());
}

}  // namespace davinci::serve
