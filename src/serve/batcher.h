// Request coalescing for the serving session (docs/SERVING.md).
//
// Every pooling kernel launches one block per (N, C1) slice, so a
// single-image request on an InceptionV3 shape (C1 = 4..18) leaves most
// of the device's 32 AI Cores idle. The batcher stacks same-geometry
// requests along the batch dimension N before the launch and slices the
// outputs back apart afterwards -- bit-identical to running them one by
// one, because each block computes only its own (N, C1) slice with
// per-block scratch.
//
// Requests coalesce iff every launch-relevant field matches: operator
// kind, window geometry, lowering/merge choice and the per-image tensor
// geometry (C1, Ih, Iw). A batch is additionally split when it would
// exceed the launch caps: `max_requests` members or `max_blocks` total
// (N, C1) blocks -- the UB-budget cap, since every resident block pins
// its plan's ub_slots tile slots (serve::Session derives max_blocks from
// cores x ub_waves).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/pooling.h"
#include "tensor/tensor.h"

namespace davinci::serve {

// One queued request as the batcher sees it (non-owning).
struct RequestView {
  const kernels::PoolOp* op = nullptr;
  const kernels::PoolInputs* in = nullptr;
};

// Per-image geometry of a request (N images of (C1, .., C0) each).
struct RequestGeometry {
  std::int64_t n = 0, c1 = 0, ih = 0, iw = 0;
};

RequestGeometry request_geometry(const kernels::PoolOp& op,
                                 const kernels::PoolInputs& in);

// The coalescing key: two requests with equal BatchKey can share one
// device launch. PoolOp::plan is deliberately excluded -- the session
// re-derives the plan for the whole batch from its cache.
struct BatchKey {
  kernels::PoolOpKind kind = kernels::PoolOpKind::kMaxFwd;
  Window2d window;
  akg::PoolImpl fwd = akg::PoolImpl::kIm2col;
  kernels::MergeImpl merge = kernels::MergeImpl::kCol2im;
  std::int64_t c1 = 0, ih = 0, iw = 0;

  friend bool operator==(const BatchKey&, const BatchKey&) = default;
};

BatchKey batch_key(const kernels::PoolOp& op, const kernels::PoolInputs& in);

// A launchable group: member indices into the request span, in
// submission order.
struct Batch {
  BatchKey key;
  std::vector<std::size_t> members;
  std::int64_t blocks = 0;  // sum over members of n * c1
};

// Groups `reqs` into batches. Batches come out in order of first member;
// members keep their submission order. A single request larger than
// `max_blocks` still forms its own singleton batch (the launch cap
// bounds coalescing, not admission).
std::vector<Batch> form_batches(const std::vector<RequestView>& reqs,
                                std::size_t max_requests,
                                std::int64_t max_blocks);

// The stacked tensors of one batch.
struct CoalescedInputs {
  TensorF16 in, mask, grad;
  std::int64_t ih = 0, iw = 0;     // backward kinds' target spatial size
  std::vector<std::int64_t> n_of;  // per-member N, in member order

  // The PoolInputs aliasing this object's tensors. Computed on demand so
  // the struct stays safely movable.
  kernels::PoolInputs inputs() const;
};

// Stacks the members' tensors along N (a memcpy per member and tensor:
// the N axis is outermost in NC1HWC0, so each member's slice is
// contiguous).
CoalescedInputs coalesce(const std::vector<RequestView>& reqs,
                         const Batch& b);

// Slices the batched result back into per-member results. Every member
// gets a copy of the batched run statistics (the launch was shared).
std::vector<kernels::PoolResult> split_result(
    const Batch& b, const CoalescedInputs& c,
    const kernels::PoolResult& batched);

}  // namespace davinci::serve
