#include "serve/trace.h"

#include <fstream>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/prng.h"
#include "tensor/fractal.h"

namespace davinci::serve {

namespace {

using kernels::MergeImpl;
using kernels::PoolOpKind;

std::int64_t parse_int(const std::string& v, std::size_t line,
                       const std::string& key) {
  try {
    std::size_t used = 0;
    const std::int64_t out = std::stoll(v, &used);
    if (used != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw Error("trace line " + std::to_string(line) + ": bad integer '" +
                v + "' for key '" + key + "'");
  }
}

PoolOpKind parse_kind(const std::string& v, std::size_t line) {
  for (PoolOpKind k :
       {PoolOpKind::kMaxFwd, PoolOpKind::kAvgFwd, PoolOpKind::kMinFwd,
        PoolOpKind::kGlobalAvg, PoolOpKind::kMaxMaskFwd, PoolOpKind::kMaxBwd,
        PoolOpKind::kAvgBwd}) {
    if (v == kernels::to_string(k)) return k;
  }
  throw Error("trace line " + std::to_string(line) + ": unknown op '" + v +
              "'");
}

akg::PoolImpl parse_impl(const std::string& v, std::size_t line) {
  for (akg::PoolImpl i :
       {akg::PoolImpl::kDirect, akg::PoolImpl::kIm2col,
        akg::PoolImpl::kExpansion, akg::PoolImpl::kXYSplit}) {
    if (v == akg::to_string(i)) return i;
  }
  throw Error("trace line " + std::to_string(line) + ": unknown impl '" + v +
              "' (direct|im2col|expansion|xysplit|auto)");
}

MergeImpl parse_merge(const std::string& v, std::size_t line) {
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    if (v == kernels::to_string(m)) return m;
  }
  throw Error("trace line " + std::to_string(line) + ": unknown merge '" +
              v + "' (vadd|col2im)");
}

}  // namespace

std::vector<TraceEntry> parse_trace(const std::string& text) {
  std::vector<TraceEntry> entries;
  std::istringstream stream(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(stream, line)) {
    lineno += 1;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string tok;
    TraceEntry e;
    bool have_op = false, impl_auto = false, any_token = false;
    std::set<std::string> seen;
    while (tokens >> tok) {
      any_token = true;
      const std::size_t eq = tok.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": expected key=value, got '" + tok + "'");
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (!seen.insert(key).second) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": duplicate key '" + key + "'");
      }
      Window2d& w = e.op.window;
      if (key == "op") {
        e.op.kind = parse_kind(val, lineno);
        have_op = true;
      } else if (key == "n") {
        e.n = parse_int(val, lineno, key);
      } else if (key == "c1") {
        e.c1 = parse_int(val, lineno, key);
      } else if (key == "ih") {
        e.ih = parse_int(val, lineno, key);
      } else if (key == "iw") {
        e.iw = parse_int(val, lineno, key);
      } else if (key == "k") {
        w.kh = w.kw = parse_int(val, lineno, key);
      } else if (key == "kh") {
        w.kh = parse_int(val, lineno, key);
      } else if (key == "kw") {
        w.kw = parse_int(val, lineno, key);
      } else if (key == "s") {
        w.sh = w.sw = parse_int(val, lineno, key);
      } else if (key == "sh") {
        w.sh = parse_int(val, lineno, key);
      } else if (key == "sw") {
        w.sw = parse_int(val, lineno, key);
      } else if (key == "p") {
        w.pt = w.pb = w.pl = w.pr = parse_int(val, lineno, key);
      } else if (key == "pt") {
        w.pt = parse_int(val, lineno, key);
      } else if (key == "pb") {
        w.pb = parse_int(val, lineno, key);
      } else if (key == "pl") {
        w.pl = parse_int(val, lineno, key);
      } else if (key == "pr") {
        w.pr = parse_int(val, lineno, key);
      } else if (key == "impl") {
        if (val == "auto") {
          impl_auto = true;
        } else {
          e.op.fwd = parse_impl(val, lineno);
        }
      } else if (key == "merge") {
        e.op.merge = parse_merge(val, lineno);
      } else if (key == "x") {
        e.repeat = static_cast<int>(parse_int(val, lineno, key));
      } else if (key == "deadline_us") {
        e.deadline_us = parse_int(val, lineno, key);
      } else if (key == "prio") {
        e.prio = static_cast<int>(parse_int(val, lineno, key));
      } else if (key == "shard") {
        e.shard = static_cast<int>(parse_int(val, lineno, key));
      } else {
        throw Error("trace line " + std::to_string(lineno) +
                    ": unknown key '" + key + "'");
      }
    }
    if (!have_op) {
      if (any_token) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": missing op=");
      }
      continue;  // blank / comment-only line
    }
    if (e.ih <= 0 || e.iw <= 0 || e.n <= 0 || e.c1 <= 0 || e.repeat < 1) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": n, c1, ih, iw must be positive (and x >= 1)");
    }
    if (e.deadline_us < 0) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": deadline_us must be >= 0");
    }
    // The upper bound (device count) is the session's to enforce --
    // the trace format does not know the cluster size.
    if (seen.count("shard") != 0 && e.shard < 0) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": shard must be >= 0");
    }
    if (impl_auto) e.op.fwd = akg::select_fwd_impl(e.op.window);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string to_line(const TraceEntry& e) {
  const Window2d& w = e.op.window;
  std::string out = "op=" + std::string(kernels::to_string(e.op.kind));
  out += " n=" + std::to_string(e.n) + " c1=" + std::to_string(e.c1) +
         " ih=" + std::to_string(e.ih) + " iw=" + std::to_string(e.iw);
  if (w.kh == w.kw) {
    out += " k=" + std::to_string(w.kh);
  } else {
    out += " kh=" + std::to_string(w.kh) + " kw=" + std::to_string(w.kw);
  }
  if (w.sh == w.sw) {
    out += " s=" + std::to_string(w.sh);
  } else {
    out += " sh=" + std::to_string(w.sh) + " sw=" + std::to_string(w.sw);
  }
  if (w.pt != 0 || w.pb != 0 || w.pl != 0 || w.pr != 0) {
    if (w.pt == w.pb && w.pb == w.pl && w.pl == w.pr) {
      out += " p=" + std::to_string(w.pt);
    } else {
      out += " pt=" + std::to_string(w.pt) + " pb=" + std::to_string(w.pb) +
             " pl=" + std::to_string(w.pl) + " pr=" + std::to_string(w.pr);
    }
  }
  if (kernels::is_backward(e.op.kind)) {
    out += " merge=" + std::string(kernels::to_string(e.op.merge));
  } else {
    out += " impl=" + std::string(akg::to_string(e.op.fwd));
  }
  if (e.repeat != 1) out += " x=" + std::to_string(e.repeat);
  if (e.deadline_us != 0) {
    out += " deadline_us=" + std::to_string(e.deadline_us);
  }
  if (e.prio != 0) out += " prio=" + std::to_string(e.prio);
  if (e.shard >= 0) out += " shard=" + std::to_string(e.shard);
  return out;
}

std::vector<TraceEntry> load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  DV_CHECK(f.good()) << "cannot open trace file " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_trace(ss.str());
}

kernels::PoolInputs MaterializedRequest::inputs() const {
  // Rank-based presence checks: a default-constructed tensor reports
  // size() == 1 (rank-0 empty product).
  kernels::PoolInputs pi;
  if (in.shape().rank() > 0) pi.in = &in;
  if (mask.shape().rank() > 0) pi.mask = &mask;
  if (grad.shape().rank() > 0) pi.grad = &grad;
  pi.ih = ih;
  pi.iw = iw;
  return pi;
}

MaterializedRequest materialize(const TraceEntry& e, std::uint64_t seed) {
  MaterializedRequest r;
  const Window2d& w = e.op.window;
  if (kernels::is_backward(e.op.kind)) {
    const std::int64_t oh = w.out_h(e.ih), ow = w.out_w(e.iw);
    // Every element is overwritten by fill_random_ints, so the tensors can
    // skip the zero-fill (arena reuse without a memset).
    r.grad = TensorF16(Shape{e.n, e.c1, oh, ow, kC0}, kUninitialized);
    r.grad.fill_random_ints(seed * 2 + 1, 0, 4);
    r.ih = e.ih;
    r.iw = e.iw;
    if (e.op.kind == kernels::PoolOpKind::kMaxBwd) {
      const std::int64_t ppg = round_up(oh * ow, kFractalRows);
      r.mask = TensorF16(Shape{e.n, e.c1, w.kh, w.kw, ppg, kC0},
                         kUninitialized);
      // A plausible 0/1 mask; the backward kernels read it as data, so
      // random bits exercise the same instruction stream as a real one.
      r.mask.fill_random_ints(seed * 2 + 2, 0, 1);
    }
  } else {
    r.in = TensorF16(Shape{e.n, e.c1, e.ih, e.iw, kC0}, kUninitialized);
    r.in.fill_random_ints(seed * 2 + 1);
  }
  return r;
}

}  // namespace davinci::serve
