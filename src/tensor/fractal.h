// Fractal memory layout (Section III-B of the paper).
//
// DaVinci represents images as NC1HWC0: the channel dimension C of NCHW is
// split into C1 = ceil(C / C0) groups of C0 channels, and C0 becomes the
// innermost (contiguous) dimension. For Float16, C0 = 16 so that one
// 16-row x C0-column "data-fractal" is exactly 4096 bits, the unit the
// Cube Unit consumes and the unit the Im2Col / Col2Im instructions move.
// Channels are zero-padded up to a multiple of C0.
#pragma once

#include <cstdint>

#include "common/float16.h"
#include "tensor/tensor.h"

namespace davinci {

// C0 for Float16 (16 elements x 16 bits = 256 bits per fractal row).
inline constexpr std::int64_t kC0 = 16;
// Rows per data-fractal: a fractal is 16 x C0 elements = 4096 bits.
inline constexpr std::int64_t kFractalRows = 16;
inline constexpr std::int64_t kFractalElems = kFractalRows * kC0;

constexpr std::int64_t c1_of(std::int64_t channels) {
  return (channels + kC0 - 1) / kC0;
}

// NCHW fp32 -> NC1HWC0 fp16 (shape (N, C1, H, W, C0)), zero-padding the
// channel remainder.
TensorF16 nchw_to_nc1hwc0(const TensorF32& nchw);

// NC1HWC0 fp16 -> NCHW fp32, dropping the channel padding. `channels` is
// the original C (<= C1 * C0).
TensorF32 nc1hwc0_to_nchw(const TensorF16& fractal, std::int64_t channels);

// Convenience: builds an NC1HWC0 tensor directly with the given logical
// dims; channel padding lanes are zero.
TensorF16 make_nc1hwc0(std::int64_t n, std::int64_t channels, std::int64_t h,
                       std::int64_t w);

}  // namespace davinci
