#include "tensor/arena.h"

#include <cstring>
#include <new>

namespace davinci {

namespace {

constexpr std::size_t kAlign = 64;
// Capacities are rounded up so near-equal request sizes share a bucket.
constexpr std::size_t kGranule = 256;

std::size_t rounded_capacity(std::size_t bytes) {
  const std::size_t c = (bytes + kGranule - 1) / kGranule * kGranule;
  return c == 0 ? kGranule : c;
}

}  // namespace

TensorArena& TensorArena::global() {
  static TensorArena* arena = new TensorArena;  // leaked by design
  return *arena;
}

void* TensorArena::allocate_raw(std::size_t bytes) {
  return ::operator new(bytes, std::align_val_t{kAlign});
}

void* TensorArena::acquire(std::size_t bytes, std::size_t* capacity) {
  const std::size_t want = rounded_capacity(bytes);
  void* p = nullptr;
  bool poison = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    poison = poison_;
    if (enabled_) {
      // Best fit, but never hand out a buffer more than 2x the request:
      // parking a tiny tensor in a huge buffer would slowly bloat every
      // bucket's effective footprint.
      auto it = pool_.lower_bound(want);
      if (it != pool_.end() && it->first <= want * 2) {
        p = it->second;
        *capacity = it->first;
        stats_.reuses += 1;
        stats_.pooled_buffers -= 1;
        stats_.pooled_bytes -= static_cast<std::int64_t>(it->first);
        pool_.erase(it);
      }
    }
    if (p == nullptr) stats_.allocs += 1;
  }
  if (p == nullptr) {
    p = allocate_raw(want);
    *capacity = want;
  }
  if (poison) std::memset(p, 0xA5, *capacity);
  return p;
}

void TensorArena::release(void* p, std::size_t capacity) noexcept {
  if (p == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_ &&
        stats_.pooled_bytes + static_cast<std::int64_t>(capacity) <=
            static_cast<std::int64_t>(max_pooled_bytes_)) {
      pool_.emplace(capacity, p);
      stats_.releases += 1;
      stats_.pooled_buffers += 1;
      stats_.pooled_bytes += static_cast<std::int64_t>(capacity);
      if (stats_.pooled_bytes > stats_.peak_pooled_bytes) {
        stats_.peak_pooled_bytes = stats_.pooled_bytes;
      }
      return;
    }
    stats_.discards += 1;
  }
  ::operator delete(p, std::align_val_t{kAlign});
}

void TensorArena::set_enabled(bool on) {
  if (!on) trim();
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool TensorArena::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void TensorArena::set_poison(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  poison_ = on;
}

bool TensorArena::poison() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poison_;
}

void TensorArena::trim() {
  std::multimap<std::size_t, void*> drop;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drop.swap(pool_);
    stats_.pooled_buffers = 0;
    stats_.pooled_bytes = 0;
  }
  for (auto& [cap, p] : drop) {
    (void)cap;
    ::operator delete(p, std::align_val_t{kAlign});
  }
}

TensorArena::Stats TensorArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void TensorArena::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t buffers = stats_.pooled_buffers;
  const std::int64_t bytes = stats_.pooled_bytes;
  stats_ = Stats{};
  stats_.pooled_buffers = buffers;
  stats_.pooled_bytes = bytes;
  stats_.peak_pooled_bytes = bytes;
}

}  // namespace davinci
