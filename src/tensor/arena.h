// Reusing arena for host tensor storage (the OneFlow tensor-pool
// pattern): freed tensor buffers park in a size-keyed free list and are
// handed back to the next acquire of a fitting size, instead of going
// through the system allocator -- and through a fresh zero-fill -- on
// every request.
//
// Why it exists: the serving hot path (serve::Session -> batcher ->
// kernels::run_pool) constructs the same few tensor geometries over and
// over -- the working set is exactly the plan cache's geometry keys -- so
// after the first wave of requests every buffer acquire is a reuse. The
// arena is deliberately content-agnostic: it pools raw byte capacity, and
// the geometry affinity falls out of the serving workload (equal
// geometry => equal byte size => same free-list bucket).
//
// Semantics:
//  * Tensor<T> (tensor/tensor.h) owns its buffer exactly as before --
//    deep copies, value semantics -- only the storage *source* changes.
//    Release happens in the Tensor destructor, so buffers recycle at
//    natural request boundaries.
//  * acquire() never returns previously-zeroed memory: callers that need
//    zero-fill (Tensor's default construction) memset themselves, and
//    callers that overwrite every element (kernel outputs, the batcher's
//    stack/slice staging) use Tensor's kUninitialized mode and skip it.
//  * set_poison(true) scribbles 0xA5 over every acquired buffer -- a test
//    mode that makes any consumer silently relying on zero-fill fail
//    loudly (tests/test_arena.cc runs the kernels under it).
//  * set_enabled(false) degrades to plain new/delete per acquire/release
//    (nothing pools); results must be bit-identical either way, which the
//    arena on/off chaos test asserts.
//
// Thread safety: all methods are safe to call concurrently (one mutex;
// the serving layer acquires on the worker thread and releases on
// whatever thread drops the last PoolResult copy).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

namespace davinci {

class TensorArena {
 public:
  struct Stats {
    std::int64_t allocs = 0;    // acquires served by the system allocator
    std::int64_t reuses = 0;    // acquires served from the free list
    std::int64_t releases = 0;  // buffers parked in the free list
    std::int64_t discards = 0;  // buffers freed instead (disabled / full)
    std::int64_t pooled_buffers = 0;  // currently parked
    std::int64_t pooled_bytes = 0;    // capacity currently parked
    std::int64_t peak_pooled_bytes = 0;
  };

  // The process-wide arena every Tensor allocates through. Leaked on
  // purpose (never destroyed): tensors with static storage duration may
  // release after any arena destructor would have run.
  static TensorArena& global();

  TensorArena() = default;
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  // Returns a 64-byte-aligned buffer of at least `bytes` and stores its
  // true capacity in *capacity (pass it back to release). The contents
  // are unspecified -- stale bytes from the buffer's previous life, or
  // 0xA5 under poison mode. `bytes` == 0 still returns a real buffer.
  void* acquire(std::size_t bytes, std::size_t* capacity);

  // Returns a buffer obtained from acquire(). Pools it for reuse, or
  // frees it when pooling is disabled or the pooled-byte cap is reached.
  void release(void* p, std::size_t capacity) noexcept;

  // Pooling switch. Disabling also drops everything currently pooled, so
  // an arena-off run measures the true allocate-per-request baseline.
  void set_enabled(bool on);
  bool enabled() const;

  // Test mode: scribble 0xA5 over every acquired buffer (see above).
  void set_poison(bool on);
  bool poison() const;

  // Frees every pooled buffer (keeps the enabled/poison switches).
  void trim();

  Stats stats() const;
  void reset_stats();

 private:
  void* allocate_raw(std::size_t bytes);

  mutable std::mutex mu_;
  bool enabled_ = true;
  bool poison_ = false;
  // capacity -> buffer; multimap so equal-size buffers (the common case:
  // repeated request geometries) all pool.
  std::multimap<std::size_t, void*> pool_;
  Stats stats_;
  // Pooled-byte cap: beyond it releases free instead of parking, so a
  // one-off huge geometry cannot pin memory forever.
  std::size_t max_pooled_bytes_ = std::size_t{256} << 20;
};

}  // namespace davinci
