#include "tensor/fractal.h"

#include "common/check.h"

namespace davinci {

TensorF16 nchw_to_nc1hwc0(const TensorF32& nchw) {
  DV_CHECK_EQ(nchw.shape().rank(), 4) << "expected NCHW";
  const std::int64_t n = nchw.shape()[0];
  const std::int64_t c = nchw.shape()[1];
  const std::int64_t h = nchw.shape()[2];
  const std::int64_t w = nchw.shape()[3];
  const std::int64_t c1 = c1_of(c);

  TensorF16 out(Shape{n, c1, h, w, kC0});
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < c; ++ic) {
      const std::int64_t q = ic / kC0;
      const std::int64_t r = ic % kC0;
      for (std::int64_t ih = 0; ih < h; ++ih) {
        for (std::int64_t iw = 0; iw < w; ++iw) {
          out.at(in, q, ih, iw, r) = Float16(nchw.at(in, ic, ih, iw));
        }
      }
    }
  }
  return out;
}

TensorF32 nc1hwc0_to_nchw(const TensorF16& fractal, std::int64_t channels) {
  DV_CHECK_EQ(fractal.shape().rank(), 5) << "expected NC1HWC0";
  const std::int64_t n = fractal.shape()[0];
  const std::int64_t c1 = fractal.shape()[1];
  const std::int64_t h = fractal.shape()[2];
  const std::int64_t w = fractal.shape()[3];
  DV_CHECK_EQ(fractal.shape()[4], kC0);
  DV_CHECK_LE(channels, c1 * kC0);
  DV_CHECK_GT(channels, (c1 - 1) * kC0);

  TensorF32 out(Shape{n, channels, h, w});
  for (std::int64_t in = 0; in < n; ++in) {
    for (std::int64_t ic = 0; ic < channels; ++ic) {
      const std::int64_t q = ic / kC0;
      const std::int64_t r = ic % kC0;
      for (std::int64_t ih = 0; ih < h; ++ih) {
        for (std::int64_t iw = 0; iw < w; ++iw) {
          out.at(in, ic, ih, iw) = fractal.at(in, q, ih, iw, r).to_float();
        }
      }
    }
  }
  return out;
}

TensorF16 make_nc1hwc0(std::int64_t n, std::int64_t channels, std::int64_t h,
                       std::int64_t w) {
  return TensorF16(Shape{n, c1_of(channels), h, w, kC0});
}

}  // namespace davinci
