// Dense row-major host tensor. Used both as "global memory" contents for
// the simulator (DDR/HBM in Figure 4 of the paper) and as the container
// for reference-implementation results.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/float16.h"
#include "common/prng.h"
#include "tensor/shape.h"

namespace davinci {

template <typename T>
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.num_elements()), T{}) {}
  Tensor(Shape shape, T fill_value)
      : shape_(shape),
        data_(static_cast<std::size_t>(shape.num_elements()), fill_value) {}

  const Shape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.num_elements(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& flat(std::int64_t i) {
    DV_CHECK(i >= 0 && i < size()) << "flat index " << i;
    return data_[static_cast<std::size_t>(i)];
  }
  const T& flat(std::int64_t i) const {
    DV_CHECK(i >= 0 && i < size()) << "flat index " << i;
    return data_[static_cast<std::size_t>(i)];
  }

  template <typename... Ix>
  std::int64_t offset(Ix... indices) const {
    constexpr int n = sizeof...(Ix);
    DV_CHECK_EQ(n, shape_.rank()) << "index rank mismatch";
    const std::int64_t ix[n] = {static_cast<std::int64_t>(indices)...};
    std::int64_t off = 0;
    for (int i = 0; i < n; ++i) {
      DV_CHECK(ix[i] >= 0 && ix[i] < shape_.dim(i))
          << "index " << ix[i] << " out of bounds for dim " << i << " of "
          << shape_.to_string();
      off = off * shape_.dim(i) + ix[i];
    }
    return off;
  }

  template <typename... Ix>
  T& at(Ix... indices) {
    return data_[static_cast<std::size_t>(offset(indices...))];
  }
  template <typename... Ix>
  const T& at(Ix... indices) const {
    return data_[static_cast<std::size_t>(offset(indices...))];
  }

  void fill(T value) {
    for (auto& v : data_) v = value;
  }

  void fill_random(std::uint64_t seed, float lo = -2.0f, float hi = 2.0f) {
    Xoshiro256 rng(seed);
    for (auto& v : data_) v = T(rng.next_float(lo, hi));
  }

  // Fills with small integers so fp16 arithmetic is exact; convenient for
  // bit-exact comparisons between kernel and reference outputs.
  void fill_random_ints(std::uint64_t seed, int lo = -8, int hi = 8) {
    Xoshiro256 rng(seed);
    for (auto& v : data_) {
      v = T(static_cast<float>(
          lo + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                   hi - lo + 1)))));
    }
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using TensorF32 = Tensor<float>;
using TensorF16 = Tensor<Float16>;

}  // namespace davinci
