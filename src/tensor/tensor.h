// Dense row-major host tensor. Used both as "global memory" contents for
// the simulator (DDR/HBM in Figure 4 of the paper) and as the container
// for reference-implementation results.
//
// Storage comes from the process-wide TensorArena (tensor/arena.h): the
// destructor parks the buffer for reuse instead of freeing it, so the
// serving hot path recycles buffers across requests of the same geometry.
// Value semantics are unchanged -- copies are deep, moves steal the
// buffer. Construction offers three modes:
//
//   Tensor(shape)                 zero-filled (as always)
//   Tensor(shape, fill_value)     filled with fill_value
//   Tensor(shape, kUninitialized) storage only -- for outputs every
//                                 element of which is overwritten before
//                                 any read (kernel output tensors, the
//                                 batcher's stack/slice staging buffers).
//                                 Contents start as whatever the arena
//                                 hands back; TensorArena poison mode
//                                 exists to flush out misuse.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/check.h"
#include "common/float16.h"
#include "common/prng.h"
#include "tensor/arena.h"
#include "tensor/shape.h"

namespace davinci {

// Tag selecting the uninitialized construction mode.
struct Uninitialized {};
inline constexpr Uninitialized kUninitialized{};

template <typename T>
class Tensor {
  // The arena deals in raw bytes (memcpy copies, no per-element
  // destruction), which is only sound for trivially copyable elements
  // whose value-initialized form is all-zero bits (true for Float16,
  // whose default bit pattern is 0x0000 == 0.0f, and for the arithmetic
  // types).
  static_assert(std::is_trivially_copyable_v<T>,
                "Tensor elements must be trivially copyable");

 public:
  Tensor() = default;
  explicit Tensor(Shape shape) : shape_(shape) {
    allocate();
    std::memset(data_, 0, static_cast<std::size_t>(elems_) * sizeof(T));
  }
  Tensor(Shape shape, Uninitialized) : shape_(shape) { allocate(); }
  Tensor(Shape shape, T fill_value) : shape_(shape) {
    allocate();
    fill(fill_value);
  }

  Tensor(const Tensor& o) : shape_(o.shape_) {
    if (o.data_ != nullptr) {
      elems_ = o.elems_;
      allocate_raw();
      std::memcpy(data_, o.data_,
                  static_cast<std::size_t>(elems_) * sizeof(T));
    }
  }
  Tensor(Tensor&& o) noexcept
      : shape_(o.shape_), data_(o.data_), elems_(o.elems_),
        capacity_(o.capacity_) {
    o.shape_ = Shape{};
    o.data_ = nullptr;
    o.elems_ = 0;
    o.capacity_ = 0;
  }
  Tensor& operator=(const Tensor& o) {
    if (this != &o) {
      Tensor tmp(o);
      swap(tmp);
    }
    return *this;
  }
  Tensor& operator=(Tensor&& o) noexcept {
    if (this != &o) {
      release();
      shape_ = o.shape_;
      data_ = o.data_;
      elems_ = o.elems_;
      capacity_ = o.capacity_;
      o.shape_ = Shape{};
      o.data_ = nullptr;
      o.elems_ = 0;
      o.capacity_ = 0;
    }
    return *this;
  }
  ~Tensor() { release(); }

  void swap(Tensor& o) noexcept {
    std::swap(shape_, o.shape_);
    std::swap(data_, o.data_);
    std::swap(elems_, o.elems_);
    std::swap(capacity_, o.capacity_);
  }

  const Shape& shape() const { return shape_; }
  std::int64_t size() const { return shape_.num_elements(); }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& flat(std::int64_t i) {
    DV_CHECK(i >= 0 && i < size()) << "flat index " << i;
    return data_[i];
  }
  const T& flat(std::int64_t i) const {
    DV_CHECK(i >= 0 && i < size()) << "flat index " << i;
    return data_[i];
  }

  template <typename... Ix>
  std::int64_t offset(Ix... indices) const {
    constexpr int n = sizeof...(Ix);
    DV_CHECK_EQ(n, shape_.rank()) << "index rank mismatch";
    const std::int64_t ix[n] = {static_cast<std::int64_t>(indices)...};
    std::int64_t off = 0;
    for (int i = 0; i < n; ++i) {
      DV_CHECK(ix[i] >= 0 && ix[i] < shape_.dim(i))
          << "index " << ix[i] << " out of bounds for dim " << i << " of "
          << shape_.to_string();
      off = off * shape_.dim(i) + ix[i];
    }
    return off;
  }

  template <typename... Ix>
  T& at(Ix... indices) {
    return data_[offset(indices...)];
  }
  template <typename... Ix>
  const T& at(Ix... indices) const {
    return data_[offset(indices...)];
  }

  void fill(T value) {
    for (std::int64_t i = 0; i < elems_; ++i) data_[i] = value;
  }

  void fill_random(std::uint64_t seed, float lo = -2.0f, float hi = 2.0f) {
    Xoshiro256 rng(seed);
    for (std::int64_t i = 0; i < elems_; ++i) {
      data_[i] = T(rng.next_float(lo, hi));
    }
  }

  // Fills with small integers so fp16 arithmetic is exact; convenient for
  // bit-exact comparisons between kernel and reference outputs.
  void fill_random_ints(std::uint64_t seed, int lo = -8, int hi = 8) {
    DV_CHECK_GE(hi, lo) << "fill_random_ints: empty range";
    Xoshiro256 rng(seed);
    // Widen before the arithmetic: hi - lo + 1 in int overflows for
    // extreme bounds (e.g. lo = INT_MIN, hi = INT_MAX).
    const std::uint64_t span = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(hi) - static_cast<std::int64_t>(lo) + 1);
    if (span <= 64) {
      // Small ranges (every in-tree caller): precompute the converted
      // values so the element loop is a table pick per draw instead of an
      // int -> float -> T conversion. Same RNG stream, same values.
      T table[64];
      for (std::uint64_t v = 0; v < span; ++v) {
        table[v] = T(static_cast<float>(static_cast<std::int64_t>(lo) +
                                        static_cast<std::int64_t>(v)));
      }
      for (std::int64_t i = 0; i < elems_; ++i) {
        data_[i] = table[rng.next_below(span)];
      }
      return;
    }
    for (std::int64_t i = 0; i < elems_; ++i) {
      data_[i] = T(static_cast<float>(
          static_cast<std::int64_t>(lo) +
          static_cast<std::int64_t>(rng.next_below(span))));
    }
  }

 private:
  void allocate() {
    elems_ = shape_.num_elements();
    DV_CHECK_GE(elems_, 0) << "negative element count";
    allocate_raw();
  }
  void allocate_raw() {
    data_ = static_cast<T*>(TensorArena::global().acquire(
        static_cast<std::size_t>(elems_) * sizeof(T), &capacity_));
  }
  void release() noexcept {
    if (data_ != nullptr) {
      TensorArena::global().release(data_, capacity_);
      data_ = nullptr;
    }
  }

  Shape shape_;
  T* data_ = nullptr;
  // Element count behind data_ (0 for a default-constructed tensor, whose
  // rank-0 shape reports num_elements() == 1 -- the empty product -- but
  // owns no storage).
  std::int64_t elems_ = 0;
  std::size_t capacity_ = 0;
};

using TensorF32 = Tensor<float>;
using TensorF16 = Tensor<Float16>;

}  // namespace davinci

