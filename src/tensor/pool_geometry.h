// Window geometry shared by pooling, Im2col, Col2im and convolution.
//
// Equation (1) of the paper:
//   Oh = floor((Ih + Pt + Pb - Kh) / Sh) + 1
//   Ow = floor((Iw + Pl + Pr - Kw) / Sw) + 1
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace davinci {

// Kernel/stride/padding parameters of a 2-D sliding window.
struct Window2d {
  std::int64_t kh = 1, kw = 1;  // kernel height/width (Kh, Kw)
  std::int64_t sh = 1, sw = 1;  // stride height/width (Sh, Sw)
  std::int64_t pt = 0, pb = 0;  // top/bottom zero padding (Pt, Pb)
  std::int64_t pl = 0, pr = 0;  // left/right zero padding (Pl, Pr)

  static Window2d pool(std::int64_t k, std::int64_t s) {
    return Window2d{k, k, s, s, 0, 0, 0, 0};
  }

  void validate() const {
    DV_CHECK_GE(kh, 1);
    DV_CHECK_GE(kw, 1);
    DV_CHECK_GE(sh, 1);
    DV_CHECK_GE(sw, 1);
    DV_CHECK_GE(pt, 0);
    DV_CHECK_GE(pb, 0);
    DV_CHECK_GE(pl, 0);
    DV_CHECK_GE(pr, 0);
  }

  std::int64_t out_h(std::int64_t ih) const {
    DV_CHECK_GE(ih + pt + pb, kh) << "input smaller than kernel";
    return (ih + pt + pb - kh) / sh + 1;
  }
  std::int64_t out_w(std::int64_t iw) const {
    DV_CHECK_GE(iw + pl + pr, kw) << "input smaller than kernel";
    return (iw + pl + pr - kw) / sw + 1;
  }

  bool has_padding() const { return pt || pb || pl || pr; }

  friend bool operator==(const Window2d&, const Window2d&) = default;

  // Patches overlap (duplicated elements in Im2col) iff stride < kernel.
  bool overlapping() const { return sh < kh || sw < kw; }

  std::string to_string() const {
    return "K(" + std::to_string(kh) + "," + std::to_string(kw) + ") S(" +
           std::to_string(sh) + "," + std::to_string(sw) + ") P(" +
           std::to_string(pt) + "," + std::to_string(pb) + "," +
           std::to_string(pl) + "," + std::to_string(pr) + ")";
  }
};

}  // namespace davinci
