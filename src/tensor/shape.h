// Fixed-capacity tensor shape. The deepest layout used in the paper is the
// Im2col output tensor (N, C1, Kh, Kw, Oh, Ow, C0) with 7 dimensions, so a
// small inline array avoids heap traffic in hot indexing paths.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>

#include "common/check.h"

namespace davinci {

class Shape {
 public:
  static constexpr int kMaxRank = 8;

  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) {
    DV_CHECK_LE(dims.size(), static_cast<std::size_t>(kMaxRank));
    for (std::int64_t d : dims) {
      DV_CHECK_GE(d, 0) << "negative dimension";
      dims_[rank_++] = d;
    }
  }

  int rank() const { return rank_; }

  std::int64_t dim(int i) const {
    DV_CHECK(i >= 0 && i < rank_) << "dim index " << i << " rank " << rank_;
    return dims_[i];
  }
  std::int64_t operator[](int i) const { return dim(i); }

  void set_dim(int i, std::int64_t v) {
    DV_CHECK(i >= 0 && i < rank_);
    DV_CHECK_GE(v, 0);
    dims_[i] = v;
  }

  std::int64_t num_elements() const {
    std::int64_t n = 1;
    for (int i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  // Row-major stride of dimension `i` in elements.
  std::int64_t stride(int i) const {
    DV_CHECK(i >= 0 && i < rank_);
    std::int64_t s = 1;
    for (int j = i + 1; j < rank_; ++j) s *= dims_[j];
    return s;
  }

  friend bool operator==(const Shape& a, const Shape& b) {
    if (a.rank_ != b.rank_) return false;
    for (int i = 0; i < a.rank_; ++i) {
      if (a.dims_[i] != b.dims_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Shape& a, const Shape& b) { return !(a == b); }

  std::string to_string() const {
    std::string s = "(";
    for (int i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += ")";
    return s;
  }

 private:
  std::array<std::int64_t, kMaxRank> dims_{};
  int rank_ = 0;
};

}  // namespace davinci
