#include "ref/conv_ref.h"

#include "common/check.h"
#include "ref/im2col_ref.h"

namespace davinci::ref {

TensorF32 conv2d_nchw(const TensorF32& in, const TensorF32& kernels,
                      const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 4);
  DV_CHECK_EQ(in.shape()[0], 1);
  DV_CHECK_EQ(kernels.shape().rank(), 4);
  const std::int64_t ch = in.shape()[1];
  DV_CHECK_EQ(kernels.shape()[1], ch);
  DV_CHECK_EQ(kernels.shape()[2], w.kh);
  DV_CHECK_EQ(kernels.shape()[3], w.kw);
  const std::int64_t cout = kernels.shape()[0];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  TensorF32 out(Shape{std::int64_t{1}, cout, oh, ow});
  for (std::int64_t f = 0; f < cout; ++f) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        float acc = 0.0f;
        for (std::int64_t c = 0; c < ch; ++c) {
          for (std::int64_t kh = 0; kh < w.kh; ++kh) {
            for (std::int64_t kw = 0; kw < w.kw; ++kw) {
              const std::int64_t y = i * w.sh + kh - w.pt;
              const std::int64_t x = j * w.sw + kw - w.pl;
              if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
              acc += in.at(std::int64_t{0}, c, y, x) * kernels.at(f, c, kh, kw);
            }
          }
        }
        out.at(std::int64_t{0}, f, i, j) = acc;
      }
    }
  }
  return out;
}

TensorF32 conv2d_im2col_matmul(const TensorF32& in, const TensorF32& kernels,
                               const Window2d& w) {
  const std::int64_t cout = kernels.shape()[0];
  const std::int64_t ch = in.shape()[1];
  const std::int64_t oh = w.out_h(in.shape()[2]);
  const std::int64_t ow = w.out_w(in.shape()[3]);
  const std::int64_t k = ch * w.kh * w.kw;

  const TensorF32 cols = im2col_matrix(in, w);  // (Oh*Ow, K)

  // OutKer: (K, Cout), each column a linearized kernel (Figure 1).
  TensorF32 ker(Shape{k, cout});
  for (std::int64_t f = 0; f < cout; ++f) {
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw, ++row) {
          ker.at(row, f) = kernels.at(f, c, kh, kw);
        }
      }
    }
  }

  TensorF32 out(Shape{std::int64_t{1}, cout, oh, ow});
  for (std::int64_t p = 0; p < oh * ow; ++p) {
    for (std::int64_t f = 0; f < cout; ++f) {
      float acc = 0.0f;
      for (std::int64_t x = 0; x < k; ++x) {
        acc += cols.at(p, x) * ker.at(x, f);
      }
      out.at(std::int64_t{0}, f, p / ow, p % ow) = acc;
    }
  }
  return out;
}

}  // namespace davinci::ref

namespace davinci::ref {

TensorF32 conv2d_backward_input_nchw(const TensorF32& grad,
                                     const TensorF32& kernels,
                                     const Window2d& w, std::int64_t ih,
                                     std::int64_t iw) {
  DV_CHECK_EQ(grad.shape().rank(), 4);
  DV_CHECK_EQ(grad.shape()[0], 1);
  DV_CHECK_EQ(kernels.shape().rank(), 4);
  const std::int64_t cout = kernels.shape()[0];
  const std::int64_t c = kernels.shape()[1];
  DV_CHECK_EQ(grad.shape()[1], cout);
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  DV_CHECK_EQ(grad.shape()[2], oh);
  DV_CHECK_EQ(grad.shape()[3], ow);

  TensorF32 out(Shape{std::int64_t{1}, c, ih, iw});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        for (std::int64_t kh = 0; kh < w.kh; ++kh) {
          for (std::int64_t kw = 0; kw < w.kw; ++kw) {
            const std::int64_t y = i * w.sh + kh - w.pt;
            const std::int64_t x = j * w.sw + kw - w.pl;
            if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
            float acc = 0.0f;
            for (std::int64_t f = 0; f < cout; ++f) {
              acc += grad.at(std::int64_t{0}, f, i, j) *
                     kernels.at(f, ch, kh, kw);
            }
            out.at(std::int64_t{0}, ch, y, x) += acc;
          }
        }
      }
    }
  }
  return out;
}

}  // namespace davinci::ref
