// Reference 2-D convolution (Section II-A): direct NCHW fp32 version and
// the im2col-as-matrix-multiplication equivalence the Cube-Unit kernel is
// validated against.
#pragma once

#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::ref {

// Direct convolution. in: (1, C, Ih, Iw); kernels: (Cout, C, Kh, Kw);
// out: (1, Cout, Oh, Ow).
TensorF32 conv2d_nchw(const TensorF32& in, const TensorF32& kernels,
                      const Window2d& w);

// Convolution via im2col + matrix multiplication: computes
// OutIn (Oh*Ow, C*Kh*Kw) x OutKer (C*Kh*Kw, Cout) and reshapes, proving
// the Figure 1 equivalence in tests.
TensorF32 conv2d_im2col_matmul(const TensorF32& in, const TensorF32& kernels,
                               const Window2d& w);

// Convolution backward w.r.t. the input: dX = col2im(W^T x dOut)
// (Section II-B). grad: (1, Cout, Oh, Ow); kernels: (Cout, C, Kh, Kw);
// result (1, C, Ih, Iw). Textbook fp32 semantics.
TensorF32 conv2d_backward_input_nchw(const TensorF32& grad,
                                     const TensorF32& kernels,
                                     const Window2d& w, std::int64_t ih,
                                     std::int64_t iw);

}  // namespace davinci::ref
