// Reference Im2col / Col2im transformations (Section II-A/II-B and
// Figures 1-2 of the paper), independent of the simulator, used to
// validate the SCU's instruction semantics.
#pragma once

#include <cstdint>

#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::ref {

// NC1HWC0 -> im2col fractal layout (N, C1, Kh, Kw, PP, C0), the transposed
// repeat-mode-1 output shape used by the pooling kernels. PP is the patch
// count rounded up to whole 16-row fractals; tail rows and zero-padding
// positions are 0.
TensorF16 im2col(const TensorF16& in, const Window2d& w);

// Inverse-with-accumulation: (N, C1, Kh, Kw, PP, C0) -> (N, C1, Ih, Iw, C0),
// summing overlapping patches in row-major (kh, kw) order with rounded
// fp16 adds (the Col2Im instruction's order). Contributions falling into
// the virtual padding border are dropped.
TensorF16 col2im(const TensorF16& cols, const Window2d& w, std::int64_t ih,
                 std::int64_t iw);

// Classic matrix form for convolution (Figure 1): NCHW fp32 input ->
// OutIn matrix (Oh * Ow, C * Kh * Kw), one image (N must be 1).
TensorF32 im2col_matrix(const TensorF32& in, const Window2d& w);

}  // namespace davinci::ref
