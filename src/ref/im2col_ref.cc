#include "ref/im2col_ref.h"

#include "common/align.h"
#include "common/check.h"

namespace davinci::ref {

TensorF16 im2col(const TensorF16& in, const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 5) << "expected NC1HWC0";
  DV_CHECK_EQ(in.shape()[4], kC0);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t pp = round_up(oh * ow, kFractalRows);

  TensorF16 out(Shape{n, c1, w.kh, w.kw, pp, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          for (std::int64_t p = 0; p < oh * ow; ++p) {
            const std::int64_t i = p / ow, j = p % ow;
            const std::int64_t y = i * w.sh + kh - w.pt;
            const std::int64_t x = j * w.sw + kw - w.pl;
            if (y < 0 || y >= ih || x < 0 || x >= iw) continue;  // stays 0
            for (std::int64_t c = 0; c < kC0; ++c) {
              out.at(b, q, kh, kw, p, c) = in.at(b, q, y, x, c);
            }
          }
        }
      }
    }
  }
  return out;
}

TensorF16 col2im(const TensorF16& cols, const Window2d& w, std::int64_t ih,
                 std::int64_t iw) {
  DV_CHECK_EQ(cols.shape().rank(), 6) << "expected (N,C1,Kh,Kw,PP,C0)";
  const std::int64_t n = cols.shape()[0], c1 = cols.shape()[1];
  DV_CHECK_EQ(cols.shape()[2], w.kh);
  DV_CHECK_EQ(cols.shape()[3], w.kw);
  DV_CHECK_EQ(cols.shape()[5], kC0);
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  DV_CHECK_EQ(cols.shape()[4], round_up(oh * ow, kFractalRows));

  TensorF16 out(Shape{n, c1, ih, iw, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          for (std::int64_t p = 0; p < oh * ow; ++p) {
            const std::int64_t i = p / ow, j = p % ow;
            const std::int64_t y = i * w.sh + kh - w.pt;
            const std::int64_t x = j * w.sw + kw - w.pl;
            if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
            for (std::int64_t c = 0; c < kC0; ++c) {
              out.at(b, q, y, x, c) =
                  out.at(b, q, y, x, c) + cols.at(b, q, kh, kw, p, c);
            }
          }
        }
      }
    }
  }
  return out;
}

TensorF32 im2col_matrix(const TensorF32& in, const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 4) << "expected NCHW";
  DV_CHECK_EQ(in.shape()[0], 1) << "single image";
  const std::int64_t ch = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  TensorF32 out(Shape{oh * ow, ch * w.kh * w.kw});
  for (std::int64_t p = 0; p < oh * ow; ++p) {
    const std::int64_t i = p / ow, j = p % ow;
    std::int64_t col = 0;
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw, ++col) {
          const std::int64_t y = i * w.sh + kh - w.pt;
          const std::int64_t x = j * w.sw + kw - w.pl;
          out.at(p, col) = (y < 0 || y >= ih || x < 0 || x >= iw)
                               ? 0.0f
                               : in.at(std::int64_t{0}, c, y, x);
        }
      }
    }
  }
  return out;
}

}  // namespace davinci::ref
