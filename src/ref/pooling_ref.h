// Reference (golden) implementations of the pooling operators, independent
// of the simulator. Two families:
//
//  * NC1HWC0 / fp16 versions that follow the exact operation order of the
//    DaVinci kernels (reduction over (kh, kw) in row-major order, one
//    rounded fp16 operation at a time), so kernel outputs can be compared
//    bit-exactly;
//  * plain NCHW / fp32 versions with textbook semantics, used to
//    cross-validate the fp16 references within fp16 tolerance.
//
// Padding semantics follow the hardware: the Im2Col instruction loads
// *zeros* for out-of-image positions (Section III-C), so padded positions
// participate in max() as 0 and AvgPool divides by the full window size
// (count-include-pad). The Argmax mask marks every position equal to the
// patch maximum ("comparing each patch of the input with its maximum
// value", Section V-A) -- ties mark multiple positions.
#pragma once

#include <cstdint>

#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::ref {

// ---- NC1HWC0 fp16 domain (exact kernel semantics) ----

// MaxPool forward: (N, C1, Ih, Iw, C0) -> (N, C1, Oh, Ow, C0).
TensorF16 maxpool_fwd(const TensorF16& in, const Window2d& w);

// Argmax mask in the im2col shape (N, C1, Kh, Kw, PP, C0) where PP is the
// patch count padded to whole 16-row fractals; tail patch rows are zero.
// mask = 1 where the (zero-padded) patch element equals the patch max.
TensorF16 maxpool_argmax_mask(const TensorF16& in, const Window2d& w);

// MaxPool backward: mask (N, C1, Kh, Kw, PP, C0) x gradients
// (N, C1, Oh, Ow, C0) -> input gradient (N, C1, Ih, Iw, C0).
// Accumulation order matches the kernels: multiply whole (kh, kw) planes,
// then merge planes in row-major (kh, kw) order with one rounded fp16 add
// per contribution.
TensorF16 maxpool_bwd(const TensorF16& mask, const TensorF16& grad,
                      const Window2d& w, std::int64_t ih, std::int64_t iw);

// AvgPool forward: sum over (kh, kw) in row-major order (rounded fp16
// adds), then multiply by fp16(1 / (Kh * Kw)).
TensorF16 avgpool_fwd(const TensorF16& in, const Window2d& w);

// AvgPool backward: scale gradients by fp16(1 / (Kh * Kw)), then merge a
// copy of the scaled plane per (kh, kw) in row-major order.
TensorF16 avgpool_bwd(const TensorF16& grad, const Window2d& w,
                      std::int64_t ih, std::int64_t iw);

// MinPool forward: dual of maxpool_fwd (zero padding participates as 0).
TensorF16 minpool_fwd(const TensorF16& in, const Window2d& w);

// Global average pooling: (N, C1, H, W, C0) -> (N, C1, 1, 1, C0).
// Mirrors the kernel's exact reduction order (row-tiled 128-lane running
// accumulation, then a lane-halving tree, then one multiply by 1/(H*W)),
// so comparisons are bit-exact despite fp16 rounding. `rows_per_tile`
// must match the kernel's tiling (pass 0 to mean "whole image").
TensorF16 global_avgpool(const TensorF16& in, std::int64_t rows_per_tile = 0);

// Textbook fp32 mean over H, W for cross-validation within tolerance.
TensorF32 global_avgpool_f32(const TensorF16& in);

// ---- NCHW fp32 domain (textbook semantics for cross-validation) ----

TensorF32 maxpool_fwd_nchw(const TensorF32& in, const Window2d& w);
TensorF32 avgpool_fwd_nchw(const TensorF32& in, const Window2d& w);
// Gradient w.r.t. the input; ties split the gradient to every maximal
// position (matching the eq-mask semantics above).
TensorF32 maxpool_bwd_nchw(const TensorF32& in, const TensorF32& grad,
                           const Window2d& w);
TensorF32 avgpool_bwd_nchw(const TensorF32& grad, const Window2d& w,
                           std::int64_t ih, std::int64_t iw);

}  // namespace davinci::ref
