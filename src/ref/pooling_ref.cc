#include "ref/pooling_ref.h"

#include <limits>

#include "common/align.h"
#include "common/check.h"

namespace davinci::ref {

namespace {

void check_nc1hwc0(const TensorF16& t) {
  DV_CHECK_EQ(t.shape().rank(), 5) << "expected NC1HWC0";
  DV_CHECK_EQ(t.shape()[4], kC0);
}

// Value of the zero-padded input at (y, x); out-of-image reads are 0,
// matching what the Im2Col instruction loads.
Float16 padded_at(const TensorF16& in, std::int64_t n, std::int64_t c1,
                  std::int64_t y, std::int64_t x, std::int64_t c) {
  if (y < 0 || y >= in.shape()[2] || x < 0 || x >= in.shape()[3]) {
    return Float16();
  }
  return in.at(n, c1, y, x, c);
}

}  // namespace

TensorF16 maxpool_fwd(const TensorF16& in, const Window2d& w) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  TensorF16 out(Shape{n, c1, oh, ow, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          for (std::int64_t c = 0; c < kC0; ++c) {
            Float16 m = Float16::lowest();
            for (std::int64_t kh = 0; kh < w.kh; ++kh) {
              for (std::int64_t kw = 0; kw < w.kw; ++kw) {
                const Float16 v = padded_at(in, b, q, i * w.sh + kh - w.pt,
                                            j * w.sw + kw - w.pl, c);
                m = fmax16(m, v);
              }
            }
            out.at(b, q, i, j, c) = m;
          }
        }
      }
    }
  }
  return out;
}

TensorF16 maxpool_argmax_mask(const TensorF16& in, const Window2d& w) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t pp = round_up(oh * ow, kFractalRows);

  const TensorF16 maxed = maxpool_fwd(in, w);
  TensorF16 mask(Shape{n, c1, w.kh, w.kw, pp, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          for (std::int64_t p = 0; p < oh * ow; ++p) {
            const std::int64_t i = p / ow, j = p % ow;
            for (std::int64_t c = 0; c < kC0; ++c) {
              const Float16 v = padded_at(in, b, q, i * w.sh + kh - w.pt,
                                          j * w.sw + kw - w.pl, c);
              mask.at(b, q, kh, kw, p, c) =
                  (v == maxed.at(b, q, i, j, c)) ? Float16(1.0f) : Float16();
            }
          }
          // Tail patch rows (p >= oh * ow) stay zero.
        }
      }
    }
  }
  return mask;
}

TensorF16 maxpool_bwd(const TensorF16& mask, const TensorF16& grad,
                      const Window2d& w, std::int64_t ih, std::int64_t iw) {
  DV_CHECK_EQ(mask.shape().rank(), 6) << "mask is (N,C1,Kh,Kw,PP,C0)";
  DV_CHECK_EQ(grad.shape().rank(), 5) << "grad is (N,C1,Oh,Ow,C0)";
  const std::int64_t n = mask.shape()[0], c1 = mask.shape()[1];
  DV_CHECK_EQ(mask.shape()[2], w.kh);
  DV_CHECK_EQ(mask.shape()[3], w.kw);
  const std::int64_t oh = grad.shape()[2], ow = grad.shape()[3];
  DV_CHECK_EQ(oh, w.out_h(ih));
  DV_CHECK_EQ(ow, w.out_w(iw));

  TensorF16 out(Shape{n, c1, ih, iw, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      // Merge planes in row-major (kh, kw) order, one rounded add each --
      // the same order both the vadd and the Col2Im kernels use.
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          for (std::int64_t p = 0; p < oh * ow; ++p) {
            const std::int64_t i = p / ow, j = p % ow;
            const std::int64_t y = i * w.sh + kh - w.pt;
            const std::int64_t x = j * w.sw + kw - w.pl;
            if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
            for (std::int64_t c = 0; c < kC0; ++c) {
              const Float16 mg =
                  mask.at(b, q, kh, kw, p, c) * grad.at(b, q, i, j, c);
              out.at(b, q, y, x, c) = out.at(b, q, y, x, c) + mg;
            }
          }
        }
      }
    }
  }
  return out;
}

TensorF16 avgpool_fwd(const TensorF16& in, const Window2d& w) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const Float16 inv(1.0f / static_cast<float>(w.kh * w.kw));

  TensorF16 out(Shape{n, c1, oh, ow, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          for (std::int64_t c = 0; c < kC0; ++c) {
            Float16 s;
            for (std::int64_t kh = 0; kh < w.kh; ++kh) {
              for (std::int64_t kw = 0; kw < w.kw; ++kw) {
                s = s + padded_at(in, b, q, i * w.sh + kh - w.pt,
                                  j * w.sw + kw - w.pl, c);
              }
            }
            out.at(b, q, i, j, c) = s * inv;
          }
        }
      }
    }
  }
  return out;
}

TensorF16 avgpool_bwd(const TensorF16& grad, const Window2d& w,
                      std::int64_t ih, std::int64_t iw) {
  DV_CHECK_EQ(grad.shape().rank(), 5);
  const std::int64_t n = grad.shape()[0], c1 = grad.shape()[1];
  const std::int64_t oh = grad.shape()[2], ow = grad.shape()[3];
  DV_CHECK_EQ(oh, w.out_h(ih));
  DV_CHECK_EQ(ow, w.out_w(iw));
  const Float16 inv(1.0f / static_cast<float>(w.kh * w.kw));

  TensorF16 out(Shape{n, c1, ih, iw, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          for (std::int64_t p = 0; p < oh * ow; ++p) {
            const std::int64_t i = p / ow, j = p % ow;
            const std::int64_t y = i * w.sh + kh - w.pt;
            const std::int64_t x = j * w.sw + kw - w.pl;
            if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
            for (std::int64_t c = 0; c < kC0; ++c) {
              const Float16 g = grad.at(b, q, i, j, c) * inv;
              out.at(b, q, y, x, c) = out.at(b, q, y, x, c) + g;
            }
          }
        }
      }
    }
  }
  return out;
}

TensorF16 minpool_fwd(const TensorF16& in, const Window2d& w) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  TensorF16 out(Shape{n, c1, oh, ow, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          for (std::int64_t c = 0; c < kC0; ++c) {
            Float16 m = Float16::max_finite();
            for (std::int64_t kh = 0; kh < w.kh; ++kh) {
              for (std::int64_t kw = 0; kw < w.kw; ++kw) {
                const Float16 v = padded_at(in, b, q, i * w.sh + kh - w.pt,
                                            j * w.sw + kw - w.pl, c);
                m = fmin16(m, v);
              }
            }
            out.at(b, q, i, j, c) = m;
          }
        }
      }
    }
  }
  return out;
}

TensorF16 global_avgpool(const TensorF16& in, std::int64_t rows_per_tile) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t lanes = 128;
  const std::int64_t row_elems = iw * kC0;
  if (rows_per_tile <= 0 || rows_per_tile > ih) rows_per_tile = ih;
  const Float16 inv(1.0f / static_cast<float>(ih * iw));

  TensorF16 out(Shape{n, c1, std::int64_t{1}, std::int64_t{1}, kC0});
  for (std::int64_t b = 0; b < n * c1; ++b) {
    Float16 acc[128] = {};
    // Row-tiled 128-lane running accumulation, matching the kernel.
    for (std::int64_t r0 = 0; r0 < ih; r0 += rows_per_tile) {
      const std::int64_t r1 =
          r0 + rows_per_tile < ih ? r0 + rows_per_tile : ih;
      const std::int64_t n_t = (r1 - r0) * row_elems;
      const std::int64_t base = (b * ih + r0) * row_elems;
      for (std::int64_t i = 0; i < n_t; ++i) {
        acc[i % lanes] = acc[i % lanes] + in.flat(base + i);
      }
    }
    // Lane-halving tree 128 -> 16.
    for (std::int64_t width = lanes / 2; width >= kC0; width /= 2) {
      for (std::int64_t j = 0; j < width; ++j) {
        acc[j] = acc[j] + acc[j + width];
      }
    }
    for (std::int64_t c = 0; c < kC0; ++c) {
      out.flat(b * kC0 + c) = acc[c] * inv;
    }
  }
  return out;
}

TensorF32 global_avgpool_f32(const TensorF16& in) {
  check_nc1hwc0(in);
  const std::int64_t n = in.shape()[0], c1 = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  TensorF32 out(Shape{n, c1, std::int64_t{1}, std::int64_t{1}, kC0});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        double s = 0;
        for (std::int64_t y = 0; y < ih; ++y) {
          for (std::int64_t x = 0; x < iw; ++x) {
            s += in.at(b, q, y, x, c).to_float();
          }
        }
        out.at(b, q, std::int64_t{0}, std::int64_t{0}, c) =
            static_cast<float>(s / static_cast<double>(ih * iw));
      }
    }
  }
  return out;
}

// ---- fp32 NCHW cross-validation versions ----

TensorF32 maxpool_fwd_nchw(const TensorF32& in, const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 4);
  const std::int64_t n = in.shape()[0], ch = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);

  TensorF32 out(Shape{n, ch, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          float m = -std::numeric_limits<float>::infinity();
          for (std::int64_t kh = 0; kh < w.kh; ++kh) {
            for (std::int64_t kw = 0; kw < w.kw; ++kw) {
              const std::int64_t y = i * w.sh + kh - w.pt;
              const std::int64_t x = j * w.sw + kw - w.pl;
              const float v = (y < 0 || y >= ih || x < 0 || x >= iw)
                                  ? 0.0f
                                  : in.at(b, c, y, x);
              if (v > m) m = v;
            }
          }
          out.at(b, c, i, j) = m;
        }
      }
    }
  }
  return out;
}

TensorF32 avgpool_fwd_nchw(const TensorF32& in, const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 4);
  const std::int64_t n = in.shape()[0], ch = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const float inv = 1.0f / static_cast<float>(w.kh * w.kw);

  TensorF32 out(Shape{n, ch, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          float s = 0.0f;
          for (std::int64_t kh = 0; kh < w.kh; ++kh) {
            for (std::int64_t kw = 0; kw < w.kw; ++kw) {
              const std::int64_t y = i * w.sh + kh - w.pt;
              const std::int64_t x = j * w.sw + kw - w.pl;
              if (y >= 0 && y < ih && x >= 0 && x < iw) {
                s += in.at(b, c, y, x);
              }
            }
          }
          out.at(b, c, i, j) = s * inv;
        }
      }
    }
  }
  return out;
}

TensorF32 maxpool_bwd_nchw(const TensorF32& in, const TensorF32& grad,
                           const Window2d& w) {
  DV_CHECK_EQ(in.shape().rank(), 4);
  DV_CHECK_EQ(grad.shape().rank(), 4);
  const std::int64_t n = in.shape()[0], ch = in.shape()[1];
  const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
  const std::int64_t oh = grad.shape()[2], ow = grad.shape()[3];
  DV_CHECK_EQ(oh, w.out_h(ih));
  DV_CHECK_EQ(ow, w.out_w(iw));

  const TensorF32 maxed = maxpool_fwd_nchw(in, w);
  TensorF32 out(Shape{n, ch, ih, iw});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          const float m = maxed.at(b, c, i, j);
          for (std::int64_t kh = 0; kh < w.kh; ++kh) {
            for (std::int64_t kw = 0; kw < w.kw; ++kw) {
              const std::int64_t y = i * w.sh + kh - w.pt;
              const std::int64_t x = j * w.sw + kw - w.pl;
              if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
              if (in.at(b, c, y, x) == m) {
                out.at(b, c, y, x) += grad.at(b, c, i, j);
              }
            }
          }
        }
      }
    }
  }
  return out;
}

TensorF32 avgpool_bwd_nchw(const TensorF32& grad, const Window2d& w,
                           std::int64_t ih, std::int64_t iw) {
  DV_CHECK_EQ(grad.shape().rank(), 4);
  const std::int64_t n = grad.shape()[0], ch = grad.shape()[1];
  const std::int64_t oh = grad.shape()[2], ow = grad.shape()[3];
  DV_CHECK_EQ(oh, w.out_h(ih));
  DV_CHECK_EQ(ow, w.out_w(iw));
  const float inv = 1.0f / static_cast<float>(w.kh * w.kw);

  TensorF32 out(Shape{n, ch, ih, iw});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t c = 0; c < ch; ++c) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          for (std::int64_t kh = 0; kh < w.kh; ++kh) {
            for (std::int64_t kw = 0; kw < w.kw; ++kw) {
              const std::int64_t y = i * w.sh + kh - w.pt;
              const std::int64_t x = j * w.sw + kw - w.pl;
              if (y < 0 || y >= ih || x < 0 || x >= iw) continue;
              out.at(b, c, y, x) += grad.at(b, c, i, j) * inv;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace davinci::ref
