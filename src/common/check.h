// Error handling for the simulator.
//
// The simulator is a *checking* model: programming errors in a kernel
// (scratch-pad overflow, out-of-bounds vector access, invalid instruction
// parameters) must fail loudly rather than silently corrupt results, the
// way they would brick a real CCE-C kernel. All checks throw
// davinci::Error so tests can assert on misuse.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace davinci {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << ": check failed: " << expr;
  }

  template <typename T>
  CheckMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  [[noreturn]] void raise() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace davinci

// DV_CHECK(cond) << "extra context";  -- throws davinci::Error on failure.
#define DV_CHECK(cond)                                                 \
  if (cond) {                                                          \
  } else                                                               \
    ::davinci::detail::CheckRaiser{} &                                 \
        ::davinci::detail::CheckMessage(__FILE__, __LINE__, #cond)     \
            << " "

#define DV_CHECK_EQ(a, b) \
  DV_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define DV_CHECK_NE(a, b) \
  DV_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define DV_CHECK_LT(a, b) \
  DV_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define DV_CHECK_LE(a, b) \
  DV_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define DV_CHECK_GT(a, b) \
  DV_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define DV_CHECK_GE(a, b) \
  DV_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

namespace davinci::detail {

// Consumes the streamed CheckMessage and throws. The operator& has lower
// precedence than operator<< so the message builds first.
struct CheckRaiser {
  [[noreturn]] void operator&(const CheckMessage& m) const { m.raise(); }
};

}  // namespace davinci::detail
