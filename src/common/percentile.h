// Shared percentile / distribution-summary helpers.
//
// Exactly one implementation of linear-interpolation percentiles lives
// here; the serving session's latency stats, the bench harness and the
// serving tools all summarize their sample sets through it, so every
// surface reports the same p50/p90/p99 for the same samples.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace davinci::stats {

// Linear-interpolation percentile of an ascending-sorted sample set.
// q in [0, 1]; an empty set yields 0. Takes the samples by const-ref:
// sample sets grow with every completed request, and copying them per
// query made stats() snapshots O(n) copies (see serve/session.cc
// history).
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// The standard distribution summary every reporting surface shares.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
};

// Sorts the sample set in place (callers only ever append, so reordering
// is harmless): one sort, zero copies.
inline Summary summarize(std::vector<double>& samples) {
  Summary s;
  s.count = static_cast<std::int64_t>(samples.size());
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 0.50);
  s.p90 = percentile(samples, 0.90);
  s.p99 = percentile(samples, 0.99);
  s.max = samples.back();
  return s;
}

}  // namespace davinci::stats
