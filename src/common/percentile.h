// Shared percentile / distribution-summary helpers.
//
// Exactly one implementation of linear-interpolation percentiles lives
// here; the serving session's latency stats, the bench harness and the
// serving tools all summarize their sample sets through it, so every
// surface reports the same p50/p90/p99 for the same samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace davinci::stats {

// Linear-interpolation percentile of an ascending-sorted sample set.
// q is clamped to [0, 1]; an empty set yields 0. Takes the samples by
// const-ref: sample sets grow with every completed request, and copying
// them per query made stats() snapshots O(n) copies (see
// serve/session.cc history).
inline double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// The standard distribution summary every reporting surface shares.
struct Summary {
  std::int64_t count = 0;
  double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0,
         max = 0.0;
};

// Sorts the sample set in place (callers only ever append, so reordering
// is harmless): one sort, zero copies. Non-finite samples are moved to
// the tail and excluded -- sorting NaNs with operator< violates
// std::sort's strict-weak-ordering contract (UB), and a single
// instrumentation bug upstream should not poison every percentile.
inline Summary summarize(std::vector<double>& samples) {
  Summary s;
  const auto finite_end =
      std::partition(samples.begin(), samples.end(),
                     [](double v) { return std::isfinite(v); });
  const std::size_t n =
      static_cast<std::size_t>(finite_end - samples.begin());
  s.count = static_cast<std::int64_t>(n);
  if (n == 0) return s;
  std::sort(samples.begin(), finite_end);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += samples[i];
  s.mean = sum / static_cast<double>(n);
  // percentile() reads samples.size(), so summarize the finite prefix
  // through a bounded view only when the tail holds dropped samples.
  if (finite_end == samples.end()) {
    s.p50 = percentile(samples, 0.50);
    s.p90 = percentile(samples, 0.90);
    s.p99 = percentile(samples, 0.99);
    s.p999 = percentile(samples, 0.999);
  } else {
    const std::vector<double> finite(samples.begin(), finite_end);
    s.p50 = percentile(finite, 0.50);
    s.p90 = percentile(finite, 0.90);
    s.p99 = percentile(finite, 0.99);
    s.p999 = percentile(finite, 0.999);
  }
  s.max = samples[n - 1];
  return s;
}

}  // namespace davinci::stats
