// Small integer helpers used pervasively by the layout and tiling code.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.h"

namespace davinci {

// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Rounds `a` up to the next multiple of `b`.
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

// Rounds `a` down to a multiple of `b`.
constexpr std::int64_t round_down(std::int64_t a, std::int64_t b) {
  return (a / b) * b;
}

inline bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace davinci
