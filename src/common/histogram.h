// Bounded log-linear latency histogram (HDR-histogram style).
//
// The serving session used to keep every latency sample in a
// std::vector<double>, which grows without bound over a long replay --
// a million-request soak held two 8 MB vectors that stats() re-sorted
// on every scrape. A Histogram is the constant-memory replacement: a
// fixed array of buckets whose width grows geometrically with the
// value, so the relative quantization error is bounded by construction.
//
// Bucket layout: the first octave [0, 1) is linear (kSub buckets of
// width 1/kSub); every octave [2^e, 2^(e+1)) above it is split into
// kSub log-linear subbuckets of width 2^e/kSub. With kSubBits = 5
// (32 subbuckets per octave) any recorded value v >= 1 lands in a
// bucket whose width is at most v/32, so every percentile the histogram
// reports is within 1/32 ~ 3.125% of the exact-sample percentile --
// comfortably inside the 5% tolerance the CI gate asserts
// (tests/test_histogram.cc measures it directly). kOctaves = 40 covers
// values up to 2^40 (~1.1e12); larger values clamp into the top bucket
// and only widen `max`, which is tracked exactly.
//
// count / sum / min / max are exact; only percentile interpolation is
// quantized. Non-finite samples are dropped (counted in dropped());
// negatives clamp to 0. merge() makes per-shard histograms additive.
// ~10 KB per instance, no allocation.
//
// Header-only so it can live in the davinci_common INTERFACE library
// next to percentile.h, whose stats::Summary it produces.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/percentile.h"

namespace davinci::stats {

class Histogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;  // subbuckets per octave
  static constexpr int kOctaves = 40;         // values < 2^40 are exact-bucket
  static constexpr int kBuckets = (kOctaves + 1) * kSub;

  void record(double v) {
    if (!std::isfinite(v)) {
      dropped_ += 1;
      return;
    }
    if (v < 0.0) v = 0.0;
    counts_[bucket_of(v)] += 1;
    count_ += 1;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  void merge(const Histogram& other) {
    for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    dropped_ += other.dropped_;
  }

  void reset() { *this = Histogram(); }

  std::int64_t count() const { return count_; }
  std::int64_t dropped() const { return dropped_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Linear-interpolation percentile over the bucketed distribution --
  // the same rank definition as stats::percentile (q * (count - 1)
  // interpolated between the two straddling ranks), with each rank's
  // value reconstructed by linear interpolation inside its bucket.
  // Empty histogram yields 0; q is clamped to [0, 1].
  double percentile(double q) const {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(count_ - 1);
    const std::int64_t lo = static_cast<std::int64_t>(pos);
    const std::int64_t hi = lo + 1 < count_ ? lo + 1 : lo;
    const double frac = pos - static_cast<double>(lo);
    return value_at_rank(lo) * (1.0 - frac) + value_at_rank(hi) * frac;
  }

  // The shared reporting shape (common/percentile.h): exact count / mean
  // / max, bucket-quantized percentiles.
  Summary summary() const {
    Summary s;
    s.count = count_;
    s.mean = mean();
    s.p50 = percentile(0.50);
    s.p90 = percentile(0.90);
    s.p99 = percentile(0.99);
    s.p999 = percentile(0.999);
    s.max = max();
    return s;
  }

  // Sparse serialization: [[bucket_lower_bound, count], ...], ascending.
  // The schema-v6 "hist" objects embed this so an offline consumer can
  // re-derive any percentile or merge documents.
  std::string buckets_json() const {
    std::string out = "[";
    bool first = true;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (!first) out += ",";
      first = false;
      out += "[" + json::number(bucket_lo(b)) + "," +
             json::number(counts_[b]) + "]";
    }
    out += "]";
    return out;
  }

  // Bucket geometry, exposed for the tolerance tests.
  static int bucket_of(double v) {
    if (v < 1.0) {
      const int b = static_cast<int>(v * kSub);
      return b < kSub ? b : kSub - 1;
    }
    int exp = 0;
    const double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
    int oct = exp - 1;                     // v in [2^oct, 2^(oct+1))
    if (oct >= kOctaves) return kBuckets - 1;
    int sub = static_cast<int>((2.0 * m - 1.0) * kSub);
    if (sub >= kSub) sub = kSub - 1;
    return kSub + oct * kSub + sub;
  }

  static double bucket_lo(int b) {
    if (b < kSub) return static_cast<double>(b) / kSub;
    const int oct = (b - kSub) / kSub;
    const int sub = (b - kSub) % kSub;
    return std::ldexp(1.0 + static_cast<double>(sub) / kSub, oct);
  }

  static double bucket_hi(int b) {
    return b + 1 < kBuckets ? bucket_lo(b + 1)
                            : std::ldexp(2.0, kOctaves - 1);
  }

 private:
  // The value at 0-based rank r (r in [0, count)), interpolated inside
  // its bucket and clamped to the exact [min, max] envelope. The
  // endpoint ranks return the exactly-tracked min/max, so p0 and p100
  // are never quantized (values above 2^40 clamp into the top bucket,
  // but max still reports them exactly).
  double value_at_rank(std::int64_t r) const {
    if (r <= 0) return min_;
    if (r >= count_ - 1) return max_;
    std::int64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts_[b] == 0) continue;
      if (r < cum + counts_[b]) {
        const double within =
            (static_cast<double>(r - cum) + 0.5) /
            static_cast<double>(counts_[b]);
        const double v =
            bucket_lo(b) + within * (bucket_hi(b) - bucket_lo(b));
        return std::clamp(v, min_, max_);
      }
      cum += counts_[b];
    }
    return max_;
  }

  std::int64_t counts_[kBuckets] = {};
  std::int64_t count_ = 0;
  std::int64_t dropped_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace davinci::stats
