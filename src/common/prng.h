// Deterministic pseudo-random number generation for tests and workload
// generators. SplitMix64 seeding + xoshiro256** core; reproducible across
// platforms (unlike std::mt19937 distributions, whose outputs are not
// specified identically everywhere for floating point).
#pragma once

#include <cstdint>

namespace davinci {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) {
    // Rejection-free Lemire reduction is overkill for test data; modulo
    // bias is negligible for the small n used here.
    return next_u64() % n;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace davinci
