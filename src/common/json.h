// Minimal JSON document model + recursive-descent parser.
//
// The metrics toolchain (sim/metrics_registry.h writes, sim/prof_report.h
// and tools/davinci_prof.cc read) needs to round-trip its own versioned
// schema and the bench JsonReport files without external dependencies, so
// this header implements just enough of RFC 8259: the full value grammar,
// \uXXXX escapes decoded to UTF-8, and strict errors (trailing garbage,
// duplicate keys allowed last-wins like most parsers). Numbers are kept
// twice -- as double and, when exactly representable, as int64 -- because
// cycle counts exceed double's 53-bit integer range in principle and the
// diff tool must compare them exactly.
//
// Header-only so it can live in the davinci_common INTERFACE library.
#pragma once

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace davinci {
namespace json {

class Value;
using Array = std::vector<Value>;
// std::map keeps object keys ordered, which makes reports and error
// messages deterministic.
using Object = std::map<std::string, Value>;

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(runtime/explicit)
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::int64_t i)
      : kind_(Kind::kNumber), num_(static_cast<double>(i)), int_(i),
        has_int_(true) {}
  explicit Value(std::string s)
      : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a)
      : kind_(Kind::kArray), arr_(std::make_shared<Array>(std::move(a))) {}
  explicit Value(Object o)
      : kind_(Kind::kObject), obj_(std::make_shared<Object>(std::move(o))) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }
  // True when the number was written without fraction/exponent and fits
  // int64 exactly.
  bool is_int() const { return kind_ == Kind::kNumber && has_int_; }

  bool as_bool() const {
    DV_CHECK(is_bool()) << "json: not a bool";
    return bool_;
  }
  double as_double() const {
    DV_CHECK(is_number()) << "json: not a number";
    return num_;
  }
  std::int64_t as_int() const {
    DV_CHECK(is_int()) << "json: not an integer";
    return int_;
  }
  const std::string& as_string() const {
    DV_CHECK(is_string()) << "json: not a string";
    return str_;
  }
  const Array& as_array() const {
    DV_CHECK(is_array()) << "json: not an array";
    return *arr_;
  }
  const Object& as_object() const {
    DV_CHECK(is_object()) << "json: not an object";
    return *obj_;
  }

  // Object member access; `get` returns nullptr when absent.
  const Value* get(const std::string& key) const {
    if (!is_object()) return nullptr;
    auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
  }
  const Value& at(const std::string& key) const {
    const Value* v = get(key);
    DV_CHECK(v != nullptr) << "json: missing key '" << key << "'";
    return *v;
  }
  bool has(const std::string& key) const { return get(key) != nullptr; }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool has_int_ = false;
  std::string str_;
  // shared_ptr keeps Value cheaply copyable (reports pass subtrees around
  // by value); documents are read-only after parsing.
  std::shared_ptr<Array> arr_;
  std::shared_ptr<Object> obj_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    DV_CHECK(pos_ == s_.size())
        << "json: trailing garbage at offset " << pos_;
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    std::size_t n = 0;
    while (word[n] != '\0') ++n;
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!literal("null")) fail("bad literal");
        return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object o;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      o[std::move(key)] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(o));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Array a;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(a));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_utf8(out, parse_hex4()); break;
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail("truncated \\u escape");
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    // Surrogate pairs are not recombined; each half encodes standalone,
    // which is enough for the ASCII-only schemas this repo writes.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool any_digit = false;
    while (pos_ < s_.size() && std::isdigit(
               static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
      any_digit = true;
    }
    if (!any_digit) fail("bad number");
    bool integral = true;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      integral = false;
      ++pos_;
      bool frac = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        frac = true;
      }
      if (!frac) fail("bad number fraction");
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      bool exp = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        exp = true;
      }
      if (!exp) fail("bad number exponent");
    }
    const std::string tok = s_.substr(start, pos_ - start);
    if (integral) {
      try {
        return Value(static_cast<std::int64_t>(std::stoll(tok)));
      } catch (const std::exception&) {
        // Falls through to double for out-of-range integers.
      }
    }
    // std::from_chars, not std::stod: stod consults LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' and read "1.5" as 1.0.
    double d = 0.0;
    const std::from_chars_result r =
        std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (r.ec != std::errc() || r.ptr != tok.data() + tok.size()) {
      fail("unparseable number '" + tok + "'");
    }
    return Value(d);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// Parses a complete JSON document; throws davinci::Error on any syntax
// error (including trailing garbage).
inline Value parse(const std::string& text) {
  return detail::Parser(text).parse_document();
}

// Locale-independent number formatting. std::to_chars emits the shortest
// decimal string that round-trips to the same double, always with '.' as
// the decimal separator -- unlike the snprintf "%g" family, which
// consults LC_NUMERIC and writes ',' under e.g. de_DE, producing invalid
// JSON. Every float the repo serializes (metrics, bench reports, fault
// specs) must go through here. Non-finite values, which RFC 8259 cannot
// represent, serialize as null.
inline std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  DV_CHECK(r.ec == std::errc()) << "json: number buffer too small";
  return std::string(buf, r.ptr);
}

inline std::string number(std::int64_t v) {
  char buf[24];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  DV_CHECK(r.ec == std::errc()) << "json: number buffer too small";
  return std::string(buf, r.ptr);
}

// Serializes a string with the escapes parse() understands.
inline std::string escape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace json
}  // namespace davinci
