// IEEE-754 binary16 (half precision) implemented from scratch.
//
// Float16 is the data type the paper adopts throughout ("The data type
// Float16 is adopted in this paper", Section III-B): the fractal layout
// constant C0 equals 16 precisely because a 16-element row of Float16
// values is 256 bits, and a 16x16 fractal is the 4096-bit unit consumed
// by the Cube Unit.
//
// Arithmetic is performed by converting to float, operating, and rounding
// back to half with round-to-nearest-even, which matches the behaviour of
// a hardware FP16 ALU for the single operations used by the simulator
// (max/min/add/sub/mul are correctly rounded this way; div too since
// binary32 has more than 2x the precision of binary16).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

namespace davinci {

namespace detail {

// Bit-exact float <-> uint32 transmutation.
inline std::uint32_t bits_of(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float float_of(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Convert a binary32 value to binary16 bits with round-to-nearest-even,
// handling subnormals, overflow to infinity, and NaN payload preservation
// (quietened).
inline std::uint16_t f32_to_f16_bits(float value) {
  const std::uint32_t x = bits_of(value);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {  // Inf or NaN
    if (abs > 0x7F800000u) {
      // NaN: keep it a NaN; set the quiet bit.
      return static_cast<std::uint16_t>(sign | 0x7E00u);
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x477FF000u) {
    // Values >= 65520 round to +/-inf (65504 is the max finite half).
    if (abs >= 0x477FF000u && abs < 0x47800000u) {
      // Between 65504 + ulp/2 boundary: decide by rounding below.
      // Fall through to the generic path which handles it via exponent
      // arithmetic; the quick check above only filters the certain cases.
    }
    if (abs >= 0x47800000u) {
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
  }

  const int exp32 = static_cast<int>(abs >> 23);      // biased by 127
  const int exp16 = exp32 - 127 + 15;                 // biased by 15

  if (exp16 >= 0x1F) {  // overflow -> infinity
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  std::uint32_t mant = abs & 0x7FFFFFu;
  if (exp16 <= 0) {
    // Subnormal (or zero) in half precision.
    if (exp16 < -10) {  // Too small: rounds to +/-0.
      return static_cast<std::uint16_t>(sign);
    }
    // Add the implicit leading one, then shift right by (1 - exp16) + 13.
    mant |= 0x800000u;
    const int shift = 14 - exp16;  // 13 (mantissa diff) + (1 - exp16)
    const std::uint32_t kept = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t rounded = kept;
    if (rem > half || (rem == half && (kept & 1u))) {
      rounded += 1;  // May carry into the exponent; that is still correct.
    }
    return static_cast<std::uint16_t>(sign | rounded);
  }

  // Normalized: keep the top 10 mantissa bits, round on the low 13.
  const std::uint32_t kept = mant >> 13;
  const std::uint32_t rem = mant & 0x1FFFu;
  std::uint32_t out = sign | (static_cast<std::uint32_t>(exp16) << 10) | kept;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) {
    out += 1;  // Carries correctly into exponent / infinity.
  }
  return static_cast<std::uint16_t>(out);
}

inline float f16_bits_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;

  if (exp == 0) {
    if (mant == 0) return float_of(sign);  // +/-0
    // Subnormal: value = mant * 2^-24. Normalize into binary32.
    int e = -1;
    std::uint32_t m = mant;
    do {
      ++e;
      m <<= 1;
    } while ((m & 0x400u) == 0);
    const std::uint32_t exp32 = static_cast<std::uint32_t>(127 - 15 - e);
    const std::uint32_t mant32 = (m & 0x3FFu) << 13;
    return float_of(sign | (exp32 << 23) | mant32);
  }
  if (exp == 0x1F) {
    if (mant == 0) return float_of(sign | 0x7F800000u);  // +/-inf
    return float_of(sign | 0x7FC00000u | (mant << 13));  // NaN
  }
  const std::uint32_t exp32 = exp - 15 + 127;
  return float_of(sign | (exp32 << 23) | (mant << 13));
}

// Lazily-built 64K-entry half-bits -> binary32 table: one load replaces
// the branchy software conversion inside bulk element loops (the
// functional interpreter's vector/SCU inner loops). Entries match
// f16_bits_to_f32 exactly by construction, so results are bit-identical
// to the conversion path.
inline const float* f16_to_f32_table() {
  static const float* const table = [] {
    float* t = new float[65536];
    for (std::uint32_t i = 0; i < 65536; ++i) {
      t[i] = f16_bits_to_f32(static_cast<std::uint16_t>(i));
    }
    return t;
  }();
  return table;
}

}  // namespace detail

// A 16-bit IEEE-754 half-precision float value.
class Float16 {
 public:
  constexpr Float16() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): implicit like a builtin.
  Float16(float value) : bits_(detail::f32_to_f16_bits(value)) {}

  static constexpr Float16 from_bits(std::uint16_t bits) {
    Float16 h;
    h.bits_ = bits;
    return h;
  }

  std::uint16_t bits() const { return bits_; }
  float to_float() const { return detail::f16_bits_to_f32(bits_); }
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator float() const { return to_float(); }

  bool is_nan() const {
    return ((bits_ & 0x7C00u) == 0x7C00u) && ((bits_ & 0x3FFu) != 0);
  }
  bool is_inf() const { return (bits_ & 0x7FFFu) == 0x7C00u; }
  bool is_zero() const { return (bits_ & 0x7FFFu) == 0; }

  // Largest finite half value: 65504.
  static constexpr Float16 max_finite() { return from_bits(0x7BFFu); }
  // Most negative finite half value: -65504. Used to initialise maxpool
  // accumulators ("the output tile is initialized with the minimum value
  // of the data type in use", Section V-A).
  static constexpr Float16 lowest() { return from_bits(0xFBFFu); }
  static constexpr Float16 infinity() { return from_bits(0x7C00u); }
  static constexpr Float16 neg_infinity() { return from_bits(0xFC00u); }
  // Smallest positive normal: 2^-14.
  static constexpr Float16 min_normal() { return from_bits(0x0400u); }
  // Machine epsilon for binary16: 2^-10.
  static float epsilon() { return 0.0009765625f; }

  friend bool operator==(Float16 a, Float16 b) {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;  // +0 == -0
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(Float16 a, Float16 b) { return !(a == b); }
  friend bool operator<(Float16 a, Float16 b) {
    return a.to_float() < b.to_float();
  }
  friend bool operator<=(Float16 a, Float16 b) {
    return a.to_float() <= b.to_float();
  }
  friend bool operator>(Float16 a, Float16 b) {
    return a.to_float() > b.to_float();
  }
  friend bool operator>=(Float16 a, Float16 b) {
    return a.to_float() >= b.to_float();
  }

  // Single correctly-rounded operations (round via binary32).
  friend Float16 operator+(Float16 a, Float16 b) {
    return Float16(a.to_float() + b.to_float());
  }
  friend Float16 operator-(Float16 a, Float16 b) {
    return Float16(a.to_float() - b.to_float());
  }
  friend Float16 operator*(Float16 a, Float16 b) {
    return Float16(a.to_float() * b.to_float());
  }
  friend Float16 operator/(Float16 a, Float16 b) {
    return Float16(a.to_float() / b.to_float());
  }
  friend Float16 operator-(Float16 a) {
    return from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }

  Float16& operator+=(Float16 b) { return *this = *this + b; }
  Float16& operator-=(Float16 b) { return *this = *this - b; }
  Float16& operator*=(Float16 b) { return *this = *this * b; }
  Float16& operator/=(Float16 b) { return *this = *this / b; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(Float16) == 2, "Float16 must be 2 bytes");

inline Float16 fmax16(Float16 a, Float16 b) {
  // Hardware vmax semantics: propagate the larger value; if either is NaN
  // return the other operand (matches x86/ARM max "number wins" used by
  // AI accelerators).
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  return a.to_float() >= b.to_float() ? a : b;
}

inline Float16 fmin16(Float16 a, Float16 b) {
  if (a.is_nan()) return b;
  if (b.is_nan()) return a;
  return a.to_float() <= b.to_float() ? a : b;
}

inline std::string to_string(Float16 h) { return std::to_string(h.to_float()); }

}  // namespace davinci
