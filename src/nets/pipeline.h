// A small forward-pipeline runner: sequences of Conv / MaxPool / AvgPool /
// GlobalAvgPool layers executed on the simulated device with per-layer
// cycle accounting -- the "adopt this library in a network" surface.
// Layer outputs stay in the NC1HWC0 global-memory format between layers,
// exactly like activations on the real chip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "sim/device.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci {
class MetricsRegistry;
}

namespace davinci::nets {

// How pooling layers are scheduled throughout a pipeline run.
enum class PoolingStack : std::uint8_t {
  kStandard,     // direct forward (Listing 1)
  kAccelerated,  // Im2col-based forward (Listing 2)
};

class Pipeline {
 public:
  // Convolution on the Cube Unit; weights (Cout, C, Kh, Kw) are supplied
  // by the caller (C must match the running channel count).
  Pipeline& conv(TensorF32 weights, const Window2d& window,
                 std::string name = "conv");
  Pipeline& maxpool(const Window2d& window, std::string name = "maxpool");
  Pipeline& avgpool(const Window2d& window, std::string name = "avgpool");
  Pipeline& global_avgpool(std::string name = "global_avgpool");

  // Per-layer overrides: the layer runs exactly this descriptor (window,
  // lowering, precomputed plan) regardless of the PoolingStack passed to
  // run(). op.kind must match the layer type (kMaxFwd / kAvgFwd).
  Pipeline& maxpool(const kernels::PoolOp& op, std::string name = "maxpool");
  Pipeline& avgpool(const kernels::PoolOp& op, std::string name = "avgpool");

  struct LayerRun {
    std::string name;
    Shape out_shape;
    std::int64_t cycles = 0;         // overlapped makespan
    std::int64_t serial_cycles = 0;  // same instructions charged in order
    std::int64_t host_ns = 0;        // host wall-clock of the device run
    Profile profile;  // per-instruction occupancy, merged over cores
    Device::RunResult run;  // full counters (traffic, attribution, ...)
  };

  struct Result {
    TensorF16 out;
    std::vector<LayerRun> layers;
    std::int64_t total_cycles = 0;
    std::int64_t total_serial_cycles = 0;
    std::int64_t total_host_ns = 0;
    Profile profile;    // summed over layers
    FaultStats faults;  // summed over layers; all-zero without injection

    // Per-layer utilization table (one row per layer plus a total row):
    // overlapped and serial cycles, host wall-clock, mean vector-lane
    // utilization, fraction of full-mask vector instructions, and SCU /
    // MTE occupancy -- the quantities Section V of the paper reasons
    // about, per layer.
    std::string utilization_table() const;

    // Appends one MetricsRegistry entry per layer (named after the
    // layer), so a pipeline run lands in the same --metrics JSON schema
    // as single-kernel runs (see sim/metrics_registry.h).
    void add_metrics(MetricsRegistry& registry, const ArchConfig& arch) const;
  };

  // Runs the whole pipeline on `input` ((N=1, C1, H, W, C0) fp16). If a
  // resilience policy is installed on `dev` (Device::set_resilience),
  // every layer executes under it and Result::faults aggregates the
  // per-layer fault reports.
  Result run(Device& dev, const TensorF16& input, PoolingStack stack) const;

  // Runs the pipeline with fault injection / retry per `opts`: installs
  // the policy on `dev` for the duration of the call and restores the
  // previous policy afterwards (exception-safe). Throws RetryExhausted if
  // any layer cannot complete within its retry budget.
  Result run_resilient(Device& dev, const TensorF16& input, PoolingStack stack,
                       const ResilienceOptions& opts) const;

  // Reference forward pass (NCHW fp32 in, fp16-rounded activations
  // between layers so it tracks the device pipeline), for validation.
  TensorF32 reference(const TensorF32& input_nchw) const;

  std::size_t num_layers() const { return layers_.size(); }

 private:
  enum class Kind : std::uint8_t { kConv, kMaxPool, kAvgPool, kGlobalAvg };

  struct Layer {
    Kind kind;
    std::string name;
    Window2d window;
    TensorF32 weights;  // conv only
    // Pooling layers only: when set, run() launches exactly this
    // descriptor instead of deriving one from the PoolingStack.
    std::optional<kernels::PoolOp> op = std::nullopt;
  };

  std::vector<Layer> layers_;
};

}  // namespace davinci::nets
