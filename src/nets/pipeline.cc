#include "nets/pipeline.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "kernels/conv2d.h"
#include "sim/metrics_registry.h"
#include "ref/conv_ref.h"
#include "ref/pooling_ref.h"
#include "tensor/fractal.h"

namespace davinci::nets {

Pipeline& Pipeline::conv(TensorF32 weights, const Window2d& window,
                         std::string name) {
  DV_CHECK_EQ(weights.shape().rank(), 4) << "(Cout, C, Kh, Kw)";
  DV_CHECK_EQ(weights.shape()[2], window.kh);
  DV_CHECK_EQ(weights.shape()[3], window.kw);
  layers_.push_back(
      Layer{Kind::kConv, std::move(name), window, std::move(weights)});
  return *this;
}

Pipeline& Pipeline::maxpool(const Window2d& window, std::string name) {
  layers_.push_back(Layer{Kind::kMaxPool, std::move(name), window, {}, {}});
  return *this;
}

Pipeline& Pipeline::avgpool(const Window2d& window, std::string name) {
  layers_.push_back(Layer{Kind::kAvgPool, std::move(name), window, {}, {}});
  return *this;
}

Pipeline& Pipeline::global_avgpool(std::string name) {
  layers_.push_back(Layer{Kind::kGlobalAvg, std::move(name), {}, {}, {}});
  return *this;
}

Pipeline& Pipeline::maxpool(const kernels::PoolOp& op, std::string name) {
  DV_CHECK(op.kind == kernels::PoolOpKind::kMaxFwd)
      << "maxpool override must be a kMaxFwd descriptor, got "
      << op.to_string();
  layers_.push_back(
      Layer{Kind::kMaxPool, std::move(name), op.window, {}, op});
  return *this;
}

Pipeline& Pipeline::avgpool(const kernels::PoolOp& op, std::string name) {
  DV_CHECK(op.kind == kernels::PoolOpKind::kAvgFwd)
      << "avgpool override must be a kAvgFwd descriptor, got "
      << op.to_string();
  layers_.push_back(
      Layer{Kind::kAvgPool, std::move(name), op.window, {}, op});
  return *this;
}

Pipeline::Result Pipeline::run(Device& dev, const TensorF16& input,
                               PoolingStack stack) const {
  DV_CHECK_EQ(input.shape().rank(), 5) << "expected NC1HWC0";
  DV_CHECK_EQ(input.shape()[0], 1) << "pipelines run one image";
  const akg::PoolImpl pool_impl = stack == PoolingStack::kAccelerated
                                      ? akg::PoolImpl::kIm2col
                                      : akg::PoolImpl::kDirect;

  Result result;
  TensorF16 cur = input;  // activations in global memory
  for (const Layer& layer : layers_) {
    LayerRun run;
    run.name = layer.name;
    auto note = [&](auto& r) {
      run.cycles = r.cycles();
      run.serial_cycles = r.run.device_cycles_serial;
      run.host_ns = r.run.host_ns;
      run.profile = r.run.profile;
      run.run = r.run;
      result.faults += r.run.faults;
      cur = std::move(r.out);
    };
    // Pooling layers launch through the unified entry point; the layer's
    // override descriptor (when present) wins over the PoolingStack.
    auto pool_op = [&](kernels::PoolOpKind kind) {
      if (layer.op.has_value()) return *layer.op;
      kernels::PoolOp op;
      op.kind = kind;
      op.window = layer.window;
      op.fwd = pool_impl;
      return op;
    };
    auto run_pool_layer = [&](kernels::PoolOpKind kind) {
      kernels::PoolInputs inputs;
      inputs.in = &cur;
      auto r = kernels::run_pool(dev, pool_op(kind), inputs);
      note(r);
    };
    switch (layer.kind) {
      case Kind::kConv: {
        auto r = kernels::conv2d_cube(dev, cur, layer.weights, layer.window);
        note(r);
        break;
      }
      case Kind::kMaxPool:
        run_pool_layer(kernels::PoolOpKind::kMaxFwd);
        break;
      case Kind::kAvgPool:
        run_pool_layer(kernels::PoolOpKind::kAvgFwd);
        break;
      case Kind::kGlobalAvg:
        run_pool_layer(kernels::PoolOpKind::kGlobalAvg);
        break;
    }
    run.out_shape = cur.shape();
    result.total_cycles += run.cycles;
    result.total_serial_cycles += run.serial_cycles;
    result.total_host_ns += run.host_ns;
    result.profile += run.profile;
    result.layers.push_back(std::move(run));
  }
  result.out = std::move(cur);
  return result;
}

namespace {

void append_utilization_row(std::string* out, const std::string& name,
                            std::int64_t cycles, std::int64_t serial,
                            std::int64_t host_ns, const Profile& p) {
  auto cell = [](const UnitOccupancy& u) -> std::string {
    if (u.instrs == 0) return "-";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5.1f%%", u.occupancy() * 100.0);
    return buf;
  };
  char line[192];
  std::snprintf(line, sizeof(line),
                "%-18s %12lld %12lld %9.1fus  %9s %8.0f%%  %7s %7s %6s %6s\n",
                name.c_str(), static_cast<long long>(cycles),
                static_cast<long long>(serial),
                static_cast<double>(host_ns) / 1000.0,
                cell(p.vec).c_str(), p.vec.saturation() * 100.0,
                cell(p.im2col).c_str(), cell(p.col2im).c_str(),
                cell(p.cube).c_str(), cell(p.mte).c_str());
  *out += line;
}

}  // namespace

std::string Pipeline::Result::utilization_table() const {
  std::string out;
  char header[192];
  std::snprintf(header, sizeof(header),
                "%-18s %12s %12s %11s  %9s %9s  %7s %7s %6s %6s\n",
                "layer", "cycles", "serial", "host", "vec-lanes", "vec-sat",
                "im2col", "col2im", "cube", "mte");
  out += header;
  out += std::string(std::strlen(header) - 1, '-') + "\n";
  for (const LayerRun& run : layers) {
    append_utilization_row(&out, run.name, run.cycles, run.serial_cycles,
                           run.host_ns, run.profile);
  }
  append_utilization_row(&out, "total", total_cycles, total_serial_cycles,
                         total_host_ns, profile);
  return out;
}

void Pipeline::Result::add_metrics(MetricsRegistry& registry,
                                   const ArchConfig& arch) const {
  for (const LayerRun& run : layers) {
    registry.add(run.name, run.run, arch);
  }
}

Pipeline::Result Pipeline::run_resilient(Device& dev, const TensorF16& input,
                                         PoolingStack stack,
                                         const ResilienceOptions& opts) const {
  // Install the policy for the duration of the run, restoring whatever was
  // there before even if a layer throws RetryExhausted.
  struct Restore {
    Device& dev;
    std::optional<ResilienceOptions> prev;
    ~Restore() {
      if (prev) {
        dev.set_resilience(*prev);
      } else {
        dev.clear_resilience();
      }
    }
  } restore{dev, dev.resilience()};
  dev.set_resilience(opts);
  return run(dev, input, stack);
}

namespace {

// fp16-rounds an fp32 tensor in place (activation storage between layers).
TensorF32 round_f16(const TensorF32& t) {
  TensorF32 out(t.shape());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out.flat(i) = Float16(t.flat(i)).to_float();
  }
  return out;
}

}  // namespace

TensorF32 Pipeline::reference(const TensorF32& input_nchw) const {
  DV_CHECK_EQ(input_nchw.shape().rank(), 4);
  TensorF32 cur = round_f16(input_nchw);
  for (const Layer& layer : layers_) {
    switch (layer.kind) {
      case Kind::kConv:
        cur = round_f16(
            ref::conv2d_nchw(cur, round_f16(layer.weights), layer.window));
        break;
      case Kind::kMaxPool:
        cur = ref::maxpool_fwd_nchw(cur, layer.window);
        break;
      case Kind::kAvgPool: {
        // Mirror the kernels' fp16 rounding: sum and scale in fp16 order.
        const TensorF16 frac = nchw_to_nc1hwc0(cur);
        const TensorF16 pooled = ref::avgpool_fwd(frac, layer.window);
        cur = nc1hwc0_to_nchw(pooled, cur.shape()[1]);
        break;
      }
      case Kind::kGlobalAvg: {
        const TensorF16 frac = nchw_to_nc1hwc0(cur);
        const TensorF16 pooled = ref::global_avgpool(frac);
        cur = nc1hwc0_to_nchw(pooled, cur.shape()[1]);
        break;
      }
    }
  }
  return cur;
}

}  // namespace davinci::nets
