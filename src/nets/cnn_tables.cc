#include "nets/cnn_tables.h"

namespace davinci::nets {

namespace {

PoolLayer layer(std::string net, int index, std::int64_t h, std::int64_t w,
                std::int64_t c, std::int64_t k, std::int64_t s,
                bool highlighted = false) {
  PoolLayer l;
  l.network = std::move(net);
  l.index = index;
  l.h = h;
  l.w = w;
  l.c = c;
  l.window = Window2d::pool(k, s);
  l.highlighted = highlighted;
  return l;
}

}  // namespace

std::vector<PoolLayer> table1_layers() {
  return {
      // InceptionV3: K(3,3) S(2,2).
      layer("InceptionV3", 1, 147, 147, 64, 3, 2, /*highlighted=*/true),
      layer("InceptionV3", 2, 71, 71, 192, 3, 2, /*highlighted=*/true),
      layer("InceptionV3", 3, 35, 35, 288, 3, 2, /*highlighted=*/true),
      layer("InceptionV3", 4, 17, 17, 768, 3, 2),
      // Xception: K(3,3) S(2,2).
      layer("Xception", 1, 147, 147, 128, 3, 2),
      layer("Xception", 2, 74, 74, 256, 3, 2),
      layer("Xception", 3, 37, 37, 728, 3, 2),
      layer("Xception", 4, 19, 19, 1024, 3, 2),
      // ResNet50: a single maxpool, K(3,3) S(2,2).
      layer("Resnet50", 1, 112, 112, 64, 3, 2),
      // VGG16: K(2,2) S(2,2).
      layer("VGG16", 1, 224, 224, 64, 2, 2),
      layer("VGG16", 2, 112, 112, 128, 2, 2),
      layer("VGG16", 3, 56, 56, 256, 2, 2),
      layer("VGG16", 4, 28, 28, 512, 2, 2),
  };
}

std::vector<PoolLayer> inception_v3_fig7_layers() {
  std::vector<PoolLayer> out;
  for (auto& l : table1_layers()) {
    if (l.highlighted) out.push_back(l);
  }
  return out;
}

}  // namespace davinci::nets
