// Table I of the paper: MaxPool input sizes in popular CNNs, gathered from
// the Keras framework, in HWC layout. "All configurations use a kernel
// size of (3, 3) and a stride of (2, 2), except for VGG16, which has a
// kernel size and stride of (2, 2)."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/pool_geometry.h"

namespace davinci::nets {

struct PoolLayer {
  std::string network;
  int index = 0;            // "Input 1..4" column of Table I
  std::int64_t h = 0, w = 0, c = 0;  // HWC input size
  Window2d window;
  bool highlighted = false;  // bold in Table I: used for Figure 7
};

// All Table I rows.
std::vector<PoolLayer> table1_layers();

// The three InceptionV3 configurations highlighted in bold, used for the
// Figure 7 experiments: (147,147,64), (71,71,192), (35,35,288).
std::vector<PoolLayer> inception_v3_fig7_layers();

}  // namespace davinci::nets
