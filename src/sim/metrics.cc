#include "sim/metrics.h"

#include "common/check.h"

namespace davinci {

DeviceAttribution attribute_cores(
    const std::vector<const PipeScheduler*>& scheds) {
  DeviceAttribution out;
  for (const PipeScheduler* s : scheds) {
    DV_CHECK(s != nullptr) << "attribute_cores: null scheduler";
    if (s->makespan() > out.horizon) out.horizon = s->makespan();
  }
  out.cores.reserve(scheds.size());
  for (std::size_t c = 0; c < scheds.size(); ++c) {
    CoreAttribution ca;
    ca.core = static_cast<int>(c);
    ca.makespan = scheds[c]->makespan();
    for (int p = 0; p < PipeScheduler::kNumPipes; ++p) {
      ca.pipes[p] =
          scheds[c]->attribution(static_cast<Pipe>(p), out.horizon);
    }
    if (out.critical_core < 0 && ca.makespan == out.horizon) {
      out.critical_core = ca.core;
    }
    out.cores.push_back(ca);
  }
  if (out.critical_core >= 0) {
    const PipeScheduler* crit =
        scheds[static_cast<std::size_t>(out.critical_core)];
    out.path_truncated = crit->interval_log_truncated();
    out.critical_path = crit->critical_path();
  }
  return out;
}

Roofline compute_roofline(const CycleStats& aggregate, const ArchConfig& arch,
                          std::int64_t device_cycles, int cores_used) {
  Roofline r;
  r.gm_bytes = aggregate.traffic.gm_total();
  r.mte_bytes = aggregate.traffic.mte_total();
  r.vector_slots = aggregate.vector_active_lanes;
  r.peak_gm_bytes_per_cycle =
      static_cast<double>(arch.peak_mte_bytes_per_cycle);
  if (device_cycles > 0 && cores_used > 0) {
    r.achieved_gm_bytes_per_cycle =
        static_cast<double>(r.gm_bytes) /
        (static_cast<double>(device_cycles) *
         static_cast<double>(cores_used));
  }
  if (arch.peak_mte_bytes_per_cycle > 0) {
    r.machine_balance = static_cast<double>(arch.vector_lanes) /
                        static_cast<double>(arch.peak_mte_bytes_per_cycle);
  }
  if (r.gm_bytes > 0) {
    r.arithmetic_intensity = static_cast<double>(r.vector_slots) /
                             static_cast<double>(r.gm_bytes);
    // Below the machine balance the GM pipe saturates before the vector
    // lanes can: the kernel is transfer-bound. A run that moved bytes but
    // issued no vector work is transfer-bound by definition.
    r.transfer_bound = r.arithmetic_intensity < r.machine_balance;
  }
  return r;
}

}  // namespace davinci
