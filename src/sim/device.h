// The Ascend-910-like device: 32 AI Cores sharing global memory.
//
// The paper parallelizes pooling by splitting the outer loops (mainly C1)
// across AI Cores; each core computes a share of the output ("the outer
// loops are parallelized between the AI Cores available on the target
// device", Section IV-A). The simulator distributes tile blocks
// round-robin over the cores and executes them on a real thread pool --
// blocks must write disjoint regions of global memory, which all kernels
// in this repository guarantee by construction.
//
// The device-level time of a kernel is the *maximum* per-core cycle count
// (cores run concurrently) plus a per-core launch overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "sim/ai_core.h"
#include "sim/stats.h"

namespace davinci {

class Device {
 public:
  explicit Device(ArchConfig arch = ArchConfig::ascend910(),
                  CostModel cost = CostModel::calibrated());

  int num_cores() const { return static_cast<int>(cores_.size()); }
  AiCore& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  const ArchConfig& arch() const { return arch_; }
  const CostModel& cost() const { return cost_; }

  struct RunResult {
    std::int64_t device_cycles = 0;       // max over used cores (serial
                                          // in-order timeline per core)
    std::int64_t device_cycles_pipelined = 0;  // optimistic pipe-overlap
                                               // bound (see CycleStats)
    CycleStats aggregate;                 // sum over used cores
    std::vector<std::int64_t> core_cycles;
    int cores_used = 0;
  };

  // Executes blocks [0, num_blocks) with `fn(core, block_index)`, block b
  // on core (b mod num_cores). Scratch is reset before every block and
  // core stats are reset before the run. `parallel` false forces serial
  // execution (deterministic debugging; results are identical either way
  // because blocks touch disjoint global memory).
  RunResult run(std::int64_t num_blocks,
                const std::function<void(AiCore&, std::int64_t)>& fn,
                bool parallel = true);

 private:
  ArchConfig arch_;
  CostModel cost_;
  std::vector<std::unique_ptr<AiCore>> cores_;
};

}  // namespace davinci
