// The Ascend-910-like device: 32 AI Cores sharing global memory.
//
// The paper parallelizes pooling by splitting the outer loops (mainly C1)
// across AI Cores; each core computes a share of the output ("the outer
// loops are parallelized between the AI Cores available on the target
// device", Section IV-A). The simulator distributes tile blocks
// round-robin over the cores and executes them on a real thread pool --
// blocks must write disjoint regions of global memory, which all kernels
// in this repository guarantee by construction.
//
// The device-level time of a kernel is the *maximum* per-core cycle count
// (cores run concurrently) plus a per-core launch overhead. Per-core time
// is the makespan of the core's pipe-overlap schedule
// (sim/pipe_schedule.h); for kernels that never open a stage it equals
// the serial cycle sum, which stays reported as device_cycles_serial.
//
// Block-ordering invariant (every execution path):
//   * block b is *accounted* to simulated core (b mod num_cores) --
//     BlockOrder::home_core -- and each core executes its blocks in
//     increasing block order (BlockOrder::for_core);
//   * which HOST THREAD runs a core's lane is a free variable: the
//     work-stealing pool (parallel run), the serial fallback and the
//     resilient scheduler's workers all produce identical per-core
//     scratch/stats/fault-stream histories, so outputs and cycle
//     accounting are bit-identical regardless of host scheduling.
//   The one sanctioned exception is quarantine redistribution in
//   run_resilient, which reassigns the remaining blocks of a failed core
//   round-robin over the healthy ones -- deterministically, given the
//   quarantine point.
//
// Resilient execution (run_resilient / set_resilience) adds the RAS layer
// a production fleet needs on top of that: deterministic fault injection
// (sim/fault.h), bounded per-block retry, quarantine of hard-failed cores
// with redistribution of their remaining blocks, and optional
// redundant-execution verification of each block's global-memory stores.
// Blocks must be idempotent -- recompute their output region from inputs
// rather than accumulate into it -- which every kernel here already
// satisfies (a retried block simply overwrites its region).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "sim/ai_core.h"
#include "sim/executor.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/stats.h"
#include "sim/vm/stream.h"

namespace davinci {

// The canonical block -> core accounting rule (see the invariant above),
// shared by Device::run's pool and serial paths and by run_resilient's
// initial queue fill.
struct BlockOrder {
  static int home_core(std::int64_t block, int num_cores) {
    return static_cast<int>(block % num_cores);
  }
  // Invokes fn(block) for every block of `core`, in execution order.
  template <typename Fn>
  static void for_core(int core, std::int64_t num_blocks, int num_cores,
                       Fn&& fn) {
    for (std::int64_t b = core; b < num_blocks; b += num_cores) fn(b);
  }
};

class Device {
 public:
  explicit Device(ArchConfig arch = ArchConfig::ascend910(),
                  CostModel cost = CostModel::calibrated());

  int num_cores() const { return static_cast<int>(cores_.size()); }
  AiCore& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  const ArchConfig& arch() const { return arch_; }
  const CostModel& cost() const { return cost_; }

  struct RunResult {
    std::int64_t device_cycles = 0;       // max over used cores of the
                                          // modeled overlapped makespan
                                          // (== serial for unstaged code)
    std::int64_t device_cycles_serial = 0;  // max over used cores of the
                                            // strictly serial cycle sum
    std::int64_t device_cycles_pipelined = 0;  // optimistic pipe-overlap
                                               // bound (see CycleStats)
    std::int64_t busiest_unit_cycles = 0;  // max over used cores of the
                                           // busiest single unit's busy
                                           // time (sandwich lower bound)
    // Host wall-clock of the whole launch, split into attribution
    // buckets. Device::run fills host_execute_ns (the simulation itself);
    // the kernel drivers (kernels/) add what they spend around it --
    // tensor allocation, tiling-plan computation, descriptor/shape
    // validation -- and keep host_ns the exact bucket sum. Invariant
    // (asserted by tests, serialized in metrics schema v4):
    //   host_alloc_ns + host_plan_ns + host_validate_ns +
    //   host_execute_ns == host_ns.
    std::int64_t host_ns = 0;
    std::int64_t host_alloc_ns = 0;     // output-tensor construction
    std::int64_t host_plan_ns = 0;      // akg::plan_fwd / plan_bwd
    std::int64_t host_validate_ns = 0;  // descriptor/shape checks
    std::int64_t host_execute_ns = 0;   // inside Device::run[_resilient]
    CycleStats aggregate;                 // sum over used cores
    Profile profile;                      // occupancy, merged over used cores
    std::vector<std::int64_t> core_cycles;  // per-core overlapped makespan
    int cores_used = 0;
    FaultStats faults;                    // all-zero outside resilient runs
    // Per-pipe busy/wait/flag/idle buckets and the critical core's
    // bounding chain (sim/metrics.h); attribution.horizon == device_cycles.
    DeviceAttribution attribution;
    // When a VmStream is attached (set_vm_stream), the launch's scheduled
    // span on the cross-launch stream timeline; vm_end == 0 means the
    // launch was not stream-placed.
    std::int64_t vm_start = 0;
    std::int64_t vm_end = 0;
  };

  // Executes blocks [0, num_blocks) with `fn(core, block_index)`, block b
  // on core (b mod num_cores). Scratch is reset before every block and
  // core stats are reset before the run. `parallel` false forces serial
  // execution (deterministic debugging; results are identical either way
  // because blocks touch disjoint global memory).
  //
  // In the parallel path every worker failure is recorded -- not just the
  // first -- and the rethrown Error aggregates (core id, block index,
  // message) for each failed core; the serial path stops at the first
  // failure and reports it as an Error with the same core/block context.
  // When a resilience policy is installed (set_resilience), the call
  // routes through run_resilient instead.
  RunResult run(std::int64_t num_blocks,
                const std::function<void(AiCore&, std::int64_t)>& fn,
                bool parallel = true);

  // Fault-tolerant execution under `opts`:
  //  * the fault plan is armed on every core for the duration of the run;
  //  * a block whose execution throws a detected fault (TransientFault) is
  //    retried on the same core with fresh scratch;
  //  * a core that throws CoreFailed is quarantined and its unfinished
  //    blocks are redistributed round-robin over the healthy cores, so the
  //    run completes with fewer cores and honestly larger device_cycles;
  //  * with opts.verify, each block's global-memory stores are checksummed
  //    on the MTE store path and the block re-executed until two
  //    executions agree (majority vote over attempts) -- silent
  //    corruption becomes a detected-and-retried fault;
  //  * every block has a bounded execution budget,
  //    (max_retries + 1) * (verify ? 2 : 1); exhausting it, or running
  //    out of healthy cores, throws RetryExhausted with the fault report
  //    in the message.
  //
  // With an empty plan and verification off, the result (output bits,
  // per-core cycles, device_cycles) is identical to run() -- the
  // resilience layer costs nothing when disabled. Fault injection is
  // deterministic per core; see docs/RESILIENCE.md for the replay
  // guarantees.
  RunResult run_resilient(std::int64_t num_blocks,
                          const std::function<void(AiCore&, std::int64_t)>& fn,
                          const ResilienceOptions& opts);

  // Installs a resilience policy that makes every subsequent run() (and
  // therefore every kernel executed on this device) go through
  // run_resilient with `opts`. This is how whole pooling workloads and
  // pipelines run under fault injection without changing kernel code.
  void set_resilience(const ResilienceOptions& opts) { resilience_ = opts; }
  void clear_resilience() { resilience_.reset(); }
  const std::optional<ResilienceOptions>& resilience() const {
    return resilience_;
  }

  // Ping-pong (double) buffering policy consulted by the tiled kernels:
  // on (the default), they plan two UB tile slots when the budget allows
  // and issue their tile loops as overlapping stages; off, they run the
  // strictly serial single-buffer schedule (device_cycles then equals
  // device_cycles_serial). Outputs are bit-identical either way.
  void set_double_buffer(bool on) { double_buffer_ = on; }
  bool double_buffer() const { return double_buffer_; }

  // --- Async instruction-stream VM (sim/vm/, docs/ASYNC_VM.md) ----------
  // With a stream attached, every completed launch's captured per-core
  // pipe timeline is enqueued on it: the stream schedules launches to
  // overlap across batch boundaries, so the *stream's* makespan models
  // the trace's device time while each RunResult keeps its own per-launch
  // makespan. Functional execution is untouched -- outputs are
  // bit-identical with and without a stream. The stream pointer and the
  // staged annotation are driven by a single launcher thread (the serving
  // worker); they are intentionally not synchronized.
  void set_vm_stream(vm::VmStream* stream) { vm_stream_ = stream; }
  vm::VmStream* vm_stream() const { return vm_stream_; }

  // Stages the next launch's identity for the stream: a display label and
  // the input buffers it reads (dependency tracking). Consumed by the
  // next collect_result; kernels::run_pool stages this automatically when
  // a stream is attached.
  void annotate_vm_launch(std::string label, std::vector<vm::BufferId> reads) {
    vm_label_ = std::move(label);
    vm_reads_ = std::move(reads);
  }

 private:
  struct Sched;  // shared scheduling state of one resilient run

  // Runs one block (with retries / verification) on core `c`. Returns
  // true if the worker should keep pulling blocks, false if it must exit
  // (quarantined or run failed).
  bool process_block(int c, std::int64_t block, Sched& s,
                     const std::function<void(AiCore&, std::int64_t)>& fn,
                     const ResilienceOptions& opts,
                     CoreFaultState& fault_state);

  // Collects per-core results into a RunResult (shared by run and
  // run_resilient).
  RunResult collect_result(int cores_used);

  ArchConfig arch_;
  CostModel cost_;
  std::vector<std::unique_ptr<AiCore>> cores_;
  std::optional<ResilienceOptions> resilience_;
  bool double_buffer_ = true;
  vm::VmStream* vm_stream_ = nullptr;
  std::string vm_label_;
  std::vector<vm::BufferId> vm_reads_;
  std::int64_t vm_write_seq_ = 0;
  // Lazily started on the first parallel run; workers persist for the
  // Device's lifetime (see sim/executor.h).
  WorkStealingPool pool_;
};

}  // namespace davinci
