// The Ascend-910-like device: 32 AI Cores sharing global memory.
//
// The paper parallelizes pooling by splitting the outer loops (mainly C1)
// across AI Cores; each core computes a share of the output ("the outer
// loops are parallelized between the AI Cores available on the target
// device", Section IV-A). The simulator distributes tile blocks
// round-robin over the cores and executes them on a real thread pool --
// blocks must write disjoint regions of global memory, which all kernels
// in this repository guarantee by construction.
//
// The device-level time of a kernel is the *maximum* per-core cycle count
// (cores run concurrently) plus a per-core launch overhead.
//
// Resilient execution (run_resilient / set_resilience) adds the RAS layer
// a production fleet needs on top of that: deterministic fault injection
// (sim/fault.h), bounded per-block retry, quarantine of hard-failed cores
// with redistribution of their remaining blocks, and optional
// redundant-execution verification of each block's global-memory stores.
// Blocks must be idempotent -- recompute their output region from inputs
// rather than accumulate into it -- which every kernel here already
// satisfies (a retried block simply overwrites its region).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "sim/ai_core.h"
#include "sim/fault.h"
#include "sim/stats.h"

namespace davinci {

class Device {
 public:
  explicit Device(ArchConfig arch = ArchConfig::ascend910(),
                  CostModel cost = CostModel::calibrated());

  int num_cores() const { return static_cast<int>(cores_.size()); }
  AiCore& core(int i) { return *cores_.at(static_cast<std::size_t>(i)); }
  const ArchConfig& arch() const { return arch_; }
  const CostModel& cost() const { return cost_; }

  struct RunResult {
    std::int64_t device_cycles = 0;       // max over used cores (serial
                                          // in-order timeline per core)
    std::int64_t device_cycles_pipelined = 0;  // optimistic pipe-overlap
                                               // bound (see CycleStats)
    CycleStats aggregate;                 // sum over used cores
    Profile profile;                      // occupancy, merged over used cores
    std::vector<std::int64_t> core_cycles;
    int cores_used = 0;
    FaultStats faults;                    // all-zero outside resilient runs
  };

  // Executes blocks [0, num_blocks) with `fn(core, block_index)`, block b
  // on core (b mod num_cores). Scratch is reset before every block and
  // core stats are reset before the run. `parallel` false forces serial
  // execution (deterministic debugging; results are identical either way
  // because blocks touch disjoint global memory).
  //
  // In the parallel path every worker failure is recorded -- not just the
  // first -- and the rethrown Error aggregates (core id, block index,
  // message) for each failed core; the serial path stops at the first
  // failure and reports it as an Error with the same core/block context.
  // When a resilience policy is installed (set_resilience), the call
  // routes through run_resilient instead.
  RunResult run(std::int64_t num_blocks,
                const std::function<void(AiCore&, std::int64_t)>& fn,
                bool parallel = true);

  // Fault-tolerant execution under `opts`:
  //  * the fault plan is armed on every core for the duration of the run;
  //  * a block whose execution throws a detected fault (TransientFault) is
  //    retried on the same core with fresh scratch;
  //  * a core that throws CoreFailed is quarantined and its unfinished
  //    blocks are redistributed round-robin over the healthy cores, so the
  //    run completes with fewer cores and honestly larger device_cycles;
  //  * with opts.verify, each block's global-memory stores are checksummed
  //    on the MTE store path and the block re-executed until two
  //    executions agree (majority vote over attempts) -- silent
  //    corruption becomes a detected-and-retried fault;
  //  * every block has a bounded execution budget,
  //    (max_retries + 1) * (verify ? 2 : 1); exhausting it, or running
  //    out of healthy cores, throws RetryExhausted with the fault report
  //    in the message.
  //
  // With an empty plan and verification off, the result (output bits,
  // per-core cycles, device_cycles) is identical to run() -- the
  // resilience layer costs nothing when disabled. Fault injection is
  // deterministic per core; see docs/RESILIENCE.md for the replay
  // guarantees.
  RunResult run_resilient(std::int64_t num_blocks,
                          const std::function<void(AiCore&, std::int64_t)>& fn,
                          const ResilienceOptions& opts);

  // Installs a resilience policy that makes every subsequent run() (and
  // therefore every kernel executed on this device) go through
  // run_resilient with `opts`. This is how whole pooling workloads and
  // pipelines run under fault injection without changing kernel code.
  void set_resilience(const ResilienceOptions& opts) { resilience_ = opts; }
  void clear_resilience() { resilience_.reset(); }
  const std::optional<ResilienceOptions>& resilience() const {
    return resilience_;
  }

 private:
  struct Sched;  // shared scheduling state of one resilient run

  // Runs one block (with retries / verification) on core `c`. Returns
  // true if the worker should keep pulling blocks, false if it must exit
  // (quarantined or run failed).
  bool process_block(int c, std::int64_t block, Sched& s,
                     const std::function<void(AiCore&, std::int64_t)>& fn,
                     const ResilienceOptions& opts,
                     CoreFaultState& fault_state);

  ArchConfig arch_;
  CostModel cost_;
  std::vector<std::unique_ptr<AiCore>> cores_;
  std::optional<ResilienceOptions> resilience_;
};

}  // namespace davinci
