// Human-readable rendering and regression diffing of the observability
// JSON files (the backend of tools/davinci_prof.cc; see
// docs/OBSERVABILITY.md).
//
// Two document shapes are understood:
//  * the versioned metrics schema written by MetricsRegistry
//    ("schema": "davinci.metrics"), rendered as per-entry attribution /
//    roofline reports;
//  * the bench JsonReport shape ({"bench": ..., "rows": [...]}), rendered
//    as a row table.
//
// diff_reports() walks both documents recursively. Cycle-like metrics
// (cycles, cycles_serial, busiest_unit_cycles, pipelined_bound, horizon,
// makespan) are *gated*: if b exceeds a by more than the tolerance the
// diff reports a regression and the tool exits nonzero. All other numeric
// fields are informational -- drifts beyond tolerance are listed but do
// not fail the build (byte counts and occupancies have no universal
// "worse" direction). host_* fields are skipped entirely unless
// opts.include_host: wall-clock is not deterministic, cycle counts are.
#pragma once

#include <map>
#include <string>

#include "common/json.h"

namespace davinci {

// Pretty-prints a parsed metrics or bench document.
std::string render_report(const json::Value& doc);

struct DiffOptions {
  double tol = 0.05;  // default relative tolerance
  // Per-metric overrides, keyed by field name (e.g. "cycles": 0.0).
  std::map<std::string, double> per_metric;
  bool include_host = false;  // also gate host_* wall-clock fields
};

struct DiffResult {
  bool regressed = false;
  int compared = 0;      // numeric fields compared
  int regressions = 0;   // gated fields beyond tolerance
  std::string report;    // human-readable findings
};

// Diffs `b` (candidate) against `a` (baseline).
DiffResult diff_reports(const json::Value& a, const json::Value& b,
                        const DiffOptions& opts);

}  // namespace davinci
