// The Cube Unit: a systolic matrix multiplier consuming 4096-bit
// data-fractals (16 x C0 fp16 matrices) from L0A and L0B and accumulating
// fp32 partial sums in L0C (Section III-A). It multiplies two fractals per
// clock; the simulator charges one cycle per 16x16x16 fractal MAC.
//
// Pooling cannot use this unit (it has no weights and max() is not a MAC),
// which is exactly the paper's motivation for routing pooling through the
// Vector Unit with an improved layout. The Cube Unit is implemented here
// as the substrate that the Im2Col instruction was originally designed to
// feed -- exercised by the conv2d kernel and the A3 ablation bench.
#pragma once

#include <cstdint>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/float16.h"
#include "sim/scratch.h"
#include "sim/pipe_schedule.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace davinci {

class CubeUnit {
 public:
  CubeUnit(const ArchConfig& arch, const CostModel& cost, CycleStats* stats,
           Trace* trace = nullptr, Profile* profile = nullptr,
           PipeScheduler* sched = nullptr)
      : arch_(arch), cost_(cost), stats_(stats), trace_(trace),
        profile_(profile), sched_(sched) {}

  // C (+)= A x B on fractal-tiled operands:
  //   A: L0A, (m_frac x k_frac) fractals, each 16x16 row-major
  //      (row = output row, col = reduction element);
  //   B: L0B, (k_frac x n_frac) fractals, each 16x16 row-major
  //      (row = reduction element, col = output column);
  //   C: L0C, (m_frac x n_frac) fp32 fractals, row-major within fractal.
  // `accumulate` false zeroes C first (hardware init bit).
  // `a_k_major` selects the k-major fractal order (fractal (kb, mb) at
  // index kb * m_frac + mb) that the transposed Im2Col load produces.
  void mmad(Span<float> l0c, Span<Float16> l0a, Span<Float16> l0b,
            std::int64_t m_frac, std::int64_t k_frac, std::int64_t n_frac,
            bool accumulate, bool a_k_major = false);

 private:
  const ArchConfig& arch_;
  const CostModel& cost_;
  CycleStats* stats_;
  Trace* trace_;
  Profile* profile_;
  PipeScheduler* sched_ = nullptr;
};

}  // namespace davinci
