// Optional per-core instruction trace. When enabled, every instruction
// the simulator executes is recorded with its unit, parameters and cycle
// cost -- the equivalent of reading the lowered CCE-C of a kernel. Used
// by tests to assert on instruction streams and by humans to see *why* a
// schedule costs what it costs.
//
// Disabled by default; recording is bounded so a runaway kernel cannot
// exhaust memory (the bound trips a `truncated` flag instead).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace davinci {

enum class TraceKind : std::uint8_t {
  kVector,
  kMte,
  kIm2col,
  kCol2im,
  kCube,
  kBarrier,
};

inline const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kVector: return "VEC";
    case TraceKind::kMte: return "MTE";
    case TraceKind::kIm2col: return "IM2COL";
    case TraceKind::kCol2im: return "COL2IM";
    case TraceKind::kCube: return "CUBE";
    case TraceKind::kBarrier: return "BAR";
  }
  return "?";
}

struct TraceEvent {
  TraceKind kind;
  std::string detail;
  std::int64_t cycles = 0;
  // Occupancy of the instruction(s) behind this event, in the unit's slot
  // currency (see Profile in sim/stats.h); 0/0 when not recorded.
  std::int64_t slots_used = 0;
  std::int64_t slots_capacity = 0;
  // Scheduled start cycle on the pipe-overlap timeline (sim/pipe_schedule.h),
  // or -1 for hand-built traces; the exporter then falls back to the
  // serial running-sum placement.
  std::int64_t start = -1;
};

class Trace {
 public:
  static constexpr std::size_t kMaxEvents = 1 << 16;

  bool enabled() const { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  void clear() {
    events_.clear();
    truncated_ = false;
  }

  void record(TraceKind kind, std::string detail, std::int64_t cycles,
              std::int64_t slots_used = 0, std::int64_t slots_capacity = 0,
              std::int64_t start = -1) {
    if (!enabled_) return;
    if (events_.size() >= kMaxEvents) {
      truncated_ = true;
      return;
    }
    events_.push_back(
        TraceEvent{kind, std::move(detail), cycles, slots_used,
                   slots_capacity, start});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }

  std::int64_t count(TraceKind kind) const {
    std::int64_t n = 0;
    for (const auto& e : events_) n += e.kind == kind;
    return n;
  }

  std::string to_string(std::size_t max_lines = 64) const {
    std::string out;
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (n++ >= max_lines) {
        out += "... (" + std::to_string(events_.size() - max_lines) +
               " more)\n";
        break;
      }
      out += std::string(davinci::to_string(e.kind)) + " " + e.detail +
             " [" + std::to_string(e.cycles) + " cyc]\n";
    }
    if (truncated_) out += "(trace truncated)\n";
    return out;
  }

 private:
  bool enabled_ = false;
  bool truncated_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace davinci
