#include "sim/vector_unit.h"

#include <bit>

namespace davinci {

VecMask VecMask::first_n(int n) {
  DV_CHECK(n >= 0 && n <= 128) << "mask lanes " << n;
  VecMask m;
  if (n >= 64) {
    m.lo = ~0ull;
    m.hi = (n == 128) ? ~0ull : ((1ull << (n - 64)) - 1);
  } else {
    m.lo = (n == 0) ? 0 : ((n == 64) ? ~0ull : ((1ull << n) - 1));
    m.hi = 0;
  }
  return m;
}

int VecMask::count() const {
  return std::popcount(lo) + std::popcount(hi);
}

const char* to_string(VecOp op) {
  switch (op) {
    case VecOp::kMax: return "vmax";
    case VecOp::kMin: return "vmin";
    case VecOp::kAdd: return "vadd";
    case VecOp::kSub: return "vsub";
    case VecOp::kMul: return "vmul";
    case VecOp::kDiv: return "vdiv";
  }
  return "?";
}

void VectorUnit::validate(const Span<Float16>& s, const VecConfig& cfg,
                          std::int64_t rep_stride) const {
  DV_CHECK(s.kind() == BufferKind::kUnified)
      << "vector operands must live in the Unified Buffer, got "
      << davinci::to_string(s.kind());
  DV_CHECK(cfg.repeat >= 1 && cfg.repeat <= arch_.max_repeat)
      << "repeat " << cfg.repeat << " out of range (max " << arch_.max_repeat
      << "); the surrounding kernel loop must reissue";
  DV_CHECK_GE(rep_stride, 0);
}

void VectorUnit::charge(const char* op, const VecConfig& cfg) {
  const int lanes = cfg.mask.count();
  stats_->vector_instrs += 1;
  stats_->vector_repeats += cfg.repeat;
  stats_->vector_active_lanes +=
      static_cast<std::int64_t>(lanes) * cfg.repeat;
  // UB operand traffic: two bytes per active lane per repeat iteration --
  // the roofline's compute-side byte count.
  stats_->traffic.ub_vector_bytes +=
      static_cast<std::int64_t>(lanes) * cfg.repeat * 2;
  if (profile_) {
    profile_->count_vec_instr(lanes, arch_.vector_lanes, cfg.repeat);
  }
  const std::int64_t cycles = cost_.vector_instr(cfg.repeat);
  stats_->vector_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kVector, cycles).start;
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kVector,
                   std::string(op) + " repeat=" + std::to_string(cfg.repeat) +
                       " lanes=" + std::to_string(lanes),
                   cycles, static_cast<std::int64_t>(lanes) * cfg.repeat,
                   static_cast<std::int64_t>(arch_.vector_lanes) * cfg.repeat,
                   start);
  }
  // The cycles above were really spent before the parity check tripped, so
  // the fault hook runs after the ledger update. May throw TransientFault.
  if (fault_) fault_->on_vector_instr(op);
}

namespace {

inline Float16 apply(VecOp op, Float16 a, Float16 b) {
  switch (op) {
    case VecOp::kMax: return fmax16(a, b);
    case VecOp::kMin: return fmin16(a, b);
    case VecOp::kAdd: return a + b;
    case VecOp::kSub: return a - b;
    case VecOp::kMul: return a * b;
    case VecOp::kDiv: return a / b;
  }
  return Float16();
}

}  // namespace

void VectorUnit::binary(VecOp op, Span<Float16> dst, Span<Float16> src0,
                        Span<Float16> src1, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src0, cfg, cfg.src0_rep_stride);
  validate(src1, cfg, cfg.src1_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t a = rep * cfg.src0_rep_stride;
    const std::int64_t b = rep * cfg.src1_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      dst.at(d + lane) = apply(op, src0.at(a + lane), src1.at(b + lane));
    }
  }
  charge(to_string(op), cfg);
}

void VectorUnit::dup(Span<Float16> dst, Float16 value, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      dst.at(d + lane) = value;
    }
  }
  charge("vector_dup", cfg);
}

void VectorUnit::adds(Span<Float16> dst, Span<Float16> src, Float16 s,
                      const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src, cfg, cfg.src0_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t a = rep * cfg.src0_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      dst.at(d + lane) = src.at(a + lane) + s;
    }
  }
  charge("vadds", cfg);
}

void VectorUnit::muls(Span<Float16> dst, Span<Float16> src, Float16 s,
                      const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src, cfg, cfg.src0_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t a = rep * cfg.src0_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      dst.at(d + lane) = src.at(a + lane) * s;
    }
  }
  charge("vmuls", cfg);
}

void VectorUnit::cmpv_eq(Span<Float16> dst, Span<Float16> src0,
                         Span<Float16> src1, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src0, cfg, cfg.src0_rep_stride);
  validate(src1, cfg, cfg.src1_rep_stride);
  const Float16 one(1.0f);
  const Float16 zero(0.0f);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t a = rep * cfg.src0_rep_stride;
    const std::int64_t b = rep * cfg.src1_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      dst.at(d + lane) =
          (src0.at(a + lane) == src1.at(b + lane)) ? one : zero;
    }
  }
  charge("vcmpv_eq", cfg);
}

void VectorUnit::sel(Span<Float16> dst, Span<Float16> cond, Span<Float16> a,
                     Span<Float16> b, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(cond, cfg, cfg.src0_rep_stride);
  validate(a, cfg, cfg.src0_rep_stride);
  validate(b, cfg, cfg.src1_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t ca = rep * cfg.src0_rep_stride;
    const std::int64_t cb = rep * cfg.src1_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      const bool c = !cond.at(ca + lane).is_zero();
      dst.at(d + lane) = c ? a.at(ca + lane) : b.at(cb + lane);
    }
  }
  charge("vsel", cfg);
}

}  // namespace davinci
