#include "sim/vector_unit.h"

#include <bit>
#include <map>
#include <memory>
#include <mutex>

namespace davinci {

VecMask VecMask::first_n(int n) {
  DV_CHECK(n >= 0 && n <= 128) << "mask lanes " << n;
  VecMask m;
  if (n >= 64) {
    m.lo = ~0ull;
    m.hi = (n == 128) ? ~0ull : ((1ull << (n - 64)) - 1);
  } else {
    m.lo = (n == 0) ? 0 : ((n == 64) ? ~0ull : ((1ull << n) - 1));
    m.hi = 0;
  }
  return m;
}

int VecMask::count() const {
  return std::popcount(lo) + std::popcount(hi);
}

const char* to_string(VecOp op) {
  switch (op) {
    case VecOp::kMax: return "vmax";
    case VecOp::kMin: return "vmin";
    case VecOp::kAdd: return "vadd";
    case VecOp::kSub: return "vsub";
    case VecOp::kMul: return "vmul";
    case VecOp::kDiv: return "vdiv";
  }
  return "?";
}

void VectorUnit::validate(const Span<Float16>& s, const VecConfig& cfg,
                          std::int64_t rep_stride) const {
  DV_CHECK(s.kind() == BufferKind::kUnified)
      << "vector operands must live in the Unified Buffer, got "
      << davinci::to_string(s.kind());
  DV_CHECK(cfg.repeat >= 1 && cfg.repeat <= arch_.max_repeat)
      << "repeat " << cfg.repeat << " out of range (max " << arch_.max_repeat
      << "); the surrounding kernel loop must reissue";
  DV_CHECK_GE(rep_stride, 0);
}

void VectorUnit::charge(const char* op, const VecConfig& cfg) {
  const int lanes = cfg.mask.count();
  stats_->vector_instrs += 1;
  stats_->vector_repeats += cfg.repeat;
  stats_->vector_active_lanes +=
      static_cast<std::int64_t>(lanes) * cfg.repeat;
  // UB operand traffic: two bytes per active lane per repeat iteration --
  // the roofline's compute-side byte count.
  stats_->traffic.ub_vector_bytes +=
      static_cast<std::int64_t>(lanes) * cfg.repeat * 2;
  if (profile_) {
    profile_->count_vec_instr(lanes, arch_.vector_lanes, cfg.repeat);
  }
  const std::int64_t cycles = cost_.vector_instr(cfg.repeat);
  stats_->vector_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kVector, cycles).start;
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kVector,
                   std::string(op) + " repeat=" + std::to_string(cfg.repeat) +
                       " lanes=" + std::to_string(lanes),
                   cycles, static_cast<std::int64_t>(lanes) * cfg.repeat,
                   static_cast<std::int64_t>(arch_.vector_lanes) * cfg.repeat,
                   start);
  }
  // The cycles above were really spent before the parity check tripped, so
  // the fault hook runs after the ledger update. May throw TransientFault.
  if (fault_) fault_->on_vector_instr(op);
}

namespace {

inline Float16 apply(VecOp op, Float16 a, Float16 b) {
  switch (op) {
    case VecOp::kMax: return fmax16(a, b);
    case VecOp::kMin: return fmin16(a, b);
    case VecOp::kAdd: return a + b;
    case VecOp::kSub: return a - b;
    case VecOp::kMul: return a * b;
    case VecOp::kDiv: return a / b;
  }
  return Float16();
}

// Returns n when the mask is exactly first_n(n), else -1. Every pooling
// kernel issues prefix masks (full 128 lanes or a C0/tail prefix), so
// this is the common case; it lets the execution loops hoist the
// per-element bounds check out of the lane loop and run on raw pointers.
inline int prefix_lanes(const VecMask& m) {
  if (m.hi == 0) {
    if ((m.lo & (m.lo + 1)) != 0) return -1;  // lo not of the form 2^k - 1
    return std::popcount(m.lo);
  }
  if (m.lo != ~0ull) return -1;
  if ((m.hi & (m.hi + 1)) != 0) return -1;
  return 64 + std::popcount(m.hi);
}

// Result table for a scalar-operand op: t[bits] is the half-precision
// result of `cvt[bits] OP scalar`, precomputed with the same
// convert-operate-round sequence as the element loop, so a table pick is
// bit-identical to the direct computation. Serving replays issue the same
// few scalars (1 / window-area and friends) across millions of elements,
// so tables are cached process-wide; the cache is capped and callers fall
// back to the direct loop when it fills (unbounded distinct scalars only
// happen in synthetic tests).
const std::uint16_t* scalar_op_table(char op, std::uint16_t scalar_bits) {
  struct Key {
    char op;
    std::uint16_t bits;
    bool operator<(const Key& o) const {
      return op != o.op ? op < o.op : bits < o.bits;
    }
  };
  static std::mutex mu;
  static std::map<Key, std::unique_ptr<std::uint16_t[]>> cache;
  // Per-thread memo of the last table: the hot path repeats one scalar,
  // so most calls skip the lock entirely.
  thread_local char memo_op = 0;
  thread_local std::uint16_t memo_bits = 0;
  thread_local const std::uint16_t* memo_table = nullptr;
  if (memo_table != nullptr && memo_op == op && memo_bits == scalar_bits) {
    return memo_table;
  }
  const Key key{op, scalar_bits};
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    constexpr std::size_t kMaxTables = 64;
    if (cache.size() >= kMaxTables) return nullptr;
    const float* const cvt = detail::f16_to_f32_table();
    const float fs = cvt[scalar_bits];
    auto t = std::make_unique<std::uint16_t[]>(65536);
    for (std::uint32_t i = 0; i < 65536; ++i) {
      const float r = op == '*' ? cvt[i] * fs : cvt[i] + fs;
      t[i] = detail::f32_to_f16_bits(r);
    }
    it = cache.emplace(key, std::move(t)).first;
  }
  memo_op = op;
  memo_bits = scalar_bits;
  memo_table = it->second.get();
  return memo_table;
}

// One hoisted bounds check replacing the per-access Span::at checks of a
// prefix-masked op: the highest element touched is
// (repeat-1)*stride + lanes - 1.
inline void check_extent(const Span<Float16>& s, const VecConfig& cfg,
                         std::int64_t stride, int lanes) {
  const std::int64_t need =
      static_cast<std::int64_t>(cfg.repeat - 1) * stride + lanes;
  DV_CHECK_LE(need, s.size())
      << to_string(s.kind()) << " vector operand extent " << need << " of "
      << s.size();
}

}  // namespace

void VectorUnit::binary(VecOp op, Span<Float16> dst, Span<Float16> src0,
                        Span<Float16> src1, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src0, cfg, cfg.src0_rep_stride);
  validate(src1, cfg, cfg.src1_rep_stride);
  const int pfx = prefix_lanes(cfg.mask);
  if (pfx >= 0) {
    if (pfx > 0) {
      check_extent(dst, cfg, cfg.dst_rep_stride, pfx);
      check_extent(src0, cfg, cfg.src0_rep_stride, pfx);
      check_extent(src1, cfg, cfg.src1_rep_stride, pfx);
      Float16* const dp = dst.data();
      const Float16* const ap = src0.data();
      const Float16* const bp = src1.data();
      // Unswitch the op out of the element loop and convert fp16 inputs
      // through the table (bit-identical to the software conversion).
      const float* const cvt = detail::f16_to_f32_table();
      const auto run = [&](auto&& elem) {
        for (int rep = 0; rep < cfg.repeat; ++rep) {
          Float16* const d = dp + rep * cfg.dst_rep_stride;
          const Float16* const a = ap + rep * cfg.src0_rep_stride;
          const Float16* const b = bp + rep * cfg.src1_rep_stride;
          for (int lane = 0; lane < pfx; ++lane) {
            d[lane] = elem(a[lane], b[lane]);
          }
        }
      };
      // Max/min order in the bits domain: map the sign-magnitude half
      // encoding to a signed key that is monotone in the float value and
      // sends -0 and +0 to the same key, so the "first operand wins ties"
      // outcome of the float compare is preserved bit-for-bit. The
      // branchless key plus an integer select keeps the random-outcome
      // compare off the branch predictor.
      const auto order_key = [](std::uint16_t u) {
        const std::int32_t mag = u & 0x7FFF;
        const std::int32_t sgn =  // all ones when the sign bit is set
            static_cast<std::int32_t>(static_cast<std::int16_t>(u)) >> 15;
        return (mag ^ sgn) - sgn;
      };
      switch (op) {
        case VecOp::kMax:
          run([&](Float16 a, Float16 b) {
            if (a.is_nan()) return b;
            if (b.is_nan()) return a;
            const std::uint16_t r =
                order_key(a.bits()) >= order_key(b.bits()) ? a.bits()
                                                           : b.bits();
            return Float16::from_bits(r);
          });
          break;
        case VecOp::kMin:
          run([&](Float16 a, Float16 b) {
            if (a.is_nan()) return b;
            if (b.is_nan()) return a;
            const std::uint16_t r =
                order_key(a.bits()) <= order_key(b.bits()) ? a.bits()
                                                           : b.bits();
            return Float16::from_bits(r);
          });
          break;
        case VecOp::kAdd:
          run([&](Float16 a, Float16 b) {
            return Float16(cvt[a.bits()] + cvt[b.bits()]);
          });
          break;
        case VecOp::kSub:
          run([&](Float16 a, Float16 b) {
            return Float16(cvt[a.bits()] - cvt[b.bits()]);
          });
          break;
        case VecOp::kMul:
          run([&](Float16 a, Float16 b) {
            return Float16(cvt[a.bits()] * cvt[b.bits()]);
          });
          break;
        case VecOp::kDiv:
          run([&](Float16 a, Float16 b) {
            return Float16(cvt[a.bits()] / cvt[b.bits()]);
          });
          break;
      }
    }
  } else {
    for (int rep = 0; rep < cfg.repeat; ++rep) {
      const std::int64_t d = rep * cfg.dst_rep_stride;
      const std::int64_t a = rep * cfg.src0_rep_stride;
      const std::int64_t b = rep * cfg.src1_rep_stride;
      for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
        if (!cfg.mask.lane(lane)) continue;
        dst.at(d + lane) = apply(op, src0.at(a + lane), src1.at(b + lane));
      }
    }
  }
  charge(to_string(op), cfg);
}

void VectorUnit::dup(Span<Float16> dst, Float16 value, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  const int pfx = prefix_lanes(cfg.mask);
  if (pfx >= 0) {
    if (pfx > 0) {
      check_extent(dst, cfg, cfg.dst_rep_stride, pfx);
      Float16* const dp = dst.data();
      for (int rep = 0; rep < cfg.repeat; ++rep) {
        Float16* const d = dp + rep * cfg.dst_rep_stride;
        for (int lane = 0; lane < pfx; ++lane) d[lane] = value;
      }
    }
  } else {
    for (int rep = 0; rep < cfg.repeat; ++rep) {
      const std::int64_t d = rep * cfg.dst_rep_stride;
      for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
        if (!cfg.mask.lane(lane)) continue;
        dst.at(d + lane) = value;
      }
    }
  }
  charge("vector_dup", cfg);
}

void VectorUnit::adds(Span<Float16> dst, Span<Float16> src, Float16 s,
                      const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src, cfg, cfg.src0_rep_stride);
  const int pfx = prefix_lanes(cfg.mask);
  if (pfx >= 0) {
    if (pfx > 0) {
      check_extent(dst, cfg, cfg.dst_rep_stride, pfx);
      check_extent(src, cfg, cfg.src0_rep_stride, pfx);
      Float16* const dp = dst.data();
      const Float16* const ap = src.data();
      const std::uint16_t* const tab = scalar_op_table('+', s.bits());
      const float* const cvt = detail::f16_to_f32_table();
      const float fs = s.to_float();
      for (int rep = 0; rep < cfg.repeat; ++rep) {
        Float16* const d = dp + rep * cfg.dst_rep_stride;
        const Float16* const a = ap + rep * cfg.src0_rep_stride;
        if (tab != nullptr) {
          for (int lane = 0; lane < pfx; ++lane) {
            d[lane] = Float16::from_bits(tab[a[lane].bits()]);
          }
        } else {
          for (int lane = 0; lane < pfx; ++lane) {
            d[lane] = Float16(cvt[a[lane].bits()] + fs);
          }
        }
      }
    }
  } else {
    for (int rep = 0; rep < cfg.repeat; ++rep) {
      const std::int64_t d = rep * cfg.dst_rep_stride;
      const std::int64_t a = rep * cfg.src0_rep_stride;
      for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
        if (!cfg.mask.lane(lane)) continue;
        dst.at(d + lane) = src.at(a + lane) + s;
      }
    }
  }
  charge("vadds", cfg);
}

void VectorUnit::muls(Span<Float16> dst, Span<Float16> src, Float16 s,
                      const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src, cfg, cfg.src0_rep_stride);
  const int pfx = prefix_lanes(cfg.mask);
  if (pfx >= 0) {
    if (pfx > 0) {
      check_extent(dst, cfg, cfg.dst_rep_stride, pfx);
      check_extent(src, cfg, cfg.src0_rep_stride, pfx);
      Float16* const dp = dst.data();
      const Float16* const ap = src.data();
      const std::uint16_t* const tab = scalar_op_table('*', s.bits());
      const float* const cvt = detail::f16_to_f32_table();
      const float fs = s.to_float();
      for (int rep = 0; rep < cfg.repeat; ++rep) {
        Float16* const d = dp + rep * cfg.dst_rep_stride;
        const Float16* const a = ap + rep * cfg.src0_rep_stride;
        if (tab != nullptr) {
          for (int lane = 0; lane < pfx; ++lane) {
            d[lane] = Float16::from_bits(tab[a[lane].bits()]);
          }
        } else {
          for (int lane = 0; lane < pfx; ++lane) {
            d[lane] = Float16(cvt[a[lane].bits()] * fs);
          }
        }
      }
    }
  } else {
    for (int rep = 0; rep < cfg.repeat; ++rep) {
      const std::int64_t d = rep * cfg.dst_rep_stride;
      const std::int64_t a = rep * cfg.src0_rep_stride;
      for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
        if (!cfg.mask.lane(lane)) continue;
        dst.at(d + lane) = src.at(a + lane) * s;
      }
    }
  }
  charge("vmuls", cfg);
}

void VectorUnit::cmpv_eq(Span<Float16> dst, Span<Float16> src0,
                         Span<Float16> src1, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(src0, cfg, cfg.src0_rep_stride);
  validate(src1, cfg, cfg.src1_rep_stride);
  const Float16 one(1.0f);
  const Float16 zero(0.0f);
  const int pfx = prefix_lanes(cfg.mask);
  if (pfx >= 0) {
    if (pfx > 0) {
      check_extent(dst, cfg, cfg.dst_rep_stride, pfx);
      check_extent(src0, cfg, cfg.src0_rep_stride, pfx);
      check_extent(src1, cfg, cfg.src1_rep_stride, pfx);
      Float16* const dp = dst.data();
      const Float16* const ap = src0.data();
      const Float16* const bp = src1.data();
      for (int rep = 0; rep < cfg.repeat; ++rep) {
        Float16* const d = dp + rep * cfg.dst_rep_stride;
        const Float16* const a = ap + rep * cfg.src0_rep_stride;
        const Float16* const b = bp + rep * cfg.src1_rep_stride;
        for (int lane = 0; lane < pfx; ++lane) {
          d[lane] = (a[lane] == b[lane]) ? one : zero;
        }
      }
    }
  } else {
    for (int rep = 0; rep < cfg.repeat; ++rep) {
      const std::int64_t d = rep * cfg.dst_rep_stride;
      const std::int64_t a = rep * cfg.src0_rep_stride;
      const std::int64_t b = rep * cfg.src1_rep_stride;
      for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
        if (!cfg.mask.lane(lane)) continue;
        dst.at(d + lane) =
            (src0.at(a + lane) == src1.at(b + lane)) ? one : zero;
      }
    }
  }
  charge("vcmpv_eq", cfg);
}

void VectorUnit::sel(Span<Float16> dst, Span<Float16> cond, Span<Float16> a,
                     Span<Float16> b, const VecConfig& cfg) {
  validate(dst, cfg, cfg.dst_rep_stride);
  validate(cond, cfg, cfg.src0_rep_stride);
  validate(a, cfg, cfg.src0_rep_stride);
  validate(b, cfg, cfg.src1_rep_stride);
  for (int rep = 0; rep < cfg.repeat; ++rep) {
    const std::int64_t d = rep * cfg.dst_rep_stride;
    const std::int64_t ca = rep * cfg.src0_rep_stride;
    const std::int64_t cb = rep * cfg.src1_rep_stride;
    for (int lane = 0; lane < arch_.vector_lanes; ++lane) {
      if (!cfg.mask.lane(lane)) continue;
      const bool c = !cond.at(ca + lane).is_zero();
      dst.at(d + lane) = c ? a.at(ca + lane) : b.at(cb + lane);
    }
  }
  charge("vsel", cfg);
}

}  // namespace davinci
