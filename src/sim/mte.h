// Memory Transfer Engine: explicit data movement between global memory and
// the scratch-pad buffers (arrows 1 -> 2, 1 -> 8, 8 -> 1, 2 -> 8 ... in
// Figure 4 of the paper). Transfers pay a startup latency plus a bandwidth
// term, and strided (2-D) transfers pay an extra per-burst cost -- which is
// what makes halo reloads and scattered stores visible in the cycle counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "arch/cost_model.h"
#include "common/check.h"
#include "common/float16.h"
#include "sim/fault.h"
#include "sim/pipe_schedule.h"
#include "sim/scratch.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace davinci {

class Mte {
 public:
  Mte(const CostModel& cost, CycleStats* stats, Trace* trace = nullptr,
      Profile* profile = nullptr, PipeScheduler* sched = nullptr)
      : cost_(cost), stats_(stats), trace_(trace), profile_(profile),
        sched_(sched) {}

  // Attaches/detaches the core's fault stream (resilient runs only).
  void set_fault_state(CoreFaultState* fault) { fault_ = fault; }

  // Contiguous copy of `count` elements. Exactly the legal datapaths are
  // accepted (see allowed()).
  template <typename T>
  void copy(Span<T> dst, Span<T> src, std::int64_t count) {
    DV_CHECK(allowed(src.kind(), dst.kind()))
        << "no MTE path " << to_string(src.kind()) << " -> "
        << to_string(dst.kind());
    DV_CHECK_LE(count, src.size());
    DV_CHECK_LE(count, dst.size());
    const std::int64_t moved = fault_ ? fault_->admit_transfer(count) : count;
    // moved <= count <= both span sizes, so the bulk move is in bounds.
    std::memcpy(dst.data(), src.data(),
                static_cast<std::size_t>(moved) * sizeof(T));
    if (fault_) {
      fault_->on_landing(dst.kind(), reinterpret_cast<std::byte*>(dst.data()),
                         moved * static_cast<std::int64_t>(sizeof(T)));
      // The store-path CRC covers the *addressed* region as it now stands
      // plus the delivered length, so a truncated transfer hashes
      // differently from a complete one -- and from a truncation of a
      // different length, even when the region contents coincide (the
      // correct prefix grows monotonically across retries).
      if (dst.kind() == BufferKind::kGlobal && fault_->crc_enabled()) {
        fault_->crc_update(dst.data(),
                           count * static_cast<std::int64_t>(sizeof(T)));
        fault_->crc_note(static_cast<std::uint64_t>(moved));
      }
    }
    charge(src.kind(), dst.kind(), count * static_cast<std::int64_t>(sizeof(T)),
           /*bursts=*/1);
  }

  // 2-D strided copy: `rows` bursts of `row_elems` elements; operand
  // offsets advance by the respective stride between bursts.
  template <typename T>
  void copy_2d(Span<T> dst, std::int64_t dst_stride, Span<T> src,
               std::int64_t src_stride, std::int64_t rows,
               std::int64_t row_elems) {
    DV_CHECK(allowed(src.kind(), dst.kind()))
        << "no MTE path " << to_string(src.kind()) << " -> "
        << to_string(dst.kind());
    DV_CHECK_GE(rows, 0);
    DV_CHECK_GE(row_elems, 0);
    const std::int64_t total = rows * row_elems;
    const std::int64_t moved = fault_ ? fault_->admit_transfer(total) : total;
    if (moved > 0) {
      // One bounds check over the touched strided extent (exactly what the
      // per-element at() accesses enforced), then burst-wise memmove
      // (operands may overlap within one buffer).
      DV_CHECK_GE(dst_stride, 0);
      DV_CHECK_GE(src_stride, 0);
      const std::int64_t last = (moved - 1) / row_elems;
      const std::int64_t tail = moved - last * row_elems;
      std::int64_t dneed = last * dst_stride + tail;
      std::int64_t sneed = last * src_stride + tail;
      if (last >= 1) {
        dneed = std::max(dneed, (last - 1) * dst_stride + row_elems);
        sneed = std::max(sneed, (last - 1) * src_stride + row_elems);
      }
      DV_CHECK_LE(dneed, dst.size());
      DV_CHECK_LE(sneed, src.size());
      std::int64_t copied = 0;
      for (std::int64_t r = 0; r <= last; ++r) {
        const std::int64_t burst =
            std::min<std::int64_t>(row_elems, moved - copied);
        std::memmove(dst.data() + r * dst_stride, src.data() + r * src_stride,
                     static_cast<std::size_t>(burst) * sizeof(T));
        copied += burst;
      }
    }
    if (fault_) {
      if (rows > 0 && row_elems > 0) {
        const std::int64_t extent = (rows - 1) * dst_stride + row_elems;
        fault_->on_landing(dst.kind(),
                           reinterpret_cast<std::byte*>(dst.data()),
                           extent * static_cast<std::int64_t>(sizeof(T)));
      }
      if (dst.kind() == BufferKind::kGlobal && fault_->crc_enabled()) {
        for (std::int64_t r = 0; r < rows; ++r) {
          fault_->crc_update(dst.data() + r * dst_stride,
                             row_elems * static_cast<std::int64_t>(sizeof(T)));
        }
        fault_->crc_note(static_cast<std::uint64_t>(moved));
      }
    }
    charge(src.kind(), dst.kind(),
           rows * row_elems * static_cast<std::int64_t>(sizeof(T)), rows);
  }

  // L0C (fp32) -> UB (fp16) converting copy: models the vconv-on-the-way
  // path used to drain Cube results.
  void copy_convert(Span<Float16> dst, Span<float> src, std::int64_t count) {
    DV_CHECK(src.kind() == BufferKind::kL0C &&
             dst.kind() == BufferKind::kUnified)
        << "converting copy is L0C -> UB only";
    DV_CHECK_LE(count, src.size());
    DV_CHECK_LE(count, dst.size());
    const std::int64_t moved = fault_ ? fault_->admit_transfer(count) : count;
    for (std::int64_t i = 0; i < moved; ++i) dst.at(i) = Float16(src.at(i));
    if (fault_) {
      fault_->on_landing(dst.kind(), reinterpret_cast<std::byte*>(dst.data()),
                         moved * 2);
    }
    charge(src.kind(), dst.kind(), count * 4, /*bursts=*/1);
  }

  // Strided converting drain: `rows` bursts of `row_elems`, converting
  // fp32 -> fp16 in flight (gathering one fractal column of the L0C grid
  // per burst).
  void copy_convert_2d(Span<Float16> dst, std::int64_t dst_stride,
                       Span<float> src, std::int64_t src_stride,
                       std::int64_t rows, std::int64_t row_elems) {
    DV_CHECK(src.kind() == BufferKind::kL0C &&
             dst.kind() == BufferKind::kUnified)
        << "converting copy is L0C -> UB only";
    DV_CHECK_GE(rows, 0);
    const std::int64_t total = rows * row_elems;
    const std::int64_t moved = fault_ ? fault_->admit_transfer(total) : total;
    std::int64_t copied = 0;
    for (std::int64_t r = 0; r < rows && copied < moved; ++r) {
      for (std::int64_t i = 0; i < row_elems && copied < moved; ++i) {
        dst.at(r * dst_stride + i) = Float16(src.at(r * src_stride + i));
        ++copied;
      }
    }
    if (fault_ && rows > 0 && row_elems > 0) {
      const std::int64_t extent = (rows - 1) * dst_stride + row_elems;
      fault_->on_landing(dst.kind(), reinterpret_cast<std::byte*>(dst.data()),
                         extent * 2);
    }
    charge(src.kind(), dst.kind(), rows * row_elems * 4, rows);
  }

 private:
  static bool allowed(BufferKind src, BufferKind dst) {
    using B = BufferKind;
    // Paths in Figure 4: GM <-> L1, GM <-> UB, L1 -> UB (plain copy; the
    // transforming variant is the SCU's Im2Col), UB -> L1, L0C <-> UB,
    // L1 -> L0A/L0B (plain fractal load for Cube operands).
    if (src == B::kGlobal && (dst == B::kL1 || dst == B::kUnified))
      return true;
    if (dst == B::kGlobal && (src == B::kL1 || src == B::kUnified))
      return true;
    if (src == B::kL1 &&
        (dst == B::kUnified || dst == B::kL0A || dst == B::kL0B))
      return true;
    if (src == B::kUnified && dst == B::kL1) return true;
    if (src == B::kL0C && dst == B::kUnified) return true;
    if (src == B::kUnified && dst == B::kL0C) return true;
    return false;
  }

  // Route a transfer's bytes into the MemTraffic counter matching its
  // src/dst buffer pair (see allowed() for the legal paths).
  void route_bytes(BufferKind src, BufferKind dst, std::int64_t bytes) {
    using B = BufferKind;
    MemTraffic& t = stats_->traffic;
    if (src == B::kGlobal) {
      (dst == B::kL1 ? t.gm_to_l1 : t.gm_to_ub) += bytes;
    } else if (dst == B::kGlobal) {
      (src == B::kL1 ? t.l1_to_gm : t.ub_to_gm) += bytes;
    } else if (src == B::kL1) {
      (dst == B::kUnified ? t.l1_to_ub : t.l1_to_l0) += bytes;
    } else if (src == B::kUnified) {
      (dst == B::kL1 ? t.ub_to_l1 : t.ub_to_l0c) += bytes;
    } else if (src == B::kL0C) {
      t.l0c_to_ub += bytes;
    }
  }

  void charge(BufferKind src, BufferKind dst, std::int64_t bytes,
              std::int64_t bursts) {
    stats_->mte_transfers += 1;
    stats_->mte_bytes += bytes;
    route_bytes(src, dst, bytes);
    const std::int64_t cycles = cost_.mte_copy(bytes, bursts);
    stats_->mte_cycles += cycles;
    // A transfer landing in global memory is an MTE-out (store) interval
    // on the overlap timeline; everything else feeds the compute side.
    std::int64_t start = -1;
    if (sched_) {
      const Pipe pipe =
          dst == BufferKind::kGlobal ? Pipe::kMteOut : Pipe::kMteIn;
      start = sched_->issue(pipe, cycles).start;
    }
    // Occupancy: payload bandwidth cycles vs charged cycles -- the
    // fraction of the transfer time not spent on startup latency or
    // per-burst (strided-row) overhead.
    const std::int64_t payload = ceil_div(bytes, cost_.mte_bytes_per_cycle);
    if (profile_) {
      profile_->mte.instrs += 1;
      profile_->mte.slots_used += payload;
      profile_->mte.slots_capacity += cycles;
    }
    if (trace_ && trace_->enabled()) {
      trace_->record(TraceKind::kMte,
                     std::string(to_string(src)) + "->" + to_string(dst) +
                         " bytes=" + std::to_string(bytes) +
                         " bursts=" + std::to_string(bursts),
                     cycles, payload, cycles, start);
    }
  }

  const CostModel& cost_;
  CycleStats* stats_;
  Trace* trace_;
  Profile* profile_ = nullptr;
  PipeScheduler* sched_ = nullptr;
  CoreFaultState* fault_ = nullptr;
};

}  // namespace davinci
