// Instruction descriptors of the async instruction-stream VM.
//
// The serving worker used to run each coalesced batch to completion
// before launching the next, so the modeled device drained between
// batches: MTE-in sat idle exactly when it could have been prefetching
// batch k+1's tiles under batch k's vector/store tail. The VM closes
// that gap (docs/ASYNC_VM.md). Device::run still executes each launch
// functionally exactly as before -- outputs are bit-identical by
// construction -- but when a VmStream is attached the launch's captured
// per-core pipe timeline is decomposed into per-(core, pipe) VmOps and
// handed to the stream scheduler, which places them on persistent
// cross-launch resource tracks. `device_cycles` for a request trace then
// becomes the cross-batch overlapped makespan instead of a sum of
// per-batch makespans.
//
// Resources the dependency tracker covers:
//  * every (core, pipe) execution track -- an op cannot start before the
//    track's previous occupant ends (ports are exclusive);
//  * UB slots, via the bounded in-flight window -- launch k may not
//    start before launch k-W completed (W = in_flight), so at most W
//    launches hold UB tile slots at once;
//  * scratch/output buffers, via read/write BufferIds -- RAW, WAR and
//    WAW hazards each floor the dependent launch's start at the
//    conflicting launch's completion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/pipe_schedule.h"

namespace davinci::vm {

// Opaque buffer identity for dependency tracking. Kernel drivers use the
// input tensors' data addresses for reads; launch outputs get a fresh
// unique id (serving results are never re-read by a later launch, and a
// recycled arena address must not alias a retired buffer).
using BufferId = std::uint64_t;

// One pipe's share of a captured launch on one core, in launch-local
// cycles (the launch's own schedule started at 0).
struct PipeWork {
  std::int64_t busy = 0;        // charged interval cycles
  std::int64_t flag = 0;        // flag-wait / barrier stall cycles
  std::int64_t first_busy = -1;  // start of the first interval (-1: none)
  std::int64_t last_busy = 0;    // end of the last interval
};

// One core's captured timeline: the per-pipe totals and contact points,
// plus (only when the stream captures for trace export) the full
// interval list and the UB tile marks.
struct CoreWork {
  int core = 0;
  std::int64_t makespan = 0;  // the core's launch-local makespan
  PipeWork pipes[PipeScheduler::kNumPipes];
  std::vector<PipeScheduler::LoggedInterval> intervals;
  std::vector<std::pair<std::int64_t, int>> tile_marks;
};

// One device launch, captured after functional execution, before stream
// placement. The VM decomposes it into per-(core, pipe) ops; the rigid
// launch-local offsets between those ops ARE the launch's intra-kernel
// dependency structure, so shifting all of them by one delta preserves
// every stage dependency the kernel declared.
struct VmLaunch {
  std::string label;             // e.g. "maxpool 3x3/2 impl=im2col"
  std::vector<BufferId> reads;   // input buffers (RAW/WAR tracking)
  std::vector<BufferId> writes;  // output buffers (WAR/WAW tracking)
  std::vector<CoreWork> cores;   // used cores only
  std::int64_t makespan = 0;     // max over cores of CoreWork::makespan
};

// One issued op in the stream's issue log: where a (core, pipe) lane of
// a launch actually landed on the shared timeline. The deterministic-
// replay regression test compares these logs run to run.
struct IssueRecord {
  std::int64_t launch = 0;  // stream-assigned launch sequence number
  int core = 0;
  Pipe pipe = Pipe::kSync;
  std::int64_t start = 0;  // stream cycles (scheduled, not launch-local)
  std::int64_t end = 0;
  std::int64_t busy = 0;
};

}  // namespace davinci::vm
