// The instruction-stream VM scheduler (docs/ASYNC_VM.md).
//
// A VmStream owns the cross-launch timeline: persistent per-(core, pipe)
// resource tracks, a buffer dependency table, and the bounded in-flight
// window. enqueue() places a captured launch at the earliest cycle that
// respects every dependency -- the placement is pure integer arithmetic
// over the enqueue order, so a deterministic launch order (the serving
// worker's EDF order) yields a bit-identical schedule run to run.
//
// Placement rule (rigid shift): a launch's ops keep their launch-local
// offsets and the whole launch shifts right by
//
//   delta = max( per-(core, pipe) track:  track_end - op.first_busy,
//                window:   completion of launch k-W  (W = in_flight),
//                buffers:  RAW/WAR/WAW completion floors, 0 )
//
// so no two ops overlap on a track, at most W launches are in flight,
// and hazards serialize. Overlap between consecutive launches arises
// exactly when a launch's tail pipes (Vector / MTE-out) outlive its
// early pipes (MTE-in / SCU) and the next launch touches those tail
// pipes late -- the producer/consumer overlap the paper exploits inside
// a kernel, extended across the whole request stream.
//
// Cross-batch cycle attribution keeps the PR-4 invariant: for every
// (core, pipe) track, busy + wait + flag + idle == makespan exactly
// (aggregated per pipe over `tracks` cores in Stats::streams). A flag
// stall that lands under another launch's busy time counts as busy --
// the pipe was genuinely occupied, not stalled.
//
// Thread safety: every public method takes the internal mutex; the
// serving worker enqueues while stats()/issue_log() scrape from other
// threads.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/vm/instruction.h"

namespace davinci::vm {

struct VmStreamOptions {
  // Bounded in-flight window: how many launches may overlap (hold UB
  // tile slots) at once. 1 = strictly serial launches; the serving
  // default is 2 (classic double buffering at launch granularity).
  int in_flight = 2;
  // Retain per-launch placed intervals and tile marks for the Chrome
  // trace exporter (bounded; off by default to keep long streams cheap).
  bool capture = false;
};

// A placed launch retained for trace export (capture mode only).
struct PlacedLaunch {
  std::int64_t seq = 0;       // stream-assigned launch sequence number
  std::string label;
  std::int64_t start = 0;     // stream cycles
  std::int64_t end = 0;
  std::vector<CoreWork> cores;  // intervals/tile marks still launch-local
};

class VmStream {
 public:
  // Per-pipe aggregate over all (core, pipe) tracks of that pipe.
  // Invariant: busy + wait + flag + idle == makespan * tracks.
  struct PipeStream {
    std::int64_t tracks = 0;  // cores that ever ran this pipe
    std::int64_t busy = 0;
    std::int64_t wait = 0;
    std::int64_t flag = 0;
    std::int64_t idle = 0;
    double occupancy = 0.0;  // busy / (makespan * tracks)
  };

  struct Stats {
    std::int64_t launches = 0;
    std::int64_t makespan = 0;        // cross-batch overlapped makespan
    std::int64_t serial_sum = 0;      // sum of per-launch makespans
    std::int64_t overlap_cycles = 0;  // serial_sum - makespan (>= 0)
    std::int64_t window_stalls = 0;   // placements floored by the window
    std::int64_t hazard_stalls = 0;   // placements floored by a buffer dep
    int in_flight = 0;                // the configured window
    PipeStream streams[PipeScheduler::kNumPipes];
  };

  explicit VmStream(VmStreamOptions opts = {});

  // Places `launch` at the earliest dependency-respecting cycle and
  // returns its scheduled start. The issue log gains one record per
  // (core, pipe) op with busy work.
  std::int64_t enqueue(VmLaunch launch);

  Stats stats() const;

  // The per-op issue log, in issue order (launch order, then core, then
  // pipe). Bounded by kMaxIssueRecords; issue_log_truncated() reports an
  // overflow (records past the cap are dropped, placement stays exact).
  std::vector<IssueRecord> issue_log() const;
  bool issue_log_truncated() const;

  // Compact fingerprint of the issue log ("launch:core:pipe:start:end"
  // lines) for the deterministic-replay regression test.
  std::string issue_signature() const;

  // Placed launches for the trace exporter; empty unless capture is on.
  std::vector<PlacedLaunch> placements() const;

  // Forgets the whole timeline (tracks, window, buffer table, logs,
  // stats) -- the warmup path re-zeroes the stream clock with this.
  void reset();

  const VmStreamOptions& options() const { return opts_; }

  // Bounds: the issue log and capture list stop growing past these (the
  // schedule itself stays exact).
  static constexpr std::size_t kMaxIssueRecords = 1 << 18;
  static constexpr std::size_t kMaxPlacedLaunches = 256;

 private:
  struct Track {
    std::int64_t end = 0;        // end of the last placed interval
    std::int64_t busy = 0;       // total placed busy cycles
    std::int64_t flag = 0;       // total launch-attributed flag cycles
    bool used = false;
  };

  struct BufferState {
    std::int64_t last_write_end = 0;  // completion of the last writer
    std::int64_t last_read_end = 0;   // completion of the last reader
  };

  static int track_index(int core, int pipe) {
    return core * PipeScheduler::kNumPipes + pipe;
  }

  VmStreamOptions opts_;

  mutable std::mutex mu_;
  std::vector<Track> tracks_;           // indexed by track_index
  int max_core_ = -1;                   // highest core seen
  std::deque<std::int64_t> window_;     // completions of in-flight launches
  std::unordered_map<BufferId, BufferState> buffers_;
  std::int64_t seq_ = 0;
  std::int64_t makespan_ = 0;
  std::int64_t serial_sum_ = 0;
  std::int64_t window_stalls_ = 0;
  std::int64_t hazard_stalls_ = 0;
  std::vector<IssueRecord> issue_log_;
  bool issue_log_truncated_ = false;
  std::vector<PlacedLaunch> placed_;
};

}  // namespace davinci::vm
