#include "sim/vm/stream.h"

#include <algorithm>

#include "common/check.h"

namespace davinci::vm {

VmStream::VmStream(VmStreamOptions opts) : opts_(opts) {
  DV_CHECK_GE(opts_.in_flight, 1);
}

std::int64_t VmStream::enqueue(VmLaunch launch) {
  std::lock_guard<std::mutex> lock(mu_);

  for (const CoreWork& cw : launch.cores) {
    DV_CHECK_GE(cw.core, 0);
    if (cw.core > max_core_) max_core_ = cw.core;
  }
  tracks_.resize(
      static_cast<std::size_t>(track_index(max_core_ + 1, 0)));

  // Earliest feasible shift: every (core, pipe) op of the launch must
  // land at or after its track's last occupant.
  std::int64_t delta = 0;
  for (const CoreWork& cw : launch.cores) {
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      const PipeWork& pw = cw.pipes[pi];
      if (pw.first_busy < 0) continue;
      const Track& t = tracks_[static_cast<std::size_t>(
          track_index(cw.core, pi))];
      delta = std::max(delta, t.end - pw.first_busy);
    }
  }

  // UB-slot window: at most in_flight launches may overlap, so this
  // launch waits for launch k-W to complete.
  if (static_cast<int>(window_.size()) >= opts_.in_flight) {
    const std::int64_t floor =
        window_[window_.size() - static_cast<std::size_t>(opts_.in_flight)];
    if (floor > delta) {
      delta = floor;
      window_stalls_ += 1;
    }
  }

  // Buffer hazards: RAW (our reads after their writes), WAR and WAW
  // (our writes after their reads/writes).
  {
    std::int64_t floor = 0;
    for (BufferId id : launch.reads) {
      auto it = buffers_.find(id);
      if (it != buffers_.end()) {
        floor = std::max(floor, it->second.last_write_end);
      }
    }
    for (BufferId id : launch.writes) {
      auto it = buffers_.find(id);
      if (it != buffers_.end()) {
        floor = std::max(floor, std::max(it->second.last_write_end,
                                         it->second.last_read_end));
      }
    }
    if (floor > delta) {
      delta = floor;
      hazard_stalls_ += 1;
    }
  }

  const std::int64_t start = delta;
  const std::int64_t end = delta + launch.makespan;
  seq_ += 1;

  // Commit: shift every op onto its track and log the issue.
  for (const CoreWork& cw : launch.cores) {
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      const PipeWork& pw = cw.pipes[pi];
      if (pw.first_busy < 0) continue;
      Track& t =
          tracks_[static_cast<std::size_t>(track_index(cw.core, pi))];
      DV_CHECK_GE(delta + pw.first_busy, t.end)
          << "VM op overlaps its track";
      t.used = true;
      t.busy += pw.busy;
      t.flag += pw.flag;
      t.end = std::max(t.end, delta + pw.last_busy);
      if (issue_log_.size() < kMaxIssueRecords) {
        issue_log_.push_back({seq_, cw.core, static_cast<Pipe>(pi),
                              delta + pw.first_busy, delta + pw.last_busy,
                              pw.busy});
      } else {
        issue_log_truncated_ = true;
      }
    }
  }

  for (BufferId id : launch.reads) {
    BufferState& b = buffers_[id];
    b.last_read_end = std::max(b.last_read_end, end);
  }
  for (BufferId id : launch.writes) {
    BufferState& b = buffers_[id];
    b.last_write_end = std::max(b.last_write_end, end);
  }

  window_.push_back(end);
  if (static_cast<int>(window_.size()) > opts_.in_flight) {
    window_.pop_front();
  }

  makespan_ = std::max(makespan_, end);
  serial_sum_ += launch.makespan;

  if (opts_.capture && placed_.size() < kMaxPlacedLaunches) {
    PlacedLaunch p;
    p.seq = seq_;
    p.label = std::move(launch.label);
    p.start = start;
    p.end = end;
    p.cores = std::move(launch.cores);
    placed_.push_back(std::move(p));
  }
  return start;
}

VmStream::Stats VmStream::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.launches = seq_;
  s.makespan = makespan_;
  s.serial_sum = serial_sum_;
  s.overlap_cycles = serial_sum_ - makespan_;
  s.window_stalls = window_stalls_;
  s.hazard_stalls = hazard_stalls_;
  s.in_flight = opts_.in_flight;
  for (int c = 0; c <= max_core_; ++c) {
    for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
      const Track& t =
          tracks_[static_cast<std::size_t>(track_index(c, pi))];
      if (!t.used) continue;
      PipeStream& ps = s.streams[pi];
      // Per-track buckets against the stream makespan: flag cycles that
      // fell under another launch's busy time are clamped into busy (the
      // pipe was occupied, not stalled), so the four buckets sum exactly
      // to the makespan for every track -- the PR-4 invariant, held
      // across batch boundaries.
      const std::int64_t flag = std::min(t.flag, t.end - t.busy);
      ps.tracks += 1;
      ps.busy += t.busy;
      ps.flag += flag;
      ps.wait += t.end - t.busy - flag;
      ps.idle += makespan_ - t.end;
    }
  }
  for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
    PipeStream& ps = s.streams[pi];
    const double span =
        static_cast<double>(makespan_) * static_cast<double>(ps.tracks);
    ps.occupancy = span > 0.0 ? static_cast<double>(ps.busy) / span : 0.0;
  }
  return s;
}

std::vector<IssueRecord> VmStream::issue_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return issue_log_;
}

bool VmStream::issue_log_truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return issue_log_truncated_;
}

std::string VmStream::issue_signature() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string sig;
  sig.reserve(issue_log_.size() * 24);
  for (const IssueRecord& r : issue_log_) {
    sig += std::to_string(r.launch) + ":" + std::to_string(r.core) + ":" +
           std::to_string(static_cast<int>(r.pipe)) + ":" +
           std::to_string(r.start) + ":" + std::to_string(r.end) + "\n";
  }
  return sig;
}

std::vector<PlacedLaunch> VmStream::placements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return placed_;
}

void VmStream::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.clear();
  max_core_ = -1;
  window_.clear();
  buffers_.clear();
  seq_ = 0;
  makespan_ = 0;
  serial_sum_ = 0;
  window_stalls_ = 0;
  hazard_stalls_ = 0;
  issue_log_.clear();
  issue_log_truncated_ = false;
  placed_.clear();
}

}  // namespace davinci::vm
