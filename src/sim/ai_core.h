// One DaVinci AI Core (Figure 4): Cube, Vector and Scalar units, the SCU,
// and the private scratch-pad buffers, with a shared cycle ledger.
//
// Kernels (src/kernels/) are written against this class the way CCE-C
// kernels are written against the hardware ISA: explicit buffer
// allocation, explicit MTE transfers, explicit instruction issue. The
// composite v*_flat helpers model the scalar loop AKG emits around vector
// instructions when a tile needs more than `max_repeat` repeats.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/float16.h"
#include "sim/cube_unit.h"
#include "sim/fault.h"
#include "sim/mte.h"
#include "sim/pipe_schedule.h"
#include "sim/scratch.h"
#include "sim/scu.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "sim/vector_unit.h"

namespace davinci {

class AiCore {
 public:
  AiCore(int id, const ArchConfig& arch, const CostModel& cost);

  AiCore(const AiCore&) = delete;
  AiCore& operator=(const AiCore&) = delete;

  int id() const { return id_; }
  const ArchConfig& arch() const { return arch_; }
  const CostModel& cost() const { return cost_; }
  CycleStats& stats() { return stats_; }
  // Per-instruction occupancy counters (always recorded; see sim/stats.h).
  Profile& profile() { return profile_; }
  const Profile& profile() const { return profile_; }

  ScratchBuffer& l1() { return l1_; }
  ScratchBuffer& l0a() { return l0a_; }
  ScratchBuffer& l0b() { return l0b_; }
  ScratchBuffer& l0c() { return l0c_; }
  ScratchBuffer& ub() { return ub_; }

  VectorUnit& vec() { return vec_; }
  Mte& mte() { return mte_; }
  Scu& scu() { return scu_; }
  CubeUnit& cube() { return cube_; }

  // Optional instruction trace (disabled by default; see sim/trace.h).
  Trace& trace() { return trace_; }

  // Pipe-overlap timeline of this core (see sim/pipe_schedule.h). Every
  // charged cost is placed on it; kernels that never open a stage keep a
  // makespan equal to their serial cycle total.
  PipeScheduler& sched() { return sched_; }
  const PipeScheduler& sched() const { return sched_; }

  // Opens a pipelined stage on `pipe`: until end_stage(), every cost this
  // core charges queues on that pipe in issue order, starting no earlier
  // than `after` (a completion event returned by a previous end_stage; 0 =
  // no dependency). Combine multiple dependencies with std::max. A nonzero
  // dependency charges one pipe_barrier_cycles flag-wait, the
  // set_flag/wait_flag pair a CCE kernel issues at that point.
  void begin_stage(Pipe pipe, PipeScheduler::Event after = 0);
  // Closes the stage and returns its completion event.
  PipeScheduler::Event end_stage();

  // Charges the per-core kernel-launch overhead (called by Device at the
  // start of a run; on the Sync row of the overlap timeline).
  void launch(std::int64_t cycles);

  // Frees every scratch allocation (tile-iteration boundary).
  void reset_scratch();
  // Overwrites every scratch buffer with `pattern` (see
  // ScratchBuffer::scrub); a host-side simulation step, charges no cycles.
  void scrub_scratch(std::byte pattern);
  void reset_stats() {
    stats_ = CycleStats{};
    profile_ = Profile{};
    sched_.reset();
  }

  // Attaches (or detaches, with nullptr) a fault-injection stream to this
  // core and all its units. Owned by Device::run_resilient; a core with no
  // stream attached pays zero overhead.
  void set_fault_state(CoreFaultState* fault);
  CoreFaultState* fault_state() { return fault_; }

  // Charges the Scalar Unit for `iterations` loop iterations of control
  // flow / address arithmetic around other instructions.
  void scalar_loop(std::int64_t iterations);

  // Synchronization between dependent instructions on different pipes.
  void pipe_barrier();

  // --- Composite flat helpers over `n` contiguous UB elements ---
  // Each splits the operation into ceil(n / (128 * max_repeat)) full
  // instructions plus a masked tail, charging a scalar-loop iteration per
  // reissue after the first (the loop the repeat parameter cannot absorb).
  void vbin_flat(VecOp op, Span<Float16> dst, Span<Float16> src0,
                 Span<Float16> src1, std::int64_t n);
  void vdup_flat(Span<Float16> dst, Float16 value, std::int64_t n);
  void vadds_flat(Span<Float16> dst, Span<Float16> src, Float16 s,
                  std::int64_t n);
  void vmuls_flat(Span<Float16> dst, Span<Float16> src, Float16 s,
                  std::int64_t n);
  void vcmpv_eq_flat(Span<Float16> dst, Span<Float16> src0,
                     Span<Float16> src1, std::int64_t n);

 private:
  // Calls emit(element_offset, repeat, mask) for each instruction needed
  // to cover n contiguous elements; returns instructions issued.
  template <typename F>
  std::int64_t for_flat(std::int64_t n, F&& emit);

  int id_;
  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  Profile profile_;
  Trace trace_;
  PipeScheduler sched_;
  CoreFaultState* fault_ = nullptr;

  ScratchBuffer l1_;
  ScratchBuffer l0a_;
  ScratchBuffer l0b_;
  ScratchBuffer l0c_;
  ScratchBuffer ub_;

  VectorUnit vec_;
  Mte mte_;
  Scu scu_;
  CubeUnit cube_;
};

}  // namespace davinci
