#include "sim/prof_report.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

namespace davinci {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string fmt_num(const json::Value& v) {
  if (v.is_int()) return std::to_string(v.as_int());
  return fmt(v.as_double());
}

std::string pct_of(std::int64_t part, std::int64_t whole) {
  if (whole <= 0) return "0%";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                100.0 * static_cast<double>(part) /
                    static_cast<double>(whole));
  return buf;
}

std::int64_t int_or(const json::Value& obj, const char* key,
                    std::int64_t fallback) {
  const json::Value* v = obj.get(key);
  return (v != nullptr && v->is_int()) ? v->as_int() : fallback;
}

// --- Rendering ---------------------------------------------------------

void render_attribution(const json::Value& attr, std::string* out) {
  const std::int64_t horizon = int_or(attr, "horizon", 0);
  *out += "  attribution (horizon " + std::to_string(horizon) +
          " cycles, critical core " +
          std::to_string(int_or(attr, "critical_core", -1)) + "):\n";
  char line[160];
  std::snprintf(line, sizeof(line), "    %-6s %-8s %12s %12s %12s %12s\n",
                "core", "pipe", "busy", "wait", "flag", "idle");
  *out += line;
  for (const json::Value& core : attr.at("cores").as_array()) {
    const std::int64_t id = int_or(core, "core", -1);
    for (const auto& [pipe, b] : core.at("pipes").as_object()) {
      std::snprintf(
          line, sizeof(line),
          "    %-6lld %-8s %5lld (%s) %5lld (%s) %5lld (%s) %5lld (%s)\n",
          static_cast<long long>(id), pipe.c_str(),
          static_cast<long long>(int_or(b, "busy", 0)),
          pct_of(int_or(b, "busy", 0), horizon).c_str(),
          static_cast<long long>(int_or(b, "wait", 0)),
          pct_of(int_or(b, "wait", 0), horizon).c_str(),
          static_cast<long long>(int_or(b, "flag", 0)),
          pct_of(int_or(b, "flag", 0), horizon).c_str(),
          static_cast<long long>(int_or(b, "idle", 0)),
          pct_of(int_or(b, "idle", 0), horizon).c_str());
      *out += line;
    }
  }
  if (const json::Value* sum = attr.get("critical_path_summary")) {
    *out += "  critical path: " +
            std::to_string(int_or(*sum, "segments", 0)) + " segments, busy " +
            std::to_string(int_or(*sum, "busy_cycles", 0)) + " + stall " +
            std::to_string(int_or(*sum, "stall_cycles", 0)) + " = " +
            std::to_string(int_or(*sum, "busy_cycles", 0) +
                           int_or(*sum, "stall_cycles", 0)) +
            " cycles\n";
  }
}

void render_metrics_entry(const json::Value& e, std::string* out) {
  *out += "entry " + e.at("name").as_string() + "\n";
  const std::int64_t cycles = int_or(e, "cycles", 0);
  const std::int64_t serial = int_or(e, "cycles_serial", 0);
  *out += "  cycles " + std::to_string(cycles) + " (serial " +
          std::to_string(serial);
  if (cycles > 0 && serial > 0) {
    *out += ", overlap " +
            fmt(static_cast<double>(serial) / static_cast<double>(cycles)) +
            "x";
  }
  *out += "), cores_used " + std::to_string(int_or(e, "cores_used", 0)) + "\n";
  if (const json::Value* roof = e.get("roofline")) {
    *out += "  roofline: " + roof->at("class").as_string() +
            " (arith intensity " +
            fmt(roof->at("arithmetic_intensity").as_double()) +
            " lane-ops/GM-byte vs balance " +
            fmt(roof->at("machine_balance").as_double()) + "; achieved " +
            fmt(roof->at("achieved_gm_bytes_per_cycle").as_double()) +
            " of peak " +
            fmt(roof->at("peak_gm_bytes_per_cycle").as_double()) +
            " GM bytes/cycle/core)\n";
  }
  if (const json::Value* t = e.get("traffic")) {
    *out += "  traffic: gm_total " + std::to_string(int_or(*t, "gm_total", 0)) +
            " B, mte_total " + std::to_string(int_or(*t, "mte_total", 0)) +
            " B, im2col " + std::to_string(int_or(*t, "im2col_bytes", 0)) +
            " B, col2im " + std::to_string(int_or(*t, "col2im_bytes", 0)) +
            " B, ub_vector " +
            std::to_string(int_or(*t, "ub_vector_bytes", 0)) + " B\n";
  }
  if (const json::Value* attr = e.get("attribution")) {
    render_attribution(*attr, out);
  }
}

// Schema-v7 "serve" object (serve::Session::add_metrics). The v3
// robustness keys, the v5 "vm" object, the v6 p999 / hist /
// request_trace keys and the v7 "cluster" object are all optional, so
// v2..v6 documents still render.
void render_serve(const json::Value& s, std::string* out) {
  *out += "serve: " + std::to_string(int_or(s, "requests", 0)) +
          " requests in " + std::to_string(int_or(s, "launches", 0)) +
          " launches (" + std::to_string(int_or(s, "batches", 0)) +
          " batches";
  if (const json::Value* ab = s.get("avg_batch")) {
    *out += ", avg batch " + fmt_num(*ab);
  }
  *out += ", failed " + std::to_string(int_or(s, "failed", 0)) + ")\n";
  if (s.get("expired") != nullptr || s.get("shed") != nullptr) {
    *out += "  overload: expired " + std::to_string(int_or(s, "expired", 0)) +
            ", shed " + std::to_string(int_or(s, "shed", 0)) +
            ", rejected " + std::to_string(int_or(s, "rejected", 0)) +
            ", cancelled " + std::to_string(int_or(s, "cancelled", 0));
    if (const json::Value* pol = s.get("overload_policy")) {
      *out += " (policy " + pol->as_string() + ")";
    }
    *out += ", watchdog alarms " +
            std::to_string(int_or(s, "watchdog_alarms", 0)) + "\n";
  }
  if (const json::Value* r = s.get("resilience")) {
    const bool enabled =
        r->get("enabled") != nullptr && r->at("enabled").as_bool();
    *out += "  resilience: " + std::string(enabled ? "on" : "off") +
            ", degraded launches " +
            std::to_string(int_or(*r, "degraded_launches", 0)) +
            ", bisections " + std::to_string(int_or(*r, "bisections", 0)) +
            ", poisoned " +
            std::to_string(int_or(*r, "poisoned_requests", 0)) +
            ", launch failures " +
            std::to_string(int_or(*r, "launch_failures", 0)) +
            ", quarantined cores " +
            std::to_string(int_or(*r, "quarantined_cores", 0)) + "\n";
    if (int_or(*r, "faults_injected", 0) > 0 ||
        int_or(*r, "retries", 0) > 0) {
      *out += "    faults: injected " +
              std::to_string(int_or(*r, "faults_injected", 0)) +
              ", detected " +
              std::to_string(int_or(*r, "faults_detected", 0)) +
              ", retries " + std::to_string(int_or(*r, "retries", 0)) +
              ", blocks redispatched " +
              std::to_string(int_or(*r, "blocks_redispatched", 0)) + "\n";
    }
  }
  if (const json::Value* pc = s.get("plan_cache")) {
    *out += "  plan cache: " + std::to_string(int_or(*pc, "hits", 0)) +
            " hits / " + std::to_string(int_or(*pc, "misses", 0)) +
            " misses";
    if (const json::Value* hr = pc->get("hit_rate")) {
      *out += " (" + fmt(hr->as_double() * 100.0) + "%)";
    }
    *out += ", " + std::to_string(int_or(*pc, "size", 0)) + "/" +
            std::to_string(int_or(*pc, "capacity", 0)) + " entries, " +
            std::to_string(int_or(*pc, "evictions", 0)) + " evictions\n";
  }
  if (const json::Value* q = s.get("queue")) {
    *out += "  queue: capacity " + std::to_string(int_or(*q, "capacity", 0)) +
            ", peak depth " + std::to_string(int_or(*q, "peak_depth", 0)) +
            ", backpressure waits " +
            std::to_string(int_or(*q, "backpressure_waits", 0)) + "\n";
  }
  if (const json::Value* lat = s.get("host_latency_us")) {
    *out += "  latency (host us): p50 " + fmt_num(lat->at("p50")) + ", p90 " +
            fmt_num(lat->at("p90")) + ", p99 " + fmt_num(lat->at("p99"));
    if (const json::Value* p999 = lat->get("p999")) {
      *out += ", p999 " + fmt_num(*p999);
    }
    *out += ", max " + fmt_num(lat->at("max"));
    if (const json::Value* h = lat->get("hist")) {
      *out += " (hist dropped " + std::to_string(int_or(*h, "dropped", 0)) +
              ")";
    }
    *out += "\n";
  }
  if (const json::Value* rt = s.get("request_trace")) {
    *out += "  request trace: " +
            std::to_string(int_or(*rt, "recorded", 0)) + " events (" +
            std::to_string(int_or(*rt, "dropped", 0)) +
            " dropped, ring capacity " +
            std::to_string(int_or(*rt, "capacity", 0)) + ")\n";
  }
  *out += "  device cycles total " +
          std::to_string(int_or(s, "device_cycles_total", 0)) + "\n";
  if (const json::Value* vm = s.get("vm")) {
    const bool enabled =
        vm->get("enabled") != nullptr && vm->at("enabled").as_bool();
    const std::int64_t makespan = int_or(*vm, "makespan", 0);
    const std::int64_t serial_sum = int_or(*vm, "serial_sum", 0);
    *out += "  vm: " + std::string(enabled ? "on" : "off") + ", in-flight " +
            std::to_string(int_or(*vm, "in_flight", 0)) + ", " +
            std::to_string(int_or(*vm, "launches", 0)) +
            " launches, makespan " + std::to_string(makespan) +
            " (serial sum " + std::to_string(serial_sum) + ", overlap " +
            std::to_string(int_or(*vm, "overlap_cycles", 0)) + " = " +
            pct_of(int_or(*vm, "overlap_cycles", 0), serial_sum) +
            "), stalls window " +
            std::to_string(int_or(*vm, "window_stalls", 0)) + " / hazard " +
            std::to_string(int_or(*vm, "hazard_stalls", 0)) + "\n";
    if (const json::Value* streams = vm->get("streams")) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    %-8s %6s %12s %12s %12s %12s %9s\n", "stream",
                    "tracks", "busy", "wait", "flag", "idle", "occupancy");
      *out += line;
      for (const auto& [pipe, b] : streams->as_object()) {
        const double occ = b.get("occupancy") != nullptr
                               ? b.at("occupancy").as_double()
                               : 0.0;
        std::snprintf(line, sizeof(line),
                      "    %-8s %6lld %12lld %12lld %12lld %12lld %8.1f%%\n",
                      pipe.c_str(),
                      static_cast<long long>(int_or(b, "tracks", 0)),
                      static_cast<long long>(int_or(b, "busy", 0)),
                      static_cast<long long>(int_or(b, "wait", 0)),
                      static_cast<long long>(int_or(b, "flag", 0)),
                      static_cast<long long>(int_or(b, "idle", 0)),
                      occ * 100.0);
        *out += line;
      }
    }
  }
  if (const json::Value* c = s.get("cluster")) {
    const std::int64_t devices = int_or(*c, "devices", 1);
    *out += "  cluster: " + std::to_string(devices) + " device" +
            (devices == 1 ? "" : "s");
    if (const json::Value* p = c->get("placement")) {
      *out += " (" + p->as_string() + " parallel)";
    }
    *out += ", " + std::to_string(int_or(*c, "sharded_launches", 0)) + "/" +
            std::to_string(int_or(*c, "launches", 0)) +
            " launches sharded, makespan " +
            std::to_string(int_or(*c, "makespan", 0)) + "\n";
    if (const json::Value* r = c->get("redistribution")) {
      *out += "    redistribution: " +
              std::to_string(int_or(*r, "transfers", 0)) + " transfers, " +
              std::to_string(int_or(*r, "bytes", 0)) + " bytes, " +
              std::to_string(int_or(*r, "cycles", 0)) +
              " cycles (busiest link " +
              std::to_string(int_or(*c, "link_busy_cycles", 0)) +
              " busy cycles)\n";
    }
    if (const json::Value* pd = c->get("per_device")) {
      if (devices > 1) {
        char line[160];
        std::snprintf(line, sizeof(line), "    %-6s %9s %9s %14s %12s\n",
                      "device", "launches", "blocks", "cycles",
                      "vm_makespan");
        *out += line;
        for (const json::Value& row : pd->as_array()) {
          std::snprintf(line, sizeof(line),
                        "    %-6lld %9lld %9lld %14lld %12lld\n",
                        static_cast<long long>(int_or(row, "device", 0)),
                        static_cast<long long>(int_or(row, "launches", 0)),
                        static_cast<long long>(int_or(row, "blocks", 0)),
                        static_cast<long long>(int_or(row, "cycles", 0)),
                        static_cast<long long>(int_or(row, "vm_makespan", 0)));
          *out += line;
        }
      }
    }
  }
}

void render_bench(const json::Value& doc, std::string* out) {
  *out += "bench " + doc.at("bench").as_string() + "\n";
  for (const json::Value& row : doc.at("rows").as_array()) {
    *out += "  ";
    bool first = true;
    for (const auto& [k, v] : row.as_object()) {
      if (!first) *out += " ";
      first = false;
      *out += k + "=";
      if (v.is_string()) {
        *out += v.as_string();
      } else if (v.is_bool()) {
        *out += v.as_bool() ? "true" : "false";
      } else if (v.is_number()) {
        *out += fmt_num(v);
      } else {
        *out += "?";
      }
    }
    *out += "\n";
  }
}

// --- Diffing -----------------------------------------------------------

// Cycle-like metrics where larger is strictly worse; only these gate the
// diff (see header).
bool gated_metric(const std::string& key) {
  static const std::set<std::string> kGated = {
      "cycles",  "cycles_serial", "busiest_unit_cycles",
      "pipelined_bound", "horizon", "makespan",
  };
  return kGated.count(key) > 0;
}

bool host_metric(const std::string& key) {
  return key.rfind("host", 0) == 0;
}

struct DiffWalker {
  const DiffOptions& opts;
  DiffResult result;

  double tolerance_for(const std::string& key) const {
    auto it = opts.per_metric.find(key);
    return it == opts.per_metric.end() ? opts.tol : it->second;
  }

  void note(const std::string& line) { result.report += line + "\n"; }

  void compare_number(const std::string& path, const std::string& key,
                      const json::Value& a, const json::Value& b) {
    if (host_metric(key) && !opts.include_host) return;
    result.compared += 1;
    const double av = a.as_double();
    const double bv = b.as_double();
    if (av == bv) return;
    const double tol = tolerance_for(key);
    const double base = std::abs(av);
    const double delta = bv - av;
    const double rel = base > 0.0 ? delta / base : (delta > 0 ? 1e9 : -1e9);
    const bool beyond = std::abs(delta) > base * tol;
    if (gated_metric(key) || (host_metric(key) && opts.include_host)) {
      if (delta > 0 && beyond) {
        result.regressed = true;
        result.regressions += 1;
        note("REGRESSION " + path + ": " + fmt_num(a) + " -> " + fmt_num(b) +
             " (" + fmt(rel * 100.0) + "% > tol " + fmt(tol * 100.0) + "%)");
      } else if (beyond) {
        note("improved   " + path + ": " + fmt_num(a) + " -> " + fmt_num(b) +
             " (" + fmt(rel * 100.0) + "%)");
      }
    } else if (beyond) {
      note("changed    " + path + ": " + fmt_num(a) + " -> " + fmt_num(b) +
           " (" + fmt(rel * 100.0) + "%)");
    }
  }

  void compare(const std::string& path, const json::Value& a,
               const json::Value& b) {
    if (a.is_number() && b.is_number()) {
      const std::size_t slash = path.find_last_of('.');
      const std::string key =
          slash == std::string::npos ? path : path.substr(slash + 1);
      compare_number(path, key, a, b);
      return;
    }
    if (a.kind() != b.kind()) {
      note("shape      " + path + ": value kind changed");
      return;
    }
    if (a.is_object()) {
      for (const auto& [k, av] : a.as_object()) {
        const json::Value* bv = b.get(k);
        if (bv == nullptr) {
          note("shape      " + path + "." + k + ": missing in candidate");
          continue;
        }
        compare(path.empty() ? k : path + "." + k, av, *bv);
      }
      for (const auto& [k, bv] : b.as_object()) {
        (void)bv;
        if (!a.has(k)) {
          note("shape      " + path + "." + k + ": new in candidate");
        }
      }
      return;
    }
    if (a.is_array()) {
      const json::Array& aa = a.as_array();
      const json::Array& ba = b.as_array();
      if (aa.size() != ba.size()) {
        note("shape      " + path + ": array length " +
             std::to_string(aa.size()) + " -> " + std::to_string(ba.size()));
      }
      const std::size_t n = aa.size() < ba.size() ? aa.size() : ba.size();
      for (std::size_t i = 0; i < n; ++i) {
        compare(path + "[" + label_for(aa[i], i) + "]", aa[i], ba[i]);
      }
      return;
    }
    if (a.is_string() && a.as_string() != b.as_string()) {
      note("changed    " + path + ": '" + a.as_string() + "' -> '" +
           b.as_string() + "'");
    } else if (a.is_bool() && a.as_bool() != b.as_bool()) {
      note("changed    " + path + ": " + (a.as_bool() ? "true" : "false") +
           " -> " + (b.as_bool() ? "true" : "false"));
    }
  }

  // Rows/entries are labeled by their string identity fields when present
  // (name, shape, impl...) so findings are readable.
  static std::string label_for(const json::Value& v, std::size_t index) {
    if (v.is_object()) {
      for (const char* key : {"name", "shape", "impl", "net", "layer"}) {
        const json::Value* f = v.get(key);
        if (f != nullptr && f->is_string()) return f->as_string();
      }
      const json::Value* core = v.get("core");
      if (core != nullptr && core->is_int()) {
        return "core" + std::to_string(core->as_int());
      }
    }
    return std::to_string(index);
  }
};

}  // namespace

std::string render_report(const json::Value& doc) {
  std::string out;
  const json::Value* schema = doc.get("schema");
  if (schema != nullptr && schema->is_string() &&
      schema->as_string() == "davinci.metrics") {
    out += "davinci.metrics v" +
           std::to_string(int_or(doc, "schema_version", 0)) + ", " +
           std::to_string(doc.at("entries").as_array().size()) +
           " entr" +
           (doc.at("entries").as_array().size() == 1 ? "y" : "ies") + "\n";
    if (const json::Value* serve = doc.get("serve")) {
      render_serve(*serve, &out);
    }
    for (const json::Value& e : doc.at("entries").as_array()) {
      render_metrics_entry(e, &out);
    }
    return out;
  }
  if (doc.has("bench") && doc.has("rows")) {
    render_bench(doc, &out);
    return out;
  }
  throw Error(
      "unrecognized document: expected a davinci.metrics file or a bench "
      "JsonReport ({\"bench\",\"rows\"})");
}

DiffResult diff_reports(const json::Value& a, const json::Value& b,
                        const DiffOptions& opts) {
  DiffWalker w{opts, {}};
  w.compare("", a, b);
  if (w.result.report.empty()) {
    w.result.report = "no differences beyond tolerance (" +
                      std::to_string(w.result.compared) +
                      " metrics compared)\n";
  }
  return w.result;
}

}  // namespace davinci
