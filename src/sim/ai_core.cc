#include "sim/ai_core.h"

namespace davinci {

AiCore::AiCore(int id, const ArchConfig& arch, const CostModel& cost)
    : id_(id),
      arch_(arch),
      cost_(cost),
      l1_(BufferKind::kL1, arch.l1_bytes),
      l0a_(BufferKind::kL0A, arch.l0a_bytes),
      l0b_(BufferKind::kL0B, arch.l0b_bytes),
      l0c_(BufferKind::kL0C, arch.l0c_bytes),
      ub_(BufferKind::kUnified, arch.ub_bytes),
      vec_(arch_, cost_, &stats_, &trace_, &profile_, &sched_),
      mte_(cost_, &stats_, &trace_, &profile_, &sched_),
      scu_(arch_, cost_, &stats_, &trace_, &profile_, &sched_),
      cube_(arch_, cost_, &stats_, &trace_, &profile_, &sched_) {
  l1_.set_owner_core(id_);
  l0a_.set_owner_core(id_);
  l0b_.set_owner_core(id_);
  l0c_.set_owner_core(id_);
  ub_.set_owner_core(id_);
}

void AiCore::set_fault_state(CoreFaultState* fault) {
  fault_ = fault;
  mte_.set_fault_state(fault);
  scu_.set_fault_state(fault);
  vec_.set_fault_state(fault);
}

void AiCore::reset_scratch() {
  l1_.reset();
  l0a_.reset();
  l0b_.reset();
  l0c_.reset();
  ub_.reset();
}

void AiCore::scrub_scratch(std::byte pattern) {
  l1_.scrub(pattern);
  l0a_.scrub(pattern);
  l0b_.scrub(pattern);
  l0c_.scrub(pattern);
  ub_.scrub(pattern);
}

void AiCore::scalar_loop(std::int64_t iterations) {
  DV_CHECK_GE(iterations, 0);
  const std::int64_t cycles = iterations * cost_.scalar_loop_cycles;
  stats_.scalar_cycles += cycles;
  // Scalar control flow rides the Vector pipe on the overlap timeline,
  // matching the compute = vector + scalar grouping of pipelined_cycles.
  sched_.issue(Pipe::kVector, cycles);
}

void AiCore::pipe_barrier() {
  stats_.barrier_cycles += cost_.pipe_barrier_cycles;
  const PipeScheduler::Interval iv =
      sched_.barrier(cost_.pipe_barrier_cycles);
  if (trace_.enabled()) {
    trace_.record(TraceKind::kBarrier, "pipe_barrier",
                  cost_.pipe_barrier_cycles, 0, 0, iv.start);
  }
}

void AiCore::begin_stage(Pipe pipe, PipeScheduler::Event after) {
  std::int64_t flag_cycles = 0;
  if (after > 0) {
    // The cross-pipe dependency costs one flag-wait, exactly what
    // pipe_barrier charges -- but it only delays this stage's pipe
    // instead of synchronizing all of them. The scheduler attributes up
    // to this many stall cycles to the flag bucket.
    stats_.barrier_cycles += cost_.pipe_barrier_cycles;
    after += cost_.pipe_barrier_cycles;
    flag_cycles = cost_.pipe_barrier_cycles;
  }
  sched_.begin_stage(pipe, after, flag_cycles);
}

PipeScheduler::Event AiCore::end_stage() { return sched_.end_stage(); }

void AiCore::launch(std::int64_t cycles) {
  stats_.launch_cycles += cycles;
  sched_.issue(Pipe::kSync, cycles);
}

template <typename F>
std::int64_t AiCore::for_flat(std::int64_t n, F&& emit) {
  DV_CHECK_GE(n, 0);
  const std::int64_t lanes = arch_.vector_lanes;
  std::int64_t full_reps = n / lanes;
  const int tail = static_cast<int>(n % lanes);
  std::int64_t offset = 0;
  std::int64_t instrs = 0;
  while (full_reps > 0) {
    const int r = static_cast<int>(
        full_reps > arch_.max_repeat ? arch_.max_repeat : full_reps);
    emit(offset, r, VecMask::full());
    offset += static_cast<std::int64_t>(r) * lanes;
    full_reps -= r;
    ++instrs;
  }
  if (tail > 0) {
    emit(offset, 1, VecMask::first_n(tail));
    ++instrs;
  }
  if (instrs > 1) scalar_loop(instrs - 1);
  return instrs;
}

void AiCore::vbin_flat(VecOp op, Span<Float16> dst, Span<Float16> src0,
                       Span<Float16> src1, std::int64_t n) {
  for_flat(n, [&](std::int64_t off, int repeat, VecMask mask) {
    VecConfig cfg;
    cfg.mask = mask;
    cfg.repeat = repeat;
    vec_.binary(op, dst.drop_front(off), src0.drop_front(off),
                src1.drop_front(off), cfg);
  });
}

void AiCore::vdup_flat(Span<Float16> dst, Float16 value, std::int64_t n) {
  for_flat(n, [&](std::int64_t off, int repeat, VecMask mask) {
    VecConfig cfg;
    cfg.mask = mask;
    cfg.repeat = repeat;
    vec_.dup(dst.drop_front(off), value, cfg);
  });
}

void AiCore::vadds_flat(Span<Float16> dst, Span<Float16> src, Float16 s,
                        std::int64_t n) {
  for_flat(n, [&](std::int64_t off, int repeat, VecMask mask) {
    VecConfig cfg;
    cfg.mask = mask;
    cfg.repeat = repeat;
    vec_.adds(dst.drop_front(off), src.drop_front(off), s, cfg);
  });
}

void AiCore::vmuls_flat(Span<Float16> dst, Span<Float16> src, Float16 s,
                        std::int64_t n) {
  for_flat(n, [&](std::int64_t off, int repeat, VecMask mask) {
    VecConfig cfg;
    cfg.mask = mask;
    cfg.repeat = repeat;
    vec_.muls(dst.drop_front(off), src.drop_front(off), s, cfg);
  });
}

void AiCore::vcmpv_eq_flat(Span<Float16> dst, Span<Float16> src0,
                           Span<Float16> src1, std::int64_t n) {
  for_flat(n, [&](std::int64_t off, int repeat, VecMask mask) {
    VecConfig cfg;
    cfg.mask = mask;
    cfg.repeat = repeat;
    vec_.cmpv_eq(dst.drop_front(off), src0.drop_front(off),
                 src1.drop_front(off), cfg);
  });
}

}  // namespace davinci
