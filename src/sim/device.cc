#include "sim/device.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace davinci {

Device::Device(ArchConfig arch, CostModel cost)
    : arch_(arch), cost_(cost) {
  DV_CHECK_GE(arch_.num_cores, 1);
  cores_.reserve(static_cast<std::size_t>(arch_.num_cores));
  for (int i = 0; i < arch_.num_cores; ++i) {
    cores_.push_back(std::make_unique<AiCore>(i, arch_, cost_));
  }
}

Device::RunResult Device::run(
    std::int64_t num_blocks,
    const std::function<void(AiCore&, std::int64_t)>& fn, bool parallel) {
  DV_CHECK_GE(num_blocks, 0);
  const int cores_used =
      static_cast<int>(std::min<std::int64_t>(num_blocks, num_cores()));

  for (int c = 0; c < num_cores(); ++c) cores_[c]->reset_stats();

  auto run_core = [&](int c) {
    AiCore& core = *cores_[static_cast<std::size_t>(c)];
    core.stats().launch_cycles += cost_.core_launch_cycles;
    for (std::int64_t b = c; b < num_blocks; b += num_cores()) {
      core.reset_scratch();
      fn(core, b);
    }
  };

  if (parallel && cores_used > 1) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(cores_used));
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (int c = 0; c < cores_used; ++c) {
      workers.emplace_back([&, c] {
        try {
          run_core(c);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    for (auto& w : workers) w.join();
    if (first_error) std::rethrow_exception(first_error);
  } else {
    for (int c = 0; c < cores_used; ++c) run_core(c);
  }

  RunResult result;
  result.cores_used = cores_used;
  result.core_cycles.resize(static_cast<std::size_t>(cores_used));
  for (int c = 0; c < cores_used; ++c) {
    const CycleStats& s = cores_[static_cast<std::size_t>(c)]->stats();
    result.core_cycles[static_cast<std::size_t>(c)] = s.total_cycles();
    result.aggregate += s;
    result.device_cycles = std::max(result.device_cycles, s.total_cycles());
    result.device_cycles_pipelined =
        std::max(result.device_cycles_pipelined, s.pipelined_cycles());
  }
  return result;
}

}  // namespace davinci
