#include "sim/device.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace davinci {

Device::Device(ArchConfig arch, CostModel cost)
    : arch_(arch), cost_(cost) {
  DV_CHECK_GE(arch_.num_cores, 1);
  cores_.reserve(static_cast<std::size_t>(arch_.num_cores));
  for (int i = 0; i < arch_.num_cores; ++i) {
    cores_.push_back(std::make_unique<AiCore>(i, arch_, cost_));
  }
}

Device::RunResult Device::run(
    std::int64_t num_blocks,
    const std::function<void(AiCore&, std::int64_t)>& fn, bool parallel) {
  if (resilience_) {
    ResilienceOptions opts = *resilience_;
    opts.parallel = opts.parallel && parallel;
    return run_resilient(num_blocks, fn, opts);
  }

  DV_CHECK_GE(num_blocks, 0);
  const std::int64_t t0 = now_ns();
  const int cores_used =
      static_cast<int>(std::min<std::int64_t>(num_blocks, num_cores()));

  for (int c = 0; c < num_cores(); ++c) cores_[c]->reset_stats();

  // Every worker failure is recorded, not just the first: a multi-core
  // failure (e.g. a tiling bug that overflows UB on all 32 cores at once)
  // is reported with per-core context instead of one arbitrary winner.
  struct WorkerFailure {
    int core;
    std::int64_t block;
    std::string what;
  };
  std::vector<WorkerFailure> failures;
  std::mutex failures_mutex;

  // One lane per simulated core: the lane executes that core's blocks in
  // increasing order (BlockOrder invariant in device.h), regardless of
  // which pool worker picks the lane up.
  auto run_core = [&](int c) {
    AiCore& core = *cores_[static_cast<std::size_t>(c)];
    core.launch(cost_.core_launch_cycles);
    bool lane_failed = false;
    BlockOrder::for_core(c, num_blocks, num_cores(), [&](std::int64_t b) {
      if (lane_failed) return;
      core.reset_scratch();
      try {
        fn(core, b);
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(failures_mutex);
        failures.push_back({c, b, e.what()});
        lane_failed = true;
      } catch (...) {
        std::lock_guard<std::mutex> lock(failures_mutex);
        failures.push_back({c, b, "unknown exception"});
        lane_failed = true;
      }
    });
  };

  if (parallel && cores_used > 1) {
    pool_.run(cores_used, run_core);
    if (!failures.empty()) {
      std::sort(failures.begin(), failures.end(),
                [](const WorkerFailure& a, const WorkerFailure& b) {
                  return a.core < b.core;
                });
      std::ostringstream os;
      os << failures.size() << " core(s) failed during Device::run:";
      for (const WorkerFailure& f : failures) {
        os << "\n  core " << f.core << " at block " << f.block << ": "
           << f.what;
      }
      throw Error(os.str());
    }
  } else {
    // Serial path (deterministic debugging): the first failure aborts,
    // annotated with the same "core C at block B" context as the parallel
    // path but keeping the original exception type (callers dispatch on
    // the Error hierarchy).
    auto context = [](int c, std::int64_t b, const char* what) {
      return "core " + std::to_string(c) + " at block " + std::to_string(b) +
             ": " + what;
    };
    for (int c = 0; c < cores_used; ++c) {
      AiCore& core = *cores_[static_cast<std::size_t>(c)];
      core.launch(cost_.core_launch_cycles);
      BlockOrder::for_core(c, num_blocks, num_cores(), [&](std::int64_t b) {
        core.reset_scratch();
        try {
          fn(core, b);
        } catch (const TransientFault& e) {
          throw TransientFault(context(c, b, e.what()));
        } catch (const CoreFailed& e) {
          throw CoreFailed(e.core(), context(c, b, e.what()));
        } catch (const RetryExhausted& e) {
          throw RetryExhausted(context(c, b, e.what()));
        } catch (const Error& e) {
          throw Error(context(c, b, e.what()));
        } catch (const std::exception& e) {
          throw Error(context(c, b, e.what()));
        }
      });
    }
  }

  RunResult result = collect_result(cores_used);
  result.host_ns = now_ns() - t0;
  result.host_execute_ns = result.host_ns;
  return result;
}

Device::RunResult Device::collect_result(int cores_used) {
  RunResult result;
  result.cores_used = cores_used;
  result.core_cycles.resize(static_cast<std::size_t>(cores_used));
  std::vector<const PipeScheduler*> scheds;
  scheds.reserve(static_cast<std::size_t>(cores_used));
  for (int c = 0; c < cores_used; ++c) {
    AiCore& core = *cores_[static_cast<std::size_t>(c)];
    const CycleStats& s = core.stats();
    const std::int64_t makespan = core.sched().makespan();
    result.core_cycles[static_cast<std::size_t>(c)] = makespan;
    result.aggregate += s;
    result.profile += core.profile();
    result.device_cycles = std::max(result.device_cycles, makespan);
    result.device_cycles_serial =
        std::max(result.device_cycles_serial, s.total_cycles());
    result.device_cycles_pipelined =
        std::max(result.device_cycles_pipelined, s.pipelined_cycles());
    result.busiest_unit_cycles = std::max(
        result.busiest_unit_cycles, core.sched().busiest_unit_busy());
    scheds.push_back(&core.sched());
  }
  result.attribution = attribute_cores(scheds);

  // Hand the captured launch timeline to the attached instruction-stream
  // VM: the stream shifts the whole launch onto its cross-launch tracks
  // and returns the scheduled start. Writes get a fresh tagged id per
  // launch -- serving outputs are never re-read by a later launch, and a
  // recycled arena address must not alias a retired buffer.
  if (vm_stream_ != nullptr) {
    vm::VmLaunch launch;
    launch.label = std::move(vm_label_);
    vm_label_.clear();
    launch.reads = std::move(vm_reads_);
    vm_reads_.clear();
    launch.writes.push_back(
        (std::uint64_t{1} << 63) +
        static_cast<std::uint64_t>(vm_write_seq_++));
    launch.makespan = result.device_cycles;
    const bool capture = vm_stream_->options().capture;
    launch.cores.reserve(static_cast<std::size_t>(cores_used));
    for (int c = 0; c < cores_used; ++c) {
      const PipeScheduler& sched = cores_[static_cast<std::size_t>(c)]->sched();
      vm::CoreWork cw;
      cw.core = c;
      cw.makespan = sched.makespan();
      for (int pi = 0; pi < PipeScheduler::kNumPipes; ++pi) {
        const Pipe p = static_cast<Pipe>(pi);
        cw.pipes[pi] = {sched.busy(p), sched.flag(p), sched.first_busy(p),
                        sched.last_busy(p)};
      }
      if (capture) {
        cw.intervals = sched.intervals();
        cw.tile_marks = sched.tile_marks();
      }
      launch.cores.push_back(std::move(cw));
    }
    result.vm_start = vm_stream_->enqueue(std::move(launch));
    result.vm_end = result.vm_start + result.device_cycles;
  }
  return result;
}

// Shared scheduling state of one resilient run. All fields are guarded by
// `m`; per-core fault state is touched only by its own worker.
struct Device::Sched {
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::deque<std::int64_t>> queue;  // per launched worker
  std::vector<int> execs;                       // per-block executions
  std::vector<char> quarantined;                // per launched worker
  std::int64_t blocks_done = 0;
  std::int64_t num_blocks = 0;
  int rr = 0;  // round-robin cursor for redistribution
  bool failed = false;
  bool exhausted = false;  // failure is a retry/quarantine exhaustion
  std::string failure;
  FaultStats run_stats;  // quarantine / redispatch counters
};

bool Device::process_block(
    int c, std::int64_t block, Sched& s,
    const std::function<void(AiCore&, std::int64_t)>& fn,
    const ResilienceOptions& opts, CoreFaultState& st) {
  AiCore& core = *cores_[static_cast<std::size_t>(c)];
  // Budget: each of the (max_retries + 1) allowed attempts is one
  // execution, or a redundant pair under verification.
  const int exec_budget = (opts.max_retries + 1) * (opts.verify ? 2 : 1);
  // CRCs of completed executions of this block; the block is accepted as
  // soon as two of them agree (majority vote over attempts).
  std::vector<std::uint64_t> seen_crcs;

  while (true) {
    int exec_no = 0;
    {
      std::lock_guard<std::mutex> lk(s.m);
      if (s.failed) return false;
      if (s.execs[static_cast<std::size_t>(block)] >= exec_budget) {
        s.failed = true;
        s.exhausted = true;
        s.failure =
            "retry budget exhausted: block " + std::to_string(block) +
            " still unverified after " +
            std::to_string(s.execs[static_cast<std::size_t>(block)]) +
            " execution(s) (max_retries=" + std::to_string(opts.max_retries) +
            ", last core " + std::to_string(c) + ")";
        s.cv.notify_all();
        return false;
      }
      s.execs[static_cast<std::size_t>(block)] += 1;
      exec_no = s.execs[static_cast<std::size_t>(block)];
    }
    if (!seen_crcs.empty()) st.stats().verification_runs += 1;

    try {
      if (opts.verify) {
        // Scrub with an attempt-varying pattern: otherwise a truncated
        // reload is masked by the previous attempt's identical stale data
        // and two faulty executions can agree on the same wrong output.
        core.scrub_scratch(
            static_cast<std::byte>(0xA5u ^ static_cast<unsigned>(exec_no * 17)));
      }
      core.reset_scratch();
      st.begin_execution(block, opts.verify);
      st.check_core_alive(block);
      fn(core, block);
    } catch (const CoreFailed&) {
      // Hard failure: quarantine this core and hand the current block plus
      // everything left in its queue to the healthy cores, round-robin in
      // block order (deterministic given the quarantine point).
      core.sched().abandon_stage();
      std::lock_guard<std::mutex> lk(s.m);
      st.stats().faults_detected += 1;
      s.run_stats.cores_quarantined += 1;
      s.quarantined[static_cast<std::size_t>(c)] = 1;
      std::deque<std::int64_t> moved;
      moved.push_back(block);
      for (std::int64_t x : s.queue[static_cast<std::size_t>(c)]) {
        moved.push_back(x);
      }
      s.queue[static_cast<std::size_t>(c)].clear();
      const int launched = static_cast<int>(s.queue.size());
      for (std::int64_t x : moved) {
        int target = -1;
        for (int tries = 0; tries < launched; ++tries) {
          const int cand = s.rr;
          s.rr = (s.rr + 1) % launched;
          if (!s.quarantined[static_cast<std::size_t>(cand)]) {
            target = cand;
            break;
          }
        }
        if (target < 0) {
          s.failed = true;
          s.exhausted = true;
          s.failure = "all " + std::to_string(launched) +
                      " core(s) quarantined with " +
                      std::to_string(s.num_blocks - s.blocks_done) +
                      " block(s) unfinished";
          break;
        }
        s.queue[static_cast<std::size_t>(target)].push_back(x);
        s.run_stats.blocks_redispatched += 1;
      }
      s.cv.notify_all();
      return false;
    } catch (const TransientFault&) {
      // Detected transient: same core retries with fresh scratch. The
      // aborted execution contributes no CRC vote.
      core.sched().abandon_stage();
      st.stats().faults_detected += 1;
      st.stats().retries += 1;
      continue;
    } catch (const std::exception& e) {
      // A genuine kernel/scheduling error, not an injected fault: retrying
      // cannot help, abort the run with context.
      std::lock_guard<std::mutex> lk(s.m);
      if (!s.failed) {
        s.failed = true;
        s.failure = "core " + std::to_string(c) + " failed at block " +
                    std::to_string(block) + ": " + e.what();
      }
      s.cv.notify_all();
      return false;
    }

    if (!opts.verify) {
      st.accept_execution();
      break;
    }
    const std::uint64_t crc = st.crc();
    const bool confirmed =
        std::find(seen_crcs.begin(), seen_crcs.end(), crc) != seen_crcs.end();
    if (confirmed) {
      st.accept_execution();
      break;
    }
    if (!seen_crcs.empty()) {
      // Executions disagree: at least one was silently corrupted.
      st.stats().faults_detected += 1;
      st.stats().retries += 1;
    }
    seen_crcs.push_back(crc);
  }

  {
    std::lock_guard<std::mutex> lk(s.m);
    s.blocks_done += 1;
    if (s.blocks_done == s.num_blocks) s.cv.notify_all();
  }
  return true;
}

Device::RunResult Device::run_resilient(
    std::int64_t num_blocks,
    const std::function<void(AiCore&, std::int64_t)>& fn,
    const ResilienceOptions& opts) {
  DV_CHECK_GE(num_blocks, 0);
  DV_CHECK_GE(opts.max_retries, 0);
  const std::int64_t t0 = now_ns();
  for (const CoreFailTrigger& t : opts.plan.core_failures) {
    DV_CHECK(t.core >= 0 && t.core < num_cores())
        << "core_fail trigger targets core " << t.core << " but the device "
        << "has " << num_cores() << " cores";
  }
  const int cores_used =
      static_cast<int>(std::min<std::int64_t>(num_blocks, num_cores()));

  for (int c = 0; c < num_cores(); ++c) cores_[c]->reset_stats();

  // Arm one deterministic fault stream per core; detach on every exit
  // path so a later plain run() pays zero overhead.
  std::vector<std::unique_ptr<CoreFaultState>> states;
  states.reserve(cores_.size());
  for (int c = 0; c < num_cores(); ++c) {
    states.push_back(std::make_unique<CoreFaultState>(opts.plan, c));
    cores_[static_cast<std::size_t>(c)]->set_fault_state(states.back().get());
  }
  struct Disarm {
    Device* dev;
    ~Disarm() {
      for (int c = 0; c < dev->num_cores(); ++c) {
        dev->cores_[static_cast<std::size_t>(c)]->set_fault_state(nullptr);
      }
    }
  } disarm{this};

  Sched s;
  s.num_blocks = num_blocks;
  s.queue.resize(static_cast<std::size_t>(cores_used));
  s.execs.assign(static_cast<std::size_t>(num_blocks), 0);
  s.quarantined.assign(static_cast<std::size_t>(cores_used), 0);
  for (std::int64_t b = 0; b < num_blocks; ++b) {
    // Identical initial assignment to run(): the BlockOrder home core.
    s.queue[static_cast<std::size_t>(BlockOrder::home_core(b, num_cores()))]
        .push_back(b);
  }

  auto worker = [&](int c) {
    AiCore& core = *cores_[static_cast<std::size_t>(c)];
    CoreFaultState& st = *states[static_cast<std::size_t>(c)];
    core.launch(cost_.core_launch_cycles);
    while (true) {
      std::int64_t b;
      {
        std::unique_lock<std::mutex> lk(s.m);
        s.cv.wait(lk, [&] {
          return s.failed || s.quarantined[static_cast<std::size_t>(c)] ||
                 !s.queue[static_cast<std::size_t>(c)].empty() ||
                 s.blocks_done == s.num_blocks;
        });
        if (s.failed || s.quarantined[static_cast<std::size_t>(c)]) return;
        if (s.queue[static_cast<std::size_t>(c)].empty()) return;  // done
        b = s.queue[static_cast<std::size_t>(c)].front();
        s.queue[static_cast<std::size_t>(c)].pop_front();
      }
      if (!process_block(c, b, s, fn, opts, st)) return;
    }
  };

  if (opts.parallel && cores_used > 1) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(cores_used));
    for (int c = 0; c < cores_used; ++c) workers.emplace_back(worker, c);
    for (auto& w : workers) w.join();
  } else if (cores_used > 0) {
    // Serial scheduler: drain per-core queues in repeated passes so
    // redistributed blocks still execute. Per-core order -- and therefore
    // every fault stream -- matches the parallel path.
    for (int c = 0; c < cores_used; ++c) {
      cores_[static_cast<std::size_t>(c)]->launch(cost_.core_launch_cycles);
    }
    bool progress = true;
    while (!s.failed && s.blocks_done < num_blocks && progress) {
      progress = false;
      for (int c = 0; c < cores_used && !s.failed; ++c) {
        if (s.quarantined[static_cast<std::size_t>(c)]) continue;
        while (!s.queue[static_cast<std::size_t>(c)].empty()) {
          const std::int64_t b = s.queue[static_cast<std::size_t>(c)].front();
          s.queue[static_cast<std::size_t>(c)].pop_front();
          progress = true;
          if (!process_block(c, b, s, fn, opts,
                             *states[static_cast<std::size_t>(c)])) {
            break;
          }
        }
      }
    }
    if (!s.failed && s.blocks_done < num_blocks) {
      s.failed = true;
      s.failure = "internal: serial resilient scheduler stalled";
    }
  }

  FaultStats total = s.run_stats;
  for (int c = 0; c < num_cores(); ++c) {
    total += states[static_cast<std::size_t>(c)]->stats();
  }

  if (s.failed) {
    const std::string msg = s.failure + " | fault stats: " + total.summary() +
                            " | plan: " + opts.plan.to_string();
    if (s.exhausted) throw RetryExhausted(msg);
    throw Error(msg);
  }

  RunResult result = collect_result(cores_used);
  result.faults = total;
  result.host_ns = now_ns() - t0;
  result.host_execute_ns = result.host_ns;
  return result;
}

}  // namespace davinci
