// Event-driven pipe-overlap scheduler for one AI Core.
//
// The simulator executes kernels functionally on the host, but every
// charged cost also becomes an *interval* on a per-unit timeline here:
// MTE-in, SCU, Vector (which absorbs the Scalar Unit, as in
// CycleStats::pipelined_cycles), Cube, MTE-out, plus a Sync row for
// barriers and launch overhead. The makespan of those intervals is the
// modeled overlapped execution time that Device::RunResult reports as
// device_cycles; the plain sum of charges stays available as
// device_cycles_serial.
//
// Scheduling discipline:
//
//  * Outside a stage, every operation starts at the global frontier (the
//    max ready time over all pipes) -- i.e. unannotated code executes on
//    the strictly serial timeline the simulator always had, and its
//    makespan equals its serial cycle total. Kernels that never open a
//    stage are bit-for-bit unaffected by this class.
//  * Inside a stage (AiCore::begin_stage / end_stage), operations queue
//    in issue order on the stage's pipe, starting no earlier than the
//    stage's dependency events. This is how the ping-pong kernels declare
//    "the reduction of tile t needs the Im2Col of tile t, not the MTE
//    load of tile t+1", and how cross-pipe overlap emerges.
//  * A stage with a nonzero dependency pays one pipe_barrier_cycles
//    flag-wait (charged by AiCore::begin_stage into CycleStats and into
//    the stage's start time here), mirroring the set_flag/wait_flag pair
//    a real CCE kernel issues at that dependency.
//
// Because every start time is bounded by the sum of all charges issued so
// far, makespan() <= the serial cycle total always holds; and since busy
// time accumulates per pipe, makespan() >= the busiest pipe's busy time.
// Tests assert this sandwich for every kernel.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace davinci {

enum class Pipe : std::uint8_t {
  kMteIn = 0,  // GM/L1 -> scratch transfers
  kScu,        // Im2Col / Col2Im
  kVector,     // Vector Unit + Scalar Unit control flow
  kCube,
  kMteOut,     // scratch -> GM transfers
  kSync,       // barriers, launch overhead
  kCount,
};

inline const char* to_string(Pipe p) {
  switch (p) {
    case Pipe::kMteIn: return "MTE-in";
    case Pipe::kScu: return "SCU";
    case Pipe::kVector: return "Vector";
    case Pipe::kCube: return "Cube";
    case Pipe::kMteOut: return "MTE-out";
    case Pipe::kSync: return "Sync";
    case Pipe::kCount: break;
  }
  return "?";
}

class PipeScheduler {
 public:
  // A completion event: the cycle at which a stage (or interval) ends.
  // Events are plain cycle counts so callers combine them with std::max.
  using Event = std::int64_t;

  struct Interval {
    std::int64_t start = 0;
    std::int64_t end = 0;
  };

  static constexpr int kNumPipes = static_cast<int>(Pipe::kCount);

  // Opens a stage on `pipe`; operations issued until end_stage() land on
  // that pipe in order, starting no earlier than `after` (0 = no
  // dependency). The flag-wait cost of the dependency is folded into
  // `after` by the caller (AiCore::begin_stage).
  void begin_stage(Pipe pipe, Event after) {
    DV_CHECK(!stage_open_) << "begin_stage inside an open stage";
    DV_CHECK_GE(after, 0);
    stage_open_ = true;
    stage_pipe_ = pipe;
    stage_dep_ = after;
  }

  // Closes the stage; returns its completion event (the dependency floor
  // when the stage issued nothing).
  Event end_stage() {
    DV_CHECK(stage_open_) << "end_stage without begin_stage";
    stage_open_ = false;
    const std::int64_t done =
        ready_[pipe_index(stage_pipe_)] > stage_dep_
            ? ready_[pipe_index(stage_pipe_)]
            : stage_dep_;
    return done;
  }

  bool stage_open() const { return stage_open_; }

  // Closes a stage a faulted block left open (the resilient scheduler
  // calls this before retrying); the failed attempt's charges stay
  // accounted, exactly like its CycleStats.
  void abandon_stage() { stage_open_ = false; }

  // Schedules `cycles` of work. Inside a stage the work lands on the
  // stage's pipe after the stage dependency; outside, it lands on
  // `natural_pipe` at the global frontier (serial semantics).
  Interval issue(Pipe natural_pipe, std::int64_t cycles) {
    DV_CHECK_GE(cycles, 0);
    const Pipe pipe = stage_open_ ? stage_pipe_ : natural_pipe;
    const int pi = pipe_index(pipe);
    std::int64_t start = stage_open_
                             ? (ready_[pi] > stage_dep_ ? ready_[pi]
                                                        : stage_dep_)
                             : frontier();
    Interval iv{start, start + cycles};
    ready_[pi] = iv.end;
    busy_[pi] += cycles;
    return iv;
  }

  // A full synchronization costing `cycles`: starts at the global
  // frontier and holds *every* pipe until it completes (pipe_barrier).
  Interval barrier(std::int64_t cycles) {
    DV_CHECK(!stage_open_) << "pipe_barrier inside a stage";
    const std::int64_t start = frontier();
    Interval iv{start, start + cycles};
    for (int i = 0; i < kNumPipes; ++i) ready_[i] = iv.end;
    busy_[pipe_index(Pipe::kSync)] += cycles;
    return iv;
  }

  // Modeled overlapped execution time so far.
  std::int64_t makespan() const { return frontier(); }

  // Busy (charged) cycles of one pipe.
  std::int64_t busy(Pipe p) const { return busy_[pipe_index(p)]; }

  // Busy time of the busiest real execution unit (Sync excluded) -- the
  // lower half of the sandwich bound.
  std::int64_t busiest_unit_busy() const {
    std::int64_t best = 0;
    for (int i = 0; i < kNumPipes; ++i) {
      if (static_cast<Pipe>(i) == Pipe::kSync) continue;
      if (busy_[i] > best) best = busy_[i];
    }
    return best;
  }

  // --- Ping-pong observability -------------------------------------------
  // The double-buffered drivers mark tiles entering (+1, at the load's
  // completion) and leaving (-1, at the store's completion) flight; the
  // trace exporter renders the running sum as a queue-depth counter track.
  // Bounded like the instruction trace so a huge run cannot grow without
  // limit.
  static constexpr std::size_t kMaxTileMarks = 1 << 16;

  void note_tile(Event cycle, int delta) {
    if (tile_marks_.size() >= kMaxTileMarks) return;
    tile_marks_.emplace_back(cycle, delta);
  }
  const std::vector<std::pair<Event, int>>& tile_marks() const {
    return tile_marks_;
  }

  void reset() {
    for (int i = 0; i < kNumPipes; ++i) {
      ready_[i] = 0;
      busy_[i] = 0;
    }
    stage_open_ = false;
    stage_dep_ = 0;
    tile_marks_.clear();
  }

 private:
  static int pipe_index(Pipe p) { return static_cast<int>(p); }

  std::int64_t frontier() const {
    std::int64_t f = 0;
    for (int i = 0; i < kNumPipes; ++i) {
      if (ready_[i] > f) f = ready_[i];
    }
    return f;
  }

  std::int64_t ready_[kNumPipes] = {};
  std::int64_t busy_[kNumPipes] = {};
  bool stage_open_ = false;
  Pipe stage_pipe_ = Pipe::kVector;
  std::int64_t stage_dep_ = 0;
  std::vector<std::pair<Event, int>> tile_marks_;
};

}  // namespace davinci
