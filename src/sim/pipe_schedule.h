// Event-driven pipe-overlap scheduler for one AI Core.
//
// The simulator executes kernels functionally on the host, but every
// charged cost also becomes an *interval* on a per-unit timeline here:
// MTE-in, SCU, Vector (which absorbs the Scalar Unit, as in
// CycleStats::pipelined_cycles), Cube, MTE-out, plus a Sync row for
// barriers and launch overhead. The makespan of those intervals is the
// modeled overlapped execution time that Device::RunResult reports as
// device_cycles; the plain sum of charges stays available as
// device_cycles_serial.
//
// Scheduling discipline:
//
//  * Outside a stage, every operation starts at the global frontier (the
//    max ready time over all pipes) -- i.e. unannotated code executes on
//    the strictly serial timeline the simulator always had, and its
//    makespan equals its serial cycle total. Kernels that never open a
//    stage are bit-for-bit unaffected by this class.
//  * Inside a stage (AiCore::begin_stage / end_stage), operations queue
//    in issue order on the stage's pipe, starting no earlier than the
//    stage's dependency events. This is how the ping-pong kernels declare
//    "the reduction of tile t needs the Im2Col of tile t, not the MTE
//    load of tile t+1", and how cross-pipe overlap emerges.
//  * A stage with a nonzero dependency pays one pipe_barrier_cycles
//    flag-wait (charged by AiCore::begin_stage into CycleStats and into
//    the stage's start time here), mirroring the set_flag/wait_flag pair
//    a real CCE kernel issues at that dependency.
//
// Because every start time is bounded by the sum of all charges issued so
// far, makespan() <= the serial cycle total always holds; and since busy
// time accumulates per pipe, makespan() >= the busiest pipe's busy time.
// Tests assert this sandwich for every kernel.
//
// Cycle attribution (docs/OBSERVABILITY.md): every cycle of every pipe's
// timeline is charged to exactly one bucket as the schedule is built --
// busy (an interval occupies the pipe), wait (the pipe sat behind a
// dependency event or the serial frontier), flag (a flag-wait or
// pipe_barrier stall), and the idle tail up to a query horizon. The
// invariant busy + wait + flag + idle == horizon holds exactly per pipe by
// construction. A bounded interval log additionally supports
// critical_path(): the backward chain of intervals (with explicit stall
// segments) whose lengths sum exactly to the makespan.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace davinci {

enum class Pipe : std::uint8_t {
  kMteIn = 0,  // GM/L1 -> scratch transfers
  kScu,        // Im2Col / Col2Im
  kVector,     // Vector Unit + Scalar Unit control flow
  kCube,
  kMteOut,     // scratch -> GM transfers
  kSync,       // barriers, launch overhead
  kCount,
};

inline const char* to_string(Pipe p) {
  switch (p) {
    case Pipe::kMteIn: return "MTE-in";
    case Pipe::kScu: return "SCU";
    case Pipe::kVector: return "Vector";
    case Pipe::kCube: return "Cube";
    case Pipe::kMteOut: return "MTE-out";
    case Pipe::kSync: return "Sync";
    case Pipe::kCount: break;
  }
  return "?";
}

// Where a cycle of a pipe's timeline went (see attribution()).
struct PipeBuckets {
  std::int64_t busy = 0;  // an interval occupied the pipe
  std::int64_t wait = 0;  // stalled behind a dependency event / frontier
  std::int64_t flag = 0;  // flag-wait or pipe_barrier synchronization
  std::int64_t idle = 0;  // tail after the pipe's last interval
  std::int64_t total() const { return busy + wait + flag + idle; }
};

// One link of the critical path: either a scheduled interval (kBusy) or a
// gap the bounding chain spent stalled (kStall).
struct CritSegment {
  enum class Kind : std::uint8_t { kBusy, kStall };
  Pipe pipe = Pipe::kSync;
  Kind kind = Kind::kBusy;
  std::int64_t start = 0;
  std::int64_t end = 0;
  std::int64_t length() const { return end - start; }
};

class PipeScheduler {
 public:
  // A completion event: the cycle at which a stage (or interval) ends.
  // Events are plain cycle counts so callers combine them with std::max.
  using Event = std::int64_t;

  struct Interval {
    std::int64_t start = 0;
    std::int64_t end = 0;
  };

  static constexpr int kNumPipes = static_cast<int>(Pipe::kCount);

  // One logged busy interval (bounded; see kMaxLoggedIntervals). Public
  // so the async VM (sim/vm/) can replay a captured launch timeline onto
  // its cross-launch stream tracks and the trace exporter can render the
  // shifted intervals.
  struct LoggedInterval {
    std::int64_t start = 0;
    std::int64_t end = 0;
    Pipe pipe = Pipe::kSync;
  };

  // Opens a stage on `pipe`; operations issued until end_stage() land on
  // that pipe in order, starting no earlier than `after` (0 = no
  // dependency). The flag-wait cost of the dependency is folded into
  // `after` by the caller (AiCore::begin_stage), which also reports it as
  // `flag_cycles` so the stall is attributed to the flag bucket rather
  // than a generic dependency wait.
  void begin_stage(Pipe pipe, Event after, std::int64_t flag_cycles = 0) {
    DV_CHECK(!stage_open_) << "begin_stage inside an open stage";
    DV_CHECK_GE(after, 0);
    DV_CHECK_GE(flag_cycles, 0);
    stage_open_ = true;
    stage_pipe_ = pipe;
    stage_dep_ = after;
    stage_flag_ = flag_cycles;
  }

  // Closes the stage; returns its completion event (the dependency floor
  // when the stage issued nothing).
  Event end_stage() {
    DV_CHECK(stage_open_) << "end_stage without begin_stage";
    stage_open_ = false;
    stage_flag_ = 0;
    const std::int64_t done =
        ready_[pipe_index(stage_pipe_)] > stage_dep_
            ? ready_[pipe_index(stage_pipe_)]
            : stage_dep_;
    return done;
  }

  bool stage_open() const { return stage_open_; }

  // Closes a stage a faulted block left open (the resilient scheduler
  // calls this before retrying); the failed attempt's charges stay
  // accounted, exactly like its CycleStats.
  void abandon_stage() {
    stage_open_ = false;
    stage_flag_ = 0;
  }

  // Schedules `cycles` of work. Inside a stage the work lands on the
  // stage's pipe after the stage dependency; outside, it lands on
  // `natural_pipe` at the global frontier (serial semantics). Any gap
  // between the pipe's last ready time and the new start is attributed:
  // up to stage_flag_ cycles of a stage-dependency gap count as flag
  // stall (the modeled wait_flag spin), the remainder as event wait; a
  // serial-frontier gap is all event wait.
  Interval issue(Pipe natural_pipe, std::int64_t cycles) {
    DV_CHECK_GE(cycles, 0);
    const Pipe pipe = stage_open_ ? stage_pipe_ : natural_pipe;
    const int pi = pipe_index(pipe);
    std::int64_t start;
    if (stage_open_) {
      start = ready_[pi] > stage_dep_ ? ready_[pi] : stage_dep_;
      if (start > ready_[pi]) {
        std::int64_t gap = start - ready_[pi];
        const std::int64_t flag_part = gap < stage_flag_ ? gap : stage_flag_;
        stage_flag_ -= flag_part;
        flag_[pi] += flag_part;
        wait_[pi] += gap - flag_part;
      }
    } else {
      start = frontier();
      wait_[pi] += start - ready_[pi];
    }
    Interval iv{start, start + cycles};
    ready_[pi] = iv.end;
    busy_[pi] += cycles;
    log_interval(pipe, iv);
    return iv;
  }

  // A full synchronization costing `cycles`: starts at the global
  // frontier and holds *every* pipe until it completes (pipe_barrier).
  // Every pipe's gap up to the barrier start, plus the barrier duration
  // itself, is flag stall -- except Sync, which spends the duration busy
  // (that is the charged cost of the barrier instruction).
  Interval barrier(std::int64_t cycles) {
    DV_CHECK(!stage_open_) << "pipe_barrier inside a stage";
    const std::int64_t start = frontier();
    Interval iv{start, start + cycles};
    for (int i = 0; i < kNumPipes; ++i) {
      std::int64_t stall = start - ready_[i];
      if (static_cast<Pipe>(i) != Pipe::kSync) stall += cycles;
      flag_[i] += stall;
      ready_[i] = iv.end;
    }
    busy_[pipe_index(Pipe::kSync)] += cycles;
    log_interval(Pipe::kSync, iv);
    return iv;
  }

  // Modeled overlapped execution time so far.
  std::int64_t makespan() const { return frontier(); }

  // Busy (charged) cycles of one pipe.
  std::int64_t busy(Pipe p) const { return busy_[pipe_index(p)]; }

  // Dependency-wait and flag-stall cycles of one pipe (the other two
  // attribution buckets; idle is derived against a horizon).
  std::int64_t wait(Pipe p) const { return wait_[pipe_index(p)]; }
  std::int64_t flag(Pipe p) const { return flag_[pipe_index(p)]; }

  // The pipe's timeline frontier: the end of its last interval or
  // barrier hold (busy + wait + flag == ready by construction).
  std::int64_t ready(Pipe p) const { return ready_[pipe_index(p)]; }

  // First/last cycle the pipe was *occupied* by an interval (-1 / 0 when
  // it never ran anything). The async VM shifts a whole launch timeline
  // by one delta; these bounds are the per-pipe contact points that
  // decide how far two launches may overlap, and they stay exact even
  // when the interval log truncates.
  std::int64_t first_busy(Pipe p) const { return first_busy_[pipe_index(p)]; }
  std::int64_t last_busy(Pipe p) const { return last_busy_[pipe_index(p)]; }

  // The bounded interval log (start/end/pipe per scheduled interval).
  const std::vector<LoggedInterval>& intervals() const { return log_; }

  // Busy time of the busiest real execution unit (Sync excluded) -- the
  // lower half of the sandwich bound.
  std::int64_t busiest_unit_busy() const {
    std::int64_t best = 0;
    for (int i = 0; i < kNumPipes; ++i) {
      if (static_cast<Pipe>(i) == Pipe::kSync) continue;
      if (busy_[i] > best) best = busy_[i];
    }
    return best;
  }

  // --- Cycle attribution -------------------------------------------------
  // Decomposes each pipe's timeline up to `horizon` (>= makespan; pass the
  // device-wide horizon so cores that finished early show the shared idle
  // tail). busy/wait/flag accumulate as the schedule is built; idle is the
  // tail between the pipe's last ready time and the horizon. By
  // construction busy + wait + flag == ready_[pipe], so the four buckets
  // sum exactly to `horizon` for every pipe.
  PipeBuckets attribution(Pipe p, std::int64_t horizon) const {
    DV_CHECK_GE(horizon, makespan()) << "attribution horizon before makespan";
    const int pi = pipe_index(p);
    PipeBuckets b;
    b.busy = busy_[pi];
    b.wait = wait_[pi];
    b.flag = flag_[pi];
    b.idle = horizon - ready_[pi];
    return b;
  }

  // True when the interval log hit its cap; critical_path() is then empty
  // (the buckets from attribution() stay exact regardless).
  bool interval_log_truncated() const { return log_truncated_; }

  // The backward chain of intervals that bounds the makespan: starting at
  // the makespan, repeatedly hop to an interval ending at the current
  // cycle (earliest start wins, ties broken by pipe order, so the result
  // is deterministic); where no interval ends exactly at the current
  // cycle, a kStall segment bridges down to the latest interval end below
  // it. Segment lengths always sum exactly to the makespan.
  std::vector<CritSegment> critical_path() const {
    std::vector<CritSegment> path;
    if (log_truncated_) return path;
    std::int64_t cur = makespan();
    if (cur == 0) return path;
    // Sorted-by-end copy lets each backward hop binary-search the
    // candidates ending at (or below) the current cycle.
    std::vector<LoggedInterval> by_end(log_.begin(), log_.end());
    std::stable_sort(by_end.begin(), by_end.end(),
                     [](const LoggedInterval& a, const LoggedInterval& b) {
                       return a.end < b.end;
                     });
    while (cur > 0) {
      // Last index with end <= cur.
      auto it = std::upper_bound(
          by_end.begin(), by_end.end(), cur,
          [](std::int64_t v, const LoggedInterval& iv) { return v < iv.end; });
      if (it == by_end.begin()) {
        // Nothing scheduled below cur: the chain starts with a stall from 0.
        path.push_back({Pipe::kSync, CritSegment::Kind::kStall, 0, cur});
        break;
      }
      const std::int64_t best_end = std::prev(it)->end;
      if (best_end < cur) {
        // Gap: the bounding chain waited from best_end to cur.
        path.push_back(
            {Pipe::kSync, CritSegment::Kind::kStall, best_end, cur});
        cur = best_end;
        continue;
      }
      // Among intervals ending exactly at cur, pick the earliest start
      // (then lowest pipe index) -- the longest link, deterministically.
      const LoggedInterval* pick = nullptr;
      for (auto jt = it; jt != by_end.begin();) {
        --jt;
        if (jt->end != cur) break;
        if (pick == nullptr || jt->start < pick->start ||
            (jt->start == pick->start &&
             pipe_index(jt->pipe) < pipe_index(pick->pipe))) {
          pick = &*jt;
        }
      }
      path.push_back({pick->pipe, CritSegment::Kind::kBusy, pick->start, cur});
      cur = pick->start;
    }
    std::reverse(path.begin(), path.end());
    return path;
  }

  // --- Ping-pong observability -------------------------------------------
  // The double-buffered drivers mark tiles entering (+1, at the load's
  // completion) and leaving (-1, at the store's completion) flight; the
  // trace exporter renders the running sum as a queue-depth counter track.
  // Bounded like the instruction trace so a huge run cannot grow without
  // limit.
  static constexpr std::size_t kMaxTileMarks = 1 << 16;

  void note_tile(Event cycle, int delta) {
    if (tile_marks_.size() >= kMaxTileMarks) return;
    tile_marks_.emplace_back(cycle, delta);
  }
  const std::vector<std::pair<Event, int>>& tile_marks() const {
    return tile_marks_;
  }

  void reset() {
    for (int i = 0; i < kNumPipes; ++i) {
      ready_[i] = 0;
      busy_[i] = 0;
      wait_[i] = 0;
      flag_[i] = 0;
      first_busy_[i] = -1;
      last_busy_[i] = 0;
    }
    stage_open_ = false;
    stage_dep_ = 0;
    stage_flag_ = 0;
    tile_marks_.clear();
    log_.clear();
    log_truncated_ = false;
  }

 private:
  // Bound on the interval log -- big enough for every kernel in the test
  // and bench suites, small enough that a pathological run cannot grow
  // without limit. Attribution buckets stay exact past the cap; only
  // critical_path() degrades (to empty, flagged via
  // interval_log_truncated()).
  static constexpr std::size_t kMaxLoggedIntervals = 1 << 18;

  static int pipe_index(Pipe p) { return static_cast<int>(p); }

  void log_interval(Pipe p, Interval iv) {
    if (iv.end == iv.start) return;  // zero-length: nothing to attribute
    const int pi = pipe_index(p);
    if (first_busy_[pi] < 0) first_busy_[pi] = iv.start;
    if (iv.end > last_busy_[pi]) last_busy_[pi] = iv.end;
    if (log_.size() >= kMaxLoggedIntervals) {
      log_truncated_ = true;
      return;
    }
    log_.push_back({iv.start, iv.end, p});
  }

  std::int64_t frontier() const {
    std::int64_t f = 0;
    for (int i = 0; i < kNumPipes; ++i) {
      if (ready_[i] > f) f = ready_[i];
    }
    return f;
  }

  std::int64_t ready_[kNumPipes] = {};
  std::int64_t busy_[kNumPipes] = {};
  std::int64_t wait_[kNumPipes] = {};
  std::int64_t flag_[kNumPipes] = {};
  std::int64_t first_busy_[kNumPipes] = {-1, -1, -1, -1, -1, -1};
  std::int64_t last_busy_[kNumPipes] = {};
  bool stage_open_ = false;
  Pipe stage_pipe_ = Pipe::kVector;
  std::int64_t stage_dep_ = 0;
  std::int64_t stage_flag_ = 0;
  std::vector<std::pair<Event, int>> tile_marks_;
  std::vector<LoggedInterval> log_;
  bool log_truncated_ = false;
};

}  // namespace davinci
