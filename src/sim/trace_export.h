// Chrome trace_event ("chrome://tracing" / Perfetto) export of the
// per-core instruction traces.
//
// Each AI Core becomes one process track (pid = core id) and each
// execution unit one thread row inside it (Vector, MTE, SCU, Cube, Sync).
// An event's timestamp is the start cycle assigned by the core's
// pipe-overlap scheduler (sim/pipe_schedule.h), so double-buffered
// kernels render with genuinely overlapping per-unit intervals; events
// recorded without a scheduled start (hand-built traces) fall back to the
// serial running sum. One simulated cycle is exported as one microsecond
// of trace time. Events carry their detail string, cycle cost and slot
// occupancy in args, every Vector Unit instruction also emits an "active
// lanes" counter sample so the 16-vs-128-lane difference the paper argues
// about is visible as a counter track, and ping-pong kernels add a
// "ub tiles in flight" counter (tiles loaded but not yet stored) that
// shows the double-buffer depth directly.
//
// Tracing must be enabled per core (AiCore::trace().enable()) before the
// run; cores with empty traces are skipped. A truncated trace (see
// Trace::kMaxEvents) is exported with a terminal instant event marking
// the cutoff.
#pragma once

#include <string>
#include <vector>

#include "sim/pipe_schedule.h"
#include "sim/trace.h"

namespace davinci {

namespace vm {
class VmStream;
}  // namespace vm

class Device;

// Serializes the given per-core traces; entry i is rendered as the track
// of core `core_ids[i]`. Returns a complete JSON object (trace_event
// "JSON Object Format": {"traceEvents": [...], ...}). When `scheds` is
// non-empty, entry i supplies core i's tile marks for the
// "ub tiles in flight" counter track (nullptr entries are skipped).
std::string chrome_trace_json(const std::vector<const Trace*>& traces,
                              const std::vector<int>& core_ids,
                              const std::vector<const PipeScheduler*>&
                                  scheds = {});

// Serializes every core of `dev` that recorded at least one event.
std::string chrome_trace_json(Device& dev);

// Writes chrome_trace_json(dev) to `path`. Throws Error on I/O failure.
void write_chrome_trace(const std::string& path, Device& dev);

// Cross-batch view of an instruction-stream VM (docs/ASYNC_VM.md): each
// placed launch becomes one process track (pid = launch sequence + 1,
// labeled with the launch's op string) with one thread row per
// (core, pipe) lane, and every interval is rendered at its stream-
// scheduled start -- overlap between consecutive batches shows as
// process tracks overlapping in time. pid 0 carries the stream-global
// "ub tiles in flight" counter, aggregated over all launches' shifted
// tile marks and closed with a zero sample at the cross-batch makespan.
// The stream must have been constructed with VmStreamOptions::capture;
// without it placements() is empty and the trace has no launch tracks.
std::string vm_chrome_trace_json(const vm::VmStream& stream);

// Writes vm_chrome_trace_json(stream) to `path`. Throws Error on I/O
// failure.
void write_vm_chrome_trace(const std::string& path,
                           const vm::VmStream& stream);

// One host-side span for the unified host+device timeline: a row of the
// dedicated "serve requests" process track (pid kHostTrackPid), placed
// directly on the VM stream's cycle timeline so request lifecycle phases
// line up with the device tracks they caused. Rows are labeled once via
// row_name; args_json, when non-empty, must be a serialized JSON object
// and is embedded verbatim as the event's args.
struct HostSpan {
  int row = 0;
  std::string row_name;
  std::string name;
  std::int64_t start = 0, end = 0;  // stream cycles
  std::string args_json;
  bool instant = false;  // render as an instant event at `start`
};

// The host track's pid: far above any VM launch pid (seq + 1, bounded
// by vm::VmStream::kMaxPlacedLaunches).
constexpr int kHostTrackPid = 1000000;

// The unified host+device timeline (docs/OBSERVABILITY.md): every VM
// device track and counter of vm_chrome_trace_json plus the given host
// spans, in one trace file. The VM counter samples stay the final "C"
// events, so the "counter closes at the makespan" CI invariant is
// unchanged. Host spans with cat "serve" render even when the stream
// captured nothing (VM off), so a host-only trace is still valid.
std::string unified_chrome_trace_json(const vm::VmStream& stream,
                                      const std::vector<HostSpan>& spans);

// Writes unified_chrome_trace_json to `path`. Throws Error on I/O
// failure.
void write_unified_chrome_trace(const std::string& path,
                                const vm::VmStream& stream,
                                const std::vector<HostSpan>& spans);

}  // namespace davinci
