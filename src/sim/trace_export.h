// Chrome trace_event ("chrome://tracing" / Perfetto) export of the
// per-core instruction traces.
//
// Each AI Core becomes one process track (pid = core id) and each
// execution unit one thread row inside it (Vector, MTE, SCU, Cube, Sync).
// The simulator executes a single in-order timeline per core, so an
// event's timestamp is the running sum of the cycle costs of everything
// the core executed before it; one simulated cycle is exported as one
// microsecond of trace time. Events carry their detail string, cycle cost
// and slot occupancy in args, and every Vector Unit instruction also emits
// an "active lanes" counter sample so the 16-vs-128-lane difference the
// paper argues about is visible as a counter track.
//
// Tracing must be enabled per core (AiCore::trace().enable()) before the
// run; cores with empty traces are skipped. A truncated trace (see
// Trace::kMaxEvents) is exported with a terminal instant event marking
// the cutoff.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace davinci {

class Device;

// Serializes the given per-core traces; entry i is rendered as the track
// of core `core_ids[i]`. Returns a complete JSON object (trace_event
// "JSON Object Format": {"traceEvents": [...], ...}).
std::string chrome_trace_json(const std::vector<const Trace*>& traces,
                              const std::vector<int>& core_ids);

// Serializes every core of `dev` that recorded at least one event.
std::string chrome_trace_json(Device& dev);

// Writes chrome_trace_json(dev) to `path`. Throws Error on I/O failure.
void write_chrome_trace(const std::string& path, Device& dev);

}  // namespace davinci
