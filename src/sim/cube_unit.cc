#include "sim/cube_unit.h"

#include "tensor/fractal.h"

namespace davinci {

void CubeUnit::mmad(Span<float> l0c, Span<Float16> l0a, Span<Float16> l0b,
                    std::int64_t m_frac, std::int64_t k_frac,
                    std::int64_t n_frac, bool accumulate, bool a_k_major) {
  DV_CHECK(l0a.kind() == BufferKind::kL0A) << "A must be in L0A";
  DV_CHECK(l0b.kind() == BufferKind::kL0B) << "B must be in L0B";
  DV_CHECK(l0c.kind() == BufferKind::kL0C) << "C must be in L0C";
  DV_CHECK_GE(m_frac, 1);
  DV_CHECK_GE(k_frac, 1);
  DV_CHECK_GE(n_frac, 1);
  DV_CHECK_LE(m_frac * k_frac * kFractalElems, l0a.size());
  DV_CHECK_LE(k_frac * n_frac * kFractalElems, l0b.size());
  DV_CHECK_LE(m_frac * n_frac * kFractalElems, l0c.size());

  const std::int64_t f = kFractalRows;  // 16

  if (!accumulate) {
    for (std::int64_t i = 0; i < m_frac * n_frac * kFractalElems; ++i) {
      l0c.at(i) = 0.0f;
    }
  }

  for (std::int64_t mb = 0; mb < m_frac; ++mb) {
    for (std::int64_t nb = 0; nb < n_frac; ++nb) {
      float* c = &l0c.at(((mb * n_frac) + nb) * kFractalElems);
      for (std::int64_t kb = 0; kb < k_frac; ++kb) {
        const std::int64_t abase =
            (a_k_major ? kb * m_frac + mb : mb * k_frac + kb) * kFractalElems;
        const std::int64_t bbase = (kb * n_frac + nb) * kFractalElems;
        for (std::int64_t i = 0; i < f; ++i) {
          for (std::int64_t k = 0; k < f; ++k) {
            const float a = l0a.at(abase + i * f + k).to_float();
            if (a == 0.0f) continue;
            for (std::int64_t j = 0; j < f; ++j) {
              c[i * f + j] += a * l0b.at(bbase + k * f + j).to_float();
            }
          }
        }
      }
    }
  }

  const std::int64_t macs = m_frac * k_frac * n_frac;
  stats_->cube_instrs += 1;
  stats_->cube_fractal_macs += macs;
  const std::int64_t cycles = cost_.cube_mmad(macs);
  stats_->cube_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kCube, cycles).start;
  // Occupancy: fractal-MAC cycles vs charged cycles -- how well the
  // instruction amortizes its issue overhead over the MAC array.
  const std::int64_t mac_cycles = macs * cost_.cube_cycles_per_fractal_mac;
  if (profile_) {
    profile_->cube.instrs += 1;
    profile_->cube.slots_used += mac_cycles;
    profile_->cube.slots_capacity += cycles;
  }
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kCube,
                   "mmad m=" + std::to_string(m_frac) + " k=" +
                       std::to_string(k_frac) + " n=" + std::to_string(n_frac),
                   cycles, mac_cycles, cycles, start);
  }
}

}  // namespace davinci
