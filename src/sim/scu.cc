#include "sim/scu.h"

#include <cstring>

namespace davinci {

namespace {

// The (xk, yk) -> (y, x) source-coordinate mapping shared by both Im2Col
// iteration orders and Col2Im: patch p's (xk, yk) element comes from input
// position (p / Ow * Sh + xk - pad_top, p % Ow * Sw + yk - pad_left), and
// positions outside the input image are the virtual zero-padding border.
struct PatchCoords {
  explicit PatchCoords(const Im2colArgs& args)
      : w(args.window), ow(args.ow()), ih(args.ih), iw(args.iw) {}

  // Returns true (and the source position) when patch p's (xk, yk)
  // element lies inside the input image, false when it falls into the
  // padding border.
  bool source(std::int64_t p, std::int64_t xk, std::int64_t yk,
              std::int64_t* y, std::int64_t* x) const {
    *y = (p / ow) * w.sh + xk - w.pt;
    *x = (p % ow) * w.sw + yk - w.pl;
    return *y >= 0 && *y < ih && *x >= 0 && *x < iw;
  }

  const Window2d& w;
  std::int64_t ow;
  std::int64_t ih;
  std::int64_t iw;
};

}  // namespace

void Scu::maybe_fault_result(Span<Float16> dst, std::int64_t elems) {
  if (!fault_ || elems <= 0) return;
  // SCU datapath corruption is its own site (scu_err); the bitflip sites
  // model upsets on MTE-landed data and do not double-dip here.
  auto* bytes = reinterpret_cast<std::byte*>(dst.data());
  fault_->on_scu_result(bytes, elems * 2);
}

void Scu::im2col_load(Span<Float16> dst, Span<Float16> src,
                      const Im2colArgs& args) {
  args.validate();
  DV_CHECK(src.kind() == BufferKind::kL1)
      << "Im2Col loads from L1, got " << to_string(src.kind());
  DV_CHECK(dst.kind() == BufferKind::kUnified ||
           dst.kind() == BufferKind::kL0A || dst.kind() == BufferKind::kL0B)
      << "Im2Col targets L0A/L0B/UB, got " << to_string(dst.kind());
  DV_CHECK_LE(args.input_elems(), src.size());
  DV_CHECK_LE(args.output_elems(), dst.size());

  const Window2d& w = args.window;
  const PatchCoords coords(args);
  const std::int64_t patches = args.patches();
  const std::int64_t padded = args.padded_patches();
  const std::int64_t fractals_per_plane = args.patch_fractals();

  // Functional semantics: for each kernel-relative position (xk, yk) the
  // instruction walks 16 consecutive patches per fractal, loading the
  // (xk, yk) element of each patch together with its whole C0 row. The
  // size checks above bound every access, so the loop runs on raw
  // pointers and moves each C0 row as one 32-byte block.
  Float16* const d = dst.data();
  const Float16* const s = src.data();
  constexpr std::size_t kRowBytes = kC0 * sizeof(Float16);
  const std::int64_t ow = coords.ow;
  const std::int64_t oh = patches / ow;
  for (std::int64_t xk = 0; xk < w.kh; ++xk) {
    for (std::int64_t yk = 0; yk < w.kw; ++yk) {
      const std::int64_t plane = (xk * w.kw + yk) * padded * kC0;
      Float16* drow = d + plane;
      // Patches walk row-major: patch oy*Ow + ox reads input position
      // (oy*Sh + xk - pt, ox*Sw + yk - pl) -- iterate the output grid
      // directly so the source coordinates advance incrementally.
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t y = oy * w.sh + xk - w.pt;
        if (y < 0 || y >= args.ih) {
          // Whole row falls in the zero-padding border.
          std::memset(drow, 0, static_cast<std::size_t>(ow) * kRowBytes);
          drow += ow * kC0;
          continue;
        }
        const Float16* const srow = s + y * args.iw * kC0;
        std::int64_t x = yk - w.pl;
        for (std::int64_t ox = 0; ox < ow; ++ox, x += w.sw, drow += kC0) {
          if (x < 0 || x >= args.iw) {
            std::memset(drow, 0, kRowBytes);
          } else {
            std::memcpy(drow, srow + x * kC0, kRowBytes);
          }
        }
      }
      // Tail rows of the last fractal.
      if (padded > patches) {
        std::memset(d + plane + patches * kC0, 0,
                    static_cast<std::size_t>(padded - patches) * kRowBytes);
      }
    }
  }

  // Timing: in repeat mode 1 one instruction covers up to max_repeat
  // fractals of one (c1, xk, yk) plane; changing (xk, yk) needs a new
  // instruction (Section III-C).
  const std::int64_t instrs_per_plane =
      ceil_div(fractals_per_plane, arch_.max_repeat);
  const std::int64_t instrs = w.kh * w.kw * instrs_per_plane;
  const std::int64_t fractals = w.kh * w.kw * fractals_per_plane;
  stats_->im2col_instrs += instrs;
  stats_->im2col_fractals += fractals;
  // Fractal bytes written to the destination buffer (the L1 -> UB route
  // the paper's Im2Col pooling formulation rides).
  stats_->traffic.im2col_bytes += args.output_elems() * 2;
  if (profile_) {
    profile_->im2col.instrs += instrs;
    profile_->im2col.slots_used += fractals;
    profile_->im2col.slots_capacity += instrs * arch_.max_repeat;
    profile_->im2col.saturated_instrs +=
        w.kh * w.kw * (fractals_per_plane / arch_.max_repeat);
  }
  const std::int64_t cycles = cost_.im2col(instrs, fractals);
  stats_->scu_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kScu, cycles).start;
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kIm2col,
                   "mode1 instrs=" + std::to_string(instrs) +
                       " fractals=" + std::to_string(fractals),
                   cycles, fractals, instrs * arch_.max_repeat, start);
  }
  maybe_fault_result(dst, args.output_elems());
}

void Scu::im2col_load_mode0(Span<Float16> dst, Span<Float16> src,
                            const Im2colArgs& args) {
  args.validate();
  DV_CHECK(src.kind() == BufferKind::kL1)
      << "Im2Col loads from L1, got " << to_string(src.kind());
  DV_CHECK(dst.kind() == BufferKind::kUnified ||
           dst.kind() == BufferKind::kL0A || dst.kind() == BufferKind::kL0B)
      << "Im2Col targets L0A/L0B/UB, got " << to_string(dst.kind());
  DV_CHECK_LE(args.input_elems(), src.size());
  DV_CHECK_LE(args.output_elems(), dst.size());

  const Window2d& w = args.window;
  const PatchCoords coords(args);
  const std::int64_t patches = args.patches();
  const std::int64_t groups = args.patch_fractals();
  const std::int64_t kk = w.kh * w.kw;

  // Mode 0 (Figure 5): for each group of 16 consecutive patches, emit one
  // fractal per kernel-relative position, concatenated side by side.
  // Bounds are established by the size checks above; the loop moves each
  // C0 row as one 32-byte block on raw pointers.
  Float16* const d = dst.data();
  const Float16* const s = src.data();
  constexpr std::size_t kRowBytes = kC0 * sizeof(Float16);
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t xk = 0; xk < w.kh; ++xk) {
      for (std::int64_t yk = 0; yk < w.kw; ++yk) {
        const std::int64_t fbase =
            (g * kk + xk * w.kw + yk) * kFractalElems;
        for (std::int64_t r = 0; r < kFractalRows; ++r) {
          const std::int64_t p = g * kFractalRows + r;
          Float16* const drow = d + fbase + r * kC0;
          std::int64_t y, x;
          if (p >= patches || !coords.source(p, xk, yk, &y, &x)) {
            std::memset(drow, 0, kRowBytes);
            continue;
          }
          std::memcpy(drow, s + (y * args.iw + x) * kC0, kRowBytes);
        }
      }
    }
  }

  // Timing: in mode 0 one instruction iterates (xk, yk) for a fixed
  // 16-patch group; changing the group needs a new instruction
  // (Section III-C: "multiple Im2Col are needed to also change (x, y)").
  const std::int64_t instrs_per_group = ceil_div(kk, arch_.max_repeat);
  const std::int64_t instrs = groups * instrs_per_group;
  const std::int64_t fractals = groups * kk;
  stats_->im2col_instrs += instrs;
  stats_->im2col_fractals += fractals;
  stats_->traffic.im2col_bytes += args.output_elems() * 2;
  if (profile_) {
    profile_->im2col.instrs += instrs;
    profile_->im2col.slots_used += fractals;
    profile_->im2col.slots_capacity += instrs * arch_.max_repeat;
    profile_->im2col.saturated_instrs += groups * (kk / arch_.max_repeat);
  }
  const std::int64_t cycles = cost_.im2col(instrs, fractals);
  stats_->scu_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kScu, cycles).start;
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kIm2col,
                   "mode0 instrs=" + std::to_string(instrs) +
                       " fractals=" + std::to_string(fractals),
                   cycles, fractals, instrs * arch_.max_repeat, start);
  }
  maybe_fault_result(dst, args.output_elems());
}

void Scu::col2im(Span<Float16> out, Span<Float16> src, const Im2colArgs& args) {
  args.validate();
  DV_CHECK(out.kind() == BufferKind::kUnified &&
           src.kind() == BufferKind::kUnified)
      << "Col2Im operates within the Unified Buffer";
  DV_CHECK_LE(args.input_elems(), out.size());
  DV_CHECK_LE(args.output_elems(), src.size());

  const Window2d& w = args.window;
  const PatchCoords coords(args);
  const std::int64_t patches = args.patches();
  const std::int64_t padded = args.padded_patches();
  const std::int64_t fractals_per_plane = args.patch_fractals();

  // Functional semantics (Figure 6): for each fractal, load the 16 target
  // positions from `out`, add the input fractal, store back. Overlapping
  // patches accumulate because execution is sequential; every add rounds
  // to fp16 like the hardware's 16-bit vector adder. The raw-pointer loop
  // keeps that exact per-element accumulation order (it is load-bearing
  // for bit-identity); only the per-access bounds checks are hoisted into
  // the size checks above.
  Float16* const o = out.data();
  const Float16* const s = src.data();
  const float* const cvt = detail::f16_to_f32_table();
  const std::int64_t ow = coords.ow;
  const std::int64_t oh = patches / ow;
  for (std::int64_t xk = 0; xk < w.kh; ++xk) {
    for (std::int64_t yk = 0; yk < w.kw; ++yk) {
      const std::int64_t plane = (xk * w.kw + yk) * padded * kC0;
      const Float16* srow = s + plane;
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        const std::int64_t y = oy * w.sh + xk - w.pt;
        if (y < 0 || y >= args.ih) {
          srow += ow * kC0;  // gradient into the padding border is dropped
          continue;
        }
        Float16* const obase = o + y * args.iw * kC0;
        std::int64_t x = yk - w.pl;
        for (std::int64_t ox = 0; ox < ow; ++ox, x += w.sw, srow += kC0) {
          if (x < 0 || x >= args.iw) continue;
          Float16* const orow = obase + x * kC0;
          for (std::int64_t c = 0; c < kC0; ++c) {
            orow[c] = Float16(cvt[orow[c].bits()] + cvt[srow[c].bits()]);
          }
        }
      }
    }
  }

  // Timing: Col2Im only has repeat mode 1 (Section III-D), so as with the
  // transposed Im2Col one instruction covers up to max_repeat fractals of
  // one (xk, yk) plane.
  const std::int64_t instrs_per_plane =
      ceil_div(fractals_per_plane, arch_.max_repeat);
  const std::int64_t instrs = w.kh * w.kw * instrs_per_plane;
  const std::int64_t fractals = w.kh * w.kw * fractals_per_plane;
  stats_->col2im_instrs += instrs;
  stats_->col2im_fractals += fractals;
  // Gradient fractal bytes consumed from the UB column buffer (the
  // UB -> UB scatter-accumulate route of Figure 6).
  stats_->traffic.col2im_bytes += args.output_elems() * 2;
  if (profile_) {
    profile_->col2im.instrs += instrs;
    profile_->col2im.slots_used += fractals;
    profile_->col2im.slots_capacity += instrs * arch_.max_repeat;
    profile_->col2im.saturated_instrs +=
        w.kh * w.kw * (fractals_per_plane / arch_.max_repeat);
  }
  const std::int64_t cycles = cost_.col2im(instrs, fractals);
  stats_->scu_cycles += cycles;
  std::int64_t start = -1;
  if (sched_) start = sched_->issue(Pipe::kScu, cycles).start;
  if (trace_ && trace_->enabled()) {
    trace_->record(TraceKind::kCol2im,
                   "instrs=" + std::to_string(instrs) +
                       " fractals=" + std::to_string(fractals),
                   cycles, fractals, instrs * arch_.max_repeat, start);
  }
  maybe_fault_result(out, args.input_elems());
}

}  // namespace davinci
