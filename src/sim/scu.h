// Storage Conversion Unit: the Im2Col and Col2Im instructions
// (Sections III-C and III-D of the paper).
//
// Im2Col is a *load* instruction: while a tile moves from L1 to L0A, L0B or
// the Unified Buffer, the SCU rearranges it into the unrolled-convolution
// layout, one 16-patch x C0 fractal at a time. Because the transformation
// happens in flight, the duplicated elements of overlapping patches only
// occupy the target buffer -- no temporaries.
//
// The simulator implements the repeat-mode-1 transposed iteration order
// [c1, (xk, yk), (x, y)] that the paper's pooling kernels use: for each
// kernel-relative position (xk, yk), all patch fractals are emitted
// consecutively, yielding the output layout (Kh, Kw, Oh*Ow^, C0) per C1
// slice, where Oh*Ow^ is the patch count rounded up to whole fractals
// (tail patch rows are zero-filled). Viewed with the caller's N/C1 loop
// this is the paper's (N, C1, Kh, Kw, Oh, Ow, C0) tensor.
//
// Col2Im is the backward operator: a UB -> UB instruction that reads a
// fractal, *adds* it into the positions its patches came from (summing
// overlaps -- Figure 6), and stores back. The output region must be
// zero-initialized by the kernel first, exactly as the hardware requires.
#pragma once

#include <cstdint>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/align.h"
#include "common/float16.h"
#include "sim/fault.h"
#include "sim/scratch.h"
#include "sim/pipe_schedule.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"

namespace davinci {

struct Im2colArgs {
  Window2d window;
  std::int64_t ih = 0;  // input tile height (unpadded)
  std::int64_t iw = 0;  // input tile width (unpadded)

  void validate() const {
    window.validate();
    DV_CHECK_GE(ih, 1);
    DV_CHECK_GE(iw, 1);
  }

  std::int64_t oh() const { return window.out_h(ih); }
  std::int64_t ow() const { return window.out_w(iw); }
  std::int64_t patches() const { return oh() * ow(); }
  // Number of 16-patch fractal rows per kernel position.
  std::int64_t patch_fractals() const {
    return ceil_div(patches(), kFractalRows);
  }
  // Patch count rounded up to whole fractals.
  std::int64_t padded_patches() const {
    return patch_fractals() * kFractalRows;
  }
  // Elements of the im2col output per C1 slice:
  // Kh * Kw * padded_patches * C0.
  std::int64_t output_elems() const {
    return window.kh * window.kw * padded_patches() * kC0;
  }
  std::int64_t input_elems() const { return ih * iw * kC0; }
};

class Scu {
 public:
  Scu(const ArchConfig& arch, const CostModel& cost, CycleStats* stats,
      Trace* trace = nullptr, Profile* profile = nullptr,
      PipeScheduler* sched = nullptr)
      : arch_(arch), cost_(cost), stats_(stats), trace_(trace),
        profile_(profile), sched_(sched) {}

  // Attaches/detaches the core's fault stream (resilient runs only).
  void set_fault_state(CoreFaultState* fault) { fault_ = fault; }

  // Im2Col load, repeat mode 1, transposed order. `src` is an L1 tile of
  // (ih, iw, C0) contiguous elements (one N/C1 slice); `dst` receives
  // (Kh, Kw, padded_patches, C0) and must live in UB, L0A or L0B.
  // Out-of-image positions (zero padding) and tail patch rows load zeros.
  void im2col_load(Span<Float16> dst, Span<Float16> src,
                   const Im2colArgs& args);

  // Im2Col load, repeat mode 0: iteration order [(x, y), (xk, yk)] -- the
  // order of Figure 5, where the fractals of one 16-patch group for all
  // kernel positions land side by side. `dst` receives
  // (padded_patches/16, Kh, Kw, 16, C0): fractal (m, k) in m-major order,
  // the layout the Cube Unit's A operand uses for convolution. One
  // instruction covers up to max_repeat (xk, yk) steps of one patch group.
  void im2col_load_mode0(Span<Float16> dst, Span<Float16> src,
                         const Im2colArgs& args);

  // Col2Im: accumulates `src` (the im2col-shaped gradient tile,
  // (Kh, Kw, padded_patches, C0)) into `out` ((ih, iw, C0)), summing
  // overlapping patches. Both spans must be in the Unified Buffer and the
  // caller must have zero-initialized `out`. Contributions that fall into
  // the virtual zero-padding border are dropped.
  void col2im(Span<Float16> out, Span<Float16> src, const Im2colArgs& args);

 private:
  // Fault hook shared by all three instructions: the produced region may
  // take a landing bit flip (it just arrived in a scratch buffer) or a
  // site-specific fractal corruption.
  void maybe_fault_result(Span<Float16> dst, std::int64_t elems);

  const ArchConfig& arch_;
  const CostModel& cost_;
  CycleStats* stats_;
  Trace* trace_;
  Profile* profile_;
  PipeScheduler* sched_ = nullptr;
  CoreFaultState* fault_ = nullptr;
};

}  // namespace davinci
