// Versioned metrics JSON: the stable machine-readable surface of the
// observability layer (docs/OBSERVABILITY.md).
//
// A MetricsRegistry collects named runs (one per kernel invocation or
// pipeline layer), derives the roofline from each run's aggregate
// counters, and serializes everything under a schema marker:
//
//   { "schema": "davinci.metrics", "schema_version": 4, "entries": [
//       { "name": ..., "cycles": ..., "cycles_serial": ...,
//         "traffic": { per-route bytes }, "roofline": { ... },
//         "attribution": { "horizon", "critical_core", "cores": [
//             { "core", "makespan", "pipes": { per-pipe buckets } } ],
//           "critical_path": [ head segments ],
//           "critical_path_summary": { totals } } } ] }
//
// Schema version 2 adds an optional top-level "serve" object -- the
// serving-session statistics (queue depths, batch sizes, plan-cache hit
// rates, host-side latency percentiles) attached via set_serve() by
// serve::Session::add_metrics. Version 3 extends "serve" with the
// robustness surface: "expired" / "shed" / "rejected" / "cancelled"
// request counters, "overload_policy", "watchdog_alarms" and a nested
// "resilience" object (degraded_launches, bisections, poisoned_requests,
// launch_failures, quarantined_cores and the summed FaultStats).
// Version 4 splits each entry's "host_ns" into the attribution buckets
// "host_alloc_ns" / "host_plan_ns" / "host_validate_ns" /
// "host_execute_ns" (invariant: they sum to host_ns; see
// Device::RunResult). Version 5 extends "serve" with the async
// instruction-stream VM object ("vm": enabled/in_flight/launches/
// makespan/serial_sum/overlap_cycles/window_stalls/hazard_stalls plus
// per-pipe "streams" occupancy buckets where busy + wait + flag + idle
// == makespan * tracks exactly; docs/ASYNC_VM.md). Version 6 extends
// "serve" again: the latency objects ("host_latency_us" /
// "host_queue_wait_us") gain "p999", a "hist" sub-object (sparse
// log-linear buckets from common/histogram.h plus a dropped-sample
// counter -- offline-mergeable, any percentile re-derivable) and an
// "exact" sub-object (the first latency_sample_cap samples' percentiles
// with a "complete" flag for cross-checking the histogram), and the
// top-level "serve" adds "queue_depth" plus a "request_trace" object
// (lifecycle ring capacity / recorded / dropped / by_kind counters;
// serve/request_trace.h). Version 7 extends "serve" with a "cluster"
// object (serve/cluster.h): device count, placement, link parameters,
// sharded-launch and redistribution counters, "per_device" rows
// (launches / blocks / cycles / inflight_shards / vm_makespan) and a
// sparse "links" array of non-zero src->dst transfer totals, plus the
// top-level "makespan" roofline (max of busiest device VM makespan and
// busiest link busy cycles; docs/CLUSTER.md). Version-1..6 documents
// are still accepted by all in-tree consumers; they simply lack those
// keys.
//
// Consumers (tools/davinci_prof.cc, CI) key on schema/schema_version;
// any breaking field change must bump kSchemaVersion. The critical path
// is emitted head-truncated at kMaxPathSegments with exact totals in the
// summary, so files stay bounded for long runs.
//
// Surfaced as --metrics=<out.json> in davinci_pool_cli and the bench
// harness, and per-layer by nets::Pipeline.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"

namespace davinci {

class MetricsRegistry {
 public:
  static constexpr int kSchemaVersion = 7;
  // Critical-path segments serialized verbatim before head-truncation.
  static constexpr std::size_t kMaxPathSegments = 1024;

  // Records one named run; the roofline is derived from run.aggregate and
  // `arch` at serialization time.
  void add(const std::string& name, const Device::RunResult& run,
           const ArchConfig& arch);

  // Attaches the serving-session statistics as the document's top-level
  // "serve" object. `json_object` must be a serialized JSON object (the
  // caller -- serve::Session::add_metrics -- owns its field layout).
  // Empty string removes the object again.
  void set_serve(std::string json_object) { serve_ = std::move(json_object); }
  bool has_serve() const { return !serve_.empty(); }

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  std::string to_json() const;
  // Writes to_json() to `path` and prints where it went.
  void write(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    Device::RunResult run;
    ArchConfig arch;
  };
  std::vector<Entry> entries_;
  std::string serve_;  // serialized "serve" object, empty = absent
};

}  // namespace davinci
