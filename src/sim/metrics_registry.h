// Versioned metrics JSON: the stable machine-readable surface of the
// observability layer (docs/OBSERVABILITY.md).
//
// A MetricsRegistry collects named runs (one per kernel invocation or
// pipeline layer), derives the roofline from each run's aggregate
// counters, and serializes everything under a schema marker:
//
//   { "schema": "davinci.metrics", "schema_version": 1, "entries": [
//       { "name": ..., "cycles": ..., "cycles_serial": ...,
//         "traffic": { per-route bytes }, "roofline": { ... },
//         "attribution": { "horizon", "critical_core", "cores": [
//             { "core", "makespan", "pipes": { per-pipe buckets } } ],
//           "critical_path": [ head segments ],
//           "critical_path_summary": { totals } } } ] }
//
// Consumers (tools/davinci_prof.cc, CI) key on schema/schema_version;
// any breaking field change must bump kSchemaVersion. The critical path
// is emitted head-truncated at kMaxPathSegments with exact totals in the
// summary, so files stay bounded for long runs.
//
// Surfaced as --metrics=<out.json> in davinci_pool_cli and the bench
// harness, and per-layer by nets::Pipeline.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"

namespace davinci {

class MetricsRegistry {
 public:
  static constexpr int kSchemaVersion = 1;
  // Critical-path segments serialized verbatim before head-truncation.
  static constexpr std::size_t kMaxPathSegments = 1024;

  // Records one named run; the roofline is derived from run.aggregate and
  // `arch` at serialization time.
  void add(const std::string& name, const Device::RunResult& run,
           const ArchConfig& arch);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  std::string to_json() const;
  // Writes to_json() to `path` and prints where it went.
  void write(const std::string& path) const;

 private:
  struct Entry {
    std::string name;
    Device::RunResult run;
    ArchConfig arch;
  };
  std::vector<Entry> entries_;
};

}  // namespace davinci
