#include "sim/metrics_registry.h"

#include <cstdio>
#include <fstream>

#include "common/check.h"
#include "common/json.h"
#include "sim/metrics.h"

namespace davinci {

namespace {

// Locale-independent by construction; the old snprintf("%.9g") wrote ','
// decimals under comma-decimal locales, breaking the JSON.
std::string num(std::int64_t v) { return json::number(v); }

std::string num(double v) { return json::number(v); }

const char* kind_name(CritSegment::Kind k) {
  return k == CritSegment::Kind::kBusy ? "busy" : "stall";
}

std::string buckets_json(const PipeBuckets& b) {
  return "{\"busy\":" + num(b.busy) + ",\"wait\":" + num(b.wait) +
         ",\"flag\":" + num(b.flag) + ",\"idle\":" + num(b.idle) + "}";
}

std::string traffic_json(const MemTraffic& t) {
  std::string s = "{";
  s += "\"gm_to_l1\":" + num(t.gm_to_l1);
  s += ",\"gm_to_ub\":" + num(t.gm_to_ub);
  s += ",\"l1_to_ub\":" + num(t.l1_to_ub);
  s += ",\"l1_to_l0\":" + num(t.l1_to_l0);
  s += ",\"ub_to_l1\":" + num(t.ub_to_l1);
  s += ",\"ub_to_gm\":" + num(t.ub_to_gm);
  s += ",\"l1_to_gm\":" + num(t.l1_to_gm);
  s += ",\"l0c_to_ub\":" + num(t.l0c_to_ub);
  s += ",\"ub_to_l0c\":" + num(t.ub_to_l0c);
  s += ",\"im2col_bytes\":" + num(t.im2col_bytes);
  s += ",\"col2im_bytes\":" + num(t.col2im_bytes);
  s += ",\"ub_vector_bytes\":" + num(t.ub_vector_bytes);
  s += ",\"mte_total\":" + num(t.mte_total());
  s += ",\"gm_total\":" + num(t.gm_total());
  s += "}";
  return s;
}

std::string roofline_json(const Roofline& r) {
  std::string s = "{";
  s += "\"gm_bytes\":" + num(r.gm_bytes);
  s += ",\"mte_bytes\":" + num(r.mte_bytes);
  s += ",\"vector_slots\":" + num(r.vector_slots);
  s += ",\"achieved_gm_bytes_per_cycle\":" +
       num(r.achieved_gm_bytes_per_cycle);
  s += ",\"peak_gm_bytes_per_cycle\":" + num(r.peak_gm_bytes_per_cycle);
  s += ",\"arithmetic_intensity\":" + num(r.arithmetic_intensity);
  s += ",\"machine_balance\":" + num(r.machine_balance);
  s += ",\"class\":" + json::escape(r.klass());
  s += "}";
  return s;
}

std::string attribution_json(const DeviceAttribution& a) {
  std::string s = "{";
  s += "\"horizon\":" + num(a.horizon);
  s += ",\"critical_core\":" + num(static_cast<std::int64_t>(a.critical_core));
  s += ",\"path_truncated\":";
  s += a.path_truncated ? "true" : "false";
  s += ",\"cores\":[";
  for (std::size_t c = 0; c < a.cores.size(); ++c) {
    const CoreAttribution& ca = a.cores[c];
    if (c > 0) s += ",";
    s += "{\"core\":" + num(static_cast<std::int64_t>(ca.core)) + ",\"makespan\":" + num(ca.makespan) +
         ",\"pipes\":{";
    for (int p = 0; p < PipeScheduler::kNumPipes; ++p) {
      if (p > 0) s += ",";
      s += json::escape(to_string(static_cast<Pipe>(p))) + ":" +
           buckets_json(ca.pipes[p]);
    }
    s += "}}";
  }
  s += "]";
  // Head of the path verbatim, exact totals in the summary regardless of
  // how long it really is.
  std::int64_t busy_total = 0, stall_total = 0;
  for (const CritSegment& seg : a.critical_path) {
    (seg.kind == CritSegment::Kind::kBusy ? busy_total : stall_total) +=
        seg.length();
  }
  s += ",\"critical_path\":[";
  const std::size_t emit = a.critical_path.size() <
                                   MetricsRegistry::kMaxPathSegments
                               ? a.critical_path.size()
                               : MetricsRegistry::kMaxPathSegments;
  for (std::size_t i = 0; i < emit; ++i) {
    const CritSegment& seg = a.critical_path[i];
    if (i > 0) s += ",";
    s += "{\"pipe\":" + json::escape(to_string(seg.pipe)) +
         ",\"kind\":" + json::escape(kind_name(seg.kind)) +
         ",\"start\":" + num(seg.start) + ",\"end\":" + num(seg.end) + "}";
  }
  s += "],\"critical_path_summary\":{";
  s += "\"segments\":" + num(static_cast<std::int64_t>(a.critical_path.size()));
  s += ",\"emitted\":" + num(static_cast<std::int64_t>(emit));
  s += ",\"busy_cycles\":" + num(busy_total);
  s += ",\"stall_cycles\":" + num(stall_total);
  s += "}}";
  return s;
}

}  // namespace

void MetricsRegistry::add(const std::string& name,
                          const Device::RunResult& run,
                          const ArchConfig& arch) {
  entries_.push_back({name, run, arch});
}

std::string MetricsRegistry::to_json() const {
  std::string s = "{\"schema\":\"davinci.metrics\",\"schema_version\":" +
                  std::to_string(kSchemaVersion) + ",";
  if (!serve_.empty()) s += "\"serve\":" + serve_ + ",";
  s += "\"entries\":[\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Roofline roof = compute_roofline(e.run.aggregate, e.arch,
                                           e.run.device_cycles,
                                           e.run.cores_used);
    if (i > 0) s += ",\n";
    s += "{\"name\":" + json::escape(e.name);
    s += ",\"cycles\":" + num(e.run.device_cycles);
    s += ",\"cycles_serial\":" + num(e.run.device_cycles_serial);
    s += ",\"busiest_unit_cycles\":" + num(e.run.busiest_unit_cycles);
    s += ",\"pipelined_bound\":" + num(e.run.device_cycles_pipelined);
    s += ",\"host_ns\":" + num(e.run.host_ns);
    // Schema v4: where the host time went. Invariant:
    // alloc + plan + validate + execute == host_ns.
    s += ",\"host_alloc_ns\":" + num(e.run.host_alloc_ns);
    s += ",\"host_plan_ns\":" + num(e.run.host_plan_ns);
    s += ",\"host_validate_ns\":" + num(e.run.host_validate_ns);
    s += ",\"host_execute_ns\":" + num(e.run.host_execute_ns);
    s += ",\"cores_used\":" + num(static_cast<std::int64_t>(e.run.cores_used));
    s += ",\"traffic\":" + traffic_json(e.run.aggregate.traffic);
    s += ",\"roofline\":" + roofline_json(roof);
    s += ",\"attribution\":" + attribution_json(e.run.attribution);
    s += "}";
  }
  s += "\n]}\n";
  return s;
}

void MetricsRegistry::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  DV_CHECK(f.good()) << "cannot open metrics output file " << path;
  const std::string s = to_json();
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
  DV_CHECK(f.good()) << "failed writing metrics output file " << path;
  std::printf("metrics: wrote %zu entr%s to %s\n", entries_.size(),
              entries_.size() == 1 ? "y" : "ies", path.c_str());
}

}  // namespace davinci
