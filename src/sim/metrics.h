// Cycle attribution and roofline analysis over a finished run.
//
// Two questions the raw counters cannot answer (the pipe-level
// characterization of Zhou et al. and the co-design roofline of Gupta et
// al., see docs/OBSERVABILITY.md):
//
//  1. *Where did the makespan go?* attribute_cores() decomposes every
//     pipe of every core's timeline into busy / wait / flag / idle
//     buckets that sum exactly to the device horizon, and extracts the
//     critical core's bounding interval chain (PipeScheduler's
//     attribution() and critical_path()).
//  2. *Is the kernel compute- or transfer-bound?* compute_roofline()
//     compares achieved global-memory bytes/cycle against the
//     arch_config.h peak and classifies by arithmetic intensity
//     (vector lane-operations per GM byte) vs the machine balance.
//
// This header depends only on pipe_schedule/stats/arch so units and tests
// can use it without pulling in Device; Device::RunResult carries a
// DeviceAttribution, and sim/metrics_registry.h serializes both analyses
// to the versioned metrics JSON.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_config.h"
#include "sim/pipe_schedule.h"
#include "sim/stats.h"

namespace davinci {

// One core's per-pipe bucket decomposition. Each pipe's buckets sum
// exactly to the horizon the attribution was taken at.
struct CoreAttribution {
  int core = 0;
  std::int64_t makespan = 0;
  PipeBuckets pipes[PipeScheduler::kNumPipes];
};

struct DeviceAttribution {
  std::int64_t horizon = 0;  // device_cycles: max makespan over used cores
  std::vector<CoreAttribution> cores;
  // The core whose makespan equals the horizon (lowest id on ties) and
  // its bounding chain; segment lengths sum exactly to `horizon` unless
  // `path_truncated` (interval log overflow -- path empty, buckets still
  // exact).
  int critical_core = -1;
  std::vector<CritSegment> critical_path;
  bool path_truncated = false;
};

// Decomposes the timelines of the used cores (scheds[i] is core i's
// scheduler). The horizon is the max makespan, so cores that finished
// early show the shared wait as idle tail.
DeviceAttribution attribute_cores(
    const std::vector<const PipeScheduler*>& scheds);

// Roofline classification of one run from its aggregate counters.
struct Roofline {
  std::int64_t gm_bytes = 0;      // bytes crossing the GM boundary
  std::int64_t mte_bytes = 0;     // bytes on all MTE routes
  std::int64_t vector_slots = 0;  // active lane-operations issued
  double achieved_gm_bytes_per_cycle = 0.0;  // per core, vs the peak
  double peak_gm_bytes_per_cycle = 0.0;      // arch peak, per core
  double arithmetic_intensity = 0.0;  // lane-ops per GM byte
  double machine_balance = 0.0;       // lane-ops/cycle over peak bytes/cycle
  bool transfer_bound = false;

  const char* klass() const {
    return transfer_bound ? "transfer-bound" : "vector-bound";
  }
};

// `aggregate` is the sum over used cores, `device_cycles` the overlapped
// makespan; achieved bandwidth is normalized per core so it compares
// directly against the per-core arch peak.
Roofline compute_roofline(const CycleStats& aggregate, const ArchConfig& arch,
                          std::int64_t device_cycles, int cores_used);

}  // namespace davinci
