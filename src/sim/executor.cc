#include "sim/executor.h"

#include <algorithm>

#include "common/check.h"

namespace davinci {

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void WorkStealingPool::ensure_started() {
  if (!threads_.empty()) return;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;  // the standard allows 0 = "unknown"
  const std::size_t n = std::max(1u, hw);
  queues_.resize(n);
  threads_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

int WorkStealingPool::grab_task(std::size_t w) {
  // Own work first, front-to-back (lane order).
  if (!queues_[w].empty()) {
    const int t = queues_[w].front();
    queues_[w].pop_front();
    return t;
  }
  // Steal from the back of the fullest victim.
  std::size_t victim = queues_.size();
  std::size_t best = 0;
  for (std::size_t v = 0; v < queues_.size(); ++v) {
    if (v != w && queues_[v].size() > best) {
      best = queues_[v].size();
      victim = v;
    }
  }
  if (victim == queues_.size()) return -1;
  const int t = queues_[victim].back();
  queues_[victim].pop_back();
  return t;
}

void WorkStealingPool::worker_main(std::size_t w) {
  std::unique_lock<std::mutex> lk(m_);
  while (true) {
    work_cv_.wait(lk, [&] {
      if (shutdown_) return true;
      if (task_ == nullptr) return false;
      for (const auto& q : queues_) {
        if (!q.empty()) return true;
      }
      return false;
    });
    if (shutdown_) return;
    const int t = grab_task(w);
    if (t < 0) continue;  // another worker drained the queues first
    const std::function<void(int)>* fn = task_;
    lk.unlock();
    (*fn)(t);
    lk.lock();
    if (--outstanding_ == 0) done_cv_.notify_all();
  }
}

void WorkStealingPool::run(int n, const std::function<void(int)>& task) {
  DV_CHECK_GE(n, 0);
  if (n == 0) return;
  ensure_started();
  std::unique_lock<std::mutex> lk(m_);
  DV_CHECK(task_ == nullptr) << "WorkStealingPool::run is not reentrant";
  task_ = &task;
  outstanding_ = n;
  for (int t = 0; t < n; ++t) {
    queues_[static_cast<std::size_t>(t) % queues_.size()].push_back(t);
  }
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return outstanding_ == 0; });
  task_ = nullptr;
}

}  // namespace davinci
