// The Vector Unit (Section III-A).
//
// Executes SIMD arithmetic over data in the Unified Buffer. One
// instruction runs `repeat` iterations; each iteration processes up to 128
// fp16 lanes gated by a 128-bit mask register. Operand addresses advance
// by per-operand "repeat strides" between iterations. An iteration costs
// one cycle whether 128 lanes or 16 lanes are active -- this is the
// mechanism behind every speedup in the paper: the standard pooling
// lowering can only activate C0 = 16 of the 128 lanes, while the
// Im2col-layout lowering saturates the mask.
//
// A repeat stride of 0 keeps an operand in place across iterations; with
// dst == src0 this yields the reduction idiom the paper describes ("each
// vmax uses repetition to obtain the maximum value across the width of a
// patch Kw"). The simulator executes repeats sequentially, so the
// read-after-write behaviour is well defined.
#pragma once

#include <cstdint>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/float16.h"
#include "sim/fault.h"
#include "sim/scratch.h"
#include "sim/pipe_schedule.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace davinci {

// 128-bit lane mask.
struct VecMask {
  std::uint64_t lo = ~0ull;
  std::uint64_t hi = ~0ull;

  static VecMask full() { return VecMask{}; }

  // Mask with lanes [0, n) active.
  static VecMask first_n(int n);

  bool lane(int i) const {
    return i < 64 ? (lo >> i) & 1u : (hi >> (i - 64)) & 1u;
  }
  int count() const;
};

struct VecConfig {
  VecMask mask = VecMask::full();
  int repeat = 1;
  // Elements (not blocks) each operand advances between repeat iterations.
  std::int64_t dst_rep_stride = 128;
  std::int64_t src0_rep_stride = 128;
  std::int64_t src1_rep_stride = 128;

  static VecConfig flat(int repeat) {
    VecConfig c;
    c.repeat = repeat;
    return c;
  }
};

enum class VecOp : std::uint8_t { kMax, kMin, kAdd, kSub, kMul, kDiv };

const char* to_string(VecOp op);

class VectorUnit {
 public:
  VectorUnit(const ArchConfig& arch, const CostModel& cost, CycleStats* stats,
             Trace* trace = nullptr, Profile* profile = nullptr,
             PipeScheduler* sched = nullptr)
      : arch_(arch), cost_(cost), stats_(stats), trace_(trace),
        profile_(profile), sched_(sched) {}

  // Attaches/detaches the core's fault stream (resilient runs only).
  void set_fault_state(CoreFaultState* fault) { fault_ = fault; }

  // dst[i] = op(src0[i], src1[i]) per active lane, per repeat.
  void binary(VecOp op, Span<Float16> dst, Span<Float16> src0,
              Span<Float16> src1, const VecConfig& cfg);

  // vector_dup: dst[i] = value.
  void dup(Span<Float16> dst, Float16 value, const VecConfig& cfg);

  // vadds / vmuls: dst[i] = src[i] + s  /  src[i] * s. (vadds with s = 0 is
  // the vector-copy idiom used by the "expansion" implementation.)
  void adds(Span<Float16> dst, Span<Float16> src, Float16 s,
            const VecConfig& cfg);
  void muls(Span<Float16> dst, Span<Float16> src, Float16 s,
            const VecConfig& cfg);

  // vcmpv_eq: dst[i] = (src0[i] == src1[i]) ? 1.0 : 0.0. Produces the
  // Argmax mask by comparing each patch with the broadcast maximum
  // (Section V-A: "comparing each patch of the input with its maximum
  // value"). Ties therefore mark every maximal position, matching the
  // paper's mask semantics.
  void cmpv_eq(Span<Float16> dst, Span<Float16> src0, Span<Float16> src1,
               const VecConfig& cfg);

  // vsel: dst[i] = cond[i] != 0 ? a[i] : b[i].
  void sel(Span<Float16> dst, Span<Float16> cond, Span<Float16> a,
           Span<Float16> b, const VecConfig& cfg);

 private:
  void validate(const Span<Float16>& s, const VecConfig& cfg,
                std::int64_t rep_stride) const;
  void charge(const char* op, const VecConfig& cfg);

  const ArchConfig& arch_;
  const CostModel& cost_;
  CycleStats* stats_;
  Trace* trace_;
  Profile* profile_;
  PipeScheduler* sched_ = nullptr;
  CoreFaultState* fault_ = nullptr;
};

}  // namespace davinci
