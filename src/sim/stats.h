// Cycle and instruction accounting, per AI Core.
//
// The paper's only obtainable metric on the Ascend 910 was the hardware
// cycle counter; the simulator's equivalent is CycleStats::total_cycles.
// Per-pipe breakdowns and instruction counts are extra observability the
// benches use to explain *why* an implementation wins (issue counts and
// mask saturation, the quantities Section V reasons about).
#pragma once

#include <cstdint>
#include <string>

namespace davinci {

struct CycleStats {
  // Cycles by pipe. The simulator executes a single in-order timeline, so
  // total_cycles is the sum of the pipe cycles plus barrier costs; the
  // breakdown attributes each instruction to the unit that executed it.
  std::int64_t vector_cycles = 0;
  std::int64_t scalar_cycles = 0;
  std::int64_t mte_cycles = 0;
  std::int64_t scu_cycles = 0;
  std::int64_t cube_cycles = 0;
  std::int64_t barrier_cycles = 0;
  std::int64_t launch_cycles = 0;

  // Instruction counts.
  std::int64_t vector_instrs = 0;
  std::int64_t vector_repeats = 0;       // total repeat iterations executed
  std::int64_t vector_active_lanes = 0;  // sum of active mask lanes / repeat
  std::int64_t mte_transfers = 0;
  std::int64_t mte_bytes = 0;
  std::int64_t im2col_instrs = 0;
  std::int64_t im2col_fractals = 0;
  std::int64_t col2im_instrs = 0;
  std::int64_t col2im_fractals = 0;
  std::int64_t cube_instrs = 0;
  std::int64_t cube_fractal_macs = 0;

  std::int64_t total_cycles() const {
    return vector_cycles + scalar_cycles + mte_cycles + scu_cycles +
           cube_cycles + barrier_cycles + launch_cycles;
  }

  // Optimistic pipe-overlap bound: real DaVinci pipes (Vector+Scalar,
  // MTE, SCU, Cube) run concurrently between synchronization points, so
  // a perfectly double-buffered schedule is bounded below by the busiest
  // pipe. The A5 ablation uses this to show the reproduced orderings do
  // not depend on the serial-timeline simplification.
  std::int64_t pipelined_cycles() const {
    const std::int64_t compute = vector_cycles + scalar_cycles;
    std::int64_t busiest = compute;
    if (mte_cycles > busiest) busiest = mte_cycles;
    if (scu_cycles > busiest) busiest = scu_cycles;
    if (cube_cycles > busiest) busiest = cube_cycles;
    return busiest + barrier_cycles + launch_cycles;
  }

  // Average fraction of the 128 vector lanes doing useful work -- the
  // paper's "vector mask saturation".
  double lane_utilization() const {
    if (vector_repeats == 0) return 0.0;
    return static_cast<double>(vector_active_lanes) /
           (128.0 * static_cast<double>(vector_repeats));
  }

  CycleStats& operator+=(const CycleStats& o) {
    vector_cycles += o.vector_cycles;
    scalar_cycles += o.scalar_cycles;
    mte_cycles += o.mte_cycles;
    scu_cycles += o.scu_cycles;
    cube_cycles += o.cube_cycles;
    barrier_cycles += o.barrier_cycles;
    launch_cycles += o.launch_cycles;
    vector_instrs += o.vector_instrs;
    vector_repeats += o.vector_repeats;
    vector_active_lanes += o.vector_active_lanes;
    mte_transfers += o.mte_transfers;
    mte_bytes += o.mte_bytes;
    im2col_instrs += o.im2col_instrs;
    im2col_fractals += o.im2col_fractals;
    col2im_instrs += o.col2im_instrs;
    col2im_fractals += o.col2im_fractals;
    cube_instrs += o.cube_instrs;
    cube_fractal_macs += o.cube_fractal_macs;
    return *this;
  }

  std::string summary() const {
    std::string s;
    s += "cycles=" + std::to_string(total_cycles());
    s += " (vec=" + std::to_string(vector_cycles);
    s += " scalar=" + std::to_string(scalar_cycles);
    s += " mte=" + std::to_string(mte_cycles);
    s += " scu=" + std::to_string(scu_cycles);
    s += " cube=" + std::to_string(cube_cycles);
    s += " barrier=" + std::to_string(barrier_cycles);
    s += " launch=" + std::to_string(launch_cycles) + ")";
    s += " vinstr=" + std::to_string(vector_instrs);
    s += " lane_util=" + std::to_string(lane_utilization());
    return s;
  }
};

}  // namespace davinci
