// Cycle and instruction accounting, per AI Core.
//
// The paper's only obtainable metric on the Ascend 910 was the hardware
// cycle counter; the simulator's equivalent is CycleStats::total_cycles.
// Per-pipe breakdowns and instruction counts are extra observability the
// benches use to explain *why* an implementation wins (issue counts and
// mask saturation, the quantities Section V reasons about).
#pragma once

#include <cstdint>
#include <string>

namespace davinci {

// Occupancy ledger of one execution unit: how full each issue was relative
// to what the unit could have done in the same issue. The slot currency is
// unit-specific (see Profile below); the ratio slots_used / slots_capacity
// is always "fraction of the unit's capacity doing useful work".
struct UnitOccupancy {
  std::int64_t instrs = 0;           // instructions issued
  std::int64_t slots_used = 0;       // occupied slots, summed over instrs
  std::int64_t slots_capacity = 0;   // available slots, summed over instrs
  std::int64_t saturated_instrs = 0; // instrs issued at full occupancy

  // Mean fraction of the unit's slots doing useful work (0 when idle).
  double occupancy() const {
    if (slots_capacity == 0) return 0.0;
    return static_cast<double>(slots_used) /
           static_cast<double>(slots_capacity);
  }

  // Fraction of instructions issued at full occupancy (0 when idle).
  double saturation() const {
    if (instrs == 0) return 0.0;
    return static_cast<double>(saturated_instrs) /
           static_cast<double>(instrs);
  }

  UnitOccupancy& operator+=(const UnitOccupancy& o) {
    instrs += o.instrs;
    slots_used += o.slots_used;
    slots_capacity += o.slots_capacity;
    saturated_instrs += o.saturated_instrs;
    return *this;
  }
};

// Per-instruction utilization breakdown of one AI Core (merged over cores
// in Device::RunResult). This is the paper's Section V evidence in counter
// form: direct pooling issues Oh*Ow*Kh vector instructions at 16 of 128
// lanes, the Im2col formulation issues Kh*Kw at 128 of 128 -- `vec`
// measures exactly that. Slot currencies:
//
//   vec     lanes: used = active mask lanes per repeat iteration,
//           capacity = 128 per repeat iteration; saturated = full mask.
//   im2col/ fractals: used = fractals covered, capacity = max_repeat per
//   col2im  instruction; saturated = instruction carrying max_repeat
//           fractals (the repeat parameter fully absorbing the loop).
//   cube    busy cycles: used = fractal-MAC cycles, capacity = charged
//           cycles including issue overhead (amortization; no
//           architectural full mark, saturated stays 0).
//   mte     busy cycles: used = payload bandwidth cycles, capacity =
//           charged cycles including startup and per-burst costs
//           (achieved-bandwidth fraction; saturated stays 0).
struct Profile {
  // Histogram of the per-instruction active-lane count of the Vector
  // Unit, in eight 16-lane buckets: bucket 0 counts instructions with
  // 1..16 active lanes, bucket 7 counts 113..128 (the saturated bucket).
  static constexpr int kLaneBuckets = 8;

  UnitOccupancy vec;
  UnitOccupancy im2col;
  UnitOccupancy col2im;
  UnitOccupancy cube;
  UnitOccupancy mte;
  std::int64_t vec_lane_hist[kLaneBuckets] = {};

  void count_vec_instr(int lanes, int total_lanes, std::int64_t repeat) {
    vec.instrs += 1;
    vec.slots_used += static_cast<std::int64_t>(lanes) * repeat;
    vec.slots_capacity += static_cast<std::int64_t>(total_lanes) * repeat;
    if (lanes == total_lanes) vec.saturated_instrs += 1;
    if (lanes > 0) {
      int bucket = (lanes - 1) / 16;
      if (bucket >= kLaneBuckets) bucket = kLaneBuckets - 1;
      vec_lane_hist[bucket] += 1;
    }
  }

  // The paper's headline metric: mean fraction of the 128 vector lanes
  // doing useful work per repeat iteration.
  double vec_lane_utilization() const { return vec.occupancy(); }

  Profile& operator+=(const Profile& o) {
    vec += o.vec;
    im2col += o.im2col;
    col2im += o.col2im;
    cube += o.cube;
    mte += o.mte;
    for (int i = 0; i < kLaneBuckets; ++i) {
      vec_lane_hist[i] += o.vec_lane_hist[i];
    }
    return *this;
  }

  std::string summary() const {
    auto pct = [](double v) {
      return std::to_string(static_cast<int>(v * 100.0 + 0.5)) + "%";
    };
    std::string s;
    s += "vec=" + pct(vec.occupancy()) + " (sat " + pct(vec.saturation()) +
         " of " + std::to_string(vec.instrs) + " instr)";
    s += " im2col=" + pct(im2col.occupancy());
    s += " col2im=" + pct(col2im.occupancy());
    s += " cube=" + pct(cube.occupancy());
    s += " mte=" + pct(mte.occupancy());
    return s;
  }
};

// Bytes moved per architectural route, charged at the same sites as the
// cycle costs (Mte::charge by src/dst buffer kind, Scu for the fractal
// payloads Im2Col produces / Col2Im consumes, VectorUnit for UB operand
// traffic). Feeds the roofline classification in sim/metrics.h: achieved
// bytes/cycle on each route vs the arch_config.h peak, and arithmetic
// intensity = vector slots / bytes moved.
struct MemTraffic {
  std::int64_t gm_to_l1 = 0;   // MTE inbound, feature-map loads
  std::int64_t gm_to_ub = 0;   // MTE inbound, direct-to-UB loads
  std::int64_t l1_to_ub = 0;   // MTE L1 -> UB staging
  std::int64_t l1_to_l0 = 0;   // MTE L1 -> L0A/L0B cube staging
  std::int64_t ub_to_l1 = 0;   // MTE UB -> L1 write-back
  std::int64_t ub_to_gm = 0;   // MTE outbound stores
  std::int64_t l1_to_gm = 0;   // MTE outbound from L1
  std::int64_t l0c_to_ub = 0;  // cube accumulator drain
  std::int64_t ub_to_l0c = 0;  // accumulator preload
  std::int64_t im2col_bytes = 0;  // fractal bytes Im2Col wrote (L1 -> UB)
  std::int64_t col2im_bytes = 0;  // fractal bytes Col2Im read (UB -> UB)
  std::int64_t ub_vector_bytes = 0;  // UB elements the Vector Unit touched

  // All MTE-route bytes (the SCU/vector counters overlap routes above and
  // are reported separately, not summed here).
  std::int64_t mte_total() const {
    return gm_to_l1 + gm_to_ub + l1_to_ub + l1_to_l0 + ub_to_l1 + ub_to_gm +
           l1_to_gm + l0c_to_ub + ub_to_l0c;
  }
  // Bytes crossing the GM boundary in either direction -- the roofline's
  // traffic denominator.
  std::int64_t gm_total() const {
    return gm_to_l1 + gm_to_ub + ub_to_gm + l1_to_gm;
  }

  MemTraffic& operator+=(const MemTraffic& o) {
    gm_to_l1 += o.gm_to_l1;
    gm_to_ub += o.gm_to_ub;
    l1_to_ub += o.l1_to_ub;
    l1_to_l0 += o.l1_to_l0;
    ub_to_l1 += o.ub_to_l1;
    ub_to_gm += o.ub_to_gm;
    l1_to_gm += o.l1_to_gm;
    l0c_to_ub += o.l0c_to_ub;
    ub_to_l0c += o.ub_to_l0c;
    im2col_bytes += o.im2col_bytes;
    col2im_bytes += o.col2im_bytes;
    ub_vector_bytes += o.ub_vector_bytes;
    return *this;
  }
};

struct CycleStats {
  // Cycles by pipe. The simulator executes a single in-order timeline, so
  // total_cycles is the sum of the pipe cycles plus barrier costs; the
  // breakdown attributes each instruction to the unit that executed it.
  std::int64_t vector_cycles = 0;
  std::int64_t scalar_cycles = 0;
  std::int64_t mte_cycles = 0;
  std::int64_t scu_cycles = 0;
  std::int64_t cube_cycles = 0;
  std::int64_t barrier_cycles = 0;
  std::int64_t launch_cycles = 0;

  // Instruction counts.
  std::int64_t vector_instrs = 0;
  std::int64_t vector_repeats = 0;       // total repeat iterations executed
  std::int64_t vector_active_lanes = 0;  // sum of active mask lanes / repeat
  std::int64_t mte_transfers = 0;
  std::int64_t mte_bytes = 0;
  std::int64_t im2col_instrs = 0;
  std::int64_t im2col_fractals = 0;
  std::int64_t col2im_instrs = 0;
  std::int64_t col2im_fractals = 0;
  std::int64_t cube_instrs = 0;
  std::int64_t cube_fractal_macs = 0;

  // Bytes moved per route (see MemTraffic above).
  MemTraffic traffic;

  std::int64_t total_cycles() const {
    return vector_cycles + scalar_cycles + mte_cycles + scu_cycles +
           cube_cycles + barrier_cycles + launch_cycles;
  }

  // Optimistic pipe-overlap bound: real DaVinci pipes (Vector+Scalar,
  // MTE, SCU, Cube) run concurrently between synchronization points, so
  // a perfectly double-buffered schedule is bounded below by the busiest
  // pipe. The A5 ablation uses this to show the reproduced orderings do
  // not depend on the serial-timeline simplification.
  std::int64_t pipelined_cycles() const {
    const std::int64_t compute = vector_cycles + scalar_cycles;
    std::int64_t busiest = compute;
    if (mte_cycles > busiest) busiest = mte_cycles;
    if (scu_cycles > busiest) busiest = scu_cycles;
    if (cube_cycles > busiest) busiest = cube_cycles;
    return busiest + barrier_cycles + launch_cycles;
  }

  // Average fraction of the 128 vector lanes doing useful work -- the
  // paper's "vector mask saturation".
  double lane_utilization() const {
    if (vector_repeats == 0) return 0.0;
    return static_cast<double>(vector_active_lanes) /
           (128.0 * static_cast<double>(vector_repeats));
  }

  CycleStats& operator+=(const CycleStats& o) {
    vector_cycles += o.vector_cycles;
    scalar_cycles += o.scalar_cycles;
    mte_cycles += o.mte_cycles;
    scu_cycles += o.scu_cycles;
    cube_cycles += o.cube_cycles;
    barrier_cycles += o.barrier_cycles;
    launch_cycles += o.launch_cycles;
    vector_instrs += o.vector_instrs;
    vector_repeats += o.vector_repeats;
    vector_active_lanes += o.vector_active_lanes;
    mte_transfers += o.mte_transfers;
    mte_bytes += o.mte_bytes;
    im2col_instrs += o.im2col_instrs;
    im2col_fractals += o.im2col_fractals;
    col2im_instrs += o.col2im_instrs;
    col2im_fractals += o.col2im_fractals;
    cube_instrs += o.cube_instrs;
    cube_fractal_macs += o.cube_fractal_macs;
    traffic += o.traffic;
    return *this;
  }

  std::string summary() const {
    std::string s;
    s += "cycles=" + std::to_string(total_cycles());
    s += " (vec=" + std::to_string(vector_cycles);
    s += " scalar=" + std::to_string(scalar_cycles);
    s += " mte=" + std::to_string(mte_cycles);
    s += " scu=" + std::to_string(scu_cycles);
    s += " cube=" + std::to_string(cube_cycles);
    s += " barrier=" + std::to_string(barrier_cycles);
    s += " launch=" + std::to_string(launch_cycles) + ")";
    s += " vinstr=" + std::to_string(vector_instrs);
    s += " lane_util=" + std::to_string(lane_utilization());
    return s;
  }
};

}  // namespace davinci
