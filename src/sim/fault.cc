#include "sim/fault.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "common/json.h"

namespace davinci {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kBitflipUb: return "bitflip:ub";
    case FaultSite::kBitflipL1: return "bitflip:l1";
    case FaultSite::kBitflipL0: return "bitflip:l0";
    case FaultSite::kMteDrop: return "mte_drop";
    case FaultSite::kScuFractal: return "scu_err";
    case FaultSite::kVecTransient: return "vec_fault";
    case FaultSite::kCoreFail: return "core_fail";
  }
  return "?";
}

bool FaultPlan::empty() const {
  if (!core_failures.empty()) return false;
  for (double r : rate) {
    if (r > 0.0) return false;
  }
  return true;
}

bool FaultPlan::has_silent_sites() const {
  return rate[static_cast<int>(FaultSite::kBitflipUb)] > 0.0 ||
         rate[static_cast<int>(FaultSite::kBitflipL1)] > 0.0 ||
         rate[static_cast<int>(FaultSite::kBitflipL0)] > 0.0 ||
         rate[static_cast<int>(FaultSite::kMteDrop)] > 0.0 ||
         rate[static_cast<int>(FaultSite::kScuFractal)] > 0.0;
}

namespace {

double parse_rate(const std::string& item, const std::string& text) {
  // std::from_chars, not strtod: the spec grammar uses '.' decimals, and
  // strtod would reject them under a comma-decimal locale -- breaking the
  // to_string() round trip exactly where the formatter fix made it safe.
  double r = 0.0;
  const std::from_chars_result res =
      std::from_chars(text.data(), text.data() + text.size(), r);
  DV_CHECK(res.ec == std::errc() && res.ptr == text.data() + text.size())
      << "bad fault rate '" << text << "' in spec item '" << item << "'";
  DV_CHECK(r >= 0.0) << "negative fault rate in spec item '" << item << "'";
  return r;
}

std::int64_t parse_i64(const std::string& item, const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  DV_CHECK(end != nullptr && *end == '\0' && end != text.c_str())
      << "bad integer '" << text << "' in spec item '" << item << "'";
  return static_cast<std::int64_t>(v);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    if (item.rfind("core_fail@", 0) == 0) {
      const std::string args = item.substr(10);
      const std::size_t at = args.find('@');
      CoreFailTrigger t;
      if (at == std::string::npos) {
        t.core = static_cast<int>(parse_i64(item, args));
      } else {
        t.core = static_cast<int>(parse_i64(item, args.substr(0, at)));
        t.from_block = parse_i64(item, args.substr(at + 1));
      }
      DV_CHECK_GE(t.core, 0) << "in spec item '" << item << "'";
      DV_CHECK_GE(t.from_block, 0) << "in spec item '" << item << "'";
      plan.core_failures.push_back(t);
      continue;
    }

    static const struct {
      const char* prefix;
      FaultSite site;
    } kRateSites[] = {
        {"bitflip:ub:", FaultSite::kBitflipUb},
        {"bitflip:l1:", FaultSite::kBitflipL1},
        {"bitflip:l0:", FaultSite::kBitflipL0},
        {"mte_drop:", FaultSite::kMteDrop},
        {"scu_err:", FaultSite::kScuFractal},
        {"vec_fault:", FaultSite::kVecTransient},
    };
    bool matched = false;
    for (const auto& rs : kRateSites) {
      const std::string prefix(rs.prefix);
      if (item.rfind(prefix, 0) == 0) {
        plan.rate[static_cast<int>(rs.site)] =
            parse_rate(item, item.substr(prefix.size()));
        matched = true;
        break;
      }
    }
    DV_CHECK(matched) << "unknown fault spec item '" << item
                      << "' (grammar: core_fail@C[@B], bitflip:ub|l1|l0:R, "
                         "mte_drop:R, scu_err:R, vec_fault:R)";
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string s;
  auto append = [&](const std::string& item) {
    if (!s.empty()) s += ",";
    s += item;
  };
  for (const CoreFailTrigger& t : core_failures) {
    std::string item = "core_fail@" + std::to_string(t.core);
    if (t.from_block != 0) item += "@" + std::to_string(t.from_block);
    append(item);
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (rate[i] > 0.0) {
      // json::number, not std::to_string: fixed-point would print rates
      // below 5e-7 as "0.000000" and break the parse round trip. Unlike
      // the snprintf("%g") it replaces, the shortest-round-trip form is
      // also exact and locale-independent (no ',' decimal separator).
      append(std::string(davinci::to_string(static_cast<FaultSite>(i))) +
             ":" + json::number(rate[i]));
    }
  }
  return s.empty() ? "<empty>" : s;
}

FaultStats& FaultStats::operator+=(const FaultStats& o) {
  faults_injected += o.faults_injected;
  silent_injected += o.silent_injected;
  faults_detected += o.faults_detected;
  faults_absorbed += o.faults_absorbed;
  retries += o.retries;
  verification_runs += o.verification_runs;
  blocks_redispatched += o.blocks_redispatched;
  cores_quarantined += o.cores_quarantined;
  return *this;
}

std::string FaultStats::summary() const {
  std::string s;
  s += "injected=" + std::to_string(faults_injected);
  s += " (silent=" + std::to_string(silent_injected) + ")";
  s += " detected=" + std::to_string(faults_detected);
  s += " absorbed=" + std::to_string(faults_absorbed);
  s += " retries=" + std::to_string(retries);
  s += " verification_runs=" + std::to_string(verification_runs);
  s += " blocks_redispatched=" + std::to_string(blocks_redispatched);
  s += " cores_quarantined=" + std::to_string(cores_quarantined);
  return s;
}

CoreFaultState::CoreFaultState(const FaultPlan& plan, int core)
    : plan_(&plan),
      core_(core),
      rng_(plan.seed ^ (0x9E3779B97F4A7C15ull *
                        (static_cast<std::uint64_t>(core) + 1))) {
  for (const CoreFailTrigger& t : plan.core_failures) {
    if (t.core != core_) continue;
    if (fail_from_block_ < 0 || t.from_block < fail_from_block_) {
      fail_from_block_ = t.from_block;
    }
  }
}

void CoreFaultState::begin_execution(std::int64_t block, bool record_crc) {
  block_ = block;
  attempt_silent_ = 0;
  record_crc_ = record_crc;
  crc_ = 0xCBF29CE484222325ull;  // FNV-1a offset basis
}

void CoreFaultState::check_core_alive(std::int64_t block) {
  if (fail_from_block_ < 0 || block < fail_from_block_) return;
  stats_.faults_injected += 1;
  throw CoreFailed(core_, "injected hard failure: core " +
                              std::to_string(core_) + " is down (block " +
                              std::to_string(block) + ", trigger core_fail@" +
                              std::to_string(core_) + "@" +
                              std::to_string(fail_from_block_) + ")");
}

void CoreFaultState::accept_execution() {
  stats_.faults_absorbed += attempt_silent_;
  attempt_silent_ = 0;
}

bool CoreFaultState::fire(FaultSite site, double events) {
  const double r = plan_->rate[static_cast<int>(site)];
  if (r <= 0.0 || events <= 0.0) return false;
  const double p = std::min(r * events, 1.0);
  return rng_.next_double() < p;
}

std::int64_t CoreFaultState::admit_transfer(std::int64_t count) {
  if (count <= 0 || !fire(FaultSite::kMteDrop, 1.0)) return count;
  stats_.faults_injected += 1;
  stats_.silent_injected += 1;
  attempt_silent_ += 1;
  // The transfer dies partway: [0, moved) arrives, the tail never does.
  return static_cast<std::int64_t>(
      rng_.next_below(static_cast<std::uint64_t>(count)));
}

void CoreFaultState::on_landing(BufferKind dst, std::byte* data,
                                std::int64_t bytes) {
  if (bytes <= 0) return;
  FaultSite site;
  switch (dst) {
    case BufferKind::kUnified: site = FaultSite::kBitflipUb; break;
    case BufferKind::kL1: site = FaultSite::kBitflipL1; break;
    case BufferKind::kL0A:
    case BufferKind::kL0B:
    case BufferKind::kL0C: site = FaultSite::kBitflipL0; break;
    case BufferKind::kGlobal:
    default: return;  // global memory is ECC-protected host DRAM here
  }
  if (!fire(site, static_cast<double>(bytes))) return;
  const std::int64_t byte = static_cast<std::int64_t>(
      rng_.next_below(static_cast<std::uint64_t>(bytes)));
  const int bit = static_cast<int>(rng_.next_below(8));
  data[byte] ^= static_cast<std::byte>(1u << bit);
  stats_.faults_injected += 1;
  stats_.silent_injected += 1;
  attempt_silent_ += 1;
}

void CoreFaultState::on_scu_result(std::byte* data, std::int64_t bytes) {
  if (bytes < 2 || !fire(FaultSite::kScuFractal, 1.0)) return;
  // Garble one fp16 element of the produced fractal grid.
  const std::int64_t elem = static_cast<std::int64_t>(
      rng_.next_below(static_cast<std::uint64_t>(bytes / 2)));
  data[2 * elem] = static_cast<std::byte>(rng_.next_below(256));
  data[2 * elem + 1] = static_cast<std::byte>(rng_.next_below(256));
  stats_.faults_injected += 1;
  stats_.silent_injected += 1;
  attempt_silent_ += 1;
}

void CoreFaultState::on_vector_instr(const char* op) {
  if (!fire(FaultSite::kVecTransient, 1.0)) return;
  stats_.faults_injected += 1;
  throw TransientFault("transient vector-unit fault on core " +
                       std::to_string(core_) + " during '" + op +
                       "' (block " + std::to_string(block_) +
                       "); parity detected, block must be retried");
}

void CoreFaultState::crc_note(std::uint64_t value) {
  crc_update(&value, static_cast<std::int64_t>(sizeof(value)));
}

void CoreFaultState::crc_update(const void* data, std::int64_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = crc_;
  for (std::int64_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;  // FNV-1a prime
  }
  crc_ = h;
}

}  // namespace davinci
