// Scratch-pad memories of the AI Core (Section III-A).
//
// Unlike hardware-managed caches, DaVinci's private buffers are software-
// managed: each buffer is its own address space and the kernel explicitly
// allocates regions and moves data. The simulator models each buffer as a
// bump allocator over a byte array with hard capacity checks -- the
// "tiling threshold" experiments of Figure 8 depend on these capacities
// being enforced exactly.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/float16.h"

namespace davinci {

// Which physical buffer a span points into; used to validate that each
// instruction's operands live where the datapath (Figure 4) requires.
enum class BufferKind : std::uint8_t {
  kGlobal,  // DDR/HBM/L2 (host memory)
  kL1,
  kL0A,
  kL0B,
  kL0C,
  kUnified,
};

inline const char* to_string(BufferKind k) {
  switch (k) {
    case BufferKind::kGlobal: return "GM";
    case BufferKind::kL1: return "L1";
    case BufferKind::kL0A: return "L0A";
    case BufferKind::kL0B: return "L0B";
    case BufferKind::kL0C: return "L0C";
    case BufferKind::kUnified: return "UB";
  }
  return "?";
}

// A bounds-checked typed view into one buffer. Element accesses in the
// simulator's functional execution go through at(), so any kernel bug that
// would read/write outside its allocation throws instead of corrupting
// neighbouring tiles.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, std::int64_t len, BufferKind kind)
      : data_(data), len_(len), kind_(kind) {}

  std::int64_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  BufferKind kind() const { return kind_; }
  T* data() { return data_; }
  const T* data() const { return data_; }

  T& at(std::int64_t i) {
    DV_CHECK(i >= 0 && i < len_)
        << to_string(kind_) << " span access " << i << " of " << len_;
    return data_[i];
  }
  const T& at(std::int64_t i) const {
    DV_CHECK(i >= 0 && i < len_)
        << to_string(kind_) << " span access " << i << " of " << len_;
    return data_[i];
  }

  Span sub(std::int64_t offset, std::int64_t len) const {
    DV_CHECK(offset >= 0 && len >= 0 && offset + len <= len_)
        << to_string(kind_) << " subspan [" << offset << ", " << offset + len
        << ") of " << len_;
    return Span(data_ + offset, len, kind_);
  }

  Span drop_front(std::int64_t n) const { return sub(n, len_ - n); }

 private:
  T* data_ = nullptr;
  std::int64_t len_ = 0;
  BufferKind kind_ = BufferKind::kGlobal;
};

// Wraps host memory (a tensor's storage) as a global-memory span.
template <typename T>
Span<T> gm_span(T* data, std::int64_t len) {
  return Span<T>(data, len, BufferKind::kGlobal);
}

class ScratchBuffer {
 public:
  ScratchBuffer(BufferKind kind, std::int64_t capacity_bytes)
      : kind_(kind), storage_(static_cast<std::size_t>(capacity_bytes)) {}

  // Which AI Core owns this buffer; -1 for free-standing buffers (tests).
  // Only used to make overflow diagnostics actionable on a 32-core run.
  void set_owner_core(int core) { owner_core_ = core; }
  int owner_core() const { return owner_core_; }

  BufferKind kind() const { return kind_; }
  std::int64_t capacity_bytes() const {
    return static_cast<std::int64_t>(storage_.size());
  }
  std::int64_t bytes_used() const { return offset_; }
  std::int64_t bytes_free() const { return capacity_bytes() - offset_; }
  std::int64_t high_water_bytes() const { return high_water_; }

  // Allocates `count` elements of T (32-byte aligned, the hardware's block
  // granularity). Throws on overflow -- a kernel that exceeds a buffer
  // capacity is a scheduling bug (the AKG layer must tile instead).
  template <typename T>
  Span<T> alloc(std::int64_t count) {
    DV_CHECK_GE(count, 0);
    const std::int64_t bytes = count * static_cast<std::int64_t>(sizeof(T));
    const std::int64_t aligned = (offset_ + 31) / 32 * 32;
    DV_CHECK_LE(aligned + bytes, capacity_bytes())
        << to_string(kind_) << " overflow on core " << owner_core_
        << ": requested " << bytes << " B at aligned offset " << aligned
        << ", available " << (capacity_bytes() - aligned) << " B of "
        << capacity_bytes() << " B capacity"
        << " (tile too large; adjust the tiling plan)";
    T* p = reinterpret_cast<T*>(storage_.data() + aligned);
    offset_ = aligned + bytes;
    if (offset_ > high_water_) high_water_ = offset_;
    return Span<T>(p, count, kind_);
  }

  // Frees everything (tile iteration boundary). Contents become stale;
  // kernels must re-initialize anything they read.
  void reset() { offset_ = 0; }
  void reset_high_water() { high_water_ = 0; }

  // Overwrites the whole buffer with `pattern`. Used by the resilient
  // scheduler between verified attempts of a block: without scrubbing, a
  // truncated reload is masked by the previous attempt's (identical)
  // stale data and redundant execution cannot detect it.
  void scrub(std::byte pattern) {
    std::fill(storage_.begin(), storage_.end(), pattern);
  }

 private:
  BufferKind kind_;
  int owner_core_ = -1;
  std::vector<std::byte> storage_;
  std::int64_t offset_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace davinci
