// Persistent work-stealing thread pool for Device::run.
//
// Device used to spawn one std::thread per used core on *every* run()
// call -- thousands of thread creations per bench sweep. The pool starts
// its workers once (lazily, on the first parallel run) and reuses them
// for every subsequent run of the owning Device.
//
// Tasks are *core lanes*, not blocks: task c executes every block of
// simulated core c, in increasing block order. Blocks of one core must
// stay on one host thread in order (the AiCore's scratch, stats and fault
// stream are that lane's serial state), so stealing happens at lane
// granularity -- an idle worker takes over a whole pending lane rather
// than individual blocks. Lanes are heterogeneous once H-tiling and edge
// tiles exist, which is exactly when the old static one-thread-per-lane
// spawn load-imbalanced on hosts with fewer hardware threads than lanes.
//
// Determinism: which worker runs a lane never changes *what* the lane
// computes or charges -- see the block-ordering invariant in
// sim/device.h.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace davinci {

class WorkStealingPool {
 public:
  WorkStealingPool() = default;
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  // Executes task(0) .. task(n - 1) on the pool and returns when all have
  // completed. Tasks are dealt round-robin to the workers' deques; a
  // worker drains its own deque front-to-back and steals from the back of
  // the fullest other deque when idle. `task` must not throw -- callers
  // wrap their work and record failures themselves (Device::run does).
  void run(int n, const std::function<void(int)>& task);

  // Workers the pool runs with (0 before the first parallel run).
  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void ensure_started();
  void worker_main(std::size_t w);
  // Pops the next task for worker `w` (own front, else steal from the
  // fullest victim's back). Returns -1 when no task is available.
  int grab_task(std::size_t w);

  std::mutex m_;
  std::condition_variable work_cv_;  // workers: "a job arrived / shutdown"
  std::condition_variable done_cv_;  // run(): "all tasks finished"
  std::vector<std::thread> threads_;
  std::vector<std::deque<int>> queues_;  // one per worker
  const std::function<void(int)>* task_ = nullptr;
  int outstanding_ = 0;  // tasks dealt but not yet finished
  bool shutdown_ = false;
};

}  // namespace davinci
