// Deterministic fault injection for the simulated device (the subsystem a
// real accelerator fleet calls RAS: reliability, availability,
// serviceability).
//
// Production accelerators treat transient faults as routine: bit flips in
// the software-managed scratch-pads, dropped or truncated DMA transfers,
// corrupted SCU fractals, parity errors in a compute pipe, and whole
// cores that stop answering. The simulator models all of these as a
// *seeded, replayable* fault stream so the resilient execution path
// (Device::run_resilient) can be exercised and regression-tested
// deterministically: the same FaultPlan and seed always produce the same
// fault sites and -- after retry/quarantine -- the same final output.
//
// Fault classes:
//   * silent corruption -- bit flips on data landing in UB/L1/L0, MTE
//     truncation, SCU fractal errors. Invisible to the core; only output
//     verification (the CRC the MTE computes on the store path) or a
//     reference comparison can reveal them.
//   * detected transients -- parity-style vector-unit faults. The core
//     observes them (TransientFault) and the block can be retried.
//   * hard core failure -- a targeted trigger after which a core throws
//     CoreFailed for every block; the scheduler must quarantine it.
//
// Each core owns one CoreFaultState: an independent PRNG stream (seeded
// from plan.seed and the core id) plus per-attempt bookkeeping. A core's
// stream is consumed in its own deterministic execution order, so replay
// does not depend on thread interleaving as long as the block-to-core
// assignment is deterministic (see docs/RESILIENCE.md for the one caveat:
// redistribution order when *several* cores fail concurrently).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/prng.h"
#include "sim/scratch.h"

namespace davinci {

// Where a fault strikes. Rates are probabilities per site-specific event:
// per landed *byte* for the bit-flip sites, per transfer for kMteDrop,
// per SCU invocation for kScuFractal, per instruction for kVecTransient.
enum class FaultSite : std::uint8_t {
  kBitflipUb = 0,  // SEU in the Unified Buffer
  kBitflipL1,      // SEU in L1
  kBitflipL0,      // SEU in L0A/L0B/L0C
  kMteDrop,        // truncated DMA transfer (tail never arrives)
  kScuFractal,     // corrupted element in an im2col/col2im result
  kVecTransient,   // detected (parity) vector-unit fault
  kCoreFail,       // hard core failure (targeted trigger, not a rate)
};
inline constexpr int kNumFaultSites = 7;

const char* to_string(FaultSite site);

// "Core C fails hard for every block index >= from_block."
struct CoreFailTrigger {
  int core = -1;
  std::int64_t from_block = 0;
};

// A complete, serializable description of the faults to inject.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate[kNumFaultSites] = {};
  std::vector<CoreFailTrigger> core_failures;

  bool empty() const;
  // True if any enabled site corrupts data without the core noticing
  // (bit flips, MTE drops, SCU errors) -- the sites output verification
  // exists for.
  bool has_silent_sites() const;

  // Parses the CLI spec grammar (comma-separated):
  //   core_fail@C[@B]    hard-fail core C from block B (default 0)
  //   bitflip:ub:R       bit flip per byte landing in UB, rate R
  //   bitflip:l1:R       ... in L1
  //   bitflip:l0:R       ... in L0A/L0B/L0C
  //   mte_drop:R         truncated transfer, rate R per transfer
  //   scu_err:R          corrupted SCU result, rate R per invocation
  //   vec_fault:R        detected vector fault, rate R per instruction
  // Throws Error on malformed specs.
  static FaultPlan parse(const std::string& spec, std::uint64_t seed);

  std::string to_string() const;
};

// Counters surfaced next to CycleStats in Device::RunResult.
struct FaultStats {
  std::int64_t faults_injected = 0;   // all faults, every class
  std::int64_t silent_injected = 0;   // subset: silent corruption
  std::int64_t faults_detected = 0;   // verification mismatches, transients,
                                      // core failures observed
  std::int64_t faults_absorbed = 0;   // silent faults present in an attempt
                                      // that was accepted unverified
  std::int64_t retries = 0;           // extra executions caused by faults
  std::int64_t verification_runs = 0; // redundant executions for CRC compare
  std::int64_t blocks_redispatched = 0;
  std::int64_t cores_quarantined = 0;

  FaultStats& operator+=(const FaultStats& o);
  std::string summary() const;
};

// A transient, *detected* fault (parity/ECC style): the instruction's
// results are untrustworthy but the core keeps working -- retry the block.
class TransientFault : public Error {
 public:
  using Error::Error;
};

// Hard core failure. The scheduler must quarantine the core; retrying on
// the same core is pointless.
class CoreFailed : public Error {
 public:
  CoreFailed(int core, const std::string& what) : Error(what), core_(core) {}
  int core() const { return core_; }

 private:
  int core_;
};

// run_resilient gave up: a block exhausted its attempt budget or no
// healthy core remains. what() carries the structured context (block,
// attempts, core) so callers and scripts can report it.
class RetryExhausted : public Error {
 public:
  using Error::Error;
};

// Per-core fault stream and per-execution bookkeeping. One instance per
// AiCore, attached for the duration of a resilient run; every method is
// called only from that core's worker thread. With an all-zero plan every
// hook is a no-op (no PRNG draws, no corruption), which is what makes the
// empty-plan resilient run bit- and cycle-identical to Device::run.
class CoreFaultState {
 public:
  CoreFaultState(const FaultPlan& plan, int core);

  int core() const { return core_; }
  FaultStats& stats() { return stats_; }

  // Marks the start of one execution (attempt) of `block`. Resets the
  // store-path CRC and the per-attempt silent-fault count.
  void begin_execution(std::int64_t block, bool record_crc);

  // Throws CoreFailed if a core-failure trigger covers (core, block).
  void check_core_alive(std::int64_t block);

  // The execution's output was accepted: silent faults it carried (if
  // any survived verification, or verification was off) are absorbed.
  void accept_execution();

  // --- hooks called by the functional units ---

  // MTE: how many of `count` elements the DMA actually delivers.
  // Less than `count` models a truncated transfer (stale tail).
  std::int64_t admit_transfer(std::int64_t count);

  // Data landed in a scratch buffer via an MTE transfer: may flip one bit
  // among `bytes` bytes, at the per-byte rate of the buffer's site. (SCU
  // writes are covered by on_scu_result instead, not by the bitflip
  // sites.)
  void on_landing(BufferKind dst, std::byte* data, std::int64_t bytes);

  // An SCU im2col/col2im invocation produced `bytes` bytes: may corrupt
  // one fp16 element (fractal error).
  void on_scu_result(std::byte* data, std::int64_t bytes);

  // A vector instruction issued: may throw TransientFault.
  void on_vector_instr(const char* op);

  // --- store-path CRC (output-region verification) ---
  bool crc_enabled() const { return record_crc_; }
  void crc_update(const void* data, std::int64_t bytes);
  // Folds a scalar (e.g. the element count a DMA actually delivered) into
  // the CRC, so two truncated stores that leave identical region contents
  // still hash differently when their delivered lengths differ.
  void crc_note(std::uint64_t value);
  std::uint64_t crc() const { return crc_; }

  // Silent faults injected during the current execution.
  std::int64_t attempt_silent() const { return attempt_silent_; }

 private:
  // Bernoulli draw: fires with probability rate(site) * events, clamped
  // to 1. Zero-rate sites consume no PRNG state.
  bool fire(FaultSite site, double events);

  const FaultPlan* plan_;
  int core_;
  Xoshiro256 rng_;
  FaultStats stats_;
  std::int64_t block_ = -1;
  std::int64_t fail_from_block_ = -1;  // -1: no trigger for this core
  std::int64_t attempt_silent_ = 0;
  std::uint64_t crc_ = 0;
  bool record_crc_ = false;
};

// Options for Device::run_resilient (and the Device-level policy that
// routes Device::run through it).
struct ResilienceOptions {
  FaultPlan plan;
  // Retry allowance per block. The execution budget is
  // (max_retries + 1) * (verify ? 2 : 1): each allowed attempt is one
  // execution, or a redundant pair under verification. 0 means a single
  // (verified) attempt -- any fault is fatal.
  int max_retries = 3;
  // Verify each block's global-memory stores by redundant execution: the
  // block is accepted once two executions (not necessarily consecutive --
  // a majority vote over the attempts seen so far) produce the same
  // store-path CRC. Turns silent corruption into detected-and-retried
  // faults, at the honest cost of one extra execution per block.
  bool verify = false;
  bool parallel = true;
};

}  // namespace davinci
