#include "sim/trace_export.h"

#include <algorithm>
#include <fstream>

#include "common/check.h"
#include "common/json.h"
#include "sim/device.h"
#include "sim/vm/stream.h"

namespace davinci {

namespace {

// Thread rows inside one core's process track.
constexpr int kTidVector = 0;
constexpr int kTidMte = 1;
constexpr int kTidScu = 2;
constexpr int kTidCube = 3;
constexpr int kTidSync = 4;

int tid_of(TraceKind k) {
  switch (k) {
    case TraceKind::kVector: return kTidVector;
    case TraceKind::kMte: return kTidMte;
    case TraceKind::kIm2col:
    case TraceKind::kCol2im: return kTidScu;
    case TraceKind::kCube: return kTidCube;
    case TraceKind::kBarrier: return kTidSync;
  }
  return kTidSync;
}

// All string emission goes through json::escape (common/json.h) so a
// kernel label or detail string carrying quotes, backslashes or control
// bytes cannot produce an invalid trace file. escape() returns the
// string already quoted.
void append_meta(std::string* out, int pid, int tid, const char* key,
                 const std::string& value) {
  *out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
  if (tid >= 0) *out += ",\"tid\":" + std::to_string(tid);
  *out += ",\"name\":\"";
  *out += key;
  *out += "\",\"args\":{\"name\":";
  *out += json::escape(value);
  *out += "}},\n";
}

// The event's display name: the first token of the detail string (the
// mnemonic), or the trace-kind label when the detail is empty.
std::string event_name(const TraceEvent& e) {
  const std::size_t sp = e.detail.find(' ');
  if (e.detail.empty()) return to_string(e.kind);
  return sp == std::string::npos ? e.detail : e.detail.substr(0, sp);
}

// One VM process track per placed launch, events at their stream-
// scheduled starts. Collects every launch's shifted tile marks into
// `marks` for the stream-global counter.
void append_vm_launch_tracks(
    std::string* out, const std::vector<vm::PlacedLaunch>& placed,
    std::vector<std::pair<std::int64_t, int>>* marks) {
  for (const vm::PlacedLaunch& p : placed) {
    const int pid = static_cast<int>(p.seq) + 1;
    append_meta(out, pid, -1, "process_name",
                "launch " + std::to_string(p.seq) + ": " + p.label);
    for (const vm::CoreWork& cw : p.cores) {
      bool named[PipeScheduler::kNumPipes] = {};
      for (const PipeScheduler::LoggedInterval& iv : cw.intervals) {
        const int pi = static_cast<int>(iv.pipe);
        const int tid = cw.core * PipeScheduler::kNumPipes + pi;
        if (!named[pi]) {
          named[pi] = true;
          append_meta(out, pid, tid, "thread_name",
                      "core " + std::to_string(cw.core) + " " +
                          to_string(iv.pipe));
        }
        const std::int64_t ts = p.start + iv.start;
        *out += "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
                ",\"tid\":" + std::to_string(tid) +
                ",\"ts\":" + std::to_string(ts) +
                ",\"dur\":" + std::to_string(iv.end - iv.start) +
                ",\"name\":" + json::escape(to_string(iv.pipe)) +
                ",\"cat\":\"vm\",\"args\":{\"launch\":" +
                std::to_string(p.seq) +
                ",\"cycles\":" + std::to_string(iv.end - iv.start) + "}},\n";
      }
      for (const auto& mark : cw.tile_marks) {
        marks->emplace_back(p.start + mark.first, mark.second);
      }
    }
  }
}

// The stream-global "ub tiles in flight" counter on pid 0, closed with a
// zero sample at the cross-batch makespan. Callers must emit this LAST:
// CI asserts the final counter sample is the close at the makespan.
void append_vm_counter(std::string* out,
                       std::vector<std::pair<std::int64_t, int>> marks,
                       std::int64_t makespan) {
  if (marks.empty()) return;
  std::stable_sort(
      marks.begin(), marks.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  std::int64_t depth = 0;
  for (const auto& mark : marks) {
    depth += mark.second;
    *out += "{\"ph\":\"C\",\"pid\":0,\"ts\":" + std::to_string(mark.first) +
            ",\"name\":\"ub tiles in flight\",\"args\":{\"tiles\":" +
            std::to_string(depth) + "}},\n";
  }
  // Close the counter at the end of the stream; without this the viewer
  // extends the last sample's value to infinity, which reads as tiles
  // still in flight after the device has drained. With inter-batch
  // pipelining the relevant end is the stream's, not any single
  // launch's.
  std::int64_t end_ts = makespan;
  if (end_ts < marks.back().first) end_ts = marks.back().first;
  *out += "{\"ph\":\"C\",\"pid\":0,\"ts\":" + std::to_string(end_ts) +
          ",\"name\":\"ub tiles in flight\",\"args\":{\"tiles\":0}},\n";
}

void append_host_spans(std::string* out,
                       const std::vector<HostSpan>& spans) {
  if (spans.empty()) return;
  append_meta(out, kHostTrackPid, -1, "process_name", "serve requests");
  std::vector<int> named_rows;
  for (const HostSpan& h : spans) {
    if (std::find(named_rows.begin(), named_rows.end(), h.row) ==
        named_rows.end()) {
      named_rows.push_back(h.row);
      append_meta(out, kHostTrackPid, h.row, "thread_name", h.row_name);
    }
    if (h.instant) {
      *out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" +
              std::to_string(kHostTrackPid) +
              ",\"tid\":" + std::to_string(h.row) +
              ",\"ts\":" + std::to_string(h.start) +
              ",\"name\":" + json::escape(h.name) + ",\"cat\":\"serve\"";
    } else {
      *out += "{\"ph\":\"X\",\"pid\":" + std::to_string(kHostTrackPid) +
              ",\"tid\":" + std::to_string(h.row) +
              ",\"ts\":" + std::to_string(h.start) +
              ",\"dur\":" + std::to_string(h.end - h.start) +
              ",\"name\":" + json::escape(h.name) + ",\"cat\":\"serve\"";
    }
    if (!h.args_json.empty()) *out += ",\"args\":" + h.args_json;
    *out += "},\n";
  }
}

void strip_trailing_comma(std::string* out) {
  if (out->size() >= 2 && (*out)[out->size() - 2] == ',') {
    out->erase(out->size() - 2, 1);
  }
}

std::string trace_header(const char* generator) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\n";
  out += "\"otherData\":{\"generator\":\"";
  out += generator;
  out += "\",\"time_unit\":\"1 event microsecond = 1 simulated cycle\"},\n";
  out += "\"traceEvents\":[\n";
  return out;
}

void write_trace_file(const std::string& path, const std::string& json) {
  std::ofstream f(path, std::ios::binary);
  DV_CHECK(f.good()) << "cannot open trace output file " << path;
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  DV_CHECK(f.good()) << "failed writing trace output file " << path;
}

}  // namespace

std::string chrome_trace_json(const std::vector<const Trace*>& traces,
                              const std::vector<int>& core_ids,
                              const std::vector<const PipeScheduler*>&
                                  scheds) {
  DV_CHECK_EQ(traces.size(), core_ids.size());
  if (!scheds.empty()) DV_CHECK_EQ(scheds.size(), traces.size());
  std::string out = trace_header("davinci-sim");

  for (std::size_t i = 0; i < traces.size(); ++i) {
    const Trace& trace = *traces[i];
    const int pid = core_ids[i];
    if (trace.events().empty()) continue;

    append_meta(&out, pid, -1, "process_name",
                "AI Core " + std::to_string(pid));
    append_meta(&out, pid, kTidVector, "thread_name", "Vector Unit");
    append_meta(&out, pid, kTidMte, "thread_name", "MTE");
    append_meta(&out, pid, kTidScu, "thread_name", "SCU (Im2col/Col2im)");
    append_meta(&out, pid, kTidCube, "thread_name", "Cube Unit");
    append_meta(&out, pid, kTidSync, "thread_name", "Sync");

    // Events placed by the pipe-overlap scheduler carry their real start
    // cycle; hand-built traces fall back to the serial running sum.
    std::int64_t ts = 0;
    for (const TraceEvent& e : trace.events()) {
      const std::int64_t ev_ts = e.start >= 0 ? e.start : ts;
      out += "{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(tid_of(e.kind)) +
             ",\"ts\":" + std::to_string(ev_ts) +
             ",\"dur\":" + std::to_string(e.cycles) +
             ",\"name\":" + json::escape(event_name(e)) +
             ",\"cat\":" + json::escape(to_string(e.kind)) +
             ",\"args\":{\"detail\":" + json::escape(e.detail) +
             ",\"cycles\":" + std::to_string(e.cycles);
      if (e.slots_capacity > 0) {
        // json::number keeps the decimal separator '.' regardless of
        // LC_NUMERIC (snprintf "%f" would not).
        out += ",\"slots_used\":" + std::to_string(e.slots_used) +
               ",\"slots_capacity\":" + std::to_string(e.slots_capacity) +
               ",\"occupancy\":" +
               json::number(static_cast<double>(e.slots_used) /
                            static_cast<double>(e.slots_capacity));
      }
      out += "}},\n";

      if (e.kind == TraceKind::kVector && e.slots_capacity > 0) {
        // Counter track: mean active lanes of this instruction, dropping
        // to zero when the Vector Unit goes idle.
        const double lanes = 128.0 * static_cast<double>(e.slots_used) /
                             static_cast<double>(e.slots_capacity);
        out += "{\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
               ",\"ts\":" + std::to_string(ev_ts) +
               ",\"name\":\"vec active lanes\",\"args\":{\"lanes\":" +
               json::number(lanes) + "}},\n";
        out += "{\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
               ",\"ts\":" + std::to_string(ev_ts + e.cycles) +
               ",\"name\":\"vec active lanes\",\"args\":{\"lanes\":0}},\n";
      }
      ts += e.cycles;
    }

    // Ping-pong queue depth: tiles loaded into a UB slot but not yet
    // stored back to GM (see PipeScheduler::note_tile).
    if (i < scheds.size() && scheds[i] != nullptr &&
        !scheds[i]->tile_marks().empty()) {
      auto marks = scheds[i]->tile_marks();
      std::stable_sort(
          marks.begin(), marks.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      std::int64_t depth = 0;
      for (const auto& mark : marks) {
        depth += mark.second;
        out += "{\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
               ",\"ts\":" + std::to_string(mark.first) +
               ",\"name\":\"ub tiles in flight\",\"args\":{\"tiles\":" +
               std::to_string(depth) + "}},\n";
      }
      // Close the counter track at the end of the run; without this the
      // viewer extends the last sample's value to infinity, which reads
      // as tiles still in flight after the core has drained.
      std::int64_t end_ts = scheds[i]->makespan();
      if (end_ts < marks.back().first) end_ts = marks.back().first;
      out += "{\"ph\":\"C\",\"pid\":" + std::to_string(pid) +
             ",\"ts\":" + std::to_string(end_ts) +
             ",\"name\":\"ub tiles in flight\",\"args\":{\"tiles\":0}},\n";
    }

    if (trace.truncated()) {
      out += "{\"ph\":\"i\",\"s\":\"p\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(kTidSync) +
             ",\"ts\":" + std::to_string(ts) +
             ",\"name\":\"trace truncated (kMaxEvents reached)\"},\n";
    }
  }

  // Strip the trailing ",\n" so the array is valid JSON.
  strip_trailing_comma(&out);
  out += "]}\n";
  return out;
}

std::string chrome_trace_json(Device& dev) {
  std::vector<const Trace*> traces;
  std::vector<int> ids;
  std::vector<const PipeScheduler*> scheds;
  for (int c = 0; c < dev.num_cores(); ++c) {
    const Trace& t = dev.core(c).trace();
    if (!t.events().empty()) {
      traces.push_back(&t);
      ids.push_back(c);
      scheds.push_back(&dev.core(c).sched());
    }
  }
  return chrome_trace_json(traces, ids, scheds);
}

void write_chrome_trace(const std::string& path, Device& dev) {
  write_trace_file(path, chrome_trace_json(dev));
}

std::string vm_chrome_trace_json(const vm::VmStream& stream) {
  std::string out = trace_header("davinci-sim vm");
  append_meta(&out, 0, -1, "process_name", "VM stream");
  std::vector<std::pair<std::int64_t, int>> marks;
  append_vm_launch_tracks(&out, stream.placements(), &marks);
  append_vm_counter(&out, std::move(marks), stream.stats().makespan);
  strip_trailing_comma(&out);
  out += "]}\n";
  return out;
}

void write_vm_chrome_trace(const std::string& path,
                           const vm::VmStream& stream) {
  write_trace_file(path, vm_chrome_trace_json(stream));
}

std::string unified_chrome_trace_json(const vm::VmStream& stream,
                                      const std::vector<HostSpan>& spans) {
  std::string out = trace_header("davinci-sim serve");
  append_meta(&out, 0, -1, "process_name", "VM stream");
  // Host request tracks first, then the device launch tracks, and the
  // stream counter strictly last -- the "ub tiles in flight" counter's
  // final sample must stay the zero close at the makespan (the CI
  // invariant), so nothing may append counter samples after it.
  append_host_spans(&out, spans);
  std::vector<std::pair<std::int64_t, int>> marks;
  append_vm_launch_tracks(&out, stream.placements(), &marks);
  append_vm_counter(&out, std::move(marks), stream.stats().makespan);
  strip_trailing_comma(&out);
  out += "]}\n";
  return out;
}

void write_unified_chrome_trace(const std::string& path,
                                const vm::VmStream& stream,
                                const std::vector<HostSpan>& spans) {
  write_trace_file(path, unified_chrome_trace_json(stream, spans));
}

}  // namespace davinci
