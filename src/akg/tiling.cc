#include "akg/tiling.h"

#include "common/check.h"

namespace davinci::akg {

const char* to_string(PoolImpl impl) {
  switch (impl) {
    case PoolImpl::kDirect: return "direct";
    case PoolImpl::kIm2col: return "im2col";
    case PoolImpl::kExpansion: return "expansion";
    case PoolImpl::kXYSplit: return "xysplit";
  }
  return "?";
}

namespace {

constexpr std::int64_t kElem = 2;  // sizeof(Float16)

// Mirrors ScratchBuffer's 32-byte allocation alignment.
std::int64_t aligned(std::int64_t elems) {
  return round_up(elems * kElem, 32);
}

struct FwdDims {
  std::int64_t ih_t, ow, tp, pp_t;
};

FwdDims fwd_dims(const Window2d& w, std::int64_t oh_tile, std::int64_t iw) {
  FwdDims d;
  d.ih_t = (oh_tile - 1) * w.sh + w.kh;  // interior tile, worst case
  d.ow = w.out_w(iw);
  d.tp = oh_tile * d.ow;
  d.pp_t = round_up(d.tp, kFractalRows);
  return d;
}

}  // namespace

std::int64_t ub_bytes_fwd(PoolImpl impl, const Window2d& w,
                          std::int64_t oh_tile, std::int64_t iw,
                          bool with_mask) {
  DV_CHECK_GE(oh_tile, 1);
  const FwdDims d = fwd_dims(w, oh_tile, iw);
  const std::int64_t in_b = aligned(d.ih_t * iw * kC0);
  const std::int64_t cols_b = aligned(w.kh * w.kw * d.pp_t * kC0);
  const std::int64_t out_flat_b = aligned(d.tp * kC0);
  const std::int64_t out_pad_b = aligned(d.pp_t * kC0);
  const std::int64_t tmp_b = aligned(d.ih_t * d.ow * kC0);
  const std::int64_t mask_b = with_mask ? cols_b : 0;

  switch (impl) {
    case PoolImpl::kDirect:
      // Input and output tiles live in UB; the direct mask variant also
      // produces the im2col-shaped Argmax mask there.
      return in_b + out_flat_b + mask_b;
    case PoolImpl::kIm2col:
      // The input slice stays in L1; UB holds the im2col-shaped tile and
      // the (fractal-padded) output.
      return cols_b + out_pad_b + mask_b;
    case PoolImpl::kExpansion:
      // The transformation happens *inside* UB, so input, expanded form
      // and output coexist -- the footprint penalty the paper notes.
      return in_b + cols_b + out_pad_b + mask_b;
    case PoolImpl::kXYSplit:
      // Input, the (Ih, Ow, C0) intermediate, and the output. ("In TVM,
      // all computations generate a new tensor, and thus the in-place
      // approach is not possible.")
      return in_b + tmp_b + out_flat_b + mask_b;
  }
  return 0;
}

std::int64_t ub_bytes_bwd(std::int64_t oh_tile, std::int64_t iw,
                          const Window2d& w) {
  DV_CHECK_GE(oh_tile, 1);
  const FwdDims d = fwd_dims(w, oh_tile, iw);
  const std::int64_t mask_b = aligned(w.kh * w.kw * d.pp_t * kC0);
  const std::int64_t grad_b = aligned(d.tp * kC0);
  const std::int64_t out_b = aligned(d.ih_t * iw * kC0);
  const std::int64_t seam_rows = w.kh > w.sh ? (w.kh - w.sh) : 0;
  const std::int64_t seam_b = aligned(seam_rows * iw * kC0);
  return mask_b + grad_b + out_b + seam_b;
}

namespace {

template <typename FitsFn>
PoolPlan plan_common(std::int64_t oh, FitsFn&& fits, const char* what) {
  DV_CHECK(fits(std::int64_t{1}))
      << what << ": a single output row does not fit the Unified Buffer";
  // Largest fitting tile by binary search (footprint is monotone in
  // oh_tile).
  std::int64_t lo = 1, hi = oh;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo + 1) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  PoolPlan plan;
  plan.oh_tile = lo;
  plan.num_h_tiles = ceil_div(oh, lo);
  return plan;
}

}  // namespace

namespace {

// Shared slot-upgrade policy: keep the single-buffer tile if two slots of
// it fit; with `allow_retile`, otherwise re-search with the doubled
// footprint; otherwise stay single-buffered. Overlap only pays off across
// tiles, so an untiled plan keeps one slot.
//
// Re-tiling moves the tile boundaries, which is fine for the forward
// kernels (each output element is computed entirely within one tile, in
// the same order regardless of the split) but NOT for the backward
// merges: input cells near a seam accumulate contributions from both
// sides, so a different oh_tile changes the fp16 accumulation order and
// the output bits. Backward plans therefore never re-tile -- they take a
// second slot only when the serial tile fits twice, keeping outputs
// bit-identical to the single-buffer schedule.
template <typename FitsFn>
PoolPlan plan_with_slots(std::int64_t oh, FitsFn&& fits, bool double_buffer,
                         bool allow_retile, const char* what) {
  PoolPlan plan =
      plan_common(oh, [&](std::int64_t t) { return fits(t, 1); }, what);
  if (!double_buffer || plan.num_h_tiles <= 1) return plan;
  if (fits(plan.oh_tile, 2)) {
    plan.ub_slots = 2;
  } else if (allow_retile && fits(std::int64_t{1}, 2)) {
    plan = plan_common(oh, [&](std::int64_t t) { return fits(t, 2); }, what);
    plan.ub_slots = 2;
  }
  return plan;
}

}  // namespace

PoolPlan plan_fwd(PoolImpl impl, const ArchConfig& arch, const Window2d& w,
                  std::int64_t ih, std::int64_t iw, bool with_mask,
                  bool double_buffer) {
  w.validate();
  const std::int64_t oh = w.out_h(ih);
  auto fits = [&](std::int64_t oh_tile, int slots) {
    if (slots * ub_bytes_fwd(impl, w, oh_tile, iw, with_mask) >
        arch.ub_bytes) {
      return false;
    }
    if (impl == PoolImpl::kIm2col) {
      // The Im2Col source slice must fit L1 (Figure 4 path 2 -> 8); in
      // ping-pong mode both slots' slices live there at once.
      const std::int64_t ih_t = (oh_tile - 1) * w.sh + w.kh;
      if (slots * ih_t * iw * kC0 * 2 > arch.l1_bytes) return false;
    }
    return true;
  };
  return plan_with_slots(oh, fits, double_buffer, /*allow_retile=*/true,
                         to_string(impl));
}

PoolPlan plan_bwd(const ArchConfig& arch, const Window2d& w, std::int64_t ih,
                  std::int64_t iw, bool double_buffer) {
  w.validate();
  const std::int64_t oh = w.out_h(ih);
  auto fits = [&](std::int64_t oh_tile, int slots) {
    return slots * ub_bytes_bwd(oh_tile, iw, w) <= arch.ub_bytes;
  };
  return plan_with_slots(oh, fits, double_buffer, /*allow_retile=*/false,
                         "backward");
}

HTile h_tile(const Window2d& w, std::int64_t ih, std::int64_t oh,
             std::int64_t oh_tile, std::int64_t t) {
  DV_CHECK_GE(t, 0);
  HTile tile;
  tile.o0 = t * oh_tile;
  DV_CHECK_LT(tile.o0, oh);
  tile.o1 = tile.o0 + oh_tile < oh ? tile.o0 + oh_tile : oh;
  const std::int64_t y_start = tile.o0 * w.sh - w.pt;          // virtual
  const std::int64_t y_end = (tile.o1 - 1) * w.sh + w.kh - w.pt;  // virtual
  tile.y0 = y_start < 0 ? 0 : y_start;
  tile.y1 = y_end > ih ? ih : y_end;
  tile.pt_eff = y_start < 0 ? -y_start : 0;
  tile.pb_eff = y_end > ih ? y_end - ih : 0;
  return tile;
}

std::int64_t tiling_threshold(const ArchConfig& arch, const Window2d& w,
                              bool with_mask, bool with_xysplit) {
  w.validate();
  // Paper (Section VI-B): "The input's height and width increase in steps
  // of two until the tiling threshold is reached, where this threshold is
  // the maximum size before tiling is required."
  std::int64_t best = 0;
  for (std::int64_t h = w.kh + w.kw; ; h += 2) {
    const std::int64_t oh = w.out_h(h);
    bool ok = ub_bytes_fwd(PoolImpl::kDirect, w, oh, h, with_mask) <=
                  arch.ub_bytes &&
              ub_bytes_fwd(PoolImpl::kIm2col, w, oh, h, with_mask) <=
                  arch.ub_bytes &&
              ub_bytes_fwd(PoolImpl::kExpansion, w, oh, h, with_mask) <=
                  arch.ub_bytes &&
              h * h * kC0 * 2 <= arch.l1_bytes;
    if (ok && with_xysplit) {
      ok = ub_bytes_fwd(PoolImpl::kXYSplit, w, oh, h, with_mask) <=
           arch.ub_bytes;
    }
    if (!ok) break;
    best = h;
  }
  DV_CHECK_GT(best, 0) << "no input size fits untiled";
  return best;
}

PoolImpl select_fwd_impl(const Window2d& w) {
  if (w.has_padding()) return PoolImpl::kIm2col;
  return w.sw == 1 ? PoolImpl::kDirect : PoolImpl::kIm2col;
}

}  // namespace davinci::akg
