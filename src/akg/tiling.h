// The scheduling decisions AKG/TVM make for the pooling kernels
// (Section IV of the paper), implemented as an explicit planner:
//
//  * computations are tiled on C1 so one (Ih, Iw, C0) slice is processed
//    per AI Core at a time ("this computation is divided in the C1
//    dimension", Section V-A);
//  * when a slice exceeds the Unified Buffer, the planner further tiles
//    along the output height, with halo rows reloaded at tile seams;
//  * the per-implementation UB requirement determines the Figure 8
//    "tiling threshold": the largest square input that still fits without
//    H-tiling.
#pragma once

#include <cstdint>

#include "arch/arch_config.h"
#include "common/align.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"

namespace davinci::akg {

// The pooling implementations of Section V / Figure 8.
enum class PoolImpl : std::uint8_t {
  kDirect,     // standard TVM lowering (Listing 1)
  kIm2col,     // Im2Col-load based (Listing 2)
  kExpansion,  // im2col shape built with regular vector instructions
  kXYSplit,    // width-then-height reduction (Lai et al.)
};

const char* to_string(PoolImpl impl);

// One horizontal slice of the output and the input rows it needs.
struct HTile {
  std::int64_t o0 = 0, o1 = 0;  // output rows [o0, o1)
  std::int64_t y0 = 0, y1 = 0;  // input rows [y0, y1) (unpadded, clamped)
  std::int64_t pt_eff = 0;      // virtual top padding seen by this tile
  std::int64_t pb_eff = 0;      // virtual bottom padding seen by this tile

  std::int64_t out_rows() const { return o1 - o0; }
  std::int64_t in_rows() const { return y1 - y0; }
};

// Unified-Buffer bytes an implementation needs for one forward tile of
// `oh_tile` output rows over a width-`iw` input (fp16 elements, 32-byte
// allocation alignment). `with_mask` adds the Argmax-mask buffer.
std::int64_t ub_bytes_fwd(PoolImpl impl, const Window2d& w,
                          std::int64_t oh_tile, std::int64_t iw,
                          bool with_mask);

// UB bytes for one backward tile (mask + gradient + output slice, plus
// the row reloaded for the seam accumulation).
std::int64_t ub_bytes_bwd(std::int64_t oh_tile, std::int64_t iw,
                          const Window2d& w);

struct PoolPlan {
  std::int64_t oh_tile = 0;    // output rows per tile
  std::int64_t num_h_tiles = 0;
  int ub_slots = 1;            // UB tile slots: 1 = single, 2 = ping-pong
  bool tiled() const { return num_h_tiles > 1; }
  bool double_buffered() const { return ub_slots > 1; }

  friend bool operator==(const PoolPlan&, const PoolPlan&) = default;
};

// Chooses the largest oh_tile whose UB footprint fits. Throws if even a
// single output row does not fit (the workload is then out of scope for
// this schedule, as in the paper's Figure 8 cut-off).
//
// With `double_buffer` and more than one H tile, the planner tries to
// carve TWO tile slots out of the same UB budget (and, for kIm2col, two
// L1 input slices) so consecutive tiles can overlap in ping-pong mode:
// first at the single-buffer oh_tile, then -- if that doubles past the
// budget -- at the largest oh_tile whose doubled footprint fits. When
// even one doubled output row does not fit, the plan falls back to a
// single slot (ub_slots == 1) and the kernel runs single-buffered.
//
// plan_bwd never shrinks oh_tile for the second slot: the backward merges
// accumulate across tile seams, so moving the seam would change the fp16
// accumulation order and the output bits relative to the single-buffer
// schedule. It takes two slots only when the serial tile fits twice.
PoolPlan plan_fwd(PoolImpl impl, const ArchConfig& arch, const Window2d& w,
                  std::int64_t ih, std::int64_t iw, bool with_mask,
                  bool double_buffer = false);
PoolPlan plan_bwd(const ArchConfig& arch, const Window2d& w, std::int64_t ih,
                  std::int64_t iw, bool double_buffer = false);

// The t-th horizontal tile of a plan (forward and backward use the same
// geometry).
HTile h_tile(const Window2d& w, std::int64_t ih, std::int64_t oh,
             std::int64_t oh_tile, std::int64_t t);

// Figure 8's x-axis limit: the largest square input H = W (stepping by 2
// like the paper) that every implementation in the standard Figure 8 set
// can process without H-tiling. `with_xysplit` includes the X-Y split's
// temporary buffer in the constraint (Figure 8b).
std::int64_t tiling_threshold(const ArchConfig& arch, const Window2d& w,
                              bool with_mask = false,
                              bool with_xysplit = false);

// The auto-scheduler decision the paper's evaluation dictates: the
// Im2col-based lowering wins everywhere except stride width 1, where the
// direct lowering already saturates the vector mask over contiguous rows
// and pays no transformation ("the proposed acceleration approach
// achieved improved performance for all but (1,1) stride", Section VIII).
// Padding forces kIm2col regardless (the direct kernels do not pad).
PoolImpl select_fwd_impl(const Window2d& w);

}  // namespace davinci::akg
