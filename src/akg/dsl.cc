#include "akg/dsl.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"

namespace davinci::akg::dsl {

namespace {

// Output-axis variables use ids [0, kFirstReduceId); reduce axes draw
// from a process-wide counter above that.
constexpr int kFirstReduceId = 256;
std::atomic<int> g_next_reduce_id{kFirstReduceId};

}  // namespace

ReduceAxis reduce_axis(std::int64_t extent, std::string name) {
  DV_CHECK_GE(extent, 1);
  return ReduceAxis{g_next_reduce_id++, extent, std::move(name)};
}

IndexExpr::IndexExpr(const ReduceAxis& axis) {
  terms_.push_back(Term{axis.id, 1});
}

IndexExpr IndexExpr::output_var(int axis_id) {
  IndexExpr e;
  e.terms_.push_back(Term{axis_id, 1});
  return e;
}

IndexExpr operator+(IndexExpr a, const IndexExpr& b) {
  for (const auto& t : b.terms_) a.terms_.push_back(t);
  a.constant_ += b.constant_;
  return a;
}

IndexExpr operator-(IndexExpr a, const IndexExpr& b) {
  for (const auto& t : b.terms_) {
    a.terms_.push_back(IndexExpr::Term{t.axis_id, -t.coeff});
  }
  a.constant_ -= b.constant_;
  return a;
}

IndexExpr operator*(IndexExpr a, std::int64_t k) {
  for (auto& t : a.terms_) t.coeff *= k;
  a.constant_ *= k;
  return a;
}

std::int64_t IndexExpr::eval(const std::vector<std::int64_t>& bindings) const {
  std::int64_t v = constant_;
  for (const auto& t : terms_) {
    DV_CHECK_LT(static_cast<std::size_t>(t.axis_id), bindings.size())
        << "unbound axis in index expression";
    v += t.coeff * bindings[static_cast<std::size_t>(t.axis_id)];
  }
  return v;
}

// Expression tree node. Reductions are a distinct node kind wrapping a
// body (TVM permits them only at the top of a compute body; evaluate()
// enforces that).
class ExprNode {
 public:
  ExprKind kind = ExprKind::kConst;

  // kLoad
  int input_index = -1;
  Shape in_shape;
  std::string in_name;
  std::vector<IndexExpr> indices;

  // kConst
  Float16 value;

  // binary ops
  Expr lhs, rhs;

  // reduction (is_reduce true; `kind` unused)
  bool is_reduce = false;
  ReduceKind rkind = ReduceKind::kSum;
  std::vector<ReduceAxis> axes;
  Expr body;
};

Placeholder placeholder(Shape shape, std::string name, int input_index) {
  DV_CHECK_GE(input_index, 0);
  return Placeholder(shape, std::move(name), input_index);
}

Expr Placeholder::load(std::vector<IndexExpr> indices) const {
  DV_CHECK_EQ(static_cast<int>(indices.size()), shape_.rank())
      << "index rank mismatch on placeholder '" << name_ << "'";
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kLoad;
  n->input_index = input_index_;
  n->in_shape = shape_;
  n->in_name = name_;
  n->indices = std::move(indices);
  return n;
}

Expr constant(float value) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kConst;
  n->value = Float16(value);
  return n;
}

namespace {

Expr binary(ExprKind kind, Expr a, Expr b) {
  DV_CHECK(a && b) << "null operand";
  DV_CHECK(!a->is_reduce && !b->is_reduce)
      << "reductions are only allowed at the top of a compute body";
  auto n = std::make_shared<ExprNode>();
  n->kind = kind;
  n->lhs = std::move(a);
  n->rhs = std::move(b);
  return n;
}

Expr reduction(ReduceKind rkind, Expr body, std::vector<ReduceAxis> axes) {
  DV_CHECK(body) << "null reduction body";
  DV_CHECK(!body->is_reduce) << "nested reductions are not supported";
  DV_CHECK(!axes.empty()) << "reduction needs at least one axis";
  auto n = std::make_shared<ExprNode>();
  n->is_reduce = true;
  n->rkind = rkind;
  n->axes = std::move(axes);
  n->body = std::move(body);
  return n;
}

}  // namespace

Expr operator+(Expr a, Expr b) {
  return binary(ExprKind::kAdd, std::move(a), std::move(b));
}
Expr operator-(Expr a, Expr b) {
  return binary(ExprKind::kSub, std::move(a), std::move(b));
}
Expr operator*(Expr a, Expr b) {
  return binary(ExprKind::kMul, std::move(a), std::move(b));
}
Expr operator/(Expr a, Expr b) {
  return binary(ExprKind::kDiv, std::move(a), std::move(b));
}
Expr max2(Expr a, Expr b) {
  return binary(ExprKind::kMax, std::move(a), std::move(b));
}
Expr min2(Expr a, Expr b) {
  return binary(ExprKind::kMin, std::move(a), std::move(b));
}

Expr max(Expr body, std::vector<ReduceAxis> axes) {
  return reduction(ReduceKind::kMax, std::move(body), std::move(axes));
}
Expr min(Expr body, std::vector<ReduceAxis> axes) {
  return reduction(ReduceKind::kMin, std::move(body), std::move(axes));
}
Expr sum(Expr body, std::vector<ReduceAxis> axes) {
  return reduction(ReduceKind::kSum, std::move(body), std::move(axes));
}

Compute compute(Shape out_shape,
                const std::function<Expr(const std::vector<IndexExpr>&)>&
                    builder) {
  DV_CHECK_GE(out_shape.rank(), 1);
  DV_CHECK_LE(out_shape.rank(), kFirstReduceId);
  std::vector<IndexExpr> vars;
  vars.reserve(static_cast<std::size_t>(out_shape.rank()));
  for (int i = 0; i < out_shape.rank(); ++i) {
    vars.push_back(IndexExpr::output_var(i));
  }
  Compute c;
  c.out_shape = out_shape;
  c.body = builder(vars);
  DV_CHECK(c.body) << "compute body is null";
  return c;
}

namespace {

struct EvalContext {
  const std::vector<const TensorF16*>* inputs;
  std::vector<std::int64_t> bindings;
};

int max_axis_id(const Expr& e) {
  if (!e) return -1;
  int m = -1;
  if (e->is_reduce) {
    for (const auto& a : e->axes) m = std::max(m, a.id);
    m = std::max(m, max_axis_id(e->body));
    return m;
  }
  m = std::max(m, max_axis_id(e->lhs));
  m = std::max(m, max_axis_id(e->rhs));
  return m;
}

Float16 eval_scalar(const Expr& e, EvalContext& ctx) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value;
    case ExprKind::kLoad: {
      DV_CHECK_LT(static_cast<std::size_t>(e->input_index),
                  ctx.inputs->size())
          << "missing input for placeholder '" << e->in_name << "'";
      const TensorF16& t = *(*ctx.inputs)[
          static_cast<std::size_t>(e->input_index)];
      DV_CHECK(t.shape() == e->in_shape)
          << "input shape " << t.shape().to_string()
          << " does not match placeholder '" << e->in_name << "' "
          << e->in_shape.to_string();
      std::int64_t off = 0;
      for (std::size_t i = 0; i < e->indices.size(); ++i) {
        const std::int64_t ix = e->indices[i].eval(ctx.bindings);
        DV_CHECK(ix >= 0 && ix < e->in_shape.dim(static_cast<int>(i)))
            << "index " << ix << " out of bounds for dim " << i << " of '"
            << e->in_name << "' " << e->in_shape.to_string();
        off = off * e->in_shape.dim(static_cast<int>(i)) + ix;
      }
      return t.flat(off);
    }
    case ExprKind::kAdd:
      return eval_scalar(e->lhs, ctx) + eval_scalar(e->rhs, ctx);
    case ExprKind::kSub:
      return eval_scalar(e->lhs, ctx) - eval_scalar(e->rhs, ctx);
    case ExprKind::kMul:
      return eval_scalar(e->lhs, ctx) * eval_scalar(e->rhs, ctx);
    case ExprKind::kDiv:
      return eval_scalar(e->lhs, ctx) / eval_scalar(e->rhs, ctx);
    case ExprKind::kMax:
      return fmax16(eval_scalar(e->lhs, ctx), eval_scalar(e->rhs, ctx));
    case ExprKind::kMin:
      return fmin16(eval_scalar(e->lhs, ctx), eval_scalar(e->rhs, ctx));
  }
  return Float16();
}

Float16 eval_reduce(const Expr& e, EvalContext& ctx, std::size_t depth,
                    Float16 acc) {
  if (depth == e->axes.size()) {
    const Float16 v = eval_scalar(e->body, ctx);
    switch (e->rkind) {
      case ReduceKind::kMax: return fmax16(acc, v);
      case ReduceKind::kMin: return fmin16(acc, v);
      case ReduceKind::kSum: return acc + v;
    }
    return acc;
  }
  const ReduceAxis& axis = e->axes[depth];
  for (std::int64_t v = 0; v < axis.extent; ++v) {
    ctx.bindings[static_cast<std::size_t>(axis.id)] = v;
    acc = eval_reduce(e, ctx, depth + 1, acc);
  }
  return acc;
}

}  // namespace

TensorF16 evaluate(const Compute& c,
                   const std::vector<const TensorF16*>& inputs) {
  EvalContext ctx;
  ctx.inputs = &inputs;
  const int rank = c.out_shape.rank();
  const int maxid = std::max(max_axis_id(c.body), rank - 1);
  ctx.bindings.assign(static_cast<std::size_t>(maxid) + 1, 0);

  TensorF16 out(c.out_shape);
  const std::int64_t n = out.size();
  std::vector<std::int64_t> idx(static_cast<std::size_t>(rank), 0);
  for (std::int64_t flat = 0; flat < n; ++flat) {
    // Decode the row-major output index into the axis bindings.
    std::int64_t rem = flat;
    for (int i = rank - 1; i >= 0; --i) {
      ctx.bindings[static_cast<std::size_t>(i)] = rem % c.out_shape.dim(i);
      rem /= c.out_shape.dim(i);
    }
    if (c.body->is_reduce) {
      Float16 init;
      switch (c.body->rkind) {
        case ReduceKind::kMax: init = Float16::lowest(); break;
        case ReduceKind::kMin: init = Float16::max_finite(); break;
        case ReduceKind::kSum: init = Float16(); break;
      }
      out.flat(flat) = eval_reduce(c.body, ctx, 0, init);
    } else {
      out.flat(flat) = eval_scalar(c.body, ctx);
    }
  }
  return out;
}

}  // namespace davinci::akg::dsl

namespace davinci::akg::dsl {

bool is_reduce(const Expr& e) {
  DV_CHECK(e) << "null expression";
  return e->is_reduce;
}

ReduceKind reduce_kind(const Expr& e) {
  DV_CHECK(is_reduce(e)) << "not a reduction";
  return e->rkind;
}

const std::vector<ReduceAxis>& reduce_axes(const Expr& e) {
  DV_CHECK(is_reduce(e)) << "not a reduction";
  return e->axes;
}

const Expr& reduce_body(const Expr& e) {
  DV_CHECK(is_reduce(e)) << "not a reduction";
  return e->body;
}

ExprKind kind_of(const Expr& e) {
  DV_CHECK(e && !e->is_reduce) << "kind_of on a reduction";
  return e->kind;
}

bool is_load(const Expr& e) {
  return e && !e->is_reduce && e->kind == ExprKind::kLoad;
}

int load_input_index(const Expr& e) {
  DV_CHECK(is_load(e)) << "not a load";
  return e->input_index;
}

const Shape& load_shape(const Expr& e) {
  DV_CHECK(is_load(e)) << "not a load";
  return e->in_shape;
}

const std::vector<IndexExpr>& load_indices(const Expr& e) {
  DV_CHECK(is_load(e)) << "not a load";
  return e->indices;
}

std::int64_t index_coefficient(const IndexExpr& e, int axis_id) {
  std::int64_t c = 0;
  for (const auto& t : e.terms_) {
    if (t.axis_id == axis_id) c += t.coeff;
  }
  return c;
}

std::int64_t index_constant(const IndexExpr& e) { return e.constant_; }

std::vector<int> index_axes(const IndexExpr& e) {
  std::vector<int> ids;
  for (const auto& t : e.terms_) {
    if (t.coeff == 0) continue;
    bool seen = false;
    for (int id : ids) seen |= id == t.axis_id;
    if (!seen) ids.push_back(t.axis_id);
  }
  return ids;
}

}  // namespace davinci::akg::dsl
