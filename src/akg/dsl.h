// A miniature TVM-style tensor-expression DSL (Section IV of the paper).
//
// AKG defines operators in TVM's compute language -- placeholders, index
// expressions, and reductions over reduce_axis variables -- and lowers
// them to CCE-C. This module implements the *definition* language and an
// interpreter with hardware-faithful fp16 semantics (one rounding per
// arithmetic operation, reduction axes iterated in declaration order), so
// the paper's Listings 1-3 can be written literally and validated against
// both the reference implementations and the simulator kernels:
//
//   auto in  = dsl::placeholder({N, C1, Ih, Iw, C0}, "input");
//   auto rh  = dsl::reduce_axis(Kh, "red_h");
//   auto rw  = dsl::reduce_axis(Kw, "red_w");
//   auto out = dsl::compute({N, C1, Oh, Ow, C0},
//       [&](const std::vector<dsl::IndexExpr>& i) {
//         return dsl::max(in(i[0], i[1], i[2] * Sh + rh, i[3] * Sw + rw,
//                            i[4]),
//                         {rh, rw});
//       });
//   TensorF16 result = dsl::evaluate(out, {&input_tensor});
//
// The *scheduling* half of TVM/AKG (tiling, buffer scopes, vectorization)
// lives in akg::tiling and in the hand-written kernel programs -- the
// lowered forms the paper describes; this module covers the algorithm
// side of the algorithm/schedule separation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/float16.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace davinci::akg::dsl {

// A reduction axis with a fixed extent ("reduce_axis((0, Kh), 'red_h')").
struct ReduceAxis {
  int id;
  std::int64_t extent;
  std::string name;
};

ReduceAxis reduce_axis(std::int64_t extent, std::string name);

// An affine index expression over output-axis and reduce-axis variables:
// sum of coeff * axis + constant.
class IndexExpr {
 public:
  IndexExpr() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): literals index tensors.
  IndexExpr(std::int64_t constant) : constant_(constant) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  IndexExpr(const ReduceAxis& axis);

  static IndexExpr output_var(int axis_id);

  friend IndexExpr operator+(IndexExpr a, const IndexExpr& b);
  friend IndexExpr operator-(IndexExpr a, const IndexExpr& b);
  friend IndexExpr operator*(IndexExpr a, std::int64_t k);
  friend IndexExpr operator*(std::int64_t k, IndexExpr a) {
    return std::move(a) * k;
  }

  std::int64_t eval(const std::vector<std::int64_t>& bindings) const;

 private:
  friend std::int64_t index_coefficient(const IndexExpr&, int);
  friend std::int64_t index_constant(const IndexExpr&);
  friend std::vector<int> index_axes(const IndexExpr&);

  struct Term {
    int axis_id;
    std::int64_t coeff;
  };
  std::vector<Term> terms_;
  std::int64_t constant_ = 0;
};

// Scalar expression tree node kinds.
enum class ExprKind : std::uint8_t {
  kLoad,    // placeholder element
  kConst,   // fp16 immediate
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,
  kMin,
};

class ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

// A placeholder input tensor; operator() builds a load expression.
class Placeholder {
 public:
  Placeholder(Shape shape, std::string name, int input_index)
      : shape_(shape), name_(std::move(name)), input_index_(input_index) {}

  const Shape& shape() const { return shape_; }
  const std::string& name() const { return name_; }
  int input_index() const { return input_index_; }

  template <typename... Ix>
  Expr operator()(Ix&&... indices) const {
    return load({IndexExpr(std::forward<Ix>(indices))...});
  }
  Expr load(std::vector<IndexExpr> indices) const;

 private:
  Shape shape_;
  std::string name_;
  int input_index_;
};

// Creates the i-th input placeholder (inputs are passed to evaluate() in
// placeholder order).
Placeholder placeholder(Shape shape, std::string name, int input_index);

// Scalar constants and arithmetic.
Expr constant(float value);
Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
Expr operator/(Expr a, Expr b);
Expr max2(Expr a, Expr b);
Expr min2(Expr a, Expr b);

// Reductions over one or more reduce axes, iterated in declaration order
// of the `axes` list (outer to inner) with one fp16 rounding per step --
// matching the lowered vector code.
enum class ReduceKind : std::uint8_t { kMax, kMin, kSum };
Expr max(Expr body, std::vector<ReduceAxis> axes);
Expr min(Expr body, std::vector<ReduceAxis> axes);
Expr sum(Expr body, std::vector<ReduceAxis> axes);

// A compute definition: output shape + body built from output-axis index
// expressions (Listing 1's `compute((N, C1, Oh, Ow, C0), lambda ...)`).
struct Compute {
  Shape out_shape;
  Expr body;
};

Compute compute(Shape out_shape,
                const std::function<Expr(const std::vector<IndexExpr>&)>&
                    builder);

// Interprets the definition over fp16 inputs (in placeholder order).
TensorF16 evaluate(const Compute& c,
                   const std::vector<const TensorF16*>& inputs);

// --- Introspection (used by the lowering pass in akg/lower.h) ---

bool is_reduce(const Expr& e);
ReduceKind reduce_kind(const Expr& e);              // reduce nodes only
const std::vector<ReduceAxis>& reduce_axes(const Expr& e);
const Expr& reduce_body(const Expr& e);
ExprKind kind_of(const Expr& e);                    // non-reduce nodes
bool is_load(const Expr& e);
int load_input_index(const Expr& e);
const Shape& load_shape(const Expr& e);
const std::vector<IndexExpr>& load_indices(const Expr& e);

// IndexExpr introspection: the coefficient of one axis variable, the
// constant term, and the ids of all referenced axes.
std::int64_t index_coefficient(const IndexExpr& e, int axis_id);
std::int64_t index_constant(const IndexExpr& e);
std::vector<int> index_axes(const IndexExpr& e);

}  // namespace davinci::akg::dsl
