// Architectural constants of the simulated DaVinci AI Core (Section III of
// the paper; capacities follow the published Ascend 910 "DaVinci Max"
// configuration).
//
// The AI Core has three compute units (Cube, Vector, Scalar), five private
// scratch-pad buffers (L1, L0A, L0B, L0C, Unified Buffer) and a Storage
// Conversion Unit (SCU) that performs layout transformations -- including
// Im2Col and Col2Im -- while data moves between buffers. All shared
// memories (DDR/HBM/L2) are modeled as one "global memory".
#pragma once

#include <cstdint>

namespace davinci {

struct ArchConfig {
  // --- Scratch-pad capacities (bytes) ---
  std::int64_t l1_bytes = 1 * 1024 * 1024;   // input buffer feeding the SCU
  std::int64_t l0a_bytes = 64 * 1024;        // Cube left-operand buffer
  std::int64_t l0b_bytes = 64 * 1024;        // Cube right-operand buffer
  std::int64_t l0c_bytes = 256 * 1024;       // Cube output buffer (fp32)
  std::int64_t ub_bytes = 256 * 1024;        // Unified Buffer (Vector/Scalar)

  // --- Vector Unit ---
  // One vector instruction iteration processes up to 128 fp16 lanes; the
  // 128-bit mask register gates lanes individually (Section III-A).
  int vector_lanes = 128;
  // Maximum value of the hardware repeat parameter; larger tiles need the
  // surrounding (scalar) loop to reissue the instruction.
  int max_repeat = 255;

  // --- Memory system ---
  // Peak sustained MTE bandwidth per core in bytes/cycle (the asymptotic
  // rate of CostModel::mte_copy once startup and per-burst costs
  // amortize). The roofline analysis (sim/metrics.h) measures achieved
  // bytes/cycle against this: machine balance = vector_lanes /
  // peak_mte_bytes_per_cycle = 1 fp16 lane-op per transferred byte.
  std::int64_t peak_mte_bytes_per_cycle = 128;

  // --- Device ---
  int num_cores = 32;  // Ascend 910 has 32 AI Cores

  static ArchConfig ascend910() { return ArchConfig{}; }

  // An Ascend-310-like edge configuration ("DaVinci edge chips also
  // feature Im2Col instructions", Section VII): 2 AI Cores and the same
  // per-core buffer organization. Used by the A6 ablation to check the
  // paper's conclusions on an inference-class device.
  static ArchConfig ascend310() {
    ArchConfig a;
    a.num_cores = 2;
    return a;
  }
};

}  // namespace davinci
