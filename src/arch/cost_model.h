// Cycle-cost model of the simulated AI Core.
//
// The paper explains every measured result in terms of (a) how many vector
// instructions are issued, (b) how saturated the 128-lane vector mask is,
// (c) whether the hardware repeat parameter replaces scalar loops, and
// (d) the cost of moving/transforming data between buffers (MTE and SCU).
// This model charges cycles for exactly those quantities:
//
//   * a vector instruction costs `vec_issue_overhead + repeat` cycles --
//     one cycle per repeat iteration regardless of how many mask lanes are
//     active, which is why 16-of-128-lane code wastes 7/8 of the unit;
//   * every iteration of a scalar loop wrapped around instructions costs
//     `scalar_loop_cycles` (address computation, compare, branch,
//     instruction fetch pressure -- what the repeat parameter eliminates);
//   * MTE transfers pay a startup plus a bandwidth term;
//   * the SCU processes one 16xC0 fractal per `scu_*_cycles_per_fractal`
//     cycles; Col2Im is costlier per fractal than Im2Col because it
//     performs a load + add + store round trip (Figure 6);
//   * the Cube Unit multiplies one pair of fractals per cycle
//     (Section III-A).
//
// Absolute constants are calibrated so relative results (who wins, by what
// factor, where the stride-(1,1) crossover sits) reproduce the paper's
// Figures 7 and 8; see EXPERIMENTS.md. The ablation bench
// `bench_ablation_costmodel` sweeps the most influential constants and
// shows the orderings are stable.
#pragma once

#include <cstdint>

#include "common/align.h"

namespace davinci {

struct CostModel {
  // Vector Unit.
  std::int64_t vec_issue_overhead = 2;   // decode/issue/drain per instruction
  std::int64_t vec_cycles_per_repeat = 1;

  // Scalar Unit overhead per loop iteration surrounding instructions.
  std::int64_t scalar_loop_cycles = 2;

  // Memory Transfer Engine (global memory <-> L1/UB).
  std::int64_t mte_startup_cycles = 64;
  std::int64_t mte_bytes_per_cycle = 128;   // 1024-bit path to GM
  std::int64_t mte_burst_cycles = 1;        // per discontiguous burst (row)

  // Storage Conversion Unit. Per-fractal costs below make the SCU move
  // ~40-50 fp16 elements per cycle -- slower than the MTE's straight-line
  // 64 elements per cycle, because every fractal is gathered from strided
  // patch positions. This throughput gap (together with the Kh*Kw/ (Sh*Sw)
  // data duplication) is what lets the direct kernel win at stride (1,1)
  // in Figure 8a while losing everywhere else.
  std::int64_t scu_issue_overhead = 8;            // per Im2Col/Col2Im instr
  std::int64_t scu_im2col_cycles_per_fractal = 6; // gather-transform-store
  std::int64_t scu_col2im_cycles_per_fractal = 7; // load + add + store

  // Cube Unit.
  std::int64_t cube_issue_overhead = 8;
  std::int64_t cube_cycles_per_fractal_mac = 1;   // 16x16x16 MAC per cycle

  // Synchronization between dependent instructions on different pipes.
  std::int64_t pipe_barrier_cycles = 16;

  // Device-level: per-core kernel-launch overhead (block dispatch).
  std::int64_t core_launch_cycles = 256;

  static CostModel calibrated() { return CostModel{}; }

  // --- Derived helper formulas ---

  std::int64_t vector_instr(std::int64_t repeat) const {
    return vec_issue_overhead + repeat * vec_cycles_per_repeat;
  }

  std::int64_t mte_copy(std::int64_t bytes, std::int64_t bursts = 1) const {
    return mte_startup_cycles + ceil_div(bytes, mte_bytes_per_cycle) +
           bursts * mte_burst_cycles;
  }

  std::int64_t im2col(std::int64_t instructions, std::int64_t fractals) const {
    return instructions * scu_issue_overhead +
           fractals * scu_im2col_cycles_per_fractal;
  }

  std::int64_t col2im(std::int64_t instructions, std::int64_t fractals) const {
    return instructions * scu_issue_overhead +
           fractals * scu_col2im_cycles_per_fractal;
  }

  std::int64_t cube_mmad(std::int64_t fractal_macs) const {
    return cube_issue_overhead + fractal_macs * cube_cycles_per_fractal_mac;
  }
};

}  // namespace davinci
