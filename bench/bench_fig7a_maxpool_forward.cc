// Figure 7a: MaxPool forward, standard TVM lowering vs Im2Col-based, on
// the three InceptionV3 input sizes (147,147,64), (71,71,192), (35,35,288)
// with K(3,3), S(2,2), no padding, NC1HWC0, 32-core device.
//
// Cycles are the pipe-overlap makespan (double-buffered schedule); the
// serial column is the same instruction stream charged in order. Pass
// --no-double-buffer to run the legacy single-buffer schedule (the two
// cycle columns then agree) and --json=<path> for machine-readable rows.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble("MaxPool forward: standard vs Im2col-based",
                        "Figure 7a (IPDPSW 2021)");
  Device dev;
  const std::string profile = bench::profile_arg(argc, argv);
  if (!profile.empty()) bench::enable_profiling(dev);
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  dev.set_double_buffer(db);
  const std::string json_path = bench::json_arg(argc, argv);
  bench::JsonReport report("fig7a_maxpool_forward");

  bench::Table table("Figure 7a -- cycle count by input size",
                     {"input (HWC)", "Maxpool", "Maxpool with Im2col",
                      "speedup", "im2col serial", "im2col host", "verified"});
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                       .window = layer.window,
                       .fwd = akg::PoolImpl::kDirect};
    auto direct = kernels::run_pool(dev, op, {.in = &in});
    op.fwd = akg::PoolImpl::kIm2col;
    auto im2col = kernels::run_pool(dev, op, {.in = &in});
    const TensorF16 want = ref::maxpool_fwd(in, layer.window);
    bool ok = true;
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= direct.out.flat(i) == want.flat(i);
      ok &= im2col.out.flat(i) == want.flat(i);
    }
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    table.add_row({shape, bench::fmt_int(direct.cycles()),
                   bench::fmt_int(im2col.cycles()),
                   bench::fmt_ratio(static_cast<double>(direct.cycles()) /
                                    static_cast<double>(im2col.cycles())),
                   bench::fmt_int(im2col.run.device_cycles_serial),
                   bench::fmt_ns(im2col.run.host_ns),
                   ok ? "bit-exact" : "MISMATCH"});
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("direct"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(direct.run)
        .traffic_fields(direct.run, dev.arch());
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("im2col"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(im2col.run)
        .traffic_fields(im2col.run, dev.arch());
  }
  table.print();
  std::printf(
      "\nPaper reports a 3.2x speedup at the largest input (Section VI-A).\n");
  if (!json_path.empty()) report.write(json_path);
  if (!profile.empty()) bench::write_profile(dev, profile);
  return 0;
}
