// Figure 7a: MaxPool forward, standard TVM lowering vs Im2Col-based, on
// the three InceptionV3 input sizes (147,147,64), (71,71,192), (35,35,288)
// with K(3,3), S(2,2), no padding, NC1HWC0, 32-core device.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble("MaxPool forward: standard vs Im2col-based",
                        "Figure 7a (IPDPSW 2021)");
  Device dev;
  const std::string profile = bench::profile_arg(argc, argv);
  if (!profile.empty()) bench::enable_profiling(dev);
  bench::Table table("Figure 7a -- cycle count by input size",
                     {"input (HWC)", "Maxpool", "Maxpool with Im2col",
                      "speedup", "verified"});
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    auto direct =
        kernels::maxpool_forward(dev, in, layer.window, akg::PoolImpl::kDirect);
    auto im2col =
        kernels::maxpool_forward(dev, in, layer.window, akg::PoolImpl::kIm2col);
    const TensorF16 want = ref::maxpool_fwd(in, layer.window);
    bool ok = true;
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= direct.out.flat(i) == want.flat(i);
      ok &= im2col.out.flat(i) == want.flat(i);
    }
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    table.add_row({shape, bench::fmt_int(direct.cycles()),
                   bench::fmt_int(im2col.cycles()),
                   bench::fmt_ratio(static_cast<double>(direct.cycles()) /
                                    static_cast<double>(im2col.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
  }
  table.print();
  std::printf(
      "\nPaper reports a 3.2x speedup at the largest input (Section VI-A).\n");
  if (!profile.empty()) bench::write_profile(dev, profile);
  return 0;
}
