// Chaos soak for the serving layer: replays a pooling request trace
// through serve::Session under a matrix of seeded FaultPlans and checks
// the robustness contract (docs/SERVING.md, docs/RESILIENCE.md):
//
//   * every submitted future resolves -- a value or an exception, never
//     a hang -- whatever the fault mix does to the launches;
//   * every *successful* response is bit-identical to a fault-free run
//     of the same request (silent-fault mixes run with store-path
//     verification on, so corruption is caught and retried, not served).
//
// Each seed pairs one fault mix (bit flips, MTE drops, SCU errors,
// detected vector faults, hard core failures) with its own PRNG stream,
// so the soak covers distinct fault placements run after run while
// staying fully replayable.
//
//   bench_serve_chaos [--seeds=N] [--trace=path] [--retries=N]
//                     [--json=path]
//
// Exit code 0 iff zero unresolved futures and zero mismatches; CI gates
// on it plus the JSON totals (BENCH_serve_chaos.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "harness.h"
#include "serve/session.h"
#include "serve/trace.h"
#include "sim/fault.h"

using namespace davinci;

namespace {

// One mix per chaos dimension plus compound mixes; seeds cycle through.
const char* kMixes[] = {
    "bitflip:ub:1e-6",
    "mte_drop:1e-3",
    "core_fail@3",
    "bitflip:l1:1e-6,core_fail@5",
    "mte_drop:5e-4,bitflip:ub:5e-7",
    "vec_fault:1e-5,core_fail@1@2",
    "scu_err:1e-4",
    "bitflip:ub:5e-7,mte_drop:2e-4,core_fail@7",
};
constexpr int kNumMixes = static_cast<int>(sizeof(kMixes) / sizeof(*kMixes));

// The embedded default workload (same shape as traces/serve_chaos.trace):
// modest geometries, mixed batch sizes, every operator family, one line
// with a generous (never-expiring) deadline.
const char* kDefaultTrace =
    "op=maxpool n=1 c1=4 ih=35 iw=35 k=3 s=2 impl=im2col x=4 "
    "deadline_us=60000000\n"
    "op=maxpool n=2 c1=4 ih=35 iw=35 k=3 s=2 impl=im2col x=2\n"
    "op=maxpool n=1 c1=12 ih=71 iw=71 k=3 s=2 impl=im2col x=2\n"
    "op=avgpool n=1 c1=4 ih=35 iw=35 k=3 s=2 impl=im2col x=2\n"
    "op=maxpool_mask n=1 c1=4 ih=56 iw=56 k=3 s=2 impl=im2col x=2\n"
    "op=maxpool_bwd n=1 c1=4 ih=56 iw=56 k=3 s=2 merge=col2im x=2\n"
    "op=avgpool_bwd n=1 c1=4 ih=56 iw=56 k=3 s=2 merge=vadd x=2\n"
    "op=global_avgpool n=1 c1=64 ih=8 iw=8 x=2\n";

std::string named_arg(int argc, char** argv, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
  }
  return "";
}

std::int64_t int_arg(int argc, char** argv, const char* prefix,
                     std::int64_t fallback) {
  const std::string v = named_arg(argc, argv, prefix);
  return v.empty() ? fallback : std::stoll(v);
}

bool same_tensor(const TensorF16& a, const TensorF16& b) {
  // A rank-0 tensor is an absent result slot (size() reports 1, the
  // empty product, but owns no data) -- equal iff both are absent.
  if (a.shape().rank() != b.shape().rank()) return false;
  if (a.shape().rank() == 0) return true;
  if (a.size() != b.size()) return false;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    if (!(a.flat(i) == b.flat(i))) return false;
  }
  return true;
}

bool same_result(const kernels::PoolResult& a, const kernels::PoolResult& b) {
  return same_tensor(a.out, b.out) && same_tensor(a.mask, b.mask) &&
         same_tensor(a.grad_in, b.grad_in);
}

struct SeedOutcome {
  std::string spec;
  std::uint64_t seed = 0;
  std::int64_t requests = 0;
  std::int64_t unresolved = 0;  // futures still pending after the grace
  std::int64_t completed = 0;
  std::int64_t failed = 0;      // resolved with an exception (still OK)
  std::int64_t mismatches = 0;  // successes differing from fault-free
  serve::SessionStats stats;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_preamble(
      "Chaos soak: trace replay through serve::Session under seeded "
      "fault plans (every future resolves; successes bit-exact)",
      "robustness harness for the serving layer, not a paper figure");

  const int seeds = static_cast<int>(int_arg(argc, argv, "--seeds=", 8));
  const int retries = static_cast<int>(int_arg(argc, argv, "--retries=", 4));
  const std::string trace_path = named_arg(argc, argv, "--trace=");
  const std::string json_path = bench::json_arg(argc, argv);

  std::vector<serve::TraceEntry> entries;
  try {
    entries = trace_path.empty() ? serve::parse_trace(kDefaultTrace)
                                 : serve::load_trace(trace_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "bench_serve_chaos: %s\n", e.what());
    return 2;
  }

  std::vector<serve::MaterializedRequest> requests;
  std::vector<std::size_t> request_entry;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      requests.push_back(
          serve::materialize(entries[i], i * 1000 + std::uint64_t(r)));
      request_entry.push_back(i);
    }
  }

  // Fault-free ground truth, one lone launch per request: the session
  // already guarantees bit-exactness to this on the happy path, so any
  // chaos-run divergence is a served-corruption bug.
  Device lone;
  lone.set_double_buffer(true);
  std::vector<kernels::PoolResult> truth;
  truth.reserve(requests.size());
  for (std::size_t r = 0; r < requests.size(); ++r) {
    truth.push_back(kernels::run_pool(lone, entries[request_entry[r]].op,
                                      requests[r].inputs()));
  }

  bench::Table table("Chaos soak, " + std::to_string(requests.size()) +
                         " requests per seed",
                     {"seed", "fault mix", "completed", "failed",
                      "unresolved", "mismatch", "degraded", "bisect",
                      "quarantined", "verdict"});
  bench::JsonReport report("serve_chaos");

  std::vector<SeedOutcome> outcomes;
  for (int s = 0; s < seeds; ++s) {
    SeedOutcome o;
    o.spec = kMixes[s % kNumMixes];
    o.seed = 1000 + static_cast<std::uint64_t>(s) * 17;
    o.requests = static_cast<std::int64_t>(requests.size());

    serve::SessionOptions opts;
    ResilienceOptions res;
    res.plan = FaultPlan::parse(o.spec, o.seed);
    // Silent-corruption sites need store-path verification, or absorbed
    // faults would legitimately serve corrupted bits.
    res.verify = res.plan.has_silent_sites();
    res.max_retries = retries;
    opts.resilience = res;

    {
      serve::Session session(serve::Cluster{}, opts);
      std::vector<std::future<kernels::PoolResult>> futures;
      futures.reserve(requests.size());
      for (std::size_t r = 0; r < requests.size(); ++r) {
        const serve::TraceEntry& e = entries[request_entry[r]];
        futures.push_back(session.submit(
            e.op, requests[r].inputs(),
            serve::SubmitOptions{.deadline_us = e.deadline_us,
                                 .prio = e.prio}));
      }
      session.drain(std::chrono::microseconds(120'000'000));
      for (std::size_t r = 0; r < futures.size(); ++r) {
        if (futures[r].wait_for(std::chrono::seconds(60)) !=
            std::future_status::ready) {
          o.unresolved += 1;
          continue;
        }
        try {
          const kernels::PoolResult got = futures[r].get();
          o.completed += 1;
          if (!same_result(got, truth[r])) o.mismatches += 1;
        } catch (const Error&) {
          o.failed += 1;  // resolved: the contract holds
        }
      }
      o.stats = session.stats();
    }

    const bool ok = o.unresolved == 0 && o.mismatches == 0;
    table.add_row({std::to_string(o.seed), o.spec,
                   bench::fmt_int(o.completed), bench::fmt_int(o.failed),
                   bench::fmt_int(o.unresolved), bench::fmt_int(o.mismatches),
                   bench::fmt_int(o.stats.degraded_launches),
                   bench::fmt_int(o.stats.bisections),
                   bench::fmt_int(o.stats.faults.cores_quarantined),
                   ok ? "ok" : "VIOLATION"});
    report.row()
        .field("name", std::string("chaos ") + o.spec)
        .field("seed", static_cast<std::int64_t>(o.seed))
        .field("requests", o.requests)
        .field("resolved", o.completed + o.failed)
        .field("unresolved", o.unresolved)
        .field("completed", o.completed)
        .field("failed", o.failed)
        .field("mismatches", o.mismatches)
        .field("degraded_launches", o.stats.degraded_launches)
        .field("bisections", o.stats.bisections)
        .field("poisoned_requests", o.stats.poisoned_requests)
        .field("quarantined", o.stats.faults.cores_quarantined)
        .field("faults_injected", o.stats.faults.faults_injected)
        .field("faults_detected", o.stats.faults.faults_detected)
        .field("retries", o.stats.faults.retries);
    outcomes.push_back(o);
  }

  table.print();

  std::int64_t unresolved = 0, mismatches = 0, injected = 0;
  for (const SeedOutcome& o : outcomes) {
    unresolved += o.unresolved;
    mismatches += o.mismatches;
    injected += o.stats.faults.faults_injected;
  }
  std::printf("\n%d seeds, %lld faults injected: %lld unresolved futures, "
              "%lld mismatched successes -> %s\n",
              seeds, static_cast<long long>(injected),
              static_cast<long long>(unresolved),
              static_cast<long long>(mismatches),
              unresolved + mismatches == 0 ? "contract holds"
                                           : "CONTRACT VIOLATION");

  if (!json_path.empty()) report.write(json_path);
  return unresolved + mismatches == 0 ? 0 : 1;
}
