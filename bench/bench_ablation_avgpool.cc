// Ablation A2 (ours): AvgPool equivalents of Figure 7. Section V-C argues
// the same accelerations apply to AvgPool (vadd instead of vmax, plus the
// elementwise division; backward without the Argmax mask); this bench
// measures them on the same InceptionV3 shapes.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main() {
  bench::print_preamble("AvgPool forward and backward on Figure 7 shapes",
                        "Ablation A2 (Section V-C of the paper)");
  Device dev;
  bench::Table fwd("AvgPool forward",
                   {"input (HWC)", "Avgpool", "with Im2col", "speedup",
                    "verified"});
  bench::Table bwd("AvgPool backward",
                   {"input (HWC)", "Avgpool backward", "with Col2im",
                    "speedup", "verified"});

  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const Window2d w = layer.window;
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);

    kernels::PoolOp fop{.kind = kernels::PoolOpKind::kAvgFwd,
                        .window = w,
                        .fwd = akg::PoolImpl::kDirect};
    auto d = kernels::run_pool(dev, fop, {.in = &in});
    fop.fwd = akg::PoolImpl::kIm2col;
    auto i = kernels::run_pool(dev, fop, {.in = &in});
    const TensorF16 want = ref::avgpool_fwd(in, w);
    bool ok = true;
    for (std::int64_t x = 0; x < want.size(); ++x) {
      ok &= d.out.flat(x) == want.flat(x);
      ok &= i.out.flat(x) == want.flat(x);
    }
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    fwd.add_row({shape, bench::fmt_int(d.cycles()), bench::fmt_int(i.cycles()),
                 bench::fmt_ratio(static_cast<double>(d.cycles()) /
                                  static_cast<double>(i.cycles())),
                 ok ? "bit-exact" : "MISMATCH"});

    TensorF16 grad(Shape{1, c1, w.out_h(layer.h), w.out_w(layer.w), kC0});
    grad.fill_random_ints(9, -5, 5);
    kernels::PoolOp bop{.kind = kernels::PoolOpKind::kAvgBwd,
                        .window = w,
                        .merge = kernels::MergeImpl::kVadd};
    const kernels::PoolInputs bwd_in{
        .grad = &grad, .ih = layer.h, .iw = layer.w};
    auto bv = kernels::run_pool(dev, bop, bwd_in);
    bop.merge = kernels::MergeImpl::kCol2im;
    auto bc = kernels::run_pool(dev, bop, bwd_in);
    // The 1/9 scale is inexact and tile seams reassociate, so compare the
    // two implementations against each other within an ulp.
    bool okb = true;
    for (std::int64_t x = 0; x < bv.grad_in.size(); ++x) {
      const float a = bv.grad_in.flat(x).to_float();
      const float b = bc.grad_in.flat(x).to_float();
      okb &= (a - b < 2e-3f) && (b - a < 2e-3f);
    }
    bwd.add_row({shape, bench::fmt_int(bv.cycles()),
                 bench::fmt_int(bc.cycles()),
                 bench::fmt_ratio(static_cast<double>(bv.cycles()) /
                                  static_cast<double>(bc.cycles())),
                 okb ? "within-ulp" : "MISMATCH"});
  }
  fwd.print();
  bwd.print();
  std::printf(
      "\nExpected shape: speedups track the MaxPool results of Figure 7 --\n"
      "the access pattern, not the reduction function, is what Im2Col and\n"
      "Col2Im fix (Section V-C).\n");
  return 0;
}
