// Ablation A7 (ours): the Figure-7c comparison on Col2Im's *original*
// workload -- convolution backward-input (Section II-B: "Col2im is used
// in the backward propagation pass of convolutional layers implemented
// with Im2col"). The unrolled gradient dCols = dOut x W^T is produced on
// the Cube Unit either way; only the merge differs.
#include <cstdio>

#include "harness.h"
#include "kernels/conv2d_bwd.h"
#include "ref/conv_ref.h"

using namespace davinci;

int main() {
  bench::print_preamble(
      "Convolution backward-input: vadd merge vs Col2Im merge",
      "Ablation A7 (Section II-B: Col2im's original role)");
  Device dev;
  bench::Table table("conv backward-input, Cout=32, K(3,3)",
                     {"input (HWC)", "stride", "vadd merge", "Col2Im merge",
                      "speedup", "verified"});

  struct Case {
    std::int64_t c, h, s;
  };
  for (const Case& cs : {Case{16, 23, 2}, Case{16, 35, 2}, Case{32, 35, 2},
                         Case{16, 20, 1}, Case{16, 24, 3}}) {
    const Window2d w = Window2d::pool(3, cs.s);
    TensorF32 weights(Shape{32, cs.c, 3, 3});
    weights.fill_random_ints(41, -2, 2);
    TensorF32 grad_nchw(Shape{1, 32, w.out_h(cs.h), w.out_w(cs.h)});
    grad_nchw.fill_random_ints(42, -2, 2);
    const TensorF16 grad = nchw_to_nc1hwc0(grad_nchw);

    auto vadd = kernels::conv2d_backward_input(
        dev, grad, weights, w, cs.h, cs.h, kernels::MergeImpl::kVadd);
    auto col2im = kernels::conv2d_backward_input(
        dev, grad, weights, w, cs.h, cs.h, kernels::MergeImpl::kCol2im);
    bool ok = true;
    for (std::int64_t i = 0; i < vadd.grad_in.size(); ++i) {
      ok &= vadd.grad_in.flat(i) == col2im.grad_in.flat(i);
    }

    char shape[48], stride[16];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(cs.h), static_cast<long long>(cs.h),
                  static_cast<long long>(cs.c));
    std::snprintf(stride, sizeof(stride), "(%lld,%lld)",
                  static_cast<long long>(cs.s), static_cast<long long>(cs.s));
    table.add_row({shape, stride, bench::fmt_int(vadd.cycles()),
                   bench::fmt_int(col2im.cycles()),
                   bench::fmt_ratio(static_cast<double>(vadd.cycles()) /
                                    static_cast<double>(col2im.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
  }
  table.print();
  std::printf(
      "\nReading: the same merge-step replacement that gives pooling its\n"
      "Figure-7c speedup applies to convolution training -- the\n"
      "instruction's designed-for case.\n");
  return 0;
}
