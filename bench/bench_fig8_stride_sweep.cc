// Figure 8: MaxPool forward implementations vs input size, per stride.
//
//  8a: stride (1,1) -- maximum data duplication in Im2col; the direct
//      lowering saturates the vector mask and wins.
//  8b: stride (2,2) -- the InceptionV3 regime; the Im2col-based kernels
//      win and the X-Y split underperforms them (it is shown only here,
//      as in the paper).
//  8c: stride (3,3) -- no duplication (K == S); Im2col still wins.
//
// As in the paper, N = C1 = 1 (one AI Core), K = (3,3), no padding, and
// the input height/width grows in steps of two up to the tiling threshold
// (the largest size every implementation can process without H-tiling).
//
// Usage: bench_fig8_stride_sweep [--stride=1|2|3]   (default: all three)
#include <cstdio>
#include <cstring>

#include "akg/tiling.h"
#include "harness.h"
#include "kernels/pooling.h"
#include "ref/pooling_ref.h"

using namespace davinci;

namespace {

void sweep(std::int64_t stride, bool db, bench::JsonReport* report) {
  Device dev;
  dev.set_double_buffer(db);
  const Window2d w = Window2d::pool(3, stride);
  const bool with_xysplit = stride == 2;  // as in Figure 8b
  const std::int64_t threshold =
      akg::tiling_threshold(dev.arch(), w, false, false);

  std::vector<std::string> cols = {"H=W", "Maxpool", "with Im2col",
                                   "with expansion"};
  if (with_xysplit) cols.push_back("X-Y split");
  cols.push_back("best");
  char title[96];
  std::snprintf(title, sizeof(title),
                "Figure 8%c -- stride (%lld,%lld), cycles up to the tiling "
                "threshold (H=W=%lld)",
                stride == 1 ? 'a' : (stride == 2 ? 'b' : 'c'),
                static_cast<long long>(stride),
                static_cast<long long>(stride),
                static_cast<long long>(threshold));
  bench::Table table(title, cols);

  // Start a little above the kernel and step by 2, like the paper.
  for (std::int64_t h = 9; h <= threshold; h += 2) {
    const TensorF16 in = bench::make_input(1, 1, h, h);
    const TensorF16 want = ref::maxpool_fwd(in, w);

    auto run = [&](akg::PoolImpl impl) {
      auto r = kernels::run_pool(
          dev,
          {.kind = kernels::PoolOpKind::kMaxFwd, .window = w, .fwd = impl},
          {.in = &in});
      for (std::int64_t i = 0; i < want.size(); ++i) {
        if (!(r.out.flat(i) == want.flat(i))) {
          std::fprintf(stderr, "MISMATCH %s h=%lld\n", akg::to_string(impl),
                       static_cast<long long>(h));
          std::exit(1);
        }
      }
      if (report) {
        report->row()
            .field("stride", stride)
            .field("h", h)
            .field("impl", std::string(akg::to_string(impl)))
            .field("double_buffer", db)
            .field("verified", true)
            .run_fields(r.run)
            .traffic_fields(r.run, dev.arch());
      }
      return r.cycles();
    };

    const std::int64_t direct = run(akg::PoolImpl::kDirect);
    const std::int64_t im2col = run(akg::PoolImpl::kIm2col);
    const std::int64_t expansion = run(akg::PoolImpl::kExpansion);
    std::int64_t xysplit = 0;
    if (with_xysplit) xysplit = run(akg::PoolImpl::kXYSplit);

    std::int64_t best = direct;
    const char* best_name = "direct";
    if (im2col < best) { best = im2col; best_name = "im2col"; }
    if (expansion < best) { best = expansion; best_name = "expansion"; }
    if (with_xysplit && xysplit < best) { best = xysplit; best_name = "xysplit"; }

    std::vector<std::string> row = {bench::fmt_int(h), bench::fmt_int(direct),
                                    bench::fmt_int(im2col),
                                    bench::fmt_int(expansion)};
    if (with_xysplit) row.push_back(bench::fmt_int(xysplit));
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_preamble(
      "MaxPool forward implementations across strides and input sizes",
      "Figure 8 (IPDPSW 2021)");
  std::int64_t only = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--stride=", 9) == 0) only = argv[i][9] - '0';
  }
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  const std::string json_path = bench::json_arg(argc, argv);
  bench::JsonReport report("fig8_stride_sweep");
  for (std::int64_t s : {1, 2, 3}) {
    if (only == 0 || only == s) {
      sweep(s, db, json_path.empty() ? nullptr : &report);
    }
  }
  std::printf(
      "\nExpected shape (Section VI-B): direct wins only at stride (1,1);\n"
      "Im2col-based kernels win at (2,2) and (3,3); the X-Y split\n"
      "underperforms the Im2col-based implementations.\n");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
