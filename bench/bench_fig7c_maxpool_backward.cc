// Figure 7c: MaxPool backward, vadd-merge baseline vs Col2Im-based merge,
// on the InceptionV3 inputs of Figure 7. The backward operator is where
// the paper measures its largest speedup (5.8x) because the merge step is
// exactly the Col2im operation.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble("MaxPool backward: vadd merge vs Col2Im merge",
                        "Figure 7c (IPDPSW 2021)");
  Device dev;
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  dev.set_double_buffer(db);
  const std::string json_path = bench::json_arg(argc, argv);
  bench::JsonReport report("fig7c_maxpool_backward");
  bench::Table table("Figure 7c -- cycle count by input size",
                     {"input (HWC)", "Maxpool backward", "with Col2im",
                      "speedup", "verified"});
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const Window2d w = layer.window;
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
    TensorF16 grad(Shape{1, c1, w.out_h(layer.h), w.out_w(layer.w), kC0});
    grad.fill_random_ints(7, 0, 5);

    kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxBwd,
                       .window = w,
                       .merge = kernels::MergeImpl::kVadd};
    const kernels::PoolInputs bwd_in{
        .mask = &mask, .grad = &grad, .ih = layer.h, .iw = layer.w};
    auto vadd = kernels::run_pool(dev, op, bwd_in);
    op.merge = kernels::MergeImpl::kCol2im;
    auto col2im = kernels::run_pool(dev, op, bwd_in);
    const TensorF16 want = ref::maxpool_bwd(mask, grad, w, layer.h, layer.w);
    bool ok = true;
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= vadd.grad_in.flat(i) == want.flat(i);
      ok &= col2im.grad_in.flat(i) == want.flat(i);
    }
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    table.add_row({shape, bench::fmt_int(vadd.cycles()),
                   bench::fmt_int(col2im.cycles()),
                   bench::fmt_ratio(static_cast<double>(vadd.cycles()) /
                                    static_cast<double>(col2im.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("vadd"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(vadd.run)
        .traffic_fields(vadd.run, dev.arch());
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("col2im"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(col2im.run)
        .traffic_fields(col2im.run, dev.arch());
  }
  table.print();
  std::printf(
      "\nPaper reports a 5.8x speedup at the largest input (Section VI-A).\n");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
