// Table I: the MaxPool layers of InceptionV3, Xception, ResNet50 and
// VGG16. The paper lists the shapes; this bench runs both forward
// implementations on every layer (full channel count, 32-core device) and
// reports per-layer and per-network cycle totals.
#include <cstdio>
#include <map>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble(
      "All Table-I CNN pooling layers: standard vs Im2col-based forward",
      "Table I (IPDPSW 2021)");
  Device dev;
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  dev.set_double_buffer(db);
  const std::string json_path = bench::json_arg(argc, argv);
  bench::JsonReport report("table1_networks");
  bench::Table table("Table I workloads",
                     {"network", "input (HWC)", "K/S", "Maxpool",
                      "with Im2col", "speedup", "verified"});
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> totals;

  for (const auto& layer : nets::table1_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                       .window = layer.window,
                       .fwd = akg::PoolImpl::kDirect};
    auto direct = kernels::run_pool(dev, op, {.in = &in});
    op.fwd = akg::PoolImpl::kIm2col;
    auto im2col = kernels::run_pool(dev, op, {.in = &in});
    const TensorF16 want = ref::maxpool_fwd(in, layer.window);
    bool ok = true;
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= direct.out.flat(i) == want.flat(i);
      ok &= im2col.out.flat(i) == want.flat(i);
    }
    totals[layer.network].first += direct.cycles();
    totals[layer.network].second += im2col.cycles();

    char shape[48], ks[24];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    std::snprintf(ks, sizeof(ks), "(%lld,%lld)/(%lld,%lld)",
                  static_cast<long long>(layer.window.kh),
                  static_cast<long long>(layer.window.kw),
                  static_cast<long long>(layer.window.sh),
                  static_cast<long long>(layer.window.sw));
    table.add_row({layer.network, shape, ks, bench::fmt_int(direct.cycles()),
                   bench::fmt_int(im2col.cycles()),
                   bench::fmt_ratio(static_cast<double>(direct.cycles()) /
                                    static_cast<double>(im2col.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
    report.row()
        .field("net", layer.network)
        .field("shape", std::string(shape))
        .field("window", std::string(ks))
        .field("impl", std::string("direct"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(direct.run)
        .traffic_fields(direct.run, dev.arch());
    report.row()
        .field("net", layer.network)
        .field("shape", std::string(shape))
        .field("window", std::string(ks))
        .field("impl", std::string("im2col"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(im2col.run)
        .traffic_fields(im2col.run, dev.arch());
  }
  table.print();

  bench::Table sums("Per-network totals (all pooling layers)",
                    {"network", "Maxpool", "with Im2col", "speedup"});
  for (const auto& [net, t] : totals) {
    sums.add_row({net, bench::fmt_int(t.first), bench::fmt_int(t.second),
                  bench::fmt_ratio(static_cast<double>(t.first) /
                                   static_cast<double>(t.second))});
  }
  sums.print();
  std::printf(
      "\nNote: VGG16 uses K=S=(2,2) -- non-overlapping windows -- where the\n"
      "Im2col layout still wins on mask saturation alone.\n");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
