// Ablation A4 (ours): the paper's future-work item -- fusing AvgPool into
// the preceding convolution as a single Cube-Unit matrix multiplication
// (Suita et al.) -- compared against the two-stage pipeline using the
// Im2col-based AvgPool of this paper.
#include <cstdio>

#include "harness.h"
#include "kernels/fused_conv_pool.h"
#include "kernels/pooling.h"

using namespace davinci;

int main() {
  bench::print_preamble(
      "Conv + AvgPool: two-stage (Cube conv + Vector pooling) vs fused "
      "composite-kernel Cube pass",
      "Ablation A4 (Section VIII future work; Suita et al.)");
  Device dev;
  bench::Table table("conv K(3,3) S(1,1) -> avgpool K(2,2) S(2,2), Cout=16",
                     {"input (HWC)", "conv", "+ avgpool", "two-stage total",
                      "fused", "benefit"});

  for (std::int64_t h : {14, 22, 30}) {
    TensorF32 in_nchw(Shape{1, 16, h, h});
    in_nchw.fill_random_ints(31, -2, 2);
    TensorF32 w(Shape{16, 16, 3, 3});
    w.fill_random_ints(32, -1, 1);
    const Window2d conv = Window2d::pool(3, 1);
    const Window2d pool = Window2d::pool(2, 2);

    const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
    auto conv_r = kernels::conv2d_cube(dev, in, w, conv);
    auto pool_r = kernels::run_pool(dev,
                                    {.kind = kernels::PoolOpKind::kAvgFwd,
                                     .window = pool,
                                     .fwd = akg::PoolImpl::kIm2col},
                                    {.in = &conv_r.out});
    auto fused = kernels::conv2d_avgpool_fused(dev, in, w, conv, pool);

    // Numerics: paths round fp16 at different points; stay within 0.5.
    bool ok = fused.out.shape() == pool_r.out.shape();
    for (std::int64_t i = 0; ok && i < fused.out.size(); ++i) {
      const float d =
          fused.out.flat(i).to_float() - pool_r.out.flat(i).to_float();
      ok &= d < 0.5f && d > -0.5f;
    }
    if (!ok) {
      std::fprintf(stderr, "fusion verification FAILED at h=%lld\n",
                   static_cast<long long>(h));
      return 1;
    }

    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,16",
                  static_cast<long long>(h), static_cast<long long>(h));
    const std::int64_t two_stage = conv_r.cycles() + pool_r.cycles();
    table.add_row({shape, bench::fmt_int(conv_r.cycles()),
                   bench::fmt_int(pool_r.cycles()),
                   bench::fmt_int(two_stage), bench::fmt_int(fused.cycles()),
                   bench::fmt_ratio(static_cast<double>(two_stage) /
                                    static_cast<double>(fused.cycles()))});
  }
  table.print();
  std::printf(
      "\nReading: fusion removes the Vector-Unit pooling pass and its GM\n"
      "round trip, at the price of a larger composite kernel in the Cube\n"
      "pass. It applies only to AvgPool -- MaxPool is not linear, which is\n"
      "why the paper's Im2col/Col2im pooling remains necessary.\n");
  return 0;
}
