// Host-side microbenchmarks (google-benchmark): wall-clock performance of
// the *simulator itself* on the primitives the reproduction exercises.
// These are not paper results -- they exist so regressions in simulator
// throughput (which bound how large an experiment is practical) are
// visible.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "kernels/pooling.h"
#include "sim/ai_core.h"
#include "sim/device.h"
#include "sim/scu.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

void BM_VectorUnitFlatMax(benchmark::State& state) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  const std::int64_t n = state.range(0);
  auto a = core.ub().alloc<Float16>(n);
  auto b = core.ub().alloc<Float16>(n);
  auto d = core.ub().alloc<Float16>(n);
  core.vdup_flat(a, Float16(1.0f), n);
  core.vdup_flat(b, Float16(2.0f), n);
  for (auto _ : state) {
    core.vbin_flat(VecOp::kMax, d, a, b, n);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
// Three spans of the largest size must fit the 256 KiB Unified Buffer.
BENCHMARK(BM_VectorUnitFlatMax)->Arg(1024)->Arg(16384)->Arg(40960);

void BM_Im2colLoad(benchmark::State& state) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  const std::int64_t h = state.range(0);
  Im2colArgs args;
  args.window = Window2d::pool(3, 2);
  args.ih = h;
  args.iw = h;
  auto src = core.l1().alloc<Float16>(args.input_elems());
  auto dst = core.ub().alloc<Float16>(args.output_elems());
  for (auto _ : state) {
    core.scu().im2col_load(dst, src, args);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * args.output_elems());
}
BENCHMARK(BM_Im2colLoad)->Arg(17)->Arg(33);

void BM_Col2im(benchmark::State& state) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  const std::int64_t h = state.range(0);
  Im2colArgs args;
  args.window = Window2d::pool(3, 2);
  args.ih = h;
  args.iw = h;
  auto src = core.ub().alloc<Float16>(args.output_elems());
  auto out = core.ub().alloc<Float16>(args.input_elems());
  core.vdup_flat(out, Float16(), args.input_elems());
  for (auto _ : state) {
    core.scu().col2im(out, src, args);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * args.output_elems());
}
BENCHMARK(BM_Col2im)->Arg(17)->Arg(33);

void BM_MaxpoolForwardIm2col(benchmark::State& state) {
  Device dev;
  const std::int64_t h = state.range(0);
  TensorF16 in(Shape{1, 1, h, h, kC0});
  in.fill_random_ints(1);
  const Window2d w = Window2d::pool(3, 2);
  const kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                           .window = w,
                           .fwd = akg::PoolImpl::kIm2col};
  for (auto _ : state) {
    auto r = kernels::run_pool(dev, op, {.in = &in});
    benchmark::DoNotOptimize(r.out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_MaxpoolForwardIm2col)->Arg(17)->Arg(35)->Arg(71);

void BM_MaxpoolForwardDirect(benchmark::State& state) {
  Device dev;
  const std::int64_t h = state.range(0);
  TensorF16 in(Shape{1, 1, h, h, kC0});
  in.fill_random_ints(1);
  const Window2d w = Window2d::pool(3, 2);
  const kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                           .window = w,
                           .fwd = akg::PoolImpl::kDirect};
  for (auto _ : state) {
    auto r = kernels::run_pool(dev, op, {.in = &in});
    benchmark::DoNotOptimize(r.out.data());
  }
  state.SetItemsProcessed(state.iterations() * in.size());
}
BENCHMARK(BM_MaxpoolForwardDirect)->Arg(17)->Arg(35)->Arg(71);

void BM_DeviceRunDispatch(benchmark::State& state) {
  Device dev;
  for (auto _ : state) {
    auto r = dev.run(32, [](AiCore& core, std::int64_t) {
      auto s = core.ub().alloc<Float16>(128);
      core.vdup_flat(s, Float16(), 128);
    });
    benchmark::DoNotOptimize(r.device_cycles);
  }
}
BENCHMARK(BM_DeviceRunDispatch);

}  // namespace
}  // namespace davinci

// Custom main so the harness-wide --json=<path> flag works here too: it
// maps onto google-benchmark's own JSON reporter (--benchmark_out), which
// already records wall-clock per benchmark -- the host-side equivalent of
// the cycle rows the figure benches emit.
int main(int argc, char** argv) {
  std::vector<std::string> args_storage;
  std::vector<char*> args;
  args_storage.reserve(static_cast<std::size_t>(argc) + 2);
  for (int i = 0; i < argc; ++i) {
    static constexpr char kFlag[] = "--json=";
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      args_storage.push_back(std::string("--benchmark_out=") +
                             (argv[i] + sizeof(kFlag) - 1));
      args_storage.push_back("--benchmark_out_format=json");
    } else {
      args_storage.push_back(argv[i]);
    }
  }
  for (auto& s : args_storage) args.push_back(s.data());
  int fake_argc = static_cast<int>(args.size());
  benchmark::Initialize(&fake_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(fake_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
