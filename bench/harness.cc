#include "harness.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/json.h"
#include "sim/metrics.h"
#include "sim/trace_export.h"

namespace davinci::bench {

TensorF16 make_input(std::int64_t n, std::int64_t c1, std::int64_t h,
                     std::int64_t w, std::uint64_t seed) {
  TensorF16 t(Shape{n, c1, h, w, kC0});
  t.fill_random_ints(seed);
  return t;
}

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), columns_[i].c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    std::printf("%s  ", std::string(widths[i], '-').c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
    }
    std::printf("\n");
  }
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }

std::string fmt_ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", v);
  return buf;
}

std::string fmt_ns(std::int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fus",
                static_cast<double>(ns) / 1000.0);
  return buf;
}

namespace {

void append_json_escaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

JsonReport::JsonReport(std::string bench) : bench_(std::move(bench)) {}

JsonReport& JsonReport::row() {
  rows_.emplace_back();
  return *this;
}

JsonReport& JsonReport::field(const std::string& key,
                              const std::string& value) {
  DV_CHECK(!rows_.empty()) << "field() before row()";
  std::string& r = rows_.back();
  if (!r.empty()) r += ",";
  r += "\"";
  append_json_escaped(&r, key);
  r += "\":\"";
  append_json_escaped(&r, value);
  r += "\"";
  return *this;
}

JsonReport& JsonReport::field(const std::string& key, std::int64_t value) {
  DV_CHECK(!rows_.empty()) << "field() before row()";
  std::string& r = rows_.back();
  if (!r.empty()) r += ",";
  r += "\"";
  append_json_escaped(&r, key);
  r += "\":" + std::to_string(value);
  return *this;
}

JsonReport& JsonReport::field(const std::string& key, bool value) {
  DV_CHECK(!rows_.empty()) << "field() before row()";
  std::string& r = rows_.back();
  if (!r.empty()) r += ",";
  r += "\"";
  append_json_escaped(&r, key);
  r += value ? "\":true" : "\":false";
  return *this;
}

JsonReport& JsonReport::field(const std::string& key, double value) {
  DV_CHECK(!rows_.empty()) << "field() before row()";
  std::string& r = rows_.back();
  if (!r.empty()) r += ",";
  r += "\"";
  append_json_escaped(&r, key);
  r += "\":" + json::number(value);
  return *this;
}

JsonReport& JsonReport::summary_fields(const std::string& prefix,
                                       const stats::Summary& s) {
  field(prefix + "_mean", s.mean);
  field(prefix + "_p50", s.p50);
  field(prefix + "_p90", s.p90);
  field(prefix + "_p99", s.p99);
  field(prefix + "_p999", s.p999);
  field(prefix + "_max", s.max);
  return *this;
}

JsonReport& JsonReport::run_fields(const Device::RunResult& run) {
  field("cycles", run.device_cycles);
  field("cycles_serial", run.device_cycles_serial);
  field("busiest_unit_cycles", run.busiest_unit_cycles);
  field("pipelined_bound", run.device_cycles_pipelined);
  field("host_ns", run.host_ns);
  return *this;
}

JsonReport& JsonReport::traffic_fields(const Device::RunResult& run,
                                       const ArchConfig& arch) {
  const Roofline roof = compute_roofline(run.aggregate, arch,
                                         run.device_cycles, run.cores_used);
  field("gm_bytes", roof.gm_bytes);
  field("mte_bytes", roof.mte_bytes);
  field("roofline", std::string(roof.klass()));
  return *this;
}

std::string JsonReport::to_json() const {
  std::string out = "{\"bench\":\"";
  append_json_escaped(&out, bench_);
  out += "\",\"rows\":[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    out += "{" + rows_[i] + "}";
    if (i + 1 < rows_.size()) out += ",";
    out += "\n";
  }
  out += "]}\n";
  return out;
}

void JsonReport::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  DV_CHECK(f.good()) << "cannot open bench JSON output file " << path;
  const std::string json = to_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  DV_CHECK(f.good()) << "failed writing bench JSON output file " << path;
  std::printf("\njson: wrote bench results to %s\n", path.c_str());
}

std::string json_arg(int argc, char** argv) {
  static constexpr char kFlag[] = "--json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + sizeof(kFlag) - 1;
    }
  }
  return "";
}

bool no_double_buffer_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-double-buffer") == 0) return true;
  }
  return false;
}

std::string metrics_arg(int argc, char** argv) {
  static constexpr char kFlag[] = "--metrics=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + sizeof(kFlag) - 1;
    }
  }
  return "";
}

std::string profile_arg(int argc, char** argv) {
  static constexpr char kFlag[] = "--profile=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + sizeof(kFlag) - 1;
    }
  }
  return "";
}

void enable_profiling(Device& dev) {
  for (int c = 0; c < dev.num_cores(); ++c) dev.core(c).trace().enable();
}

void write_profile(Device& dev, const std::string& path) {
  write_chrome_trace(path, dev);
  std::printf("\nprofile: wrote Chrome trace to %s (open in chrome://tracing "
              "or ui.perfetto.dev)\n", path.c_str());
}

void print_preamble(const std::string& what, const std::string& paper_ref) {
  std::printf("%s\n", std::string(72, '=').c_str());
  std::printf("%s\n", what.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf(
      "Metric: simulated AI-Core cycle counts (deterministic; the paper's\n"
      "hardware counters averaged 10 runs -- see EXPERIMENTS.md for the\n"
      "paper-vs-simulator comparison).\n");
  std::printf("%s\n", std::string(72, '=').c_str());
}

}  // namespace davinci::bench
