// Serving bench: batched vs sequential request handling on the
// InceptionV3 Figure-7 pooling layers (Table I's highlighted rows).
//
// For each shape, R single-image MaxPool requests are pushed through a
// serve::Session twice: once with batching disabled (every request
// launches alone -- the baseline a caller gets from run_pool in a loop)
// and once with the batcher coalescing same-geometry requests into
// multi-N launches. Requests arrive in two waves so the second wave
// exercises the plan cache. Outputs are compared bit-for-bit across the
// two modes.
//
// JSON outputs:
//   --json=<path>          combined rows (mode column, speedup, hit rate)
//   --json-seq=<path>      sequential totals only  } identical row keys,
//   --json-batched=<path>  batched totals only     } for davinci_prof --diff
//
// Knobs: --no-vm disables the session's instruction-stream VM and
// --in-flight=N sets its launch window (docs/ASYNC_VM.md). The gated
// "cycles" rows stay the per-launch sums either way; the VM cross-batch
// makespan rides along as the non-gated vm_makespan / vm_overlap_cycles.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "harness.h"
#include "nets/cnn_tables.h"
#include "serve/session.h"
#include "sim/metrics_registry.h"
#include "tensor/fractal.h"

using namespace davinci;

namespace {

std::string named_arg(int argc, char** argv, const char* prefix) {
  const std::size_t n = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, n) == 0) return argv[i] + n;
  }
  return "";
}

struct ModeResult {
  std::int64_t cycles_total = 0;
  std::int64_t launches = 0;
  double avg_batch = 0.0;
  double hit_rate = 0.0;
  std::int64_t host_ns = 0;
  std::int64_t vm_makespan = 0;
  std::int64_t vm_overlap_cycles = 0;
  stats::Summary latency;
  std::vector<TensorF16> outputs;
  Device::RunResult first_run;
};

ModeResult run_mode(const nets::PoolLayer& layer, bool batching, bool db,
                    int requests, bool vm, int in_flight) {
  serve::SessionOptions opts;
  opts.batching = batching;
  opts.double_buffer = db;
  opts.vm = vm;
  opts.vm_in_flight = in_flight;
  serve::Session session(serve::Cluster{}, opts);

  const std::int64_t c1 = c1_of(layer.c);
  std::vector<TensorF16> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  for (int r = 0; r < requests; ++r) {
    inputs.push_back(bench::make_input(1, c1, layer.h, layer.w,
                                       static_cast<std::uint64_t>(r + 1)));
  }

  kernels::PoolOp op;
  op.kind = kernels::PoolOpKind::kMaxFwd;
  op.window = layer.window;
  op.fwd = akg::PoolImpl::kIm2col;

  ModeResult res;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<kernels::PoolResult>> futures;
  // Two waves: pause the worker so each wave coalesces deterministically,
  // and the second wave's plan resolves from the cache.
  for (int wave = 0; wave < 2; ++wave) {
    session.pause();
    for (int r = wave * requests / 2;
         r < (wave + 1) * requests / 2; ++r) {
      kernels::PoolInputs in;
      in.in = &inputs[static_cast<std::size_t>(r)];
      futures.push_back(session.submit(op, in));
    }
    session.resume();
    session.drain();
  }
  for (std::size_t f = 0; f < futures.size(); ++f) {
    kernels::PoolResult r = futures[f].get();
    if (f == 0) res.first_run = r.run;
    res.outputs.push_back(std::move(r.out));
  }
  res.host_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  const serve::SessionStats s = session.stats();
  res.cycles_total = s.device_cycles_total;
  res.launches = s.launches;
  res.avg_batch = s.avg_batch;
  res.hit_rate = s.plan_cache.hit_rate();
  res.vm_makespan = s.vm.makespan;
  res.vm_overlap_cycles = s.vm.overlap_cycles;
  res.latency = s.latency;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_preamble(
      "Serving throughput: batched vs sequential sessions on the "
      "InceptionV3 pooling layers",
      "Table I / Figure 7a (IPDPSW 2021), served");
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  bool vm = true;
  int in_flight = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-vm") == 0) vm = false;
  }
  const std::string in_flight_arg = named_arg(argc, argv, "--in-flight=");
  if (!in_flight_arg.empty()) in_flight = std::stoi(in_flight_arg);
  const int kRequests = 8;

  const std::string json_path = bench::json_arg(argc, argv);
  const std::string json_seq = named_arg(argc, argv, "--json-seq=");
  const std::string json_batched = named_arg(argc, argv, "--json-batched=");
  const std::string metrics_path = bench::metrics_arg(argc, argv);

  bench::JsonReport report("serve");
  bench::JsonReport report_seq("serve_sequential");
  bench::JsonReport report_batched("serve_batched");
  MetricsRegistry registry;
  bench::Table table("Serving, " + std::to_string(kRequests) +
                         " requests per shape",
                     {"input (HWC)", "sequential", "batched", "speedup",
                      "launches", "avg batch", "plan hits", "verified"});

  bool all_ok = true;
  bool all_faster = true;
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const ModeResult seq =
        run_mode(layer, /*batching=*/false, db, kRequests, vm, in_flight);
    const ModeResult bat =
        run_mode(layer, /*batching=*/true, db, kRequests, vm, in_flight);

    bool ok = seq.outputs.size() == bat.outputs.size();
    for (std::size_t r = 0; ok && r < seq.outputs.size(); ++r) {
      ok = seq.outputs[r].size() == bat.outputs[r].size();
      for (std::int64_t i = 0; ok && i < seq.outputs[r].size(); ++i) {
        ok = seq.outputs[r].flat(i) == bat.outputs[r].flat(i);
      }
    }
    all_ok &= ok;
    all_faster &= bat.cycles_total < seq.cycles_total;

    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    char avg[16], hits[16];
    std::snprintf(avg, sizeof(avg), "%.1f", bat.avg_batch);
    std::snprintf(hits, sizeof(hits), "%.0f%%", bat.hit_rate * 100.0);
    table.add_row({shape, bench::fmt_int(seq.cycles_total),
                   bench::fmt_int(bat.cycles_total),
                   bench::fmt_ratio(static_cast<double>(seq.cycles_total) /
                                    static_cast<double>(bat.cycles_total)),
                   bench::fmt_int(bat.launches), avg, hits,
                   ok ? "bit-exact" : "MISMATCH"});

    const std::string name = std::string("inception_v3 ") + shape;
    for (const bool batched : {false, true}) {
      const ModeResult& m = batched ? bat : seq;
      // "cycles" keeps the per-launch sum so the strict batched-vs-
      // sequential gate is unchanged; the VM cross-batch view rides
      // along as non-gated keys.
      report.row()
          .field("name", name)
          .field("mode", std::string(batched ? "batched" : "sequential"))
          .field("requests", static_cast<std::int64_t>(kRequests))
          .field("cycles", m.cycles_total)
          .field("vm_makespan", m.vm_makespan)
          .field("vm_overlap_cycles", m.vm_overlap_cycles)
          .field("launches", m.launches)
          .field("host_ns", m.host_ns)
          .summary_fields("host_latency_us", m.latency);
    }
    report_seq.row()
        .field("name", name)
        .field("requests", static_cast<std::int64_t>(kRequests))
        .field("cycles", seq.cycles_total)
        .field("vm_makespan", seq.vm_makespan)
        .field("host_ns", seq.host_ns);
    report_batched.row()
        .field("name", name)
        .field("requests", static_cast<std::int64_t>(kRequests))
        .field("cycles", bat.cycles_total)
        .field("vm_makespan", bat.vm_makespan)
        .field("host_ns", bat.host_ns);
    registry.add(name + " batched", bat.first_run,
                 ArchConfig::ascend910());
  }

  // The batched session's serve stats (plan-cache hit rate et al.) land
  // in the metrics JSON through a fresh session over all three shapes.
  {
    serve::SessionOptions opts;
    opts.double_buffer = db;
    serve::Session session(serve::Cluster{}, opts);
    std::vector<TensorF16> inputs;
    std::vector<std::future<kernels::PoolResult>> futures;
    for (const auto& layer : nets::inception_v3_fig7_layers()) {
      inputs.push_back(
          bench::make_input(1, c1_of(layer.c), layer.h, layer.w, 7));
    }
    for (int round = 0; round < 2; ++round) {
      session.pause();
      std::size_t i = 0;
      for (const auto& layer : nets::inception_v3_fig7_layers()) {
        kernels::PoolOp op;
        op.kind = kernels::PoolOpKind::kMaxFwd;
        op.window = layer.window;
        op.fwd = akg::PoolImpl::kIm2col;
        kernels::PoolInputs in;
        in.in = &inputs[i++];
        futures.push_back(session.submit(op, in));
      }
      session.resume();
      session.drain();
    }
    for (auto& f : futures) f.get();
    session.add_metrics(registry);
  }

  table.print();
  std::printf("outputs %s across modes; batched %s than sequential on "
              "every shape\n",
              all_ok ? "bit-exact" : "MISMATCHED",
              all_faster ? "strictly faster" : "NOT faster");

  if (!json_path.empty()) report.write(json_path);
  if (!json_seq.empty()) report_seq.write(json_seq);
  if (!json_batched.empty()) report_batched.write(json_batched);
  if (!metrics_path.empty()) registry.write(metrics_path);
  return (all_ok && all_faster) ? 0 : 1;
}
