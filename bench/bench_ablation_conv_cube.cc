// Ablation A3 (ours): the Im2Col instruction at its original job --
// feeding convolution to the Cube Unit -- compared against building the
// same unrolled layout with regular vector instructions ("expansion") and
// staging it into L0A. Mirrors what Figure 8 measures for pooling, on the
// instruction's original substrate.
#include <cstdio>

#include "harness.h"
#include "kernels/conv2d.h"
#include "ref/conv_ref.h"

using namespace davinci;

int main() {
  bench::print_preamble(
      "Convolution on the Cube Unit: Im2Col-load vs vector expansion",
      "Ablation A3 (Sections II-A / III of the paper)");
  Device dev;
  bench::Table table("conv2d, Cout=32, K(3,3)",
                     {"input (HWC)", "stride", "Im2Col load", "expansion",
                      "benefit", "verified"});

  struct Case {
    std::int64_t c, h, s;
  };
  for (const Case& cs : {Case{16, 16, 1}, Case{16, 28, 1}, Case{32, 20, 1},
                         Case{16, 28, 2}, Case{32, 28, 2}}) {
    const Window2d w = Window2d::pool(3, cs.s);
    TensorF32 in_nchw(Shape{1, cs.c, cs.h, cs.h});
    in_nchw.fill_random_ints(11, -2, 2);
    TensorF32 weights(Shape{32, cs.c, 3, 3});
    weights.fill_random_ints(12, -2, 2);
    const TensorF16 in = nchw_to_nc1hwc0(in_nchw);

    auto fast = kernels::conv2d_cube(dev, in, weights, w, true);
    auto slow = kernels::conv2d_cube(dev, in, weights, w, false);
    bool ok = true;
    for (std::int64_t i = 0; i < fast.out.size(); ++i) {
      ok &= fast.out.flat(i) == slow.out.flat(i);
    }
    const TensorF32 want = ref::conv2d_nchw(in_nchw, weights, w);
    const TensorF32 got = nc1hwc0_to_nchw(fast.out, 32);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= got.flat(i) == Float16(want.flat(i)).to_float();
    }

    char shape[48], stride[16];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(cs.h), static_cast<long long>(cs.h),
                  static_cast<long long>(cs.c));
    std::snprintf(stride, sizeof(stride), "(%lld,%lld)",
                  static_cast<long long>(cs.s), static_cast<long long>(cs.s));
    table.add_row({shape, stride, bench::fmt_int(fast.cycles()),
                   bench::fmt_int(slow.cycles()),
                   bench::fmt_ratio(static_cast<double>(slow.cycles()) /
                                    static_cast<double>(fast.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
  }
  table.print();
  std::printf(
      "\nReading: transforming during the load (no temporaries, no extra\n"
      "staging) is why DaVinci made Im2Col an instruction -- the same\n"
      "property the pooling kernels exploit on the Vector Unit.\n");
  return 0;
}
