// Common harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure of the paper: it runs the relevant
// kernels on the simulated Ascend-910-like device and prints the cycle
// counts the paper plots. The simulator is deterministic, so a single run
// per configuration is exact (the paper averaged 10 hardware runs; here
// the variance is zero by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::bench {

// Random integer-valued NC1HWC0 input (values do not affect cycle counts;
// integers keep any verification exact).
TensorF16 make_input(std::int64_t n, std::int64_t c1, std::int64_t h,
                     std::int64_t w, std::uint64_t seed = 1);

// Simple fixed-width text table.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_int(std::int64_t v);
std::string fmt_ratio(double v);
// Host wall-clock, printed as microseconds with one decimal.
std::string fmt_ns(std::int64_t ns);

// Shared banner explaining the metric.
void print_preamble(const std::string& what, const std::string& paper_ref);

// --- Machine-readable results (the cross-PR perf trajectory) ---
// Benches append one flat JSON object per configuration and write
// {"bench": ..., "rows": [...]} to a file (BENCH_pipeline.json by
// convention; CI parses it). Rows always carry the simulated cycle
// numbers AND the host wall-clock of the run, so both the model and the
// simulator's own speed are trackable across PRs.
class JsonReport {
 public:
  explicit JsonReport(std::string bench);

  // Starts a new row; subsequent field() calls land on it.
  JsonReport& row();
  JsonReport& field(const std::string& key, const std::string& value);
  JsonReport& field(const std::string& key, std::int64_t value);
  JsonReport& field(const std::string& key, bool value);
  // Serialized via json::number (locale-proof decimal separator).
  JsonReport& field(const std::string& key, double value);
  // The shared distribution-summary fields: "<prefix>_mean" / "_p50" /
  // "_p90" / "_p99" / "_p999" / "_max" from a stats::Summary
  // (common/percentile.h) -- the same summary shape the serving session
  // reports, so bench rows and serve stats stay comparable.
  JsonReport& summary_fields(const std::string& prefix,
                             const stats::Summary& s);
  // The standard per-run fields: cycles (overlapped makespan),
  // cycles_serial, busiest_unit_cycles, pipelined_bound, host_ns.
  JsonReport& run_fields(const Device::RunResult& run);
  // Observability extras: GM/MTE traffic bytes and the roofline class
  // (docs/OBSERVABILITY.md), so the perf trajectory records *why* a row
  // moved, not just that it did.
  JsonReport& traffic_fields(const Device::RunResult& run,
                             const ArchConfig& arch);

  // Serializes the report; write() also prints where it went.
  std::string to_json() const;
  void write(const std::string& path) const;

 private:
  std::string bench_;
  std::vector<std::string> rows_;  // serialized "k":v pairs per row
};

// Returns the path of a --json=<path> argument, or "" when absent.
std::string json_arg(int argc, char** argv);

// Returns the path of a --metrics=<path> argument, or "" when absent.
// Benches that support it collect each run in a MetricsRegistry and write
// the full attribution/roofline JSON there (see sim/metrics_registry.h).
std::string metrics_arg(int argc, char** argv);

// True when --no-double-buffer was passed; benches then call
// Device::set_double_buffer(false) and report the serial schedule.
bool no_double_buffer_arg(int argc, char** argv);

// --- Profiling support (see docs/PROFILING.md) ---
// Benches that take (argc, argv) accept --profile=<out.json>: the device
// records every core's instruction timeline and the bench writes it as
// Chrome trace_event JSON on exit.

// Returns the path of a --profile=<path> argument, or "" when absent.
std::string profile_arg(int argc, char** argv);

// Enables the per-core instruction trace on every core of `dev`.
void enable_profiling(Device& dev);

// Writes dev's Chrome-trace JSON to `path` and prints where it went.
void write_profile(Device& dev, const std::string& path);

}  // namespace davinci::bench
