// Common harness for the paper-reproduction benches. Each bench binary
// regenerates one table or figure of the paper: it runs the relevant
// kernels on the simulated Ascend-910-like device and prints the cycle
// counts the paper plots. The simulator is deterministic, so a single run
// per configuration is exact (the paper averaged 10 hardware runs; here
// the variance is zero by construction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"
#include "tensor/fractal.h"
#include "tensor/pool_geometry.h"
#include "tensor/tensor.h"

namespace davinci::bench {

// Random integer-valued NC1HWC0 input (values do not affect cycle counts;
// integers keep any verification exact).
TensorF16 make_input(std::int64_t n, std::int64_t c1, std::int64_t h,
                     std::int64_t w, std::uint64_t seed = 1);

// Simple fixed-width text table.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_int(std::int64_t v);
std::string fmt_ratio(double v);

// Shared banner explaining the metric.
void print_preamble(const std::string& what, const std::string& paper_ref);

// --- Profiling support (see docs/PROFILING.md) ---
// Benches that take (argc, argv) accept --profile=<out.json>: the device
// records every core's instruction timeline and the bench writes it as
// Chrome trace_event JSON on exit.

// Returns the path of a --profile=<path> argument, or "" when absent.
std::string profile_arg(int argc, char** argv);

// Enables the per-core instruction trace on every core of `dev`.
void enable_profiling(Device& dev);

// Writes dev's Chrome-trace JSON to `path` and prints where it went.
void write_profile(Device& dev, const std::string& path);

}  // namespace davinci::bench
