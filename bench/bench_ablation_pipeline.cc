// Ablation A5 (ours): timing-model robustness. Since the pipe-overlap
// scheduler landed, `device_cycles` is a real overlapped makespan on the
// per-unit timelines (Vector+Scalar, MTE, SCU, Cube) and
// `device_cycles_serial` is the same instruction stream charged in order.
// This bench reports the paper's key comparisons under both models and
// shows the winners are the same -- i.e. the reproduction's conclusions
// do not rest on the timing model chosen. It also writes the
// machine-readable perf trajectory (BENCH_pipeline.json by default,
// --json=<path> to override) so CI can track overlapped vs serial cycles
// and host wall-clock across PRs.
#include <cstdio>
#include <string>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"
#include "sim/metrics_registry.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble(
      "Overlapped vs serial device time for the key comparisons",
      "Ablation A5 (this reproduction; see DESIGN.md section 5)");
  Device dev;
  dev.set_double_buffer(!bench::no_double_buffer_arg(argc, argv));
  std::string json_path = bench::json_arg(argc, argv);
  if (json_path.empty()) json_path = "BENCH_pipeline.json";
  bench::JsonReport report("ablation_pipeline");
  const std::string metrics_path = bench::metrics_arg(argc, argv);
  MetricsRegistry metrics;

  bench::Table table(
      "speedups under both timing models",
      {"experiment", "overlap base", "overlap fast", "overlap speedup",
       "serial speedup", "winner stable"});

  auto add = [&](const char* name, const Device::RunResult& base,
                 const Device::RunResult& fast) {
    const double s = static_cast<double>(base.device_cycles) /
                     static_cast<double>(fast.device_cycles);
    const double p = static_cast<double>(base.device_cycles_serial) /
                     static_cast<double>(fast.device_cycles_serial);
    table.add_row({name, bench::fmt_int(base.device_cycles),
                   bench::fmt_int(fast.device_cycles), bench::fmt_ratio(s),
                   bench::fmt_ratio(p),
                   (s > 1.0) == (p > 1.0) ? "yes" : "NO"});
    report.row()
        .field("experiment", std::string(name))
        .field("variant", std::string("base"))
        .run_fields(base)
        .traffic_fields(base, dev.arch());
    report.row()
        .field("experiment", std::string(name))
        .field("variant", std::string("fast"))
        .run_fields(fast)
        .traffic_fields(fast, dev.arch());
    if (!metrics_path.empty()) {
      metrics.add(std::string(name) + " [base]", base, dev.arch());
      metrics.add(std::string(name) + " [fast]", fast, dev.arch());
    }
  };

  const auto max_fwd = [&dev](const TensorF16& in, const Window2d& w,
                              akg::PoolImpl impl) {
    return kernels::run_pool(
        dev, {.kind = kernels::PoolOpKind::kMaxFwd, .window = w, .fwd = impl},
        {.in = &in});
  };
  {  // Figure 7a, middle input.
    const Window2d w = Window2d::pool(3, 2);
    const TensorF16 in = bench::make_input(1, 12, 71, 71);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    add("fwd 71x71x192 (fig 7a)", d.run, i.run);
  }
  {  // Figure 7c, middle input.
    const Window2d w = Window2d::pool(3, 2);
    const TensorF16 in = bench::make_input(1, 12, 71, 71);
    const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
    TensorF16 grad(Shape{1, 12, 35, 35, kC0});
    grad.fill_random_ints(5, 0, 5);
    kernels::PoolOp bop{.kind = kernels::PoolOpKind::kMaxBwd,
                        .window = w,
                        .merge = kernels::MergeImpl::kVadd};
    const kernels::PoolInputs bwd_in{
        .mask = &mask, .grad = &grad, .ih = 71, .iw = 71};
    auto v = kernels::run_pool(dev, bop, bwd_in);
    bop.merge = kernels::MergeImpl::kCol2im;
    auto c = kernels::run_pool(dev, bop, bwd_in);
    add("bwd 71x71x192 (fig 7c)", v.run, c.run);
  }
  {  // Figure 8b point: im2col must beat direct at stride 2.
    const Window2d w = Window2d::pool(3, 2);
    const TensorF16 in = bench::make_input(1, 1, 33, 33);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    add("fwd 33x33 s=2 (fig 8b)", d.run, i.run);
  }
  {  // Figure 8a crossover: direct must beat im2col at stride 1.
    const Window2d w = Window2d::pool(3, 1);
    const TensorF16 in = bench::make_input(1, 1, 27, 27);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    add("fwd 27x27 s=1 (fig 8a, direct wins)", i.run, d.run);
  }

  table.print();
  std::printf(
      "\nReading: under pipe overlap the accelerated kernels become\n"
      "MTE/SCU-bound and the baselines stay Vector-bound, so every\n"
      "ordering survives; the serial model is the conservative choice.\n");
  report.write(json_path);
  if (!metrics_path.empty()) metrics.write(metrics_path);
  return 0;
}
