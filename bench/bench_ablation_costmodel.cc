// Ablation A1 (ours): cost-model sensitivity. The reproduction's claims
// are *orderings* (who wins, where the stride-(1,1) crossover sits), so
// this bench sweeps the most influential cost-model constants and reports
// whether the Figure 7/8 conclusions survive. Absolute cycle counts move;
// the winners should not -- except at deliberately extreme settings, which
// the output flags.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "ref/pooling_ref.h"

using namespace davinci;

namespace {

struct Verdict {
  double fwd_speedup_71;   // Figure 7a middle input
  bool im2col_wins_s2;     // Figure 8b
  bool direct_wins_s1;     // Figure 8a crossover
  double bwd_speedup_71;   // Figure 7c middle input
};

Verdict evaluate(const CostModel& cost) {
  Device dev(ArchConfig::ascend910(), cost);
  Verdict v{};

  const auto max_fwd = [&dev](const TensorF16& in, const Window2d& w,
                              akg::PoolImpl impl) {
    return kernels::run_pool(
        dev, {.kind = kernels::PoolOpKind::kMaxFwd, .window = w, .fwd = impl},
        {.in = &in});
  };
  {
    const Window2d w = Window2d::pool(3, 2);
    const TensorF16 in = bench::make_input(1, 12, 71, 71);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    v.fwd_speedup_71 = static_cast<double>(d.cycles()) /
                       static_cast<double>(i.cycles());
    const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
    TensorF16 grad(Shape{1, 12, 35, 35, kC0});
    grad.fill_random_ints(3, 0, 5);
    kernels::PoolOp bop{.kind = kernels::PoolOpKind::kMaxBwd,
                        .window = w,
                        .merge = kernels::MergeImpl::kVadd};
    const kernels::PoolInputs bwd_in{
        .mask = &mask, .grad = &grad, .ih = 71, .iw = 71};
    auto bv = kernels::run_pool(dev, bop, bwd_in);
    bop.merge = kernels::MergeImpl::kCol2im;
    auto bc = kernels::run_pool(dev, bop, bwd_in);
    v.bwd_speedup_71 = static_cast<double>(bv.cycles()) /
                       static_cast<double>(bc.cycles());
  }
  {
    const TensorF16 in = bench::make_input(1, 1, 33, 33);
    const Window2d w = Window2d::pool(3, 2);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    v.im2col_wins_s2 = i.cycles() < d.cycles();
  }
  {
    const TensorF16 in = bench::make_input(1, 1, 27, 27);
    const Window2d w = Window2d::pool(3, 1);
    auto d = max_fwd(in, w, akg::PoolImpl::kDirect);
    auto i = max_fwd(in, w, akg::PoolImpl::kIm2col);
    v.direct_wins_s1 = d.cycles() < i.cycles();
  }
  return v;
}

void report(bench::Table& table, const char* what, const CostModel& cost) {
  const Verdict v = evaluate(cost);
  table.add_row({what, bench::fmt_ratio(v.fwd_speedup_71),
                 bench::fmt_ratio(v.bwd_speedup_71),
                 v.im2col_wins_s2 ? "im2col" : "direct",
                 v.direct_wins_s1 ? "direct" : "im2col"});
}

}  // namespace

int main() {
  bench::print_preamble(
      "Cost-model sensitivity of the reproduced conclusions",
      "Ablation A1 (this reproduction; see DESIGN.md section 5)");
  bench::Table table("Conclusion stability under cost-model perturbation",
                     {"cost model", "fwd speedup (71^2)", "bwd speedup (71^2)",
                      "winner s=2", "winner s=1"});

  report(table, "calibrated (default)", CostModel::calibrated());

  for (std::int64_t ovh : {1, 4, 8}) {
    CostModel c = CostModel::calibrated();
    c.vec_issue_overhead = ovh;
    char name[48];
    std::snprintf(name, sizeof(name), "vec_issue_overhead=%lld",
                  static_cast<long long>(ovh));
    report(table, name, c);
  }
  for (std::int64_t f : {3, 9, 12}) {
    CostModel c = CostModel::calibrated();
    c.scu_im2col_cycles_per_fractal = f;
    c.scu_col2im_cycles_per_fractal = f + 1;
    char name[48];
    std::snprintf(name, sizeof(name), "scu_cycles_per_fractal=%lld",
                  static_cast<long long>(f));
    report(table, name, c);
  }
  for (std::int64_t s : {1, 4, 8}) {
    CostModel c = CostModel::calibrated();
    c.scalar_loop_cycles = s;
    char name[48];
    std::snprintf(name, sizeof(name), "scalar_loop_cycles=%lld",
                  static_cast<long long>(s));
    report(table, name, c);
  }
  for (std::int64_t bw : {64, 256}) {
    CostModel c = CostModel::calibrated();
    c.mte_bytes_per_cycle = bw;
    char name[48];
    std::snprintf(name, sizeof(name), "mte_bytes_per_cycle=%lld",
                  static_cast<long long>(bw));
    report(table, name, c);
  }

  table.print();
  std::printf(
      "\nReading: the stride-2 winner (im2col) is stable everywhere; the\n"
      "stride-1 crossover flips only when the SCU is made implausibly fast\n"
      "(cheaper per element than the straight-line MTE) or vector issue\n"
      "overhead implausibly large -- i.e. the paper's conclusions do not\n"
      "hinge on fine cost-model tuning.\n");
  return 0;
}
