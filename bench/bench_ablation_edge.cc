// Ablation A6 (ours): the paper's other future-work direction --
// "evaluate the proposed approach in other architectures". Runs the
// Figure 7 comparisons on an Ascend-310-like edge configuration (2 AI
// Cores; "DaVinci edge chips also feature Im2Col instructions",
// Section VII). Edge devices run inference only, so the forward
// comparisons are the relevant ones; backward is included to show the
// conclusion is architecture-independent anyway.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main() {
  bench::print_preamble(
      "Figure 7 comparisons on an Ascend-310-like edge device (2 cores)",
      "Ablation A6 (Section VIII: 'other architectures'; Section VII: "
      "edge chips)");
  Device edge(ArchConfig::ascend310());
  Device dc(ArchConfig::ascend910());

  bench::Table table("edge vs datacenter device",
                     {"input (HWC)", "experiment", "edge speedup",
                      "910 speedup", "edge fast (cycles)"});

  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const Window2d w = layer.window;
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));

    {
      kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxFwd,
                         .window = w,
                         .fwd = akg::PoolImpl::kDirect};
      auto ed = kernels::run_pool(edge, op, {.in = &in});
      auto dd = kernels::run_pool(dc, op, {.in = &in});
      op.fwd = akg::PoolImpl::kIm2col;
      auto ei = kernels::run_pool(edge, op, {.in = &in});
      auto di = kernels::run_pool(dc, op, {.in = &in});
      table.add_row({shape, "forward",
                     bench::fmt_ratio(static_cast<double>(ed.cycles()) /
                                      static_cast<double>(ei.cycles())),
                     bench::fmt_ratio(static_cast<double>(dd.cycles()) /
                                      static_cast<double>(di.cycles())),
                     bench::fmt_int(ei.cycles())});
    }
    {
      const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
      TensorF16 grad(Shape{1, c1, w.out_h(layer.h), w.out_w(layer.w), kC0});
      grad.fill_random_ints(3, 0, 5);
      kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxBwd,
                         .window = w,
                         .merge = kernels::MergeImpl::kVadd};
      const kernels::PoolInputs bwd_in{
          .mask = &mask, .grad = &grad, .ih = layer.h, .iw = layer.w};
      auto ev = kernels::run_pool(edge, op, bwd_in);
      auto dv = kernels::run_pool(dc, op, bwd_in);
      op.merge = kernels::MergeImpl::kCol2im;
      auto ec = kernels::run_pool(edge, op, bwd_in);
      auto dcc = kernels::run_pool(dc, op, bwd_in);
      table.add_row({shape, "backward",
                     bench::fmt_ratio(static_cast<double>(ev.cycles()) /
                                      static_cast<double>(ec.cycles())),
                     bench::fmt_ratio(static_cast<double>(dv.cycles()) /
                                      static_cast<double>(dcc.cycles())),
                     bench::fmt_int(ec.cycles())});
    }
  }
  table.print();
  std::printf(
      "\nReading: per-core schedules are identical, so the speedups carry\n"
      "over to the edge part unchanged; only absolute device time differs\n"
      "(2 cores instead of up to C1 of 32 working in parallel).\n");
  return 0;
}
