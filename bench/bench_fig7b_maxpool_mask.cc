// Figure 7b: MaxPool forward *with Argmax-mask production* (the extra
// output training needs), standard vs Im2col-based, on the InceptionV3
// inputs of Figure 7.
#include <cstdio>

#include "harness.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/pooling_ref.h"

using namespace davinci;

int main(int argc, char** argv) {
  bench::print_preamble(
      "MaxPool forward + Argmax mask: standard vs Im2col-based",
      "Figure 7b (IPDPSW 2021)");
  Device dev;
  const bool db = !bench::no_double_buffer_arg(argc, argv);
  dev.set_double_buffer(db);
  const std::string json_path = bench::json_arg(argc, argv);
  bench::JsonReport report("fig7b_maxpool_mask");
  bench::Table table("Figure 7b -- cycle count by input size",
                     {"input (HWC)", "Maxpool+mask", "Im2col+mask", "speedup",
                      "verified"});
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const std::int64_t c1 = c1_of(layer.c);
    const TensorF16 in = bench::make_input(1, c1, layer.h, layer.w);
    kernels::PoolOp op{.kind = kernels::PoolOpKind::kMaxMaskFwd,
                       .window = layer.window,
                       .fwd = akg::PoolImpl::kDirect};
    auto direct = kernels::run_pool(dev, op, {.in = &in});
    op.fwd = akg::PoolImpl::kIm2col;
    auto im2col = kernels::run_pool(dev, op, {.in = &in});
    const TensorF16 want = ref::maxpool_fwd(in, layer.window);
    bool ok = true;
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ok &= direct.out.flat(i) == want.flat(i);
      ok &= im2col.out.flat(i) == want.flat(i);
    }
    // Masks from the two implementations must agree on valid patches.
    const std::int64_t valid = layer.window.out_h(layer.h) *
                               layer.window.out_w(layer.w);
    const std::int64_t ppg = direct.mask.shape()[4];
    for (std::int64_t s = 0; s < c1 * 9; ++s) {
      for (std::int64_t p = 0; p < valid; ++p) {
        for (std::int64_t c = 0; c < kC0; ++c) {
          ok &= direct.mask.flat((s * ppg + p) * kC0 + c) ==
                im2col.mask.flat((s * ppg + p) * kC0 + c);
        }
      }
    }
    char shape[48];
    std::snprintf(shape, sizeof(shape), "%lld,%lld,%lld",
                  static_cast<long long>(layer.h),
                  static_cast<long long>(layer.w),
                  static_cast<long long>(layer.c));
    table.add_row({shape, bench::fmt_int(direct.cycles()),
                   bench::fmt_int(im2col.cycles()),
                   bench::fmt_ratio(static_cast<double>(direct.cycles()) /
                                    static_cast<double>(im2col.cycles())),
                   ok ? "bit-exact" : "MISMATCH"});
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("direct"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(direct.run)
        .traffic_fields(direct.run, dev.arch());
    report.row()
        .field("shape", std::string(shape))
        .field("impl", std::string("im2col"))
        .field("double_buffer", db)
        .field("verified", ok)
        .run_fields(im2col.run)
        .traffic_fields(im2col.run, dev.arch());
  }
  table.print();
  std::printf(
      "\nPaper reports a 5x speedup at the largest input (Section VI-A).\n");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
