// Tests for the repeat-mode-0 Im2Col load (the Figure 5 iteration order),
// validated against the mode-1 load by permutation and against Figure 5's
// literal example.
#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/check.h"
#include "sim/scratch.h"
#include "sim/scu.h"
#include "sim/stats.h"
#include "test_util.h"

namespace davinci {
namespace {

class Im2colMode0Test : public ::testing::Test {
 protected:
  Im2colMode0Test()
      : ub_(BufferKind::kUnified, 4 * 1024 * 1024),
        l1_(BufferKind::kL1, 4 * 1024 * 1024),
        scu_(arch_, cost_, &stats_) {}

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_, l1_;
  Scu scu_;
};

TEST_F(Im2colMode0Test, Figure5FractalOrder) {
  // Figure 5: 8x8 input, K(2,2), S(2,2) -> 16 patches, 4 fractals
  // "concatenated side by side", one per (xk, yk) in row-major order.
  TensorF16 in(Shape{1, 1, 8, 8, kC0});
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        in.at(std::int64_t{0}, std::int64_t{0}, y, x, c) =
            Float16(static_cast<float>(y * 8 + x));
      }
    }
  }
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 8;
  args.iw = 8;

  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load_mode0(dst, src, args);

  // Fractal f holds kernel position (f / 2, f % 2) of all 16 patches.
  for (std::int64_t f = 0; f < 4; ++f) {
    const std::int64_t xk = f / 2, yk = f % 2;
    for (std::int64_t p = 0; p < 16; ++p) {
      const std::int64_t y = (p / 4) * 2 + xk, x = (p % 4) * 2 + yk;
      EXPECT_EQ(dst.at((f * 16 + p) * kC0).to_float(),
                static_cast<float>(y * 8 + x))
          << "fractal " << f << " patch " << p;
    }
  }
  // One mode-0 instruction covers all four (xk, yk) steps of the single
  // patch group ("the input in Figure 5 can be fully loaded by issuing a
  // single Im2Col ... with repeat mode 0 to repeat four times").
  EXPECT_EQ(stats_.im2col_instrs, 1);
  EXPECT_EQ(stats_.im2col_fractals, 4);
}

TEST_F(Im2colMode0Test, IsAPermutationOfMode1) {
  // Both modes load the same fractals; mode 0 orders them (group, k),
  // mode 1 orders them (k, group).
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 11, 9, 77);
  const Window2d w = Window2d::pool(3, 2);
  Im2colArgs args;
  args.window = w;
  args.ih = 11;
  args.iw = 9;

  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto d0 = ub_.alloc<Float16>(args.output_elems());
  auto d1 = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load_mode0(d0, src, args);
  scu_.im2col_load(d1, src, args);

  const std::int64_t groups = args.patch_fractals();
  const std::int64_t kk = w.kh * w.kw;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t k = 0; k < kk; ++k) {
      for (std::int64_t e = 0; e < kFractalElems; ++e) {
        ASSERT_TRUE(d0.at((g * kk + k) * kFractalElems + e) ==
                    d1.at((k * groups + g) * kFractalElems + e))
            << "group " << g << " k " << k << " elem " << e;
      }
    }
  }
}

TEST_F(Im2colMode0Test, PaddingAndTailsLoadZeros) {
  TensorF16 in(Shape{1, 1, 5, 5, kC0});
  in.fill(Float16(3.0f));
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pl = 1;
  Im2colArgs args;
  args.window = w;
  args.ih = 5;
  args.iw = 5;
  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load_mode0(dst, src, args);
  // Patch 0, kernel position (0, 0) reads virtual (-1, -1) -> zero.
  EXPECT_TRUE(dst.at(0).is_zero());
  // Tail rows (patches beyond patches()) are zero in every fractal.
  const std::int64_t patches = args.patches();
  const std::int64_t kk = w.kh * w.kw;
  for (std::int64_t k = 0; k < kk; ++k) {
    for (std::int64_t p = patches; p < args.padded_patches(); ++p) {
      const std::int64_t g = p / kFractalRows, r = p % kFractalRows;
      EXPECT_TRUE(dst.at(((g * kk + k) * kFractalRows + r) * kC0).is_zero());
    }
  }
}

TEST_F(Im2colMode0Test, InstructionAccountingManyGroups) {
  // 33x33 K3 S2 -> 256 patches = 16 groups; 9 kernel positions fit one
  // mode-0 repeat, so one instruction per group.
  TensorF16 in(Shape{1, 1, 33, 33, kC0});
  Im2colArgs args;
  args.window = Window2d::pool(3, 2);
  args.ih = 33;
  args.iw = 33;
  auto src = l1_.alloc<Float16>(in.size());
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load_mode0(dst, src, args);
  EXPECT_EQ(stats_.im2col_instrs, 16);
  EXPECT_EQ(stats_.im2col_fractals, 16 * 9);
}

TEST_F(Im2colMode0Test, RejectsWrongBuffers) {
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 4;
  args.iw = 4;
  auto ub_src = ub_.alloc<Float16>(args.input_elems());
  auto ub_dst = ub_.alloc<Float16>(args.output_elems());
  EXPECT_THROW(scu_.im2col_load_mode0(ub_dst, ub_src, args), Error);
}

}  // namespace
}  // namespace davinci
