// serve::Cluster -- the placement router must be invisible in the
// numerics: every launch sharded over N (data parallel) or C1 (model
// parallel) produces bit-identical tensors to a lone single-device run,
// with VM streams on or off and with faults injected on one device. The
// redistribution accounting must match the analytic slice volume
// exactly, and the Session's placement hints must route (and fail)
// per-request.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "serve/session.h"
#include "serve/trace.h"
#include "sim/fault.h"
#include "tensor/fractal.h"

namespace davinci::serve {
namespace {

using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;
using kernels::PoolResult;

void expect_same_tensor(const TensorF16& a, const TensorF16& b) {
  ASSERT_EQ(a.shape().to_string(), b.shape().to_string());
  if (a.shape().rank() == 0) return;  // absent tensor: no data to compare
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.flat(i) == b.flat(i)) << "element " << i;
  }
}

void expect_same_result(const PoolResult& got, const PoolResult& want) {
  expect_same_tensor(got.out, want.out);
  expect_same_tensor(got.mask, want.mask);
  expect_same_tensor(got.grad_in, want.grad_in);
}

// A mixed trace covering every kind the cluster must shard: forward max /
// avg with different lowerings, the mask variant, both backward merges,
// and the global head. N and C1 are deliberately not divisible by the
// device counts used below, so uneven shards are always exercised.
constexpr const char* kMixedTrace =
    "op=maxpool n=5 c1=3 ih=21 iw=21 k=3 s=2 impl=im2col x=3\n"
    "op=avgpool n=2 c1=5 ih=21 iw=21 k=3 s=2 impl=direct\n"
    "op=maxpool_mask n=3 c1=2 ih=19 iw=19 k=3 s=2 impl=im2col\n"
    "op=maxpool_bwd n=4 c1=3 ih=19 iw=19 k=3 s=2 merge=col2im x=2\n"
    "op=avgpool_bwd n=2 c1=4 ih=19 iw=19 k=2 s=2 merge=vadd\n"
    "op=global_avgpool n=6 c1=4 ih=8 iw=8\n";

// Replays `entries` through a Session owning `cluster` (all requests in
// one paused admission window, so coalescing is deterministic) and
// returns each request's result in submission order.
std::vector<PoolResult> replay(Cluster cluster,
                               const std::vector<TraceEntry>& entries,
                               SessionOptions opts,
                               SessionStats* stats_out = nullptr) {
  Session session(std::move(cluster), opts);
  std::vector<MaterializedRequest> requests;
  std::vector<const TraceEntry*> lines;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      requests.push_back(
          materialize(entries[i], i * 1000 + static_cast<std::uint64_t>(r)));
      lines.push_back(&entries[i]);
    }
  }
  session.pause();
  std::vector<std::future<PoolResult>> futures;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    futures.push_back(session.submit(lines[r]->op, requests[r].inputs()));
  }
  session.resume();
  session.drain();
  std::vector<PoolResult> results;
  for (auto& f : futures) results.push_back(f.get());
  if (stats_out != nullptr) *stats_out = session.stats();
  return results;
}

TEST(Cluster, OneDeviceIsIdentity) {
  Cluster cluster;
  const TensorF16 in = [&] {
    TensorF16 t(Shape{2, 3, 21, 21, kC0});
    t.fill_random_ints(1);
    return t;
  }();
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  const Cluster::Launch lr = cluster.run_pool(op, PoolInputs{.in = &in});

  Device lone;
  lone.set_double_buffer(cluster.device(0).double_buffer());
  const PoolResult want = kernels::run_pool(lone, op, PoolInputs{.in = &in});
  expect_same_result(lr.result, want);
  // Identity extends to the cycle model: no slicing, no link charges.
  EXPECT_EQ(lr.result.run.device_cycles, want.run.device_cycles);
  EXPECT_EQ(lr.shards, 1);
  EXPECT_EQ(lr.redistribution_bytes, 0);
  EXPECT_EQ(lr.redistribution_cycles, 0);
  const Cluster::Stats s = cluster.stats();
  EXPECT_EQ(s.launches, 1);
  EXPECT_EQ(s.sharded_launches, 0);
  EXPECT_EQ(s.redistribution_bytes, 0);
  EXPECT_EQ(s.link_busy_cycles, 0);
}

TEST(Cluster, ShardedLaunchesBitIdenticalBothPlacements) {
  const TensorF16 in = [&] {
    TensorF16 t(Shape{5, 3, 21, 21, kC0});
    t.fill_random_ints(2);
    return t;
  }();
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  Device lone;
  lone.set_double_buffer(true);
  const PoolResult want = kernels::run_pool(lone, op, PoolInputs{.in = &in});

  for (const Placement p : {Placement::kData, Placement::kModel}) {
    Cluster cluster(ClusterOptions{.devices = 3, .placement = p});
    const Cluster::Launch lr = cluster.run_pool(op, PoolInputs{.in = &in});
    SCOPED_TRACE(to_string(p));
    expect_same_result(lr.result, want);
    EXPECT_EQ(lr.shards, 3);
    EXPECT_GT(lr.redistribution_bytes, 0);
    const Cluster::Stats s = cluster.stats();
    EXPECT_EQ(s.sharded_launches, 1);
    // Work lands on every device: blocks sum to the full N x C1 grid.
    std::int64_t blocks = 0;
    for (const Cluster::DeviceStats& d : s.devices) {
      EXPECT_GT(d.blocks, 0);
      blocks += d.blocks;
    }
    EXPECT_EQ(blocks, 5 * 3);
  }
}

TEST(Cluster, RedistributionBytesMatchAnalyticSliceVolume) {
  // Model parallel over C1: shard d's transfer volume is its C1-slice of
  // the input crossing 0->d plus its slice of the output crossing d->0,
  // both fp16 NC1HWC0 volumes. Device 0's chunk is local: never counted.
  const std::int64_t n = 2, c1 = 5, ih = 21, iw = 21;
  const int devices = 3;
  const TensorF16 in = [&] {
    TensorF16 t(Shape{n, c1, ih, iw, kC0});
    t.fill_random_ints(3);
    return t;
  }();
  const Window2d w = Window2d::pool(3, 2);
  const PoolOp op{.kind = PoolOpKind::kMaxFwd, .window = w,
                  .fwd = akg::PoolImpl::kIm2col};
  Cluster cluster(
      ClusterOptions{.devices = devices, .placement = Placement::kModel});
  (void)cluster.run_pool(op, PoolInputs{.in = &in});

  const std::int64_t oh = w.out_h(ih), ow = w.out_w(iw);
  const std::int64_t base = c1 / devices, rem = c1 % devices;
  std::int64_t expected = 0;
  std::vector<std::int64_t> in_bytes(devices, 0), out_bytes(devices, 0);
  for (int d = 1; d < devices; ++d) {
    const std::int64_t len = base + (d < rem ? 1 : 0);
    in_bytes[d] = n * len * ih * iw * kC0 * 2;
    out_bytes[d] = n * len * oh * ow * kC0 * 2;
    expected += in_bytes[d] + out_bytes[d];
  }
  const Cluster::Stats s = cluster.stats();
  EXPECT_EQ(s.redistribution_bytes, expected);
  // Per-link attribution: input slices ride 0->d, output slices d->0.
  for (int d = 1; d < devices; ++d) {
    EXPECT_EQ(s.links[static_cast<std::size_t>(d)].bytes, in_bytes[d])
        << "link 0->" << d;
    EXPECT_EQ(s.links[static_cast<std::size_t>(d * devices)].bytes,
              out_bytes[d])
        << "link " << d << "->0";
  }
}

TEST(Cluster, PinRunsWholeLaunchOnOneDevice) {
  const TensorF16 in = [&] {
    TensorF16 t(Shape{4, 2, 21, 21, kC0});
    t.fill_random_ints(4);
    return t;
  }();
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  Cluster cluster(ClusterOptions{.devices = 3});
  const Cluster::Launch lr = cluster.run_pool(op, PoolInputs{.in = &in}, 2);
  EXPECT_EQ(lr.shards, 1);
  EXPECT_GT(lr.redistribution_bytes, 0);  // whole launch crosses 0->2
  const Cluster::Stats s = cluster.stats();
  EXPECT_EQ(s.devices[2].launches, 1);
  EXPECT_EQ(s.devices[0].launches, 0);
  EXPECT_EQ(s.devices[1].launches, 0);

  Device lone;
  lone.set_double_buffer(true);
  expect_same_result(lr.result,
                     kernels::run_pool(lone, op, PoolInputs{.in = &in}));

  EXPECT_THROW((void)cluster.run_pool(op, PoolInputs{.in = &in}, 3), Error);
}

TEST(ClusterServe, TraceReplayBitIdenticalAcrossDeviceCounts) {
  const auto entries = parse_trace(kMixedTrace);
  SessionOptions opts;
  const std::vector<PoolResult> want = replay(Cluster{}, entries, opts);
  for (const Placement p : {Placement::kData, Placement::kModel}) {
    for (const bool vm : {true, false}) {
      SCOPED_TRACE(std::string(to_string(p)) + (vm ? " vm" : " no-vm"));
      SessionOptions o = opts;
      o.vm = vm;
      SessionStats stats;
      const std::vector<PoolResult> got = replay(
          Cluster(ClusterOptions{.devices = 3, .placement = p}), entries, o,
          &stats);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        expect_same_result(got[i], want[i]);
      }
      EXPECT_EQ(stats.devices, 3);
      EXPECT_EQ(stats.placement, p);
      EXPECT_GT(stats.cluster.sharded_launches, 0);
      EXPECT_GT(stats.cluster.redistribution_bytes, 0);
      // The roofline never reports less than the busiest link.
      EXPECT_GE(stats.cluster_makespan, stats.cluster.link_busy_cycles);
      if (vm) {
        ASSERT_EQ(stats.vm_makespan_per_device.size(), 3u);
        for (const std::int64_t m : stats.vm_makespan_per_device) {
          EXPECT_GE(stats.cluster_makespan, m);
        }
      }
    }
  }
}

TEST(ClusterServe, FaultsOnOneDeviceAbsorbedBitIdentically) {
  const auto entries = parse_trace(kMixedTrace);
  SessionOptions opts;
  const std::vector<PoolResult> want = replay(Cluster{}, entries, opts);

  // Detected transient faults on device 1 only: its shards retry and
  // absorb, devices 0/2 run clean, and every output still matches the
  // fault-free single-device run bit for bit.
  Cluster cluster(ClusterOptions{.devices = 3});
  ResilienceOptions res;
  res.plan = FaultPlan::parse("vec_fault:2e-3", 7);
  res.max_retries = 8;
  cluster.device(1).set_resilience(res);
  SessionStats stats;
  const std::vector<PoolResult> got =
      replay(std::move(cluster), entries, opts, &stats);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_same_result(got[i], want[i]);
  }
  EXPECT_EQ(stats.completed, static_cast<std::int64_t>(want.size()));
  EXPECT_EQ(stats.failed, 0);
  // The injected stream actually fired (and was absorbed per shard).
  EXPECT_GT(stats.faults.faults_detected, 0);
  EXPECT_GT(stats.faults.retries, 0);
}

TEST(ClusterServe, ShardHintPinsAndOutOfRangeFails) {
  Cluster cluster(ClusterOptions{.devices = 3});
  Session session(std::move(cluster), SessionOptions{});
  const TensorF16 in = [&] {
    TensorF16 t(Shape{2, 2, 21, 21, kC0});
    t.fill_random_ints(5);
    return t;
  }();
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};

  auto pinned = session.submit(op, PoolInputs{.in = &in},
                               SubmitOptions{.shard = 1});
  auto bad = session.submit(op, PoolInputs{.in = &in},
                            SubmitOptions{.shard = 3});
  session.drain();
  EXPECT_GT(pinned.get().out.size(), 0);
  EXPECT_THROW(bad.get(), Error);

  const SessionStats s = session.stats();
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.failed, 1);
  EXPECT_EQ(s.cluster.devices[1].launches, 1);
  EXPECT_EQ(s.cluster.devices[0].launches, 0);
}

TEST(ClusterServe, DifferentlyPinnedRequestsNeverCoalesce) {
  // Same geometry, different pins: the worker must partition the take by
  // hint, so each pin launches alone on its device.
  Cluster cluster(ClusterOptions{.devices = 2});
  Session session(std::move(cluster), SessionOptions{});
  const TensorF16 in = [&] {
    TensorF16 t(Shape{1, 2, 21, 21, kC0});
    t.fill_random_ints(6);
    return t;
  }();
  const PoolOp op{.kind = PoolOpKind::kMaxFwd,
                  .window = Window2d::pool(3, 2),
                  .fwd = akg::PoolImpl::kIm2col};
  session.pause();
  auto f0 = session.submit(op, PoolInputs{.in = &in},
                           SubmitOptions{.shard = 0});
  auto f1 = session.submit(op, PoolInputs{.in = &in},
                           SubmitOptions{.shard = 1});
  session.resume();
  session.drain();
  expect_same_tensor(f0.get().out, f1.get().out);
  const SessionStats s = session.stats();
  EXPECT_EQ(s.launches, 2);  // one per pin, no cross-pin batch
  EXPECT_EQ(s.cluster.devices[0].launches, 1);
  EXPECT_EQ(s.cluster.devices[1].launches, 1);
}

TEST(ClusterServe, DeprecatedShimsStillServe) {
  // The lint-guarded constructor shims must stay functional for
  // out-of-tree callers until removal: both resolve to a one-device
  // cluster and produce the primary constructor's exact outputs.
  const auto entries = parse_trace("op=maxpool n=2 c1=2 ih=21 iw=21 k=3 "
                                   "s=2 impl=im2col x=2\n");
  SessionOptions opts;
  const std::vector<PoolResult> want = replay(Cluster{}, entries, opts);

  Session via_default{SessionOptions{}};
  Session via_arch(ArchConfig::ascend910(), SessionOptions{});
  for (Session* session : {&via_default, &via_arch}) {
    std::vector<MaterializedRequest> reqs;
    std::vector<std::future<PoolResult>> futures;
    std::size_t r = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (int k = 0; k < entries[i].repeat; ++k) {
        reqs.push_back(
            materialize(entries[i], i * 1000 + static_cast<std::uint64_t>(k)));
      }
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (int k = 0; k < entries[i].repeat; ++k, ++r) {
        futures.push_back(session->submit(entries[i].op, reqs[r].inputs()));
      }
    }
    session->drain();
    ASSERT_EQ(futures.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_same_result(futures[i].get(), want[i]);
    }
    EXPECT_EQ(session->cluster().num_devices(), 1);
  }
}

}  // namespace
}  // namespace davinci::serve
