// Tests for the reference pooling implementations: hand-worked examples
// from the paper's figures plus fp16/fp32 cross-validation.
#include "ref/pooling_ref.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace davinci {
namespace {

// Figure 3 of the paper (single channel, 1-D-style example): two
// overlapping (2, 2) patches with stride (2, 1) over a (2, 3) input
//   1 3 5
//   6 2 4
// MaxPool output: patch0 max = 6 (position (1,0)), patch1 max = 5
// (position (0,2)).
TEST(RefPooling, Figure3Forward) {
  TensorF16 in(Shape{1, 1, 2, 3, kC0});
  const float vals[2][3] = {{1, 3, 5}, {6, 2, 4}};
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        in.at(std::int64_t{0}, std::int64_t{0}, y, x, c) =
            Float16(vals[y][x]);
      }
    }
  }
  Window2d w;
  w.kh = 2;
  w.kw = 2;
  w.sh = 2;
  w.sw = 1;
  const TensorF16 out = ref::maxpool_fwd(in, w);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 2, kC0}));
  EXPECT_EQ(out.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
                   std::int64_t{0}, std::int64_t{0})
                .to_float(),
            6.0f);
  EXPECT_EQ(out.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
                   std::int64_t{1}, std::int64_t{0})
                .to_float(),
            5.0f);
}

// Figure 3 backward: gradients [0.1, 0.2] flow only to the maxima: the
// positions of 6 and 5. (We use 1.0/2.0 for fp16 exactness.)
TEST(RefPooling, Figure3Backward) {
  TensorF16 in(Shape{1, 1, 2, 3, kC0});
  const float vals[2][3] = {{1, 3, 5}, {6, 2, 4}};
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        in.at(std::int64_t{0}, std::int64_t{0}, y, x, c) =
            Float16(vals[y][x]);
      }
    }
  }
  Window2d w;
  w.kh = 2;
  w.kw = 2;
  w.sh = 2;
  w.sw = 1;
  TensorF16 grad(Shape{1, 1, 1, 2, kC0});
  for (std::int64_t c = 0; c < kC0; ++c) {
    grad.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
            std::int64_t{0}, c) = Float16(1.0f);
    grad.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
            std::int64_t{1}, c) = Float16(2.0f);
  }
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  const TensorF16 gin = ref::maxpool_bwd(mask, grad, w, 2, 3);
  const float want[2][3] = {{0, 0, 2}, {1, 0, 0}};
  for (std::int64_t y = 0; y < 2; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      EXPECT_EQ(gin.at(std::int64_t{0}, std::int64_t{0}, y, x,
                       std::int64_t{0})
                    .to_float(),
                want[y][x])
          << y << "," << x;
    }
  }
}

TEST(RefPooling, MaxFwdCrossValidatesAgainstNchw) {
  TensorF32 nchw(Shape{2, 20, 9, 11});
  nchw.fill_random_ints(31);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  const TensorF16 got = ref::maxpool_fwd(frac, w);
  const TensorF32 want = ref::maxpool_fwd_nchw(nchw, w);
  const TensorF32 got32 = nc1hwc0_to_nchw(got, 20);
  testutil::expect_close_f32(got32, want, 0.0f, "maxpool fwd");
}

TEST(RefPooling, AvgFwdCrossValidatesAgainstNchw) {
  TensorF32 nchw(Shape{1, 16, 8, 8});
  nchw.fill_random_ints(32, -4, 4);
  const Window2d w = Window2d::pool(2, 2);  // 1/4 is exact in fp16
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  const TensorF32 got = nc1hwc0_to_nchw(ref::avgpool_fwd(frac, w), 16);
  const TensorF32 want = ref::avgpool_fwd_nchw(nchw, w);
  testutil::expect_close_f32(got, want, 0.0f, "avgpool fwd");
}

TEST(RefPooling, MaxBwdCrossValidatesAgainstNchw) {
  TensorF32 nchw(Shape{1, 16, 9, 9});
  nchw.fill_random_ints(33);
  const Window2d w = Window2d::pool(3, 2);
  TensorF32 grad32(Shape{1, 16, 4, 4});
  grad32.fill_random_ints(34, 0, 4);
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  const TensorF16 grad = nchw_to_nc1hwc0(grad32);
  const TensorF16 mask = ref::maxpool_argmax_mask(frac, w);
  const TensorF32 got = nc1hwc0_to_nchw(ref::maxpool_bwd(mask, grad, w, 9, 9), 16);
  const TensorF32 want = ref::maxpool_bwd_nchw(nchw, grad32, w);
  testutil::expect_close_f32(got, want, 0.0f, "maxpool bwd");
}

TEST(RefPooling, AvgBwdCrossValidatesAgainstNchw) {
  const Window2d w = Window2d::pool(2, 2);
  TensorF32 grad32(Shape{1, 16, 4, 4});
  grad32.fill_random_ints(35, -4, 4);
  const TensorF16 grad = nchw_to_nc1hwc0(grad32);
  const TensorF32 got = nc1hwc0_to_nchw(ref::avgpool_bwd(grad, w, 8, 8), 16);
  const TensorF32 want = ref::avgpool_bwd_nchw(grad32, w, 8, 8);
  testutil::expect_close_f32(got, want, 0.0f, "avgpool bwd");
}

TEST(RefPooling, ArgmaxMaskMarksAllTies) {
  // A constant patch ties everywhere: the eq-mask marks every position
  // ("comparing each patch of the input with its maximum value").
  TensorF16 in(Shape{1, 1, 2, 2, kC0});
  in.fill(Float16(3.0f));
  const Window2d w = Window2d::pool(2, 2);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  EXPECT_EQ(mask.shape(), Shape({1, 1, 2, 2, 16, kC0}));
  for (std::int64_t kh = 0; kh < 2; ++kh) {
    for (std::int64_t kw = 0; kw < 2; ++kw) {
      EXPECT_EQ(mask.at(std::int64_t{0}, std::int64_t{0}, kh, kw,
                        std::int64_t{0}, std::int64_t{0})
                    .to_float(),
                1.0f);
    }
  }
}

TEST(RefPooling, ArgmaxMaskSingleMaximum) {
  TensorF16 in(Shape{1, 1, 2, 2, kC0});
  in.fill(Float16(1.0f));
  for (std::int64_t c = 0; c < kC0; ++c) {
    in.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{1},
          std::int64_t{0}, c) = Float16(9.0f);
  }
  const Window2d w = Window2d::pool(2, 2);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  // Only kernel position (1, 0) is marked.
  EXPECT_EQ(mask.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{1},
                    std::int64_t{0}, std::int64_t{0}, std::int64_t{0})
                .to_float(),
            1.0f);
  EXPECT_EQ(mask.at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
                    std::int64_t{0}, std::int64_t{0}, std::int64_t{0})
                .to_float(),
            0.0f);
}

TEST(RefPooling, PaddingActsAsZeroInMax) {
  // An all-negative input: with zero padding the padded patches' max is 0,
  // matching what the Im2Col instruction loads.
  TensorF16 in(Shape{1, 1, 3, 3, kC0});
  in.fill(Float16(-5.0f));
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  const TensorF16 out = ref::maxpool_fwd(in, w);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2, kC0}));
  // Every patch includes at least one padded position -> max is 0.
  for (std::int64_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out.flat(i).to_float(), 0.0f);
  }
}

TEST(RefPooling, BackwardDropsPaddingGradient) {
  Window2d w = Window2d::pool(2, 2);
  w.pt = 1;
  w.pl = 1;
  // 3x3 input, padded to 4x4 -> 2x2 output. Distinct positive values per
  // position so each patch has a unique maximum (no tie duplication).
  TensorF16 in(Shape{1, 1, 3, 3, kC0});
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t x = 0; x < 3; ++x) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        in.at(std::int64_t{0}, std::int64_t{0}, y, x, c) =
            Float16(static_cast<float>(1 + y * 3 + x));
      }
    }
  }
  TensorF16 grad(Shape{1, 1, 2, 2, kC0});
  grad.fill(Float16(1.0f));
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  const TensorF16 gin = ref::maxpool_bwd(mask, grad, w, 3, 3);
  EXPECT_EQ(gin.shape(), Shape({1, 1, 3, 3, kC0}));
  // All values positive: padding (zeros) never wins a patch max, so the
  // whole gradient lands inside the image.
  float total = 0;
  for (std::int64_t i = 0; i < gin.size(); ++i) {
    total += gin.flat(i).to_float();
  }
  EXPECT_EQ(total, 4.0f * kC0);  // 4 patches x 1.0 gradient per lane
}

}  // namespace
}  // namespace davinci
