// Tests for the Cube-Unit convolution (the Im2Col instruction's original
// substrate), validated against the reference direct convolution.
#include "kernels/conv2d.h"

#include <gtest/gtest.h>

#include "common/align.h"
#include "ref/conv_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

// Rounds fp32 weights through fp16 (the Cube consumes fp16 operands), so
// the reference convolution sees the same values the kernel does.
TensorF32 round_f16(const TensorF32& t) {
  TensorF32 out(t.shape());
  for (std::int64_t i = 0; i < t.size(); ++i) {
    out.flat(i) = Float16(t.flat(i)).to_float();
  }
  return out;
}

// Runs conv2d_cube and the NCHW reference on the same fp16-rounded data;
// integer-valued data keeps the comparison exact up to the final fp16
// store.
void check_conv(std::int64_t c, std::int64_t cout, std::int64_t h,
                std::int64_t w_, const Window2d& w, std::uint64_t seed,
                bool use_im2col_instruction = true) {
  TensorF32 in_nchw(Shape{1, c, h, w_});
  in_nchw.fill_random_ints(seed, -3, 3);
  TensorF32 weights(Shape{cout, c, w.kh, w.kw});
  weights.fill_random_ints(seed + 1, -2, 2);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto got = kernels::conv2d_cube(dev, in, weights, w,
                                  use_im2col_instruction);
  ASSERT_EQ(got.out.shape(),
            Shape({1, ceil_div(cout, kC0), w.out_h(h), w.out_w(w_), kC0}));

  const TensorF32 want =
      ref::conv2d_nchw(round_f16(in_nchw), round_f16(weights), w);
  const TensorF32 got32 = nc1hwc0_to_nchw(got.out, cout);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    // The kernel's result passes through one fp16 rounding on the store.
    ASSERT_EQ(got32.flat(i), Float16(want.flat(i)).to_float())
        << "element " << i;
  }
}

TEST(Conv2d, TinySingleChannelBlock) {
  check_conv(16, 16, 6, 6, Window2d::pool(3, 1), 501);
}

TEST(Conv2d, PartialChannelBlocks) {
  // C = 20 -> C1 = 2 with padding lanes; Cout = 10 -> one padded N block.
  check_conv(20, 10, 6, 6, Window2d::pool(3, 1), 502);
}

TEST(Conv2d, Strided) {
  check_conv(16, 16, 9, 9, Window2d::pool(3, 2), 503);
}

TEST(Conv2d, KernelLargerThanStride) {
  Window2d w;
  w.kh = 2;
  w.kw = 3;
  w.sh = 1;
  w.sw = 2;
  check_conv(16, 16, 5, 8, w, 504);
}

TEST(Conv2d, WithPadding) {
  Window2d w = Window2d::pool(3, 1);
  w.pt = w.pb = 1;
  check_conv(16, 16, 5, 5, w, 505);
}

TEST(Conv2d, MultipleOutputBlocks) {
  check_conv(16, 32, 6, 6, Window2d::pool(3, 1), 506);
}

TEST(Conv2d, TiledOverPatchRows) {
  // Enough patches to force several H-tiles against L0A.
  check_conv(16, 16, 40, 40, Window2d::pool(3, 1), 507);
}

TEST(Conv2d, ExpansionPathMatches) {
  check_conv(16, 16, 8, 8, Window2d::pool(3, 2), 508,
             /*use_im2col_instruction=*/false);
}

TEST(Conv2d, Im2colInstructionBeatsExpansion) {
  // The instruction transforms in flight; the expansion pays vector
  // copies plus a UB -> L1 -> L0A staging round trip.
  TensorF32 in_nchw(Shape{1, 16, 20, 20});
  in_nchw.fill_random_ints(509, -2, 2);
  TensorF32 weights(Shape{16, 16, 3, 3});
  weights.fill_random_ints(510, -2, 2);
  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  const Window2d w = Window2d::pool(3, 1);
  auto fast = kernels::conv2d_cube(dev, in, weights, w, true);
  auto slow = kernels::conv2d_cube(dev, in, weights, w, false);
  EXPECT_LT(fast.cycles(), slow.cycles());
}

TEST(Conv2d, WeightPackingLayout) {
  // Weight w[f][c][kh][kw] must land in fractal (kb, nb) at row c%16,
  // column f%16, with kb = (c/16 * Kh + kh) * Kw + kw and nb = f/16.
  const Window2d w = Window2d::pool(2, 1);
  TensorF32 weights(Shape{18, 17, 2, 2});
  weights.fill(0.0f);
  weights.at(std::int64_t{17}, std::int64_t{16}, std::int64_t{1},
             std::int64_t{0}) = 3.0f;
  const TensorF16 packed = kernels::pack_conv_weights(weights, w, 2);
  const std::int64_t k16 = 2 * 2 * 2, n16 = 2;
  ASSERT_EQ(packed.size(), k16 * n16 * kFractalElems);
  const std::int64_t kb = (1 * 2 + 1) * 2 + 0;  // c1=1, kh=1, kw=0
  const std::int64_t nb = 1;
  const std::int64_t idx =
      (kb * n16 + nb) * kFractalElems + 0 * kC0 + 1;  // row c%16=0, col 1
  EXPECT_EQ(packed.flat(idx).to_float(), 3.0f);
  // Everything else is zero.
  float total = 0;
  for (std::int64_t i = 0; i < packed.size(); ++i) {
    total += packed.flat(i).to_float();
  }
  EXPECT_EQ(total, 3.0f);
}

TEST(Conv2d, RejectsOversizedWeightSet) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 8, 6, 6, 511);
  TensorF32 weights(Shape{512, 128, 3, 3});  // 72 * 32 fractals >> L0B
  EXPECT_THROW(kernels::conv2d_cube(dev, in, weights, Window2d::pool(3, 1)),
               Error);
}

}  // namespace
}  // namespace davinci
