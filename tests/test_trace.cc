// Tests for the per-core instruction trace.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "sim/ai_core.h"
#include "sim/scu.h"
#include "test_util.h"

namespace davinci {
namespace {

TEST(Trace, DisabledByDefaultAndRecordsNothing) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  auto a = core.ub().alloc<Float16>(128);
  core.vdup_flat(a, Float16(), 128);
  EXPECT_TRUE(core.trace().events().empty());
}

TEST(Trace, RecordsVectorInstructions) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  core.trace().enable();
  auto a = core.ub().alloc<Float16>(256);
  auto b = core.ub().alloc<Float16>(256);
  core.vdup_flat(a, Float16(1.0f), 256);
  core.vbin_flat(VecOp::kMax, b, a, a, 256);
  ASSERT_EQ(core.trace().events().size(), 2u);
  EXPECT_EQ(core.trace().events()[0].kind, TraceKind::kVector);
  EXPECT_NE(core.trace().events()[0].detail.find("vector_dup"),
            std::string::npos);
  EXPECT_NE(core.trace().events()[1].detail.find("vmax"), std::string::npos);
  EXPECT_NE(core.trace().events()[1].detail.find("repeat=2"),
            std::string::npos);
  EXPECT_GT(core.trace().events()[1].cycles, 0);
}

TEST(Trace, RecordsMteScuAndBarriers) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  core.trace().enable();
  TensorF16 host(Shape{4, 4, kC0});
  host.fill_random_ints(1);
  auto l1 = core.l1().alloc<Float16>(host.size());
  core.mte().copy(l1, gm_span(host.data(), host.size()), host.size());
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 4;
  args.iw = 4;
  auto cols = core.ub().alloc<Float16>(args.output_elems());
  core.scu().im2col_load(cols, l1, args);
  core.pipe_barrier();

  EXPECT_EQ(core.trace().count(TraceKind::kMte), 1);
  EXPECT_EQ(core.trace().count(TraceKind::kIm2col), 1);
  EXPECT_EQ(core.trace().count(TraceKind::kBarrier), 1);
  const std::string text = core.trace().to_string();
  EXPECT_NE(text.find("GM->L1"), std::string::npos);
  EXPECT_NE(text.find("mode1"), std::string::npos);
}

TEST(Trace, ExplainsTheListing1VsListing2Difference) {
  // The trace makes the paper's instruction-count argument literal: the
  // direct kernel's stream is dominated by 16-lane vmax issues, the
  // im2col kernel's by a handful of full-mask issues plus the SCU load.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 5);
  const Window2d w = Window2d::pool(3, 2);

  dev.core(0).trace().enable();
  kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  std::int64_t direct_16lane = 0;
  for (const auto& e : dev.core(0).trace().events()) {
    if (e.kind == TraceKind::kVector &&
        e.detail.find("vmax") != std::string::npos &&
        e.detail.find("lanes=16") != std::string::npos) {
      ++direct_16lane;
    }
  }
  // Oh*Ow*Kh = 4*4*3 = 48 sixteen-lane vmax issues (Listing 1).
  EXPECT_EQ(direct_16lane, 48);

  dev.core(0).trace().clear();
  kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);
  std::int64_t im2col_vmax = 0, im2col_loads = 0;
  for (const auto& e : dev.core(0).trace().events()) {
    if (e.kind == TraceKind::kVector &&
        e.detail.find("vmax") != std::string::npos) {
      ++im2col_vmax;
    }
    im2col_loads += e.kind == TraceKind::kIm2col;
  }
  // Kh*Kw = 9 full-mask vmax issues (Listing 2) and one Im2Col load.
  EXPECT_EQ(im2col_vmax, 9);
  EXPECT_EQ(im2col_loads, 1);
  dev.core(0).trace().disable();
}

TEST(Trace, ClearResets) {
  Trace t;
  t.enable();
  t.record(TraceKind::kVector, "x", 1);
  t.clear();
  EXPECT_TRUE(t.events().empty());
  EXPECT_FALSE(t.truncated());
}

TEST(Trace, BoundedRecording) {
  Trace t;
  t.enable();
  for (std::size_t i = 0; i < Trace::kMaxEvents + 10; ++i) {
    t.record(TraceKind::kVector, "x", 1);
  }
  EXPECT_EQ(t.events().size(), Trace::kMaxEvents);
  EXPECT_TRUE(t.truncated());
  EXPECT_NE(t.to_string(4).find("truncated"), std::string::npos);
}

TEST(Trace, ToStringLimitsLines) {
  Trace t;
  t.enable();
  for (int i = 0; i < 10; ++i) t.record(TraceKind::kVector, "ev", 1);
  const std::string s = t.to_string(3);
  EXPECT_NE(s.find("7 more"), std::string::npos);
}

}  // namespace
}  // namespace davinci
