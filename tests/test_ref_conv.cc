// Tests for the reference convolution: the Figure 1 equivalence between
// direct convolution and im2col + matrix multiplication.
#include "ref/conv_ref.h"

#include <gtest/gtest.h>

#include "ref/im2col_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

TEST(RefConv, Im2colMatrixShapes) {
  // Figure 1: In (C, Ih, Iw) -> OutIn (Oh*Ow, C*Kh*Kw).
  TensorF32 in(Shape{1, 3, 6, 6});
  const Window2d w = Window2d::pool(2, 2);
  const TensorF32 m = ref::im2col_matrix(in, w);
  EXPECT_EQ(m.shape(), Shape({9, 12}));
}

TEST(RefConv, Figure2OverlapDuplication) {
  // Figure 2: a (3, 5) single-channel input, K(3,3) S(2,2)... the figure
  // shows two overlapping patches sharing elements {3, 8, 13} (the middle
  // column). Verify the duplication in the im2col matrix.
  TensorF32 in(Shape{1, 1, 3, 5});
  float v = 1;
  for (std::int64_t i = 0; i < in.size(); ++i) in.flat(i) = v++;
  Window2d w;
  w.kh = 3;
  w.kw = 3;
  w.sh = 2;
  w.sw = 2;
  const TensorF32 m = ref::im2col_matrix(in, w);
  EXPECT_EQ(m.shape(), Shape({2, 9}));
  // Patch 0 columns {2, 5, 8} == patch 1 columns {0, 3, 6}: the shared
  // elements 3, 8, 13.
  EXPECT_EQ(m.at(std::int64_t{0}, std::int64_t{2}), 3.0f);
  EXPECT_EQ(m.at(std::int64_t{1}, std::int64_t{0}), 3.0f);
  EXPECT_EQ(m.at(std::int64_t{0}, std::int64_t{5}), 8.0f);
  EXPECT_EQ(m.at(std::int64_t{1}, std::int64_t{3}), 8.0f);
  EXPECT_EQ(m.at(std::int64_t{0}, std::int64_t{8}), 13.0f);
  EXPECT_EQ(m.at(std::int64_t{1}, std::int64_t{6}), 13.0f);
}

TEST(RefConv, DirectEqualsIm2colMatmul) {
  TensorF32 in(Shape{1, 5, 9, 9});
  in.fill_random_ints(51, -3, 3);
  TensorF32 ker(Shape{4, 5, 3, 3});
  ker.fill_random_ints(52, -2, 2);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF32 a = ref::conv2d_nchw(in, ker, w);
  const TensorF32 b = ref::conv2d_im2col_matmul(in, ker, w);
  // Integer data: sums are exact in fp32 regardless of order.
  testutil::expect_close_f32(a, b, 0.0f, "conv equivalence");
}

TEST(RefConv, DirectEqualsIm2colMatmulWithPadding) {
  TensorF32 in(Shape{1, 2, 5, 5});
  in.fill_random_ints(53, -3, 3);
  TensorF32 ker(Shape{3, 2, 3, 3});
  ker.fill_random_ints(54, -2, 2);
  Window2d w = Window2d::pool(3, 1);
  w.pt = w.pb = w.pl = w.pr = 1;
  const TensorF32 a = ref::conv2d_nchw(in, ker, w);
  EXPECT_EQ(a.shape(), Shape({1, 3, 5, 5}));
  const TensorF32 b = ref::conv2d_im2col_matmul(in, ker, w);
  testutil::expect_close_f32(a, b, 0.0f, "padded conv equivalence");
}

TEST(RefConv, KnownTinyConvolution) {
  // 1x1x2x2 input, one 2x2 kernel of ones -> the sum of the input.
  TensorF32 in(Shape{1, 1, 2, 2});
  in.flat(0) = 1;
  in.flat(1) = 2;
  in.flat(2) = 3;
  in.flat(3) = 4;
  TensorF32 ker(Shape{1, 1, 2, 2});
  ker.fill(1.0f);
  const TensorF32 out = ref::conv2d_nchw(in, ker, Window2d::pool(2, 1));
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 1}));
  EXPECT_EQ(out.flat(0), 10.0f);
}

}  // namespace
}  // namespace davinci
