// Tests for the cycle-statistics ledger.
#include "sim/stats.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(CycleStats, TotalIsSumOfPipes) {
  CycleStats s;
  s.vector_cycles = 10;
  s.scalar_cycles = 5;
  s.mte_cycles = 7;
  s.scu_cycles = 3;
  s.cube_cycles = 2;
  s.barrier_cycles = 1;
  s.launch_cycles = 4;
  EXPECT_EQ(s.total_cycles(), 32);
}

TEST(CycleStats, LaneUtilization) {
  CycleStats s;
  EXPECT_EQ(s.lane_utilization(), 0.0);  // no repeats yet
  s.vector_repeats = 10;
  s.vector_active_lanes = 10 * 16;
  EXPECT_NEAR(s.lane_utilization(), 0.125, 1e-12);
  s.vector_active_lanes = 10 * 128;
  EXPECT_NEAR(s.lane_utilization(), 1.0, 1e-12);
}

TEST(CycleStats, MergeAccumulatesEverything) {
  CycleStats a, b;
  a.vector_cycles = 1;
  a.vector_instrs = 2;
  a.im2col_fractals = 3;
  b.vector_cycles = 10;
  b.vector_instrs = 20;
  b.im2col_fractals = 30;
  b.col2im_instrs = 5;
  b.mte_bytes = 100;
  a += b;
  EXPECT_EQ(a.vector_cycles, 11);
  EXPECT_EQ(a.vector_instrs, 22);
  EXPECT_EQ(a.im2col_fractals, 33);
  EXPECT_EQ(a.col2im_instrs, 5);
  EXPECT_EQ(a.mte_bytes, 100);
}

TEST(CycleStats, SummaryMentionsKeyFields) {
  CycleStats s;
  s.vector_cycles = 42;
  s.vector_instrs = 7;
  const std::string text = s.summary();
  EXPECT_NE(text.find("cycles=42"), std::string::npos);
  EXPECT_NE(text.find("vinstr=7"), std::string::npos);
  EXPECT_NE(text.find("lane_util"), std::string::npos);
}

}  // namespace
}  // namespace davinci
