// Tests for the cycle-statistics ledger.
#include "sim/stats.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(CycleStats, TotalIsSumOfPipes) {
  CycleStats s;
  s.vector_cycles = 10;
  s.scalar_cycles = 5;
  s.mte_cycles = 7;
  s.scu_cycles = 3;
  s.cube_cycles = 2;
  s.barrier_cycles = 1;
  s.launch_cycles = 4;
  EXPECT_EQ(s.total_cycles(), 32);
}

TEST(CycleStats, LaneUtilization) {
  CycleStats s;
  EXPECT_EQ(s.lane_utilization(), 0.0);  // no repeats yet
  s.vector_repeats = 10;
  s.vector_active_lanes = 10 * 16;
  EXPECT_NEAR(s.lane_utilization(), 0.125, 1e-12);
  s.vector_active_lanes = 10 * 128;
  EXPECT_NEAR(s.lane_utilization(), 1.0, 1e-12);
}

TEST(CycleStats, MergeAccumulatesEverything) {
  CycleStats a, b;
  a.vector_cycles = 1;
  a.vector_instrs = 2;
  a.im2col_fractals = 3;
  b.vector_cycles = 10;
  b.vector_instrs = 20;
  b.im2col_fractals = 30;
  b.col2im_instrs = 5;
  b.mte_bytes = 100;
  a += b;
  EXPECT_EQ(a.vector_cycles, 11);
  EXPECT_EQ(a.vector_instrs, 22);
  EXPECT_EQ(a.im2col_fractals, 33);
  EXPECT_EQ(a.col2im_instrs, 5);
  EXPECT_EQ(a.mte_bytes, 100);
}

TEST(UnitOccupancy, RatiosDefinedAndMergeable) {
  UnitOccupancy u;
  EXPECT_EQ(u.occupancy(), 0.0);  // idle unit, no division by zero
  EXPECT_EQ(u.saturation(), 0.0);
  u.instrs = 4;
  u.slots_used = 64;
  u.slots_capacity = 128;
  u.saturated_instrs = 1;
  EXPECT_NEAR(u.occupancy(), 0.5, 1e-12);
  EXPECT_NEAR(u.saturation(), 0.25, 1e-12);
  UnitOccupancy v = u;
  v += u;
  EXPECT_EQ(v.instrs, 8);
  EXPECT_EQ(v.slots_used, 128);
  EXPECT_NEAR(v.occupancy(), 0.5, 1e-12);  // ratios survive merging
}

TEST(Profile, CountVecInstrTracksLanesSaturationAndHistogram) {
  Profile p;
  p.count_vec_instr(16, 128, 10);  // direct pooling: one C0 group
  p.count_vec_instr(128, 128, 2);  // im2col pooling: full mask
  EXPECT_EQ(p.vec.instrs, 2);
  EXPECT_EQ(p.vec.slots_used, 16 * 10 + 128 * 2);
  EXPECT_EQ(p.vec.slots_capacity, 128 * 12);
  EXPECT_EQ(p.vec.saturated_instrs, 1);
  EXPECT_EQ(p.vec_lane_hist[0], 1);  // 16 lanes -> first bucket
  EXPECT_EQ(p.vec_lane_hist[7], 1);  // 128 lanes -> saturated bucket
  EXPECT_NEAR(p.vec_lane_utilization(),
              static_cast<double>(16 * 10 + 128 * 2) / (128.0 * 12), 1e-12);
}

TEST(Profile, MergeAccumulatesAllUnits) {
  Profile a, b;
  a.count_vec_instr(128, 128, 1);
  b.count_vec_instr(16, 128, 1);
  b.im2col.instrs = 2;
  b.im2col.slots_used = 255;
  b.im2col.slots_capacity = 510;
  b.mte.instrs = 1;
  b.mte.slots_used = 10;
  b.mte.slots_capacity = 20;
  a += b;
  EXPECT_EQ(a.vec.instrs, 2);
  EXPECT_EQ(a.vec_lane_hist[0] + a.vec_lane_hist[7], 2);
  EXPECT_NEAR(a.im2col.occupancy(), 0.5, 1e-12);
  EXPECT_NEAR(a.mte.occupancy(), 0.5, 1e-12);
  const std::string text = a.summary();
  EXPECT_NE(text.find("vec="), std::string::npos);
  EXPECT_NE(text.find("im2col=50%"), std::string::npos);
  EXPECT_NE(text.find("mte=50%"), std::string::npos);
}

TEST(CycleStats, SummaryMentionsKeyFields) {
  CycleStats s;
  s.vector_cycles = 42;
  s.vector_instrs = 7;
  const std::string text = s.summary();
  EXPECT_NE(text.find("cycles=42"), std::string::npos);
  EXPECT_NE(text.find("vinstr=7"), std::string::npos);
  EXPECT_NE(text.find("lane_util"), std::string::npos);
}

}  // namespace
}  // namespace davinci
