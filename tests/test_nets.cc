// Tests for the Table I network tables.
#include "nets/cnn_tables.h"

#include <gtest/gtest.h>

namespace davinci::nets {
namespace {

TEST(CnnTables, Table1RowCount) {
  // 4 + 4 + 1 + 4 rows as printed in the paper.
  EXPECT_EQ(table1_layers().size(), 13u);
}

TEST(CnnTables, InceptionRowsMatchPaper) {
  const auto layers = table1_layers();
  int idx = 0;
  const std::int64_t want[4][3] = {
      {147, 147, 64}, {71, 71, 192}, {35, 35, 288}, {17, 17, 768}};
  for (const auto& l : layers) {
    if (l.network != "InceptionV3") continue;
    EXPECT_EQ(l.h, want[idx][0]);
    EXPECT_EQ(l.w, want[idx][1]);
    EXPECT_EQ(l.c, want[idx][2]);
    EXPECT_EQ(l.window.kh, 3);
    EXPECT_EQ(l.window.sh, 2);
    ++idx;
  }
  EXPECT_EQ(idx, 4);
}

TEST(CnnTables, VGGUsesKernel2Stride2) {
  for (const auto& l : table1_layers()) {
    if (l.network == "VGG16") {
      EXPECT_EQ(l.window.kh, 2);
      EXPECT_EQ(l.window.kw, 2);
      EXPECT_EQ(l.window.sh, 2);
      EXPECT_EQ(l.window.sw, 2);
    } else {
      EXPECT_EQ(l.window.kh, 3);
      EXPECT_EQ(l.window.sh, 2);
    }
  }
}

TEST(CnnTables, Fig7LayersAreTheHighlightedThree) {
  const auto layers = inception_v3_fig7_layers();
  ASSERT_EQ(layers.size(), 3u);
  EXPECT_EQ(layers[0].h, 147);
  EXPECT_EQ(layers[0].c, 64);
  EXPECT_EQ(layers[1].h, 71);
  EXPECT_EQ(layers[1].c, 192);
  EXPECT_EQ(layers[2].h, 35);
  EXPECT_EQ(layers[2].c, 288);
}

TEST(CnnTables, AllLayersValidWithoutPadding) {
  // "No padding is used in them" -- every configuration must satisfy
  // Equation (1) without padding.
  for (const auto& l : table1_layers()) {
    EXPECT_NO_THROW({
      l.window.validate();
      const auto oh = l.window.out_h(l.h);
      const auto ow = l.window.out_w(l.w);
      EXPECT_GT(oh, 0);
      EXPECT_GT(ow, 0);
    }) << l.network << " input " << l.index;
    EXPECT_FALSE(l.window.has_padding());
  }
}

TEST(CnnTables, ResnetHasOnePoolLayer) {
  int count = 0;
  for (const auto& l : table1_layers()) {
    count += l.network == "Resnet50";
  }
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace davinci::nets
