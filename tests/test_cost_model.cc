// Tests for the cycle-cost model formulas and architecture constants.
#include "arch/cost_model.h"

#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "common/align.h"

namespace davinci {
namespace {

TEST(CostModel, VectorInstrFormula) {
  CostModel c;
  EXPECT_EQ(c.vector_instr(1), c.vec_issue_overhead + 1);
  EXPECT_EQ(c.vector_instr(255), c.vec_issue_overhead + 255);
  // One repeat iteration costs one cycle regardless of active lanes --
  // the mask-saturation argument of the paper depends on this.
  EXPECT_EQ(c.vec_cycles_per_repeat, 1);
}

TEST(CostModel, MteFormula) {
  CostModel c;
  EXPECT_EQ(c.mte_copy(0, 1), c.mte_startup_cycles + c.mte_burst_cycles);
  EXPECT_EQ(c.mte_copy(c.mte_bytes_per_cycle, 1),
            c.mte_startup_cycles + 1 + c.mte_burst_cycles);
  EXPECT_EQ(c.mte_copy(c.mte_bytes_per_cycle + 1, 1),
            c.mte_startup_cycles + 2 + c.mte_burst_cycles);
  // Strided copies pay per burst.
  EXPECT_EQ(c.mte_copy(1024, 8) - c.mte_copy(1024, 1),
            7 * c.mte_burst_cycles);
}

TEST(CostModel, ScuFormulas) {
  CostModel c;
  EXPECT_EQ(c.im2col(2, 100),
            2 * c.scu_issue_overhead + 100 * c.scu_im2col_cycles_per_fractal);
  EXPECT_EQ(c.col2im(2, 100),
            2 * c.scu_issue_overhead + 100 * c.scu_col2im_cycles_per_fractal);
  // Col2Im does a load + add + store round trip per fractal, so it cannot
  // be cheaper than Im2Col.
  EXPECT_GE(c.scu_col2im_cycles_per_fractal, c.scu_im2col_cycles_per_fractal);
}

TEST(CostModel, ScuSlowerThanStraightLineMte) {
  // The SCU gathers strided patch data; if it were faster per element
  // than the straight-line MTE, the stride-(1,1) crossover of Figure 8a
  // would disappear. Guard the calibration.
  CostModel c;
  const double scu_elems_per_cycle =
      256.0 / static_cast<double>(c.scu_im2col_cycles_per_fractal);
  const double mte_elems_per_cycle =
      static_cast<double>(c.mte_bytes_per_cycle) / 2.0;
  EXPECT_LT(scu_elems_per_cycle, mte_elems_per_cycle);
}

TEST(CostModel, CubeFormula) {
  CostModel c;
  EXPECT_EQ(c.cube_mmad(27), c.cube_issue_overhead + 27);
}

TEST(ArchConfig, Ascend910Constants) {
  const ArchConfig a = ArchConfig::ascend910();
  EXPECT_EQ(a.num_cores, 32);           // "an Ascend 910 chip, which
                                        //  contains 32 AI Cores"
  EXPECT_EQ(a.vector_lanes, 128);       // 128-bit mask register
  EXPECT_EQ(a.max_repeat, 255);
  EXPECT_EQ(a.ub_bytes, 256 * 1024);
  EXPECT_EQ(a.l1_bytes, 1024 * 1024);
}

TEST(Align, Helpers) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(round_up(10, 16), 16);
  EXPECT_EQ(round_up(16, 16), 16);
  EXPECT_EQ(round_down(17, 16), 16);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

}  // namespace
}  // namespace davinci
