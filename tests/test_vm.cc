// The async instruction-stream VM (sim/vm/, docs/ASYNC_VM.md).
//
// Unit level: VmStream placement must respect every dependency class --
// (core, pipe) track exclusivity, the bounded in-flight window, and
// RAW/WAR/WAW buffer hazards -- while the per-stream cycle buckets keep
// the attribution invariant busy + wait + flag + idle == makespan *
// tracks across launch boundaries.
//
// Integration level: a serve::Session replaying the CI smoke workload
// must (a) produce bit-identical outputs with the VM on and off, (b)
// schedule a cross-batch makespan strictly below the sum of per-batch
// makespans (the inter-batch pipelining the PR exists for), and (c)
// replay deterministically -- identical issue logs, launch counts and
// cycle totals run to run, which the CI gate diffs at zero tolerance.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "serve/session.h"
#include "serve/trace.h"
#include "sim/vm/stream.h"

namespace davinci::vm {
namespace {

// A single-core launch whose MTE-in runs [0, head) and Vector runs
// [head, head + tail): the canonical load-then-compute shape whose tail
// a successor's head can hide under.
VmLaunch two_stage_launch(std::int64_t head, std::int64_t tail,
                          int core = 0) {
  VmLaunch l;
  l.label = "two-stage";
  CoreWork cw;
  cw.core = core;
  cw.makespan = head + tail;
  PipeWork& in = cw.pipes[static_cast<int>(Pipe::kMteIn)];
  in.busy = head;
  in.first_busy = 0;
  in.last_busy = head;
  PipeWork& vec = cw.pipes[static_cast<int>(Pipe::kVector)];
  vec.busy = tail;
  vec.first_busy = head;
  vec.last_busy = head + tail;
  l.cores.push_back(cw);
  l.makespan = head + tail;
  return l;
}

std::int64_t bucket_sum(const VmStream::Stats& s) {
  std::int64_t total = 0, tracks = 0;
  for (const auto& ps : s.streams) {
    total += ps.busy + ps.wait + ps.flag + ps.idle;
    tracks += ps.tracks;
  }
  return tracks > 0 ? total / tracks : 0;  // exact when invariant holds
}

TEST(VmStream, BackToBackLaunchesOverlapByTheirSlack) {
  VmStream stream;
  EXPECT_EQ(stream.enqueue(two_stage_launch(50, 50)), 0);
  // Launch 2's MTE-in head must wait for launch 1's MTE-in (track
  // exclusivity, floor 50) and its Vector tail for launch 1's Vector
  // (floor 100 - 50 = 50): the rigid shift is 50, not 100.
  EXPECT_EQ(stream.enqueue(two_stage_launch(50, 50)), 50);

  const VmStream::Stats s = stream.stats();
  EXPECT_EQ(s.launches, 2);
  EXPECT_EQ(s.serial_sum, 200);
  EXPECT_EQ(s.makespan, 150);
  EXPECT_EQ(s.overlap_cycles, 50);
  EXPECT_EQ(s.window_stalls, 0);
  EXPECT_EQ(s.hazard_stalls, 0);
}

TEST(VmStream, DisjointCoresOverlapCompletely) {
  VmStream stream;
  EXPECT_EQ(stream.enqueue(two_stage_launch(10, 90, /*core=*/0)), 0);
  EXPECT_EQ(stream.enqueue(two_stage_launch(10, 90, /*core=*/1)), 0);
  EXPECT_EQ(stream.stats().makespan, 100);
  EXPECT_EQ(stream.stats().overlap_cycles, 100);
}

TEST(VmStream, InFlightWindowOfOneSerializes) {
  VmStream stream(VmStreamOptions{.in_flight = 1});
  EXPECT_EQ(stream.enqueue(two_stage_launch(50, 50)), 0);
  // Window floor: launch k waits for launch k-1's completion even
  // though the tracks alone would admit it at 50.
  EXPECT_EQ(stream.enqueue(two_stage_launch(50, 50)), 100);
  const VmStream::Stats s = stream.stats();
  EXPECT_EQ(s.makespan, 200);
  EXPECT_EQ(s.overlap_cycles, 0);
  EXPECT_GE(s.window_stalls, 1);
}

TEST(VmStream, WiderWindowRestoresTheOverlap) {
  for (const int w : {2, 3, 8}) {
    VmStream stream(VmStreamOptions{.in_flight = w});
    for (int i = 0; i < 4; ++i) stream.enqueue(two_stage_launch(50, 50));
    EXPECT_EQ(stream.stats().makespan, 250) << "in_flight=" << w;
  }
}

TEST(VmStream, ReadAfterWriteHazardSerializes) {
  VmLaunch producer = two_stage_launch(50, 50);
  producer.writes = {0x1000};
  VmLaunch consumer = two_stage_launch(50, 50, /*core=*/1);
  consumer.reads = {0x1000};

  VmStream stream;
  EXPECT_EQ(stream.enqueue(std::move(producer)), 0);
  // Disjoint cores: only the RAW dependency can hold the consumer back,
  // and it must hold it to the producer's completion.
  EXPECT_EQ(stream.enqueue(std::move(consumer)), 100);
  EXPECT_GE(stream.stats().hazard_stalls, 1);
}

TEST(VmStream, WriteHazardsSerializeWARAndWAW) {
  VmLaunch reader = two_stage_launch(50, 50);
  reader.reads = {0x2000};
  VmLaunch writer = two_stage_launch(50, 50, /*core=*/1);
  writer.writes = {0x2000};
  VmStream stream;
  stream.enqueue(std::move(reader));
  EXPECT_EQ(stream.enqueue(std::move(writer)), 100);  // WAR

  VmLaunch w1 = two_stage_launch(50, 50);
  w1.writes = {0x3000};
  VmLaunch w2 = two_stage_launch(50, 50, /*core=*/1);
  w2.writes = {0x3000};
  VmStream stream2;
  stream2.enqueue(std::move(w1));
  EXPECT_EQ(stream2.enqueue(std::move(w2)), 100);  // WAW
}

TEST(VmStream, UnrelatedBuffersDoNotSerialize) {
  VmLaunch a = two_stage_launch(50, 50);
  a.writes = {0x1000};
  VmLaunch b = two_stage_launch(50, 50, /*core=*/1);
  b.reads = {0x9999};
  b.writes = {0x2000};
  VmStream stream;
  stream.enqueue(std::move(a));
  EXPECT_EQ(stream.enqueue(std::move(b)), 0);
  EXPECT_EQ(stream.stats().hazard_stalls, 0);
}

TEST(VmStream, BucketInvariantHoldsAcrossLaunchBoundaries) {
  VmStream stream;
  // Mixed shapes, including a flag stall that lands under the previous
  // launch's busy time (head 10 / tail 90 after head 90 / tail 10).
  stream.enqueue(two_stage_launch(90, 10));
  stream.enqueue(two_stage_launch(10, 90));
  stream.enqueue(two_stage_launch(30, 30, /*core=*/1));
  stream.enqueue(two_stage_launch(50, 50));

  const VmStream::Stats s = stream.stats();
  EXPECT_GT(s.makespan, 0);
  EXPECT_LE(s.makespan, s.serial_sum);
  for (const auto& ps : s.streams) {
    if (ps.tracks == 0) continue;
    // The PR-4 attribution invariant, across batch boundaries: the four
    // buckets tile the stream makespan exactly on every track.
    EXPECT_EQ(ps.busy + ps.wait + ps.flag + ps.idle,
              s.makespan * ps.tracks);
    EXPECT_GE(ps.busy, 0);
    EXPECT_GE(ps.wait, 0);
    EXPECT_GE(ps.flag, 0);
    EXPECT_GE(ps.idle, 0);
    EXPECT_GT(ps.occupancy, 0.0);
    EXPECT_LE(ps.occupancy, 1.0);
  }
  EXPECT_EQ(bucket_sum(s), s.makespan);
}

TEST(VmStream, FlagUnderForeignBusyCountsAsBusyNotNegativeWait) {
  VmStream stream;
  VmLaunch first = two_stage_launch(100, 10);
  // Second launch: its Vector op waits on a flag for 50 local cycles
  // before a 10-cycle burst -- modeled as flag attributed to the pipe.
  VmLaunch second;
  second.label = "flagged";
  CoreWork cw;
  cw.core = 0;
  cw.makespan = 60;
  PipeWork& vec = cw.pipes[static_cast<int>(Pipe::kVector)];
  vec.busy = 10;
  vec.flag = 50;
  vec.first_busy = 50;
  vec.last_busy = 60;
  second.cores.push_back(cw);
  second.makespan = 60;

  stream.enqueue(std::move(first));
  stream.enqueue(std::move(second));
  const VmStream::Stats s = stream.stats();
  for (const auto& ps : s.streams) {
    if (ps.tracks == 0) continue;
    EXPECT_GE(ps.wait, 0);  // clamping, not negative wait
    EXPECT_EQ(ps.busy + ps.wait + ps.flag + ps.idle,
              s.makespan * ps.tracks);
  }
}

TEST(VmStream, IssueLogAndSignatureAreDeterministic) {
  auto run = [] {
    VmStream stream;
    stream.enqueue(two_stage_launch(50, 50));
    stream.enqueue(two_stage_launch(30, 70, /*core=*/1));
    stream.enqueue(two_stage_launch(50, 50));
    return stream.issue_signature();
  };
  const std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

TEST(VmStream, ResetForgetsTheTimeline) {
  VmStream stream;
  stream.enqueue(two_stage_launch(50, 50));
  stream.reset();
  const VmStream::Stats s = stream.stats();
  EXPECT_EQ(s.launches, 0);
  EXPECT_EQ(s.makespan, 0);
  EXPECT_EQ(s.serial_sum, 0);
  EXPECT_TRUE(stream.issue_log().empty());
  // A fresh enqueue starts the clock from zero again.
  EXPECT_EQ(stream.enqueue(two_stage_launch(50, 50)), 0);
}

TEST(VmStream, CaptureRetainsPlacedLaunches) {
  VmStream stream(VmStreamOptions{.in_flight = 2, .capture = true});
  VmLaunch l = two_stage_launch(50, 50);
  l.label = "first";
  stream.enqueue(std::move(l));
  stream.enqueue(two_stage_launch(50, 50));
  const auto placed = stream.placements();
  ASSERT_EQ(placed.size(), 2u);
  EXPECT_EQ(placed[0].label, "first");
  EXPECT_EQ(placed[0].start, 0);
  EXPECT_EQ(placed[1].start, 50);
  EXPECT_EQ(placed[1].end, 150);
}

}  // namespace
}  // namespace davinci::vm

// --- Serving-path integration --------------------------------------------

namespace davinci::serve {
namespace {

// The CI smoke workload (bench/traces/serve_smoke.trace), embedded so
// the test is hermetic.
constexpr char kSmokeTrace[] =
    "op=maxpool n=1 c1=4 ih=147 iw=147 k=3 s=2 impl=im2col x=6\n"
    "op=maxpool n=1 c1=12 ih=71 iw=71 k=3 s=2 impl=im2col x=6\n"
    "op=maxpool n=1 c1=18 ih=35 iw=35 k=3 s=2 impl=im2col x=6\n"
    "op=avgpool n=1 c1=12 ih=71 iw=71 k=3 s=2 impl=im2col x=4\n"
    "op=minpool n=1 c1=4 ih=56 iw=56 k=2 s=2 impl=im2col x=2\n"
    "op=maxpool_mask n=1 c1=4 ih=56 iw=56 k=3 s=2 impl=im2col x=2\n"
    "op=maxpool_bwd n=1 c1=4 ih=56 iw=56 k=3 s=2 merge=col2im x=2\n"
    "op=avgpool_bwd n=1 c1=4 ih=56 iw=56 k=3 s=2 merge=col2im x=2\n"
    "op=global_avgpool n=1 c1=64 ih=8 iw=8 x=2\n";

struct ReplayResult {
  SessionStats stats;
  std::string issue_signature;
  std::string serve_json;
  // Every completed request's primary output, flattened, in submit
  // order (mask/grad outputs included where the op produces them).
  std::vector<std::vector<std::uint16_t>> outputs;
};

// Deterministic paused-window replay of the smoke trace -- the same
// discipline davinci_serve uses, so coalescing (and therefore the VM
// schedule) is identical run to run.
ReplayResult replay_smoke(const SessionOptions& opts) {
  const auto entries = parse_trace(kSmokeTrace);
  std::vector<MaterializedRequest> requests;
  std::vector<kernels::PoolOp> ops;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      requests.push_back(
          materialize(entries[i], i * 1000 + std::uint64_t(r)));
      ops.push_back(entries[i].op);
    }
  }

  Session session(Cluster{}, opts);
  session.pause();
  std::vector<std::future<kernels::PoolResult>> futures;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    futures.push_back(session.submit(ops[r], requests[r].inputs()));
  }
  session.resume();
  session.drain();

  ReplayResult res;
  for (auto& f : futures) {
    kernels::PoolResult r = f.get();
    std::vector<std::uint16_t> bits;
    for (const TensorF16* t : {&r.out, &r.mask, &r.grad_in}) {
      if (t->data() == nullptr) continue;  // op didn't produce this output
      for (std::int64_t i = 0; i < t->size(); ++i) {
        bits.push_back(t->flat(i).bits());
      }
    }
    res.outputs.push_back(std::move(bits));
  }
  res.stats = session.stats();
  res.issue_signature = session.vm_stream().issue_signature();
  res.serve_json = session.serve_json();
  return res;
}

TEST(ServeVm, OutputsBitIdenticalWithVmOnAndOff) {
  SessionOptions on;
  SessionOptions off;
  off.vm = false;
  const ReplayResult a = replay_smoke(on);
  const ReplayResult b = replay_smoke(off);

  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t i = 0; i < a.outputs.size(); ++i) {
    ASSERT_EQ(a.outputs[i], b.outputs[i]) << "request " << i;
  }
  // The VM only re-times: the functional execution order, launch count
  // and per-launch cycle sum are untouched.
  EXPECT_EQ(a.stats.launches, b.stats.launches);
  EXPECT_EQ(a.stats.device_cycles_total, b.stats.device_cycles_total);
  EXPECT_EQ(b.stats.vm.launches, 0);  // off: the stream saw nothing
}

TEST(ServeVm, CrossBatchMakespanStrictlyBelowSerialSum) {
  const ReplayResult r = replay_smoke(SessionOptions{});
  ASSERT_GT(r.stats.vm.launches, 1);
  EXPECT_EQ(r.stats.vm.serial_sum, r.stats.device_cycles_total);
  // The acceptance criterion: inter-batch pipelining must genuinely
  // overlap adjacent launches, not just re-plot the serial schedule.
  EXPECT_LT(r.stats.vm.makespan, r.stats.device_cycles_total);
  EXPECT_GT(r.stats.vm.overlap_cycles, 0);
}

TEST(ServeVm, ReplayIsDeterministicRunToRun) {
  const ReplayResult a = replay_smoke(SessionOptions{});
  const ReplayResult b = replay_smoke(SessionOptions{});
  // Identical op order and coalescing...
  EXPECT_EQ(a.stats.launches, b.stats.launches);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  EXPECT_EQ(a.stats.coalesced_requests, b.stats.coalesced_requests);
  EXPECT_EQ(a.stats.device_cycles_total, b.stats.device_cycles_total);
  // ...and an identical VM schedule, op for op.
  EXPECT_EQ(a.stats.vm.makespan, b.stats.vm.makespan);
  EXPECT_FALSE(a.issue_signature.empty());
  EXPECT_EQ(a.issue_signature, b.issue_signature);
}

TEST(ServeVm, StreamBucketsKeepTheInvariantOnTheServedWorkload) {
  const ReplayResult r = replay_smoke(SessionOptions{});
  bool any = false;
  for (const auto& ps : r.stats.vm.streams) {
    if (ps.tracks == 0) continue;
    any = true;
    EXPECT_EQ(ps.busy + ps.wait + ps.flag + ps.idle,
              r.stats.vm.makespan * ps.tracks);
    EXPECT_GE(ps.wait, 0);
    EXPECT_GE(ps.idle, 0);
  }
  EXPECT_TRUE(any);
  EXPECT_NE(r.serve_json.find("\"vm\""), std::string::npos);
  EXPECT_NE(r.serve_json.find("\"streams\""), std::string::npos);
  EXPECT_NE(r.serve_json.find("\"occupancy\""), std::string::npos);
}

TEST(ServeVm, InFlightWindowOfOneDisablesCrossBatchOverlap) {
  SessionOptions serial;
  serial.vm_in_flight = 1;
  const ReplayResult r = replay_smoke(serial);
  EXPECT_EQ(r.stats.vm.makespan, r.stats.vm.serial_sum);
  EXPECT_EQ(r.stats.vm.overlap_cycles, 0);
}

TEST(ServeVm, ResetStatsRezeroesTheStreamClock) {
  const auto entries = parse_trace("op=maxpool c1=2 ih=21 iw=21 k=3 s=2\n");
  MaterializedRequest req = materialize(entries[0], 1);
  Session session(Cluster{});
  session.submit(entries[0].op, req.inputs()).get();
  session.drain();
  ASSERT_GT(session.stats().vm.makespan, 0);

  session.reset_stats();
  SessionStats s = session.stats();
  EXPECT_EQ(s.vm.launches, 0);
  EXPECT_EQ(s.vm.makespan, 0);
  EXPECT_EQ(s.device_cycles_total, 0);
  EXPECT_EQ(s.completed, 0);
  // Cached plans survive: the next identical request is a cache hit.
  const std::size_t plans = s.plan_cache_size;
  session.submit(entries[0].op, req.inputs()).get();
  session.drain();
  s = session.stats();
  EXPECT_EQ(s.plan_cache_size, plans);
  EXPECT_GE(s.plan_cache.hits, 1);
  EXPECT_EQ(s.plan_cache.misses, 0);
}

}  // namespace
}  // namespace davinci::serve
