// Tests for the mask-producing MaxPool forward (Figure 7b).
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::maxpool_forward_with_mask;

// The kernels only define mask values for valid patches (tail fractal rows
// in GM keep their zero initialization); compare the valid region exactly
// and require zero tails.
void check_mask(const TensorF16& got, const TensorF16& want,
                std::int64_t valid_patches, const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  const std::int64_t n = got.shape()[0], c1 = got.shape()[1];
  const std::int64_t kh = got.shape()[2], kw = got.shape()[3];
  const std::int64_t pp = got.shape()[4];
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t q = 0; q < c1; ++q) {
      for (std::int64_t i = 0; i < kh; ++i) {
        for (std::int64_t j = 0; j < kw; ++j) {
          for (std::int64_t p = 0; p < pp; ++p) {
            for (std::int64_t c = 0; c < kC0; ++c) {
              if (p < valid_patches) {
                ASSERT_TRUE(got.at(b, q, i, j, p, c) ==
                            want.at(b, q, i, j, p, c))
                    << what << " at (" << b << "," << q << "," << i << ","
                    << j << "," << p << "," << c << ")";
              } else {
                ASSERT_TRUE(got.at(b, q, i, j, p, c).is_zero())
                    << what << " tail at p=" << p;
              }
            }
          }
        }
      }
    }
  }
}

void check_both_impls(const TensorF16& in, const Window2d& w) {
  Device dev;
  const std::int64_t oh = w.out_h(in.shape()[2]);
  const std::int64_t ow = w.out_w(in.shape()[3]);
  const TensorF16 want_out = ref::maxpool_fwd(in, w);
  const TensorF16 want_mask = ref::maxpool_argmax_mask(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = maxpool_forward_with_mask(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want_out, akg::to_string(impl));
    check_mask(got.mask, want_mask, oh * ow, akg::to_string(impl));
  }
}

TEST(MaxpoolMask, SmallStride2) {
  check_both_impls(testutil::random_int_nc1hwc0(1, 1, 9, 9, 201),
                   Window2d::pool(3, 2));
}

TEST(MaxpoolMask, UniqueMaximaFloatData) {
  check_both_impls(testutil::random_float_nc1hwc0(1, 2, 11, 11, 202),
                   Window2d::pool(3, 2));
}

TEST(MaxpoolMask, TiesMarkAllPositions) {
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  in.fill(Float16(2.0f));
  check_both_impls(in, Window2d::pool(2, 2));
}

TEST(MaxpoolMask, MultiChannelAndBatch) {
  check_both_impls(testutil::random_int_nc1hwc0(2, 3, 9, 9, 203),
                   Window2d::pool(3, 2));
}

TEST(MaxpoolMask, NonOverlappingStride) {
  check_both_impls(testutil::random_int_nc1hwc0(1, 1, 12, 12, 204),
                   Window2d::pool(3, 3));
}

TEST(MaxpoolMask, TiledLargeInput) {
  check_both_impls(testutil::random_int_nc1hwc0(1, 1, 71, 71, 205),
                   Window2d::pool(3, 2));
}

TEST(MaxpoolMask, Im2colWithPadding) {
  Device dev;
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 206);
  const TensorF16 want_out = ref::maxpool_fwd(in, w);
  const TensorF16 want_mask = ref::maxpool_argmax_mask(in, w);
  auto got = maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, want_out, "padded out");
  check_mask(got.mask, want_mask,
             w.out_h(9) * w.out_w(9), "padded mask");
}

TEST(MaxpoolMask, MaskShape) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 9, 9, 207);
  const Window2d w = Window2d::pool(3, 2);
  auto got = maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  // Oh = Ow = 4 -> 16 patches -> PP = 16.
  EXPECT_EQ(got.mask.shape(), Shape({1, 2, 3, 3, 16, kC0}));
}

TEST(MaxpoolMask, Im2colBeatsDirect) {
  // Figure 7b: the gap grows with the mask step because the baseline's
  // comparisons are also 16-lane.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 35, 35, 208);
  const Window2d w = Window2d::pool(3, 2);
  auto direct = maxpool_forward_with_mask(dev, in, w, PoolImpl::kDirect);
  auto im2col = maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(im2col.cycles(), direct.cycles());
}

TEST(MaxpoolMask, EveryPatchHasAtLeastOneMaximum) {
  Device dev;
  const TensorF16 in = testutil::random_float_nc1hwc0(1, 1, 13, 13, 209);
  const Window2d w = Window2d::pool(3, 2);
  auto got = maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  const std::int64_t oh = w.out_h(13), ow = w.out_w(13);
  for (std::int64_t p = 0; p < oh * ow; ++p) {
    for (std::int64_t c = 0; c < kC0; ++c) {
      float sum = 0;
      for (std::int64_t kh = 0; kh < 3; ++kh) {
        for (std::int64_t kw = 0; kw < 3; ++kw) {
          sum += got.mask
                     .at(std::int64_t{0}, std::int64_t{0}, kh, kw, p, c)
                     .to_float();
        }
      }
      EXPECT_GE(sum, 1.0f) << "patch " << p << " lane " << c;
    }
  }
}

TEST(MaxpoolMask, RejectsUnsupportedImpls) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 210);
  EXPECT_THROW(maxpool_forward_with_mask(dev, in, Window2d::pool(3, 2),
                                         PoolImpl::kXYSplit),
               Error);
}

}  // namespace
}  // namespace davinci
