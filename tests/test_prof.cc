// The davinci_prof backend: JSON parsing, report rendering and the
// regression diff (docs/OBSERVABILITY.md). The diff gates only the
// lower-is-better cycle metrics; everything else is informational, and
// host wall-clock is ignored unless explicitly requested.
#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "common/json.h"
#include "kernels/pooling.h"
#include "sim/metrics_registry.h"
#include "sim/prof_report.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

TEST(JsonParser, AcceptsTheObviousCases) {
  const json::Value v =
      json::parse("{\"a\": [1, -2.5e3, \"x\\n\\u0041\", true, null]}");
  const json::Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a[1].as_double(), -2500.0);
  EXPECT_EQ(a[2].as_string(), "x\nA");
  EXPECT_TRUE(a[3].as_bool());
  EXPECT_TRUE(a[4].is_null());
  // Integers beyond double precision stay exact.
  EXPECT_EQ(json::parse("9007199254740993").as_int(), 9007199254740993LL);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_THROW(json::parse("{\"a\": 1,}"), Error);
  EXPECT_THROW(json::parse("[1, 2"), Error);
  EXPECT_THROW(json::parse("\"unterminated"), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse(""), Error);
}

// A minimal metrics-shaped document with one knob per concern.
std::string metrics_doc(std::int64_t cycles, std::int64_t host_ns,
                        std::int64_t gm_bytes) {
  std::string s = "{\"schema\":\"davinci.metrics\",\"schema_version\":1,";
  s += "\"entries\":[{\"name\":\"k\",\"cycles\":" + std::to_string(cycles);
  s += ",\"cycles_serial\":" + std::to_string(cycles + 100);
  s += ",\"host_ns\":" + std::to_string(host_ns);
  s += ",\"traffic\":{\"gm_total\":" + std::to_string(gm_bytes) + "}}]}";
  return s;
}

TEST(ProfDiff, IdenticalDocumentsPass) {
  const json::Value v = json::parse(metrics_doc(1000, 5000, 4096));
  const DiffResult r = diff_reports(v, v, DiffOptions{});
  EXPECT_FALSE(r.regressed);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_GT(r.compared, 0);
}

TEST(ProfDiff, FlagsTenPercentCycleRegression) {
  const json::Value base = json::parse(metrics_doc(1000, 5000, 4096));
  const json::Value worse = json::parse(metrics_doc(1100, 5000, 4096));
  DiffOptions opts;  // default 5% tolerance
  const DiffResult r = diff_reports(base, worse, opts);
  EXPECT_TRUE(r.regressed);
  EXPECT_GE(r.regressions, 1);
  EXPECT_NE(r.report.find("REGRESSION"), std::string::npos);

  // The same pair passes under a 20% tolerance...
  opts.tol = 0.20;
  EXPECT_FALSE(diff_reports(base, worse, opts).regressed);
  // ...and under a per-metric override for cycles alone.
  opts.tol = 0.05;
  opts.per_metric["cycles"] = 0.20;
  opts.per_metric["cycles_serial"] = 0.20;
  EXPECT_FALSE(diff_reports(base, worse, opts).regressed);
}

TEST(ProfDiff, ImprovementIsNotARegression) {
  const json::Value base = json::parse(metrics_doc(1000, 5000, 4096));
  const json::Value better = json::parse(metrics_doc(800, 5000, 4096));
  EXPECT_FALSE(diff_reports(base, better, DiffOptions{}).regressed);
}

TEST(ProfDiff, HostWallClockSkippedUnlessRequested) {
  const json::Value base = json::parse(metrics_doc(1000, 5000, 4096));
  const json::Value slower_host = json::parse(metrics_doc(1000, 50000, 4096));
  DiffOptions opts;
  EXPECT_FALSE(diff_reports(base, slower_host, opts).regressed);
  opts.include_host = true;
  EXPECT_TRUE(diff_reports(base, slower_host, opts).regressed);
}

TEST(ProfDiff, ByteCountDriftIsInformationalOnly) {
  const json::Value base = json::parse(metrics_doc(1000, 5000, 4096));
  const json::Value drift = json::parse(metrics_doc(1000, 5000, 8192));
  const DiffResult r = diff_reports(base, drift, DiffOptions{});
  EXPECT_FALSE(r.regressed);
  // ... but the drift is still reported.
  EXPECT_NE(r.report.find("gm_total"), std::string::npos);
}

// End-to-end over the real serializer: a real run diffed against itself
// is clean, and a synthetically slowed copy of the JSON regresses.
TEST(ProfDiff, RealMetricsJsonRoundTrip) {
  Device dev;
  TensorF16 in(Shape{1, 2, 35, 35, kC0});
  in.fill_random_ints(1);
  auto r = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                    akg::PoolImpl::kIm2col);
  MetricsRegistry reg;
  reg.add("maxpool", r.run, dev.arch());
  const std::string text = reg.to_json();
  const json::Value doc = json::parse(text);
  EXPECT_FALSE(diff_reports(doc, doc, DiffOptions{}).regressed);

  // Bump every cycles field by 10% via string surgery on one entry.
  const std::string from = "\"cycles\":" + std::to_string(r.run.device_cycles);
  const std::string to =
      "\"cycles\":" + std::to_string(r.run.device_cycles * 11 / 10);
  const std::size_t pos = text.find(from);
  ASSERT_NE(pos, std::string::npos);
  std::string slowed = text;
  slowed.replace(pos, from.size(), to);
  EXPECT_TRUE(
      diff_reports(doc, json::parse(slowed), DiffOptions{}).regressed);
}

TEST(ProfRender, MetricsAndBenchShapesRender) {
  Device dev;
  TensorF16 in(Shape{1, 2, 35, 35, kC0});
  in.fill_random_ints(1);
  auto r = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                    akg::PoolImpl::kDirect);
  MetricsRegistry reg;
  reg.add("maxpool-direct", r.run, dev.arch());
  const std::string report = render_report(json::parse(reg.to_json()));
  EXPECT_NE(report.find("maxpool-direct"), std::string::npos);
  EXPECT_NE(report.find("roofline"), std::string::npos);

  const std::string bench = render_report(json::parse(
      "{\"bench\":\"b\",\"rows\":[{\"impl\":\"direct\",\"cycles\":7}]}"));
  EXPECT_NE(bench.find("direct"), std::string::npos);
}

}  // namespace
}  // namespace davinci
