// Fault injection and resilient execution (sim/fault.h,
// Device::run_resilient): deterministic replay, quarantine with
// redistribution, retry budgets, verification by redundant execution, and
// the zero-cost guarantee of an empty plan.
#include "sim/fault.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "kernels/pooling.h"
#include "nets/pipeline.h"
#include "ref/pooling_ref.h"
#include "sim/device.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

TensorF16 make_input(std::int64_t h, std::int64_t w, std::int64_t c,
                     int seed = 1) {
  TensorF16 in(Shape{1, c1_of(c), h, w, kC0});
  in.fill_random_ints(seed);
  return in;
}

void expect_bits_equal(const TensorF16& a, const TensorF16& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.flat(i) == b.flat(i)) << "element " << i << " differs";
  }
}

void expect_stats_equal(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.silent_injected, b.silent_injected);
  EXPECT_EQ(a.faults_detected, b.faults_detected);
  EXPECT_EQ(a.faults_absorbed, b.faults_absorbed);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.verification_runs, b.verification_runs);
  EXPECT_EQ(a.blocks_redispatched, b.blocks_redispatched);
  EXPECT_EQ(a.cores_quarantined, b.cores_quarantined);
}

// --- FaultPlan spec grammar ---

TEST(FaultPlan, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "core_fail@2,core_fail@7@5,bitflip:ub:1e-6,bitflip:l1:0.5,"
      "bitflip:l0:0.25,mte_drop:0.125,scu_err:0.0625,vec_fault:0.03125",
      /*seed=*/9);
  EXPECT_EQ(plan.seed, 9u);
  ASSERT_EQ(plan.core_failures.size(), 2u);
  EXPECT_EQ(plan.core_failures[0].core, 2);
  EXPECT_EQ(plan.core_failures[0].from_block, 0);
  EXPECT_EQ(plan.core_failures[1].core, 7);
  EXPECT_EQ(plan.core_failures[1].from_block, 5);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kBitflipUb)], 1e-6);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kBitflipL1)], 0.5);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kBitflipL0)], 0.25);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kMteDrop)], 0.125);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kScuFractal)],
                   0.0625);
  EXPECT_DOUBLE_EQ(plan.rate[static_cast<int>(FaultSite::kVecTransient)],
                   0.03125);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.has_silent_sites());
}

TEST(FaultPlan, ToStringRoundTrips) {
  const FaultPlan plan =
      FaultPlan::parse("core_fail@3@2,mte_drop:0.5,vec_fault:0.25", 1);
  const FaultPlan again = FaultPlan::parse(plan.to_string(), 1);
  ASSERT_EQ(again.core_failures.size(), 1u);
  EXPECT_EQ(again.core_failures[0].core, 3);
  EXPECT_EQ(again.core_failures[0].from_block, 2);
  EXPECT_DOUBLE_EQ(again.rate[static_cast<int>(FaultSite::kMteDrop)], 0.5);
  EXPECT_DOUBLE_EQ(again.rate[static_cast<int>(FaultSite::kVecTransient)],
                   0.25);
}

TEST(FaultPlan, EmptyAndSilentClassification) {
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_FALSE(FaultPlan{}.has_silent_sites());
  const FaultPlan vec_only = FaultPlan::parse("vec_fault:0.5", 0);
  EXPECT_FALSE(vec_only.empty());
  EXPECT_FALSE(vec_only.has_silent_sites());  // detected, not silent
  const FaultPlan core_only = FaultPlan::parse("core_fail@0", 0);
  EXPECT_FALSE(core_only.empty());
  EXPECT_FALSE(core_only.has_silent_sites());
  EXPECT_TRUE(FaultPlan::parse("", 0).empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bitflip:xx:1", 0), Error);
  EXPECT_THROW(FaultPlan::parse("core_fail@", 0), Error);
  EXPECT_THROW(FaultPlan::parse("core_fail@-1", 0), Error);
  EXPECT_THROW(FaultPlan::parse("mte_drop:abc", 0), Error);
  EXPECT_THROW(FaultPlan::parse("mte_drop:-0.5", 0), Error);
  EXPECT_THROW(FaultPlan::parse("vec_fault:", 0), Error);
  EXPECT_THROW(FaultPlan::parse("frobnicate:1", 0), Error);
  EXPECT_THROW(FaultPlan::parse("bitflip:ub:1e-6,oops", 0), Error);
}

// --- Zero-cost guarantee ---

TEST(Resilience, EmptyPlanMatchesPlainRunExactly) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);

  Device plain;
  auto base = kernels::maxpool_forward(plain, in, w, akg::PoolImpl::kIm2col);

  Device resilient;
  resilient.set_resilience(ResilienceOptions{});  // empty plan, no verify
  auto r = kernels::maxpool_forward(resilient, in, w, akg::PoolImpl::kIm2col);

  expect_bits_equal(base.out, r.out);
  EXPECT_EQ(base.run.device_cycles, r.run.device_cycles);
  EXPECT_EQ(base.run.device_cycles_pipelined, r.run.device_cycles_pipelined);
  EXPECT_EQ(base.run.aggregate.total_cycles(),
            r.run.aggregate.total_cycles());
  EXPECT_EQ(base.run.core_cycles, r.run.core_cycles);
  expect_stats_equal(r.run.faults, FaultStats{});
}

TEST(Resilience, ZeroBlocksIsANoOp) {
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("core_fail@0", 7);
  auto r = dev.run_resilient(0, [](AiCore&, std::int64_t) {}, opts);
  EXPECT_EQ(r.cores_used, 0);
  EXPECT_EQ(r.device_cycles, 0);
}

// --- Deterministic replay ---

TEST(Resilience, SameSeedAndPlanReplaysIdentically) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("bitflip:ub:2e-5,vec_fault:2e-4", 42);
  opts.max_retries = 8;
  opts.verify = true;

  auto run_once = [&]() {
    Device dev;
    dev.set_resilience(opts);
    return kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  };
  auto a = run_once();
  auto b = run_once();

  expect_bits_equal(a.out, b.out);
  expect_stats_equal(a.run.faults, b.run.faults);
  EXPECT_EQ(a.run.device_cycles, b.run.device_cycles);
  // And the verified output is the correct one.
  expect_bits_equal(a.out, ref::maxpool_fwd(in, w));
}

TEST(Resilience, DifferentSeedsDrawDifferentFaults) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);
  auto faults_with_seed = [&](std::uint64_t seed) {
    Device dev;
    ResilienceOptions opts;
    opts.plan = FaultPlan::parse("bitflip:ub:5e-5", seed);
    opts.max_retries = 8;
    opts.verify = true;
    dev.set_resilience(opts);
    auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
    expect_bits_equal(r.out, ref::maxpool_fwd(in, w));
    return r.run.faults;
  };
  const FaultStats a = faults_with_seed(1);
  const FaultStats b = faults_with_seed(2);
  // Both runs draw from the same rates, so the totals are close but the
  // streams differ; at these rates the injected counts differing is the
  // overwhelmingly likely (and, with fixed seeds, deterministic) outcome.
  EXPECT_GE(a.faults_injected + b.faults_injected, 1);
  EXPECT_NE(a.faults_injected * 1000000 + a.faults_detected,
            b.faults_injected * 1000000 + b.faults_detected);
}

// --- Quarantine and redistribution ---

TEST(Resilience, QuarantineRedistributesAndStaysBitExact) {
  const TensorF16 in = make_input(32, 32, 192);  // 12 blocks (C1 = 12)
  const Window2d w = Window2d::pool(3, 2);

  Device plain;
  auto base = kernels::maxpool_forward(plain, in, w, akg::PoolImpl::kIm2col);

  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("core_fail@1", 0);
  dev.set_resilience(opts);
  auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);

  expect_bits_equal(r.out, ref::maxpool_fwd(in, w));
  EXPECT_EQ(r.run.faults.cores_quarantined, 1);
  EXPECT_GE(r.run.faults.blocks_redispatched, 1);
  EXPECT_EQ(r.run.faults.faults_detected, 1);
  // The survivor that absorbs core 1's blocks runs twice the work, so the
  // device-level (max over cores) time honestly increases.
  EXPECT_GT(r.run.device_cycles, base.run.device_cycles);
}

TEST(Resilience, SerialAndParallelAgreeUnderQuarantine) {
  const TensorF16 in = make_input(32, 32, 128);
  const Window2d w = Window2d::pool(2, 2);
  auto run_mode = [&](bool parallel) {
    Device dev;
    ResilienceOptions opts;
    opts.plan = FaultPlan::parse("core_fail@3", 5);
    opts.parallel = parallel;
    dev.set_resilience(opts);
    return kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  };
  auto par = run_mode(true);
  auto ser = run_mode(false);
  expect_bits_equal(par.out, ser.out);
  expect_stats_equal(par.run.faults, ser.run.faults);
}

TEST(Resilience, DelayedTriggerQuarantinesMidRun) {
  // core_fail@0@2: core 0 completes blocks 0 (its first) but dies when a
  // block index >= 2 lands on it.
  Device dev(ArchConfig::ascend310());  // 2 cores
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("core_fail@0@2", 0);
  opts.parallel = false;
  std::vector<int> done(6, 0);
  auto r = dev.run_resilient(
      6,
      [&](AiCore& core, std::int64_t b) {
        auto a = core.ub().alloc<Float16>(64);
        core.vdup_flat(a, Float16(1.0f), 64);
        done[static_cast<std::size_t>(b)] += 1;
      },
      opts);
  for (int d : done) EXPECT_EQ(d, 1);
  EXPECT_EQ(r.faults.cores_quarantined, 1);
  EXPECT_GE(r.faults.blocks_redispatched, 1);
}

TEST(Resilience, AllCoresQuarantinedFailsCleanly) {
  Device dev(ArchConfig::ascend310());  // 2 cores
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("core_fail@0,core_fail@1", 0);
  opts.parallel = false;
  EXPECT_THROW(dev.run_resilient(
                   4,
                   [](AiCore& core, std::int64_t) {
                     auto a = core.ub().alloc<Float16>(64);
                     core.vdup_flat(a, Float16(1.0f), 64);
                   },
                   opts),
               RetryExhausted);
}

// --- Retry budget ---

TEST(Resilience, RetryBudgetExhaustionFailsCleanly) {
  const TensorF16 in = make_input(16, 16, 32);
  const Window2d w = Window2d::pool(2, 2);
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("vec_fault:1", 0);  // every instruction faults
  opts.max_retries = 0;
  dev.set_resilience(opts);
  EXPECT_THROW(kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect),
               RetryExhausted);
}

TEST(Resilience, ExhaustionMessageCarriesContext) {
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("vec_fault:1", 0);
  opts.max_retries = 2;
  try {
    dev.run_resilient(
        4,
        [](AiCore& core, std::int64_t) {
          auto a = core.ub().alloc<Float16>(64);
          core.vdup_flat(a, Float16(1.0f), 64);
        },
        opts);
    FAIL() << "expected RetryExhausted";
  } catch (const RetryExhausted& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("retry budget exhausted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("max_retries=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fault stats:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("vec_fault"), std::string::npos) << msg;
  }
}

TEST(Resilience, TransientFaultsAreRetriedToCompletion) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("vec_fault:5e-4", 3);
  opts.max_retries = 8;
  dev.set_resilience(opts);
  auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  expect_bits_equal(r.out, ref::maxpool_fwd(in, w));
  EXPECT_GE(r.run.faults.faults_detected, 1);
  EXPECT_GE(r.run.faults.retries, 1);
}

// --- Verification (redundant execution) ---

TEST(Resilience, MteDropsAreCaughtByVerification) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("mte_drop:0.2", 11);
  opts.max_retries = 8;
  opts.verify = true;
  dev.set_resilience(opts);
  auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  expect_bits_equal(r.out, ref::maxpool_fwd(in, w));
  EXPECT_GE(r.run.faults.silent_injected, 1);
  // Every block ran at least one redundant verification execution.
  EXPECT_GE(r.run.faults.verification_runs, 12);
}

TEST(Resilience, BitflipsAreCaughtByVerification) {
  const TensorF16 in = make_input(32, 32, 192);
  const Window2d w = Window2d::pool(3, 2);
  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("bitflip:ub:5e-5", 17);
  opts.max_retries = 8;
  opts.verify = true;
  dev.set_resilience(opts);
  auto r = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kDirect);
  expect_bits_equal(r.out, ref::maxpool_fwd(in, w));
  EXPECT_GE(r.run.faults.silent_injected, 1);
}

// --- Pipeline integration ---

TEST(Resilience, PipelineRunResilientSurvivesCoreFailure) {
  const TensorF16 in = make_input(32, 32, 128);
  nets::Pipeline p;
  p.maxpool(Window2d::pool(2, 2)).avgpool(Window2d::pool(2, 2));

  Device plain;
  auto base = p.run(plain, in, nets::PoolingStack::kAccelerated);

  Device dev;
  ResilienceOptions opts;
  opts.plan = FaultPlan::parse("core_fail@2", 0);
  auto r = p.run_resilient(dev, in, nets::PoolingStack::kAccelerated, opts);

  expect_bits_equal(r.out, base.out);
  // The core fails again in every layer's run (fresh fault state per
  // kernel launch), so each of the two layers quarantines it once.
  EXPECT_EQ(r.faults.cores_quarantined, 2);
  // The policy is removed from the device afterwards.
  EXPECT_FALSE(dev.resilience().has_value());
}

// --- Aggregated worker errors in the plain Device::run path ---

TEST(Device, RunAggregatesAllWorkerFailures) {
  Device dev;
  try {
    dev.run(40, [](AiCore&, std::int64_t b) {
      if (b == 5) throw Error("boom at block five");
      if (b == 17) throw Error("boom at block seventeen");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 core(s) failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 5 at block 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 17 at block 17"), std::string::npos) << msg;
    EXPECT_NE(msg.find("boom at block five"), std::string::npos) << msg;
    EXPECT_NE(msg.find("boom at block seventeen"), std::string::npos) << msg;
  }
}

TEST(Device, SerialRunKeepsRawExceptionType) {
  Device dev;
  EXPECT_THROW(dev.run(
                   4,
                   [](AiCore&, std::int64_t b) {
                     if (b == 2) throw TransientFault("raw");
                   },
                   /*parallel=*/false),
               TransientFault);
}

}  // namespace
}  // namespace davinci
