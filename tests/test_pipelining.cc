// End-to-end tests of double-buffered pipe-overlap execution: the
// sandwich bound (busiest unit <= overlapped makespan <= serial cycles)
// for every pooling kernel, single-buffer == serial equivalence, and
// bit-identical outputs with double buffering on vs off. The paper's
// InceptionV3 (35,35,288) Im2col forward must genuinely overlap
// (strictly faster than serial) -- that is the point of the scheduler.
#include <gtest/gtest.h>

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

constexpr PoolImpl kAllImpls[] = {PoolImpl::kDirect, PoolImpl::kIm2col,
                                  PoolImpl::kExpansion, PoolImpl::kXYSplit};

void expect_sandwich(const Device::RunResult& run, const char* what) {
  EXPECT_GE(run.device_cycles, run.busiest_unit_cycles) << what;
  EXPECT_LE(run.device_cycles, run.device_cycles_serial) << what;
  EXPECT_GT(run.device_cycles, 0) << what;
}

TEST(Pipelining, SandwichBoundAllForwardImpls) {
  Device dev;
  // Large enough to H-tile so the ping-pong path is exercised.
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 64, 64, 201);
  const Window2d w = Window2d::pool(3, 2);
  for (PoolImpl impl : kAllImpls) {
    auto r = kernels::maxpool_forward(dev, in, w, impl);
    expect_sandwich(r.run, akg::to_string(impl));
  }
}

TEST(Pipelining, SandwichBoundBothBackwardMerges) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 64, 64, 202);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(64), w.out_w(64), kC0});
  grad.fill_random_ints(203, 0, 5);
  for (MergeImpl merge : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto mr = kernels::maxpool_backward(dev, mask, grad, w, 64, 64, merge);
    expect_sandwich(mr.run, kernels::to_string(merge));
    auto ar = kernels::avgpool_backward(dev, grad, w, 64, 64, merge);
    expect_sandwich(ar.run, kernels::to_string(merge));
  }
}

TEST(Pipelining, SingleBufferEqualsSerial) {
  // With double buffering off the kernels run the legacy serial schedule:
  // the overlapped makespan IS the serial cycle count.
  Device dev;
  dev.set_double_buffer(false);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 64, 64, 204);
  const Window2d w = Window2d::pool(3, 2);
  for (PoolImpl impl : kAllImpls) {
    auto r = kernels::maxpool_forward(dev, in, w, impl);
    EXPECT_EQ(r.run.device_cycles, r.run.device_cycles_serial)
        << akg::to_string(impl);
  }
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(64), w.out_w(64), kC0});
  grad.fill_random_ints(205, 0, 5);
  for (MergeImpl merge : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto mr = kernels::maxpool_backward(dev, mask, grad, w, 64, 64, merge);
    EXPECT_EQ(mr.run.device_cycles, mr.run.device_cycles_serial)
        << kernels::to_string(merge);
    auto ar = kernels::avgpool_backward(dev, grad, w, 64, 64, merge);
    EXPECT_EQ(ar.run.device_cycles, ar.run.device_cycles_serial)
        << kernels::to_string(merge);
  }
}

TEST(Pipelining, ForwardOutputsBitIdenticalDoubleBufferedVsSerial) {
  Device db_dev;   // double buffering on (default)
  Device sb_dev;
  sb_dev.set_double_buffer(false);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 64, 64, 206);
  const Window2d w = Window2d::pool(3, 2);
  for (PoolImpl impl : kAllImpls) {
    auto got = kernels::maxpool_forward(db_dev, in, w, impl);
    auto want = kernels::maxpool_forward(sb_dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want.out, akg::to_string(impl));
  }
}

TEST(Pipelining, BackwardOutputsBitIdenticalDoubleBufferedVsSerial) {
  Device db_dev;
  Device sb_dev;
  sb_dev.set_double_buffer(false);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 64, 64, 207);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(64), w.out_w(64), kC0});
  grad.fill_random_ints(208, 0, 5);
  for (MergeImpl merge : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto gm = kernels::maxpool_backward(db_dev, mask, grad, w, 64, 64, merge);
    auto wm = kernels::maxpool_backward(sb_dev, mask, grad, w, 64, 64, merge);
    testutil::expect_equal_f16(gm.grad_in, wm.grad_in,
                               kernels::to_string(merge));
    auto ga = kernels::avgpool_backward(db_dev, grad, w, 64, 64, merge);
    auto wa = kernels::avgpool_backward(sb_dev, grad, w, 64, 64, merge);
    testutil::expect_equal_f16(ga.grad_in, wa.grad_in,
                               kernels::to_string(merge));
  }
}

TEST(Pipelining, SeamKernelsStillMatchReference) {
  // Overlapping windows (Kh > Sh) exercise the cross-tile seam RAW path;
  // verify against the reference under double buffering. K(2,2) keeps the
  // 1/(Kh*Kw) scale and all partial sums exact in fp16, so the check is
  // bit-exact regardless of accumulation order.
  Device dev;
  const Window2d w = Window2d::pool(2, 1);  // kh=2 > sh=1 -> 1 seam row
  TensorF16 grad(Shape{1, 1, w.out_h(95), w.out_w(95), kC0});
  grad.fill_random_ints(209, 0, 5);
  for (MergeImpl merge : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto got = kernels::avgpool_backward(dev, grad, w, 95, 95, merge);
    const TensorF16 want = ref::avgpool_bwd(grad, w, 95, 95);
    testutil::expect_equal_f16(got.grad_in, want, kernels::to_string(merge));
  }
}

TEST(Pipelining, InceptionShapeIm2colOverlapsStrictly) {
  // Acceptance criterion: on the paper's (35,35,288) InceptionV3 layer the
  // double-buffered Im2col forward's makespan is strictly below its serial
  // cycle count and at least the busiest single unit's busy time.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 18, 35, 35, 210);
  const Window2d w = Window2d::pool(3, 2);
  auto r = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(r.run.device_cycles, r.run.device_cycles_serial);
  EXPECT_GE(r.run.device_cycles, r.run.busiest_unit_cycles);
  // And the result is still bit-exact.
  testutil::expect_equal_f16(r.out, ref::maxpool_fwd(in, w), "im2col 35x35");
}

TEST(Pipelining, PlannerKeepsSlotsWithinUbBudget) {
  // When the planner grants two slots, twice the per-tile footprint must
  // fit the UB (that is the carving rule it enforces).
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const auto plan =
      akg::plan_fwd(PoolImpl::kIm2col, dev.arch(), w, 147, 147,
                    /*with_mask=*/false, /*double_buffer=*/true);
  EXPECT_GE(plan.ub_slots, 1);
  EXPECT_LE(plan.ub_slots, 2);
  if (plan.num_h_tiles > 1) {
    EXPECT_TRUE(plan.double_buffered());
  }
}

TEST(Pipelining, DoubleBufferOffMatchesLegacyCycleCounts) {
  // The db-off schedule is the pre-scheduler serial schedule; its cycle
  // count must agree between two fresh devices (determinism) and between
  // parallel and serial host execution.
  Device a;
  a.set_double_buffer(false);
  Device b;
  b.set_double_buffer(false);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 3, 40, 40, 211);
  const Window2d w = Window2d::pool(3, 2);
  auto ra = kernels::maxpool_forward(a, in, w, PoolImpl::kIm2col);
  auto rb = kernels::maxpool_forward(b, in, w, PoolImpl::kIm2col);
  EXPECT_EQ(ra.run.device_cycles, rb.run.device_cycles);
  EXPECT_EQ(ra.run.device_cycles_serial, rb.run.device_cycles_serial);
}

}  // namespace
}  // namespace davinci
