// Integration tests: full training-style pipelines through the simulator
// (forward + mask + backward), InceptionV3 layer shapes end-to-end, and
// the paper's qualitative performance claims.
#include <gtest/gtest.h>

#include "kernels/conv2d.h"
#include "kernels/pooling.h"
#include "nets/cnn_tables.h"
#include "ref/conv_ref.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

// Runs the whole training step for one pooling layer on the simulator
// using the accelerated stack (Im2Col forward + mask, Col2Im backward) and
// validates output and input-gradient against the NCHW fp32 reference.
TEST(Integration, TrainingStepMatchesNchwReference) {
  const Window2d w = Window2d::pool(3, 2);
  TensorF32 in_nchw(Shape{1, 24, 21, 21});
  in_nchw.fill_random_ints(601);
  TensorF32 grad_nchw(Shape{1, 24, 10, 10});
  grad_nchw.fill_random_ints(602, 0, 5);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto fwd = kernels::maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  const TensorF16 grad = nchw_to_nc1hwc0(grad_nchw);
  auto bwd = kernels::maxpool_backward(dev, fwd.mask, grad, w, 21, 21,
                                       MergeImpl::kCol2im);

  const TensorF32 want_out = ref::maxpool_fwd_nchw(in_nchw, w);
  const TensorF32 want_gin = ref::maxpool_bwd_nchw(in_nchw, grad_nchw, w);
  testutil::expect_close_f32(nc1hwc0_to_nchw(fwd.out, 24), want_out, 0.0f,
                             "train fwd");
  testutil::expect_close_f32(nc1hwc0_to_nchw(bwd.grad_in, 24), want_gin,
                             0.0f, "train bwd");
}

TEST(Integration, BaselineStackProducesSameResults) {
  // The standard TVM stack (direct forward + vadd merge) must be
  // numerically identical to the accelerated one -- the paper's point is
  // performance, not accuracy.
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 19, 19, 603);
  TensorF16 grad(Shape{1, 2, 9, 9, kC0});
  grad.fill_random_ints(604, 0, 5);

  Device dev;
  auto f_base = kernels::maxpool_forward_with_mask(dev, in, w,
                                                   PoolImpl::kDirect);
  auto f_fast = kernels::maxpool_forward_with_mask(dev, in, w,
                                                   PoolImpl::kIm2col);
  testutil::expect_equal_f16(f_base.out, f_fast.out, "fwd equivalence");

  auto b_base = kernels::maxpool_backward(dev, f_base.mask, grad, w, 19, 19,
                                          MergeImpl::kVadd);
  auto b_fast = kernels::maxpool_backward(dev, f_fast.mask, grad, w, 19, 19,
                                          MergeImpl::kCol2im);
  testutil::expect_equal_f16(b_base.grad_in, b_fast.grad_in,
                             "bwd equivalence");
}

TEST(Integration, InceptionV3SmallestLayerFullPipeline) {
  // The (35, 35, 288) configuration of Figure 7 end-to-end with real
  // channel count (C1 = 18).
  const auto layer = nets::inception_v3_fig7_layers()[2];
  const Window2d w = layer.window;
  TensorF32 in_nchw(Shape{1, layer.c, layer.h, layer.w});
  in_nchw.fill_random_ints(605, -5, 5);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto fwd = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  const TensorF32 want = ref::maxpool_fwd_nchw(in_nchw, w);
  testutil::expect_close_f32(nc1hwc0_to_nchw(fwd.out, layer.c), want, 0.0f,
                             "inception 35x35x288");
  // 18 C1 slices over 18 cores.
  EXPECT_EQ(fwd.run.cores_used, 18);
}

TEST(Integration, Figure7SpeedupsHoldOnAllThreeInputs) {
  // The paper's headline: the accelerated implementations win on every
  // Figure 7 input, with the backward gap the largest.
  Device dev;
  for (const auto& layer : nets::inception_v3_fig7_layers()) {
    const Window2d w = layer.window;
    const std::int64_t c1 = c1_of(layer.c);
    const TensorF16 in =
        testutil::random_int_nc1hwc0(1, c1, layer.h, layer.w, 700 + layer.index);

    auto f_base = kernels::maxpool_forward(dev, in, w, PoolImpl::kDirect);
    auto f_fast = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
    EXPECT_LT(f_fast.cycles(), f_base.cycles())
        << layer.network << " input " << layer.index;

    const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
    TensorF16 grad(Shape{1, c1, w.out_h(layer.h), w.out_w(layer.w), kC0});
    grad.fill_random_ints(800 + static_cast<std::uint64_t>(layer.index), 0, 5);
    auto b_base = kernels::maxpool_backward(dev, mask, grad, w, layer.h,
                                            layer.w, MergeImpl::kVadd);
    auto b_fast = kernels::maxpool_backward(dev, mask, grad, w, layer.h,
                                            layer.w, MergeImpl::kCol2im);
    EXPECT_LT(b_fast.cycles(), b_base.cycles());

    // Speedup ratios on serial cycles -- the charge model calibrated
    // against the paper's hardware counters; the overlapped makespan
    // shifts forward and backward by different amounts.
    const double fwd_speedup =
        static_cast<double>(f_base.run.device_cycles_serial) /
        static_cast<double>(f_fast.run.device_cycles_serial);
    const double bwd_speedup =
        static_cast<double>(b_base.run.device_cycles_serial) /
        static_cast<double>(b_fast.run.device_cycles_serial);
    // Shape check: meaningful speedups in the single-digit range, with
    // backward the larger one (paper: 3.2x and 5.8x at the largest input).
    EXPECT_GT(fwd_speedup, 1.5) << layer.index;
    EXPECT_LT(fwd_speedup, 20.0) << layer.index;
    EXPECT_GT(bwd_speedup, fwd_speedup) << layer.index;
  }
}

TEST(Integration, ConvThenPoolPipeline) {
  // Convolution (Cube Unit) feeding pooling (Vector Unit): the two
  // consumers of the Im2Col instruction composed, as in a real CNN block.
  Device dev;
  const Window2d cw = Window2d::pool(3, 1);
  const Window2d pw = Window2d::pool(2, 2);
  TensorF32 in_nchw(Shape{1, 16, 12, 12});
  in_nchw.fill_random_ints(606, -2, 2);
  TensorF32 weights(Shape{16, 16, 3, 3});
  weights.fill_random_ints(607, -1, 1);

  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto conv = kernels::conv2d_cube(dev, in, weights, cw);
  auto pool = kernels::maxpool_forward(dev, conv.out, pw, PoolImpl::kIm2col);

  const TensorF32 conv_ref = ref::conv2d_nchw(in_nchw, weights, cw);
  // Round the conv reference through fp16 like the stored activation.
  TensorF32 conv_f16(conv_ref.shape());
  for (std::int64_t i = 0; i < conv_ref.size(); ++i) {
    conv_f16.flat(i) = Float16(conv_ref.flat(i)).to_float();
  }
  const TensorF32 want = ref::maxpool_fwd_nchw(conv_f16, pw);
  testutil::expect_close_f32(nc1hwc0_to_nchw(pool.out, 16), want, 0.0f,
                             "conv+pool");
}

TEST(Integration, DeterministicAcrossRuns) {
  // Thread scheduling must not affect results (blocks write disjoint GM).
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_float_nc1hwc0(1, 8, 33, 33, 608);
  Device dev;
  auto a = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  auto b = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(a.out, b.out, "determinism");
  EXPECT_EQ(a.cycles(), b.cycles());
}

TEST(Integration, CycleCountsAreShapeMonotone) {
  // Bigger inputs cost more cycles for every implementation.
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  std::int64_t prev_direct = 0, prev_im2col = 0;
  for (std::int64_t h : {9, 17, 33}) {
    const TensorF16 in =
        testutil::random_int_nc1hwc0(1, 1, h, h, 609 + static_cast<std::uint64_t>(h));
    auto d = kernels::maxpool_forward(dev, in, w, PoolImpl::kDirect);
    auto i = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
    EXPECT_GT(d.cycles(), prev_direct);
    EXPECT_GT(i.cycles(), prev_im2col);
    prev_direct = d.cycles();
    prev_im2col = i.cycles();
  }
}

}  // namespace
}  // namespace davinci
