// Tests for the forward-pipeline runner: multi-layer chains on the
// simulated device validated against the reference chain, and the
// standard-vs-accelerated pooling stacks compared within one network.
#include "nets/pipeline.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace davinci {
namespace {

using nets::Pipeline;
using nets::PoolingStack;

TensorF32 make_weights(std::int64_t cout, std::int64_t c, std::int64_t k,
                       std::uint64_t seed) {
  TensorF32 w(Shape{cout, c, k, k});
  w.fill_random_ints(seed, -1, 1);
  return w;
}

TEST(Pipeline, ConvPoolChainMatchesReference) {
  Pipeline p;
  p.conv(make_weights(16, 16, 3, 1001), Window2d::pool(3, 1), "conv1")
      .maxpool(Window2d::pool(2, 2), "pool1")
      .conv(make_weights(16, 16, 3, 1002), Window2d::pool(3, 1), "conv2")
      .maxpool(Window2d::pool(2, 2), "pool2");

  TensorF32 in_nchw(Shape{1, 16, 22, 22});
  in_nchw.fill_random_ints(1003, -2, 2);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto run = p.run(dev, in, PoolingStack::kAccelerated);
  const TensorF32 want = p.reference(in_nchw);
  const TensorF32 got = nc1hwc0_to_nchw(run.out, 16);
  ASSERT_EQ(got.shape(), want.shape());
  for (std::int64_t i = 0; i < got.size(); ++i) {
    // One fp16 rounding per layer on each side; integer-ish data keeps
    // the chains exactly aligned.
    ASSERT_EQ(got.flat(i), want.flat(i)) << "element " << i;
  }
}

TEST(Pipeline, BothStacksProduceIdenticalOutputs) {
  Pipeline p;
  p.conv(make_weights(16, 16, 3, 1011), Window2d::pool(3, 2), "conv")
      .maxpool(Window2d::pool(3, 2), "pool")
      .global_avgpool("gap");

  TensorF32 in_nchw(Shape{1, 16, 31, 31});
  in_nchw.fill_random_ints(1012, -2, 2);
  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto a = p.run(dev, in, PoolingStack::kStandard);
  auto b = p.run(dev, in, PoolingStack::kAccelerated);
  testutil::expect_equal_f16(a.out, b.out, "stack equivalence");
  // ...but the accelerated stack spends fewer cycles on the pooling layer.
  EXPECT_LT(b.layers[1].cycles, a.layers[1].cycles);
  // Conv and global-avgpool layers are identical in both stacks.
  EXPECT_EQ(a.layers[0].cycles, b.layers[0].cycles);
  EXPECT_EQ(a.layers[2].cycles, b.layers[2].cycles);
}

TEST(Pipeline, PerLayerAccounting) {
  Pipeline p;
  p.conv(make_weights(16, 16, 3, 1021), Window2d::pool(3, 1), "c1")
      .avgpool(Window2d::pool(2, 2), "a1");
  TensorF32 in_nchw(Shape{1, 16, 12, 12});
  in_nchw.fill_random_ints(1022, -2, 2);
  Device dev;
  auto run = p.run(dev, nchw_to_nc1hwc0(in_nchw),
                   PoolingStack::kAccelerated);
  ASSERT_EQ(run.layers.size(), 2u);
  EXPECT_EQ(run.layers[0].name, "c1");
  EXPECT_EQ(run.layers[1].name, "a1");
  EXPECT_GT(run.layers[0].cycles, 0);
  EXPECT_GT(run.layers[1].cycles, 0);
  EXPECT_EQ(run.total_cycles, run.layers[0].cycles + run.layers[1].cycles);
  EXPECT_EQ(run.layers[0].out_shape, Shape({1, 1, 10, 10, kC0}));
  EXPECT_EQ(run.layers[1].out_shape, Shape({1, 1, 5, 5, kC0}));
}

TEST(Pipeline, GlobalAvgPoolChain) {
  Pipeline p;
  p.maxpool(Window2d::pool(2, 2), "pool").global_avgpool("gap");
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 16, 16, 1031,
                                                    -2, 2);
  Device dev;
  auto run = p.run(dev, in, PoolingStack::kAccelerated);
  EXPECT_EQ(run.out.shape(), Shape({1, 2, 1, 1, kC0}));
}

TEST(Pipeline, RejectsMalformedConvWeights) {
  Pipeline p;
  TensorF32 bad(Shape{16, 16, 3});  // rank 3
  EXPECT_THROW(p.conv(std::move(bad), Window2d::pool(3, 1)), Error);
  TensorF32 mismatch(Shape{16, 16, 5, 5});  // kernel dims disagree
  EXPECT_THROW(p.conv(std::move(mismatch), Window2d::pool(3, 1)), Error);
}

TEST(Pipeline, RejectsBatchedInput) {
  Pipeline p;
  p.maxpool(Window2d::pool(2, 2));
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(2, 1, 8, 8, 1041);
  EXPECT_THROW(p.run(dev, in, PoolingStack::kStandard), Error);
}

}  // namespace
}  // namespace davinci
