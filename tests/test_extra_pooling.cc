// Tests for the extension operators: MinPool and global average pooling.
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;

TEST(Minpool, AllImplsMatchReference) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 11, 11, 951);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 want = ref::minpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                        PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    auto got = kernels::minpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST(Minpool, IsDualOfMaxpoolOnNegatedInput) {
  Device dev;
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 952);
  TensorF16 neg(in.shape());
  for (std::int64_t i = 0; i < in.size(); ++i) neg.flat(i) = -in.flat(i);
  const Window2d w = Window2d::pool(3, 3);
  auto mn = kernels::minpool_forward(dev, in, w, PoolImpl::kIm2col);
  auto mx = kernels::maxpool_forward(dev, neg, w, PoolImpl::kIm2col);
  for (std::int64_t i = 0; i < mn.out.size(); ++i) {
    ASSERT_TRUE(mn.out.flat(i) == -mx.out.flat(i)) << i;
  }
}

TEST(Minpool, PaddingParticipatesAsZero) {
  Device dev;
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  in.fill(Float16(5.0f));  // all positive -> padded patches min to 0
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  auto got = kernels::minpool_forward(dev, in, w, PoolImpl::kIm2col);
  const TensorF16 want = ref::minpool_fwd(in, w);
  testutil::expect_equal_f16(got.out, want, "padded minpool");
  // Corner patch includes padding -> min is 0.
  EXPECT_EQ(got.out
                .at(std::int64_t{0}, std::int64_t{0}, std::int64_t{0},
                    std::int64_t{0}, std::int64_t{0})
                .to_float(),
            0.0f);
}

TEST(Minpool, Im2colFasterAtStride2) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 33, 33, 953);
  const Window2d w = Window2d::pool(3, 2);
  auto d = kernels::minpool_forward(dev, in, w, PoolImpl::kDirect);
  auto i = kernels::minpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(i.cycles(), d.cycles());
}

TEST(GlobalAvgpool, MatchesExactReference) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(2, 3, 17, 13, 954, -2, 2);
  auto got = kernels::global_avgpool(dev, in);
  const TensorF16 want = ref::global_avgpool(in);
  testutil::expect_equal_f16(got.out, want, "global avgpool");
  EXPECT_EQ(got.out.shape(), Shape({2, 3, 1, 1, kC0}));
}

TEST(GlobalAvgpool, CloseToF32Mean) {
  Device dev;
  const TensorF16 in = testutil::random_float_nc1hwc0(1, 2, 23, 23, 955);
  auto got = kernels::global_avgpool(dev, in);
  const TensorF32 want = ref::global_avgpool_f32(in);
  for (std::int64_t i = 0; i < got.out.size(); ++i) {
    EXPECT_NEAR(got.out.flat(i).to_float(), want.flat(i), 0.02f) << i;
  }
}

TEST(GlobalAvgpool, ConstantInput) {
  Device dev;
  TensorF16 in(Shape{1, 1, 16, 16, kC0});
  in.fill(Float16(3.0f));
  auto got = kernels::global_avgpool(dev, in);
  for (std::int64_t c = 0; c < kC0; ++c) {
    EXPECT_EQ(got.out.flat(c).to_float(), 3.0f);
  }
}

TEST(GlobalAvgpool, TiledLargeInputMatchesTiledReference) {
  // 147x147 rows exceed one UB tile; the reference mirrors the kernel's
  // tiling, so the comparison stays bit-exact.
  ArchConfig arch = ArchConfig::ascend910();
  Device dev(arch);
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, 147, 147, 956, -1, 1);
  const std::int64_t rows_per_tile =
      (arch.ub_bytes - 1024) / (147 * kC0 * 2);
  auto got = kernels::global_avgpool(dev, in);
  const TensorF16 want = ref::global_avgpool(in, rows_per_tile);
  testutil::expect_equal_f16(got.out, want, "tiled global avgpool");
}

TEST(GlobalAvgpool, SaturatesVectorLanes) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 32, 32, 957);
  auto got = kernels::global_avgpool(dev, in);
  // The running accumulation uses all 128 lanes; only the short tree and
  // the final ops are narrower.
  EXPECT_GT(got.run.aggregate.lane_utilization(), 0.8);
}

TEST(GlobalAvgpool, ParallelizesOverChannels) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 8, 16, 16, 958);
  auto got = kernels::global_avgpool(dev, in);
  EXPECT_EQ(got.run.cores_used, 8);
}

}  // namespace
}  // namespace davinci
