// Tests for the profiling layer: per-unit occupancy counters surfaced
// through Device::RunResult and the Chrome trace_event JSON export.
//
// The headline assertion reproduces Section V of the paper in counter
// form: on an InceptionV3 maxpool shape the direct implementation keeps
// the Vector Unit at ~16 of 128 lanes while the Im2col formulation
// saturates the mask.
#include "sim/trace_export.h"

#include <cctype>
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "nets/pipeline.h"
#include "sim/device.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

// --- Minimal JSON syntax checker (no external deps) -----------------------
// Validates the full grammar the exporter can emit: objects, arrays,
// strings with escapes, numbers, true/false/null. Returns true iff `text`
// is exactly one well-formed JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, AcceptsAndRejectsTheObviousCases) {
  EXPECT_TRUE(JsonChecker("{\"a\": [1, -2.5e3, \"x\\n\", true, null]}")
                  .valid());
  EXPECT_FALSE(JsonChecker("{\"a\": 1,}").valid());
  EXPECT_FALSE(JsonChecker("[1, 2").valid());
  EXPECT_FALSE(JsonChecker("\"unterminated").valid());
}

// --------------------------------------------------------------------------

TensorF16 inception_input() {
  // InceptionV3 (35, 35, 288) -- the paper's largest Figure 7a shape.
  TensorF16 in(Shape{1, c1_of(288), 35, 35, kC0});
  in.fill_random_ints(1);
  return in;
}

// Direct pooling reduces Kh values elementwise over a 16-lane (one C0
// group) slice: ~16 of 128 lanes active. Im2col pooling reduces whole
// rows of the im2col matrix: full 128-lane masks. The counters must show
// exactly that gap.
TEST(Profile, DirectStarvesLanesIm2colSaturatesThem) {
  Device dev;
  const TensorF16 in = inception_input();
  const Window2d window = Window2d::pool(3, 2);

  auto direct =
      kernels::maxpool_forward(dev, in, window, akg::PoolImpl::kDirect);
  EXPECT_GT(direct.run.profile.vec.instrs, 0);
  EXPECT_LE(direct.run.profile.vec_lane_utilization(), 0.2);
  // A handful of full-mask setup instructions aside, nothing saturates.
  EXPECT_LE(direct.run.profile.vec.saturation(), 0.01);

  auto im2col =
      kernels::maxpool_forward(dev, in, window, akg::PoolImpl::kIm2col);
  EXPECT_GT(im2col.run.profile.vec.instrs, 0);
  EXPECT_GE(im2col.run.profile.vec_lane_utilization(), 0.9);
  EXPECT_GE(im2col.run.profile.vec.saturation(), 0.9);
  // Only the Im2col run exercises the SCU.
  EXPECT_EQ(direct.run.profile.im2col.instrs, 0);
  EXPECT_GT(im2col.run.profile.im2col.instrs, 0);
}

TEST(Profile, RecordedWithoutTracingEnabled) {
  Device dev;  // no core(i).trace().enable() anywhere
  auto r = kernels::maxpool_forward(dev, inception_input(),
                                    Window2d::pool(3, 2),
                                    akg::PoolImpl::kIm2col);
  EXPECT_GT(r.run.profile.vec.instrs, 0);
  EXPECT_GT(r.run.profile.mte.instrs, 0);
}

TEST(Profile, FaultFreeResilientRunMatchesPlainRun) {
  const TensorF16 in = inception_input();
  const Window2d window = Window2d::pool(3, 2);

  Device plain;
  auto a = kernels::maxpool_forward(plain, in, window, akg::PoolImpl::kIm2col);

  Device resilient;
  ResilienceOptions opts;  // empty plan, verification off
  resilient.set_resilience(opts);
  auto b = kernels::maxpool_forward(resilient, in, window,
                                    akg::PoolImpl::kIm2col);

  EXPECT_EQ(a.run.device_cycles, b.run.device_cycles);
  EXPECT_EQ(a.run.profile.vec.instrs, b.run.profile.vec.instrs);
  EXPECT_EQ(a.run.profile.vec.slots_used, b.run.profile.vec.slots_used);
  EXPECT_EQ(a.run.profile.im2col.slots_used, b.run.profile.im2col.slots_used);
}

TEST(ChromeTrace, ExportIsWellFormedJsonWithPerCoreTracks) {
  Device dev;
  for (int c = 0; c < dev.num_cores(); ++c) dev.core(c).trace().enable();
  kernels::maxpool_forward(dev, inception_input(), Window2d::pool(3, 2),
                           akg::PoolImpl::kIm2col);

  const std::string json = chrome_trace_json(dev);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("AI Core 0"), std::string::npos);
  EXPECT_NE(json.find("Vector"), std::string::npos);
  EXPECT_NE(json.find("vec active lanes"), std::string::npos);
}

TEST(ChromeTrace, EmptyDeviceExportsValidEmptyTrace) {
  Device dev;  // tracing never enabled
  const std::string json = chrome_trace_json(dev);
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(ChromeTrace, TruncatedTraceCarriesMarkerEvent) {
  Trace trace;
  trace.enable();
  for (std::size_t i = 0; i < Trace::kMaxEvents + 10; ++i) {
    trace.record(TraceKind::kVector, "vmax", 1, 128, 128);
  }
  ASSERT_TRUE(trace.truncated());
  const std::string json =
      chrome_trace_json({&trace}, std::vector<int>{0});
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("truncated"), std::string::npos);
}

TEST(ChromeTrace, EscapesControlAndQuoteCharactersInDetails) {
  Trace trace;
  trace.enable();
  trace.record(TraceKind::kMte, "copy \"a\\b\"\n\tq", 3, 1, 2);
  const std::string json =
      chrome_trace_json({&trace}, std::vector<int>{5});
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(Pipeline, UtilizationTableListsLayersAndTotal) {
  Device dev;
  nets::Pipeline net;
  net.maxpool(Window2d::pool(3, 2), "pool_a");
  net.maxpool(Window2d::pool(3, 1), "pool_b");
  auto r = net.run(dev, inception_input(), nets::PoolingStack::kAccelerated);
  const std::string table = r.utilization_table();
  EXPECT_NE(table.find("pool_a"), std::string::npos);
  EXPECT_NE(table.find("pool_b"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("vec-lanes"), std::string::npos);
  EXPECT_GE(r.profile.vec_lane_utilization(), 0.9);  // accelerated stack
}

}  // namespace
}  // namespace davinci
