// Unit tests for the Im2Col instruction (Section III-C), validated against
// the independent reference transformation.
#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/check.h"
#include "ref/im2col_ref.h"
#include "sim/scratch.h"
#include "sim/scu.h"
#include "sim/stats.h"
#include "test_util.h"

namespace davinci {
namespace {

class ScuIm2colTest : public ::testing::Test {
 protected:
  ScuIm2colTest()
      : ub_(BufferKind::kUnified, 4 * 1024 * 1024),
        l1_(BufferKind::kL1, 4 * 1024 * 1024),
        scu_(arch_, cost_, &stats_) {}

  // Loads one (n=0, c1=0) slice of `in` through the SCU and compares with
  // the reference im2col.
  void check_against_reference(const TensorF16& in, const Window2d& w) {
    const std::int64_t ih = in.shape()[2], iw = in.shape()[3];
    Im2colArgs args;
    args.window = w;
    args.ih = ih;
    args.iw = iw;

    auto src = l1_.alloc<Float16>(ih * iw * kC0);
    for (std::int64_t i = 0; i < ih * iw * kC0; ++i) {
      src.at(i) = in.flat(i);
    }
    auto dst = ub_.alloc<Float16>(args.output_elems());
    scu_.im2col_load(dst, src, args);

    const TensorF16 want = ref::im2col(in, w);
    ASSERT_EQ(want.size(), args.output_elems());
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_TRUE(dst.at(i) == want.flat(i))
          << "element " << i << ": " << dst.at(i).to_float() << " vs "
          << want.flat(i).to_float();
    }
    ub_.reset();
    l1_.reset();
  }

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_, l1_;
  Scu scu_;
};

TEST_F(ScuIm2colTest, Figure5Example) {
  // The paper's Figure 5: (Ih, Iw) = (8, 8), K = (2, 2), S = (2, 2),
  // exactly 16 patches -> one fractal per kernel position, 4 fractals.
  TensorF16 in(Shape{1, 1, 8, 8, kC0});
  for (std::int64_t y = 0; y < 8; ++y) {
    for (std::int64_t x = 0; x < 8; ++x) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        in.at(std::int64_t{0}, std::int64_t{0}, y, x, c) =
            Float16(static_cast<float>(y * 8 + x));
      }
    }
  }
  const Window2d w = Window2d::pool(2, 2);
  Im2colArgs args;
  args.window = w;
  args.ih = 8;
  args.iw = 8;
  EXPECT_EQ(args.patches(), 16);
  EXPECT_EQ(args.patch_fractals(), 1);
  EXPECT_EQ(args.output_elems(), 4 * kFractalElems);

  auto src = l1_.alloc<Float16>(8 * 8 * kC0);
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load(dst, src, args);

  // First fractal, (xk, yk) = (0, 0): the top-left element of each patch.
  for (std::int64_t p = 0; p < 16; ++p) {
    const std::int64_t y = (p / 4) * 2, x = (p % 4) * 2;
    EXPECT_EQ(dst.at(p * kC0).to_float(), static_cast<float>(y * 8 + x));
  }
  // Second fractal, (xk, yk) = (0, 1): one to the right.
  for (std::int64_t p = 0; p < 16; ++p) {
    const std::int64_t y = (p / 4) * 2, x = (p % 4) * 2 + 1;
    EXPECT_EQ(dst.at(kFractalElems + p * kC0).to_float(),
              static_cast<float>(y * 8 + x));
  }
  // One instruction in repeat mode 1 per kernel position.
  EXPECT_EQ(stats_.im2col_instrs, 4);
  EXPECT_EQ(stats_.im2col_fractals, 4);
}

TEST_F(ScuIm2colTest, MatchesReferenceNonOverlapping) {
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 8, 8, 1);
  check_against_reference(in, Window2d::pool(2, 2));
}

TEST_F(ScuIm2colTest, MatchesReferenceOverlapping) {
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 11, 9, 2);
  check_against_reference(in, Window2d::pool(3, 2));
}

TEST_F(ScuIm2colTest, MatchesReferenceStride1) {
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 7, 7, 3);
  check_against_reference(in, Window2d::pool(3, 1));
}

TEST_F(ScuIm2colTest, MatchesReferenceAsymmetricWindow) {
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 10, 13, 4);
  Window2d w;
  w.kh = 2;
  w.kw = 4;
  w.sh = 3;
  w.sw = 2;
  check_against_reference(in, w);
}

TEST_F(ScuIm2colTest, MatchesReferenceWithPadding) {
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 7, 7, 5);
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  check_against_reference(in, w);
}

TEST_F(ScuIm2colTest, PaddingLoadsZeros) {
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  in.fill(Float16(7.0f));
  Window2d w = Window2d::pool(3, 1);
  w.pt = w.pl = 1;
  Im2colArgs args;
  args.window = w;
  args.ih = 4;
  args.iw = 4;
  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load(dst, src, args);
  // Kernel position (0, 0) of patch 0 reads the virtual (-1, -1) -> zeros.
  for (std::int64_t c = 0; c < kC0; ++c) {
    EXPECT_TRUE(dst.at(c).is_zero());
  }
}

TEST_F(ScuIm2colTest, TailPatchRowsAreZeroFilled) {
  // 5x5 input, K2 S1 -> 16 patches... choose 6x6 -> 25 patches: one full
  // fractal plus 9 valid rows in the second; rows 25..31 must be zero.
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 6, 6, 6, 1, 9);
  Window2d w = Window2d::pool(2, 1);
  Im2colArgs args;
  args.window = w;
  args.ih = 6;
  args.iw = 6;
  EXPECT_EQ(args.patches(), 25);
  EXPECT_EQ(args.padded_patches(), 32);
  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load(dst, src, args);
  for (std::int64_t k = 0; k < 4; ++k) {
    for (std::int64_t p = 25; p < 32; ++p) {
      for (std::int64_t c = 0; c < kC0; ++c) {
        EXPECT_TRUE(dst.at((k * 32 + p) * kC0 + c).is_zero());
      }
    }
  }
}

TEST_F(ScuIm2colTest, InstructionAndFractalAccounting) {
  // 73x73 patches = 5329 -> 334 fractals per plane; with max_repeat 255
  // each plane needs 2 instructions; 9 planes.
  TensorF16 in(Shape{1, 1, 147, 147, kC0});
  const Window2d w = Window2d::pool(3, 2);
  Im2colArgs args;
  args.window = w;
  args.ih = 147;
  args.iw = 147;
  EXPECT_EQ(args.patch_fractals(), 334);
  auto src = l1_.alloc<Float16>(in.size());
  auto dst = ub_.alloc<Float16>(args.output_elems());
  // 9 * 334 * 256 * 2 bytes = 1.5 MiB exceeds the real UB; use a test
  // buffer large enough (this test checks accounting, not capacity).
  scu_.im2col_load(dst, src, args);
  EXPECT_EQ(stats_.im2col_instrs, 9 * 2);
  EXPECT_EQ(stats_.im2col_fractals, 9 * 334);
  EXPECT_EQ(stats_.scu_cycles, cost_.im2col(18, 3006));
}

TEST_F(ScuIm2colTest, RejectsWrongBuffers) {
  TensorF16 in(Shape{1, 1, 4, 4, kC0});
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 4;
  args.iw = 4;
  auto ub_src = ub_.alloc<Float16>(in.size());
  auto ub_dst = ub_.alloc<Float16>(args.output_elems());
  EXPECT_THROW(scu_.im2col_load(ub_dst, ub_src, args), Error);  // src not L1
  auto l1_src = l1_.alloc<Float16>(in.size());
  auto l1_dst = l1_.alloc<Float16>(args.output_elems());
  EXPECT_THROW(scu_.im2col_load(l1_dst, l1_src, args), Error);  // dst in L1
}

TEST_F(ScuIm2colTest, RejectsUndersizedSpans) {
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 4;
  args.iw = 4;
  auto src = l1_.alloc<Float16>(args.input_elems() - 1);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  EXPECT_THROW(scu_.im2col_load(dst, src, args), Error);
}

}  // namespace
}  // namespace davinci
