// Unit tests for the Col2Im instruction (Section III-D): accumulation of
// overlapping patches, zero-init requirement, padding drop, accounting.
#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/check.h"
#include "ref/im2col_ref.h"
#include "sim/scratch.h"
#include "sim/scu.h"
#include "test_util.h"

namespace davinci {
namespace {

class ScuCol2imTest : public ::testing::Test {
 protected:
  ScuCol2imTest()
      : ub_(BufferKind::kUnified, 4 * 1024 * 1024),
        l1_(BufferKind::kL1, 4 * 1024 * 1024),
        scu_(arch_, cost_, &stats_) {}

  // Runs Col2Im on an im2col-shaped tensor (n=1, c1=1 slice) and compares
  // against the reference col2im.
  void check_against_reference(const TensorF16& cols, const Window2d& w,
                               std::int64_t ih, std::int64_t iw) {
    Im2colArgs args;
    args.window = w;
    args.ih = ih;
    args.iw = iw;
    ASSERT_EQ(cols.size(), args.output_elems());

    auto src = ub_.alloc<Float16>(args.output_elems());
    for (std::int64_t i = 0; i < cols.size(); ++i) src.at(i) = cols.flat(i);
    auto out = ub_.alloc<Float16>(ih * iw * kC0);
    for (std::int64_t i = 0; i < out.size(); ++i) out.at(i) = Float16();
    scu_.col2im(out, src, args);

    // Reference expects the 6-D shape.
    TensorF16 cols6(Shape{1, 1, w.kh, w.kw, args.padded_patches(), kC0});
    for (std::int64_t i = 0; i < cols.size(); ++i) {
      cols6.flat(i) = cols.flat(i);
    }
    const TensorF16 want = ref::col2im(cols6, w, ih, iw);
    for (std::int64_t i = 0; i < want.size(); ++i) {
      ASSERT_TRUE(out.at(i) == want.flat(i))
          << "element " << i << ": " << out.at(i).to_float() << " vs "
          << want.flat(i).to_float();
    }
    ub_.reset();
  }

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_, l1_;
  Scu scu_;
};

TEST_F(ScuCol2imTest, RoundTripNonOverlapping) {
  // With K == S each input element belongs to exactly one patch, so
  // col2im(im2col(x)) == x ("If there is no overlap ... Col2im simply
  // returns the matrix to its original shape", Section II-B).
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 8, 8, 10);
  const Window2d w = Window2d::pool(2, 2);
  const TensorF16 cols = ref::im2col(in, w);
  Im2colArgs args;
  args.window = w;
  args.ih = 8;
  args.iw = 8;

  auto src = ub_.alloc<Float16>(args.output_elems());
  for (std::int64_t i = 0; i < cols.size(); ++i) src.at(i) = cols.flat(i);
  auto out = ub_.alloc<Float16>(8 * 8 * kC0);
  for (std::int64_t i = 0; i < out.size(); ++i) out.at(i) = Float16();
  scu_.col2im(out, src, args);

  for (std::int64_t i = 0; i < in.size(); ++i) {
    ASSERT_TRUE(out.at(i) == in.flat(i)) << "element " << i;
  }
}

TEST_F(ScuCol2imTest, OverlapsAreSummed) {
  // K3 S2 on integer data: col2im(im2col(x)) multiplies each element by
  // its patch-coverage count (Figure 2's duplicated {3, 8, 13} elements).
  TensorF16 in(Shape{1, 1, 5, 5, kC0});
  in.fill(Float16(1.0f));
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 cols = ref::im2col(in, w);
  Im2colArgs args;
  args.window = w;
  args.ih = 5;
  args.iw = 5;

  auto src = ub_.alloc<Float16>(args.output_elems());
  for (std::int64_t i = 0; i < cols.size(); ++i) src.at(i) = cols.flat(i);
  auto out = ub_.alloc<Float16>(5 * 5 * kC0);
  for (std::int64_t i = 0; i < out.size(); ++i) out.at(i) = Float16();
  scu_.col2im(out, src, args);

  // Coverage counts for a 5x5 input with K3 S2: middle row/col (index 2)
  // belongs to both patches in that axis.
  auto coverage = [](std::int64_t i) { return i == 2 ? 2 : 1; };
  for (std::int64_t y = 0; y < 5; ++y) {
    for (std::int64_t x = 0; x < 5; ++x) {
      const float want = static_cast<float>(coverage(y) * coverage(x));
      ASSERT_EQ(out.at((y * 5 + x) * kC0).to_float(), want)
          << "(" << y << "," << x << ")";
    }
  }
}

TEST_F(ScuCol2imTest, MatchesReferenceRandomOverlapping) {
  const Window2d w = Window2d::pool(3, 2);
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 11, 21);
  check_against_reference(ref::im2col(in, w), w, 9, 11);
}

TEST_F(ScuCol2imTest, MatchesReferenceStride1) {
  const Window2d w = Window2d::pool(2, 1);
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 6, 7, 22, 0, 3);
  check_against_reference(ref::im2col(in, w), w, 6, 7);
}

TEST_F(ScuCol2imTest, PaddingContributionsDropped) {
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 7, 7, 23, 0, 4);
  // The reference drops padding contributions the same way; equality here
  // proves the instruction's semantics match.
  check_against_reference(ref::im2col(in, w), w, 7, 7);
}

TEST_F(ScuCol2imTest, InstructionAccounting) {
  const Window2d w = Window2d::pool(3, 2);
  TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 24);
  Im2colArgs args;
  args.window = w;
  args.ih = 9;
  args.iw = 9;  // 16 patches -> 1 fractal per plane
  auto src = ub_.alloc<Float16>(args.output_elems());
  auto out = ub_.alloc<Float16>(9 * 9 * kC0);
  for (std::int64_t i = 0; i < out.size(); ++i) out.at(i) = Float16();
  scu_.col2im(out, src, args);
  EXPECT_EQ(stats_.col2im_instrs, 9);
  EXPECT_EQ(stats_.col2im_fractals, 9);
  EXPECT_EQ(stats_.scu_cycles, cost_.col2im(9, 9));
}

TEST_F(ScuCol2imTest, RequiresUnifiedBufferOperands) {
  Im2colArgs args;
  args.window = Window2d::pool(2, 2);
  args.ih = 4;
  args.iw = 4;
  auto src_l1 = l1_.alloc<Float16>(args.output_elems());
  auto out_ub = ub_.alloc<Float16>(4 * 4 * kC0);
  EXPECT_THROW(scu_.col2im(out_ub, src_l1, args), Error);
}

}  // namespace
}  // namespace davinci
