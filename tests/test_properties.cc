// Property-based sweeps over window geometries: every implementation of
// the same operator must agree bit-exactly on integer-valued fp16 data,
// and structural invariants must hold. Uses parameterized gtest over a
// grid of (kernel, stride, input, channels) configurations.
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/im2col_ref.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

struct PoolConfig {
  std::int64_t h, w, kh, kw, sh, sw, n, c1;
  std::uint64_t seed;

  Window2d window() const {
    Window2d win;
    win.kh = kh;
    win.kw = kw;
    win.sh = sh;
    win.sw = sw;
    return win;
  }

  friend std::ostream& operator<<(std::ostream& os, const PoolConfig& c) {
    return os << "h" << c.h << "w" << c.w << "_k" << c.kh << "x" << c.kw
              << "_s" << c.sh << "x" << c.sw << "_n" << c.n << "c" << c.c1;
  }
};

std::vector<PoolConfig> make_grid() {
  std::vector<PoolConfig> grid;
  std::uint64_t seed = 1000;
  const std::int64_t kernels[][2] = {{2, 2}, {3, 3}, {2, 3}, {4, 2}};
  const std::int64_t strides[][2] = {{1, 1}, {2, 2}, {3, 3}, {1, 2}, {2, 1}};
  const std::int64_t sizes[][2] = {{8, 8}, {11, 9}, {7, 16}};
  for (const auto& k : kernels) {
    for (const auto& s : strides) {
      for (const auto& hw : sizes) {
        if (hw[0] < k[0] || hw[1] < k[1]) continue;
        grid.push_back(
            PoolConfig{hw[0], hw[1], k[0], k[1], s[0], s[1], 1, 1, ++seed});
      }
    }
  }
  // A few multi-channel / batched configurations.
  grid.push_back(PoolConfig{9, 9, 3, 3, 2, 2, 2, 3, ++seed});
  grid.push_back(PoolConfig{12, 10, 2, 2, 2, 2, 1, 5, ++seed});
  return grid;
}

class PoolProperty : public ::testing::TestWithParam<PoolConfig> {};

TEST_P(PoolProperty, AllForwardImplsAgree) {
  const PoolConfig& c = GetParam();
  Device dev;
  const TensorF16 in =
      testutil::random_int_nc1hwc0(c.n, c.c1, c.h, c.w, c.seed);
  const Window2d w = c.window();
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                        PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    auto got = kernels::maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST_P(PoolProperty, MaxpoolOutputIsAPatchElement) {
  // Every output value must literally occur in its patch (max selects, it
  // never invents values).
  const PoolConfig& c = GetParam();
  const TensorF16 in =
      testutil::random_int_nc1hwc0(c.n, c.c1, c.h, c.w, c.seed + 7);
  const Window2d w = c.window();
  const TensorF16 out = ref::maxpool_fwd(in, w);
  const std::int64_t oh = w.out_h(c.h), ow = w.out_w(c.w);
  for (std::int64_t b = 0; b < c.n; ++b) {
    for (std::int64_t q = 0; q < c.c1; ++q) {
      for (std::int64_t i = 0; i < oh; ++i) {
        for (std::int64_t j = 0; j < ow; ++j) {
          for (std::int64_t cc = 0; cc < kC0; ++cc) {
            const float m = out.at(b, q, i, j, cc).to_float();
            bool found = false;
            bool dominated = true;
            for (std::int64_t y = i * w.sh; y < i * w.sh + w.kh; ++y) {
              for (std::int64_t x = j * w.sw; x < j * w.sw + w.kw; ++x) {
                const float v = in.at(b, q, y, x, cc).to_float();
                found |= v == m;
                dominated &= v <= m;
              }
            }
            ASSERT_TRUE(found && dominated)
                << "output (" << i << "," << j << ") lane " << cc;
          }
        }
      }
    }
  }
}

TEST_P(PoolProperty, BackwardImplsAgree) {
  const PoolConfig& c = GetParam();
  Device dev;
  const TensorF16 in =
      testutil::random_int_nc1hwc0(c.n, c.c1, c.h, c.w, c.seed + 13);
  const Window2d w = c.window();
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{c.n, c.c1, w.out_h(c.h), w.out_w(c.w), kC0});
  grad.fill_random_ints(c.seed + 14, 0, 6);
  const TensorF16 want = ref::maxpool_bwd(mask, grad, w, c.h, c.w);
  auto vadd =
      kernels::maxpool_backward(dev, mask, grad, w, c.h, c.w, MergeImpl::kVadd);
  auto col2im = kernels::maxpool_backward(dev, mask, grad, w, c.h, c.w,
                                          MergeImpl::kCol2im);
  testutil::expect_equal_f16(vadd.grad_in, want, "vadd");
  testutil::expect_equal_f16(col2im.grad_in, want, "col2im");
}

TEST_P(PoolProperty, Col2imOfIm2colIsCoverageScaling) {
  // col2im(im2col(ones)) counts, per input position, the number of patches
  // covering it; on an arbitrary tensor the result is x * coverage.
  const PoolConfig& c = GetParam();
  const Window2d w = c.window();
  TensorF16 ones(Shape{1, 1, c.h, c.w, kC0});
  ones.fill(Float16(1.0f));
  const TensorF16 coverage = ref::col2im(ref::im2col(ones, w), w, c.h, c.w);
  const TensorF16 x = testutil::random_int_nc1hwc0(1, 1, c.h, c.w,
                                                   c.seed + 21, 0, 4);
  const TensorF16 back = ref::col2im(ref::im2col(x, w), w, c.h, c.w);
  for (std::int64_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(back.flat(i).to_float(),
              x.flat(i).to_float() * coverage.flat(i).to_float())
        << "element " << i;
    // Coverage is bounded by the window size.
    ASSERT_LE(coverage.flat(i).to_float(),
              static_cast<float>(w.kh * w.kw));
  }
}

TEST_P(PoolProperty, AvgpoolImplsAgree) {
  const PoolConfig& c = GetParam();
  Device dev;
  const TensorF16 in =
      testutil::random_int_nc1hwc0(c.n, c.c1, c.h, c.w, c.seed + 31);
  const Window2d w = c.window();
  const TensorF16 want = ref::avgpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = kernels::avgpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
  TensorF16 grad(Shape{c.n, c.c1, w.out_h(c.h), w.out_w(c.w), kC0});
  grad.fill_random_ints(c.seed + 32, -6, 6);
  const TensorF16 want_b = ref::avgpool_bwd(grad, w, c.h, c.w);
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto got = kernels::avgpool_backward(dev, grad, w, c.h, c.w, m);
    testutil::expect_equal_f16(got.grad_in, want_b, kernels::to_string(m));
  }
}

TEST_P(PoolProperty, MaskMarksExactlyTheMaxima) {
  const PoolConfig& c = GetParam();
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, c.h, c.w, c.seed + 41);
  const Window2d w = c.window();
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  const TensorF16 out = ref::maxpool_fwd(in, w);
  const std::int64_t oh = w.out_h(c.h), ow = w.out_w(c.w);
  for (std::int64_t p = 0; p < oh * ow; ++p) {
    const std::int64_t i = p / ow, j = p % ow;
    for (std::int64_t cc = 0; cc < kC0; ++cc) {
      const float m = out.at(std::int64_t{0}, std::int64_t{0}, i, j, cc)
                          .to_float();
      for (std::int64_t kh = 0; kh < w.kh; ++kh) {
        for (std::int64_t kw = 0; kw < w.kw; ++kw) {
          const float v =
              in.at(std::int64_t{0}, std::int64_t{0}, i * w.sh + kh,
                    j * w.sw + kw, cc)
                  .to_float();
          const float bit =
              mask.at(std::int64_t{0}, std::int64_t{0}, kh, kw, p, cc)
                  .to_float();
          ASSERT_EQ(bit, v == m ? 1.0f : 0.0f);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolProperty,
                         ::testing::ValuesIn(make_grid()),
                         [](const ::testing::TestParamInfo<PoolConfig>& i) {
                           std::ostringstream os;
                           os << i.param;
                           return os.str();
                         });

}  // namespace
}  // namespace davinci
