// Unit tests for the AI Core composition and the 32-core device model.
#include "sim/device.h"

#include <atomic>
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/ai_core.h"

namespace davinci {
namespace {

TEST(AiCore, FlatHelpersSplitLargeTiles) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  // 70000 elements: 546 full repeats (3 instructions: 255+255+36) + tail 112.
  auto a = core.ub().alloc<Float16>(70000);
  core.vdup_flat(a, Float16(3.0f), 70000);
  EXPECT_EQ(a.at(0).to_float(), 3.0f);
  EXPECT_EQ(a.at(69999).to_float(), 3.0f);
  EXPECT_EQ(core.stats().vector_instrs, 4);
  EXPECT_EQ(core.stats().vector_repeats, 255 + 255 + 36 + 1);
  // 3 reissues charged to the scalar unit.
  EXPECT_EQ(core.stats().scalar_cycles,
            3 * core.cost().scalar_loop_cycles);
}

TEST(AiCore, FlatBinaryHandlesExactMultiples) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  auto a = core.ub().alloc<Float16>(256);
  auto b = core.ub().alloc<Float16>(256);
  auto d = core.ub().alloc<Float16>(256);
  core.vdup_flat(a, Float16(2.0f), 256);
  core.vdup_flat(b, Float16(5.0f), 256);
  core.vbin_flat(VecOp::kMul, d, a, b, 256);
  EXPECT_EQ(d.at(255).to_float(), 10.0f);
  // One instruction with repeat 2, no tail.
  EXPECT_EQ(core.stats().vector_instrs, 3);
}

TEST(AiCore, ResetScratchFreesAllBuffers) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  core.ub().alloc<Float16>(1000);
  core.l1().alloc<Float16>(1000);
  core.reset_scratch();
  EXPECT_EQ(core.ub().bytes_used(), 0);
  EXPECT_EQ(core.l1().bytes_used(), 0);
}

TEST(AiCore, BufferCapacitiesMatchAscend910) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  EXPECT_EQ(core.ub().capacity_bytes(), 256 * 1024);
  EXPECT_EQ(core.l1().capacity_bytes(), 1024 * 1024);
  EXPECT_EQ(core.l0a().capacity_bytes(), 64 * 1024);
  EXPECT_EQ(core.l0b().capacity_bytes(), 64 * 1024);
  EXPECT_EQ(core.l0c().capacity_bytes(), 256 * 1024);
}

TEST(Device, Has32Cores) {
  Device dev;
  EXPECT_EQ(dev.num_cores(), 32);
}

TEST(Device, DistributesBlocksRoundRobin) {
  Device dev;
  std::vector<std::atomic<int>> hits(64);
  auto result = dev.run(64, [&](AiCore& core, std::int64_t b) {
    EXPECT_EQ(b % 32, core.id());
    hits[static_cast<std::size_t>(b)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(result.cores_used, 32);
}

TEST(Device, FewerBlocksThanCores) {
  Device dev;
  auto result = dev.run(5, [](AiCore&, std::int64_t) {});
  EXPECT_EQ(result.cores_used, 5);
  EXPECT_EQ(result.core_cycles.size(), 5u);
}

TEST(Device, DeviceCyclesIsMaxOverCores) {
  Device dev;
  // Block 0 does much more vector work than the others.
  auto result = dev.run(4, [](AiCore& core, std::int64_t b) {
    auto a = core.ub().alloc<Float16>(128);
    const int reps = b == 0 ? 50 : 1;
    for (int i = 0; i < reps; ++i) core.vdup_flat(a, Float16(), 128);
  });
  EXPECT_EQ(result.device_cycles, result.core_cycles[0]);
  EXPECT_GT(result.core_cycles[0], result.core_cycles[1]);
  // Aggregate contains every core's cycles.
  std::int64_t sum = 0;
  for (auto c : result.core_cycles) sum += c;
  EXPECT_EQ(result.aggregate.total_cycles(), sum);
}

TEST(Device, LaunchOverheadChargedPerCore) {
  Device dev;
  auto result = dev.run(3, [](AiCore&, std::int64_t) {});
  for (auto c : result.core_cycles) {
    EXPECT_EQ(c, dev.cost().core_launch_cycles);
  }
}

TEST(Device, SerialAndParallelAgree) {
  Device dev;
  std::vector<float> out_par(64), out_ser(64);
  auto body = [](std::vector<float>& out) {
    return [&out](AiCore& core, std::int64_t b) {
      auto a = core.ub().alloc<Float16>(128);
      core.vdup_flat(a, Float16(static_cast<float>(b)), 128);
      out[static_cast<std::size_t>(b)] = a.at(0).to_float();
    };
  };
  auto r1 = dev.run(64, body(out_par), /*parallel=*/true);
  auto r2 = dev.run(64, body(out_ser), /*parallel=*/false);
  EXPECT_EQ(out_par, out_ser);
  EXPECT_EQ(r1.device_cycles, r2.device_cycles);
}

TEST(Device, ExceptionsPropagateFromWorkers) {
  Device dev;
  EXPECT_THROW(dev.run(40,
                       [](AiCore& core, std::int64_t b) {
                         if (b == 17) {
                           // Overflow the UB deliberately.
                           core.ub().alloc<Float16>(1 << 20);
                         }
                       }),
               Error);
}

TEST(Device, SerialFailureReportsCoreAndBlock) {
  Device dev;
  try {
    dev.run(40,
            [](AiCore& core, std::int64_t b) {
              if (b == 17) core.ub().alloc<Float16>(1 << 20);
            },
            /*parallel=*/false);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("core 17 at block 17"), std::string::npos) << msg;
  }
}

TEST(Device, StatsResetBetweenRuns) {
  Device dev;
  auto r1 = dev.run(1, [](AiCore& core, std::int64_t) {
    auto a = core.ub().alloc<Float16>(128);
    core.vdup_flat(a, Float16(), 128);
  });
  auto r2 = dev.run(1, [](AiCore&, std::int64_t) {});
  EXPECT_LT(r2.device_cycles, r1.device_cycles);
}

TEST(AiCore, PipeBarrierCharges) {
  AiCore core(0, ArchConfig::ascend910(), CostModel::calibrated());
  core.pipe_barrier();
  core.pipe_barrier();
  EXPECT_EQ(core.stats().barrier_cycles,
            2 * core.cost().pipe_barrier_cycles);
}

}  // namespace
}  // namespace davinci
