// Tests for the AvgPool kernels (Section V-C).
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::avgpool_backward;
using kernels::avgpool_forward;
using kernels::MergeImpl;

void check_fwd(const TensorF16& in, const Window2d& w) {
  Device dev;
  const TensorF16 want = ref::avgpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = avgpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

void check_bwd(std::int64_t n, std::int64_t c1, std::int64_t h,
               std::int64_t w_, const Window2d& w, std::uint64_t seed) {
  Device dev;
  TensorF16 grad(Shape{n, c1, w.out_h(h), w.out_w(w_), kC0});
  grad.fill_random_ints(seed, -8, 8);
  const TensorF16 want = ref::avgpool_bwd(grad, w, h, w_);
  auto vadd = avgpool_backward(dev, grad, w, h, w_, MergeImpl::kVadd);
  testutil::expect_equal_f16(vadd.grad_in, want, "avg vadd");
  auto col2im = avgpool_backward(dev, grad, w, h, w_, MergeImpl::kCol2im);
  testutil::expect_equal_f16(col2im.grad_in, want, "avg col2im");
}

TEST(AvgpoolForward, Kernel2Stride2Exact) {
  // 1/(2*2) = 0.25 is a power of two: fp16-exact on integer data.
  check_fwd(testutil::random_int_nc1hwc0(1, 1, 12, 12, 401),
            Window2d::pool(2, 2));
}

TEST(AvgpoolForward, Kernel4Stride4Exact) {
  check_fwd(testutil::random_int_nc1hwc0(1, 1, 16, 16, 402),
            Window2d::pool(4, 4));
}

TEST(AvgpoolForward, Kernel3Stride2) {
  // 1/9 rounds in fp16 but both kernel and reference round identically.
  check_fwd(testutil::random_int_nc1hwc0(1, 2, 11, 11, 403),
            Window2d::pool(3, 2));
}

TEST(AvgpoolForward, Stride1) {
  check_fwd(testutil::random_int_nc1hwc0(1, 1, 9, 9, 404),
            Window2d::pool(2, 1));
}

TEST(AvgpoolForward, BatchAndChannels) {
  check_fwd(testutil::random_int_nc1hwc0(2, 3, 8, 8, 405),
            Window2d::pool(2, 2));
}

TEST(AvgpoolForward, TiledLargeInput) {
  check_fwd(testutil::random_int_nc1hwc0(1, 1, 147, 147, 406),
            Window2d::pool(3, 2));
}

TEST(AvgpoolForward, Im2colWithPadding) {
  Device dev;
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 9, 9, 407);
  const TensorF16 want = ref::avgpool_fwd(in, w);
  auto got = avgpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, want, "avg padded");
}

TEST(AvgpoolForward, ConstantInputGivesConstantOutput) {
  Device dev;
  TensorF16 in(Shape{1, 1, 8, 8, kC0});
  in.fill(Float16(4.0f));
  auto got = avgpool_forward(dev, in, Window2d::pool(2, 2),
                             PoolImpl::kIm2col);
  for (std::int64_t i = 0; i < got.out.size(); ++i) {
    EXPECT_EQ(got.out.flat(i).to_float(), 4.0f);
  }
}

TEST(AvgpoolForward, Im2colBeatsDirectAtStride2) {
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 35, 35, 408);
  const Window2d w = Window2d::pool(3, 2);
  auto direct = avgpool_forward(dev, in, w, PoolImpl::kDirect);
  auto im2col = avgpool_forward(dev, in, w, PoolImpl::kIm2col);
  EXPECT_LT(im2col.cycles(), direct.cycles());
}

TEST(AvgpoolBackward, Kernel2Stride2) {
  check_bwd(1, 1, 10, 10, Window2d::pool(2, 2), 411);
}

TEST(AvgpoolBackward, OverlappingKernel3Stride2) {
  check_bwd(1, 1, 9, 9, Window2d::pool(3, 2), 412);
}

TEST(AvgpoolBackward, Stride1) {
  check_bwd(1, 1, 8, 8, Window2d::pool(2, 1), 413);
}

TEST(AvgpoolBackward, BatchAndChannels) {
  check_bwd(2, 2, 9, 9, Window2d::pool(3, 2), 414);
}

TEST(AvgpoolBackward, TiledLargeInputExactScale) {
  // K4 S2 still produces tile seams (Kh - Sh = 2 shared rows) but the
  // 1/16 scale is a power of two, so integer gradients stay fp16-exact
  // through any summation order.
  check_bwd(1, 1, 146, 146, Window2d::pool(4, 2), 415);
}

TEST(AvgpoolBackward, TiledLargeInputInexactScaleWithinUlp) {
  // With the 1/9 scale the seam accumulation reassociates rounded fp16
  // adds, so tile boundaries may differ from the reference by an ulp.
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  TensorF16 grad(Shape{1, 1, 73, 73, kC0});
  grad.fill_random_ints(419, -8, 8);
  const TensorF16 want = ref::avgpool_bwd(grad, w, 147, 147);
  auto got = avgpool_backward(dev, grad, w, 147, 147, MergeImpl::kCol2im);
  testutil::expect_close_f16(got.grad_in, want, 2e-3f, "avg tiled 1/9");
}

TEST(AvgpoolBackward, WithPadding) {
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  check_bwd(1, 1, 9, 9, w, 416);
}

TEST(AvgpoolBackward, GradientConservationKernel4) {
  // 1/16 is exact; every gradient value is spread over exactly Kh*Kw
  // positions (no padding, disjoint patches) -> mass conserved.
  Device dev;
  const Window2d w = Window2d::pool(4, 4);
  TensorF16 grad(Shape{1, 1, 2, 2, kC0});
  grad.fill_random_ints(417, -8, 8);
  auto r = avgpool_backward(dev, grad, w, 8, 8, MergeImpl::kCol2im);
  float got = 0, want = 0;
  for (std::int64_t i = 0; i < r.grad_in.size(); ++i) {
    got += r.grad_in.flat(i).to_float();
  }
  for (std::int64_t i = 0; i < grad.size(); ++i) {
    want += grad.flat(i).to_float();
  }
  EXPECT_EQ(got, want);
}

TEST(AvgpoolBackward, Col2imBeatsVadd) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  TensorF16 grad(Shape{1, 1, 17, 17, kC0});
  grad.fill_random_ints(418, 0, 5);
  auto vadd = avgpool_backward(dev, grad, w, 35, 35, MergeImpl::kVadd);
  auto col2im = avgpool_backward(dev, grad, w, 35, 35, MergeImpl::kCol2im);
  EXPECT_LT(col2im.cycles(), vadd.cycles());
}

}  // namespace
}  // namespace davinci
