// Unit tests for the Cube Unit fractal matrix multiplier.
#include "sim/cube_unit.h"

#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "common/check.h"
#include "common/prng.h"
#include "sim/scratch.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

class CubeTest : public ::testing::Test {
 protected:
  CubeTest()
      : l0a_(BufferKind::kL0A, 256 * 1024),
        l0b_(BufferKind::kL0B, 256 * 1024),
        l0c_(BufferKind::kL0C, 1024 * 1024),
        cube_(arch_, cost_, &stats_) {}

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer l0a_, l0b_, l0c_;
  CubeUnit cube_;
};

// Fills a fractal-tiled fp16 matrix (rb x cb fractals) from a dense
// row-major lambda.
template <typename F>
void fill_fractals(Span<Float16> s, std::int64_t rb, std::int64_t cb, F f) {
  for (std::int64_t i = 0; i < rb; ++i) {
    for (std::int64_t j = 0; j < cb; ++j) {
      for (std::int64_t r = 0; r < 16; ++r) {
        for (std::int64_t c = 0; c < 16; ++c) {
          s.at(((i * cb + j) * kFractalElems) + r * 16 + c) =
              Float16(f(i * 16 + r, j * 16 + c));
        }
      }
    }
  }
}

TEST_F(CubeTest, SingleFractalIdentity) {
  auto a = l0a_.alloc<Float16>(kFractalElems);
  auto b = l0b_.alloc<Float16>(kFractalElems);
  auto c = l0c_.alloc<float>(kFractalElems);
  fill_fractals(a, 1, 1, [](auto r, auto k) {
    return static_cast<float>(r * 16 + k % 4);
  });
  fill_fractals(b, 1, 1,
                [](auto k, auto j) { return k == j ? 1.0f : 0.0f; });
  cube_.mmad(c, a, b, 1, 1, 1, /*accumulate=*/false);
  for (std::int64_t r = 0; r < 16; ++r) {
    for (std::int64_t j = 0; j < 16; ++j) {
      EXPECT_EQ(c.at(r * 16 + j), static_cast<float>(r * 16 + j % 4));
    }
  }
}

TEST_F(CubeTest, MultiFractalMatchesDenseReference) {
  const std::int64_t mb = 2, kb = 3, nb = 2;
  auto a = l0a_.alloc<Float16>(mb * kb * kFractalElems);
  auto b = l0b_.alloc<Float16>(kb * nb * kFractalElems);
  auto c = l0c_.alloc<float>(mb * nb * kFractalElems);
  Xoshiro256 rng(5);
  std::vector<float> da(static_cast<size_t>(mb * kb) * 256);
  std::vector<float> db(static_cast<size_t>(kb * nb) * 256);
  for (auto& v : da) v = static_cast<float>(static_cast<int>(rng.next_below(9)) - 4);
  for (auto& v : db) v = static_cast<float>(static_cast<int>(rng.next_below(9)) - 4);
  const std::int64_t M = mb * 16, K = kb * 16, N = nb * 16;
  fill_fractals(a, mb, kb, [&](auto r, auto k) { return da[static_cast<size_t>(r * K + k)]; });
  fill_fractals(b, kb, nb, [&](auto k, auto j) { return db[static_cast<size_t>(k * N + j)]; });

  cube_.mmad(c, a, b, mb, kb, nb, /*accumulate=*/false);

  for (std::int64_t r = 0; r < M; ++r) {
    for (std::int64_t j = 0; j < N; ++j) {
      float want = 0.0f;
      for (std::int64_t k = 0; k < K; ++k) {
        want += da[static_cast<size_t>(r * K + k)] * db[static_cast<size_t>(k * N + j)];
      }
      const float got =
          c.at(((r / 16) * nb + j / 16) * kFractalElems + (r % 16) * 16 +
               j % 16);
      EXPECT_EQ(got, want) << r << "," << j;
    }
  }
}

TEST_F(CubeTest, KMajorLayoutEquivalence) {
  const std::int64_t mb = 2, kb = 2;
  auto a_row = l0a_.alloc<Float16>(mb * kb * kFractalElems);
  auto a_col = l0a_.alloc<Float16>(mb * kb * kFractalElems);
  auto b = l0b_.alloc<Float16>(kb * kFractalElems);
  auto c1 = l0c_.alloc<float>(mb * kFractalElems);
  auto c2 = l0c_.alloc<float>(mb * kFractalElems);
  Xoshiro256 rng(6);
  std::vector<float> da(static_cast<size_t>(mb * kb) * 256);
  for (auto& v : da) v = static_cast<float>(static_cast<int>(rng.next_below(7)) - 3);
  const std::int64_t K = kb * 16;
  fill_fractals(a_row, mb, kb, [&](auto r, auto k) { return da[static_cast<size_t>(r * K + k)]; });
  // k-major: fractal (kbi, mbi) at kbi * mb + mbi.
  for (std::int64_t kbi = 0; kbi < kb; ++kbi) {
    for (std::int64_t mbi = 0; mbi < mb; ++mbi) {
      for (std::int64_t r = 0; r < 16; ++r) {
        for (std::int64_t cc = 0; cc < 16; ++cc) {
          a_col.at((kbi * mb + mbi) * kFractalElems + r * 16 + cc) =
              Float16(da[static_cast<size_t>((mbi * 16 + r) * K + kbi * 16 + cc)]);
        }
      }
    }
  }
  fill_fractals(b, kb, 1, [](auto k, auto j) { return k == j ? 2.0f : 0.0f; });

  cube_.mmad(c1, a_row, b, mb, kb, 1, false, /*a_k_major=*/false);
  cube_.mmad(c2, a_col, b, mb, kb, 1, false, /*a_k_major=*/true);
  for (std::int64_t i = 0; i < mb * kFractalElems; ++i) {
    EXPECT_EQ(c1.at(i), c2.at(i)) << i;
  }
}

TEST_F(CubeTest, AccumulateFlag) {
  auto a = l0a_.alloc<Float16>(kFractalElems);
  auto b = l0b_.alloc<Float16>(kFractalElems);
  auto c = l0c_.alloc<float>(kFractalElems);
  fill_fractals(a, 1, 1, [](auto, auto) { return 1.0f; });
  fill_fractals(b, 1, 1, [](auto, auto) { return 1.0f; });
  cube_.mmad(c, a, b, 1, 1, 1, false);
  EXPECT_EQ(c.at(0), 16.0f);
  cube_.mmad(c, a, b, 1, 1, 1, /*accumulate=*/true);
  EXPECT_EQ(c.at(0), 32.0f);
  cube_.mmad(c, a, b, 1, 1, 1, /*accumulate=*/false);
  EXPECT_EQ(c.at(0), 16.0f);
}

TEST_F(CubeTest, CycleAccounting) {
  auto a = l0a_.alloc<Float16>(2 * 3 * kFractalElems);
  auto b = l0b_.alloc<Float16>(3 * 2 * kFractalElems);
  auto c = l0c_.alloc<float>(2 * 2 * kFractalElems);
  cube_.mmad(c, a, b, 2, 3, 2, false);
  EXPECT_EQ(stats_.cube_instrs, 1);
  EXPECT_EQ(stats_.cube_fractal_macs, 12);
  EXPECT_EQ(stats_.cube_cycles, cost_.cube_mmad(12));
}

TEST_F(CubeTest, RejectsWrongBuffers) {
  auto a = l0a_.alloc<Float16>(kFractalElems);
  auto c = l0c_.alloc<float>(kFractalElems);
  auto b_in_a = l0a_.alloc<Float16>(kFractalElems);
  EXPECT_THROW(cube_.mmad(c, a, b_in_a, 1, 1, 1, false), Error);
}

TEST_F(CubeTest, RejectsUndersizedOperands) {
  auto a = l0a_.alloc<Float16>(kFractalElems);
  auto b = l0b_.alloc<Float16>(kFractalElems);
  auto c = l0c_.alloc<float>(kFractalElems);
  EXPECT_THROW(cube_.mmad(c, a, b, 2, 1, 1, false), Error);
}

}  // namespace
}  // namespace davinci
