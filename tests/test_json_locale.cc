// Locale-independence of the JSON toolchain (common/json.h). The
// historical bug: float serialization went through the snprintf "%g"
// family and float parsing through std::stod, both of which consult
// LC_NUMERIC -- under a comma-decimal locale (de_DE and most of Europe)
// the writer emitted "0,5" (invalid JSON) and the reader stopped at the
// '.' and silently read "1.5" as 1.0. json::number / json::parse must be
// immune, so this binary flips the process into a comma-decimal locale
// and round-trips real reports. CI runs it in the sanitizer jobs too.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <locale>

#include "common/json.h"
#include "kernels/pooling.h"
#include "sim/metrics_registry.h"
#include "tensor/fractal.h"
#include "tensor/tensor.h"

namespace davinci {
namespace {

// A numpunct facet with ',' as the decimal point, for when no comma-
// decimal system locale is installed (minimal containers ship only
// C/POSIX/C.utf8).
class CommaDecimal : public std::numpunct<char> {
 protected:
  char do_decimal_point() const override { return ','; }
};

// Installs a comma-decimal locale for the process: a real system locale
// when available (this also flips the C locale snprintf consults --
// the strongest version of the test), else a custom C++ global locale.
// Returns true when the C locale itself uses ',' decimals.
bool install_comma_locale() {
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_ALL, name) != nullptr) {
      std::locale::global(std::locale(name));
      return true;
    }
  }
  std::locale::global(std::locale(std::locale::classic(),
                                  new CommaDecimal));
  return false;
}

const bool kCLocaleHasComma = install_comma_locale();

TEST(JsonLocale, NumberFormattingIgnoresLocale) {
  if (kCLocaleHasComma) {
    // Prove the locale took: the snprintf family now writes a comma.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", 0.5);
    ASSERT_STREQ(buf, "0,5");
  }
  EXPECT_EQ(json::number(0.5), "0.5");
  EXPECT_EQ(json::number(-1234.75), "-1234.75");
  EXPECT_EQ(json::number(std::int64_t{42}), "42");
  // Shortest round-trip form, '.' separator, regardless of LC_NUMERIC.
  const json::Value v = json::parse(json::number(0.1));
  EXPECT_DOUBLE_EQ(v.as_double(), 0.1);
}

TEST(JsonLocale, ParserReadsFractionsUnderCommaLocale) {
  // std::stod would stop at '.' here and yield 1.0.
  const json::Value v = json::parse("{\"x\":1.5,\"y\":[0.25,2e-1]}");
  EXPECT_DOUBLE_EQ(v.at("x").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("y").as_array()[0].as_double(), 0.25);
  EXPECT_DOUBLE_EQ(v.at("y").as_array()[1].as_double(), 0.2);
}

TEST(JsonLocale, MetricsReportRoundTripsUnderCommaLocale) {
  Device dev;
  TensorF16 in(Shape{1, 2, 35, 35, kC0});
  in.fill_random_ints(1);
  auto r = kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                    akg::PoolImpl::kIm2col);
  MetricsRegistry reg;
  reg.add("maxpool", r.run, dev.arch());
  const std::string text = reg.to_json();
  // A comma-decimal writer would make this invalid JSON (or silently
  // truncate fractions); strict parsing catches both.
  const json::Value doc = json::parse(text);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            MetricsRegistry::kSchemaVersion);
  // A float-valued field survives the round trip with its fraction.
  const json::Value& roof = doc.at("entries").as_array().at(0).at("roofline");
  EXPECT_GT(roof.at("achieved_gm_bytes_per_cycle").as_double(), 0.0);
}

}  // namespace
}  // namespace davinci
