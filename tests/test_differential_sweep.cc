// Randomized differential sweep: many seeds through the complete
// operator set on a fixed mid-size configuration, checking all
// implementations against the references and against each other. This is
// the "fuzz" layer on top of the structured property grids.
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, FullOperatorSetAgrees) {
  const std::uint64_t seed = GetParam();
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = 13, iw = 17;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, h, iw, seed);

  // Forward: all four implementations.
  const TensorF16 want_fwd = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                        PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    auto got = kernels::maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want_fwd, akg::to_string(impl));
  }

  // Forward with mask (both), then backward (both) fed from each mask.
  auto fd = kernels::maxpool_forward_with_mask(dev, in, w, PoolImpl::kDirect);
  auto fi = kernels::maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  TensorF16 grad(Shape{1, 2, w.out_h(h), w.out_w(iw), kC0});
  grad.fill_random_ints(seed ^ 0x9E3779B9u, 0, 6);
  const TensorF16 want_bwd = ref::maxpool_bwd(fi.mask, grad, w, h, iw);
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto a = kernels::maxpool_backward(dev, fd.mask, grad, w, h, iw, m);
    auto b = kernels::maxpool_backward(dev, fi.mask, grad, w, h, iw, m);
    testutil::expect_equal_f16(a.grad_in, want_bwd, "bwd from direct mask");
    testutil::expect_equal_f16(b.grad_in, want_bwd, "bwd from im2col mask");
  }

  // AvgPool forward and backward.
  const TensorF16 want_avg = ref::avgpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = kernels::avgpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want_avg, "avg fwd");
  }
  const TensorF16 want_avgb = ref::avgpool_bwd(grad, w, h, iw);
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto got = kernels::avgpool_backward(dev, grad, w, h, iw, m);
    testutil::expect_equal_f16(got.grad_in, want_avgb, "avg bwd");
  }

  // MinPool and global average pooling.
  auto mn = kernels::minpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(mn.out, ref::minpool_fwd(in, w), "min");
  auto gap = kernels::global_avgpool(dev, in);
  testutil::expect_equal_f16(gap.out, ref::global_avgpool(in), "gap");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace davinci
