// Tests for the MaxPool backward kernels (Figure 7c): the vadd baseline
// and the Col2Im merge must agree with the reference and with each other.
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::maxpool_backward;
using kernels::MergeImpl;

struct BwdCase {
  TensorF16 mask;
  TensorF16 grad;
  TensorF16 want;
};

BwdCase make_case(std::int64_t n, std::int64_t c1, std::int64_t h,
                  std::int64_t w_, const Window2d& w, std::uint64_t seed) {
  BwdCase c;
  const TensorF16 in = testutil::random_int_nc1hwc0(n, c1, h, w_, seed);
  c.mask = ref::maxpool_argmax_mask(in, w);
  c.grad = TensorF16(Shape{n, c1, w.out_h(h), w.out_w(w_), kC0});
  c.grad.fill_random_ints(seed + 1, 0, 6);
  c.want = ref::maxpool_bwd(c.mask, c.grad, w, h, w_);
  return c;
}

void check_both(std::int64_t n, std::int64_t c1, std::int64_t h,
                std::int64_t w_, const Window2d& w, std::uint64_t seed) {
  Device dev;
  const BwdCase c = make_case(n, c1, h, w_, w, seed);
  auto vadd = maxpool_backward(dev, c.mask, c.grad, w, h, w_,
                               MergeImpl::kVadd);
  testutil::expect_equal_f16(vadd.grad_in, c.want, "vadd merge");
  auto col2im = maxpool_backward(dev, c.mask, c.grad, w, h, w_,
                                 MergeImpl::kCol2im);
  testutil::expect_equal_f16(col2im.grad_in, c.want, "col2im merge");
}

TEST(MaxpoolBackward, SmallStride2) {
  check_both(1, 1, 9, 9, Window2d::pool(3, 2), 301);
}

TEST(MaxpoolBackward, OverlappingStride1) {
  check_both(1, 1, 8, 8, Window2d::pool(3, 1), 302);
}

TEST(MaxpoolBackward, NonOverlappingStride3) {
  check_both(1, 1, 12, 12, Window2d::pool(3, 3), 303);
}

TEST(MaxpoolBackward, VGGStyleKernel2) {
  check_both(1, 2, 12, 12, Window2d::pool(2, 2), 304);
}

TEST(MaxpoolBackward, AsymmetricWindow) {
  Window2d w;
  w.kh = 3;
  w.kw = 2;
  w.sh = 2;
  w.sw = 3;
  check_both(1, 1, 11, 14, w, 305);
}

TEST(MaxpoolBackward, MultiChannelAndBatch) {
  check_both(2, 3, 9, 9, Window2d::pool(3, 2), 306);
}

TEST(MaxpoolBackward, NonSquare) {
  check_both(1, 1, 7, 21, Window2d::pool(3, 2), 307);
}

TEST(MaxpoolBackward, TiledLargeInput) {
  // 147x147 forces H-tiling with seam accumulation (Kh - Sh = 1 shared
  // row between adjacent tiles).
  check_both(1, 1, 147, 147, Window2d::pool(3, 2), 308);
}

TEST(MaxpoolBackward, TiledStride1HasWiderSeams) {
  check_both(1, 1, 90, 90, Window2d::pool(3, 1), 309);
}

TEST(MaxpoolBackward, WithPadding) {
  Window2d w = Window2d::pool(3, 2);
  w.pt = w.pb = w.pl = w.pr = 1;
  check_both(1, 1, 9, 9, w, 310);
}

TEST(MaxpoolBackward, BottomRowsUnusedByAnyPatchStayZero) {
  // 10 rows, K3 S2 -> Oh = 4 uses rows 0..8; row 9 gets no gradient.
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const BwdCase c = make_case(1, 1, 10, 10, w, 311);
  auto r = maxpool_backward(dev, c.mask, c.grad, w, 10, 10,
                            MergeImpl::kCol2im);
  for (std::int64_t x = 0; x < 10; ++x) {
    for (std::int64_t cc = 0; cc < kC0; ++cc) {
      EXPECT_TRUE(r.grad_in
                      .at(std::int64_t{0}, std::int64_t{0}, std::int64_t{9},
                          x, cc)
                      .is_zero());
    }
  }
}

TEST(MaxpoolBackward, Col2imBeatsVadd) {
  // The paper's largest speedup (5.8x on Figure 7c) comes from replacing
  // the scattered vadd merge with Col2Im.
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const BwdCase c = make_case(1, 1, 35, 35, w, 312);
  auto vadd = maxpool_backward(dev, c.mask, c.grad, w, 35, 35,
                               MergeImpl::kVadd);
  auto col2im = maxpool_backward(dev, c.mask, c.grad, w, 35, 35,
                                 MergeImpl::kCol2im);
  EXPECT_LT(col2im.cycles(), vadd.cycles());
  // The mechanism: the vadd merge issues one instruction per
  // (kh, kw, patch); Col2Im replaces them all with Kh*Kw issues.
  EXPECT_GT(vadd.run.aggregate.vector_instrs,
            5 * col2im.run.aggregate.vector_instrs);
}

TEST(MaxpoolBackward, GradientConservation) {
  // Each gradient value lands on >= 1 argmax positions (ties duplicate).
  // With a single-maximum input, total gradient mass is conserved.
  Device dev;
  const Window2d w = Window2d::pool(3, 3);  // disjoint patches
  TensorF16 in = testutil::random_float_nc1hwc0(1, 1, 9, 9, 313);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 1, 3, 3, kC0});
  grad.fill_random_ints(314, 0, 7);
  auto r = maxpool_backward(dev, mask, grad, w, 9, 9, MergeImpl::kCol2im);
  float got = 0, want = 0;
  for (std::int64_t i = 0; i < r.grad_in.size(); ++i) {
    got += r.grad_in.flat(i).to_float();
  }
  for (std::int64_t i = 0; i < grad.size(); ++i) {
    want += grad.flat(i).to_float();
  }
  EXPECT_EQ(got, want);
}

TEST(MaxpoolBackward, ShapeValidation) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const BwdCase c = make_case(1, 1, 9, 9, w, 315);
  // Wrong spatial dims.
  EXPECT_THROW(
      maxpool_backward(dev, c.mask, c.grad, w, 11, 11, MergeImpl::kVadd),
      Error);
  // Mask with wrong kernel dims.
  TensorF16 bad_mask(Shape{1, 1, 2, 2, 16, kC0});
  EXPECT_THROW(
      maxpool_backward(dev, bad_mask, c.grad, w, 9, 9, MergeImpl::kVadd),
      Error);
}

}  // namespace
}  // namespace davinci
