// Unit tests for the NC1HWC0 fractal memory layout (Section III-B).
#include "tensor/fractal.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "test_util.h"

namespace davinci {
namespace {

TEST(FractalLayout, C1OfChannelCounts) {
  EXPECT_EQ(c1_of(1), 1);
  EXPECT_EQ(c1_of(16), 1);
  EXPECT_EQ(c1_of(17), 2);
  EXPECT_EQ(c1_of(64), 4);
  EXPECT_EQ(c1_of(192), 12);
  EXPECT_EQ(c1_of(288), 18);
  EXPECT_EQ(c1_of(728), 46);
}

TEST(FractalLayout, FractalIs4096Bits) {
  // A data-fractal has 16 * C0 elements; for Float16 that is 4096 bits.
  EXPECT_EQ(kFractalElems * 16, 4096);  // 256 elements x 16 bits
  EXPECT_EQ(kC0, 16);
}

TEST(FractalLayout, RoundTripExactChannels) {
  TensorF32 nchw(Shape{2, 32, 5, 7});
  nchw.fill_random_ints(11);
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  EXPECT_EQ(frac.shape(), Shape({2, 2, 5, 7, kC0}));
  const TensorF32 back = nc1hwc0_to_nchw(frac, 32);
  testutil::expect_close_f32(back, nchw, 0.0f, "roundtrip");
}

TEST(FractalLayout, ChannelPaddingIsZero) {
  TensorF32 nchw(Shape{1, 20, 3, 3});
  nchw.fill(1.5f);
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  EXPECT_EQ(frac.shape(), Shape({1, 2, 3, 3, kC0}));
  // Channels 20..31 map to c1 = 1, c0 = 4..15 and must be zero.
  for (std::int64_t h = 0; h < 3; ++h) {
    for (std::int64_t w = 0; w < 3; ++w) {
      for (std::int64_t c0 = 0; c0 < 4; ++c0) {
        EXPECT_EQ(frac.at(std::int64_t{0}, std::int64_t{1}, h, w, c0)
                      .to_float(),
                  1.5f);
      }
      for (std::int64_t c0 = 4; c0 < kC0; ++c0) {
        EXPECT_TRUE(
            frac.at(std::int64_t{0}, std::int64_t{1}, h, w, c0).is_zero());
      }
    }
  }
}

TEST(FractalLayout, ElementMapping) {
  // Channel c maps to (c1, c0) = (c / 16, c % 16).
  TensorF32 nchw(Shape{1, 40, 2, 2});
  for (std::int64_t c = 0; c < 40; ++c) {
    nchw.at(std::int64_t{0}, c, std::int64_t{1}, std::int64_t{0}) =
        static_cast<float>(c);
  }
  const TensorF16 frac = nchw_to_nc1hwc0(nchw);
  for (std::int64_t c = 0; c < 40; ++c) {
    EXPECT_EQ(frac.at(std::int64_t{0}, c / kC0, std::int64_t{1},
                      std::int64_t{0}, c % kC0)
                  .to_float(),
              static_cast<float>(c));
  }
}

TEST(FractalLayout, RoundTripPaddedChannels) {
  TensorF32 nchw(Shape{1, 17, 4, 4});
  nchw.fill_random_ints(5);
  const TensorF32 back = nc1hwc0_to_nchw(nchw_to_nc1hwc0(nchw), 17);
  testutil::expect_close_f32(back, nchw, 0.0f);
}

TEST(FractalLayout, ShapeValidation) {
  TensorF32 bad(Shape{2, 3});
  EXPECT_THROW(nchw_to_nc1hwc0(bad), Error);
  TensorF16 frac(Shape{1, 2, 3, 3, kC0});
  EXPECT_THROW(nc1hwc0_to_nchw(frac, 40), Error);  // needs c1 = 3
  EXPECT_THROW(nc1hwc0_to_nchw(frac, 16), Error);  // needs c1 = 1
}

TEST(FractalLayout, MakeHelper) {
  const TensorF16 t = make_nc1hwc0(1, 30, 5, 6);
  EXPECT_EQ(t.shape(), Shape({1, 2, 5, 6, kC0}));
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_TRUE(t.flat(i).is_zero());
  }
}

}  // namespace
}  // namespace davinci
