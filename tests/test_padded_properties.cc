// Property sweep over padded windows for the Im2col-based paths (the
// direct kernels do not support padding; the Im2Col instruction applies
// zero padding during the load). Parameterized over a grid of
// (kernel, stride, padding, size) configurations.
#include <gtest/gtest.h>

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "ref/im2col_ref.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

struct PadConfig {
  std::int64_t h, w, k, s, pt, pb, pl, pr;
  std::uint64_t seed;

  Window2d window() const {
    Window2d win = Window2d::pool(k, s);
    win.pt = pt;
    win.pb = pb;
    win.pl = pl;
    win.pr = pr;
    return win;
  }

  friend std::ostream& operator<<(std::ostream& os, const PadConfig& c) {
    return os << "h" << c.h << "w" << c.w << "_k" << c.k << "s" << c.s
              << "_p" << c.pt << c.pb << c.pl << c.pr;
  }
};

std::vector<PadConfig> make_grid() {
  std::vector<PadConfig> grid;
  std::uint64_t seed = 2000;
  const std::int64_t pads[][4] = {
      {1, 1, 1, 1}, {1, 0, 0, 0}, {0, 1, 1, 0}, {2, 2, 2, 2}, {0, 0, 2, 1}};
  for (const std::int64_t k : {2, 3}) {
    for (const std::int64_t s : {1, 2}) {
      for (const auto& p : pads) {
        if (p[0] >= k || p[1] >= k || p[2] >= k || p[3] >= k) continue;
        grid.push_back(PadConfig{9, 11, k, s, p[0], p[1], p[2], p[3], ++seed});
      }
    }
  }
  // A tiled padded case.
  grid.push_back(PadConfig{75, 75, 3, 2, 1, 1, 1, 1, ++seed});
  return grid;
}

class PaddedProperty : public ::testing::TestWithParam<PadConfig> {};

TEST_P(PaddedProperty, ForwardMatchesReference) {
  const PadConfig& c = GetParam();
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, c.h, c.w, c.seed);
  const Window2d w = c.window();
  auto got = kernels::maxpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, ref::maxpool_fwd(in, w), "padded fwd");
}

TEST_P(PaddedProperty, MaskAndBackwardRoundTrip) {
  const PadConfig& c = GetParam();
  Device dev;
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, c.h, c.w, c.seed + 1);
  const Window2d w = c.window();
  auto fwd = kernels::maxpool_forward_with_mask(dev, in, w, PoolImpl::kIm2col);
  TensorF16 grad(Shape{1, 1, w.out_h(c.h), w.out_w(c.w), kC0});
  grad.fill_random_ints(c.seed + 2, 0, 5);
  const TensorF16 want = ref::maxpool_bwd(fwd.mask, grad, w, c.h, c.w);
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto bwd = kernels::maxpool_backward(dev, fwd.mask, grad, w, c.h, c.w, m);
    testutil::expect_equal_f16(bwd.grad_in, want, kernels::to_string(m));
  }
}

TEST_P(PaddedProperty, AvgpoolMatchesReference) {
  const PadConfig& c = GetParam();
  Device dev;
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, c.h, c.w, c.seed + 3);
  const Window2d w = c.window();
  auto got = kernels::avgpool_forward(dev, in, w, PoolImpl::kIm2col);
  testutil::expect_equal_f16(got.out, ref::avgpool_fwd(in, w), "padded avg");
}

TEST_P(PaddedProperty, Im2colCol2imAdjointOnPaddedWindows) {
  // <col2im(y), x> == <y, im2col(x)>: the two transformations are
  // adjoint linear maps even with padding (padding rows of y never reach
  // x and vice versa). Verified in fp32 to avoid rounding noise.
  const PadConfig& c = GetParam();
  if (c.h > 20) GTEST_SKIP() << "adjoint check on small cases only";
  const Window2d w = c.window();
  const TensorF16 x =
      testutil::random_int_nc1hwc0(1, 1, c.h, c.w, c.seed + 4, -3, 3);
  TensorF16 y(ref::im2col(x, w).shape());
  y.fill_random_ints(c.seed + 5, -3, 3);

  const TensorF16 ix = ref::im2col(x, w);
  const TensorF16 cy = ref::col2im(y, w, c.h, c.w);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < cy.size(); ++i) {
    lhs += static_cast<double>(cy.flat(i).to_float()) *
           static_cast<double>(x.flat(i).to_float());
  }
  for (std::int64_t i = 0; i < ix.size(); ++i) {
    rhs += static_cast<double>(ix.flat(i).to_float()) *
           static_cast<double>(y.flat(i).to_float());
  }
  EXPECT_EQ(lhs, rhs);
}

TEST_P(PaddedProperty, AutoSelectionPicksIm2colForPadding) {
  const PadConfig& c = GetParam();
  EXPECT_EQ(akg::select_fwd_impl(c.window()), PoolImpl::kIm2col);
}

INSTANTIATE_TEST_SUITE_P(Grid, PaddedProperty,
                         ::testing::ValuesIn(make_grid()),
                         [](const ::testing::TestParamInfo<PadConfig>& i) {
                           std::ostringstream os;
                           os << i.param;
                           return os.str();
                         });

TEST(AutoSelection, MatchesFigure8Winners) {
  Device dev;
  for (const std::int64_t s : {1, 2, 3}) {
    const Window2d w = Window2d::pool(3, s);
    const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 25, 25, 3000);
    const PoolImpl pick = akg::select_fwd_impl(w);
    auto picked = kernels::maxpool_forward(dev, in, w, pick);
    // The selection must be at least as fast as every other applicable
    // implementation.
    for (PoolImpl other : {PoolImpl::kDirect, PoolImpl::kIm2col,
                           PoolImpl::kExpansion}) {
      auto r = kernels::maxpool_forward(dev, in, w, other);
      EXPECT_LE(picked.cycles(), r.cycles())
          << "stride " << s << ": " << akg::to_string(pick) << " vs "
          << akg::to_string(other);
    }
  }
}

}  // namespace
}  // namespace davinci
