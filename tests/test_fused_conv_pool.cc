// Tests for the fused Conv+AvgPool extension (paper Section VIII future
// work): the composite-kernel convolution must match the two-stage
// pipeline numerically, and run in fewer cycles.
#include "kernels/fused_conv_pool.h"

#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/conv_ref.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

TEST(FusedConvPool, FusedWindowGeometry) {
  const Window2d conv = Window2d::pool(3, 1);
  const Window2d pool = Window2d::pool(2, 2);
  const Window2d f = kernels::fused_window(conv, pool);
  EXPECT_EQ(f.kh, 4);  // (2-1)*1 + 3
  EXPECT_EQ(f.kw, 4);
  EXPECT_EQ(f.sh, 2);
  EXPECT_EQ(f.sw, 2);

  Window2d conv2 = Window2d::pool(3, 2);
  const Window2d f2 = kernels::fused_window(conv2, pool);
  EXPECT_EQ(f2.kh, 5);  // (2-1)*2 + 3
  EXPECT_EQ(f2.sh, 4);
}

TEST(FusedConvPool, CompositeWeightsSumRule) {
  // Composite weights must sum to sum(W) (each original weight appears
  // Ph*Pw times scaled by 1/(Ph*Pw)).
  TensorF32 w(Shape{2, 3, 3, 3});
  w.fill_random_ints(61, -3, 3);
  const Window2d conv = Window2d::pool(3, 1);
  const Window2d pool = Window2d::pool(2, 2);
  const TensorF32 comp =
      kernels::compose_conv_avgpool_weights(w, conv, pool);
  EXPECT_EQ(comp.shape(), Shape({2, 3, 4, 4}));
  for (std::int64_t f = 0; f < 2; ++f) {
    for (std::int64_t c = 0; c < 3; ++c) {
      float a = 0, b = 0;
      for (std::int64_t i = 0; i < 9; ++i) {
        a += w.flat((f * 3 + c) * 9 + i);
      }
      for (std::int64_t i = 0; i < 16; ++i) {
        b += comp.flat((f * 3 + c) * 16 + i);
      }
      EXPECT_NEAR(a, b, 1e-4f);
    }
  }
}

TEST(FusedConvPool, CompositeEqualsTwoStageReference) {
  // fp32 reference check of the algebra: conv then avgpool equals the
  // composite convolution exactly (integer data keeps fp32 sums exact up
  // to the 1/(Ph*Pw) scale, so compare with a tiny tolerance).
  TensorF32 in(Shape{1, 3, 11, 11});
  in.fill_random_ints(62, -3, 3);
  TensorF32 w(Shape{4, 3, 3, 3});
  w.fill_random_ints(63, -2, 2);
  const Window2d conv = Window2d::pool(3, 2);
  const Window2d pool = Window2d::pool(2, 2);

  const TensorF32 stage1 = ref::conv2d_nchw(in, w, conv);
  TensorF16 s1f(Shape{1, 1, 1, 1, 1});  // unused; avoid fp16 path here
  (void)s1f;
  // avgpool in fp32.
  const std::int64_t oh = pool.out_h(stage1.shape()[2]);
  const std::int64_t ow = pool.out_w(stage1.shape()[3]);
  TensorF32 two_stage(Shape{1, 4, oh, ow});
  for (std::int64_t f = 0; f < 4; ++f) {
    for (std::int64_t i = 0; i < oh; ++i) {
      for (std::int64_t j = 0; j < ow; ++j) {
        float s = 0;
        for (std::int64_t a = 0; a < 2; ++a) {
          for (std::int64_t b = 0; b < 2; ++b) {
            s += stage1.at(std::int64_t{0}, f, i * 2 + a, j * 2 + b);
          }
        }
        two_stage.at(std::int64_t{0}, f, i, j) = s / 4.0f;
      }
    }
  }

  const TensorF32 comp = kernels::compose_conv_avgpool_weights(w, conv, pool);
  const TensorF32 fused =
      ref::conv2d_nchw(in, comp, kernels::fused_window(conv, pool));
  testutil::expect_close_f32(fused, two_stage, 1e-3f, "fusion algebra");
}

TEST(FusedConvPool, KernelMatchesTwoStagePipeline) {
  // On the simulator: fused Cube pass vs conv2d_cube + avgpool_forward.
  // fp16 rounding points differ slightly between the two paths, so
  // compare within a few fp16 ulps of the magnitudes involved.
  TensorF32 in_nchw(Shape{1, 16, 14, 14});
  in_nchw.fill_random_ints(64, -2, 2);
  TensorF32 w(Shape{16, 16, 3, 3});
  w.fill_random_ints(65, -1, 1);
  const Window2d conv = Window2d::pool(3, 1);
  const Window2d pool = Window2d::pool(2, 2);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto conv_r = kernels::conv2d_cube(dev, in, w, conv);
  auto pool_r = kernels::avgpool_forward(dev, conv_r.out, pool,
                                         akg::PoolImpl::kIm2col);
  auto fused = kernels::conv2d_avgpool_fused(dev, in, w, conv, pool);

  ASSERT_EQ(fused.out.shape(), pool_r.out.shape());
  for (std::int64_t i = 0; i < fused.out.size(); ++i) {
    EXPECT_NEAR(fused.out.flat(i).to_float(), pool_r.out.flat(i).to_float(),
                0.5f)
        << "element " << i;
  }
}

TEST(FusedConvPool, FusedIsFasterThanTwoStage) {
  TensorF32 in_nchw(Shape{1, 16, 22, 22});
  in_nchw.fill_random_ints(66, -2, 2);
  TensorF32 w(Shape{16, 16, 3, 3});
  w.fill_random_ints(67, -1, 1);
  const Window2d conv = Window2d::pool(3, 1);
  const Window2d pool = Window2d::pool(2, 2);

  Device dev;
  const TensorF16 in = nchw_to_nc1hwc0(in_nchw);
  auto conv_r = kernels::conv2d_cube(dev, in, w, conv);
  auto pool_r = kernels::avgpool_forward(dev, conv_r.out, pool,
                                         akg::PoolImpl::kIm2col);
  auto fused = kernels::conv2d_avgpool_fused(dev, in, w, conv, pool);
  EXPECT_LT(fused.cycles(), conv_r.cycles() + pool_r.cycles());
}

TEST(FusedConvPool, RejectsPadding) {
  Window2d conv = Window2d::pool(3, 1);
  conv.pt = 1;
  EXPECT_THROW(kernels::fused_window(conv, Window2d::pool(2, 2)), Error);
}

TEST(FusedConvPool, RejectsNonTilingGrids) {
  Device dev;
  // 12x12 with K3 S2 -> (12-3) % 2 != 0: floor mismatch possible.
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 12, 12, 68);
  TensorF32 w(Shape{16, 16, 3, 3});
  EXPECT_THROW(kernels::conv2d_avgpool_fused(dev, in, w, Window2d::pool(3, 2),
                                             Window2d::pool(2, 2)),
               Error);
}

}  // namespace
}  // namespace davinci
