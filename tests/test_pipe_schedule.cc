// Unit tests of the per-core pipe-overlap scheduler (sim/pipe_schedule.h):
// serial semantics outside stages, overlap inside stages, the barrier, the
// sandwich bound and the ping-pong tile marks.
#include <gtest/gtest.h>

#include "sim/pipe_schedule.h"

namespace davinci {
namespace {

using Event = PipeScheduler::Event;

TEST(PipeSchedule, UnstagedOpsSerialize) {
  // Outside a stage every op starts at the global frontier, so the
  // makespan equals the serial sum even across different pipes.
  PipeScheduler s;
  auto a = s.issue(Pipe::kMteIn, 10);
  auto b = s.issue(Pipe::kVector, 7);
  auto c = s.issue(Pipe::kMteOut, 5);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(b.start, 10);
  EXPECT_EQ(c.start, 17);
  EXPECT_EQ(s.makespan(), 22);
}

TEST(PipeSchedule, StagesOverlapAcrossPipes) {
  // load (MTE-in, 10) then compute (Vector, 10) depending on the load,
  // then a second independent load: the second load starts at cycle 10,
  // concurrent with the compute.
  PipeScheduler s;
  s.begin_stage(Pipe::kMteIn, 0);
  auto load1 = s.issue(Pipe::kMteIn, 10);
  Event load1_done = s.end_stage();
  EXPECT_EQ(load1_done, 10);

  s.begin_stage(Pipe::kVector, load1_done);
  auto comp = s.issue(Pipe::kVector, 10);
  Event comp_done = s.end_stage();

  s.begin_stage(Pipe::kMteIn, 0);
  auto load2 = s.issue(Pipe::kMteIn, 10);
  Event load2_done = s.end_stage();

  EXPECT_EQ(comp.start, 10);
  EXPECT_EQ(load2.start, 10);  // overlaps the compute
  EXPECT_EQ(comp_done, 20);
  EXPECT_EQ(load2_done, 20);
  EXPECT_EQ(s.makespan(), 20);        // not the serial 30
  EXPECT_EQ(load1.start, 0);
}

TEST(PipeSchedule, StageRespectsDependencyEvent) {
  PipeScheduler s;
  s.begin_stage(Pipe::kMteIn, 0);
  s.issue(Pipe::kMteIn, 10);
  Event load_done = s.end_stage();

  // A stage whose dependency is later than its pipe's ready time waits.
  s.begin_stage(Pipe::kVector, load_done + 5);
  auto comp = s.issue(Pipe::kVector, 3);
  s.end_stage();
  EXPECT_EQ(comp.start, 15);
}

TEST(PipeSchedule, InStageOpsQueueInOrder) {
  PipeScheduler s;
  s.begin_stage(Pipe::kVector, 4);
  auto a = s.issue(Pipe::kMteIn, 2);  // natural pipe overridden by stage
  auto b = s.issue(Pipe::kVector, 3);
  Event done = s.end_stage();
  EXPECT_EQ(a.start, 4);
  EXPECT_EQ(b.start, 6);
  EXPECT_EQ(done, 9);
  EXPECT_EQ(s.busy(Pipe::kVector), 5);
  EXPECT_EQ(s.busy(Pipe::kMteIn), 0);
}

TEST(PipeSchedule, EmptyStageCompletesAtDependency) {
  PipeScheduler s;
  s.begin_stage(Pipe::kScu, 42);
  EXPECT_EQ(s.end_stage(), 42);
  EXPECT_EQ(s.makespan(), 0);  // nothing was charged
}

TEST(PipeSchedule, BarrierHoldsEveryPipe) {
  PipeScheduler s;
  s.begin_stage(Pipe::kMteIn, 0);
  s.issue(Pipe::kMteIn, 10);
  s.end_stage();
  auto bar = s.barrier(2);
  EXPECT_EQ(bar.start, 10);
  // After the barrier nothing may start before cycle 12, even with no
  // dependency.
  s.begin_stage(Pipe::kVector, 0);
  auto op = s.issue(Pipe::kVector, 1);
  s.end_stage();
  EXPECT_EQ(op.start, 12);
  EXPECT_EQ(s.busy(Pipe::kSync), 2);
}

TEST(PipeSchedule, SandwichBound) {
  // busiest unit busy <= makespan <= serial sum, on an arbitrary mix.
  PipeScheduler s;
  std::int64_t serial = 0;
  const Pipe pipes[] = {Pipe::kMteIn, Pipe::kVector, Pipe::kScu,
                        Pipe::kMteOut};
  Event dep = 0;
  for (int i = 0; i < 20; ++i) {
    const std::int64_t cycles = 3 + (i % 5);
    s.begin_stage(pipes[i % 4], i % 3 == 0 ? dep : 0);
    s.issue(pipes[i % 4], cycles);
    dep = s.end_stage();
    serial += cycles;
  }
  EXPECT_LE(s.busiest_unit_busy(), s.makespan());
  EXPECT_LE(s.makespan(), serial);
}

TEST(PipeSchedule, BusiestUnitExcludesSync) {
  PipeScheduler s;
  s.barrier(100);
  s.issue(Pipe::kVector, 5);
  EXPECT_EQ(s.busiest_unit_busy(), 5);
}

TEST(PipeSchedule, TileMarksRecordAndReset) {
  PipeScheduler s;
  s.note_tile(10, +1);
  s.note_tile(25, -1);
  ASSERT_EQ(s.tile_marks().size(), 2u);
  EXPECT_EQ(s.tile_marks()[0].first, 10);
  EXPECT_EQ(s.tile_marks()[0].second, 1);
  EXPECT_EQ(s.tile_marks()[1].second, -1);
  s.reset();
  EXPECT_TRUE(s.tile_marks().empty());
  EXPECT_EQ(s.makespan(), 0);
  EXPECT_EQ(s.busiest_unit_busy(), 0);
}

TEST(PipeSchedule, ResetClearsReadyTimes) {
  PipeScheduler s;
  s.issue(Pipe::kVector, 9);
  s.reset();
  auto op = s.issue(Pipe::kMteIn, 1);
  EXPECT_EQ(op.start, 0);
}

}  // namespace
}  // namespace davinci
