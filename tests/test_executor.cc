// Tests of the persistent work-stealing pool (sim/executor.h) and of the
// Device invariant it must preserve: host scheduling is a free variable,
// so parallel and serial runs produce identical outputs and accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "sim/executor.h"
#include "test_util.h"

namespace davinci {
namespace {

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool;
  std::vector<std::atomic<int>> hits(64);
  pool.run(64, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingPool, StartsLazilyAndPersists) {
  WorkStealingPool pool;
  EXPECT_EQ(pool.num_threads(), 0);
  std::atomic<int> count{0};
  pool.run(8, [&](int) { count++; });
  const int threads = pool.num_threads();
  EXPECT_GT(threads, 0);
  // Reuse: the worker count is stable across runs.
  pool.run(8, [&](int) { count++; });
  EXPECT_EQ(pool.num_threads(), threads);
  EXPECT_EQ(count.load(), 16);
}

TEST(WorkStealingPool, HandlesUnevenLaneDurations) {
  // Lanes with wildly different costs must all complete (stealing or not).
  WorkStealingPool pool;
  std::vector<std::atomic<std::int64_t>> sums(16);
  pool.run(16, [&](int i) {
    std::int64_t s = 0;
    const std::int64_t reps = (i % 4 == 0) ? 200000 : 100;
    for (std::int64_t k = 0; k < reps; ++k) s += k;
    sums[static_cast<std::size_t>(i)] = s;
  });
  for (int i = 0; i < 16; ++i) {
    const std::int64_t reps = (i % 4 == 0) ? 200000 : 100;
    EXPECT_EQ(sums[static_cast<std::size_t>(i)].load(),
              reps * (reps - 1) / 2);
  }
}

TEST(WorkStealingPool, MoreTasksThanWorkers) {
  WorkStealingPool pool;
  std::atomic<int> count{0};
  pool.run(1000, [&](int) { count++; });
  EXPECT_EQ(count.load(), 1000);
}

TEST(WorkStealingPool, ZeroAndSingleTask) {
  WorkStealingPool pool;
  std::atomic<int> count{0};
  pool.run(0, [&](int) { count++; });
  EXPECT_EQ(count.load(), 0);
  pool.run(1, [&](int i) { count += i + 1; });
  EXPECT_EQ(count.load(), 1);
}

TEST(WorkStealingPool, DeviceKernelMatchesSerialHostExecution) {
  // The end the pool serves: identical outputs and cycle accounting
  // whether the lanes run on pool workers or on the calling thread. A
  // real kernel (tiled, double-buffered) exercises the heterogeneous-lane
  // case: block 0's core has more H-tiles than the rest.
  Device dev;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 8, 64, 64, 301);
  const Window2d w = Window2d::pool(3, 2);
  auto par = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);
  auto ser = kernels::maxpool_forward(dev, in, w, akg::PoolImpl::kIm2col);
  EXPECT_EQ(par.run.device_cycles, ser.run.device_cycles);
  EXPECT_EQ(par.run.device_cycles_serial, ser.run.device_cycles_serial);
  testutil::expect_equal_f16(par.out, ser.out, "repeat run");
  testutil::expect_equal_f16(par.out, ref::maxpool_fwd(in, w), "reference");
}

}  // namespace
}  // namespace davinci
