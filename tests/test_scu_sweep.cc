// Parameterized instruction-level sweep of the SCU: Im2Col (both repeat
// modes) and Col2Im against the reference transformations over a grid of
// window geometries -- the deepest coverage of the paper's central
// instructions.
#include <gtest/gtest.h>

#include "arch/arch_config.h"
#include "arch/cost_model.h"
#include "ref/im2col_ref.h"
#include "sim/scratch.h"
#include "sim/scu.h"
#include "sim/stats.h"
#include "test_util.h"

namespace davinci {
namespace {

struct ScuConfig {
  std::int64_t ih, iw, kh, kw, sh, sw, pt, pb, pl, pr;
  std::uint64_t seed;

  Window2d window() const {
    Window2d w;
    w.kh = kh;
    w.kw = kw;
    w.sh = sh;
    w.sw = sw;
    w.pt = pt;
    w.pb = pb;
    w.pl = pl;
    w.pr = pr;
    return w;
  }

  friend std::ostream& operator<<(std::ostream& os, const ScuConfig& c) {
    return os << "i" << c.ih << "x" << c.iw << "_k" << c.kh << c.kw << "_s"
              << c.sh << c.sw << "_p" << c.pt << c.pb << c.pl << c.pr;
  }
};

std::vector<ScuConfig> make_grid() {
  std::vector<ScuConfig> grid;
  std::uint64_t seed = 5000;
  const std::int64_t kernels[][2] = {{1, 1}, {2, 2}, {3, 3}, {1, 4}, {3, 2}};
  const std::int64_t strides[][2] = {{1, 1}, {2, 2}, {2, 1}, {3, 3}, {4, 4}};
  for (const auto& k : kernels) {
    for (const auto& s : strides) {
      grid.push_back(
          ScuConfig{10, 12, k[0], k[1], s[0], s[1], 0, 0, 0, 0, ++seed});
    }
  }
  // Padded variants (padding < kernel).
  grid.push_back(ScuConfig{7, 7, 3, 3, 1, 1, 1, 1, 1, 1, ++seed});
  grid.push_back(ScuConfig{8, 9, 3, 3, 2, 2, 1, 0, 0, 1, ++seed});
  grid.push_back(ScuConfig{6, 6, 2, 2, 2, 2, 1, 1, 1, 1, ++seed});
  grid.push_back(ScuConfig{9, 9, 4, 4, 2, 2, 2, 2, 2, 2, ++seed});
  // Degenerate sizes.
  grid.push_back(ScuConfig{3, 3, 3, 3, 1, 1, 0, 0, 0, 0, ++seed});
  grid.push_back(ScuConfig{2, 17, 2, 2, 1, 1, 0, 0, 0, 0, ++seed});
  return grid;
}

class ScuSweep : public ::testing::TestWithParam<ScuConfig> {
 protected:
  ScuSweep()
      : ub_(BufferKind::kUnified, 4 * 1024 * 1024),
        l1_(BufferKind::kL1, 4 * 1024 * 1024),
        scu_(arch_, cost_, &stats_) {}

  ArchConfig arch_;
  CostModel cost_;
  CycleStats stats_;
  ScratchBuffer ub_, l1_;
  Scu scu_;
};

TEST_P(ScuSweep, Mode1MatchesReference) {
  const ScuConfig& c = GetParam();
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, c.ih, c.iw, c.seed);
  Im2colArgs args;
  args.window = c.window();
  args.ih = c.ih;
  args.iw = c.iw;
  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load(dst, src, args);
  const TensorF16 want = ref::im2col(in, args.window);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(dst.at(i) == want.flat(i)) << "element " << i;
  }
}

TEST_P(ScuSweep, Mode0IsPermutationOfMode1) {
  const ScuConfig& c = GetParam();
  const TensorF16 in =
      testutil::random_int_nc1hwc0(1, 1, c.ih, c.iw, c.seed + 1);
  Im2colArgs args;
  args.window = c.window();
  args.ih = c.ih;
  args.iw = c.iw;
  auto src = l1_.alloc<Float16>(in.size());
  for (std::int64_t i = 0; i < in.size(); ++i) src.at(i) = in.flat(i);
  auto d0 = ub_.alloc<Float16>(args.output_elems());
  auto d1 = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load_mode0(d0, src, args);
  scu_.im2col_load(d1, src, args);
  const std::int64_t groups = args.patch_fractals();
  const std::int64_t kk = c.kh * c.kw;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t k = 0; k < kk; ++k) {
      for (std::int64_t e = 0; e < kFractalElems; ++e) {
        ASSERT_TRUE(d0.at((g * kk + k) * kFractalElems + e) ==
                    d1.at((k * groups + g) * kFractalElems + e));
      }
    }
  }
}

TEST_P(ScuSweep, Col2imMatchesReference) {
  const ScuConfig& c = GetParam();
  const Window2d w = c.window();
  TensorF16 cols(Shape{1, 1, c.kh, c.kw,
                       round_up(w.out_h(c.ih) * w.out_w(c.iw), kFractalRows),
                       kC0});
  cols.fill_random_ints(c.seed + 2, -4, 4);
  Im2colArgs args;
  args.window = w;
  args.ih = c.ih;
  args.iw = c.iw;
  auto src = ub_.alloc<Float16>(args.output_elems());
  for (std::int64_t i = 0; i < cols.size(); ++i) src.at(i) = cols.flat(i);
  auto out = ub_.alloc<Float16>(c.ih * c.iw * kC0);
  for (std::int64_t i = 0; i < out.size(); ++i) out.at(i) = Float16();
  scu_.col2im(out, src, args);
  const TensorF16 want = ref::col2im(cols, w, c.ih, c.iw);
  for (std::int64_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(out.at(i) == want.flat(i)) << "element " << i;
  }
}

TEST_P(ScuSweep, AccountingConsistent) {
  const ScuConfig& c = GetParam();
  Im2colArgs args;
  args.window = c.window();
  args.ih = c.ih;
  args.iw = c.iw;
  auto src = l1_.alloc<Float16>(args.input_elems());
  auto dst = ub_.alloc<Float16>(args.output_elems());
  scu_.im2col_load(dst, src, args);
  EXPECT_EQ(stats_.im2col_fractals, c.kh * c.kw * args.patch_fractals());
  EXPECT_EQ(stats_.scu_cycles,
            cost_.im2col(stats_.im2col_instrs, stats_.im2col_fractals));
}

INSTANTIATE_TEST_SUITE_P(Grid, ScuSweep, ::testing::ValuesIn(make_grid()),
                         [](const ::testing::TestParamInfo<ScuConfig>& i) {
                           std::ostringstream os;
                           os << i.param;
                           return os.str();
                         });

}  // namespace
}  // namespace davinci
