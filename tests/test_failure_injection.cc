// Robustness sweeps: the kernels must stay bit-correct when the
// architecture is made hostile (tiny buffers force deep tiling, a small
// repeat cap forces instruction splitting, one core serializes
// everything), and must fail *cleanly* when a workload genuinely cannot
// be scheduled.
#include <gtest/gtest.h>

#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "test_util.h"

namespace davinci {
namespace {

using akg::PoolImpl;
using kernels::MergeImpl;

struct ArchCase {
  const char* name;
  ArchConfig arch;
};

std::vector<ArchCase> hostile_archs() {
  std::vector<ArchCase> cases;
  {
    ArchCase c{"tiny_ub", ArchConfig::ascend910()};
    c.arch.ub_bytes = 48 * 1024;  // forces many H-tiles
    cases.push_back(c);
  }
  {
    ArchCase c{"tiny_l1", ArchConfig::ascend910()};
    c.arch.l1_bytes = 64 * 1024;  // constrains the Im2Col source slice
    cases.push_back(c);
  }
  {
    ArchCase c{"small_repeat", ArchConfig::ascend910()};
    c.arch.max_repeat = 8;  // forces instruction splitting everywhere
    cases.push_back(c);
  }
  {
    ArchCase c{"one_core", ArchConfig::ascend910()};
    c.arch.num_cores = 1;  // fully serialized device
    cases.push_back(c);
  }
  {
    ArchCase c{"everything_small", ArchConfig::ascend910()};
    c.arch.ub_bytes = 48 * 1024;
    c.arch.l1_bytes = 96 * 1024;
    c.arch.max_repeat = 16;
    c.arch.num_cores = 2;
    cases.push_back(c);
  }
  return cases;
}

class HostileArch : public ::testing::TestWithParam<ArchCase> {};

TEST_P(HostileArch, ForwardStaysExact) {
  Device dev(GetParam().arch);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 33, 33, 901);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col,
                        PoolImpl::kExpansion, PoolImpl::kXYSplit}) {
    auto got = kernels::maxpool_forward(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST_P(HostileArch, ForwardWithMaskStaysExact) {
  Device dev(GetParam().arch);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 29, 29, 902);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 want = ref::maxpool_fwd(in, w);
  for (PoolImpl impl : {PoolImpl::kDirect, PoolImpl::kIm2col}) {
    auto got = kernels::maxpool_forward_with_mask(dev, in, w, impl);
    testutil::expect_equal_f16(got.out, want, akg::to_string(impl));
  }
}

TEST_P(HostileArch, BackwardStaysExact) {
  Device dev(GetParam().arch);
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 29, 29, 903);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 1, 14, 14, kC0});
  grad.fill_random_ints(904, 0, 5);
  const TensorF16 want = ref::maxpool_bwd(mask, grad, w, 29, 29);
  for (MergeImpl m : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    auto got = kernels::maxpool_backward(dev, mask, grad, w, 29, 29, m);
    testutil::expect_equal_f16(got.grad_in, want, kernels::to_string(m));
  }
}

TEST_P(HostileArch, TightArchCostsMoreCycles) {
  // A hostile architecture must never *charge less* than the real one.
  // The comparison is on serial cycles: a tiny UB forces more, smaller
  // tiles, and with double buffering more tiles can legitimately overlap
  // into a shorter makespan even though every tile costs extra.
  Device hostile(GetParam().arch);
  Device normal;
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 2, 33, 33, 905);
  const Window2d w = Window2d::pool(3, 2);
  auto a = kernels::maxpool_forward(hostile, in, w, PoolImpl::kIm2col);
  auto b = kernels::maxpool_forward(normal, in, w, PoolImpl::kIm2col);
  EXPECT_GE(a.run.device_cycles_serial, b.run.device_cycles_serial);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HostileArch,
                         ::testing::ValuesIn(hostile_archs()),
                         [](const ::testing::TestParamInfo<ArchCase>& i) {
                           return i.param.name;
                         });

TEST(FailureInjection, ImpossibleScheduleThrowsCleanly) {
  // A UB too small for even a single output row must produce a scheduling
  // error, not a corrupt result.
  ArchConfig arch = ArchConfig::ascend910();
  arch.ub_bytes = 2 * 1024;
  Device dev(arch);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 65, 65, 906);
  EXPECT_THROW(kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                                        PoolImpl::kIm2col),
               Error);
}

TEST(FailureInjection, ErrorMessageIsActionable) {
  ArchConfig arch = ArchConfig::ascend910();
  arch.ub_bytes = 2 * 1024;
  Device dev(arch);
  const TensorF16 in = testutil::random_int_nc1hwc0(1, 1, 65, 65, 907);
  try {
    kernels::maxpool_forward(dev, in, Window2d::pool(3, 2),
                             PoolImpl::kIm2col);
    FAIL() << "expected a scheduling error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("does not fit"), std::string::npos);
  }
}

TEST(FailureInjection, ScratchOverflowMessageIsActionable) {
  // A raw buffer overflow (bypassing the tiling layer) must name the
  // buffer, the owning core, and the requested vs. available bytes.
  Device dev;
  try {
    dev.run(1, [](AiCore& core, std::int64_t) {
      core.ub().alloc<Float16>(1 << 20);  // 2 MiB into a 256 KiB UB
    });
    FAIL() << "expected an overflow error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("UB overflow"), std::string::npos) << msg;
    EXPECT_NE(msg.find("core 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("requested 2097152 B"), std::string::npos) << msg;
    EXPECT_NE(msg.find("available 262144 B"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace davinci
