// The unified PoolOp entry point vs the deprecated per-operator shims:
// every shim must forward to run_pool with zero behavioural change --
// bit-identical tensors AND identical device cycle counts. A precomputed
// plan passed through PoolOp::plan must reproduce the planner's own
// result exactly (the plan-cache identity the serving layer relies on).
#include <gtest/gtest.h>

#include "akg/tiling.h"
#include "kernels/pooling.h"
#include "ref/pooling_ref.h"
#include "sim/device.h"
#include "tensor/fractal.h"

namespace davinci {
namespace {

using kernels::MergeImpl;
using kernels::PoolInputs;
using kernels::PoolOp;
using kernels::PoolOpKind;
using kernels::PoolResult;

TensorF16 make_input(std::int64_t n, std::int64_t c1, std::int64_t h,
                     std::int64_t w, std::uint64_t seed = 1) {
  TensorF16 t(Shape{n, c1, h, w, kC0});
  t.fill_random_ints(seed);
  return t;
}

void expect_same_tensor(const TensorF16& a, const TensorF16& b) {
  ASSERT_EQ(a.shape().to_string(), b.shape().to_string());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a.flat(i) == b.flat(i)) << "element " << i;
  }
}

void expect_equivalent(const PoolResult& shim, const PoolResult& unified) {
  EXPECT_EQ(shim.run.device_cycles, unified.run.device_cycles);
  EXPECT_EQ(shim.run.device_cycles_serial, unified.run.device_cycles_serial);
  EXPECT_EQ(shim.has_out(), unified.has_out());
  EXPECT_EQ(shim.has_mask(), unified.has_mask());
  EXPECT_EQ(shim.has_grad_in(), unified.has_grad_in());
  if (shim.has_out()) expect_same_tensor(shim.out, unified.out);
  if (shim.has_mask()) expect_same_tensor(shim.mask, unified.mask);
  if (shim.has_grad_in()) expect_same_tensor(shim.grad_in, unified.grad_in);
}

TEST(PoolOpShimEquivalence, MaxpoolForwardAllImpls) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = make_input(1, 2, 29, 29);
  for (akg::PoolImpl impl :
       {akg::PoolImpl::kDirect, akg::PoolImpl::kIm2col,
        akg::PoolImpl::kExpansion, akg::PoolImpl::kXYSplit}) {
    auto shim = kernels::maxpool_forward(dev, in, w, impl);
    auto unified = kernels::run_pool(
        dev, PoolOp{.kind = PoolOpKind::kMaxFwd, .window = w, .fwd = impl},
        PoolInputs{.in = &in});
    expect_equivalent(shim, unified);
  }
}

TEST(PoolOpShimEquivalence, MinpoolAndAvgpoolForward) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = make_input(1, 2, 23, 23, 5);
  for (akg::PoolImpl impl :
       {akg::PoolImpl::kDirect, akg::PoolImpl::kIm2col}) {
    expect_equivalent(
        kernels::minpool_forward(dev, in, w, impl),
        kernels::run_pool(
            dev, PoolOp{.kind = PoolOpKind::kMinFwd, .window = w, .fwd = impl},
            PoolInputs{.in = &in}));
    expect_equivalent(
        kernels::avgpool_forward(dev, in, w, impl),
        kernels::run_pool(
            dev, PoolOp{.kind = PoolOpKind::kAvgFwd, .window = w, .fwd = impl},
            PoolInputs{.in = &in}));
  }
}

TEST(PoolOpShimEquivalence, MaxpoolMaskForward) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = make_input(1, 2, 21, 21, 3);
  for (akg::PoolImpl impl :
       {akg::PoolImpl::kDirect, akg::PoolImpl::kIm2col}) {
    auto shim = kernels::maxpool_forward_with_mask(dev, in, w, impl);
    auto unified = kernels::run_pool(
        dev,
        PoolOp{.kind = PoolOpKind::kMaxMaskFwd, .window = w, .fwd = impl},
        PoolInputs{.in = &in});
    ASSERT_TRUE(unified.has_mask());
    expect_equivalent(shim, unified);
  }
}

TEST(PoolOpShimEquivalence, BackwardBothMerges) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = 19, iw = 19;
  const TensorF16 in = make_input(1, 2, h, iw, 7);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(h), w.out_w(iw), kC0});
  grad.fill_random_ints(9, 0, 5);
  for (MergeImpl merge : {MergeImpl::kVadd, MergeImpl::kCol2im}) {
    expect_equivalent(
        kernels::maxpool_backward(dev, mask, grad, w, h, iw, merge),
        kernels::run_pool(
            dev,
            PoolOp{.kind = PoolOpKind::kMaxBwd, .window = w, .merge = merge},
            PoolInputs{.mask = &mask, .grad = &grad, .ih = h, .iw = iw}));
    expect_equivalent(
        kernels::avgpool_backward(dev, grad, w, h, iw, merge),
        kernels::run_pool(
            dev,
            PoolOp{.kind = PoolOpKind::kAvgBwd, .window = w, .merge = merge},
            PoolInputs{.grad = &grad, .ih = h, .iw = iw}));
  }
}

TEST(PoolOpShimEquivalence, GlobalAvgpool) {
  Device dev;
  const TensorF16 in = make_input(1, 3, 8, 8, 11);
  expect_equivalent(kernels::global_avgpool(dev, in),
                    kernels::run_pool(dev,
                                      PoolOp{.kind = PoolOpKind::kGlobalAvg},
                                      PoolInputs{.in = &in}));
}

// A plan computed by the planner and passed through PoolOp::plan must
// behave exactly like letting the kernel plan for itself.
TEST(PoolOpPlan, ForwardPlanPassThroughIsIdentity) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = make_input(1, 2, 95, 95);  // big enough to tile
  const akg::PoolPlan plan = akg::plan_fwd(akg::PoolImpl::kIm2col, dev.arch(),
                                           w, 95, 95, /*with_mask=*/false,
                                           dev.double_buffer());
  PoolOp op{.kind = PoolOpKind::kMaxFwd, .window = w,
            .fwd = akg::PoolImpl::kIm2col};
  auto implicit = kernels::run_pool(dev, op, PoolInputs{.in = &in});
  op.plan = plan;
  auto explicit_plan = kernels::run_pool(dev, op, PoolInputs{.in = &in});
  expect_equivalent(implicit, explicit_plan);
}

TEST(PoolOpPlan, BackwardPlanPassThroughIsIdentity) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const std::int64_t h = 63, iw = 63;
  const TensorF16 in = make_input(1, 2, h, iw, 13);
  const TensorF16 mask = ref::maxpool_argmax_mask(in, w);
  TensorF16 grad(Shape{1, 2, w.out_h(h), w.out_w(iw), kC0});
  grad.fill_random_ints(15, 0, 5);
  PoolOp op{.kind = PoolOpKind::kMaxBwd, .window = w,
            .merge = MergeImpl::kCol2im};
  const PoolInputs bwd_in{.mask = &mask, .grad = &grad, .ih = h, .iw = iw};
  auto implicit = kernels::run_pool(dev, op, bwd_in);
  op.plan = akg::plan_bwd(dev.arch(), w, h, iw, dev.double_buffer());
  auto explicit_plan = kernels::run_pool(dev, op, bwd_in);
  expect_equivalent(implicit, explicit_plan);
}

TEST(PoolOpValidation, RejectsBadCombinations) {
  Device dev;
  const Window2d w = Window2d::pool(3, 2);
  const TensorF16 in = make_input(1, 1, 15, 15);
  // AvgPool supports only direct and im2col lowering.
  EXPECT_THROW(kernels::run_pool(dev,
                                 PoolOp{.kind = PoolOpKind::kAvgFwd,
                                        .window = w,
                                        .fwd = akg::PoolImpl::kExpansion},
                                 PoolInputs{.in = &in}),
               Error);
  // Forward kinds require the input tensor.
  EXPECT_THROW(kernels::run_pool(
                   dev, PoolOp{.kind = PoolOpKind::kMaxFwd, .window = w},
                   PoolInputs{}),
               Error);
  // Backward kinds require the gradient (and mask for kMaxBwd).
  EXPECT_THROW(kernels::run_pool(
                   dev, PoolOp{.kind = PoolOpKind::kMaxBwd, .window = w},
                   PoolInputs{.in = &in}),
               Error);
}

TEST(PoolOpDescriptor, ToStringNamesKindAndLowering) {
  const PoolOp fwd{.kind = PoolOpKind::kMaxFwd,
                   .window = Window2d::pool(3, 2),
                   .fwd = akg::PoolImpl::kIm2col};
  EXPECT_NE(fwd.to_string().find("maxpool"), std::string::npos);
  EXPECT_NE(fwd.to_string().find("im2col"), std::string::npos);
  const PoolOp bwd{.kind = PoolOpKind::kMaxBwd,
                   .window = Window2d::pool(3, 2),
                   .merge = MergeImpl::kCol2im};
  EXPECT_NE(bwd.to_string().find("maxpool_bwd"), std::string::npos);
  EXPECT_NE(bwd.to_string().find("col2im"), std::string::npos);
}

}  // namespace
}  // namespace davinci
